file(REMOVE_RECURSE
  "libproteus_bitcode.a"
)
