# Empty dependencies file for proteus_bitcode.
# This may be replaced when dependencies are built.
