file(REMOVE_RECURSE
  "CMakeFiles/proteus_bitcode.dir/Bitcode.cpp.o"
  "CMakeFiles/proteus_bitcode.dir/Bitcode.cpp.o.d"
  "libproteus_bitcode.a"
  "libproteus_bitcode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_bitcode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
