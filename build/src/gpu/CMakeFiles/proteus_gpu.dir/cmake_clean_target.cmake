file(REMOVE_RECURSE
  "libproteus_gpu.a"
)
