# Empty dependencies file for proteus_gpu.
# This may be replaced when dependencies are built.
