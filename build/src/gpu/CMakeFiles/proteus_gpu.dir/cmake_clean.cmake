file(REMOVE_RECURSE
  "CMakeFiles/proteus_gpu.dir/Device.cpp.o"
  "CMakeFiles/proteus_gpu.dir/Device.cpp.o.d"
  "CMakeFiles/proteus_gpu.dir/Executor.cpp.o"
  "CMakeFiles/proteus_gpu.dir/Executor.cpp.o.d"
  "CMakeFiles/proteus_gpu.dir/PerfModel.cpp.o"
  "CMakeFiles/proteus_gpu.dir/PerfModel.cpp.o.d"
  "CMakeFiles/proteus_gpu.dir/Runtime.cpp.o"
  "CMakeFiles/proteus_gpu.dir/Runtime.cpp.o.d"
  "libproteus_gpu.a"
  "libproteus_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
