
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/Device.cpp" "src/gpu/CMakeFiles/proteus_gpu.dir/Device.cpp.o" "gcc" "src/gpu/CMakeFiles/proteus_gpu.dir/Device.cpp.o.d"
  "/root/repo/src/gpu/Executor.cpp" "src/gpu/CMakeFiles/proteus_gpu.dir/Executor.cpp.o" "gcc" "src/gpu/CMakeFiles/proteus_gpu.dir/Executor.cpp.o.d"
  "/root/repo/src/gpu/PerfModel.cpp" "src/gpu/CMakeFiles/proteus_gpu.dir/PerfModel.cpp.o" "gcc" "src/gpu/CMakeFiles/proteus_gpu.dir/PerfModel.cpp.o.d"
  "/root/repo/src/gpu/Runtime.cpp" "src/gpu/CMakeFiles/proteus_gpu.dir/Runtime.cpp.o" "gcc" "src/gpu/CMakeFiles/proteus_gpu.dir/Runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codegen/CMakeFiles/proteus_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/proteus_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/proteus_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
