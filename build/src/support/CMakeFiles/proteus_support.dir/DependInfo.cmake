
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/Error.cpp" "src/support/CMakeFiles/proteus_support.dir/Error.cpp.o" "gcc" "src/support/CMakeFiles/proteus_support.dir/Error.cpp.o.d"
  "/root/repo/src/support/FileSystem.cpp" "src/support/CMakeFiles/proteus_support.dir/FileSystem.cpp.o" "gcc" "src/support/CMakeFiles/proteus_support.dir/FileSystem.cpp.o.d"
  "/root/repo/src/support/Hashing.cpp" "src/support/CMakeFiles/proteus_support.dir/Hashing.cpp.o" "gcc" "src/support/CMakeFiles/proteus_support.dir/Hashing.cpp.o.d"
  "/root/repo/src/support/JsonLite.cpp" "src/support/CMakeFiles/proteus_support.dir/JsonLite.cpp.o" "gcc" "src/support/CMakeFiles/proteus_support.dir/JsonLite.cpp.o.d"
  "/root/repo/src/support/Metrics.cpp" "src/support/CMakeFiles/proteus_support.dir/Metrics.cpp.o" "gcc" "src/support/CMakeFiles/proteus_support.dir/Metrics.cpp.o.d"
  "/root/repo/src/support/StringUtils.cpp" "src/support/CMakeFiles/proteus_support.dir/StringUtils.cpp.o" "gcc" "src/support/CMakeFiles/proteus_support.dir/StringUtils.cpp.o.d"
  "/root/repo/src/support/Trace.cpp" "src/support/CMakeFiles/proteus_support.dir/Trace.cpp.o" "gcc" "src/support/CMakeFiles/proteus_support.dir/Trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
