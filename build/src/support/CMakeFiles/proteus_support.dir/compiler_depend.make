# Empty compiler generated dependencies file for proteus_support.
# This may be replaced when dependencies are built.
