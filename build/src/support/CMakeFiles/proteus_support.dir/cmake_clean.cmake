file(REMOVE_RECURSE
  "CMakeFiles/proteus_support.dir/Error.cpp.o"
  "CMakeFiles/proteus_support.dir/Error.cpp.o.d"
  "CMakeFiles/proteus_support.dir/FileSystem.cpp.o"
  "CMakeFiles/proteus_support.dir/FileSystem.cpp.o.d"
  "CMakeFiles/proteus_support.dir/Hashing.cpp.o"
  "CMakeFiles/proteus_support.dir/Hashing.cpp.o.d"
  "CMakeFiles/proteus_support.dir/JsonLite.cpp.o"
  "CMakeFiles/proteus_support.dir/JsonLite.cpp.o.d"
  "CMakeFiles/proteus_support.dir/Metrics.cpp.o"
  "CMakeFiles/proteus_support.dir/Metrics.cpp.o.d"
  "CMakeFiles/proteus_support.dir/StringUtils.cpp.o"
  "CMakeFiles/proteus_support.dir/StringUtils.cpp.o.d"
  "CMakeFiles/proteus_support.dir/Trace.cpp.o"
  "CMakeFiles/proteus_support.dir/Trace.cpp.o.d"
  "libproteus_support.a"
  "libproteus_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
