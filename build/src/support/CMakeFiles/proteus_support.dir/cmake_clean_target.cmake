file(REMOVE_RECURSE
  "libproteus_support.a"
)
