file(REMOVE_RECURSE
  "libproteus_jitify.a"
)
