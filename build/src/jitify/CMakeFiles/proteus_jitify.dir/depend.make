# Empty dependencies file for proteus_jitify.
# This may be replaced when dependencies are built.
