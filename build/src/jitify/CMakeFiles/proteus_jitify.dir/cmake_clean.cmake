file(REMOVE_RECURSE
  "CMakeFiles/proteus_jitify.dir/Jitify.cpp.o"
  "CMakeFiles/proteus_jitify.dir/Jitify.cpp.o.d"
  "libproteus_jitify.a"
  "libproteus_jitify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_jitify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
