
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/Compiler.cpp" "src/codegen/CMakeFiles/proteus_codegen.dir/Compiler.cpp.o" "gcc" "src/codegen/CMakeFiles/proteus_codegen.dir/Compiler.cpp.o.d"
  "/root/repo/src/codegen/ISel.cpp" "src/codegen/CMakeFiles/proteus_codegen.dir/ISel.cpp.o" "gcc" "src/codegen/CMakeFiles/proteus_codegen.dir/ISel.cpp.o.d"
  "/root/repo/src/codegen/MachineIR.cpp" "src/codegen/CMakeFiles/proteus_codegen.dir/MachineIR.cpp.o" "gcc" "src/codegen/CMakeFiles/proteus_codegen.dir/MachineIR.cpp.o.d"
  "/root/repo/src/codegen/ObjectFile.cpp" "src/codegen/CMakeFiles/proteus_codegen.dir/ObjectFile.cpp.o" "gcc" "src/codegen/CMakeFiles/proteus_codegen.dir/ObjectFile.cpp.o.d"
  "/root/repo/src/codegen/Ptx.cpp" "src/codegen/CMakeFiles/proteus_codegen.dir/Ptx.cpp.o" "gcc" "src/codegen/CMakeFiles/proteus_codegen.dir/Ptx.cpp.o.d"
  "/root/repo/src/codegen/RegAlloc.cpp" "src/codegen/CMakeFiles/proteus_codegen.dir/RegAlloc.cpp.o" "gcc" "src/codegen/CMakeFiles/proteus_codegen.dir/RegAlloc.cpp.o.d"
  "/root/repo/src/codegen/Target.cpp" "src/codegen/CMakeFiles/proteus_codegen.dir/Target.cpp.o" "gcc" "src/codegen/CMakeFiles/proteus_codegen.dir/Target.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/proteus_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/proteus_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
