file(REMOVE_RECURSE
  "libproteus_codegen.a"
)
