file(REMOVE_RECURSE
  "CMakeFiles/proteus_codegen.dir/Compiler.cpp.o"
  "CMakeFiles/proteus_codegen.dir/Compiler.cpp.o.d"
  "CMakeFiles/proteus_codegen.dir/ISel.cpp.o"
  "CMakeFiles/proteus_codegen.dir/ISel.cpp.o.d"
  "CMakeFiles/proteus_codegen.dir/MachineIR.cpp.o"
  "CMakeFiles/proteus_codegen.dir/MachineIR.cpp.o.d"
  "CMakeFiles/proteus_codegen.dir/ObjectFile.cpp.o"
  "CMakeFiles/proteus_codegen.dir/ObjectFile.cpp.o.d"
  "CMakeFiles/proteus_codegen.dir/Ptx.cpp.o"
  "CMakeFiles/proteus_codegen.dir/Ptx.cpp.o.d"
  "CMakeFiles/proteus_codegen.dir/RegAlloc.cpp.o"
  "CMakeFiles/proteus_codegen.dir/RegAlloc.cpp.o.d"
  "CMakeFiles/proteus_codegen.dir/Target.cpp.o"
  "CMakeFiles/proteus_codegen.dir/Target.cpp.o.d"
  "libproteus_codegen.a"
  "libproteus_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
