# Empty compiler generated dependencies file for proteus_codegen.
# This may be replaced when dependencies are built.
