file(REMOVE_RECURSE
  "libproteus_hecbench.a"
)
