file(REMOVE_RECURSE
  "CMakeFiles/proteus_hecbench.dir/Adam.cpp.o"
  "CMakeFiles/proteus_hecbench.dir/Adam.cpp.o.d"
  "CMakeFiles/proteus_hecbench.dir/Benchmark.cpp.o"
  "CMakeFiles/proteus_hecbench.dir/Benchmark.cpp.o.d"
  "CMakeFiles/proteus_hecbench.dir/Feykac.cpp.o"
  "CMakeFiles/proteus_hecbench.dir/Feykac.cpp.o.d"
  "CMakeFiles/proteus_hecbench.dir/Lulesh.cpp.o"
  "CMakeFiles/proteus_hecbench.dir/Lulesh.cpp.o.d"
  "CMakeFiles/proteus_hecbench.dir/Rsbench.cpp.o"
  "CMakeFiles/proteus_hecbench.dir/Rsbench.cpp.o.d"
  "CMakeFiles/proteus_hecbench.dir/Sw4ck.cpp.o"
  "CMakeFiles/proteus_hecbench.dir/Sw4ck.cpp.o.d"
  "CMakeFiles/proteus_hecbench.dir/Wsm5.cpp.o"
  "CMakeFiles/proteus_hecbench.dir/Wsm5.cpp.o.d"
  "libproteus_hecbench.a"
  "libproteus_hecbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_hecbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
