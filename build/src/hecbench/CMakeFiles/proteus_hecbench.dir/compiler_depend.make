# Empty compiler generated dependencies file for proteus_hecbench.
# This may be replaced when dependencies are built.
