
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jit/AotCompiler.cpp" "src/jit/CMakeFiles/proteus_jit.dir/AotCompiler.cpp.o" "gcc" "src/jit/CMakeFiles/proteus_jit.dir/AotCompiler.cpp.o.d"
  "/root/repo/src/jit/AutoAnnotate.cpp" "src/jit/CMakeFiles/proteus_jit.dir/AutoAnnotate.cpp.o" "gcc" "src/jit/CMakeFiles/proteus_jit.dir/AutoAnnotate.cpp.o.d"
  "/root/repo/src/jit/AutoTuner.cpp" "src/jit/CMakeFiles/proteus_jit.dir/AutoTuner.cpp.o" "gcc" "src/jit/CMakeFiles/proteus_jit.dir/AutoTuner.cpp.o.d"
  "/root/repo/src/jit/CodeCache.cpp" "src/jit/CMakeFiles/proteus_jit.dir/CodeCache.cpp.o" "gcc" "src/jit/CMakeFiles/proteus_jit.dir/CodeCache.cpp.o.d"
  "/root/repo/src/jit/JitRuntime.cpp" "src/jit/CMakeFiles/proteus_jit.dir/JitRuntime.cpp.o" "gcc" "src/jit/CMakeFiles/proteus_jit.dir/JitRuntime.cpp.o.d"
  "/root/repo/src/jit/Program.cpp" "src/jit/CMakeFiles/proteus_jit.dir/Program.cpp.o" "gcc" "src/jit/CMakeFiles/proteus_jit.dir/Program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/proteus_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/proteus_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/transforms/CMakeFiles/proteus_transforms.dir/DependInfo.cmake"
  "/root/repo/build/src/bitcode/CMakeFiles/proteus_bitcode.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/proteus_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/proteus_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
