file(REMOVE_RECURSE
  "CMakeFiles/proteus_jit.dir/AotCompiler.cpp.o"
  "CMakeFiles/proteus_jit.dir/AotCompiler.cpp.o.d"
  "CMakeFiles/proteus_jit.dir/AutoAnnotate.cpp.o"
  "CMakeFiles/proteus_jit.dir/AutoAnnotate.cpp.o.d"
  "CMakeFiles/proteus_jit.dir/AutoTuner.cpp.o"
  "CMakeFiles/proteus_jit.dir/AutoTuner.cpp.o.d"
  "CMakeFiles/proteus_jit.dir/CodeCache.cpp.o"
  "CMakeFiles/proteus_jit.dir/CodeCache.cpp.o.d"
  "CMakeFiles/proteus_jit.dir/JitRuntime.cpp.o"
  "CMakeFiles/proteus_jit.dir/JitRuntime.cpp.o.d"
  "CMakeFiles/proteus_jit.dir/Program.cpp.o"
  "CMakeFiles/proteus_jit.dir/Program.cpp.o.d"
  "libproteus_jit.a"
  "libproteus_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
