file(REMOVE_RECURSE
  "libproteus_jit.a"
)
