# Empty compiler generated dependencies file for proteus_jit.
# This may be replaced when dependencies are built.
