# Empty compiler generated dependencies file for proteus_ir.
# This may be replaced when dependencies are built.
