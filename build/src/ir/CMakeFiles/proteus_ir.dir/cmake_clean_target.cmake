file(REMOVE_RECURSE
  "libproteus_ir.a"
)
