
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/BasicBlock.cpp" "src/ir/CMakeFiles/proteus_ir.dir/BasicBlock.cpp.o" "gcc" "src/ir/CMakeFiles/proteus_ir.dir/BasicBlock.cpp.o.d"
  "/root/repo/src/ir/Cloning.cpp" "src/ir/CMakeFiles/proteus_ir.dir/Cloning.cpp.o" "gcc" "src/ir/CMakeFiles/proteus_ir.dir/Cloning.cpp.o.d"
  "/root/repo/src/ir/Context.cpp" "src/ir/CMakeFiles/proteus_ir.dir/Context.cpp.o" "gcc" "src/ir/CMakeFiles/proteus_ir.dir/Context.cpp.o.d"
  "/root/repo/src/ir/Dominators.cpp" "src/ir/CMakeFiles/proteus_ir.dir/Dominators.cpp.o" "gcc" "src/ir/CMakeFiles/proteus_ir.dir/Dominators.cpp.o.d"
  "/root/repo/src/ir/Function.cpp" "src/ir/CMakeFiles/proteus_ir.dir/Function.cpp.o" "gcc" "src/ir/CMakeFiles/proteus_ir.dir/Function.cpp.o.d"
  "/root/repo/src/ir/IRBuilder.cpp" "src/ir/CMakeFiles/proteus_ir.dir/IRBuilder.cpp.o" "gcc" "src/ir/CMakeFiles/proteus_ir.dir/IRBuilder.cpp.o.d"
  "/root/repo/src/ir/IRParser.cpp" "src/ir/CMakeFiles/proteus_ir.dir/IRParser.cpp.o" "gcc" "src/ir/CMakeFiles/proteus_ir.dir/IRParser.cpp.o.d"
  "/root/repo/src/ir/IRPrinter.cpp" "src/ir/CMakeFiles/proteus_ir.dir/IRPrinter.cpp.o" "gcc" "src/ir/CMakeFiles/proteus_ir.dir/IRPrinter.cpp.o.d"
  "/root/repo/src/ir/Instructions.cpp" "src/ir/CMakeFiles/proteus_ir.dir/Instructions.cpp.o" "gcc" "src/ir/CMakeFiles/proteus_ir.dir/Instructions.cpp.o.d"
  "/root/repo/src/ir/Interpreter.cpp" "src/ir/CMakeFiles/proteus_ir.dir/Interpreter.cpp.o" "gcc" "src/ir/CMakeFiles/proteus_ir.dir/Interpreter.cpp.o.d"
  "/root/repo/src/ir/Module.cpp" "src/ir/CMakeFiles/proteus_ir.dir/Module.cpp.o" "gcc" "src/ir/CMakeFiles/proteus_ir.dir/Module.cpp.o.d"
  "/root/repo/src/ir/Type.cpp" "src/ir/CMakeFiles/proteus_ir.dir/Type.cpp.o" "gcc" "src/ir/CMakeFiles/proteus_ir.dir/Type.cpp.o.d"
  "/root/repo/src/ir/Value.cpp" "src/ir/CMakeFiles/proteus_ir.dir/Value.cpp.o" "gcc" "src/ir/CMakeFiles/proteus_ir.dir/Value.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/ir/CMakeFiles/proteus_ir.dir/Verifier.cpp.o" "gcc" "src/ir/CMakeFiles/proteus_ir.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/proteus_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
