file(REMOVE_RECURSE
  "CMakeFiles/proteus_ir.dir/BasicBlock.cpp.o"
  "CMakeFiles/proteus_ir.dir/BasicBlock.cpp.o.d"
  "CMakeFiles/proteus_ir.dir/Cloning.cpp.o"
  "CMakeFiles/proteus_ir.dir/Cloning.cpp.o.d"
  "CMakeFiles/proteus_ir.dir/Context.cpp.o"
  "CMakeFiles/proteus_ir.dir/Context.cpp.o.d"
  "CMakeFiles/proteus_ir.dir/Dominators.cpp.o"
  "CMakeFiles/proteus_ir.dir/Dominators.cpp.o.d"
  "CMakeFiles/proteus_ir.dir/Function.cpp.o"
  "CMakeFiles/proteus_ir.dir/Function.cpp.o.d"
  "CMakeFiles/proteus_ir.dir/IRBuilder.cpp.o"
  "CMakeFiles/proteus_ir.dir/IRBuilder.cpp.o.d"
  "CMakeFiles/proteus_ir.dir/IRParser.cpp.o"
  "CMakeFiles/proteus_ir.dir/IRParser.cpp.o.d"
  "CMakeFiles/proteus_ir.dir/IRPrinter.cpp.o"
  "CMakeFiles/proteus_ir.dir/IRPrinter.cpp.o.d"
  "CMakeFiles/proteus_ir.dir/Instructions.cpp.o"
  "CMakeFiles/proteus_ir.dir/Instructions.cpp.o.d"
  "CMakeFiles/proteus_ir.dir/Interpreter.cpp.o"
  "CMakeFiles/proteus_ir.dir/Interpreter.cpp.o.d"
  "CMakeFiles/proteus_ir.dir/Module.cpp.o"
  "CMakeFiles/proteus_ir.dir/Module.cpp.o.d"
  "CMakeFiles/proteus_ir.dir/Type.cpp.o"
  "CMakeFiles/proteus_ir.dir/Type.cpp.o.d"
  "CMakeFiles/proteus_ir.dir/Value.cpp.o"
  "CMakeFiles/proteus_ir.dir/Value.cpp.o.d"
  "CMakeFiles/proteus_ir.dir/Verifier.cpp.o"
  "CMakeFiles/proteus_ir.dir/Verifier.cpp.o.d"
  "libproteus_ir.a"
  "libproteus_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
