# Empty dependencies file for proteus_transforms.
# This may be replaced when dependencies are built.
