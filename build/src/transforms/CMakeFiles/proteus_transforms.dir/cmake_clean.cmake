file(REMOVE_RECURSE
  "CMakeFiles/proteus_transforms.dir/CSE.cpp.o"
  "CMakeFiles/proteus_transforms.dir/CSE.cpp.o.d"
  "CMakeFiles/proteus_transforms.dir/DCE.cpp.o"
  "CMakeFiles/proteus_transforms.dir/DCE.cpp.o.d"
  "CMakeFiles/proteus_transforms.dir/Inliner.cpp.o"
  "CMakeFiles/proteus_transforms.dir/Inliner.cpp.o.d"
  "CMakeFiles/proteus_transforms.dir/InstCombine.cpp.o"
  "CMakeFiles/proteus_transforms.dir/InstCombine.cpp.o.d"
  "CMakeFiles/proteus_transforms.dir/LICM.cpp.o"
  "CMakeFiles/proteus_transforms.dir/LICM.cpp.o.d"
  "CMakeFiles/proteus_transforms.dir/LoopInfo.cpp.o"
  "CMakeFiles/proteus_transforms.dir/LoopInfo.cpp.o.d"
  "CMakeFiles/proteus_transforms.dir/LoopUnroll.cpp.o"
  "CMakeFiles/proteus_transforms.dir/LoopUnroll.cpp.o.d"
  "CMakeFiles/proteus_transforms.dir/Mem2Reg.cpp.o"
  "CMakeFiles/proteus_transforms.dir/Mem2Reg.cpp.o.d"
  "CMakeFiles/proteus_transforms.dir/O3Pipeline.cpp.o"
  "CMakeFiles/proteus_transforms.dir/O3Pipeline.cpp.o.d"
  "CMakeFiles/proteus_transforms.dir/Pass.cpp.o"
  "CMakeFiles/proteus_transforms.dir/Pass.cpp.o.d"
  "CMakeFiles/proteus_transforms.dir/SimplifyCFG.cpp.o"
  "CMakeFiles/proteus_transforms.dir/SimplifyCFG.cpp.o.d"
  "CMakeFiles/proteus_transforms.dir/SpecializeArgs.cpp.o"
  "CMakeFiles/proteus_transforms.dir/SpecializeArgs.cpp.o.d"
  "libproteus_transforms.a"
  "libproteus_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
