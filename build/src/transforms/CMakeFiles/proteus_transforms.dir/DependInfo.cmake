
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transforms/CSE.cpp" "src/transforms/CMakeFiles/proteus_transforms.dir/CSE.cpp.o" "gcc" "src/transforms/CMakeFiles/proteus_transforms.dir/CSE.cpp.o.d"
  "/root/repo/src/transforms/DCE.cpp" "src/transforms/CMakeFiles/proteus_transforms.dir/DCE.cpp.o" "gcc" "src/transforms/CMakeFiles/proteus_transforms.dir/DCE.cpp.o.d"
  "/root/repo/src/transforms/Inliner.cpp" "src/transforms/CMakeFiles/proteus_transforms.dir/Inliner.cpp.o" "gcc" "src/transforms/CMakeFiles/proteus_transforms.dir/Inliner.cpp.o.d"
  "/root/repo/src/transforms/InstCombine.cpp" "src/transforms/CMakeFiles/proteus_transforms.dir/InstCombine.cpp.o" "gcc" "src/transforms/CMakeFiles/proteus_transforms.dir/InstCombine.cpp.o.d"
  "/root/repo/src/transforms/LICM.cpp" "src/transforms/CMakeFiles/proteus_transforms.dir/LICM.cpp.o" "gcc" "src/transforms/CMakeFiles/proteus_transforms.dir/LICM.cpp.o.d"
  "/root/repo/src/transforms/LoopInfo.cpp" "src/transforms/CMakeFiles/proteus_transforms.dir/LoopInfo.cpp.o" "gcc" "src/transforms/CMakeFiles/proteus_transforms.dir/LoopInfo.cpp.o.d"
  "/root/repo/src/transforms/LoopUnroll.cpp" "src/transforms/CMakeFiles/proteus_transforms.dir/LoopUnroll.cpp.o" "gcc" "src/transforms/CMakeFiles/proteus_transforms.dir/LoopUnroll.cpp.o.d"
  "/root/repo/src/transforms/Mem2Reg.cpp" "src/transforms/CMakeFiles/proteus_transforms.dir/Mem2Reg.cpp.o" "gcc" "src/transforms/CMakeFiles/proteus_transforms.dir/Mem2Reg.cpp.o.d"
  "/root/repo/src/transforms/O3Pipeline.cpp" "src/transforms/CMakeFiles/proteus_transforms.dir/O3Pipeline.cpp.o" "gcc" "src/transforms/CMakeFiles/proteus_transforms.dir/O3Pipeline.cpp.o.d"
  "/root/repo/src/transforms/Pass.cpp" "src/transforms/CMakeFiles/proteus_transforms.dir/Pass.cpp.o" "gcc" "src/transforms/CMakeFiles/proteus_transforms.dir/Pass.cpp.o.d"
  "/root/repo/src/transforms/SimplifyCFG.cpp" "src/transforms/CMakeFiles/proteus_transforms.dir/SimplifyCFG.cpp.o" "gcc" "src/transforms/CMakeFiles/proteus_transforms.dir/SimplifyCFG.cpp.o.d"
  "/root/repo/src/transforms/SpecializeArgs.cpp" "src/transforms/CMakeFiles/proteus_transforms.dir/SpecializeArgs.cpp.o" "gcc" "src/transforms/CMakeFiles/proteus_transforms.dir/SpecializeArgs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/proteus_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/proteus_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
