file(REMOVE_RECURSE
  "libproteus_transforms.a"
)
