# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(pirc_verify "/root/repo/build/tools/pirc" "verify" "/root/repo/examples/pir/saxpy.pir")
set_tests_properties(pirc_verify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(pirc_opt "/root/repo/build/tools/pirc" "opt" "/root/repo/examples/pir/saxpy.pir")
set_tests_properties(pirc_opt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(pirc_compile_nv "/root/repo/build/tools/pirc" "compile" "/root/repo/examples/pir/saxpy.pir" "--target=nvptx-sim")
set_tests_properties(pirc_compile_nv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(pirc_run "/root/repo/build/tools/pirc" "run" "/root/repo/examples/pir/saxpy.pir" "--blocks=2" "--threads=64" "--args=1.5,128")
set_tests_properties(pirc_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(pirc_run_reduction "/root/repo/build/tools/pirc" "run" "/root/repo/examples/pir/reduction.pir" "--kernel=weighted_sum" "--blocks=2" "--threads=32" "--args=64,8")
set_tests_properties(pirc_run_reduction PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(pirc_annotate "/root/repo/build/tools/pirc" "annotate" "/root/repo/examples/pir/reduction.pir")
set_tests_properties(pirc_annotate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(trace_check "/usr/bin/cmake" "-DQUICKSTART=/root/repo/build/examples/quickstart" "-DVALIDATOR=/root/repo/build/tools/trace_validate" "-DTRACE_FILE=/root/repo/build/trace_check.json" "-P" "/root/repo/tools/trace_check.cmake")
set_tests_properties(trace_check PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;28;add_test;/root/repo/tools/CMakeLists.txt;0;")
