file(REMOVE_RECURSE
  "CMakeFiles/table2_end_to_end.dir/table2_end_to_end.cpp.o"
  "CMakeFiles/table2_end_to_end.dir/table2_end_to_end.cpp.o.d"
  "table2_end_to_end"
  "table2_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
