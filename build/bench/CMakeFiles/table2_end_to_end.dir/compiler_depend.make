# Empty compiler generated dependencies file for table2_end_to_end.
# This may be replaced when dependencies are built.
