file(REMOVE_RECURSE
  "CMakeFiles/figure6_runtime_overhead.dir/figure6_runtime_overhead.cpp.o"
  "CMakeFiles/figure6_runtime_overhead.dir/figure6_runtime_overhead.cpp.o.d"
  "figure6_runtime_overhead"
  "figure6_runtime_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure6_runtime_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
