# Empty dependencies file for figure6_runtime_overhead.
# This may be replaced when dependencies are built.
