file(REMOVE_RECURSE
  "CMakeFiles/figure9_wsm5.dir/figure9_wsm5.cpp.o"
  "CMakeFiles/figure9_wsm5.dir/figure9_wsm5.cpp.o.d"
  "figure9_wsm5"
  "figure9_wsm5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure9_wsm5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
