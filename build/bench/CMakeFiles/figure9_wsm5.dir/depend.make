# Empty dependencies file for figure9_wsm5.
# This may be replaced when dependencies are built.
