# Empty compiler generated dependencies file for figure4_kernel_only.
# This may be replaced when dependencies are built.
