file(REMOVE_RECURSE
  "CMakeFiles/figure4_kernel_only.dir/figure4_kernel_only.cpp.o"
  "CMakeFiles/figure4_kernel_only.dir/figure4_kernel_only.cpp.o.d"
  "figure4_kernel_only"
  "figure4_kernel_only.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure4_kernel_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
