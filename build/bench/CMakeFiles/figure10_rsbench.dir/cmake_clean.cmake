file(REMOVE_RECURSE
  "CMakeFiles/figure10_rsbench.dir/figure10_rsbench.cpp.o"
  "CMakeFiles/figure10_rsbench.dir/figure10_rsbench.cpp.o.d"
  "figure10_rsbench"
  "figure10_rsbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure10_rsbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
