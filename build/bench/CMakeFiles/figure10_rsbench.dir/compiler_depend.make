# Empty compiler generated dependencies file for figure10_rsbench.
# This may be replaced when dependencies are built.
