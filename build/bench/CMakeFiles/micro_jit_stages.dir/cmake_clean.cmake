file(REMOVE_RECURSE
  "CMakeFiles/micro_jit_stages.dir/micro_jit_stages.cpp.o"
  "CMakeFiles/micro_jit_stages.dir/micro_jit_stages.cpp.o.d"
  "micro_jit_stages"
  "micro_jit_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_jit_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
