# Empty compiler generated dependencies file for micro_jit_stages.
# This may be replaced when dependencies are built.
