file(REMOVE_RECURSE
  "CMakeFiles/figure7_adam.dir/figure7_adam.cpp.o"
  "CMakeFiles/figure7_adam.dir/figure7_adam.cpp.o.d"
  "figure7_adam"
  "figure7_adam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure7_adam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
