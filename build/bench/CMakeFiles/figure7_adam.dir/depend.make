# Empty dependencies file for figure7_adam.
# This may be replaced when dependencies are built.
