file(REMOVE_RECURSE
  "CMakeFiles/async_throughput.dir/async_throughput.cpp.o"
  "CMakeFiles/async_throughput.dir/async_throughput.cpp.o.d"
  "async_throughput"
  "async_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
