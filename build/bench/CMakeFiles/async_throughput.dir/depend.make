# Empty dependencies file for async_throughput.
# This may be replaced when dependencies are built.
