# Empty compiler generated dependencies file for figure3_speedup.
# This may be replaced when dependencies are built.
