file(REMOVE_RECURSE
  "CMakeFiles/figure3_speedup.dir/figure3_speedup.cpp.o"
  "CMakeFiles/figure3_speedup.dir/figure3_speedup.cpp.o.d"
  "figure3_speedup"
  "figure3_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure3_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
