# Empty dependencies file for figure11_sw4ck.
# This may be replaced when dependencies are built.
