file(REMOVE_RECURSE
  "CMakeFiles/figure11_sw4ck.dir/figure11_sw4ck.cpp.o"
  "CMakeFiles/figure11_sw4ck.dir/figure11_sw4ck.cpp.o.d"
  "figure11_sw4ck"
  "figure11_sw4ck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure11_sw4ck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
