# Empty compiler generated dependencies file for figure5_compile_overhead.
# This may be replaced when dependencies are built.
