file(REMOVE_RECURSE
  "CMakeFiles/figure5_compile_overhead.dir/figure5_compile_overhead.cpp.o"
  "CMakeFiles/figure5_compile_overhead.dir/figure5_compile_overhead.cpp.o.d"
  "figure5_compile_overhead"
  "figure5_compile_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure5_compile_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
