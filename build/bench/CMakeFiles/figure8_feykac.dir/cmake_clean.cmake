file(REMOVE_RECURSE
  "CMakeFiles/figure8_feykac.dir/figure8_feykac.cpp.o"
  "CMakeFiles/figure8_feykac.dir/figure8_feykac.cpp.o.d"
  "figure8_feykac"
  "figure8_feykac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure8_feykac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
