# Empty dependencies file for figure8_feykac.
# This may be replaced when dependencies are built.
