file(REMOVE_RECURSE
  "CMakeFiles/table3_cache_size.dir/table3_cache_size.cpp.o"
  "CMakeFiles/table3_cache_size.dir/table3_cache_size.cpp.o.d"
  "table3_cache_size"
  "table3_cache_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_cache_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
