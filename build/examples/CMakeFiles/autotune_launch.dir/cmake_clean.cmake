file(REMOVE_RECURSE
  "CMakeFiles/autotune_launch.dir/autotune_launch.cpp.o"
  "CMakeFiles/autotune_launch.dir/autotune_launch.cpp.o.d"
  "autotune_launch"
  "autotune_launch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_launch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
