# Empty compiler generated dependencies file for autotune_launch.
# This may be replaced when dependencies are built.
