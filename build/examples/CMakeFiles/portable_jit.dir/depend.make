# Empty dependencies file for portable_jit.
# This may be replaced when dependencies are built.
