file(REMOVE_RECURSE
  "CMakeFiles/portable_jit.dir/portable_jit.cpp.o"
  "CMakeFiles/portable_jit.dir/portable_jit.cpp.o.d"
  "portable_jit"
  "portable_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portable_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
