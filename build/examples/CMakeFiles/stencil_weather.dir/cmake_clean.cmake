file(REMOVE_RECURSE
  "CMakeFiles/stencil_weather.dir/stencil_weather.cpp.o"
  "CMakeFiles/stencil_weather.dir/stencil_weather.cpp.o.d"
  "stencil_weather"
  "stencil_weather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_weather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
