# Empty dependencies file for stencil_weather.
# This may be replaced when dependencies are built.
