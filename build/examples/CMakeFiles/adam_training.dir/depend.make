# Empty dependencies file for adam_training.
# This may be replaced when dependencies are built.
