file(REMOVE_RECURSE
  "CMakeFiles/adam_training.dir/adam_training.cpp.o"
  "CMakeFiles/adam_training.dir/adam_training.cpp.o.d"
  "adam_training"
  "adam_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adam_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
