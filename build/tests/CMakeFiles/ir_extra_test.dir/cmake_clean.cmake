file(REMOVE_RECURSE
  "CMakeFiles/ir_extra_test.dir/ir_extra_test.cpp.o"
  "CMakeFiles/ir_extra_test.dir/ir_extra_test.cpp.o.d"
  "ir_extra_test"
  "ir_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
