file(REMOVE_RECURSE
  "CMakeFiles/bitcode_test.dir/bitcode_test.cpp.o"
  "CMakeFiles/bitcode_test.dir/bitcode_test.cpp.o.d"
  "bitcode_test"
  "bitcode_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitcode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
