# Empty dependencies file for bitcode_test.
# This may be replaced when dependencies are built.
