# Empty dependencies file for gpu_extras_test.
# This may be replaced when dependencies are built.
