file(REMOVE_RECURSE
  "CMakeFiles/gpu_extras_test.dir/gpu_extras_test.cpp.o"
  "CMakeFiles/gpu_extras_test.dir/gpu_extras_test.cpp.o.d"
  "gpu_extras_test"
  "gpu_extras_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
