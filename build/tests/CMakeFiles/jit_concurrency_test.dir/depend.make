# Empty dependencies file for jit_concurrency_test.
# This may be replaced when dependencies are built.
