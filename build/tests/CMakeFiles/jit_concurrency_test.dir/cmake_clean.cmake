file(REMOVE_RECURSE
  "CMakeFiles/jit_concurrency_test.dir/jit_concurrency_test.cpp.o"
  "CMakeFiles/jit_concurrency_test.dir/jit_concurrency_test.cpp.o.d"
  "jit_concurrency_test"
  "jit_concurrency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jit_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
