file(REMOVE_RECURSE
  "CMakeFiles/ir_textual_test.dir/ir_textual_test.cpp.o"
  "CMakeFiles/ir_textual_test.dir/ir_textual_test.cpp.o.d"
  "ir_textual_test"
  "ir_textual_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_textual_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
