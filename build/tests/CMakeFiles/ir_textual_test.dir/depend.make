# Empty dependencies file for ir_textual_test.
# This may be replaced when dependencies are built.
