# Empty compiler generated dependencies file for ir_core_test.
# This may be replaced when dependencies are built.
