file(REMOVE_RECURSE
  "CMakeFiles/ir_core_test.dir/ir_core_test.cpp.o"
  "CMakeFiles/ir_core_test.dir/ir_core_test.cpp.o.d"
  "ir_core_test"
  "ir_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
