file(REMOVE_RECURSE
  "CMakeFiles/autotuner_test.dir/autotuner_test.cpp.o"
  "CMakeFiles/autotuner_test.dir/autotuner_test.cpp.o.d"
  "autotuner_test"
  "autotuner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotuner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
