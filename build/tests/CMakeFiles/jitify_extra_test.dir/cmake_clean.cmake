file(REMOVE_RECURSE
  "CMakeFiles/jitify_extra_test.dir/jitify_extra_test.cpp.o"
  "CMakeFiles/jitify_extra_test.dir/jitify_extra_test.cpp.o.d"
  "jitify_extra_test"
  "jitify_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitify_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
