# Empty dependencies file for jitify_extra_test.
# This may be replaced when dependencies are built.
