file(REMOVE_RECURSE
  "CMakeFiles/cache_eviction_test.dir/cache_eviction_test.cpp.o"
  "CMakeFiles/cache_eviction_test.dir/cache_eviction_test.cpp.o.d"
  "cache_eviction_test"
  "cache_eviction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_eviction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
