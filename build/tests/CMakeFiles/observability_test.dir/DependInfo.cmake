
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/observability_test.cpp" "tests/CMakeFiles/observability_test.dir/observability_test.cpp.o" "gcc" "tests/CMakeFiles/observability_test.dir/observability_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jit/CMakeFiles/proteus_jit.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/proteus_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/proteus_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/transforms/CMakeFiles/proteus_transforms.dir/DependInfo.cmake"
  "/root/repo/build/src/bitcode/CMakeFiles/proteus_bitcode.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/proteus_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/proteus_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
