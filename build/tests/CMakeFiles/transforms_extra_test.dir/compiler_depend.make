# Empty compiler generated dependencies file for transforms_extra_test.
# This may be replaced when dependencies are built.
