file(REMOVE_RECURSE
  "CMakeFiles/transforms_extra_test.dir/transforms_extra_test.cpp.o"
  "CMakeFiles/transforms_extra_test.dir/transforms_extra_test.cpp.o.d"
  "transforms_extra_test"
  "transforms_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transforms_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
