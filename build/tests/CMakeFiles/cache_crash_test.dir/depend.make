# Empty dependencies file for cache_crash_test.
# This may be replaced when dependencies are built.
