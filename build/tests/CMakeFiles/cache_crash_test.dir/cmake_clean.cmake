file(REMOVE_RECURSE
  "CMakeFiles/cache_crash_test.dir/cache_crash_test.cpp.o"
  "CMakeFiles/cache_crash_test.dir/cache_crash_test.cpp.o.d"
  "cache_crash_test"
  "cache_crash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_crash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
