# Empty compiler generated dependencies file for autoannotate_test.
# This may be replaced when dependencies are built.
