file(REMOVE_RECURSE
  "CMakeFiles/autoannotate_test.dir/autoannotate_test.cpp.o"
  "CMakeFiles/autoannotate_test.dir/autoannotate_test.cpp.o.d"
  "autoannotate_test"
  "autoannotate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoannotate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
