# Empty dependencies file for hecbench_test.
# This may be replaced when dependencies are built.
