file(REMOVE_RECURSE
  "CMakeFiles/hecbench_test.dir/hecbench_test.cpp.o"
  "CMakeFiles/hecbench_test.dir/hecbench_test.cpp.o.d"
  "hecbench_test"
  "hecbench_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hecbench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
