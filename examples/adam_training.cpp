//===- adam_training.cpp - ML training-loop example --------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The machine-learning scenario from the paper's Table 1: an Adam optimizer
// step applied every training iteration. The hyper-parameters never change
// within a run, so Proteus folds them (and the pow-based bias corrections)
// into the kernel, and the whole training loop reuses one cached
// specialization. The example runs the same workload AOT and under Proteus
// and reports the executed-instruction reduction and kernel-time speedup.
//
// Build and run:   ./examples/adam_training
//
//===----------------------------------------------------------------------===//

#include "hecbench/Benchmark.h"
#include "support/FileSystem.h"

#include <cstdio>

using namespace proteus;
using namespace proteus::hecbench;

int main() {
  auto Adam = makeAdamBenchmark();

  RunConfig Aot;
  Aot.Arch = GpuArch::AmdGcnSim;
  Aot.Mode = ExecMode::AOT;
  RunResult A = runBenchmark(*Adam, Aot);
  if (!A.Ok) {
    std::fprintf(stderr, "AOT run failed: %s\n", A.Error.c_str());
    return 1;
  }

  RunConfig Jit = Aot;
  Jit.Mode = ExecMode::Proteus;
  Jit.Jit.CacheDir = proteus::fs::makeTempDirectory("proteus-adam-cache");
  RunResult P = runBenchmark(*Adam, Jit);
  if (!P.Ok) {
    std::fprintf(stderr, "Proteus run failed: %s\n", P.Error.c_str());
    return 1;
  }

  const gpu::LaunchStats &SA = A.Profile.at("adam");
  const gpu::LaunchStats &SP = P.Profile.at("adam");
  std::printf("ADAM training step on %s\n", gpuArchName(Aot.Arch));
  std::printf("  executed instructions:  AOT %llu -> Proteus %llu "
              "(%.2fx fewer)\n",
              static_cast<unsigned long long>(SA.TotalInstrs),
              static_cast<unsigned long long>(SP.TotalInstrs),
              static_cast<double>(SA.TotalInstrs) /
                  static_cast<double>(SP.TotalInstrs));
  std::printf("  transcendental ops:     AOT %llu -> Proteus %llu "
              "(pow(b, t) folded to constants)\n",
              static_cast<unsigned long long>(SA.TranscendentalInsts),
              static_cast<unsigned long long>(SP.TranscendentalInsts));
  std::printf("  kernel time:            AOT %.6fs -> Proteus %.6fs "
              "(%.2fx)\n",
              A.KernelSeconds, P.KernelSeconds,
              A.KernelSeconds / P.KernelSeconds);
  std::printf("  end-to-end:             AOT %.6fs -> Proteus %.6fs "
              "(%.2fx, incl. %.3fms JIT)\n",
              A.endToEndSeconds(), P.endToEndSeconds(),
              A.endToEndSeconds() / P.endToEndSeconds(),
              P.HostJitSeconds * 1e3);
  std::printf("  specializations compiled: %llu (one per distinct "
              "hyper-parameter set)\n",
              static_cast<unsigned long long>(P.JitCompilations));
  return 0;
}
