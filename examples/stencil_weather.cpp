//===- stencil_weather.cpp - weather-stencil example ------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The weather-simulation scenario (paper Table 1, WSM5): a column
// microphysics kernel whose configuration — level count, physics constants,
// the freezing-path flag — is fixed for a whole forecast run. The example
// contrasts the paper's section 4.5 specialization modes on the AMD-like
// target, showing how launch bounds eliminate spills and runtime constant
// folding removes the disabled physics path, and that their combination is
// the fastest (the paper's Figure 9 conclusion).
//
// Build and run:   ./examples/stencil_weather
//
//===----------------------------------------------------------------------===//

#include "hecbench/Benchmark.h"
#include "support/FileSystem.h"

#include <cstdio>

using namespace proteus;
using namespace proteus::hecbench;

namespace {

RunResult runMode(const Benchmark &B, bool RCF, bool LB,
                  const std::string &CacheRoot, const char *Tag) {
  RunConfig C;
  C.Arch = GpuArch::AmdGcnSim;
  C.Mode = ExecMode::Proteus;
  C.Jit.EnableRCF = RCF;
  C.Jit.EnableLaunchBounds = LB;
  C.Jit.CacheDir = CacheRoot + "/" + Tag;
  RunResult R = runBenchmark(B, C);
  if (!R.Ok) {
    std::fprintf(stderr, "%s failed: %s\n", Tag, R.Error.c_str());
    std::exit(1);
  }
  return R;
}

} // namespace

int main() {
  auto Wsm5 = makeWsm5Benchmark();
  std::string Root = proteus::fs::makeTempDirectory("proteus-weather");

  RunConfig AotC;
  AotC.Arch = GpuArch::AmdGcnSim;
  AotC.Mode = ExecMode::AOT;
  RunResult Aot = runBenchmark(*Wsm5, AotC);
  if (!Aot.Ok) {
    std::fprintf(stderr, "AOT failed: %s\n", Aot.Error.c_str());
    return 1;
  }

  struct ModeRow {
    const char *Name;
    RunResult R;
  };
  std::vector<ModeRow> Rows;
  Rows.push_back({"None", runMode(*Wsm5, false, false, Root, "none")});
  Rows.push_back({"LB", runMode(*Wsm5, false, true, Root, "lb")});
  Rows.push_back({"RCF", runMode(*Wsm5, true, false, Root, "rcf")});
  Rows.push_back({"LB+RCF", runMode(*Wsm5, true, true, Root, "both")});

  const gpu::LaunchStats &A = Aot.Profile.at("wsm5");
  std::printf("WSM5 column microphysics on amdgcn-sim (16 levels, 2048 "
              "columns)\n\n");
  std::printf("%-8s %12s %10s %14s %10s %8s\n", "mode", "kernel(s)",
              "speedup", "instructions", "spill ops", "regs");
  std::printf("%-8s %12.6f %10s %14llu %10llu %8u\n", "AOT",
              Aot.KernelSeconds, "1.00x",
              static_cast<unsigned long long>(A.TotalInstrs),
              static_cast<unsigned long long>(A.SpillLoads + A.SpillStores),
              A.RegsUsed);
  for (const ModeRow &Row : Rows) {
    const gpu::LaunchStats &S = Row.R.Profile.at("wsm5");
    std::printf("%-8s %12.6f %9.2fx %14llu %10llu %8u\n", Row.Name,
                Row.R.KernelSeconds,
                Aot.KernelSeconds / Row.R.KernelSeconds,
                static_cast<unsigned long long>(S.TotalInstrs),
                static_cast<unsigned long long>(S.SpillLoads +
                                                S.SpillStores),
                S.RegsUsed);
  }
  std::printf("\nLB raises the register budget (fewer spills); RCF folds "
              "the freezing-path\nselect and the level-loop bound; together "
              "they compound — the paper's\nFigure 9 behaviour.\n");
  return 0;
}
