module "reduction_example"

global @scale_table : f64 x 4 = hex 000000000000f03f000000000000004000000000000008400000000000001040

device @weight(%i: i32, %t: ptr) : f64 always_inline {
entry:
  %m = and %i, i32 3
  %p = ptradd %t, %m, 8
  %w = load f64, %p
  ret %w
}

kernel @weighted_sum(%in: ptr, %out: ptr, %n: i32, %steps: i32) annotate("jit", 3, 4) {
entry:
  %gtid_b = block_idx.x
  %gtid_d = block_dim.x
  %gtid_t = thread_idx.x
  %base = mul %gtid_b, %gtid_d
  %gtid = add %base, %gtid_t
  %ok = icmp slt %gtid, %n
  condbr %ok, %pre, %exit
pre:
  %inp = ptradd %in, %gtid, 8
  %x = load f64, %inp
  br %loop
loop:
  %i = phi i32 [ i32 0, %pre ], [ %inext, %loop ]
  %acc = phi f64 [ f64 0.0, %pre ], [ %accnext, %loop ]
  %w = call @weight(%i, @scale_table) : f64
  %term = fmul %x, %w
  %accnext = fadd %acc, %term
  %inext = add %i, i32 1
  %more = icmp slt %inext, %steps
  condbr %more, %loop, %done
done:
  %outp = ptradd %out, %gtid, 8
  store %accnext, %outp
  br %exit
exit:
  ret
}
