module "saxpy_example"

kernel @saxpy(%a: f32, %x: ptr, %y: ptr, %n: i32) annotate("jit", 1, 4) {
entry:
  %bid = block_idx.x
  %bdim = block_dim.x
  %tid = thread_idx.x
  %base = mul %bid, %bdim
  %i = add %base, %tid
  %ok = icmp slt %i, %n
  condbr %ok, %body, %exit
body:
  %xp = ptradd %x, %i, 4
  %yp = ptradd %y, %i, 4
  %xv = load f32, %xp
  %yv = load f32, %yp
  %ax = fmul %a, %xv
  %sum = fadd %ax, %yv
  store %sum, %yp
  br %exit
exit:
  ret
}
