//===- portable_jit.cpp - portability and baseline comparison example --------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Demonstrates the two claims of the paper's Table 4 on the simulated
// stack: (1) portability — the *same annotated program* runs through the
// Proteus JIT on both the AMD-like and the NVIDIA-like target, with the
// NVIDIA path transparently taking the extra PTX-assembly step and reading
// its bitcode back from device memory; (2) against the source-string
// baseline — Jitify-sim only supports the NVIDIA-like target and pays a
// much larger runtime front-end cost for the same specialization.
//
// Build and run:   ./examples/portable_jit
//
//===----------------------------------------------------------------------===//

#include "hecbench/Benchmark.h"
#include "support/FileSystem.h"
#include "jitify/Jitify.h"

#include <cstdio>

using namespace proteus;
using namespace proteus::hecbench;

int main() {
  auto Feykac = makeFeykacBenchmark();
  std::string Root = proteus::fs::makeTempDirectory("proteus-portable");

  std::printf("FEY-KAC through the Proteus JIT on both targets:\n\n");
  for (GpuArch Arch : {GpuArch::AmdGcnSim, GpuArch::NvPtxSim}) {
    RunConfig C;
    C.Arch = Arch;
    C.Mode = ExecMode::Proteus;
    C.Jit.CacheDir = Root + "/" + gpuArchName(Arch);
    RunResult R = runBenchmark(*Feykac, C);
    if (!R.Ok) {
      std::fprintf(stderr, "%s failed: %s\n", gpuArchName(Arch),
                   R.Error.c_str());
      return 1;
    }
    std::printf("  %-12s kernels %.6fs, JIT %.3fms, %llu specialization(s),"
                " verified %s\n",
                gpuArchName(Arch), R.KernelSeconds,
                R.HostJitSeconds * 1e3,
                static_cast<unsigned long long>(R.JitCompilations),
                R.Verified ? "yes" : "NO");
  }

  std::printf("\nThe Jitify-sim baseline (CUDA-only, source strings):\n\n");
  {
    RunConfig C;
    C.Arch = GpuArch::AmdGcnSim;
    C.Mode = ExecMode::Jitify;
    RunResult R = runBenchmark(*Feykac, C);
    std::printf("  on amdgcn-sim: %s (expected — Jitify is not portable)\n",
                R.Ok ? "unexpectedly succeeded" : R.Error.c_str());
  }
  {
    RunConfig C;
    C.Arch = GpuArch::NvPtxSim;
    C.Mode = ExecMode::Jitify;
    RunResult R = runBenchmark(*Feykac, C);
    if (!R.Ok) {
      std::fprintf(stderr, "jitify run failed: %s\n", R.Error.c_str());
      return 1;
    }
    std::printf("  on nvptx-sim:  kernels %.6fs, runtime compilation "
                "%.3fms\n",
                R.KernelSeconds, R.HostJitSeconds * 1e3);
    std::printf("\nJitify re-parses its header library and the stringified"
                " kernel source on\nevery compilation — the overhead gap"
                " behind the paper's Figure 4.\n");
  }
  return 0;
}
