//===- autotune_launch.cpp - launch auto-tuning example -----------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The paper's section 6 outlook ("exploring runtime optimizations like
// kernel scheduling and auto-tuning") running on the reproduction: the
// RSBENCH lookup kernel is launch-bounds-sensitive (register pressure), so
// the best block size is not obvious. The auto-tuner JIT-compiles one
// specialization per candidate block size — launch bounds make each one a
// distinct cache entry — times them on the simulator with side effects
// rolled back (device memory and per-stream timelines restored, trials
// pinned to the final compilation tier, any attached device accepted),
// and pins the winner, whose binary is already cached.
//
// This is the legacy live-device protocol. The replay-driven
// VariantManager (same header) additionally races pipeline variants on
// captured launches without touching a live device at all, and persists
// its decisions — see bench/autotune_speedup and DESIGN.md section 2h.
//
// Build and run:   ./examples/autotune_launch
//
//===----------------------------------------------------------------------===//

#include "hecbench/Benchmark.h"
#include "ir/Context.h"
#include "ir/OpSemantics.h"
#include "ir/Module.h"
#include "jit/AutoTuner.h"
#include "support/FileSystem.h"

#include <cstdio>

using namespace proteus;
using namespace proteus::gpu;

int main() {
  // Reuse the RSBENCH module: one annotated kernel with a wide accumulator
  // band whose spill behaviour depends on launch bounds.
  auto Bench = hecbench::makeRsbenchBenchmark();
  pir::Context Ctx;
  auto M = Bench->buildModule(Ctx);

  AotOptions AO;
  AO.Arch = GpuArch::AmdGcnSim;
  AO.EnableProteusExtensions = true;
  CompiledProgram Prog = aotCompile(*M, AO);

  Device Dev(getAmdGcnSimTarget());
  JitConfig JC;
  JC.CacheDir = fs::makeTempDirectory("proteus-autotune");
  JitRuntime Jit(Dev, Prog.ModuleId, JC);
  LoadedProgram LP(Dev, Prog, &Jit);
  if (!LP.ok()) {
    std::fprintf(stderr, "load failed: %s\n", LP.error().c_str());
    return 1;
  }

  constexpr uint32_t Lookups = 1024;
  DevicePtr Energies = 0, Poles = 0, Xs = 0;
  gpuMalloc(Dev, &Energies, Lookups * 8);
  gpuMalloc(Dev, &Poles, 5 * 16 * 2 * 8);
  gpuMalloc(Dev, &Xs, Lookups * 4 * 8);
  std::vector<double> H(Lookups);
  for (uint32_t I = 0; I != Lookups; ++I)
    H[I] = 0.1 + 0.02 * I;
  gpuMemcpyHtoD(Dev, Energies, H.data(), Lookups * 8);

  std::vector<KernelArg> Args = {
      {Energies}, {Poles}, {Xs},
      {Lookups},  {5},     {16},
      {pir::sem::boxF64(0.25)}};

  TuningResult R = autotuneBlockSize(Dev, Jit, "xs_lookup", Lookups, Args,
                                     {64, 128, 256, 512, 1024});
  if (!R.Ok) {
    std::fprintf(stderr, "tuning failed: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("auto-tuning xs_lookup over %u work items on %s:\n\n", Lookups,
              Dev.target().Name.c_str());
  std::printf("  %-16s %-14s %s\n", "threads/block", "kernel (s)", "");
  for (const TuningTrial &T : R.Trials)
    std::printf("  %-16u %-14.9f%s\n", T.ThreadsPerBlock, T.KernelSeconds,
                T.ThreadsPerBlock == R.BestThreadsPerBlock ? "  <== best"
                                                           : "");
  std::printf("\n%llu specializations compiled (one per launch-bounds "
              "value), all cached;\nthe winning configuration launches "
              "from the cache with zero further cost.\n",
              static_cast<unsigned long long>(Jit.stats().Compilations));
  return 0;
}
