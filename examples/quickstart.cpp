//===- quickstart.cpp - Proteus end-to-end quickstart ----------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The paper's Figure 2 walkthrough on the simulated stack:
//
//   1. write a GPU kernel (daxpy) and annotate it for JIT specialization
//      with annotate("jit", 1, 4) — fold argument a (1) and n (4);
//   2. AOT-compile the program with the Proteus extensions enabled: the
//      "plugin" extracts the kernel's unoptimized bitcode into the device
//      image and redirects its launches to __jit_launch_kernel;
//   3. run: the first launch JIT-compiles a specialization (folding the
//      runtime values of a and n, setting launch bounds from the actual
//      block size), caches it, and every subsequent identical launch hits
//      the cache.
//
// Build and run:   ./examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/OpSemantics.h"
#include "jit/Program.h"
#include "support/FileSystem.h"

#include <cstdio>
#include <vector>

using namespace proteus;
using namespace proteus::gpu;

/// Builds the annotated daxpy kernel: y[i] = a * x[i] + y[i].
static std::unique_ptr<pir::Module> buildProgram(pir::Context &Ctx) {
  auto M = std::make_unique<pir::Module>(Ctx, "quickstart");
  pir::IRBuilder B(Ctx);
  pir::Function *F = M->createFunction(
      "daxpy", Ctx.getVoidTy(),
      {Ctx.getF64Ty(), Ctx.getPtrTy(), Ctx.getPtrTy(), Ctx.getI32Ty()},
      {"a", "x", "y", "n"}, pir::FunctionKind::Kernel);
  // __attribute__((annotate("jit", 1, 4))) — specialize a and n.
  F->setJitAnnotation(pir::JitAnnotation{{1, 4}});

  pir::BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  pir::BasicBlock *Body = F->createBlock("body", Ctx.getVoidTy());
  pir::BasicBlock *Exit = F->createBlock("exit", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  pir::Value *I = B.createGlobalThreadIdX();
  B.createCondBr(B.createICmp(pir::ICmpPred::SLT, I, F->getArg(3)), Body,
                 Exit);
  B.setInsertPoint(Body);
  pir::Value *Xp = B.createGep(Ctx.getF64Ty(), F->getArg(1), I);
  pir::Value *Yp = B.createGep(Ctx.getF64Ty(), F->getArg(2), I);
  pir::Value *Ax = B.createFMul(F->getArg(0),
                                B.createLoad(Ctx.getF64Ty(), Xp));
  B.createStore(B.createFAdd(Ax, B.createLoad(Ctx.getF64Ty(), Yp)), Yp);
  B.createBr(Exit);
  B.setInsertPoint(Exit);
  B.createRet();
  return M;
}

int main() {
  pir::Context Ctx;
  std::unique_ptr<pir::Module> M = buildProgram(Ctx);

  // --- AOT build with the Proteus extensions -------------------------------
  AotOptions AO;
  AO.Arch = GpuArch::AmdGcnSim;
  AO.EnableProteusExtensions = true;
  CompiledProgram Program = aotCompile(*M, AO);
  std::printf("AOT build: %zu kernel binaries, %zu JIT bitcode sections, "
              "module id %016llx\n",
              Program.Image.KernelObjects.size(),
              Program.Image.JitSections.size(),
              static_cast<unsigned long long>(Program.ModuleId));

  // --- Runtime --------------------------------------------------------------
  Device Dev(getAmdGcnSimTarget());
  JitConfig JC;
  JC.CacheDir = fs::makeTempDirectory("proteus-quickstart-cache");
  JitRuntime Jit(Dev, Program.ModuleId, JC);
  LoadedProgram LP(Dev, Program, &Jit);
  if (!LP.ok()) {
    std::fprintf(stderr, "load failed: %s\n", LP.error().c_str());
    return 1;
  }

  constexpr uint32_t N = 1 << 16;
  DevicePtr X = 0, Y = 0;
  gpuMalloc(Dev, &X, N * sizeof(double));
  gpuMalloc(Dev, &Y, N * sizeof(double));
  std::vector<double> Host(N);
  for (uint32_t I = 0; I != N; ++I)
    Host[I] = 1.0 * I;
  gpuMemcpyHtoD(Dev, X, Host.data(), N * sizeof(double));
  std::fill(Host.begin(), Host.end(), 10.0);
  gpuMemcpyHtoD(Dev, Y, Host.data(), N * sizeof(double));

  // --- Launch through __jit_launch_kernel ------------------------------------
  std::vector<KernelArg> Args = {
      {pir::sem::boxF64(2.0)}, {X}, {Y}, {N}};
  std::string Err;
  for (int Iter = 0; Iter != 5; ++Iter) {
    if (LP.launch("daxpy", Dim3{N / 256, 1, 1}, Dim3{256, 1, 1}, Args,
                  &Err) != GpuError::Success) {
      std::fprintf(stderr, "launch failed: %s\n", Err.c_str());
      return 1;
    }
  }

  gpuMemcpyDtoH(Dev, Host.data(), Y, N * sizeof(double));
  std::printf("y[1] = %.1f (expected %.1f after 5 daxpy iterations)\n",
              Host[1], 10.0 + 5 * 2.0 * 1.0);

  const JitRuntimeStats &S = Jit.stats();
  std::printf("JIT launches: %llu, compilations: %llu (the other %llu hit "
              "the specialization cache)\n",
              static_cast<unsigned long long>(S.Launches),
              static_cast<unsigned long long>(S.Compilations),
              static_cast<unsigned long long>(S.Launches - S.Compilations));
  std::printf("code cache: %llu bytes in memory, %llu bytes persistent "
              "(%s)\n",
              static_cast<unsigned long long>(Jit.cache().memoryBytes()),
              static_cast<unsigned long long>(Jit.cache().persistentBytes()),
              JC.CacheDir.c_str());
  std::printf("last kernel: %llu dynamic instructions, %u registers, "
              "%.1f%% occupancy\n",
              static_cast<unsigned long long>(Dev.LastLaunch.TotalInstrs),
              Dev.LastLaunch.RegsUsed, 100.0 * Dev.LastLaunch.Occupancy);
  return Host[1] == 20.0 ? 0 : 1;
}
