//===- capture_pressure_test.cpp - capture ring under pressure ------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The capture ring's load-shedding contract:
//
//  * a full ring sheds captures without blocking or failing the launch —
//    drops are counted in the runtime's metrics registry and partially
//    built artifacts are never persisted;
//  * once the writer resumes, every surviving record lands on disk as a
//    complete, parseable artifact that replays byte-identical;
//  * a multithreaded launch storm with capture enabled is data-race free
//    (this binary runs under TSan in tools/ci_tsan.sh) and accounts every
//    launch as exactly one record or one drop.
//
//===----------------------------------------------------------------------===//

#include "RandomKernel.h"

#include "capture/Artifact.h"
#include "capture/Capture.h"
#include "codegen/Target.h"
#include "ir/Context.h"
#include "ir/OpSemantics.h"
#include "jit/Program.h"
#include "jit/Replay.h"
#include "support/FileSystem.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

using namespace pir;
using namespace proteus;
using namespace proteus::gpu;
using namespace proteus_test;

namespace {

constexpr uint32_t N = 32;

uint64_t counterValue(const metrics::Registry &R, const std::string &Name) {
  for (const auto &[K, V] : R.counterValues())
    if (K == Name)
      return V;
  return 0;
}

/// One capture-enabled runtime around the seed-3 random kernel, ready to
/// launch repeatedly. Defaults to capture-every-launch (dedup off) so the
/// pressure tests can fill the ring with identical launches; the dedup
/// test opts back in.
struct CaptureRig {
  explicit CaptureRig(unsigned RingCapacity, bool Dedup = false)
      : Dir(fs::makeTempDirectory("proteus-capture-pressure")),
        Dev(getTarget(GpuArch::AmdGcnSim), 1 << 22) {
    Context Ctx;
    Module M(Ctx, "pressure");
    buildRandomKernelInto(M, 3);
    AotOptions AO;
    AO.Arch = GpuArch::AmdGcnSim;
    AO.EnableProteusExtensions = true;
    Prog = aotCompile(M, AO);

    JitConfig JC;
    JC.UsePersistentCache = false;
    JC.Capture = true;
    JC.CaptureDir = Dir;
    JC.CaptureRing = RingCapacity;
    JC.CaptureDedup = Dedup;
    Jit = std::make_unique<JitRuntime>(Dev, Prog.ModuleId, JC);
    LP = std::make_unique<LoadedProgram>(Dev, Prog, Jit.get());

    gpuMalloc(Dev, &In, N * sizeof(double));
    gpuMalloc(Dev, &Out, N * sizeof(double));
    std::vector<double> Init(N, 1.5);
    gpuMemcpyHtoD(Dev, In, Init.data(), N * sizeof(double));
  }

  ~CaptureRig() {
    LP.reset();
    Jit.reset(); // persists any queued captures
    fs::removeAllFiles(Dir);
  }

  GpuError launch(std::string *Error = nullptr, uint64_t Si = 6) {
    std::vector<KernelArg> Args = {
        {In}, {Out}, {N}, {sem::boxF64(2.25)}, {Si}};
    return LP->launch("rk", Dim3{1, 1, 1}, Dim3{N, 1, 1}, Args, Error);
  }

  uint64_t counter(const std::string &Name) const {
    return counterValue(Jit->metricsRegistry(), Name);
  }

  std::string Dir;
  Device Dev;
  CompiledProgram Prog;
  std::unique_ptr<JitRuntime> Jit;
  std::unique_ptr<LoadedProgram> LP;
  DevicePtr In = 0, Out = 0;
};

TEST(CapturePressureTest, FullRingShedsWithoutBlockingOrCorrupting) {
  constexpr unsigned Ring = 2;
  constexpr unsigned Launches = 20;
  CaptureRig Rig(Ring);
  capture::CaptureSession *S = Rig.Jit->captureSession();
  ASSERT_NE(S, nullptr);
  EXPECT_TRUE(S->ok());
  EXPECT_EQ(S->ringCapacity(), Ring);

  // Freeze the writer: the ring fills after two captures and every further
  // launch must shed — and still succeed, immediately.
  S->pauseWriterForTest(true);
  for (unsigned I = 0; I != Launches; ++I) {
    std::string Error;
    ASSERT_EQ(Rig.launch(&Error), GpuError::Success) << Error;
  }

  EXPECT_EQ(Rig.counter("capture.records"), Ring);
  EXPECT_EQ(Rig.counter("capture.drops"), Launches - Ring);
  // Nothing persisted while the writer is frozen — partial artifacts are
  // never visible, not even transiently.
  EXPECT_TRUE(fs::listFiles(Rig.Dir).empty());
  EXPECT_EQ(Rig.counter("capture.artifacts"), 0u);

  // Resume and drain: exactly the ring's worth of complete artifacts.
  S->pauseWriterForTest(false);
  S->flush();
  EXPECT_EQ(Rig.counter("capture.artifacts"), Ring);

  std::vector<std::string> Files = fs::listFiles(Rig.Dir);
  ASSERT_EQ(Files.size(), Ring);
  for (const std::string &Name : Files) {
    std::string Error;
    auto A = capture::readArtifactFile(Rig.Dir + "/" + Name, &Error);
    ASSERT_TRUE(A) << Name << ": " << Error;
    EXPECT_EQ(A->KernelSymbol, "rk");

    ReplayOptions Opts;
    Opts.Jit.UsePersistentCache = false;
    ReplayResult R = replayArtifact(*A, Opts);
    EXPECT_TRUE(R.passed())
        << Name << ": " << R.Error << R.FirstMismatch;
  }
}

TEST(CapturePressureTest, LaunchStormAccountsEveryLaunch) {
  constexpr unsigned Threads = 8;
  constexpr unsigned PerThread = 24;
  CaptureRig Rig(/*RingCapacity=*/16);

  // Prime the specialization once so the storm exercises the capture path
  // on the loaded-kernel fast path, all threads at once.
  ASSERT_EQ(Rig.launch(), GpuError::Success);

  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([&Rig, &Failures] {
      for (unsigned I = 0; I != PerThread; ++I)
        if (Rig.launch() != GpuError::Success)
          Failures.fetch_add(1, std::memory_order_relaxed);
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(Failures.load(), 0u);

  Rig.Jit->drain(); // settles the writer; flushes every queued capture

  // Every capture-eligible launch is exactly one record or one drop; every
  // record became exactly one complete artifact.
  uint64_t Records = Rig.counter("capture.records");
  uint64_t Drops = Rig.counter("capture.drops");
  EXPECT_EQ(Records + Drops, uint64_t(Threads) * PerThread + 1);
  EXPECT_EQ(Rig.counter("capture.artifacts"), Records);
  EXPECT_EQ(Rig.counter("capture.write_failures"), 0u);

  std::vector<std::string> Files = fs::listFiles(Rig.Dir);
  EXPECT_EQ(Files.size(), Records);
  for (const std::string &Name : Files) {
    std::string Error;
    auto A = capture::readArtifactFile(Rig.Dir + "/" + Name, &Error);
    ASSERT_TRUE(A) << Name << ": " << Error;
    EXPECT_EQ(A->Arch, GpuArch::AmdGcnSim);
    EXPECT_FALSE(A->Bitcode.empty());
  }
}

TEST(CapturePressureTest, DedupRecordsEachLaunchShapeOnce) {
  // Default capture mode: a steady-state loop re-launching the same shape
  // records it exactly once; every repeat is a cheap dedup skip, never a
  // drop. A changed annotated argument is a new shape and is captured.
  CaptureRig Rig(/*RingCapacity=*/16, /*Dedup=*/true);
  for (unsigned I = 0; I != 10; ++I)
    ASSERT_EQ(Rig.launch(), GpuError::Success);
  Rig.Jit->drain();
  EXPECT_EQ(Rig.counter("capture.records"), 1u);
  EXPECT_EQ(Rig.counter("capture.dedup"), 9u);
  EXPECT_EQ(Rig.counter("capture.drops"), 0u);
  EXPECT_EQ(Rig.counter("capture.artifacts"), 1u);

  for (unsigned I = 0; I != 5; ++I)
    ASSERT_EQ(Rig.launch(nullptr, /*Si=*/7), GpuError::Success);
  Rig.Jit->drain();
  EXPECT_EQ(Rig.counter("capture.records"), 2u);
  EXPECT_EQ(Rig.counter("capture.dedup"), 13u);
  EXPECT_EQ(Rig.counter("capture.artifacts"), 2u);

  // Both recorded shapes replay byte-identical.
  std::vector<std::string> Files = fs::listFiles(Rig.Dir);
  ASSERT_EQ(Files.size(), 2u);
  for (const std::string &Name : Files) {
    std::string Error;
    auto A = capture::readArtifactFile(Rig.Dir + "/" + Name, &Error);
    ASSERT_TRUE(A) << Name << ": " << Error;
    ReplayOptions Opts;
    Opts.Jit.UsePersistentCache = false;
    ReplayResult R = replayArtifact(*A, Opts);
    EXPECT_TRUE(R.passed()) << Name << ": " << R.Error << R.FirstMismatch;
  }
}

TEST(CapturePressureTest, UnwritableDirectoryShedsEverything) {
  // A path under a regular file can never be created; the session must
  // stay alive, report !ok(), and shed every capture without failing any
  // launch.
  std::string Tmp = fs::makeTempDirectory("proteus-capture-baddir");
  std::string FilePath = Tmp + "/occupied";
  ASSERT_TRUE(fs::writeFile(FilePath, {1}));

  Context Ctx;
  Module M(Ctx, "baddir");
  buildRandomKernelInto(M, 5);
  AotOptions AO;
  AO.Arch = GpuArch::AmdGcnSim;
  AO.EnableProteusExtensions = true;
  CompiledProgram Prog = aotCompile(M, AO);

  JitConfig JC;
  JC.UsePersistentCache = false;
  JC.Capture = true;
  JC.CaptureDir = FilePath + "/nested";
  Device Dev(getTarget(GpuArch::AmdGcnSim), 1 << 22);
  JitRuntime Jit(Dev, Prog.ModuleId, JC);
  LoadedProgram LP(Dev, Prog, &Jit);
  ASSERT_TRUE(LP.ok()) << LP.error();
  ASSERT_NE(Jit.captureSession(), nullptr);
  EXPECT_FALSE(Jit.captureSession()->ok());

  DevicePtr In = 0, Out = 0;
  gpuMalloc(Dev, &In, N * sizeof(double));
  gpuMalloc(Dev, &Out, N * sizeof(double));
  std::vector<KernelArg> Args = {
      {In}, {Out}, {N}, {sem::boxF64(1.0)}, {uint64_t(2)}};
  std::string Error;
  EXPECT_EQ(LP.launch("rk", Dim3{1, 1, 1}, Dim3{N, 1, 1}, Args, &Error),
            GpuError::Success)
      << Error;
  Jit.drain();
  EXPECT_EQ(counterValue(Jit.metricsRegistry(), "capture.records"), 0u);
  EXPECT_GE(counterValue(Jit.metricsRegistry(), "capture.drops"), 1u);
  fs::removeAllFiles(Tmp);
}

} // namespace
