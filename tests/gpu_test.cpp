//===- gpu_test.cpp - device/runtime/executor tests ----------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The central test here is differential: kernels compiled through the full
// backend and executed by the simulator must produce bit-identical memory
// to the reference IR interpreter, across optimization levels, targets and
// register budgets.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "codegen/Compiler.h"
#include "codegen/ISel.h"
#include "gpu/PerfModel.h"
#include "gpu/Runtime.h"
#include "ir/Context.h"
#include "transforms/O3Pipeline.h"
#include "transforms/SpecializeArgs.h"

#include <gtest/gtest.h>

using namespace pir;
using namespace proteus;
using namespace proteus::gpu;
using namespace proteus_test;

namespace {

TEST(DeviceTest, AllocateFreeReuse) {
  Device Dev(getAmdGcnSimTarget(), 1 << 20);
  DevicePtr A = Dev.allocate(1000);
  DevicePtr B = Dev.allocate(1000);
  EXPECT_NE(A, 0u);
  EXPECT_NE(B, 0u);
  EXPECT_NE(A, B);
  Dev.free(A);
  DevicePtr C = Dev.allocate(512);
  EXPECT_EQ(C, A) << "free list should be reused first-fit";
  // Exhaustion returns null, not UB.
  EXPECT_EQ(Dev.allocate(2u << 20), 0u);
}

TEST(DeviceTest, GlobalsRegisterOnceAndResolve) {
  Device Dev(getAmdGcnSimTarget(), 1 << 20);
  std::vector<uint8_t> Init = {1, 2, 3, 4};
  DevicePtr P1 = Dev.registerGlobal("state", 4, Init);
  DevicePtr P2 = Dev.registerGlobal("state", 4, Init);
  EXPECT_EQ(P1, P2);
  EXPECT_EQ(Dev.getSymbolAddress("state"), P1);
  EXPECT_EQ(Dev.getSymbolAddress("ghost"), 0u);
  EXPECT_EQ(Dev.memory()[P1 + 2], 3);
}

TEST(RuntimeTest, MemcpyRoundTripAndSimTime) {
  Device Dev(getNvPtxSimTarget(), 1 << 20);
  DevicePtr P = 0;
  ASSERT_EQ(gpuMalloc(Dev, &P, 4096), GpuError::Success);
  std::vector<uint8_t> Host(4096);
  for (size_t I = 0; I != Host.size(); ++I)
    Host[I] = static_cast<uint8_t>(I * 7);
  double T0 = Dev.simulatedSeconds();
  ASSERT_EQ(gpuMemcpyHtoD(Dev, P, Host.data(), Host.size()),
            GpuError::Success);
  EXPECT_GT(Dev.simulatedSeconds(), T0);
  std::vector<uint8_t> Back(4096, 0);
  ASSERT_EQ(gpuMemcpyDtoH(Dev, Back.data(), P, Back.size()),
            GpuError::Success);
  EXPECT_EQ(Host, Back);
  // Bad ranges fail.
  EXPECT_EQ(gpuMemcpyHtoD(Dev, (1u << 20) - 8, Host.data(), 4096),
            GpuError::InvalidValue);
}

/// Compiles \p F for \p TI, loads it and launches over a 1-D grid.
LaunchStats runOnSim(Function &F, const TargetInfo &TI, Device &Dev,
                     const std::vector<uint64_t> &Args, uint32_t Blocks,
                     uint32_t Threads) {
  std::vector<uint8_t> Obj = compileKernelToObject(F, TI);
  LoadedKernel *K = nullptr;
  std::string Err;
  EXPECT_EQ(gpuModuleLoad(Dev, &K, Obj, &Err), GpuError::Success) << Err;
  std::vector<KernelArg> KArgs;
  for (uint64_t A : Args)
    KArgs.push_back(KernelArg{A});
  EXPECT_EQ(gpuLaunchKernel(Dev, *K, Dim3{Blocks, 1, 1}, Dim3{Threads, 1, 1},
                            KArgs, &Err),
            GpuError::Success)
      << Err;
  return Dev.LastLaunch;
}

/// Differential harness: run \p F on the interpreter and on the simulator
/// (for both targets), same initial memory; all three images must agree.
void expectSimMatchesInterp(Function &F, const std::vector<uint64_t> &Args,
                            const std::vector<uint8_t> &InitialMem,
                            uint32_t Blocks, uint32_t Threads) {
  std::vector<uint8_t> Ref = InitialMem;
  {
    std::vector<uint64_t> A = Args;
    interpretLaunch(F, A, Ref, Blocks, Threads);
  }
  for (const TargetInfo *TI :
       {&getAmdGcnSimTarget(), &getNvPtxSimTarget()}) {
    Device Dev(*TI, 1 << 22);
    // Device offsets start at 64 like the allocator; place data at the same
    // offsets as the interpreter image by copying wholesale.
    ASSERT_LE(InitialMem.size(), Dev.memory().size());
    std::copy(InitialMem.begin(), InitialMem.end(), Dev.memory().begin());
    runOnSim(F, *TI, Dev, Args, Blocks, Threads);
    std::vector<uint8_t> Got(Dev.memory().begin(),
                             Dev.memory().begin() +
                                 static_cast<long>(InitialMem.size()));
    EXPECT_EQ(Ref, Got) << "mismatch vs interpreter on " << TI->Name;
  }
}

TEST(ExecutorTest, DaxpyMatchesInterpreterBothTargets) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildDaxpyKernel(M);
  constexpr uint32_t N = 100;
  std::vector<uint8_t> Mem(2 * N * sizeof(double));
  auto *X = reinterpret_cast<double *>(Mem.data());
  for (uint32_t I = 0; I != N; ++I) {
    X[I] = 0.25 * I;
    X[N + I] = 7.5 - I;
  }
  std::vector<uint64_t> Args = {sem::boxF64(1.75), 0, N * sizeof(double), N};
  expectSimMatchesInterp(*F, Args, Mem, 4, 32);
}

TEST(ExecutorTest, LoopSumMatchesInterpreterAfterO3) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildLoopSumKernel(M);
  runO3(*F);
  constexpr uint32_t N = 16;
  std::vector<uint8_t> Mem(2 * N * sizeof(double));
  auto *In = reinterpret_cast<double *>(Mem.data());
  for (uint32_t I = 0; I != N; ++I)
    In[I] = 1.0 / (1.0 + I);
  std::vector<uint64_t> Args = {0, N * sizeof(double), 23};
  expectSimMatchesInterp(*F, Args, Mem, 1, N);
}

TEST(ExecutorTest, SpecializedAndUnrolledStillMatches) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildLoopSumKernel(M);
  specializeArguments(*F, {{2, 13}});
  specializeLaunchBounds(*F, 16);
  runO3(*F);
  constexpr uint32_t N = 16;
  std::vector<uint8_t> Mem(2 * N * sizeof(double));
  auto *In = reinterpret_cast<double *>(Mem.data());
  for (uint32_t I = 0; I != N; ++I)
    In[I] = 3.0 * I - 10.0;
  // The folded argument is still passed (ABI unchanged) but ignored.
  std::vector<uint64_t> Args = {0, N * sizeof(double), 13};
  expectSimMatchesInterp(*F, Args, Mem, 1, N);
}

// Property sweep: correctness must hold for every register budget, from
// spill-everything up to spill-nothing.
class RegBudgetTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RegBudgetTest, LoopSumCorrectUnderPressure) {
  unsigned Budget = GetParam();
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildLoopSumKernel(M);
  runO3(*F);

  constexpr uint32_t N = 8;
  std::vector<uint8_t> Ref(2 * N * sizeof(double));
  auto *In = reinterpret_cast<double *>(Ref.data());
  for (uint32_t I = 0; I != N; ++I)
    In[I] = 0.5 + I;
  std::vector<uint8_t> SimInit = Ref;
  std::vector<uint64_t> Args = {0, N * sizeof(double), 9};
  interpretLaunch(*F, Args, Ref, 1, N);

  mcode::MachineFunction MF = selectInstructions(*F);
  allocateRegisters(MF, Budget);
  std::vector<uint8_t> Obj = writeObject(MF, GpuArch::AmdGcnSim);

  Device Dev(getAmdGcnSimTarget(), 1 << 20);
  std::copy(SimInit.begin(), SimInit.end(), Dev.memory().begin());
  LoadedKernel *K = nullptr;
  std::string Err;
  ASSERT_EQ(gpuModuleLoad(Dev, &K, Obj, &Err), GpuError::Success) << Err;
  std::vector<KernelArg> KArgs = {{0}, {N * sizeof(double)}, {9}};
  ASSERT_EQ(gpuLaunchKernel(Dev, *K, Dim3{1, 1, 1}, Dim3{N, 1, 1}, KArgs,
                            &Err),
            GpuError::Success)
      << Err;
  std::vector<uint8_t> Got(Dev.memory().begin(),
                           Dev.memory().begin() +
                               static_cast<long>(Ref.size()));
  EXPECT_EQ(Ref, Got) << "budget " << Budget;
}

INSTANTIATE_TEST_SUITE_P(Budgets, RegBudgetTest,
                         ::testing::Values(8u, 10u, 12u, 16u, 24u, 32u, 64u,
                                           128u, 256u));

TEST(ExecutorTest, CountersAreConsistent) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildDaxpyKernel(M);
  constexpr uint32_t N = 64;
  Device Dev(getAmdGcnSimTarget(), 1 << 20);
  LaunchStats S =
      runOnSim(*F, getAmdGcnSimTarget(), Dev,
               {sem::boxF64(2.0), 64, 64 + N * 8, N}, 2, 32);
  EXPECT_EQ(S.Kernel, "daxpy");
  EXPECT_EQ(S.totalThreads(), 64u);
  EXPECT_EQ(S.MemLoads, 2u * N); // x and y
  EXPECT_EQ(S.MemStores, N);
  EXPECT_GT(S.VALUInsts, 0u);
  EXPECT_GT(S.SALUInsts, 0u);
  EXPECT_GT(S.DurationSec, 0.0);
  EXPECT_GT(S.Occupancy, 0.0);
  EXPECT_EQ(S.TotalInstrs,
            S.VALUInsts + S.SALUInsts + S.MemLoads + S.MemStores +
                S.SpillLoads + S.SpillStores + S.Atomics + S.Branches +
                S.Barriers + /*ret*/ S.totalThreads());
}

TEST(ExecutorTest, GlobalRelocationsResolveAtLoad) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  M.createGlobal("bias", Ctx.getF64Ty(), 1,
                 std::vector<uint8_t>(8, 0)); // patched below
  Function *F = M.createFunction("k", Ctx.getVoidTy(), {Ctx.getPtrTy()},
                                 {"out"}, FunctionKind::Kernel);
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  Value *G = M.getGlobal("bias");
  Value *V = B.createLoad(Ctx.getF64Ty(), G);
  B.createStore(B.createFAdd(V, B.getDouble(1.0)), F->getArg(0));
  B.createRet();

  Device Dev(getAmdGcnSimTarget(), 1 << 20);
  double BiasVal = 41.0;
  std::vector<uint8_t> Init(8);
  std::memcpy(Init.data(), &BiasVal, 8);
  ASSERT_EQ(gpuRegisterVar(Dev, "bias", 8, Init), GpuError::Success);

  DevicePtr OutP = 0;
  ASSERT_EQ(gpuMalloc(Dev, &OutP, 8), GpuError::Success);
  LaunchStats S = runOnSim(*F, getAmdGcnSimTarget(), Dev, {OutP}, 1, 1);
  (void)S;
  double Out = 0;
  ASSERT_EQ(gpuMemcpyDtoH(Dev, &Out, OutP, 8), GpuError::Success);
  EXPECT_DOUBLE_EQ(Out, 42.0);
}

TEST(ExecutorTest, UnresolvedGlobalFailsLoad) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  M.createGlobal("ghost", Ctx.getF64Ty(), 1);
  Function *F = M.createFunction("k", Ctx.getVoidTy(), {}, {},
                                 FunctionKind::Kernel);
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  B.createLoad(Ctx.getF64Ty(), M.getGlobal("ghost"));
  B.createRet();
  std::vector<uint8_t> Obj = compileKernelToObject(*F, getAmdGcnSimTarget());
  Device Dev(getAmdGcnSimTarget(), 1 << 20); // "ghost" not registered
  LoadedKernel *K = nullptr;
  std::string Err;
  EXPECT_EQ(gpuModuleLoad(Dev, &K, Obj, &Err), GpuError::InvalidValue);
  EXPECT_NE(Err.find("ghost"), std::string::npos);
}

TEST(ExecutorTest, OutOfBoundsLaunchFailsCleanly) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildDaxpyKernel(M);
  Device Dev(getAmdGcnSimTarget(), 1 << 16);
  std::vector<uint8_t> Obj = compileKernelToObject(*F, getAmdGcnSimTarget());
  LoadedKernel *K = nullptr;
  std::string Err;
  ASSERT_EQ(gpuModuleLoad(Dev, &K, Obj, &Err), GpuError::Success) << Err;
  // Pointers far outside memory.
  std::vector<KernelArg> Args = {{sem::boxF64(1.0)},
                                 {1ull << 30},
                                 {1ull << 31},
                                 {32}};
  EXPECT_EQ(gpuLaunchKernel(Dev, *K, Dim3{1, 1, 1}, Dim3{32, 1, 1}, Args,
                            &Err),
            GpuError::LaunchFailure);
  EXPECT_NE(Err.find("out of bounds"), std::string::npos);
}

TEST(PerfModelTest, SpillsAndOccupancyDriveDuration) {
  // Same instruction mix, different register pressure: more registers used
  // reduces occupancy and must not speed things up; adding spill traffic
  // must slow things down.
  const TargetInfo &TI = getAmdGcnSimTarget();
  LaunchStats Base;
  Base.Blocks = 1000;
  Base.ThreadsPerBlock = 256;
  Base.TotalInstrs = 100'000'000;
  Base.VALUInsts = 80'000'000;
  Base.SALUInsts = 10'000'000;
  Base.MemLoads = 9'000'000;
  Base.MemStores = 1'000'000;
  Base.L2Hits = 9'000'000;
  Base.L2Misses = 1'000'000;
  Base.RegsUsed = 64;
  applyPerfModel(TI, Base);

  LaunchStats Spilly = Base;
  Spilly.SpillLoads = 30'000'000;
  Spilly.SpillStores = 10'000'000;
  Spilly.SpillSlots = 40; // resident scratch saturates the L2 model
  Spilly.TotalInstrs += 40'000'000;
  applyPerfModel(TI, Spilly);
  EXPECT_GT(Spilly.DurationSec, Base.DurationSec * 1.15)
      << "spill traffic must hurt";
  EXPECT_LT(Spilly.l2HitRatio(), Base.l2HitRatio())
      << "scratch pollution must degrade the observed hit ratio";

  LaunchStats HighRegs = Base;
  HighRegs.RegsUsed = 256;
  applyPerfModel(TI, HighRegs);
  EXPECT_LT(HighRegs.Occupancy, Base.Occupancy);
  EXPECT_GE(HighRegs.DurationSec, Base.DurationSec);

  // Eliminating instructions shortens the kernel.
  LaunchStats Folded = Base;
  Folded.VALUInsts = 40'000'000;
  Folded.TotalInstrs -= 40'000'000;
  applyPerfModel(TI, Folded);
  EXPECT_LT(Folded.DurationSec, Base.DurationSec);
}

} // namespace
