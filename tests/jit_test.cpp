//===- jit_test.cpp - Proteus core tests ----------------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// End-to-end tests of the paper's system: AOT extensions (bitcode
// extraction, launch redirection), the __jit_launch_kernel runtime (global
// linking, RCF/LB specialization, O3, backend), and the two-level
// specialization cache including persistence and stale-entry invalidation.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/Context.h"
#include "jit/Program.h"
#include "jitify/Jitify.h"
#include "ir/IRPrinter.h"
#include "support/FileSystem.h"

#include <gtest/gtest.h>

using namespace pir;
using namespace proteus;
using namespace proteus::gpu;
using namespace proteus_test;

namespace {

/// RAII temporary cache directory.
struct TempDir {
  std::string Path;
  TempDir() : Path(proteus::fs::makeTempDirectory("proteus-test-cache")) {}
  ~TempDir() { proteus::fs::removeAllFiles(Path); }
};

TEST(SpecializationHashTest, EveryFieldMatters) {
  SpecializationKey Base;
  Base.ModuleId = 0x1234;
  Base.KernelSymbol = "daxpy";
  Base.Arch = GpuArch::AmdGcnSim;
  Base.FoldedArgs = {{0, 100}, {3, 7}};
  Base.LaunchBoundsThreads = 256;
  uint64_t H0 = computeSpecializationHash(Base);
  EXPECT_EQ(H0, computeSpecializationHash(Base)) << "deterministic";

  SpecializationKey K = Base;
  K.ModuleId ^= 1; // source change -> different key (stale-cache defense)
  EXPECT_NE(H0, computeSpecializationHash(K));
  K = Base;
  K.KernelSymbol = "daxpy2";
  EXPECT_NE(H0, computeSpecializationHash(K));
  K = Base;
  K.Arch = GpuArch::NvPtxSim;
  EXPECT_NE(H0, computeSpecializationHash(K));
  K = Base;
  K.FoldedArgs[1].Bits = 8;
  EXPECT_NE(H0, computeSpecializationHash(K));
  K = Base;
  K.FoldedArgs.pop_back();
  EXPECT_NE(H0, computeSpecializationHash(K));
  K = Base;
  K.LaunchBoundsThreads = 128;
  EXPECT_NE(H0, computeSpecializationHash(K));
}

TEST(CodeCacheTest, TwoLevelLookupAndPromotion) {
  TempDir Tmp;
  std::vector<uint8_t> Obj = {1, 2, 3, 4, 5};
  {
    CodeCache C(true, true, Tmp.Path);
    EXPECT_FALSE(C.lookup(42).has_value());
    C.insert(42, Obj);
    auto Hit = C.lookup(42);
    ASSERT_TRUE(Hit.has_value());
    EXPECT_EQ(*Hit, Obj);
    EXPECT_EQ(C.stats().MemoryHits, 1u);
    EXPECT_EQ(C.stats().Misses, 1u);
  }
  {
    // New "process": memory cold, persistent warm.
    CodeCache C(true, true, Tmp.Path);
    auto Hit = C.lookup(42);
    ASSERT_TRUE(Hit.has_value());
    EXPECT_EQ(*Hit, Obj);
    EXPECT_EQ(C.stats().PersistentHits, 1u);
    // Promoted to memory: second lookup hits level 1.
    C.lookup(42);
    EXPECT_EQ(C.stats().MemoryHits, 1u);
  }
  {
    // Persistent disabled: nothing found.
    CodeCache C(true, false, Tmp.Path);
    EXPECT_FALSE(C.lookup(42).has_value());
  }
}

TEST(CodeCacheTest, PersistentFilesFollowNamingScheme) {
  TempDir Tmp;
  CodeCache C(true, true, Tmp.Path);
  C.insert(0xabcdef, {9, 9});
  auto Files = proteus::fs::listFiles(Tmp.Path);
  ASSERT_EQ(Files.size(), 1u);
  EXPECT_EQ(Files[0], "cache-jit-0000000000abcdef.o");
  C.clearPersistent();
  EXPECT_TRUE(proteus::fs::listFiles(Tmp.Path).empty());
}

TEST(AotCompilerTest, ExtractKernelModulePullsClosure) {
  Context Ctx;
  Module M(Ctx, "app");
  IRBuilder B(Ctx);
  M.createGlobal("weights", Ctx.getF64Ty(), 8);
  Function *Helper = M.createFunction("helper", Ctx.getF64Ty(),
                                      {Ctx.getF64Ty()}, {"x"},
                                      FunctionKind::Device);
  B.setInsertPoint(Helper->createBlock("entry", Ctx.getVoidTy()));
  Value *W = B.createLoad(Ctx.getF64Ty(), M.getGlobal("weights"));
  B.createRet(B.createFMul(Helper->getArg(0), W));

  Function *K = M.createFunction("kern", Ctx.getVoidTy(), {Ctx.getPtrTy()},
                                 {"out"}, FunctionKind::Kernel);
  K->setJitAnnotation(JitAnnotation{{}});
  B.setInsertPoint(K->createBlock("entry", Ctx.getVoidTy()));
  Value *R = B.createCall(Helper, {B.getDouble(2.0)});
  B.createStore(R, K->getArg(0));
  B.createRet();

  // A second, unrelated kernel that must NOT be extracted.
  buildDaxpyKernel(M);

  auto Extracted = extractKernelModule(M, "kern");
  expectValid(*Extracted);
  EXPECT_NE(Extracted->getFunction("kern"), nullptr);
  EXPECT_NE(Extracted->getFunction("helper"), nullptr);
  EXPECT_NE(Extracted->getGlobal("weights"), nullptr);
  EXPECT_EQ(Extracted->getFunction("daxpy"), nullptr);
}

TEST(AotCompilerTest, ProteusExtensionsProduceSectionsPerArch) {
  Context Ctx;
  Module M(Ctx, "app");
  buildDaxpyKernel(M);

  AotOptions Amd;
  Amd.Arch = GpuArch::AmdGcnSim;
  Amd.EnableProteusExtensions = true;
  CompiledProgram PA = aotCompile(M, Amd);
  EXPECT_EQ(PA.JitKernels.count("daxpy"), 1u);
  EXPECT_EQ(PA.Image.JitSections.count("daxpy"), 1u)
      << "AMD path embeds .jit.<sym> sections";
  EXPECT_EQ(PA.Image.JitDataGlobals.count("daxpy"), 0u);
  EXPECT_EQ(PA.JitArgIndices.at("daxpy"), (std::vector<uint32_t>{1, 4}));

  AotOptions Nv = Amd;
  Nv.Arch = GpuArch::NvPtxSim;
  CompiledProgram PN = aotCompile(M, Nv);
  EXPECT_EQ(PN.Image.JitSections.count("daxpy"), 0u);
  EXPECT_EQ(PN.Image.JitDataGlobals.count("daxpy"), 1u)
      << "NVIDIA path stores bitcode in the data segment";

  // Without extensions: plain AOT, no JIT kernels.
  AotOptions Plain;
  Plain.Arch = GpuArch::AmdGcnSim;
  CompiledProgram PP = aotCompile(M, Plain);
  EXPECT_TRUE(PP.JitKernels.empty());
  EXPECT_TRUE(PP.Image.JitSections.empty());
  EXPECT_EQ(PP.Image.KernelObjects.count("daxpy"), 1u);
}

/// Common fixture: daxpy program end-to-end under a configurable JIT.
struct DaxpyHarness {
  Context Ctx;
  Module M{Ctx, "daxpy_app"};
  Function *F;
  static constexpr uint32_t N = 64;

  DaxpyHarness() { F = buildDaxpyKernel(M); }

  /// Runs one launch; returns the resulting y[] and leaves runtimes
  /// available for inspection.
  std::vector<double> run(GpuArch Arch, bool UseJit, const JitConfig &JC,
                          JitRuntime **JitOut = nullptr,
                          Device **DevOut = nullptr) {
    AotOptions AO;
    AO.Arch = Arch;
    AO.EnableProteusExtensions = UseJit;
    CompiledProgram Prog = aotCompile(M, AO);

    static std::unique_ptr<Device> Dev;
    static std::unique_ptr<JitRuntime> Jit;
    Dev = std::make_unique<Device>(getTarget(Arch), 1 << 22);
    Jit = UseJit ? std::make_unique<JitRuntime>(*Dev, Prog.ModuleId, JC)
                 : nullptr;
    LoadedProgram LP(*Dev, Prog, Jit.get());
    EXPECT_TRUE(LP.ok()) << LP.error();

    DevicePtr X = 0, Y = 0;
    EXPECT_EQ(gpuMalloc(*Dev, &X, N * 8), GpuError::Success);
    EXPECT_EQ(gpuMalloc(*Dev, &Y, N * 8), GpuError::Success);
    std::vector<double> HX(N), HY(N);
    for (uint32_t I = 0; I != N; ++I) {
      HX[I] = 0.5 * I;
      HY[I] = 100.0 - I;
    }
    gpuMemcpyHtoD(*Dev, X, HX.data(), N * 8);
    gpuMemcpyHtoD(*Dev, Y, HY.data(), N * 8);

    std::vector<KernelArg> Args = {{sem::boxF64(3.0)}, {X}, {Y}, {N}};
    std::string Err;
    EXPECT_EQ(LP.launch("daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1}, Args, &Err),
              GpuError::Success)
        << Err;
    std::vector<double> Out(N);
    gpuMemcpyDtoH(*Dev, Out.data(), Y, N * 8);
    if (JitOut)
      *JitOut = Jit.get();
    if (DevOut)
      *DevOut = Dev.get();
    return Out;
  }

  static std::vector<double> expected() {
    std::vector<double> E(N);
    for (uint32_t I = 0; I != N; ++I)
      E[I] = 3.0 * (0.5 * I) + (100.0 - I);
    return E;
  }
};

TEST(JitRuntimeTest, AotAndJitProduceIdenticalResults) {
  for (GpuArch Arch : {GpuArch::AmdGcnSim, GpuArch::NvPtxSim}) {
    DaxpyHarness H1;
    std::vector<double> AotOut = H1.run(Arch, false, JitConfig{});

    TempDir Tmp;
    JitConfig JC;
    JC.CacheDir = Tmp.Path;
    DaxpyHarness H2;
    JitRuntime *Jit = nullptr;
    std::vector<double> JitOut = H2.run(Arch, true, JC, &Jit);

    EXPECT_EQ(AotOut, DaxpyHarness::expected());
    EXPECT_EQ(JitOut, DaxpyHarness::expected());
    ASSERT_NE(Jit, nullptr);
    EXPECT_EQ(Jit->stats().Compilations, 1u);
  }
}

TEST(JitRuntimeTest, SameSpecializationHitsCacheDifferentMisses) {
  TempDir Tmp;
  Context Ctx;
  Module M(Ctx, "app");
  buildDaxpyKernel(M);
  AotOptions AO;
  AO.Arch = GpuArch::AmdGcnSim;
  AO.EnableProteusExtensions = true;
  CompiledProgram Prog = aotCompile(M, AO);

  Device Dev(getAmdGcnSimTarget(), 1 << 22);
  JitConfig JC;
  JC.CacheDir = Tmp.Path;
  JitRuntime Jit(Dev, Prog.ModuleId, JC);
  LoadedProgram LP(Dev, Prog, &Jit);
  ASSERT_TRUE(LP.ok()) << LP.error();

  DevicePtr X = 0, Y = 0;
  gpuMalloc(Dev, &X, 64 * 8);
  gpuMalloc(Dev, &Y, 64 * 8);
  std::string Err;
  auto Launch = [&](double A, uint32_t N) {
    std::vector<KernelArg> Args = {{sem::boxF64(A)}, {X}, {Y}, {N}};
    ASSERT_EQ(LP.launch("daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1}, Args, &Err),
              GpuError::Success)
        << Err;
  };
  Launch(3.0, 64);
  EXPECT_EQ(Jit.stats().Compilations, 1u);
  Launch(3.0, 64); // identical specialization: cached
  EXPECT_EQ(Jit.stats().Compilations, 1u);
  Launch(4.0, 64); // different folded value of a: new specialization
  EXPECT_EQ(Jit.stats().Compilations, 2u);
  Launch(3.0, 32); // different folded n: new specialization
  EXPECT_EQ(Jit.stats().Compilations, 3u);
  EXPECT_EQ(Jit.cache().stats().Insertions, 3u);
  EXPECT_GT(Jit.cache().memoryBytes(), 0u);
}

TEST(JitRuntimeTest, SpecializationHashIsMemoizedPerArgValues) {
  // The launch fast path must not rehash the full specialization key on
  // every call: the hash is memoized per (kernel, annotated-arg values,
  // launch-bounds threads), and HashMemoHits proves the memo serves
  // repeated launches while distinct specializations still miss it.
  Context Ctx;
  Module M(Ctx, "app");
  buildDaxpyKernel(M);
  AotOptions AO;
  AO.Arch = GpuArch::AmdGcnSim;
  AO.EnableProteusExtensions = true;
  CompiledProgram Prog = aotCompile(M, AO);

  Device Dev(getAmdGcnSimTarget(), 1 << 22);
  JitConfig JC;
  JC.UsePersistentCache = false;
  JitRuntime Jit(Dev, Prog.ModuleId, JC);
  LoadedProgram LP(Dev, Prog, &Jit);
  ASSERT_TRUE(LP.ok()) << LP.error();

  DevicePtr X = 0, Y = 0;
  gpuMalloc(Dev, &X, 64 * 8);
  gpuMalloc(Dev, &Y, 64 * 8);
  std::string Err;
  auto Launch = [&](double A, uint32_t N) {
    std::vector<KernelArg> Args = {{sem::boxF64(A)}, {X}, {Y}, {N}};
    ASSERT_EQ(LP.launch("daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1}, Args, &Err),
              GpuError::Success)
        << Err;
  };

  Launch(3.0, 64); // first sighting of this key: computes and memoizes
  EXPECT_EQ(Jit.stats().HashMemoHits, 0u);
  Launch(3.0, 64);
  Launch(3.0, 64);
  EXPECT_EQ(Jit.stats().HashMemoHits, 2u)
      << "repeat launches must be served by the memo";
  Launch(4.0, 64); // different folded value: a genuine memo miss
  EXPECT_EQ(Jit.stats().HashMemoHits, 2u);
  Launch(4.0, 64);
  EXPECT_EQ(Jit.stats().HashMemoHits, 3u);
  // The memo only short-circuits hashing — cache behaviour is unchanged.
  EXPECT_EQ(Jit.stats().Compilations, 2u);
  EXPECT_EQ(Jit.stats().Launches, 5u);
}

TEST(JitRuntimeTest, PersistentCacheSurvivesProcessRestart) {
  TempDir Tmp;
  Context Ctx;
  Module M(Ctx, "app");
  buildDaxpyKernel(M);
  AotOptions AO;
  AO.Arch = GpuArch::AmdGcnSim;
  AO.EnableProteusExtensions = true;
  CompiledProgram Prog = aotCompile(M, AO);

  JitConfig JC;
  JC.CacheDir = Tmp.Path;

  auto RunOnce = [&](uint64_t ExpectCompilations) {
    Device Dev(getAmdGcnSimTarget(), 1 << 22);
    JitRuntime Jit(Dev, Prog.ModuleId, JC);
    LoadedProgram LP(Dev, Prog, &Jit);
    ASSERT_TRUE(LP.ok()) << LP.error();
    DevicePtr X = 0, Y = 0;
    gpuMalloc(Dev, &X, 64 * 8);
    gpuMalloc(Dev, &Y, 64 * 8);
    std::vector<KernelArg> Args = {{sem::boxF64(2.0)}, {X}, {Y}, {64}};
    std::string Err;
    ASSERT_EQ(LP.launch("daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1}, Args, &Err),
              GpuError::Success)
        << Err;
    EXPECT_EQ(Jit.stats().Compilations, ExpectCompilations);
  };
  RunOnce(1); // cold: compiles and persists
  RunOnce(0); // warm: loaded from cache-jit-<hash>.o
  EXPECT_GT(proteus::fs::directorySize(Tmp.Path), 0u);
}

TEST(JitRuntimeTest, SourceChangeInvalidatesStaleCacheEntries) {
  TempDir Tmp;
  JitConfig JC;
  JC.CacheDir = Tmp.Path;

  auto Compile = [&](double Constant) {
    Context Ctx; // fresh context per "build"
    auto M = std::make_unique<Module>(Ctx, "app");
    IRBuilder B(Ctx);
    Function *F = M->createFunction("k", Ctx.getVoidTy(), {Ctx.getPtrTy()},
                                    {"out"}, FunctionKind::Kernel);
    F->setJitAnnotation(JitAnnotation{{}});
    B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
    B.createStore(B.getDouble(Constant), F->getArg(0));
    B.createRet();
    AotOptions AO;
    AO.Arch = GpuArch::AmdGcnSim;
    AO.EnableProteusExtensions = true;
    CompiledProgram Prog = aotCompile(*M, AO);

    Device Dev(getAmdGcnSimTarget(), 1 << 20);
    JitRuntime Jit(Dev, Prog.ModuleId, JC);
    LoadedProgram LP(Dev, Prog, &Jit);
    EXPECT_TRUE(LP.ok()) << LP.error();
    DevicePtr Out = 0;
    gpuMalloc(Dev, &Out, 8);
    std::string Err;
    EXPECT_EQ(LP.launch("k", Dim3{1, 1, 1}, Dim3{1, 1, 1}, {{Out}}, &Err),
              GpuError::Success)
        << Err;
    double V = 0;
    gpuMemcpyDtoH(Dev, &V, Out, 8);
    return std::make_pair(V, Jit.stats().Compilations);
  };

  auto [V1, C1] = Compile(1.0);
  EXPECT_DOUBLE_EQ(V1, 1.0);
  EXPECT_EQ(C1, 1u);
  // "Edit the source" (different constant): the module id changes, so the
  // persistent entry from the previous build must NOT be reused.
  auto [V2, C2] = Compile(2.0);
  EXPECT_DOUBLE_EQ(V2, 2.0) << "stale cache entry served for new source!";
  EXPECT_EQ(C2, 1u) << "recompilation expected after source change";
}

TEST(JitRuntimeTest, GlobalLinkingSharesStateWithAot) {
  // A JIT kernel increments a device global; an AOT kernel reads it. Both
  // must observe the same storage.
  TempDir Tmp;
  Context Ctx;
  Module M(Ctx, "app");
  IRBuilder B(Ctx);
  M.createGlobal("counter", Ctx.getI64Ty(), 1);

  Function *Inc = M.createFunction("inc", Ctx.getVoidTy(), {}, {},
                                   FunctionKind::Kernel);
  Inc->setJitAnnotation(JitAnnotation{{}});
  B.setInsertPoint(Inc->createBlock("entry", Ctx.getVoidTy()));
  B.createAtomicAdd(M.getGlobal("counter"), B.getInt64(1));
  B.createRet();

  Function *Read = M.createFunction("read", Ctx.getVoidTy(),
                                    {Ctx.getPtrTy()}, {"out"},
                                    FunctionKind::Kernel);
  B.setInsertPoint(Read->createBlock("entry", Ctx.getVoidTy()));
  Value *V = B.createLoad(Ctx.getI64Ty(), M.getGlobal("counter"));
  B.createStore(V, Read->getArg(0));
  B.createRet();

  AotOptions AO;
  AO.Arch = GpuArch::AmdGcnSim;
  AO.EnableProteusExtensions = true;
  CompiledProgram Prog = aotCompile(M, AO);
  EXPECT_EQ(Prog.JitKernels.count("inc"), 1u);
  EXPECT_EQ(Prog.JitKernels.count("read"), 0u) << "read is not annotated";

  Device Dev(getAmdGcnSimTarget(), 1 << 20);
  JitConfig JC;
  JC.CacheDir = Tmp.Path;
  JitRuntime Jit(Dev, Prog.ModuleId, JC);
  LoadedProgram LP(Dev, Prog, &Jit);
  ASSERT_TRUE(LP.ok()) << LP.error();

  std::string Err;
  for (int I = 0; I != 3; ++I)
    ASSERT_EQ(LP.launch("inc", Dim3{1, 1, 1}, Dim3{4, 1, 1}, {}, &Err),
              GpuError::Success)
        << Err;
  DevicePtr Out = 0;
  gpuMalloc(Dev, &Out, 8);
  ASSERT_EQ(LP.launch("read", Dim3{1, 1, 1}, Dim3{1, 1, 1}, {{Out}}, &Err),
            GpuError::Success)
      << Err;
  uint64_t Count = 0;
  gpuMemcpyDtoH(Dev, &Count, Out, 8);
  EXPECT_EQ(Count, 12u) << "3 launches x 4 threads through the JIT path";
}

TEST(JitRuntimeTest, SpecializationTogglesChangeCompiledCode) {
  TempDir Tmp;
  Context Ctx;
  Module M(Ctx, "app");
  Function *F = buildLoopSumKernel(M);
  F->setJitAnnotation(JitAnnotation{{3}});
  AotOptions AO;
  AO.Arch = GpuArch::AmdGcnSim;
  AO.EnableProteusExtensions = true;
  CompiledProgram Prog = aotCompile(M, AO);

  auto InstrsWithConfig = [&](bool RCF, bool LB) -> uint64_t {
    Device Dev(getAmdGcnSimTarget(), 1 << 22);
    JitConfig JC;
    JC.EnableRCF = RCF;
    JC.EnableLaunchBounds = LB;
    JC.UsePersistentCache = false;
    JC.CacheDir = Tmp.Path;
    JitRuntime Jit(Dev, Prog.ModuleId, JC);
    LoadedProgram LP(Dev, Prog, &Jit);
    EXPECT_TRUE(LP.ok()) << LP.error();
    DevicePtr In = 0, Out = 0;
    gpuMalloc(Dev, &In, 32 * 8);
    gpuMalloc(Dev, &Out, 32 * 8);
    std::vector<KernelArg> Args = {{In}, {Out}, {10}};
    std::string Err;
    EXPECT_EQ(LP.launch("loopsum", Dim3{1, 1, 1}, Dim3{32, 1, 1}, Args,
                        &Err),
              GpuError::Success)
        << Err;
    return Dev.LastLaunch.TotalInstrs;
  };

  uint64_t None = InstrsWithConfig(false, false);
  uint64_t Rcf = InstrsWithConfig(true, false);
  // RCF folds the loop bound -> full unroll -> fewer dynamic instructions.
  EXPECT_LT(Rcf, None);
}

TEST(JitifyTest, RequiresNvidiaAndCachesByInstantiation) {
  Device Amd(getAmdGcnSimTarget(), 1 << 20);
  JitifyRuntime Bad(Amd);
  EXPECT_FALSE(Bad.ok());

  Device Dev(getNvPtxSimTarget(), 1 << 22);
  JitifyRuntime Jitify(Dev);
  ASSERT_TRUE(Jitify.ok());

  Context Ctx;
  Module M(Ctx, "app");
  buildDaxpyKernel(M);
  Jitify.addProgram("daxpy", printModule(M), {1, 4});

  DevicePtr X = 0, Y = 0;
  gpuMalloc(Dev, &X, 64 * 8);
  gpuMalloc(Dev, &Y, 64 * 8);
  std::vector<double> HX(64, 2.0), HY(64, 1.0);
  gpuMemcpyHtoD(Dev, X, HX.data(), 64 * 8);
  gpuMemcpyHtoD(Dev, Y, HY.data(), 64 * 8);
  std::vector<KernelArg> Args = {{sem::boxF64(3.0)}, {X}, {Y}, {64}};
  std::string Err;
  ASSERT_EQ(Jitify.launch("daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1}, Args,
                          &Err),
            GpuError::Success)
      << Err;
  EXPECT_EQ(Jitify.stats().Compilations, 1u);
  ASSERT_EQ(Jitify.launch("daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1}, Args,
                          &Err),
            GpuError::Success);
  EXPECT_EQ(Jitify.stats().CacheHits, 1u);

  std::vector<double> Out(64);
  gpuMemcpyDtoH(Dev, Out.data(), Y, 64 * 8);
  // y updated in place twice: 3*2+1 = 7, then 3*2+7 = 13.
  for (double V : Out)
    EXPECT_DOUBLE_EQ(V, 13.0);
  EXPECT_GT(Jitify.stats().FrontendSeconds, 0.0)
      << "source parsing cost must be real";
}

} // namespace

namespace {

TEST(JitRuntimeTest, VerifyIRModeAcceptsValidKernels) {
  proteus::fs::createDirectories("/tmp/proteus-verify-test");
  Context Ctx;
  Module M(Ctx, "app");
  buildDaxpyKernel(M);
  AotOptions AO;
  AO.Arch = GpuArch::AmdGcnSim;
  AO.EnableProteusExtensions = true;
  CompiledProgram Prog = aotCompile(M, AO);
  Device Dev(getAmdGcnSimTarget(), 1 << 22);
  JitConfig JC;
  JC.VerifyIR = true;
  JC.UsePersistentCache = false;
  JC.CacheDir = "/tmp/proteus-verify-test";
  JitRuntime Jit(Dev, Prog.ModuleId, JC);
  LoadedProgram LP(Dev, Prog, &Jit);
  ASSERT_TRUE(LP.ok()) << LP.error();
  DevicePtr X = 0, Y = 0;
  gpuMalloc(Dev, &X, 64 * 8);
  gpuMalloc(Dev, &Y, 64 * 8);
  std::vector<KernelArg> Args = {{sem::boxF64(1.0)}, {X}, {Y}, {64}};
  std::string Err;
  EXPECT_EQ(LP.launch("daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1}, Args, &Err),
            GpuError::Success)
      << Err;
  EXPECT_EQ(Jit.stats().Compilations, 1u);
}

} // namespace
