//===- autotuner_test.cpp - variant manager / auto-tuning tests -------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "gpu/DeviceManager.h"
#include "ir/Context.h"
#include "jit/AutoTuner.h"
#include "jit/Program.h"
#include "support/FileSystem.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <functional>
#include <thread>

using namespace pir;
using namespace proteus;
using namespace proteus::gpu;
using namespace proteus_test;

namespace {

uint64_t processCounter(const std::string &Name) {
  for (const auto &[K, V] : metrics::processRegistry().counterValues())
    if (K == Name)
      return V;
  return 0;
}

struct Harness {
  Context Ctx;
  Module M{Ctx, "tune"};
  Function *F = nullptr;
  std::unique_ptr<DeviceManager> Mgr;
  Device *Dev = nullptr; // device 0 convenience
  std::unique_ptr<JitRuntime> Jit;
  std::vector<std::unique_ptr<LoadedProgram>> LPs;
  std::string CacheDir;
  std::string CaptureDir;
  bool OwnsCacheDir = true;
  std::vector<DevicePtr> Xs, Ys; // per-device buffers
  DevicePtr X = 0, Y = 0;        // device 0 convenience
  static constexpr uint32_t N = 2048;

  explicit Harness(unsigned NumDevices = 1, bool Capture = false,
                   std::function<void(JitConfig &)> Tweak = nullptr,
                   std::string SharedCacheDir = std::string()) {
    F = buildDaxpyKernel(M);
    AotOptions AO;
    AO.Arch = GpuArch::AmdGcnSim;
    AO.EnableProteusExtensions = true;
    CompiledProgram Prog = aotCompile(M, AO);
    DeviceManager::Config DC;
    DC.NumDevices = NumDevices;
    DC.MemoryBytesPerDevice = 1 << 22;
    Mgr = std::make_unique<DeviceManager>(DC);
    Dev = &Mgr->device(0);
    OwnsCacheDir = SharedCacheDir.empty();
    CacheDir = OwnsCacheDir ? fs::makeTempDirectory("proteus-tune")
                            : std::move(SharedCacheDir);
    JitConfig JC;
    JC.CacheDir = CacheDir;
    if (Capture) {
      CaptureDir = fs::makeTempDirectory("proteus-tune-cap");
      JC.Capture = true;
      JC.CaptureDir = CaptureDir;
    }
    if (Tweak)
      Tweak(JC);
    Jit = std::make_unique<JitRuntime>(*Dev, Prog.ModuleId, JC);
    Xs.resize(NumDevices);
    Ys.resize(NumDevices);
    std::vector<double> H(N, 1.0);
    for (unsigned D = 0; D != NumDevices; ++D) {
      LPs.emplace_back(new LoadedProgram(Mgr->device(D), Prog, Jit.get()));
      EXPECT_TRUE(LPs.back()->ok()) << LPs.back()->error();
      gpuMalloc(Mgr->device(D), &Xs[D], N * 8);
      gpuMalloc(Mgr->device(D), &Ys[D], N * 8);
      gpuMemcpyHtoD(Mgr->device(D), Xs[D], H.data(), N * 8);
      gpuMemcpyHtoD(Mgr->device(D), Ys[D], H.data(), N * 8);
    }
    X = Xs[0];
    Y = Ys[0];
  }

  ~Harness() {
    Jit.reset(); // drain workers before tearing down directories
    if (OwnsCacheDir)
      fs::removeAllFiles(CacheDir);
    if (!CaptureDir.empty())
      fs::removeAllFiles(CaptureDir);
  }

  std::vector<KernelArg> args() const { return argsFor(0); }
  std::vector<KernelArg> argsFor(unsigned D) const {
    return {{sem::boxF64(2.0)}, {Xs[D]}, {Ys[D]}, {N}};
  }

  /// Launches daxpy once on device 0 (capture must be enabled) and returns
  /// the recorded artifact.
  capture::CaptureArtifact captureOne(Dim3 Grid, Dim3 Block) {
    std::string Err;
    EXPECT_EQ(Jit->launchKernel("daxpy", Grid, Block, args(), &Err),
              GpuError::Success)
        << Err;
    Jit->drain();
    std::vector<std::string> Files = fs::listFiles(CaptureDir);
    EXPECT_EQ(Files.size(), 1u);
    if (Files.empty())
      return {};
    std::string RErr;
    std::optional<capture::CaptureArtifact> A =
        capture::readArtifactFile(CaptureDir + "/" + Files[0], &RErr);
    EXPECT_TRUE(A.has_value()) << RErr;
    return A ? *A : capture::CaptureArtifact{};
  }
};

// ---- Legacy on-device tuner -------------------------------------------------

TEST(AutoTunerTest, PicksAValidCandidateAndLeavesStateClean) {
  Harness H;
  std::vector<uint8_t> Before = H.Dev->memory();
  double SimBefore = H.Dev->simulatedSeconds();

  TuningResult R = autotuneBlockSize(*H.Dev, *H.Jit, "daxpy", Harness::N,
                                     H.args(), {64, 128, 256, 512});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Trials.size(), 4u);
  bool Found = false;
  for (const TuningTrial &T : R.Trials) {
    EXPECT_TRUE(T.Ok);
    if (T.ThreadsPerBlock == R.BestThreadsPerBlock) {
      Found = true;
      EXPECT_DOUBLE_EQ(T.KernelSeconds, R.BestSeconds);
    }
    EXPECT_GE(T.KernelSeconds, R.BestSeconds);
  }
  EXPECT_TRUE(Found);
  EXPECT_EQ(H.Jit->stats().TunerTrials, 4u);

  // No side effects: memory and the simulated clock are restored.
  EXPECT_EQ(H.Dev->memory(), Before);
  EXPECT_DOUBLE_EQ(H.Dev->simulatedSeconds(), SimBefore);
}

TEST(AutoTunerTest, TrialSpecializationsWarmTheCache) {
  Harness H;
  TuningResult R = autotuneBlockSize(*H.Dev, *H.Jit, "daxpy", Harness::N,
                                     H.args(), {128, 256});
  ASSERT_TRUE(R.Ok) << R.Error;
  uint64_t CompilationsAfterTuning = H.Jit->stats().Compilations;
  EXPECT_EQ(CompilationsAfterTuning, 2u) << "one specialization per block "
                                            "size (launch bounds differ)";

  // Launching the winner now must hit the cache, not recompile.
  std::string Err;
  uint32_t Blocks = Harness::N / R.BestThreadsPerBlock;
  ASSERT_EQ(H.Jit->launchKernel("daxpy", Dim3{Blocks, 1, 1},
                                Dim3{R.BestThreadsPerBlock, 1, 1}, H.args(),
                                &Err),
            GpuError::Success)
      << Err;
  EXPECT_EQ(H.Jit->stats().Compilations, CompilationsAfterTuning);
}

TEST(AutoTunerTest, RejectsEmptyWork) {
  Harness H;
  TuningResult R =
      autotuneBlockSize(*H.Dev, *H.Jit, "daxpy", 0, H.args(), {128});
  EXPECT_FALSE(R.Ok);
}

TEST(AutoTunerTest, UnknownKernelFailsCleanly) {
  Harness H;
  TuningResult R = autotuneBlockSize(*H.Dev, *H.Jit, "ghost", Harness::N,
                                     H.args(), {128});
  EXPECT_FALSE(R.Ok);
  EXPECT_GE(H.Jit->stats().TunerErrors, 1u);
}

TEST(AutoTunerTest, NonPrimaryDeviceTrialsLeaveDeviceZeroUntouched) {
  Harness H(/*NumDevices=*/2);
  Device &Dev0 = H.Mgr->device(0);
  Device &Dev1 = H.Mgr->device(1);
  std::vector<uint8_t> Before0 = Dev0.memory();
  std::vector<uint8_t> Before1 = Dev1.memory();
  const double Sim0 = Dev0.simulatedSeconds();
  const double Kern0 = Dev0.kernelSeconds();

  // Tune on the *second* device. The old tuner snapshotted Dev but routed
  // every trial through launchKernel — i.e. device 0 — so device 0's
  // memory was mutated and its clock advanced while device 1's snapshot
  // was pointlessly restored.
  TuningResult R = autotuneBlockSize(Dev1, *H.Jit, "daxpy", Harness::N,
                                     H.argsFor(1), {64, 128, 256});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Trials.size(), 3u);

  EXPECT_EQ(Dev0.memory(), Before0) << "trials must not touch device 0";
  EXPECT_DOUBLE_EQ(Dev0.simulatedSeconds(), Sim0);
  EXPECT_DOUBLE_EQ(Dev0.kernelSeconds(), Kern0);
  // And the tuned device itself is restored too.
  EXPECT_EQ(Dev1.memory(), Before1);
}

TEST(AutoTunerTest, UnattachedDeviceTuningIsACountedError) {
  Harness H;
  Device Stray(getAmdGcnSimTarget(), 1 << 20);
  const uint64_t ErrsBefore = H.Jit->stats().TunerErrors;
  TuningResult R = autotuneBlockSize(Stray, *H.Jit, "daxpy", Harness::N,
                                     H.args(), {128});
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("not attached"), std::string::npos) << R.Error;
  EXPECT_EQ(H.Jit->stats().TunerErrors, ErrsBefore + 1);
  EXPECT_TRUE(R.Trials.empty());
}

TEST(AutoTunerTest, TierOnTrialsRaceFinalTierAndRestoreStreamTails) {
  Harness H(1, false, [](JitConfig &JC) { JC.Tier = true; });
  // Park work on a non-default stream: the legacy restoreClock collapsed
  // every stream onto the default timeline, losing this tail.
  Stream *S = H.Dev->createStream();
  S->enqueue(0.5, nullptr);
  const std::vector<double> TailsBefore = H.Dev->streamTails();

  TuningResult R = autotuneBlockSize(*H.Dev, *H.Jit, "daxpy", Harness::N,
                                     H.args(), {128, 256, 512});
  ASSERT_TRUE(R.Ok) << R.Error;
  H.Jit->drain();

  // Every trial was pinned to the final tier before timing: no Tier-0
  // compile ever ran, so no candidate raced baseline code while another
  // raced promoted code.
  JitRuntimeStats Stats = H.Jit->stats();
  EXPECT_EQ(Stats.Tier0Compiles, 0u);
  EXPECT_EQ(Stats.Compilations, 3u);

  // Per-stream timelines come back exactly.
  const std::vector<double> TailsAfter = H.Dev->streamTails();
  ASSERT_EQ(TailsAfter.size(), TailsBefore.size());
  for (size_t I = 0; I != TailsBefore.size(); ++I)
    EXPECT_DOUBLE_EQ(TailsAfter[I], TailsBefore[I]) << "stream " << I;
  EXPECT_DOUBLE_EQ(S->tailSeconds(), 0.5);
}

// ---- Configuration validation ----------------------------------------------

TEST(AutoTunerTest, CachePolicyEnvAcceptsDocumentedSpellings) {
  struct Case {
    const char *Value;
    EvictionPolicy Expected;
  } Cases[] = {{"lru", EvictionPolicy::LRU},
               {"lfu", EvictionPolicy::LFU},
               {"runtime", EvictionPolicy::LFU}};
  for (const Case &C : Cases) {
    setenv("PROTEUS_CACHE_POLICY", C.Value, 1);
    std::vector<std::string> Warnings;
    CacheLimits L = CacheLimits::fromEnvironment(&Warnings);
    EXPECT_EQ(L.Policy, C.Expected) << C.Value;
    EXPECT_TRUE(Warnings.empty())
        << "documented spelling '" << C.Value << "' warned: " << Warnings[0];
  }
  unsetenv("PROTEUS_CACHE_POLICY");
}

TEST(AutoTunerTest, CachePolicyEnvWarnsInsteadOfCoercing) {
  // "mru" is not a policy; the old parser silently coerced anything that
  // was not exactly "lfu" — including the README-documented "runtime" — to
  // LRU. Now: keep the default, warn, count a config error.
  setenv("PROTEUS_CACHE_POLICY", "mru", 1);
  const uint64_t ErrsBefore = processCounter("config.errors");
  std::vector<std::string> Warnings;
  CacheLimits L = CacheLimits::fromEnvironment(&Warnings);
  EXPECT_EQ(L.Policy, EvictionPolicy::LRU) << "default kept, not coerced";
  ASSERT_EQ(Warnings.size(), 1u);
  EXPECT_NE(Warnings[0].find("PROTEUS_CACHE_POLICY"), std::string::npos);
  EXPECT_NE(Warnings[0].find("lru|lfu|runtime"), std::string::npos)
      << Warnings[0];
  EXPECT_EQ(processCounter("config.errors"), ErrsBefore + 1);
  unsetenv("PROTEUS_CACHE_POLICY");
}

TEST(AutoTunerTest, TuneEnvKnobs) {
  setenv("PROTEUS_TUNE", "on", 1);
  setenv("PROTEUS_TUNE_BUDGET", "3", 1);
  std::vector<std::string> Warnings;
  JitConfig C = JitConfig::fromEnvironment(&Warnings);
  EXPECT_TRUE(C.Tune);
  EXPECT_EQ(C.TuneBudget, 3u);
  EXPECT_TRUE(Warnings.empty());

  VariantManager::Options O = VariantManager::Options::fromConfig(C);
  EXPECT_TRUE(O.Enabled);
  EXPECT_EQ(O.Budget, 3u);

  setenv("PROTEUS_TUNE", "maybe", 1);
  setenv("PROTEUS_TUNE_BUDGET", "0", 1);
  Warnings.clear();
  C = JitConfig::fromEnvironment(&Warnings);
  EXPECT_FALSE(C.Tune) << "invalid value keeps the default";
  EXPECT_EQ(C.TuneBudget, 8u);
  EXPECT_EQ(Warnings.size(), 2u);
  unsetenv("PROTEUS_TUNE");
  unsetenv("PROTEUS_TUNE_BUDGET");
}

// ---- Variant manager --------------------------------------------------------

TEST(AutoTunerTest, VariantManagerRacesReplayedArtifact) {
  Harness H(1, /*Capture=*/true);
  capture::CaptureArtifact A = H.captureOne(Dim3{16, 1, 1}, Dim3{128, 1, 1});
  ASSERT_FALSE(A.KernelSymbol.empty());

  // Snapshot the live device after the capture launch: the race must not
  // touch it at all — trials run on throwaway replay devices. (The winner
  // promotion does charge the live device its module-upload time, so the
  // makespan may grow by that install cost; no kernel time may.)
  std::vector<uint8_t> Before = H.Dev->memory();
  const double KernBefore = H.Dev->kernelSeconds();
  const uint64_t TrialsBefore = H.Jit->stats().TunerTrials;

  VariantManager VM(*H.Jit);
  VariantTuningResult R = VM.tuneArtifact(A);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_FALSE(R.FromCache);
  EXPECT_TRUE(R.Promoted);
  ASSERT_GE(R.Trials.size(), 3u) << "at least 3 variants must race";
  for (const VariantTrial &T : R.Trials) {
    EXPECT_TRUE(T.Ok) << T.Spec.Name << ": " << T.Error;
    EXPECT_TRUE(T.OutputMatch)
        << T.Spec.Name << " changed the kernel's output";
    EXPECT_GT(T.KernelSeconds, 0.0) << T.Spec.Name;
  }
  EXPECT_EQ(H.Jit->stats().TunerTrials, TrialsBefore + R.Trials.size());
  EXPECT_GT(R.BaselineSeconds, 0.0);
  EXPECT_LE(R.WinnerSeconds, R.BaselineSeconds)
      << "the recorded default races too, so the winner can never lose "
         "to it";
  EXPECT_GT(R.TuningSeconds, 0.0) << "tuning cost is accounted";

  EXPECT_EQ(H.Dev->memory(), Before);
  EXPECT_DOUBLE_EQ(H.Dev->kernelSeconds(), KernBefore)
      << "no trial kernel may run on the live device";
}

TEST(AutoTunerTest, BudgetCapsTrialsAndDisabledRacesNothing) {
  Harness H(1, /*Capture=*/true);
  capture::CaptureArtifact A = H.captureOne(Dim3{16, 1, 1}, Dim3{128, 1, 1});

  VariantManager::Options O;
  O.Budget = 2;
  O.PersistDecision = false; // keep the decision store cold for this test
  VariantManager VM(*H.Jit, O);
  VariantTuningResult R = VM.tuneArtifact(A);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Trials.size(), 2u) << "PROTEUS_TUNE_BUDGET caps the race";
  EXPECT_EQ(R.Trials[0].Spec.Name, "default")
      << "the recorded default always stays in the race";

  VariantManager::Options Off;
  Off.Enabled = false;
  VariantManager Disabled(*H.Jit, Off);
  VariantTuningResult R2 = Disabled.tuneArtifact(A);
  EXPECT_FALSE(R2.Ok);
  EXPECT_TRUE(R2.Trials.empty());
  EXPECT_NE(R2.Error.find("disabled"), std::string::npos) << R2.Error;
}

TEST(AutoTunerTest, WinnerHotSwappedOnEveryDevice) {
  Harness H(/*NumDevices=*/2, /*Capture=*/true);
  capture::CaptureArtifact A = H.captureOne(Dim3{16, 1, 1}, Dim3{128, 1, 1});
  ASSERT_FALSE(A.KernelSymbol.empty());

  VariantManager VM(*H.Jit);
  VariantTuningResult R = VM.tuneArtifact(A);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_TRUE(R.Promoted);
  EXPECT_EQ(H.Jit->stats().TunerPromotions, 1u)
      << "one promotion per decision, however many devices it reached";

  // The winner is installed on *every* attached device: launching its
  // shape anywhere compiles nothing (the per-arch object was hot-swapped
  // onto each device's loaded-kernel table).
  const uint64_t Compiles =
      H.Jit->stats().Compilations + H.Jit->stats().Tier0Compiles;
  for (unsigned D = 0; D != H.Mgr->numDevices(); ++D) {
    std::string Err;
    ASSERT_EQ(H.Jit->launchKernelOn(D, "daxpy", R.Winner.Grid,
                                    R.Winner.Block, H.argsFor(D), nullptr,
                                    &Err),
              GpuError::Success)
        << "device " << D << ": " << Err;
  }
  EXPECT_EQ(H.Jit->stats().Compilations + H.Jit->stats().Tier0Compiles,
            Compiles)
      << "winner launches must not compile on any device";
}

TEST(AutoTunerTest, PersistedDecisionWarmPathCompilesNothing) {
  std::string SharedCache = fs::makeTempDirectory("proteus-tune-shared");
  capture::CaptureArtifact A;
  VariantTuningResult Cold;
  {
    Harness HA(1, /*Capture=*/true, nullptr, SharedCache);
    A = HA.captureOne(Dim3{16, 1, 1}, Dim3{128, 1, 1});
    ASSERT_FALSE(A.KernelSymbol.empty());
    VariantManager VM(*HA.Jit);
    Cold = VM.tuneArtifact(A);
    ASSERT_TRUE(Cold.Ok) << Cold.Error;
    ASSERT_FALSE(Cold.FromCache);
    ASSERT_GE(Cold.Trials.size(), 3u);
  } // runtime A gone; the decision + winner object live in SharedCache

  {
    // A fresh "fleet member" warm-starts from the shared cache: the tuning
    // session must race nothing and compile nothing.
    Harness HB(1, /*Capture=*/false, nullptr, SharedCache);
    VariantManager VM(*HB.Jit);
    VariantTuningResult Warm = VM.tuneArtifact(A);
    ASSERT_TRUE(Warm.Ok) << Warm.Error;
    EXPECT_TRUE(Warm.FromCache);
    EXPECT_TRUE(Warm.Promoted);
    EXPECT_TRUE(Warm.Trials.empty());
    EXPECT_EQ(Warm.DecisionKey, Cold.DecisionKey);
    EXPECT_EQ(Warm.Winner.Block.count(), Cold.Winner.Block.count());

    JitRuntimeStats Stats = HB.Jit->stats();
    EXPECT_EQ(Stats.TunerCacheHits, 1u);
    EXPECT_EQ(Stats.TunerTrials, 0u) << "a warm fleet never re-tunes";
    EXPECT_EQ(Stats.Compilations, 0u)
        << "the winner object comes out of the persistent code cache";
    EXPECT_EQ(Stats.Tier0Compiles, 0u);
    EXPECT_EQ(Stats.Launches, 0u) << "zero tuning launches on the warm path";

    // And the installed winner serves real launches without compiling.
    std::string Err;
    ASSERT_EQ(HB.Jit->launchKernel("daxpy", Warm.Winner.Grid,
                                   Warm.Winner.Block, HB.args(), &Err),
              GpuError::Success)
        << Err;
    EXPECT_EQ(HB.Jit->stats().Compilations, 0u);
    EXPECT_EQ(HB.Jit->stats().Tier0Compiles, 0u);
  }
  fs::removeAllFiles(SharedCache);
}

// ---- Bottleneck-aware policy ------------------------------------------------

TEST(AutoTunerTest, MemoryBoundVerdictPrunesEveryAxisWithExactCounters) {
  // Baseline: the unpruned race over a captured daxpy launch.
  capture::CaptureArtifact A;
  size_t TrialsUnpruned = 0;
  {
    Harness H(1, /*Capture=*/true);
    A = H.captureOne(Dim3{16, 1, 1}, Dim3{128, 1, 1});
    ASSERT_FALSE(A.KernelSymbol.empty());
    VariantManager VM(*H.Jit);
    VariantTuningResult R = VM.tuneArtifact(A);
    ASSERT_TRUE(R.Ok) << R.Error;
    TrialsUnpruned = R.Trials.size();
    ASSERT_GE(TrialsUnpruned, 3u);
  }

  // Policy on, fresh cache: daxpy (2 FLOPs against 24 bytes per thread)
  // classifies MemoryBound, which prunes every tuning axis — only the
  // recorded default races, and policy.pruned_trials counts exactly the
  // variants the unpruned race would have run.
  Harness H(1, /*Capture=*/false,
            [](JitConfig &JC) { JC.Policy = true; });
  VariantManager VM(*H.Jit);
  VariantTuningResult R = VM.tuneArtifact(A);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.Trials.size(), 1u) << "only the recorded default races";
  EXPECT_EQ(R.Trials[0].Spec.Name, "default");
  EXPECT_TRUE(R.Promoted);

  std::optional<PolicyVerdict> V =
      H.Jit->policy()->verdictFor(A.KernelSymbol, A.Arch);
  ASSERT_TRUE(V.has_value()) << "tuning must classify the artifact";
  EXPECT_EQ(V->Class, pir::analysis::BottleneckClass::MemoryBound);

  JitRuntimeStats Stats = H.Jit->stats();
  EXPECT_GE(Stats.PolicyClassified, 1u);
  EXPECT_EQ(Stats.PolicyPrunedTrials, TrialsUnpruned - 1)
      << "every non-default variant of the unpruned race was pruned";
  EXPECT_EQ(Stats.TunerTrials, 1u);
}

TEST(AutoTunerTest, PrunedVariantsDoNotConsumeTuneBudget) {
  Harness H(1, /*Capture=*/true,
            [](JitConfig &JC) { JC.Policy = true; });
  capture::CaptureArtifact A = H.captureOne(Dim3{16, 1, 1}, Dim3{128, 1, 1});
  ASSERT_FALSE(A.KernelSymbol.empty());

  // Force a ComputeBound verdict: only the block-size axis is pruned, the
  // pipeline variants (o3-fast, no-licm, unroll-wide) stay in the race.
  PolicyVerdict V;
  V.Class = pir::analysis::BottleneckClass::ComputeBound;
  H.Jit->policy()->recordVerdict(A.KernelSymbol, A.Arch, V);

  // Budget 3 with 3 pruned block variants: before the fix the pruned specs
  // consumed budget slots and the race collapsed to the default alone; now
  // the budget bounds *raced* trials, so 3 variants genuinely race.
  VariantManager::Options O;
  O.Budget = 3;
  O.PersistDecision = false;
  VariantManager VM(*H.Jit, O);
  VariantTuningResult R = VM.tuneArtifact(A);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Trials.size(), 3u)
      << "budget caps raced trials after pruning, not before";
  EXPECT_EQ(R.Trials[0].Spec.Name, "default");
  for (const VariantTrial &T : R.Trials)
    EXPECT_EQ(T.Spec.Block.count(), A.Block.count())
        << T.Spec.Name << ": block-size variants must have been pruned";
  EXPECT_EQ(H.Jit->stats().PolicyPrunedTrials, 3u)
      << "exactly the three non-default block candidates were pruned";
}

TEST(AutoTunerTest, PolicyOffRuntimeHasNoPolicyState) {
  Harness H;
  EXPECT_EQ(H.Jit->policy(), nullptr);
  EXPECT_EQ(H.Jit->stats().PolicyClassified, 0u);
  EXPECT_EQ(H.Jit->stats().PolicyPrunedTrials, 0u);
}

TEST(AutoTunerTest, ConcurrentTuningStorm) {
  // Concurrent tuning sessions and launches against one runtime: the
  // decision store, the counters, and the hot-swap path must be
  // data-race-free (this test is in the TSan lane's storm set).
  Harness H(/*NumDevices=*/2, /*Capture=*/true,
            [](JitConfig &JC) { JC.Tier = true; });
  capture::CaptureArtifact A = H.captureOne(Dim3{16, 1, 1}, Dim3{128, 1, 1});
  ASSERT_FALSE(A.KernelSymbol.empty());

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != 4; ++T)
    Threads.emplace_back([&H, &A, T] {
      if (T % 2 == 0) {
        VariantManager VM(*H.Jit);
        VariantTuningResult R = VM.tuneArtifact(A);
        EXPECT_TRUE(R.Ok || R.FromCache) << R.Error;
      } else {
        for (unsigned I = 0; I != 8; ++I) {
          std::string Err;
          EXPECT_EQ(H.Jit->launchKernelOn(T % H.Mgr->numDevices(), "daxpy",
                                          Dim3{16, 1, 1}, Dim3{128, 1, 1},
                                          H.argsFor(T % H.Mgr->numDevices()),
                                          nullptr, &Err),
                    GpuError::Success)
              << Err;
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();
  H.Jit->drain();
  EXPECT_GE(H.Jit->stats().TunerTrials + H.Jit->stats().TunerCacheHits, 2u);
}

} // namespace
