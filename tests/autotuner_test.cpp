//===- autotuner_test.cpp - launch auto-tuning tests ------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/Context.h"
#include "jit/AutoTuner.h"
#include "jit/Program.h"
#include "support/FileSystem.h"

#include <gtest/gtest.h>

using namespace pir;
using namespace proteus;
using namespace proteus::gpu;
using namespace proteus_test;

namespace {

struct Harness {
  Context Ctx;
  Module M{Ctx, "tune"};
  Function *F = nullptr;
  std::unique_ptr<Device> Dev;
  std::unique_ptr<JitRuntime> Jit;
  std::unique_ptr<LoadedProgram> LP;
  std::string CacheDir;
  DevicePtr X = 0, Y = 0;
  static constexpr uint32_t N = 2048;

  Harness() {
    F = buildDaxpyKernel(M);
    AotOptions AO;
    AO.Arch = GpuArch::AmdGcnSim;
    AO.EnableProteusExtensions = true;
    CompiledProgram Prog = aotCompile(M, AO);
    Dev = std::make_unique<Device>(getAmdGcnSimTarget(), 1 << 22);
    CacheDir = fs::makeTempDirectory("proteus-tune");
    JitConfig JC;
    JC.CacheDir = CacheDir;
    Jit = std::make_unique<JitRuntime>(*Dev, Prog.ModuleId, JC);
    LP = std::make_unique<LoadedProgram>(*Dev, Prog, Jit.get());
    gpuMalloc(*Dev, &X, N * 8);
    gpuMalloc(*Dev, &Y, N * 8);
    std::vector<double> H(N, 1.0);
    gpuMemcpyHtoD(*Dev, X, H.data(), N * 8);
    gpuMemcpyHtoD(*Dev, Y, H.data(), N * 8);
  }

  ~Harness() { fs::removeAllFiles(CacheDir); }

  std::vector<KernelArg> args() const {
    return {{sem::boxF64(2.0)}, {X}, {Y}, {N}};
  }
};

TEST(AutoTunerTest, PicksAValidCandidateAndLeavesStateClean) {
  Harness H;
  std::vector<uint8_t> Before = H.Dev->memory();
  double SimBefore = H.Dev->simulatedSeconds();

  TuningResult R = autotuneBlockSize(*H.Dev, *H.Jit, "daxpy", Harness::N,
                                     H.args(), {64, 128, 256, 512});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Trials.size(), 4u);
  bool Found = false;
  for (const TuningTrial &T : R.Trials) {
    EXPECT_TRUE(T.Ok);
    if (T.ThreadsPerBlock == R.BestThreadsPerBlock) {
      Found = true;
      EXPECT_DOUBLE_EQ(T.KernelSeconds, R.BestSeconds);
    }
    EXPECT_GE(T.KernelSeconds, R.BestSeconds);
  }
  EXPECT_TRUE(Found);

  // No side effects: memory and the simulated clock are restored.
  EXPECT_EQ(H.Dev->memory(), Before);
  EXPECT_DOUBLE_EQ(H.Dev->simulatedSeconds(), SimBefore);
}

TEST(AutoTunerTest, TrialSpecializationsWarmTheCache) {
  Harness H;
  TuningResult R = autotuneBlockSize(*H.Dev, *H.Jit, "daxpy", Harness::N,
                                     H.args(), {128, 256});
  ASSERT_TRUE(R.Ok) << R.Error;
  uint64_t CompilationsAfterTuning = H.Jit->stats().Compilations;
  EXPECT_EQ(CompilationsAfterTuning, 2u) << "one specialization per block "
                                            "size (launch bounds differ)";

  // Launching the winner now must hit the cache, not recompile.
  std::string Err;
  uint32_t Blocks = Harness::N / R.BestThreadsPerBlock;
  ASSERT_EQ(H.Jit->launchKernel("daxpy", Dim3{Blocks, 1, 1},
                                Dim3{R.BestThreadsPerBlock, 1, 1}, H.args(),
                                &Err),
            GpuError::Success)
      << Err;
  EXPECT_EQ(H.Jit->stats().Compilations, CompilationsAfterTuning);
}

TEST(AutoTunerTest, RejectsEmptyWork) {
  Harness H;
  TuningResult R =
      autotuneBlockSize(*H.Dev, *H.Jit, "daxpy", 0, H.args(), {128});
  EXPECT_FALSE(R.Ok);
}

TEST(AutoTunerTest, UnknownKernelFailsCleanly) {
  Harness H;
  TuningResult R = autotuneBlockSize(*H.Dev, *H.Jit, "ghost", Harness::N,
                                     H.args(), {128});
  EXPECT_FALSE(R.Ok);
}

} // namespace
