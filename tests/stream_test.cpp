//===- stream_test.cpp - stream/event engine and multi-device battery ------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Semantics battery for the concurrent execution engine: per-stream FIFO
// timelines, cross-stream independence (overlap), event happens-before
// edges, elapsed-time monotonicity, free diagnostics, DeviceManager env
// configuration, per-stream trace lanes, and the multi-device JIT: one
// compile per (specialization, arch) loaded onto every device that
// launches it, with 1-device vs N-device runs byte-identical.
//
// The launch-storm test is TSan-ready (tools/ci_tsan.sh re-runs this file
// with PROTEUS_NUM_DEVICES/PROTEUS_DEFAULT_STREAMS raised and
// PROTEUS_TIER=on PROTEUS_ASYNC=fallback): worker threads only record
// results; all gtest assertions happen on the main thread after join.
//
//===----------------------------------------------------------------------===//

#include "RandomKernel.h"

#include "ir/Context.h"
#include "ir/OpSemantics.h"
#include "gpu/DeviceManager.h"
#include "jit/AotCompiler.h"
#include "jit/Program.h"
#include "support/FileSystem.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <thread>

using namespace pir;
using namespace proteus;
using namespace proteus::gpu;
using namespace proteus_test;

namespace {

struct TempDir {
  std::string Path;
  TempDir() : Path(fs::makeTempDirectory("proteus-stream")) {}
  ~TempDir() { fs::removeAllFiles(Path); }
  std::string file(const std::string &Name) const { return Path + "/" + Name; }
};

/// Sets an environment variable for the scope, restoring the previous
/// state (including absence) on destruction.
struct ScopedEnv {
  std::string Name;
  std::string Old;
  bool Had;
  ScopedEnv(const char *N, const char *V) : Name(N) {
    const char *P = getenv(N);
    Had = P != nullptr;
    if (P)
      Old = P;
    setenv(N, V, 1);
  }
  ~ScopedEnv() {
    if (Had)
      setenv(Name.c_str(), Old.c_str(), 1);
    else
      unsetenv(Name.c_str());
  }
};

constexpr unsigned NumKernels = 3;
constexpr unsigned NumSpecs = 2;
constexpr uint32_t N = 64; // elements per buffer

struct WorkItem {
  std::string Symbol;
  double Sf;
  int32_t Si;
  unsigned OutIndex;
};

std::vector<WorkItem> makeWorkItems() {
  std::vector<WorkItem> Items;
  for (unsigned K = 0; K != NumKernels; ++K)
    for (unsigned S = 0; S != NumSpecs; ++S)
      Items.push_back(WorkItem{"rk" + std::to_string(K), 1.25 + 0.5 * S,
                               static_cast<int32_t>(3 + S),
                               K * NumSpecs + S});
  return Items;
}

std::unique_ptr<Module> buildProgramModule(Context &Ctx) {
  auto M = std::make_unique<Module>(Ctx, "stream_app");
  for (unsigned K = 0; K != NumKernels; ++K)
    buildRandomKernelInto(*M, /*Seed=*/1000 + 17 * K,
                          "rk" + std::to_string(K));
  return M;
}

CompiledProgram compileFor(GpuArch Arch) {
  Context Ctx;
  auto M = buildProgramModule(Ctx);
  AotOptions AO;
  AO.Arch = Arch;
  AO.EnableProteusExtensions = true;
  return aotCompile(*M, AO);
}

/// A device pool sharing one JitRuntime: the program image is loaded onto
/// every device (attaching it), each device gets its own input and
/// per-item output buffers, and launches go through launchKernelOn.
struct PoolHarness {
  DeviceManager Mgr;
  JitRuntime Jit;
  std::vector<std::unique_ptr<LoadedProgram>> LPs;
  std::vector<DevicePtr> Ins;
  std::vector<std::vector<DevicePtr>> Outs; // [device][item]

  PoolHarness(const std::vector<const CompiledProgram *> &ProgForDevice,
              const DeviceManager::Config &C, const JitConfig &JC)
      : Mgr(C), Jit(Mgr.device(0), ProgForDevice[0]->ModuleId, JC) {
    for (unsigned D = 0; D != Mgr.numDevices(); ++D) {
      LPs.emplace_back(new LoadedProgram(
          Mgr.device(D), *ProgForDevice[D % ProgForDevice.size()], &Jit));
      EXPECT_TRUE(LPs.back()->ok()) << LPs.back()->error();
    }
    std::vector<double> HIn(N);
    for (uint32_t I = 0; I != N; ++I)
      HIn[I] = 0.25 * I - 3.0;
    Ins.resize(Mgr.numDevices());
    Outs.resize(Mgr.numDevices());
    for (unsigned D = 0; D != Mgr.numDevices(); ++D) {
      Device &Dev = Mgr.device(D);
      EXPECT_EQ(gpuMalloc(Dev, &Ins[D], N * 8), GpuError::Success);
      gpuMemcpyHtoD(Dev, Ins[D], HIn.data(), N * 8);
      Outs[D].resize(NumKernels * NumSpecs);
      for (DevicePtr &P : Outs[D])
        EXPECT_EQ(gpuMalloc(Dev, &P, N * 8), GpuError::Success);
    }
  }

  GpuError launch(unsigned D, const WorkItem &W, Stream *S,
                  std::string *Err) {
    std::vector<KernelArg> Args = {{Ins[D]},
                                   {Outs[D][W.OutIndex]},
                                   {N},
                                   {sem::boxF64(W.Sf)},
                                   {static_cast<uint64_t>(
                                       static_cast<uint32_t>(W.Si))}};
    return Jit.launchKernelOn(D, W.Symbol, Dim3{2, 1, 1}, Dim3{32, 1, 1},
                              Args, S, Err);
  }

  std::vector<uint8_t> readOut(unsigned D, unsigned Index) {
    std::vector<uint8_t> Bytes(N * 8);
    gpuMemcpyDtoH(Mgr.device(D), Bytes.data(), Outs[D][Index], N * 8);
    return Bytes;
  }
};

/// Single-device synchronous reference: expected bytes per work item.
std::vector<std::vector<uint8_t>> baselineResults(const CompiledProgram &Prog,
                                                  const JitConfig &JCIn) {
  JitConfig JC = JCIn;
  JC.UsePersistentCache = false;
  JC.Async = JitConfig::AsyncMode::Sync;
  DeviceManager::Config C;
  C.NumDevices = 1;
  C.MemoryBytesPerDevice = 1ull << 24;
  std::vector<const CompiledProgram *> Progs = {&Prog};
  PoolHarness H(Progs, C, JC);
  std::vector<std::vector<uint8_t>> Out;
  for (const WorkItem &W : makeWorkItems()) {
    std::string Err;
    EXPECT_EQ(H.launch(0, W, nullptr, &Err), GpuError::Success) << Err;
  }
  H.Jit.drain();
  for (unsigned I = 0; I != NumKernels * NumSpecs; ++I)
    Out.push_back(H.readOut(0, I));
  return Out;
}

// -- Device-level stream and event semantics --------------------------------

TEST(StreamTest, SameStreamOpsAreFifo) {
  Device Dev(getTarget(GpuArch::AmdGcnSim), 1ull << 22);
  DevicePtr A = 0;
  ASSERT_EQ(gpuMalloc(Dev, &A, 1 << 16), GpuError::Success);
  std::vector<uint8_t> H(1 << 16, 7);

  Stream *S = nullptr;
  ASSERT_EQ(gpuStreamCreate(Dev, &S), GpuError::Success);
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(&S->device(), &Dev);
  EXPECT_DOUBLE_EQ(S->tailSeconds(), 0.0);

  Event E0, E1, E2;
  ASSERT_EQ(gpuEventRecord(Dev, E0, S), GpuError::Success);
  EXPECT_DOUBLE_EQ(E0.TimeSec, 0.0);

  ASSERT_EQ(gpuMemcpyHtoDAsync(Dev, A, H.data(), H.size(), S),
            GpuError::Success);
  double T1 = S->tailSeconds();
  EXPECT_GT(T1, 0.0) << "transfers must cost simulated time";
  ASSERT_EQ(gpuEventRecord(Dev, E1, S), GpuError::Success);
  EXPECT_DOUBLE_EQ(E1.TimeSec, T1);

  ASSERT_EQ(gpuMemcpyHtoDAsync(Dev, A, H.data(), H.size(), S),
            GpuError::Success);
  double T2 = S->tailSeconds();
  // FIFO: the second equal-size copy starts where the first ended.
  EXPECT_DOUBLE_EQ(T2, 2.0 * T1);
  ASSERT_EQ(gpuEventRecord(Dev, E2, S), GpuError::Success);

  // Event stamps along one stream are monotone; elapsed time matches the
  // timeline delta and is non-negative in record order.
  EXPECT_LT(E0.TimeSec, E1.TimeSec);
  EXPECT_LT(E1.TimeSec, E2.TimeSec);
  double Ms = -1.0;
  ASSERT_EQ(gpuEventElapsedTime(&Ms, E1, E2), GpuError::Success);
  EXPECT_NEAR(Ms, (T2 - T1) * 1e3, 1e-9);
  EXPECT_GE(Ms, 0.0);
  ASSERT_EQ(gpuEventElapsedTime(&Ms, E0, E2), GpuError::Success);
  EXPECT_NEAR(Ms, T2 * 1e3, 1e-9);
}

TEST(StreamTest, CrossStreamTimelinesOverlap) {
  Device Dev(getTarget(GpuArch::AmdGcnSim), 1ull << 22);
  DevicePtr A = 0, B = 0;
  ASSERT_EQ(gpuMalloc(Dev, &A, 1 << 16), GpuError::Success);
  ASSERT_EQ(gpuMalloc(Dev, &B, 1 << 16), GpuError::Success);
  std::vector<uint8_t> H(1 << 16, 9);

  Stream *S1 = nullptr, *S2 = nullptr;
  ASSERT_EQ(gpuStreamCreate(Dev, &S1), GpuError::Success);
  ASSERT_EQ(gpuStreamCreate(Dev, &S2), GpuError::Success);
  EXPECT_NE(S1->id(), S2->id());

  ASSERT_EQ(gpuMemcpyHtoDAsync(Dev, A, H.data(), H.size(), S1),
            GpuError::Success);
  double T1 = S1->tailSeconds();
  ASSERT_EQ(gpuMemcpyHtoDAsync(Dev, B, H.data(), H.size(), S2),
            GpuError::Success);
  // Independent timelines: the second stream's copy overlaps the first, so
  // the device makespan is one copy, not two.
  EXPECT_DOUBLE_EQ(S2->tailSeconds(), T1);
  EXPECT_DOUBLE_EQ(Dev.simulatedSeconds(), T1);

  // Effects are applied eagerly regardless of timelines.
  std::vector<uint8_t> R(1 << 16);
  ASSERT_EQ(gpuMemcpyDtoH(Dev, R.data(), B, R.size()), GpuError::Success);
  EXPECT_EQ(R, H);

  // A synchronous (legacy default stream) op is a full barrier: it starts
  // at the makespan, after both streams' work.
  double Makespan = Dev.simulatedSeconds();
  ASSERT_EQ(gpuMemset(Dev, A, 0, 256), GpuError::Success);
  EXPECT_GT(Dev.defaultStream().tailSeconds(), Makespan);

  // Streams are drainable; synchronize is a timing no-op here.
  EXPECT_EQ(gpuStreamSynchronize(Dev, S1), GpuError::Success);
  EXPECT_EQ(gpuDeviceSynchronize(Dev), GpuError::Success);
}

TEST(StreamTest, NullStreamDegradesToLegacyBarrier) {
  Device Dev(getTarget(GpuArch::AmdGcnSim), 1ull << 22);
  DevicePtr A = 0;
  ASSERT_EQ(gpuMalloc(Dev, &A, 1 << 16), GpuError::Success);
  std::vector<uint8_t> H(1 << 16, 3);

  Stream *S1 = nullptr;
  ASSERT_EQ(gpuStreamCreate(Dev, &S1), GpuError::Success);
  ASSERT_EQ(gpuMemcpyHtoDAsync(Dev, A, H.data(), H.size(), S1),
            GpuError::Success);
  double T1 = S1->tailSeconds();

  // Null stream == the synchronous call: barrier at the makespan, charged
  // to the default stream.
  ASSERT_EQ(gpuMemsetAsync(Dev, A, 0, 1 << 16, nullptr), GpuError::Success);
  EXPECT_GT(Dev.defaultStream().tailSeconds(), T1);

  // An async op on a stream of a different device is rejected.
  Device Other(getTarget(GpuArch::AmdGcnSim), 1ull << 22);
  Stream *SO = nullptr;
  ASSERT_EQ(gpuStreamCreate(Other, &SO), GpuError::Success);
  EXPECT_EQ(gpuMemcpyHtoDAsync(Dev, A, H.data(), H.size(), SO),
            GpuError::InvalidValue);
}

TEST(StreamTest, EventHappensBeforeAcrossStreamsAndDevices) {
  Device Dev(getTarget(GpuArch::AmdGcnSim), 1ull << 22);
  DevicePtr A = 0;
  ASSERT_EQ(gpuMalloc(Dev, &A, 1 << 18), GpuError::Success);
  std::vector<uint8_t> H(1 << 18, 1);

  Stream *S1 = nullptr, *S2 = nullptr;
  ASSERT_EQ(gpuStreamCreate(Dev, &S1), GpuError::Success);
  ASSERT_EQ(gpuStreamCreate(Dev, &S2), GpuError::Success);

  // Big copy on S1, then an event marking its completion.
  ASSERT_EQ(gpuMemcpyHtoDAsync(Dev, A, H.data(), H.size(), S1),
            GpuError::Success);
  Event Ev;
  ASSERT_EQ(gpuEventRecord(Dev, Ev, S1), GpuError::Success);
  ASSERT_TRUE(Ev.recorded());
  EXPECT_GT(Ev.TimeSec, 0.0);

  // S2 has done nothing; after waiting on the event all later S2 work
  // starts no earlier than the event stamp.
  EXPECT_DOUBLE_EQ(S2->tailSeconds(), 0.0);
  ASSERT_EQ(gpuStreamWaitEvent(S2, Ev), GpuError::Success);
  EXPECT_GE(S2->tailSeconds(), Ev.TimeSec);
  ASSERT_EQ(gpuMemsetAsync(Dev, A, 0, 256, S2), GpuError::Success);
  EXPECT_GT(S2->tailSeconds(), Ev.TimeSec);

  // Cross-device waits are legal: timelines share one global simulated
  // time coordinate.
  Device Dev2(getTarget(GpuArch::AmdGcnSim), 1ull << 22);
  Stream *S3 = nullptr;
  ASSERT_EQ(gpuStreamCreate(Dev2, &S3), GpuError::Success);
  ASSERT_EQ(gpuStreamWaitEvent(S3, Ev), GpuError::Success);
  EXPECT_GE(S3->tailSeconds(), Ev.TimeSec);

  EXPECT_EQ(gpuEventSynchronize(Ev), GpuError::Success);
}

TEST(StreamTest, UnrecordedEventsAreInvalid) {
  Event Never;
  EXPECT_FALSE(Never.recorded());
  EXPECT_EQ(gpuEventSynchronize(Never), GpuError::InvalidValue);

  Device Dev(getTarget(GpuArch::AmdGcnSim), 1ull << 20);
  Event Ok;
  ASSERT_EQ(gpuEventRecord(Dev, Ok, nullptr), GpuError::Success);
  double Ms = 0.0;
  EXPECT_EQ(gpuEventElapsedTime(&Ms, Never, Ok), GpuError::InvalidValue);
  EXPECT_EQ(gpuEventElapsedTime(&Ms, Ok, Never), GpuError::InvalidValue);
  Stream *S = nullptr;
  ASSERT_EQ(gpuStreamCreate(Dev, &S), GpuError::Success);
  EXPECT_EQ(gpuStreamWaitEvent(S, Never), GpuError::InvalidValue);
}

// -- Multi-stream kernel overlap (the tentpole's measurable speedup) --------

TEST(StreamTest, FourStreamsGiveAtLeastThreeTimesScaling) {
  CompiledProgram Prog = compileFor(GpuArch::AmdGcnSim);
  ASSERT_FALSE(Prog.Image.KernelObjects.empty());
  const std::vector<uint8_t> &Obj = Prog.Image.KernelObjects.at("rk0");

  Device Dev(getTarget(GpuArch::AmdGcnSim), 1ull << 22);
  LoadedKernel *K = nullptr;
  std::string Err;
  ASSERT_EQ(gpuModuleLoad(Dev, &K, Obj, &Err), GpuError::Success) << Err;

  DevicePtr In = 0, Out = 0;
  ASSERT_EQ(gpuMalloc(Dev, &In, N * 8), GpuError::Success);
  ASSERT_EQ(gpuMalloc(Dev, &Out, N * 8), GpuError::Success);
  std::vector<double> HIn(N, 1.5);
  gpuMemcpyHtoD(Dev, In, HIn.data(), N * 8);
  std::vector<KernelArg> Args = {
      {In}, {Out}, {N}, {sem::boxF64(1.25)}, {uint64_t(3)}};

  std::vector<Stream *> Streams;
  for (unsigned I = 0; I != 4; ++I) {
    Stream *S = nullptr;
    ASSERT_EQ(gpuStreamCreate(Dev, &S), GpuError::Success);
    Streams.push_back(S);
  }

  // Warm-up launch: the perf model's first-touch effects (cold caches)
  // make the very first execution slightly more expensive; measure the
  // steady state.
  ASSERT_EQ(gpuLaunchKernelAsync(Dev, *K, Dim3{2, 1, 1}, Dim3{32, 1, 1},
                                 Args, Streams[0], &Err),
            GpuError::Success)
      << Err;

  // One kernel alone: the unit of work.
  Dev.resetSimulatedTime();
  ASSERT_EQ(gpuLaunchKernelAsync(Dev, *K, Dim3{2, 1, 1}, Dim3{32, 1, 1},
                                 Args, Streams[0], &Err),
            GpuError::Success)
      << Err;
  double Single = Dev.simulatedSeconds();
  ASSERT_GT(Single, 0.0);

  // Four identical kernels on four streams overlap: the makespan stays one
  // kernel while the aggregate busy time is four.
  Dev.resetSimulatedTime();
  double Busy = 0.0;
  for (Stream *S : Streams) {
    ASSERT_EQ(gpuLaunchKernelAsync(Dev, *K, Dim3{2, 1, 1}, Dim3{32, 1, 1},
                                   Args, S, &Err),
              GpuError::Success)
        << Err;
    Busy += S->tailSeconds();
  }
  double Makespan = Dev.simulatedSeconds();
  EXPECT_NEAR(Makespan, Single, 1e-12)
      << "independent streams must not serialize";
  EXPECT_NEAR(Busy, 4.0 * Single, 1e-12);
  EXPECT_GE(Busy / Makespan, 3.0)
      << "1 -> 4 streams must scale simulated throughput by >= 3x";
}

// -- Free diagnostics --------------------------------------------------------

TEST(StreamTest, BadFreesAreCountedNotIgnored) {
  uint64_t Unknown0 =
      metrics::processRegistry().counter("gpu.free_unknown").value();
  uint64_t Double0 =
      metrics::processRegistry().counter("gpu.free_double").value();

  Device Dev(getTarget(GpuArch::AmdGcnSim), 1ull << 20);
  DevicePtr P = 0;
  ASSERT_EQ(gpuMalloc(Dev, &P, 4096), GpuError::Success);
  EXPECT_EQ(gpuFree(Dev, P), GpuError::Success);
  // Double free: the block is already on the free list.
  EXPECT_EQ(gpuFree(Dev, P), GpuError::InvalidValue);
  EXPECT_EQ(Dev.doubleFrees(), 1u);
  // Unknown pointer: never returned by gpuMalloc.
  EXPECT_EQ(gpuFree(Dev, P + 8), GpuError::InvalidValue);
  EXPECT_EQ(Dev.unknownFrees(), 1u);

  EXPECT_EQ(metrics::processRegistry().counter("gpu.free_unknown").value(),
            Unknown0 + 1);
  EXPECT_EQ(metrics::processRegistry().counter("gpu.free_double").value(),
            Double0 + 1);
}

// -- DeviceManager environment configuration --------------------------------

TEST(StreamTest, DeviceManagerConfigFromEnvironment) {
  ScopedEnv E1("PROTEUS_NUM_DEVICES", "3");
  ScopedEnv E2("PROTEUS_DEFAULT_STREAMS", "2");
  ScopedEnv E3("PROTEUS_DEVICE_ARCHS", "amdgcn-sim,nvptx-sim");

  std::vector<std::string> Warnings;
  DeviceManager::Config C = DeviceManager::configFromEnvironment(&Warnings);
  EXPECT_TRUE(Warnings.empty());
  EXPECT_EQ(C.NumDevices, 3u);
  EXPECT_EQ(C.StreamsPerDevice, 2u);
  ASSERT_EQ(C.Archs.size(), 2u);

  DeviceManager Mgr(C);
  ASSERT_EQ(Mgr.numDevices(), 3u);
  // Archs cycle across the pool; ordinals follow pool order.
  EXPECT_EQ(Mgr.device(0).target().Arch, GpuArch::AmdGcnSim);
  EXPECT_EQ(Mgr.device(1).target().Arch, GpuArch::NvPtxSim);
  EXPECT_EQ(Mgr.device(2).target().Arch, GpuArch::AmdGcnSim);
  for (unsigned D = 0; D != 3; ++D) {
    EXPECT_EQ(Mgr.device(D).ordinal(), D);
    EXPECT_EQ(Mgr.device(D).numStreams(), 2u);
  }
  EXPECT_DOUBLE_EQ(Mgr.totalSimulatedSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(Mgr.makespanSeconds(), 0.0);
}

TEST(StreamTest, DeviceManagerInvalidEnvWarnsAndKeepsDefaults) {
  ScopedEnv E1("PROTEUS_NUM_DEVICES", "0");
  ScopedEnv E2("PROTEUS_DEFAULT_STREAMS", "999");
  ScopedEnv E3("PROTEUS_DEVICE_ARCHS", "bogus-arch");

  std::vector<std::string> Warnings;
  DeviceManager::Config C = DeviceManager::configFromEnvironment(&Warnings);
  // One warning per bad variable, never a silent substitution.
  EXPECT_EQ(Warnings.size(), 3u);
  EXPECT_EQ(C.NumDevices, 1u);
  EXPECT_EQ(C.StreamsPerDevice, 1u);
  EXPECT_TRUE(C.Archs.empty());
}

// -- Per-stream trace lanes --------------------------------------------------

TEST(StreamTest, TraceLanesCarryDeviceAndStreamTid) {
  TempDir Tmp;
  std::string Path = Tmp.file("lanes.json");

  Device Dev(getTarget(GpuArch::AmdGcnSim), 1ull << 22);
  DevicePtr A = 0;
  ASSERT_EQ(gpuMalloc(Dev, &A, 1 << 16), GpuError::Success);
  Stream *S1 = nullptr;
  ASSERT_EQ(gpuStreamCreate(Dev, &S1), GpuError::Success);
  std::vector<uint8_t> H(1 << 16, 2);

  trace::start("");
  ASSERT_EQ(gpuMemcpyHtoD(Dev, A, H.data(), H.size()), GpuError::Success);
  ASSERT_EQ(gpuMemcpyHtoDAsync(Dev, A, H.data(), H.size(), S1),
            GpuError::Success);
  ASSERT_EQ(gpuMemsetAsync(Dev, A, 0, 1 << 16, S1), GpuError::Success);
  trace::stop();
  ASSERT_TRUE(trace::writeJson(Path));

  std::string Err;
  EXPECT_TRUE(trace::validateTraceFile(Path, {"memcpyHtoD", "memset"}, &Err))
      << Err;

  std::ifstream F(Path);
  std::string Json((std::istreambuf_iterator<char>(F)),
                   std::istreambuf_iterator<char>());
  // Default stream lane (device 0, stream 0) and the created stream's lane.
  std::string Lane0 = "\"tid\":" + std::to_string(trace::laneTid(0, 0));
  std::string Lane1 = "\"tid\":" + std::to_string(trace::laneTid(0, S1->id()));
  EXPECT_NE(Json.find(Lane0), std::string::npos) << Json;
  EXPECT_NE(Json.find(Lane1), std::string::npos) << Json;
}

// -- Multi-device JIT: compile once per arch, load everywhere ---------------

TEST(StreamTest, PerArchCompileOnceLoadEverywhere) {
  CompiledProgram Prog = compileFor(GpuArch::AmdGcnSim);
  JitConfig Base; // Sync, no tier: counters are exact
  const std::vector<std::vector<uint8_t>> Expected =
      baselineResults(Prog, Base);

  JitConfig JC = Base;
  JC.UsePersistentCache = false;
  DeviceManager::Config C;
  C.NumDevices = 4;
  C.MemoryBytesPerDevice = 1ull << 24;
  std::vector<const CompiledProgram *> Progs = {&Prog};
  PoolHarness H(Progs, C, JC);

  const std::vector<WorkItem> Items = makeWorkItems();
  for (const WorkItem &W : Items)
    for (unsigned D = 0; D != 4; ++D) {
      std::string Err;
      ASSERT_EQ(H.launch(D, W, nullptr, &Err), GpuError::Success)
          << "@" << W.Symbol << " dev " << D << ": " << Err;
    }
  H.Jit.drain();

  // 1-device vs 4-device runs are byte-identical on every device.
  for (unsigned D = 0; D != 4; ++D)
    for (unsigned I = 0; I != Items.size(); ++I)
      EXPECT_EQ(H.readOut(D, I), Expected[I])
          << "device " << D << " item " << I;

  JitRuntimeStats S = H.Jit.stats();
  // Same arch everywhere: one compile per specialization, reused by the
  // three other devices via the per-arch code cache.
  EXPECT_EQ(S.Compilations, uint64_t(Items.size()));
  EXPECT_EQ(S.PerArchCompileReuse, uint64_t(Items.size() * 3));
  EXPECT_EQ(S.CrossDeviceLoads, uint64_t(Items.size() * 3));
  EXPECT_GT(S.PerArchCompileReuse, 0u);
  EXPECT_EQ(S.Launches, uint64_t(Items.size() * 4));
  EXPECT_EQ(S.StreamLaunches, 0u);
}

TEST(StreamTest, HeterogeneousPoolCompilesPerArchAndAgrees) {
  CompiledProgram ProgA = compileFor(GpuArch::AmdGcnSim);
  CompiledProgram ProgN = compileFor(GpuArch::NvPtxSim);
  JitConfig Base;
  const std::vector<std::vector<uint8_t>> Expected =
      baselineResults(ProgA, Base);

  JitConfig JC = Base;
  JC.UsePersistentCache = false;
  DeviceManager::Config C;
  C.NumDevices = 2;
  C.Archs = {GpuArch::AmdGcnSim, GpuArch::NvPtxSim};
  C.MemoryBytesPerDevice = 1ull << 24;
  std::vector<const CompiledProgram *> Progs = {&ProgA, &ProgN};
  PoolHarness H(Progs, C, JC);

  const std::vector<WorkItem> Items = makeWorkItems();
  for (const WorkItem &W : Items)
    for (unsigned D = 0; D != 2; ++D) {
      std::string Err;
      ASSERT_EQ(H.launch(D, W, nullptr, &Err), GpuError::Success)
          << "@" << W.Symbol << " dev " << D << ": " << Err;
    }
  H.Jit.drain();

  // Differential: both architectures produce identical bytes.
  for (unsigned D = 0; D != 2; ++D)
    for (unsigned I = 0; I != Items.size(); ++I)
      EXPECT_EQ(H.readOut(D, I), Expected[I])
          << "device " << D << " item " << I;

  JitRuntimeStats S = H.Jit.stats();
  // Distinct archs cannot share objects: one compile per (spec, arch),
  // and no cross-device reuse.
  EXPECT_EQ(S.Compilations, uint64_t(Items.size() * 2));
  EXPECT_EQ(S.PerArchCompileReuse, 0u);
  EXPECT_EQ(S.CrossDeviceLoads, 0u);
}

// -- Launch storm: threads x streams x devices (TSan target) ----------------

TEST(StreamTest, MultiDeviceMultiStreamLaunchStorm) {
  CompiledProgram Prog = compileFor(GpuArch::AmdGcnSim);
  JitConfig EnvJC = JitConfig::fromEnvironment();
  const std::vector<std::vector<uint8_t>> Expected =
      baselineResults(Prog, EnvJC);

  // Honor the CI battery's PROTEUS_NUM_DEVICES / PROTEUS_DEFAULT_STREAMS,
  // bounded so the default run stays cheap; archs stay homogeneous so the
  // reuse counters have a guaranteed floor.
  DeviceManager::Config C = DeviceManager::configFromEnvironment();
  C.NumDevices = std::min(std::max(C.NumDevices, 2u), 4u);
  C.StreamsPerDevice = std::min(std::max(C.StreamsPerDevice, 2u), 8u);
  C.Archs.clear();
  C.MemoryBytesPerDevice = 1ull << 24;

  JitConfig JC = EnvJC;
  JC.UsePersistentCache = false;
  std::vector<const CompiledProgram *> Progs = {&Prog};
  PoolHarness H(Progs, C, JC);

  const std::vector<WorkItem> Items = makeWorkItems();
  const unsigned NumThreads = 8;
  const unsigned Repeats = 2;
  const unsigned Devs = H.Mgr.numDevices();
  std::atomic<unsigned> Ready{0};
  std::atomic<bool> Go{false};
  std::vector<std::string> ThreadErrors(NumThreads);

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      ++Ready;
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      for (unsigned R = 0; R != Repeats; ++R)
        for (unsigned I = 0; I != Items.size(); ++I) {
          unsigned D = (I + T) % Devs;
          Stream *S =
              H.Mgr.device(D).stream((T + R) % C.StreamsPerDevice);
          std::string Err;
          if (H.launch(D, Items[I], S, &Err) != GpuError::Success) {
            ThreadErrors[T] = "@" + Items[I].Symbol + ": " + Err;
            return;
          }
        }
    });

  while (Ready.load() != NumThreads)
    std::this_thread::yield();
  Go.store(true, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();
  for (unsigned T = 0; T != NumThreads; ++T)
    EXPECT_TRUE(ThreadErrors[T].empty())
        << "thread " << T << " failed: " << ThreadErrors[T];

  H.Jit.drain();

  // A final synchronous sweep guarantees every (item, device) pair has a
  // launch-path load, pinning the reuse counters' floor even when the
  // storm ran entirely on generic fallbacks.
  for (const WorkItem &W : Items)
    for (unsigned D = 0; D != Devs; ++D) {
      std::string Err;
      ASSERT_EQ(H.launch(D, W, nullptr, &Err), GpuError::Success) << Err;
    }
  H.Jit.drain();

  for (unsigned D = 0; D != Devs; ++D)
    for (unsigned I = 0; I != Items.size(); ++I)
      EXPECT_EQ(H.readOut(D, I), Expected[I])
          << "device " << D << " item " << I;

  JitRuntimeStats S = H.Jit.stats();
  EXPECT_EQ(S.StreamLaunches,
            uint64_t(NumThreads) * Repeats * Items.size());
  EXPECT_EQ(S.Compilations, uint64_t(Items.size()))
      << "one compile per specialization across the whole pool";
  EXPECT_GE(S.PerArchCompileReuse, uint64_t(Items.size() * (Devs - 1)));
  EXPECT_GE(S.CrossDeviceLoads, uint64_t(Items.size() * (Devs - 1)));

  // The pool did real overlapping work: aggregate busy time exceeds the
  // pool makespan once more than one device is active.
  EXPECT_GT(H.Mgr.totalSimulatedSeconds(), H.Mgr.makespanSeconds());
}

} // namespace
