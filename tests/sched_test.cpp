//===- sched_test.cpp - heterogeneous scheduler + migration battery -------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The scheduling subsystem (src/sched), end to end:
//
//  * PROTEUS_SCHED and the strict PROTEUS_DEVICE_ARCHS grammar follow the
//    warn-don't-coerce contract with counted config.errors;
//  * cross-device event elapsed-time queries return a well-defined delta
//    (one global simulated-time coordinate) and count a diagnostic;
//  * cross-arch migration at a stream boundary is byte-identical to the
//    no-migration run, reuses the parse-once bitcode index (zero re-parse),
//    and its accounting (sched.migrations / bytes / regions / retarget
//    outcome) is exact — including the edge cases: migration racing a
//    Tier-1 promotion, a kernel holding device globals, a round trip that
//    must hit the warm per-arch cache, and a late-attached target whose
//    linkage-mode flip forces a clean recompile;
//  * the placement scheduler: off pins device 0 byte-identically, static
//    round-robins, load routes around busy devices, perf ranks by the
//    roofline prediction, and critical-path slack biases placement to
//    ready time alone;
//  * replay arch-override (the retarget-exercising replay mode) and
//    --publish-style cache warming replay byte-identical and leave a fresh
//    runtime with zero cold compiles.
//
// The migration-storm test is TSan-ready (tools/ci_tsan.sh re-runs this
// file with PROTEUS_NUM_DEVICES=4 and mixed PROTEUS_DEVICE_ARCHS): worker
// threads only record results; all gtest assertions happen on the main
// thread after join.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/CriticalPath.h"
#include "analysis/Roofline.h"
#include "capture/Artifact.h"
#include "codegen/Target.h"
#include "gpu/DeviceManager.h"
#include "ir/Context.h"
#include "ir/OpSemantics.h"
#include "jit/AotCompiler.h"
#include "jit/Program.h"
#include "jit/Replay.h"
#include "sched/Migrator.h"
#include "sched/Scheduler.h"
#include "support/FileSystem.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

using namespace pir;
using namespace proteus;
using namespace proteus::gpu;
using namespace proteus::sched;
using namespace proteus_test;

namespace {

constexpr uint32_t N = 64; // elements per buffer / threads per launch

/// Sets an environment variable for the scope, restoring the previous
/// state (including absence) on destruction.
struct ScopedEnv {
  std::string Name;
  std::string Old;
  bool Had;
  ScopedEnv(const char *Nm, const char *V) : Name(Nm) {
    const char *P = getenv(Nm);
    Had = P != nullptr;
    if (P)
      Old = P;
    setenv(Nm, V, 1);
  }
  ~ScopedEnv() {
    if (Had)
      setenv(Name.c_str(), Old.c_str(), 1);
    else
      unsetenv(Name.c_str());
  }
};

uint64_t counterValue(const metrics::Registry &R, const std::string &Name) {
  for (const auto &[K, V] : R.counterValues())
    if (K == Name)
      return V;
  return 0;
}

uint64_t processCounter(const std::string &Name) {
  return metrics::processRegistry().counter(Name).value();
}

/// A mixed-arch device pool sharing one JitRuntime, set up for daxpy.
/// Buffers are allocated on every device *before* the program image loads,
/// so x/y live at identical addresses across the whole pool — migrated
/// regions land on identically-shaped claims instead of colliding.
struct DaxpyPool {
  Context Ctx;
  Module M{Ctx, "sched_app"};
  Function *F = nullptr;
  CompiledProgram Prog;
  DeviceManager Mgr;
  std::unique_ptr<JitRuntime> Jit;
  std::unique_ptr<LoadedProgram> LP;
  std::vector<DevicePtr> X, Y;

  explicit DaxpyPool(const DeviceManager::Config &C, JitConfig JC = JitConfig())
      : Mgr(C) {
    F = buildDaxpyKernel(M);
    AotOptions AO;
    AO.Arch = Mgr.device(0).target().Arch;
    AO.EnableProteusExtensions = true;
    Prog = aotCompile(M, AO);

    JC.UsePersistentCache = false;
    Jit = std::make_unique<JitRuntime>(Mgr.device(0), Prog.ModuleId, JC);
    for (unsigned D = 1; D != Mgr.numDevices(); ++D)
      Jit->attachDevice(Mgr.device(D));

    std::vector<double> HX(N), HY(N);
    for (uint32_t I = 0; I != N; ++I) {
      HX[I] = 0.5 * I - 7.0;
      HY[I] = 1.0;
    }
    X.resize(Mgr.numDevices());
    Y.resize(Mgr.numDevices());
    for (unsigned D = 0; D != Mgr.numDevices(); ++D) {
      Device &Dev = Mgr.device(D);
      EXPECT_EQ(gpuMalloc(Dev, &X[D], N * 8), GpuError::Success);
      EXPECT_EQ(gpuMalloc(Dev, &Y[D], N * 8), GpuError::Success);
      gpuMemcpyHtoD(Dev, X[D], HX.data(), N * 8);
      gpuMemcpyHtoD(Dev, Y[D], HY.data(), N * 8);
    }

    // Program load last: on nvptx-sim devices it allocates bitcode blobs,
    // which must not shift the buffer addresses above.
    LP = std::make_unique<LoadedProgram>(Mgr.device(0), Prog, Jit.get());
    EXPECT_TRUE(LP->ok()) << LP->error();
  }

  std::vector<KernelArg> args(unsigned D, double A) const {
    return {{sem::boxF64(A)}, {X[D]}, {Y[D]}, {N}};
  }

  GpuError launch(unsigned D, double A, Stream *S = nullptr,
                  std::string *Err = nullptr) {
    return Jit->launchKernelOn(D, "daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1},
                               args(D, A), S, Err);
  }

  std::vector<uint8_t> readY(unsigned D) {
    std::vector<uint8_t> Bytes(N * 8);
    gpuMemcpyDtoH(Mgr.device(D), Bytes.data(), Y[D], N * 8);
    return Bytes;
  }
};

DeviceManager::Config poolConfig(std::vector<GpuArch> Archs) {
  DeviceManager::Config C;
  C.NumDevices = static_cast<unsigned>(Archs.size());
  C.StreamsPerDevice = 2;
  C.Archs = std::move(Archs);
  C.MemoryBytesPerDevice = 1ull << 22;
  return C;
}

/// Reference bytes: \p Launches daxpy launches on a single amdgcn-sim
/// device, no scheduler, no migration.
std::vector<uint8_t> baselineBytes(unsigned Launches, double A = 2.0) {
  DaxpyPool P(poolConfig({GpuArch::AmdGcnSim}));
  for (unsigned I = 0; I != Launches; ++I) {
    std::string Err;
    EXPECT_EQ(P.launch(0, A, nullptr, &Err), GpuError::Success) << Err;
  }
  P.Jit->drain();
  return P.readY(0);
}

// ---------------------------------------------------------------------------
// Environment validation (warn-don't-coerce, counted).
// ---------------------------------------------------------------------------

TEST(SchedConfigTest, FromEnvironmentParsesEveryMode) {
  const std::pair<const char *, SchedMode> Cases[] = {
      {"off", SchedMode::Off},
      {"static", SchedMode::Static},
      {"perf", SchedMode::Perf},
      {"load", SchedMode::Load},
  };
  for (const auto &[Value, Mode] : Cases) {
    ScopedEnv E("PROTEUS_SCHED", Value);
    std::vector<std::string> Warnings;
    SchedConfig C = SchedConfig::fromEnvironment(&Warnings);
    EXPECT_TRUE(Warnings.empty()) << Warnings.front();
    EXPECT_EQ(C.Mode, Mode) << Value;
    EXPECT_STREQ(schedModeName(C.Mode), Value);
  }
}

TEST(SchedConfigTest, InvalidModeWarnsCountsAndKeepsOff) {
  ScopedEnv E("PROTEUS_SCHED", "fastest");
  uint64_t Before = processCounter("config.errors");
  std::vector<std::string> Warnings;
  SchedConfig C = SchedConfig::fromEnvironment(&Warnings);
  EXPECT_EQ(C.Mode, SchedMode::Off);
  ASSERT_EQ(Warnings.size(), 1u);
  EXPECT_NE(Warnings[0].find("PROTEUS_SCHED"), std::string::npos);
  EXPECT_NE(Warnings[0].find("fastest"), std::string::npos);
  EXPECT_EQ(processCounter("config.errors"), Before + 1);
}

TEST(DeviceArchsTest, StrictGrammarRejectsMalformedLists) {
  const char *Bad[] = {
      "amdgcn-sim,",            // trailing comma -> empty final segment
      ",nvptx-sim",             // leading comma
      "amdgcn-sim,,nvptx-sim",  // doubled comma
      "amdgcn-sim,bogus-arch",  // unknown name
      "",                       // empty value
  };
  for (const char *Value : Bad) {
    ScopedEnv E("PROTEUS_DEVICE_ARCHS", Value);
    uint64_t Before = processCounter("config.errors");
    std::vector<std::string> Warnings;
    DeviceManager::Config C = DeviceManager::configFromEnvironment(&Warnings);
    EXPECT_TRUE(C.Archs.empty()) << Value;
    ASSERT_EQ(Warnings.size(), 1u) << Value;
    EXPECT_NE(Warnings[0].find("PROTEUS_DEVICE_ARCHS"), std::string::npos)
        << Warnings[0];
    EXPECT_EQ(processCounter("config.errors"), Before + 1) << Value;
  }

  ScopedEnv E("PROTEUS_DEVICE_ARCHS", "nvptx-sim,amdgcn-sim");
  std::vector<std::string> Warnings;
  DeviceManager::Config C = DeviceManager::configFromEnvironment(&Warnings);
  EXPECT_TRUE(Warnings.empty());
  ASSERT_EQ(C.Archs.size(), 2u);
  EXPECT_EQ(C.Archs[0], GpuArch::NvPtxSim);
  EXPECT_EQ(C.Archs[1], GpuArch::AmdGcnSim);
}

// ---------------------------------------------------------------------------
// Cross-device events.
// ---------------------------------------------------------------------------

TEST(CrossDeviceEventTest, ElapsedAcrossDevicesIsDefinedAndCounted) {
  DeviceManager Mgr(poolConfig({GpuArch::AmdGcnSim, GpuArch::NvPtxSim}));
  Device &A = Mgr.device(0);
  Device &B = Mgr.device(1);

  A.defaultStream().enqueue(0.25, "work");
  Event E1;
  ASSERT_EQ(gpuEventRecord(A, E1, &A.defaultStream()), GpuError::Success);
  B.defaultStream().enqueue(0.75, "work");
  Event E2;
  ASSERT_EQ(gpuEventRecord(B, E2, &B.defaultStream()), GpuError::Success);

  EXPECT_EQ(E1.DeviceOrdinal, 0);
  EXPECT_EQ(E2.DeviceOrdinal, 1);

  // All devices share one simulated-time coordinate, so the delta is
  // well-defined — and the cross-device query is counted as a diagnostic.
  uint64_t Before = processCounter("gpu.event_cross_device");
  double Ms = -1.0;
  ASSERT_EQ(gpuEventElapsedTime(&Ms, E1, E2), GpuError::Success);
  EXPECT_NEAR(Ms, (0.75 - 0.25) * 1e3, 1e-9);
  EXPECT_EQ(processCounter("gpu.event_cross_device"), Before + 1);

  // Same-device pairs stay uncounted.
  Event E3;
  ASSERT_EQ(gpuEventRecord(A, E3, &A.defaultStream()), GpuError::Success);
  ASSERT_EQ(gpuEventElapsedTime(&Ms, E1, E3), GpuError::Success);
  EXPECT_EQ(processCounter("gpu.event_cross_device"), Before + 1);
}

// ---------------------------------------------------------------------------
// Cross-arch migration.
// ---------------------------------------------------------------------------

TEST(MigrationTest, CrossArchMigrationIsByteIdenticalAndZeroReparse) {
  const std::vector<uint8_t> Expected = baselineBytes(4);

  DaxpyPool P(poolConfig({GpuArch::AmdGcnSim, GpuArch::NvPtxSim}));
  std::string Err;
  ASSERT_EQ(P.launch(0, 2.0, nullptr, &Err), GpuError::Success) << Err;
  ASSERT_EQ(P.launch(0, 2.0, nullptr, &Err), GpuError::Success) << Err;

  const uint64_t SrcSymbols = P.Mgr.device(0).symbolBindings().size();

  metrics::Registry SReg;
  Migrator Mig(*P.Jit, SReg);
  MigrationResult R = Mig.migrate(0, 1, "daxpy", Dim3{32, 1, 1},
                                  P.args(0, 2.0));
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.DrainTimeSec, 0.0) << "drain must cover the copy-out";
  EXPECT_EQ(R.RegionsCopied, 2u);
  EXPECT_EQ(R.BytesCopied, 2u * N * 8);
  EXPECT_EQ(R.SymbolsRebound, SrcSymbols);
  EXPECT_FALSE(R.RetargetReusedCache) << "nv object cannot be warm yet";

  // Resume the timeline tail on the target: byte-identical to never having
  // migrated (the simulator is functional, so arch must not matter).
  ASSERT_EQ(P.launch(1, 2.0, nullptr, &Err), GpuError::Success) << Err;
  ASSERT_EQ(P.launch(1, 2.0, nullptr, &Err), GpuError::Success) << Err;
  P.Jit->drain();
  EXPECT_EQ(P.readY(1), Expected);

  // Exact accounting. The retarget compiled the nv object from the cached
  // parse-once index: one backend run, zero cache reuse, and — the key
  // property — exactly one front-end bitcode parse for the whole life of
  // the kernel, launches and migration included.
  JitRuntimeStats St = P.Jit->stats();
  EXPECT_EQ(St.RetargetCompiles, 1u);
  EXPECT_EQ(St.RetargetCacheReuse, 0u);
  EXPECT_EQ(St.BitcodeParses, 1u) << "retarget must not re-parse bitcode";
  EXPECT_EQ(counterValue(SReg, "sched.migrations"), 1u);
  EXPECT_EQ(counterValue(SReg, "sched.migration_bytes"), 2u * N * 8);
  EXPECT_EQ(counterValue(SReg, "sched.migration_regions"), 2u);
  EXPECT_EQ(counterValue(SReg, "sched.migration_symbols"), SrcSymbols);
  EXPECT_EQ(counterValue(SReg, "sched.migration_retarget_compiled"), 1u);
  EXPECT_EQ(counterValue(SReg, "sched.migration_retarget_reused"), 0u);
}

TEST(MigrationTest, RoundTripReusesWarmPerArchCache) {
  const std::vector<uint8_t> Expected = baselineBytes(4);

  DaxpyPool P(poolConfig({GpuArch::AmdGcnSim, GpuArch::NvPtxSim}));
  std::string Err;
  ASSERT_EQ(P.launch(0, 2.0, nullptr, &Err), GpuError::Success) << Err;
  ASSERT_EQ(P.launch(0, 2.0, nullptr, &Err), GpuError::Success) << Err;

  metrics::Registry SReg;
  Migrator Mig(*P.Jit, SReg);
  MigrationResult To = Mig.migrate(0, 1, "daxpy", Dim3{32, 1, 1},
                                   P.args(0, 2.0));
  ASSERT_TRUE(To.Ok) << To.Error;
  ASSERT_EQ(P.launch(1, 2.0, nullptr, &Err), GpuError::Success) << Err;

  // Back to the amd device: its final-tier object is warm in the shared
  // cache, so the return migration must not compile anything.
  MigrationResult Back = Mig.migrate(1, 0, "daxpy", Dim3{32, 1, 1},
                                     P.args(1, 2.0));
  ASSERT_TRUE(Back.Ok) << Back.Error;
  EXPECT_TRUE(Back.RetargetReusedCache);
  ASSERT_EQ(P.launch(0, 2.0, nullptr, &Err), GpuError::Success) << Err;
  P.Jit->drain();
  EXPECT_EQ(P.readY(0), Expected);

  JitRuntimeStats St = P.Jit->stats();
  EXPECT_EQ(St.RetargetCompiles, 1u) << "only the nv leg compiles";
  EXPECT_EQ(St.RetargetCacheReuse, 1u);
  EXPECT_EQ(St.BitcodeParses, 1u);
  EXPECT_EQ(counterValue(SReg, "sched.migrations"), 2u);
  EXPECT_EQ(counterValue(SReg, "sched.migration_retarget_reused"), 1u);
  EXPECT_EQ(counterValue(SReg, "sched.migration_retarget_compiled"), 1u);
}

TEST(MigrationTest, MigrationDuringTierPromotionNeverLoadsTier0) {
  const std::vector<uint8_t> Expected = baselineBytes(2);

  JitConfig JC;
  JC.Tier = true; // Tier-0 serves the launch; Tier-1 promotes in background
  DaxpyPool P(poolConfig({GpuArch::AmdGcnSim, GpuArch::NvPtxSim}), JC);
  std::string Err;
  ASSERT_EQ(P.launch(0, 2.0, nullptr, &Err), GpuError::Success) << Err;

  // Migrate immediately — the Tier-1 promotion may still be in flight. The
  // retarget's reuse check rejects Tier-0 placeholders, so whatever the
  // race outcome, the target device gets a final-tier object.
  metrics::Registry SReg;
  Migrator Mig(*P.Jit, SReg);
  MigrationResult R = Mig.migrate(0, 1, "daxpy", Dim3{32, 1, 1},
                                  P.args(0, 2.0));
  ASSERT_TRUE(R.Ok) << R.Error;

  ASSERT_EQ(P.launch(1, 2.0, nullptr, &Err), GpuError::Success) << Err;
  P.Jit->drain();
  EXPECT_EQ(P.readY(1), Expected);
  EXPECT_GE(P.Jit->stats().Tier0Compiles, 1u);
  EXPECT_EQ(counterValue(SReg, "sched.migrations"), 1u);
}

TEST(MigrationTest, DeviceGlobalsMigrateAndRelinkSymbolically) {
  // A kernel reading a device global: y[i] = weights[i & 7] * x[i].
  Context Ctx;
  Module M(Ctx, "gmig_app");
  IRBuilder B(Ctx);
  Type *F64 = Ctx.getF64Ty();
  M.createGlobal("weights", F64, 8);
  Function *K = M.createFunction(
      "gscale", Ctx.getVoidTy(),
      {Ctx.getPtrTy(), Ctx.getPtrTy(), Ctx.getI32Ty()}, {"x", "y", "n"},
      FunctionKind::Kernel);
  K->setJitAnnotation(JitAnnotation{{3}});
  BasicBlock *Entry = K->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *Then = K->createBlock("then", Ctx.getVoidTy());
  BasicBlock *Exit = K->createBlock("exit", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  Value *Gtid = B.createGlobalThreadIdX();
  B.createCondBr(B.createICmp(ICmpPred::SLT, Gtid, K->getArg(2)), Then, Exit);
  B.setInsertPoint(Then);
  Value *Idx = B.createAnd(Gtid, B.getInt32(7), "widx");
  Value *W =
      B.createLoad(F64, B.createGep(F64, M.getGlobal("weights"), Idx), "w");
  Value *Xv =
      B.createLoad(F64, B.createGep(F64, K->getArg(0), Gtid), "xv");
  B.createStore(B.createFMul(W, Xv), B.createGep(F64, K->getArg(1), Gtid));
  B.createBr(Exit);
  B.setInsertPoint(Exit);
  B.createRet();
  expectValid(M);

  AotOptions AO;
  AO.Arch = GpuArch::AmdGcnSim;
  AO.EnableProteusExtensions = true;
  CompiledProgram Prog = aotCompile(M, AO);

  DeviceManager Mgr(poolConfig({GpuArch::AmdGcnSim, GpuArch::NvPtxSim}));
  JitConfig JC;
  JC.UsePersistentCache = false;
  JitRuntime Jit(Mgr.device(0), Prog.ModuleId, JC);
  Jit.attachDevice(Mgr.device(1));

  // Buffers first on both devices (identical addresses), program image —
  // and with it the weights global — only on the source device.
  std::vector<double> HX(N);
  for (uint32_t I = 0; I != N; ++I)
    HX[I] = 0.25 * I - 3.0;
  DevicePtr X[2] = {0, 0}, Y[2] = {0, 0};
  for (unsigned D = 0; D != 2; ++D) {
    ASSERT_EQ(gpuMalloc(Mgr.device(D), &X[D], N * 8), GpuError::Success);
    ASSERT_EQ(gpuMalloc(Mgr.device(D), &Y[D], N * 8), GpuError::Success);
    gpuMemcpyHtoD(Mgr.device(D), X[D], HX.data(), N * 8);
  }
  ASSERT_EQ(X[0], X[1]);
  ASSERT_EQ(Y[0], Y[1]);
  LoadedProgram LP(Mgr.device(0), Prog, &Jit);
  ASSERT_TRUE(LP.ok()) << LP.error();

  DevicePtr WeightsAddr = 0;
  for (const auto &[Sym, Addr] : Mgr.device(0).symbolBindings())
    if (Sym == "weights")
      WeightsAddr = Addr;
  ASSERT_NE(WeightsAddr, 0u) << "program load must bind the global";
  std::vector<double> HW(8);
  for (uint32_t I = 0; I != 8; ++I)
    HW[I] = 1.5 + 0.5 * I;
  gpuMemcpyHtoD(Mgr.device(0), WeightsAddr, HW.data(), 8 * 8);

  std::vector<KernelArg> Args = {{X[0]}, {Y[0]}, {N}};
  std::string Err;
  ASSERT_EQ(Jit.launchKernelOn(0, "gscale", Dim3{2, 1, 1}, Dim3{32, 1, 1},
                               Args, nullptr, &Err),
            GpuError::Success)
      << Err;

  metrics::Registry SReg;
  Migrator Mig(Jit, SReg);
  MigrationResult R = Mig.migrate(0, 1, "gscale", Dim3{32, 1, 1}, Args);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GE(R.SymbolsRebound, 1u) << "weights must be re-bound on the target";

  // The target launch reads the *migrated* weights through the symbolic
  // relocation resolved at load time on the target device.
  ASSERT_EQ(Jit.launchKernelOn(1, "gscale", Dim3{2, 1, 1}, Dim3{32, 1, 1},
                               Args, nullptr, &Err),
            GpuError::Success)
      << Err;
  Jit.drain();
  std::vector<double> Got(N);
  gpuMemcpyDtoH(Mgr.device(1), Got.data(), Y[0], N * 8);
  for (uint32_t I = 0; I != N; ++I)
    EXPECT_EQ(Got[I], HW[I & 7] * HX[I]) << "element " << I;
}

TEST(MigrationTest, LateAttachedTargetForcesLinkageModeRecompile) {
  const std::vector<uint8_t> Expected = baselineBytes(4);

  // Single-device start: objects bake resolved global addresses into the
  // IR (symbolicGlobals off) and carry that linkage-mode fingerprint.
  Context Ctx;
  Module M(Ctx, "late_app");
  buildDaxpyKernel(M);
  AotOptions AO;
  AO.Arch = GpuArch::AmdGcnSim;
  AO.EnableProteusExtensions = true;
  CompiledProgram Prog = aotCompile(M, AO);

  Device A(getTarget(GpuArch::AmdGcnSim), 1ull << 22);
  Device Late(getTarget(GpuArch::AmdGcnSim), 1ull << 22);
  Late.setOrdinal(1);
  JitConfig JC;
  JC.UsePersistentCache = false;
  JitRuntime Jit(A, Prog.ModuleId, JC);
  LoadedProgram LP(A, Prog, &Jit);
  ASSERT_TRUE(LP.ok()) << LP.error();

  DevicePtr X = 0, Y = 0;
  std::vector<double> HX(N), HY(N);
  for (uint32_t I = 0; I != N; ++I) {
    HX[I] = 0.5 * I - 7.0;
    HY[I] = 1.0;
  }
  ASSERT_EQ(gpuMalloc(A, &X, N * 8), GpuError::Success);
  ASSERT_EQ(gpuMalloc(A, &Y, N * 8), GpuError::Success);
  gpuMemcpyHtoD(A, X, HX.data(), N * 8);
  gpuMemcpyHtoD(A, Y, HY.data(), N * 8);

  std::vector<KernelArg> Args = {{sem::boxF64(2.0)}, {X}, {Y}, {N}};
  std::string Err;
  ASSERT_EQ(Jit.launchKernel("daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1}, Args,
                             &Err),
            GpuError::Success)
      << Err;
  ASSERT_EQ(Jit.launchKernel("daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1}, Args,
                             &Err),
            GpuError::Success)
      << Err;
  EXPECT_EQ(Jit.stats().Compilations, 1u);

  // Attaching the second device flips the pool into symbolic-globals mode:
  // the cached single-device object's fingerprint no longer matches, so
  // the migration's reuse check must reject it and recompile cleanly —
  // even though arch and specialization hash are identical.
  ASSERT_EQ(Jit.attachDevice(Late), 1u);
  metrics::Registry SReg;
  Migrator Mig(Jit, SReg);
  MigrationResult R = Mig.migrate(0, 1, "daxpy", Dim3{32, 1, 1}, Args);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_FALSE(R.RetargetReusedCache)
      << "stale linkage-mode object must not be served";
  EXPECT_EQ(Jit.stats().RetargetCompiles, 1u);
  EXPECT_EQ(Jit.stats().RetargetCacheReuse, 0u);

  ASSERT_EQ(Jit.launchKernelOn(1, "daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1},
                               Args, nullptr, &Err),
            GpuError::Success)
      << Err;
  ASSERT_EQ(Jit.launchKernelOn(1, "daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1},
                               Args, nullptr, &Err),
            GpuError::Success)
      << Err;
  Jit.drain();
  std::vector<uint8_t> Got(N * 8);
  gpuMemcpyDtoH(Late, Got.data(), Y, N * 8);
  EXPECT_EQ(Got, Expected);
}

TEST(MigrationTest, RejectsInvalidEndpoints) {
  DaxpyPool P(poolConfig({GpuArch::AmdGcnSim, GpuArch::NvPtxSim}));
  metrics::Registry SReg;
  Migrator Mig(*P.Jit, SReg);

  MigrationResult Same = Mig.migrate(0, 0, "daxpy", Dim3{32, 1, 1},
                                     P.args(0, 2.0));
  EXPECT_FALSE(Same.Ok);
  EXPECT_NE(Same.Error.find("same device"), std::string::npos) << Same.Error;

  MigrationResult Range = Mig.migrate(0, 7, "daxpy", Dim3{32, 1, 1},
                                      P.args(0, 2.0));
  EXPECT_FALSE(Range.Ok);
  EXPECT_NE(Range.Error.find("out of range"), std::string::npos)
      << Range.Error;
  EXPECT_EQ(counterValue(SReg, "sched.migrations"), 0u);
}

// ---------------------------------------------------------------------------
// Placement scheduler.
// ---------------------------------------------------------------------------

TEST(SchedulerTest, OffModePinsDeviceZeroByteIdentically) {
  const std::vector<uint8_t> Expected = baselineBytes(4);

  DaxpyPool P(poolConfig({GpuArch::AmdGcnSim, GpuArch::NvPtxSim}));
  SchedConfig SC; // Off
  Scheduler Sched(*P.Jit, SC);
  for (unsigned I = 0; I != 4; ++I) {
    std::string Err;
    unsigned PlacedOn = 99;
    ASSERT_EQ(Sched.launch(
                  "daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1},
                  [&](unsigned D) { return P.args(D, 2.0); }, &Err, &PlacedOn),
              GpuError::Success)
        << Err;
    EXPECT_EQ(PlacedOn, 0u);
  }
  P.Jit->drain();
  EXPECT_EQ(P.readY(0), Expected);
  EXPECT_EQ(counterValue(Sched.registry(), "sched.placements.dev0"), 4u);
  EXPECT_EQ(counterValue(Sched.registry(), "sched.placements.dev1"), 0u);

  // Off placements target the default stream — launchKernel equivalence.
  Placement Pl = Sched.place("daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1});
  EXPECT_EQ(Pl.DeviceIndex, 0u);
  EXPECT_EQ(Pl.S, nullptr);
}

TEST(SchedulerTest, StaticModeRoundRobinsAcrossThePool) {
  DaxpyPool P(poolConfig({GpuArch::AmdGcnSim, GpuArch::NvPtxSim,
                          GpuArch::AmdGcnSim, GpuArch::NvPtxSim}));
  SchedConfig SC;
  SC.Mode = SchedMode::Static;
  Scheduler Sched(*P.Jit, SC);
  for (unsigned I = 0; I != 8; ++I) {
    Placement Pl = Sched.place("daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1});
    EXPECT_EQ(Pl.DeviceIndex, I % 4);
    EXPECT_NE(Pl.S, nullptr);
  }
  for (unsigned D = 0; D != 4; ++D)
    EXPECT_EQ(counterValue(Sched.registry(),
                           "sched.placements.dev" + std::to_string(D)),
              2u);
}

TEST(SchedulerTest, LoadModeRoutesAroundBusyDevices) {
  DaxpyPool P(poolConfig({GpuArch::AmdGcnSim, GpuArch::NvPtxSim}));
  SchedConfig SC;
  SC.Mode = SchedMode::Load;
  Scheduler Sched(*P.Jit, SC);

  // Preload half a second of background work on device 0: its published
  // load gauge rises, so load mode must route to the idle device 1.
  P.Mgr.device(0).defaultStream().enqueue(0.5, "background");
  EXPECT_GT(P.Mgr.device(0).loadGaugeNs(), 0u);
  Placement Pl = Sched.place("daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1});
  EXPECT_EQ(Pl.DeviceIndex, 1u);

  // Now bury device 1 deeper — the choice flips back.
  P.Mgr.device(1).defaultStream().enqueue(2.0, "background");
  Pl = Sched.place("daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1});
  EXPECT_EQ(Pl.DeviceIndex, 0u);
}

TEST(SchedulerTest, PerfModeRanksByRooflinePrediction) {
  DaxpyPool P(poolConfig({GpuArch::AmdGcnSim, GpuArch::NvPtxSim}));
  SchedConfig SC;
  SC.Mode = SchedMode::Perf;
  Scheduler Sched(*P.Jit, SC);

  EXPECT_LT(Sched.predictedSeconds("daxpy", 0, Dim3{2, 1, 1}, Dim3{32, 1, 1}),
            0.0)
      << "no profile noted yet";
  Sched.noteKernelProfile("daxpy", pir::analysis::computeStaticProfile(*P.F));

  double T0 = Sched.predictedSeconds("daxpy", 0, Dim3{2, 1, 1},
                                     Dim3{32, 1, 1});
  double T1 = Sched.predictedSeconds("daxpy", 1, Dim3{2, 1, 1},
                                     Dim3{32, 1, 1});
  ASSERT_GT(T0, 0.0);
  ASSERT_GT(T1, 0.0);
  ASSERT_NE(T0, T1) << "the two arches must rank differently";

  // Perf mode scores each candidate as ready time (the load gauge) plus the
  // predicted kernel seconds on that device's arch — setup work (copies,
  // program load) leaves the gauges non-zero, so fold them in exactly.
  double S0 = P.Mgr.device(0).loadGaugeNs() * 1e-9 + T0;
  double S1 = P.Mgr.device(1).loadGaugeNs() * 1e-9 + T1;
  ASSERT_NE(S0, S1);
  const unsigned Fastest = S0 < S1 ? 0u : 1u;
  Placement Pl = Sched.place("daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1});
  EXPECT_EQ(Pl.DeviceIndex, Fastest);

  // Burying the winner under background work must flip the decision: the
  // model alone no longer wins against a second of queued load.
  P.Mgr.device(Fastest).defaultStream().enqueue(1.0, "background");
  Pl = Sched.place("daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1});
  EXPECT_EQ(Pl.DeviceIndex, 1u - Fastest);
}

TEST(SchedulerTest, SlackKernelsPlaceByReadyTimeAlone) {
  DaxpyPool P(poolConfig({GpuArch::AmdGcnSim, GpuArch::NvPtxSim}));
  SchedConfig SC;
  SC.Mode = SchedMode::Perf;
  Scheduler Sched(*P.Jit, SC);
  Sched.noteKernelProfile("daxpy", pir::analysis::computeStaticProfile(*P.F));

  // An installed timeline report marking daxpy pure slack: placement
  // ignores the model, takes the idle device, and counts the bias.
  proteus::analysis::CriticalPathReport Rep;
  Rep.ByName.push_back(proteus::analysis::NameCriticality{"daxpy", 1000, 0, 0.0});
  Sched.setCriticalPathReport(Rep);

  P.Mgr.device(0).defaultStream().enqueue(0.5, "background");
  Placement Pl = Sched.place("daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1});
  EXPECT_EQ(Pl.DeviceIndex, 1u);
  EXPECT_EQ(counterValue(Sched.registry(), "sched.placements.slack"), 1u);

  // A critical kernel gets the full perf scoring, not the slack bias.
  Rep.ByName[0].CriticalNs = 1000;
  Rep.ByName[0].CriticalityFraction = 1.0;
  Sched.setCriticalPathReport(Rep);
  Sched.place("daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1});
  EXPECT_EQ(counterValue(Sched.registry(), "sched.placements.slack"), 1u);
}

// ---------------------------------------------------------------------------
// Replay arch override + publish warm-start.
// ---------------------------------------------------------------------------

/// Captures one daxpy launch into a replayable artifact on \p Arch.
std::optional<capture::CaptureArtifact> captureDaxpy(GpuArch Arch,
                                                     std::string *Fail) {
  Context Ctx;
  Module M(Ctx, "sched_capture_app");
  buildDaxpyKernel(M);
  AotOptions AO;
  AO.Arch = Arch;
  AO.EnableProteusExtensions = true;
  CompiledProgram Prog = aotCompile(M, AO);

  std::string Dir = fs::makeTempDirectory("proteus-sched-capture");
  JitConfig JC;
  JC.UsePersistentCache = false;
  JC.Capture = true;
  JC.CaptureDir = Dir;

  std::optional<capture::CaptureArtifact> Artifact;
  {
    Device Dev(getTarget(Arch), 1ull << 22);
    JitRuntime Jit(Dev, Prog.ModuleId, JC);
    LoadedProgram LP(Dev, Prog, &Jit);
    if (!LP.ok()) {
      *Fail = "load: " + LP.error();
      fs::removeAllFiles(Dir);
      return std::nullopt;
    }
    DevicePtr X = 0, Y = 0;
    gpuMalloc(Dev, &X, N * 8);
    gpuMalloc(Dev, &Y, N * 8);
    std::vector<double> HX(N), HY(N);
    for (uint32_t I = 0; I != N; ++I) {
      HX[I] = 0.5 * I - 7.0;
      HY[I] = 1.0;
    }
    gpuMemcpyHtoD(Dev, X, HX.data(), N * 8);
    gpuMemcpyHtoD(Dev, Y, HY.data(), N * 8);
    std::vector<KernelArg> Args = {{sem::boxF64(2.0)}, {X}, {Y}, {N}};
    std::string Err;
    if (LP.launch("daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1}, Args, &Err) !=
        GpuError::Success) {
      *Fail = "launch: " + Err;
      fs::removeAllFiles(Dir);
      return std::nullopt;
    }
    Jit.drain();
  }
  std::vector<std::string> Files = fs::listFiles(Dir);
  if (Files.size() != 1) {
    *Fail = "expected one artifact, found " + std::to_string(Files.size());
    fs::removeAllFiles(Dir);
    return std::nullopt;
  }
  std::string Error;
  Artifact = capture::readArtifactFile(Dir + "/" + Files[0], &Error);
  fs::removeAllFiles(Dir);
  if (!Artifact)
    *Fail = "read: " + Error;
  return Artifact;
}

TEST(ReplayRetargetTest, ArchOverrideReplaysByteIdentical) {
  std::string Fail;
  std::optional<capture::CaptureArtifact> A =
      captureDaxpy(GpuArch::AmdGcnSim, &Fail);
  ASSERT_TRUE(A) << Fail;

  ReplayOptions Opts;
  Opts.Jit.UsePersistentCache = false;
  Opts.ArchOverride = GpuArch::NvPtxSim;
  ReplayResult R = replayArtifact(*A, Opts);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.OutputMatch)
      << R.MismatchedRegions << " region(s) diverge: " << R.FirstMismatch;
  // The hash keys the overridden arch — it must differ from the recording.
  EXPECT_FALSE(R.HashMatch);
  EXPECT_GT(R.CompilationsUsed, 0u);

  // Overriding to the *recorded* arch is a plain full-strength replay.
  Opts.ArchOverride = GpuArch::AmdGcnSim;
  ReplayResult Same = replayArtifact(*A, Opts);
  EXPECT_TRUE(Same.passed()) << Same.Error << Same.FirstMismatch;
}

TEST(ReplayRetargetTest, PublishWarmsEveryArchForAFreshRuntime) {
  std::string Fail;
  std::optional<capture::CaptureArtifact> A =
      captureDaxpy(GpuArch::AmdGcnSim, &Fail);
  ASSERT_TRUE(A) << Fail;

  std::string CacheDir = fs::makeTempDirectory("proteus-sched-publish");
  ReplayOptions Opts;
  Opts.CacheDir = CacheDir;

  // Publish pass: compile the specialization into the shared cache for
  // both arches (what proteus-replay --publish --device-arch=... runs).
  for (GpuArch Arch : {GpuArch::AmdGcnSim, GpuArch::NvPtxSim}) {
    Opts.ArchOverride = Arch;
    ReplayResult Cold = replayArtifact(*A, Opts);
    EXPECT_TRUE(Cold.Ok && Cold.OutputMatch)
        << gpuArchName(Arch) << ": " << Cold.Error << Cold.FirstMismatch;
    EXPECT_GT(Cold.CompilationsUsed, 0u);
  }

  // A fresh runtime against the published cache starts warm on every arch:
  // zero cold compiles anywhere in the pool.
  for (GpuArch Arch : {GpuArch::AmdGcnSim, GpuArch::NvPtxSim}) {
    Opts.ArchOverride = Arch;
    ReplayResult Warm = replayArtifact(*A, Opts);
    EXPECT_TRUE(Warm.Ok && Warm.OutputMatch)
        << gpuArchName(Arch) << ": " << Warm.Error << Warm.FirstMismatch;
    EXPECT_EQ(Warm.CompilationsUsed, 0u)
        << gpuArchName(Arch) << " must be served from the published cache";
  }
  fs::removeAllFiles(CacheDir);
}

// ---------------------------------------------------------------------------
// Migration storm (the TSan lane).
// ---------------------------------------------------------------------------

TEST(MigrationStormTest, ConcurrentLaunchesAndMigrationsAreRaceFree) {
  DeviceManager::Config C = DeviceManager::configFromEnvironment();
  C.MemoryBytesPerDevice = 1ull << 22;
  if (C.NumDevices < 2) {
    C.NumDevices = 2;
    if (C.Archs.empty())
      C.Archs = {GpuArch::AmdGcnSim, GpuArch::NvPtxSim};
  }

  JitConfig JC = JitConfig::fromEnvironment();
  JC.UsePersistentCache = false;
  JC.Capture = false;
  DaxpyPool P(C, JC);

  SchedConfig SC;
  SC.Mode = SchedMode::Load;
  Scheduler Sched(*P.Jit, SC);
  metrics::Registry MReg;
  Migrator Mig(*P.Jit, MReg);

  constexpr unsigned Launchers = 2;
  constexpr unsigned LaunchesPerThread = 24;
  constexpr unsigned Migrations = 6;
  std::vector<std::string> LaunchErrors(Launchers);
  std::vector<std::string> MigrateErrors;
  std::atomic<uint64_t> Launched{0};

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != Launchers; ++T)
    Threads.emplace_back([&, T] {
      for (unsigned I = 0; I != LaunchesPerThread; ++I) {
        std::string Err;
        if (Sched.launch(
                "daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1},
                [&](unsigned D) { return P.args(D, 2.0); },
                &Err) != GpuError::Success) {
          LaunchErrors[T] = Err.empty() ? "unknown launch error" : Err;
          return;
        }
        Launched.fetch_add(1, std::memory_order_relaxed);
      }
    });
  Threads.emplace_back([&] {
    for (unsigned I = 0; I != Migrations; ++I) {
      unsigned Src = I % 2, Dst = (I + 1) % 2;
      MigrationResult R = Mig.migrate(Src, Dst, "daxpy", Dim3{32, 1, 1},
                                      P.args(Src, 2.0));
      if (!R.Ok)
        MigrateErrors.push_back(R.Error);
    }
  });
  for (std::thread &T : Threads)
    T.join();
  P.Jit->drain();

  for (unsigned T = 0; T != Launchers; ++T)
    EXPECT_TRUE(LaunchErrors[T].empty()) << "launcher " << T << ": "
                                         << LaunchErrors[T];
  for (const std::string &E : MigrateErrors)
    ADD_FAILURE() << "migration failed: " << E;
  EXPECT_EQ(Launched.load(), uint64_t(Launchers) * LaunchesPerThread);
  EXPECT_EQ(counterValue(MReg, "sched.migrations"), Migrations);
  // Retargets never re-parse: one front-end parse however the storm raced.
  EXPECT_EQ(P.Jit->stats().BitcodeParses, 1u);
}

} // namespace
