//===- jitify_extra_test.cpp - Jitify-sim edge cases ----------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/Context.h"
#include "ir/IRPrinter.h"
#include "ir/IRParser.h"
#include "jitify/Jitify.h"

#include <gtest/gtest.h>

using namespace pir;
using namespace proteus;
using namespace proteus::gpu;
using namespace proteus_test;

namespace {

TEST(JitifyExtraTest, UnknownProgramFails) {
  Device Dev(getNvPtxSimTarget(), 1 << 20);
  JitifyRuntime J(Dev);
  std::string Err;
  EXPECT_EQ(J.launch("nope", Dim3{1, 1, 1}, Dim3{1, 1, 1}, {}, &Err),
            GpuError::NotFound);
  EXPECT_NE(Err.find("nope"), std::string::npos);
}

TEST(JitifyExtraTest, MalformedSourceFailsAtLaunch) {
  Device Dev(getNvPtxSimTarget(), 1 << 20);
  JitifyRuntime J(Dev);
  J.addProgram("bad", "this is not pir source", {});
  std::string Err;
  EXPECT_EQ(J.launch("bad", Dim3{1, 1, 1}, Dim3{1, 1, 1}, {}, &Err),
            GpuError::InvalidValue);
  EXPECT_NE(Err.find("parse"), std::string::npos);
}

TEST(JitifyExtraTest, DistinctTemplateValuesCompileSeparately) {
  Device Dev(getNvPtxSimTarget(), 1 << 22);
  JitifyRuntime J(Dev);
  Context Ctx;
  Module M(Ctx, "m");
  buildDaxpyKernel(M);
  J.addProgram("daxpy", printModule(M), {1, 4});

  DevicePtr X = 0, Y = 0;
  gpuMalloc(Dev, &X, 64 * 8);
  gpuMalloc(Dev, &Y, 64 * 8);
  std::string Err;
  auto Launch = [&](double A) {
    std::vector<KernelArg> Args = {{sem::boxF64(A)}, {X}, {Y}, {64}};
    ASSERT_EQ(J.launch("daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1}, Args, &Err),
              GpuError::Success)
        << Err;
  };
  Launch(1.0);
  Launch(2.0);
  Launch(1.0); // instantiation already cached
  EXPECT_EQ(J.stats().Compilations, 2u);
  EXPECT_EQ(J.stats().CacheHits, 1u);
}

TEST(JitifyExtraTest, HeaderTextIsLargeAndParses) {
  const std::string &H = JitifyRuntime::headerText();
  EXPECT_GT(H.size(), 50'000u) << "the header-only library must be big "
                                  "enough to cost real parse time";
  Context Ctx;
  ParseResult R = parseModule(Ctx, H);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_GT(R.M->functions().size(), 100u);
}

} // namespace
