//===- ir_core_test.cpp - IR value/use/builder/verifier tests ----------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/Context.h"
#include "ir/IRPrinter.h"

#include <gtest/gtest.h>

using namespace pir;
using namespace proteus_test;

namespace {

TEST(TypeTest, Singletons) {
  Context Ctx;
  EXPECT_EQ(Ctx.getI32Ty(), Ctx.getI32Ty());
  EXPECT_NE(Ctx.getI32Ty(), Ctx.getI64Ty());
  EXPECT_EQ(Ctx.getI32Ty()->sizeInBytes(), 4u);
  EXPECT_EQ(Ctx.getF64Ty()->sizeInBytes(), 8u);
  EXPECT_EQ(Ctx.getPtrTy()->sizeInBytes(), 8u);
  EXPECT_TRUE(Ctx.getI1Ty()->isInteger());
  EXPECT_FALSE(Ctx.getF32Ty()->isInteger());
  EXPECT_EQ(Ctx.getI64Ty()->integerBitWidth(), 64u);
}

TEST(TypeTest, Names) {
  Context Ctx;
  EXPECT_EQ(Ctx.getVoidTy()->getName(), "void");
  EXPECT_EQ(Ctx.getI1Ty()->getName(), "i1");
  EXPECT_EQ(Ctx.getF32Ty()->getName(), "f32");
  EXPECT_EQ(Ctx.getPtrTy()->getName(), "ptr");
}

TEST(ConstantTest, IntegerUniquingAndSignedness) {
  Context Ctx;
  EXPECT_EQ(Ctx.getInt32(7), Ctx.getInt32(7));
  EXPECT_NE(Ctx.getInt32(7), Ctx.getInt64(7));
  ConstantInt *Neg = Ctx.getConstantInt(Ctx.getI32Ty(),
                                        static_cast<uint64_t>(-5));
  EXPECT_EQ(Neg->getSExtValue(), -5);
  EXPECT_EQ(Neg->getZExtValue(), 0xFFFFFFFBull);
  ConstantInt *True = Ctx.getTrue();
  EXPECT_EQ(True->getZExtValue(), 1u);
  EXPECT_EQ(True->getSExtValue(), -1); // i1 sign extension
}

TEST(ConstantTest, FPUniquingKeepsNegativeZeroDistinct) {
  Context Ctx;
  EXPECT_EQ(Ctx.getDouble(1.5), Ctx.getDouble(1.5));
  EXPECT_NE(Ctx.getDouble(0.0), Ctx.getDouble(-0.0));
  // f32 constants round to f32 precision.
  ConstantFP *F = Ctx.getFloat(0.1f);
  EXPECT_EQ(F->getValue(), static_cast<double>(0.1f));
}

TEST(ConstantTest, PointerUniquing) {
  Context Ctx;
  EXPECT_EQ(Ctx.getConstantPtr(64), Ctx.getConstantPtr(64));
  EXPECT_TRUE(Ctx.getNullPtr()->isNull());
}

TEST(UseListTest, RAUWRewritesAllUses) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = M.createFunction("k", Ctx.getVoidTy(),
                                 {Ctx.getI32Ty(), Ctx.getI32Ty()},
                                 {"a", "b"}, FunctionKind::Kernel);
  BasicBlock *BB = F->createBlock("entry", Ctx.getVoidTy());
  IRBuilder B(Ctx);
  B.setInsertPoint(BB);
  Value *S1 = B.createAdd(F->getArg(0), F->getArg(0));
  Value *S2 = B.createMul(S1, F->getArg(0));
  B.createRet();

  EXPECT_EQ(F->getArg(0)->getNumUses(), 3u);
  F->getArg(0)->replaceAllUsesWith(F->getArg(1));
  EXPECT_EQ(F->getArg(0)->getNumUses(), 0u);
  EXPECT_EQ(F->getArg(1)->getNumUses(), 3u);
  EXPECT_EQ(cast<Instruction>(S2)->getOperand(1), F->getArg(1));
  EXPECT_EQ(cast<Instruction>(S1)->getOperand(0), F->getArg(1));
}

TEST(UseListTest, SetOperandMaintainsBackPointers) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = M.createFunction("k", Ctx.getVoidTy(), {Ctx.getI32Ty()},
                                 {"a"}, FunctionKind::Kernel);
  BasicBlock *BB = F->createBlock("entry", Ctx.getVoidTy());
  IRBuilder B(Ctx);
  B.setInsertPoint(BB);
  // Build many users, then remove uses in arbitrary order to stress the
  // swap-with-last bookkeeping.
  std::vector<Instruction *> Adds;
  for (int I = 0; I < 16; ++I)
    Adds.push_back(
        cast<Instruction>(B.createAdd(F->getArg(0), B.getInt32(I))));
  EXPECT_EQ(F->getArg(0)->getNumUses(), 16u);
  for (int I = 15; I >= 0; I -= 2)
    Adds[I]->setOperand(0, B.getInt32(99));
  EXPECT_EQ(F->getArg(0)->getNumUses(), 8u);
  for (const Use &U : F->getArg(0)->uses())
    EXPECT_EQ(U.TheUser->getOperand(U.OperandIndex), F->getArg(0));
  B.createRet();
}

TEST(InstructionTest, EraseFromParentAndMoveBefore) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = M.createFunction("k", Ctx.getVoidTy(), {}, {},
                                 FunctionKind::Kernel);
  BasicBlock *BB = F->createBlock("entry", Ctx.getVoidTy());
  IRBuilder B(Ctx);
  B.setInsertPoint(BB);
  Value *A = B.createThreadIdx(0);
  Value *C = B.createAdd(A, B.getInt32(1));
  B.createRet();
  EXPECT_EQ(BB->size(), 3u);
  Instruction *AddInst = cast<Instruction>(C);
  // Move the add before the thread-idx read (operand order preserved in the
  // list semantics is the caller's concern; here we just check linkage).
  AddInst->moveBefore(cast<Instruction>(A));
  EXPECT_EQ(&BB->front(), AddInst);
  // Erase: first drop the use.
  AddInst->eraseFromParent();
  EXPECT_EQ(BB->size(), 2u);
  EXPECT_EQ(A->getNumUses(), 0u);
}

TEST(InstructionTest, ClassificationPredicates) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = M.createFunction("k", Ctx.getVoidTy(), {Ctx.getPtrTy()},
                                 {"p"}, FunctionKind::Kernel);
  BasicBlock *BB = F->createBlock("entry", Ctx.getVoidTy());
  IRBuilder B(Ctx);
  B.setInsertPoint(BB);
  Value *L = B.createLoad(Ctx.getF64Ty(), F->getArg(0));
  B.createStore(L, F->getArg(0));
  B.createRet();

  auto It = BB->begin();
  Instruction &Load = *It;
  ++It;
  Instruction &Store = *It;
  ++It;
  Instruction &Ret = *It;
  EXPECT_FALSE(Load.mayHaveSideEffects());
  EXPECT_FALSE(Load.isSpeculatable()); // may fault
  EXPECT_TRUE(Store.mayHaveSideEffects());
  EXPECT_TRUE(Ret.isTerminator());
  EXPECT_FALSE(Load.isTerminator());
}

TEST(CFGTest, SuccessorsAndPredecessors) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildDaxpyKernel(M);
  auto Blocks = F->blockList();
  ASSERT_EQ(Blocks.size(), 3u);
  BasicBlock *Entry = Blocks[0];
  BasicBlock *Then = Blocks[1];
  BasicBlock *Exit = Blocks[2];
  EXPECT_EQ(Entry->successors(),
            (std::vector<BasicBlock *>{Then, Exit}));
  EXPECT_EQ(Then->successors(), (std::vector<BasicBlock *>{Exit}));
  EXPECT_TRUE(Exit->successors().empty());
  auto ExitPreds = Exit->predecessors();
  EXPECT_EQ(ExitPreds.size(), 2u);
  EXPECT_TRUE(Entry->predecessors().empty());
}

TEST(VerifierTest, AcceptsWellFormedKernels) {
  Context Ctx;
  Module M(Ctx, "m");
  buildDaxpyKernel(M);
  buildLoopSumKernel(M);
  expectValid(M);
}

TEST(VerifierTest, RejectsMissingTerminator) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = M.createFunction("k", Ctx.getVoidTy(), {}, {},
                                 FunctionKind::Kernel);
  F->createBlock("entry", Ctx.getVoidTy());
  IRBuilder B(Ctx);
  B.setInsertPoint(&F->getEntryBlock());
  B.createThreadIdx(0);
  VerifyResult R = verifyFunction(*F);
  EXPECT_FALSE(R.ok());
}

TEST(VerifierTest, RejectsDominanceViolation) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = M.createFunction("k", Ctx.getVoidTy(), {Ctx.getI1Ty()},
                                 {"c"}, FunctionKind::Kernel);
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *A = F->createBlock("a", Ctx.getVoidTy());
  BasicBlock *Bb = F->createBlock("b", Ctx.getVoidTy());
  IRBuilder B(Ctx);
  B.setInsertPoint(Entry);
  B.createCondBr(F->getArg(0), A, Bb);
  B.setInsertPoint(A);
  Value *X = B.createAdd(B.getInt32(1), B.getInt32(2));
  B.createRet();
  B.setInsertPoint(Bb);
  // Uses X, which does not dominate this block.
  B.createAdd(X, B.getInt32(3));
  B.createRet();
  VerifyResult R = verifyFunction(*F);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.message().find("dominate"), std::string::npos);
}

TEST(VerifierTest, RejectsBadAnnotationIndex) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildDaxpyKernel(M);
  F->setJitAnnotation(JitAnnotation{{0}}); // 1-based: 0 is invalid
  VerifyResult R = verifyModule(M);
  EXPECT_FALSE(R.ok());
  F->setJitAnnotation(JitAnnotation{{5}}); // only 4 args
  R = verifyModule(M);
  EXPECT_FALSE(R.ok());
}

TEST(VerifierTest, RejectsPhiPredMismatch) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = M.createFunction("k", Ctx.getVoidTy(), {}, {},
                                 FunctionKind::Kernel);
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *Next = F->createBlock("next", Ctx.getVoidTy());
  IRBuilder B(Ctx);
  B.setInsertPoint(Entry);
  B.createBr(Next);
  B.setInsertPoint(Next);
  PhiInst *Phi = B.createPhi(Ctx.getI32Ty());
  Phi->addIncoming(B.getInt32(1), Entry);
  Phi->addIncoming(B.getInt32(2), Next); // Next is not a predecessor
  B.createRet();
  VerifyResult R = verifyFunction(*F);
  EXPECT_FALSE(R.ok());
}

TEST(CloneTest, ModuleCloneIsDeepAndEquivalent) {
  Context Ctx;
  Module M(Ctx, "m");
  buildDaxpyKernel(M);
  buildLoopSumKernel(M);
  auto Clone = cloneModule(M, Ctx, "m.clone");
  expectValid(*Clone);
  // Structural equality through the printer (module name differs).
  std::string A = printModule(M);
  std::string B = printModule(*Clone);
  A = A.substr(A.find('\n'));
  B = B.substr(B.find('\n'));
  EXPECT_EQ(A, B);
  // Mutating the clone leaves the original untouched.
  Function *CF = Clone->getFunction("daxpy");
  CF->getArg(0)->replaceAllUsesWith(Ctx.getDouble(2.0));
  EXPECT_NE(printFunction(*M.getFunction("daxpy")), printFunction(*CF));
}

TEST(ModuleTest, ModuleIdChangesWithContent) {
  Context Ctx;
  Module M1(Ctx, "m");
  buildDaxpyKernel(M1);
  uint64_t Id1 = M1.computeModuleId();

  Module M2(Ctx, "m");
  Function *F2 = buildDaxpyKernel(M2);
  EXPECT_EQ(Id1, M2.computeModuleId()) << "identical source, identical id";

  // A "source change" (different constant) must change the module id — this
  // is the property that keeps stale persistent-cache entries from being
  // reused (paper section 3.3).
  IRBuilder B(Ctx);
  B.setInsertPoint(&F2->getEntryBlock().front());
  B.createAdd(B.getInt32(41), B.getInt32(1));
  EXPECT_NE(Id1, M2.computeModuleId());
}

TEST(ModuleTest, GlobalsAndLookup) {
  Context Ctx;
  Module M(Ctx, "m");
  GlobalVariable *G =
      M.createGlobal("table", Ctx.getF64Ty(), 16, std::vector<uint8_t>());
  EXPECT_EQ(M.getGlobal("table"), G);
  EXPECT_EQ(G->sizeInBytes(), 128u);
  EXPECT_EQ(M.getGlobal("nope"), nullptr);
  EXPECT_EQ(M.kernels().size(), 0u);
  buildDaxpyKernel(M);
  EXPECT_EQ(M.kernels().size(), 1u);
}

} // namespace
