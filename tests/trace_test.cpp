//===- trace_test.cpp - tracing + JSON export tests -------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Tests for the observability support layer: the JsonLite parser, the
// trace ring buffer and span nesting (including across threads), the
// chrome://tracing JSON exporter, and the shared trace-file validator.
//
//===----------------------------------------------------------------------===//

#include "support/FileSystem.h"
#include "support/JsonLite.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

using namespace proteus;

namespace {

struct TempDir {
  std::string Path;
  TempDir() : Path(fs::makeTempDirectory("proteus-trace-test")) {}
  ~TempDir() { fs::removeAllFiles(Path); }
  std::string file(const std::string &Name) const { return Path + "/" + Name; }
};

void writeText(const std::string &Path, const std::string &Text) {
  ASSERT_TRUE(fs::writeFileAtomic(
      Path, std::vector<uint8_t>(Text.begin(), Text.end())));
}

// --- JsonLite ----------------------------------------------------------------

TEST(JsonLiteTest, ParsesScalarsArraysObjects) {
  json::ParseResult R = json::parse(
      R"({"a": 1.5, "b": [true, false, null], "s": "x\n\"yA"})");
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_TRUE(R.V.isObject());
  const json::Value *A = R.V.find("a");
  ASSERT_TRUE(A && A->isNumber());
  EXPECT_DOUBLE_EQ(A->Num, 1.5);
  const json::Value *B = R.V.find("b");
  ASSERT_TRUE(B && B->isArray());
  ASSERT_EQ(B->Arr.size(), 3u);
  EXPECT_TRUE(B->Arr[0].isBool() && B->Arr[0].B);
  EXPECT_TRUE(B->Arr[1].isBool() && !B->Arr[1].B);
  EXPECT_TRUE(B->Arr[2].isNull());
  const json::Value *S = R.V.find("s");
  ASSERT_TRUE(S && S->isString());
  EXPECT_EQ(S->Str, "x\n\"yA");
}

TEST(JsonLiteTest, RejectsMalformedInput) {
  EXPECT_FALSE(json::parse("").Ok);
  EXPECT_FALSE(json::parse("{").Ok);
  EXPECT_FALSE(json::parse("[1,]").Ok);
  EXPECT_FALSE(json::parse("{\"a\":1} trailing").Ok);
  EXPECT_FALSE(json::parse("{\"a\" 1}").Ok);
  EXPECT_FALSE(json::parse("\"unterminated").Ok);
  EXPECT_FALSE(json::parse("01").Ok) << "leading zeros are not JSON";
  EXPECT_FALSE(json::parse("nul").Ok);
  // Depth bomb must fail cleanly, not crash.
  EXPECT_FALSE(json::parse(std::string(500, '[')).Ok);
}

TEST(JsonLiteTest, ReportsErrorOffset) {
  json::ParseResult R = json::parse("{\"a\": !}");
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.ErrorOffset, 6u);
}

// --- Metrics -----------------------------------------------------------------

TEST(MetricsTest, RegistryGetOrCreateAndSnapshot) {
  metrics::Registry R;
  R.counter("a").add();
  R.counter("a").add(2);
  R.counter("b").add(5);
  R.timer("t").addSeconds(0.25);
  R.timer("t").addSeconds(0.5);

  auto Counters = R.counterValues();
  ASSERT_EQ(Counters.size(), 2u);
  EXPECT_EQ(Counters[0], (std::pair<std::string, uint64_t>{"a", 3}));
  EXPECT_EQ(Counters[1], (std::pair<std::string, uint64_t>{"b", 5}));
  auto Timers = R.timerValues();
  ASSERT_EQ(Timers.size(), 1u);
  EXPECT_EQ(Timers[0].first, "t");
  EXPECT_NEAR(Timers[0].second, 0.75, 1e-9);

  // Handles are stable: the same instrument is returned for the same name.
  EXPECT_EQ(&R.counter("a"), &R.counter("a"));
  EXPECT_EQ(&R.timer("t"), &R.timer("t"));
}

TEST(MetricsTest, ScopedTimerRecordsOnEveryExitPath) {
  metrics::TimerMetric T;
  auto EarlyReturn = [&](bool Bail) {
    metrics::ScopedTimer S(T);
    if (Bail)
      return 1; // the early-return path must still record
    return 0;
  };
  EXPECT_EQ(EarlyReturn(true), 1);
  double AfterError = T.seconds();
  EXPECT_GT(AfterError, 0.0);
  EXPECT_EQ(EarlyReturn(false), 0);
  EXPECT_GT(T.seconds(), AfterError);
}

// --- Trace recording ---------------------------------------------------------

TEST(TraceTest, DisabledModeRecordsNothing) {
  ASSERT_FALSE(trace::enabled());
  size_t Before = trace::recordedEvents();
  {
    trace::Span S("should-not-appear");
    trace::instant("nor-this");
    trace::counterValue("nor-that", 1.0);
  }
  EXPECT_EQ(trace::recordedEvents(), Before);
}

TEST(TraceTest, InternNameIsStable) {
  const char *A = trace::internName("some.span");
  const char *B = trace::internName("some.span");
  EXPECT_EQ(A, B);
  EXPECT_STREQ(A, "some.span");
  EXPECT_NE(A, trace::internName("other.span"));
}

TEST(TraceTest, SpansNestAndExportValidates) {
  TempDir Tmp;
  std::string Path = Tmp.file("trace.json");
  trace::start("");
  {
    trace::Span Outer("outer");
    {
      trace::Span Inner("inner");
      trace::instant("tick");
    }
    trace::counterValue("depth.gauge", 2.0);
  }
  trace::stop();
  ASSERT_TRUE(trace::writeJson(Path));

  std::string Err;
  EXPECT_TRUE(trace::validateTraceFile(
      Path, {"outer", "inner", "tick", "depth.gauge"}, &Err))
      << Err;
  EXPECT_FALSE(trace::validateTraceFile(Path, {"never-recorded"}, &Err));
  EXPECT_NE(Err.find("never-recorded"), std::string::npos);

  // The export itself must round-trip through the JSON parser with the
  // nesting depth visible: inner is enclosed by one span, outer by none.
  auto Bytes = fs::readFile(Path);
  ASSERT_TRUE(Bytes.has_value());
  json::ParseResult Doc = json::parse(std::string_view(
      reinterpret_cast<const char *>(Bytes->data()), Bytes->size()));
  ASSERT_TRUE(Doc.Ok) << Doc.Error;
  const json::Value *Events = Doc.V.find("traceEvents");
  ASSERT_TRUE(Events && Events->isArray());
  double OuterDepth = -1, InnerDepth = -1;
  for (const json::Value &E : Events->Arr) {
    const json::Value *Name = E.find("name");
    const json::Value *Args = E.find("args");
    if (!Name || !Name->isString() || !Args)
      continue;
    const json::Value *Depth = Args->find("depth");
    if (Name->Str == "outer" && Depth)
      OuterDepth = Depth->Num;
    if (Name->Str == "inner" && Depth)
      InnerDepth = Depth->Num;
  }
  EXPECT_EQ(OuterDepth, 0);
  EXPECT_EQ(InnerDepth, 1);
}

TEST(TraceTest, ThreadsGetDistinctTids) {
  TempDir Tmp;
  std::string Path = Tmp.file("threads.json");
  trace::start("");
  auto Work = [] {
    trace::Span S("worker.outer");
    trace::Span T("worker.inner");
  };
  std::thread T1(Work), T2(Work);
  T1.join();
  T2.join();
  trace::stop();
  ASSERT_TRUE(trace::writeJson(Path));

  std::string Err;
  ASSERT_TRUE(trace::validateTraceFile(Path, {"worker.outer"}, &Err)) << Err;

  auto Bytes = fs::readFile(Path);
  ASSERT_TRUE(Bytes.has_value());
  json::ParseResult Doc = json::parse(std::string_view(
      reinterpret_cast<const char *>(Bytes->data()), Bytes->size()));
  ASSERT_TRUE(Doc.Ok) << Doc.Error;
  std::set<double> Tids;
  for (const json::Value &E : Doc.V.find("traceEvents")->Arr) {
    const json::Value *Name = E.find("name");
    if (Name && Name->isString() && Name->Str == "worker.outer")
      Tids.insert(E.find("tid")->Num);
  }
  EXPECT_EQ(Tids.size(), 2u) << "each thread must export its own lane";
}

TEST(TraceTest, RingWraparoundKeepsExportValidAndNamesSurvive) {
  TempDir Tmp;
  std::string Path = Tmp.file("wrap.json");
  trace::start("", /*CapacityEvents=*/4);
  trace::instant("early.event"); // will be overwritten
  for (int I = 0; I != 32; ++I) {
    trace::Span S("late.event");
  }
  trace::stop();
  EXPECT_GT(trace::droppedEvents(), 0u);
  EXPECT_EQ(trace::recordedEvents(), 4u);
  ASSERT_TRUE(trace::writeJson(Path));

  // The early event left the ring but is still present in the metadata name
  // set, so stage-presence validation survives wraparound.
  std::string Err;
  EXPECT_TRUE(
      trace::validateTraceFile(Path, {"early.event", "late.event"}, &Err))
      << Err;
}

TEST(TraceTest, StartResetsPreviousSession) {
  trace::start("", 16);
  trace::instant("stale");
  trace::start("", 16);
  EXPECT_EQ(trace::recordedEvents(), 0u);
  trace::stop();
}

// --- Validator rejections ----------------------------------------------------

TEST(TraceValidateTest, RejectsMissingFileAndBadJson) {
  TempDir Tmp;
  std::string Err;
  EXPECT_FALSE(trace::validateTraceFile(Tmp.file("nope.json"), {}, &Err));

  std::string Bad = Tmp.file("bad.json");
  writeText(Bad, "{\"traceEvents\": [");
  EXPECT_FALSE(trace::validateTraceFile(Bad, {}, &Err));
  EXPECT_NE(Err.find("invalid JSON"), std::string::npos);

  std::string NoEvents = Tmp.file("noevents.json");
  writeText(NoEvents, "{\"otherData\": {}}");
  EXPECT_FALSE(trace::validateTraceFile(NoEvents, {}, &Err));
  EXPECT_NE(Err.find("traceEvents"), std::string::npos);
}

TEST(TraceValidateTest, RejectsPartiallyOverlappingSpans) {
  TempDir Tmp;
  std::string Path = Tmp.file("overlap.json");
  // [0, 10] and [5, 15] on one thread: neither contains the other.
  writeText(Path, R"({"traceEvents":[
    {"name":"a","ph":"X","pid":1,"tid":1,"ts":0,"dur":10},
    {"name":"b","ph":"X","pid":1,"tid":1,"ts":5,"dur":10}
  ]})");
  std::string Err;
  EXPECT_FALSE(trace::validateTraceFile(Path, {}, &Err));
  EXPECT_NE(Err.find("overlapping"), std::string::npos);

  // The same intervals on different threads are fine.
  std::string Ok = Tmp.file("two-tids.json");
  writeText(Ok, R"({"traceEvents":[
    {"name":"a","ph":"X","pid":1,"tid":1,"ts":0,"dur":10},
    {"name":"b","ph":"X","pid":1,"tid":2,"ts":5,"dur":10}
  ]})");
  EXPECT_TRUE(trace::validateTraceFile(Ok, {"a", "b"}, &Err)) << Err;
}

TEST(TraceValidateTest, RejectsEventsMissingRequiredFields) {
  TempDir Tmp;
  std::string Err;

  std::string NoDur = Tmp.file("nodur.json");
  writeText(NoDur,
            R"({"traceEvents":[{"name":"a","ph":"X","pid":1,"tid":1,"ts":0}]})");
  EXPECT_FALSE(trace::validateTraceFile(NoDur, {}, &Err));
  EXPECT_NE(Err.find("dur"), std::string::npos);

  std::string NoValue = Tmp.file("novalue.json");
  writeText(
      NoValue,
      R"({"traceEvents":[{"name":"c","ph":"C","pid":1,"tid":1,"ts":0,"args":{}}]})");
  EXPECT_FALSE(trace::validateTraceFile(NoValue, {}, &Err));
  EXPECT_NE(Err.find("value"), std::string::npos);

  std::string NoTs = Tmp.file("nots.json");
  writeText(NoTs, R"({"traceEvents":[{"name":"i","ph":"i","pid":1,"tid":1}]})");
  EXPECT_FALSE(trace::validateTraceFile(NoTs, {}, &Err));
}

} // namespace
