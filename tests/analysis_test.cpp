//===- analysis_test.cpp - kernel sanitizer tests ---------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The PIR kernel sanitizer: uniformity lattice unit tests, a seeded-bug
// corpus (divergent barriers, shared-scratch races, constant-index OOB,
// uninitialized reads — each with fixed-negative variants) asserting exact
// diagnostic counts, a zero-false-positive sweep over every HeCBench-sim
// and example kernel, the verifier's operand-shape checks, per-pass
// pipeline validation attribution, and the PROTEUS_ANALYZE /
// PROTEUS_VERIFY_EACH integration on the JIT launch path.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "RandomKernel.h"

#include "analysis/CriticalPath.h"
#include "analysis/KernelAnalyzer.h"
#include "analysis/Roofline.h"
#include "analysis/Uniformity.h"
#include "codegen/Target.h"
#include "hecbench/Benchmark.h"
#include "ir/Context.h"
#include "ir/IRParser.h"
#include "jit/Program.h"
#include "support/FileSystem.h"
#include "support/Metrics.h"
#include "support/Trace.h"
#include "transforms/Pass.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace pir;
using namespace pir::analysis;
using namespace proteus;
using namespace proteus::gpu;
using namespace proteus_test;

namespace {

Function *makeVoidKernel(Module &M, const std::string &Name,
                         const std::vector<Type *> &Params,
                         const std::vector<std::string> &Names) {
  return M.createFunction(Name, M.getContext().getVoidTy(), Params, Names,
                          FunctionKind::Kernel);
}

Value *findNamed(Function &F, const std::string &Name) {
  for (BasicBlock &BB : F)
    for (Instruction &I : BB)
      if (I.getName() == Name)
        return &I;
  return nullptr;
}

// ---------------------------------------------------------------------------
// UniformityAnalysis: the lattice and the sync-dependence machinery.
// ---------------------------------------------------------------------------

TEST(UniformityTest, CoreLatticeClassification) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = makeVoidKernel(M, "k", {Ctx.getPtrTy(), Ctx.getI32Ty()},
                               {"out", "n"});
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  Value *Tid = B.createThreadIdx(0, "tid");
  Value *Bid = B.createBlockIdx(0, "bid");
  Value *Bdim = B.createBlockDim(0, "bdim");
  Value *Gtid = B.createAdd(B.createMul(Bid, Bdim, "base"), Tid, "gtid");
  Value *TidP1 = B.createAdd(Tid, B.getInt32(1), "tidp1");
  Value *Tid2 = B.createMul(Tid, B.getInt32(2), "tid2");
  Value *TidSq = B.createMul(Tid, Tid, "tidsq");
  Value *TidMod = B.createSRem(Tid, B.getInt32(4), "tidmod");
  Value *Cmp = B.createICmp(ICmpPred::SLT, Tid, F->getArg(1), "cmp");
  Value *Atomic = B.createAtomicAdd(F->getArg(0), B.getInt32(1), "old");
  Value *TidF = B.createSIToFP(Tid, Ctx.getF64Ty(), "tidf");
  B.createRet();

  UniformityAnalysis UA(*F);
  EXPECT_EQ(UA.uniformity(Tid), Uniformity::Injective);
  EXPECT_EQ(UA.uniformity(Bid), Uniformity::Uniform);
  EXPECT_EQ(UA.uniformity(Bdim), Uniformity::Uniform);
  EXPECT_EQ(UA.uniformity(F->getArg(1)), Uniformity::Uniform);
  EXPECT_EQ(UA.uniformity(B.getInt32(7)), Uniformity::Uniform);
  // Injectivity survives the +uniform / *nonzero-constant idioms...
  EXPECT_EQ(UA.uniformity(Gtid), Uniformity::Injective);
  EXPECT_EQ(UA.uniformity(TidP1), Uniformity::Injective);
  EXPECT_EQ(UA.uniformity(Tid2), Uniformity::Injective);
  EXPECT_EQ(UA.uniformity(TidF), Uniformity::Injective);
  // ...but not arbitrary arithmetic.
  EXPECT_EQ(UA.uniformity(TidSq), Uniformity::Divergent);
  EXPECT_EQ(UA.uniformity(TidMod), Uniformity::Divergent);
  EXPECT_EQ(UA.uniformity(Cmp), Uniformity::Divergent);
  EXPECT_EQ(UA.uniformity(Atomic), Uniformity::Divergent);
  EXPECT_TRUE(UA.isThreadDependent(Tid));
  EXPECT_TRUE(UA.isInjective(Gtid));
  EXPECT_TRUE(UA.isUniform(Bid));
  EXPECT_TRUE(UA.divergentBranches().empty());
}

TEST(UniformityTest, LoopCounterPhiStaysUniform) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildLoopSumKernel(M);
  UniformityAnalysis UA(*F);
  // The induction variable of a uniform-bound loop is uniform; the
  // accumulator is tainted through the per-thread load.
  Value *I = findNamed(*F, "i");
  Value *Acc = findNamed(*F, "acc");
  ASSERT_NE(I, nullptr);
  ASSERT_NE(Acc, nullptr);
  EXPECT_EQ(UA.uniformity(I), Uniformity::Uniform);
  EXPECT_EQ(UA.uniformity(Acc), Uniformity::Divergent);
  EXPECT_TRUE(UA.divergentBranches().empty());
}

TEST(UniformityTest, DivergentBranchMarksRegionAndJoinPhis) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = makeVoidKernel(M, "k", {Ctx.getPtrTy()}, {"out"});
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *A = F->createBlock("a", Ctx.getVoidTy());
  BasicBlock *Bb = F->createBlock("b", Ctx.getVoidTy());
  BasicBlock *Join = F->createBlock("join", Ctx.getVoidTy());

  B.setInsertPoint(Entry);
  Value *Tid = B.createThreadIdx(0, "tid");
  Value *C = B.createICmp(ICmpPred::SLT, Tid, B.getInt32(16), "c");
  B.createCondBr(C, A, Bb);
  B.setInsertPoint(A);
  B.createBr(Join);
  B.setInsertPoint(Bb);
  B.createBr(Join);
  B.setInsertPoint(Join);
  PhiInst *Phi = B.createPhi(Ctx.getI32Ty(), "merged");
  Phi->addIncoming(B.getInt32(1), A);
  Phi->addIncoming(B.getInt32(2), Bb);
  B.createRet();
  expectValid(*F);

  UniformityAnalysis UA(*F);
  ASSERT_EQ(UA.divergentBranches().size(), 1u);
  EXPECT_TRUE(UA.isInDivergentRegion(A));
  EXPECT_TRUE(UA.isInDivergentRegion(Bb));
  EXPECT_FALSE(UA.isInDivergentRegion(Entry));
  EXPECT_FALSE(UA.isInDivergentRegion(Join));
  EXPECT_TRUE(UA.isDivergentJoin(Join));
  // Uniform incoming values still merge divergently: the selected value
  // depends on which side the thread took.
  EXPECT_EQ(UA.uniformity(Phi), Uniformity::Divergent);
}

TEST(UniformityTest, UniformBranchCreatesNoDivergence) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = makeVoidKernel(M, "k", {Ctx.getI32Ty()}, {"n"});
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *A = F->createBlock("a", Ctx.getVoidTy());
  BasicBlock *Bb = F->createBlock("b", Ctx.getVoidTy());
  BasicBlock *Join = F->createBlock("join", Ctx.getVoidTy());

  B.setInsertPoint(Entry);
  Value *C = B.createICmp(ICmpPred::SLT, B.createBlockIdx(0, "bid"),
                          F->getArg(0), "c");
  B.createCondBr(C, A, Bb);
  B.setInsertPoint(A);
  B.createBr(Join);
  B.setInsertPoint(Bb);
  B.createBr(Join);
  B.setInsertPoint(Join);
  PhiInst *Phi = B.createPhi(Ctx.getI32Ty(), "merged");
  Phi->addIncoming(B.getInt32(1), A);
  Phi->addIncoming(B.getInt32(2), Bb);
  B.createRet();

  UniformityAnalysis UA(*F);
  EXPECT_TRUE(UA.divergentBranches().empty());
  EXPECT_FALSE(UA.isInDivergentRegion(A));
  EXPECT_FALSE(UA.isDivergentJoin(Join));
  EXPECT_EQ(UA.uniformity(Phi), Uniformity::Uniform);
}

// ---------------------------------------------------------------------------
// Barrier-divergence lint: the __syncthreads-in-divergent-branch deadlock.
// ---------------------------------------------------------------------------

/// if (tid < 16) { barrier; out[tid] = 1 } — the canonical deadlock.
Function *buildDivergentBarrierKernel(Module &M, bool BarrierInThen,
                                      const std::string &Name = "divbar") {
  Context &Ctx = M.getContext();
  IRBuilder B(Ctx);
  Function *F =
      makeVoidKernel(M, Name, {Ctx.getPtrTy(), Ctx.getI32Ty()}, {"out", "n"});
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *Then = F->createBlock("then", Ctx.getVoidTy());
  BasicBlock *Exit = F->createBlock("exit", Ctx.getVoidTy());

  B.setInsertPoint(Entry);
  Value *Tid = B.createThreadIdx(0, "tid");
  Value *C = B.createICmp(ICmpPred::SLT, Tid, B.getInt32(16), "c");
  B.createCondBr(C, Then, Exit);

  B.setInsertPoint(Then);
  if (BarrierInThen)
    B.createBarrier();
  B.createStore(B.getInt32(1),
                B.createGep(Ctx.getI32Ty(), F->getArg(0), Tid, "p"));
  B.createBr(Exit);

  B.setInsertPoint(Exit);
  if (!BarrierInThen)
    B.createBarrier(); // at the reconvergence join: safe
  B.createRet();
  return F;
}

TEST(BarrierLintTest, FlagsBarrierUnderDivergentBranch) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildDivergentBarrierKernel(M, /*BarrierInThen=*/true);
  expectValid(*F);
  AnalysisReport R = analyzeKernel(*F);
  ASSERT_EQ(R.Diags.size(), 1u) << R.message();
  EXPECT_EQ(R.count(LintKind::DivergentBarrier), 1u);
  EXPECT_EQ(R.Diags[0].FunctionName, "divbar");
  EXPECT_EQ(R.Diags[0].BlockName, "then");
  // The diagnostic names the controlling branch and its condition.
  EXPECT_NE(R.Diags[0].Message.find("'entry'"), std::string::npos)
      << R.Diags[0].Message;
  EXPECT_NE(R.Diags[0].Message.find("%c"), std::string::npos)
      << R.Diags[0].Message;
}

TEST(BarrierLintTest, BarrierAtReconvergenceJoinIsClean) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildDivergentBarrierKernel(M, /*BarrierInThen=*/false);
  AnalysisReport R = analyzeKernel(*F);
  EXPECT_TRUE(R.clean()) << R.message();
}

TEST(BarrierLintTest, BarrierUnderUniformBranchIsClean) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = makeVoidKernel(M, "k", {Ctx.getI32Ty()}, {"n"});
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *Then = F->createBlock("then", Ctx.getVoidTy());
  BasicBlock *Exit = F->createBlock("exit", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  Value *C = B.createICmp(ICmpPred::SLT, B.getInt32(0), F->getArg(0), "c");
  B.createCondBr(C, Then, Exit);
  B.setInsertPoint(Then);
  B.createBarrier(); // all threads agree on the uniform condition
  B.createBr(Exit);
  B.setInsertPoint(Exit);
  B.createRet();

  AnalysisReport R = analyzeKernel(*F);
  EXPECT_TRUE(R.clean()) << R.message();
}

TEST(BarrierLintTest, BarrierInUniformLoopIsClean) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = makeVoidKernel(M, "k", {Ctx.getI32Ty()}, {"n"});
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *Header = F->createBlock("header", Ctx.getVoidTy());
  BasicBlock *Body = F->createBlock("body", Ctx.getVoidTy());
  BasicBlock *Exit = F->createBlock("exit", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  B.createBr(Header);
  B.setInsertPoint(Header);
  PhiInst *I = B.createPhi(Ctx.getI32Ty(), "i");
  I->addIncoming(B.getInt32(0), Entry);
  Value *C = B.createICmp(ICmpPred::SLT, I, F->getArg(0), "c");
  B.createCondBr(C, Body, Exit);
  B.setInsertPoint(Body);
  B.createBarrier(); // every thread iterates the same uniform trip count
  I->addIncoming(B.createAdd(I, B.getInt32(1), "i2"), Body);
  B.createBr(Header);
  B.setInsertPoint(Exit);
  B.createRet();
  expectValid(*F);

  AnalysisReport R = analyzeKernel(*F);
  EXPECT_TRUE(R.clean()) << R.message();
}

// ---------------------------------------------------------------------------
// Shared-scratch race lint.
// ---------------------------------------------------------------------------

/// Kernel with a 64-slot i32 scratch buffer, a store indexed by \p StoreIdx
/// ("mod" = tid%4 divergent, "tid" injective), optionally a barrier between
/// the store and a subsequent load of slot 0, and the load's value written
/// out so the IR is plausible.
Function *buildScratchKernel(Module &M, bool DivergentStore,
                             bool BarrierBetween, bool UseAtomic = false) {
  Context &Ctx = M.getContext();
  IRBuilder B(Ctx);
  Function *F = makeVoidKernel(M, "scratch", {Ctx.getPtrTy()}, {"out"});
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  Value *Buf = B.createAlloca(Ctx.getI32Ty(), 64, "buf");
  Value *Tid = B.createThreadIdx(0, "tid");
  Value *Idx = DivergentStore ? B.createSRem(Tid, B.getInt32(4), "mod") : Tid;
  Value *P = B.createGep(Ctx.getI32Ty(), Buf, Idx, "p");
  if (UseAtomic)
    B.createAtomicAdd(P, B.getInt32(1), "old");
  else
    B.createStore(B.getInt32(1), P);
  if (BarrierBetween)
    B.createBarrier();
  Value *Q = B.createGep(Ctx.getI32Ty(), Buf, B.getInt32(0), "q");
  Value *V = B.createLoad(Ctx.getI32Ty(), Q, "v");
  B.createStore(V, B.createGep(Ctx.getI32Ty(), F->getArg(0), Tid, "outp"));
  B.createRet();
  return F;
}

TEST(SharedMemRaceTest, FlagsDivergentStoreAgainstLoad) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildScratchKernel(M, /*DivergentStore=*/true,
                                   /*BarrierBetween=*/false);
  expectValid(*F);
  AnalysisReport R = analyzeKernel(*F);
  ASSERT_EQ(R.Diags.size(), 1u) << R.message();
  EXPECT_EQ(R.count(LintKind::SharedMemRace), 1u);
  EXPECT_NE(R.Diags[0].Message.find("%buf"), std::string::npos)
      << R.Diags[0].Message;
}

TEST(SharedMemRaceTest, InjectiveIndexIsClean) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildScratchKernel(M, /*DivergentStore=*/false,
                                   /*BarrierBetween=*/false);
  AnalysisReport R = analyzeKernel(*F);
  EXPECT_TRUE(R.clean()) << R.message();
}

TEST(SharedMemRaceTest, BarrierBetweenAccessesIsClean) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildScratchKernel(M, /*DivergentStore=*/true,
                                   /*BarrierBetween=*/true);
  AnalysisReport R = analyzeKernel(*F);
  EXPECT_TRUE(R.clean()) << R.message();
}

TEST(SharedMemRaceTest, AtomicAccessesAreClean) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildScratchKernel(M, /*DivergentStore=*/true,
                                   /*BarrierBetween=*/false, /*UseAtomic=*/true);
  AnalysisReport R = analyzeKernel(*F);
  EXPECT_TRUE(R.clean()) << R.message();
}

TEST(SharedMemRaceTest, EscapedBufferIsSkipped) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  // A device helper the buffer address is passed to: unknown aliasing, so
  // the lint must stay silent rather than guess.
  Function *Helper = M.createFunction("consume", Ctx.getVoidTy(),
                                      {Ctx.getPtrTy()}, {"p"},
                                      FunctionKind::Device);
  B.setInsertPoint(Helper->createBlock("entry", Ctx.getVoidTy()));
  B.createRet();

  Function *F = makeVoidKernel(M, "k", {Ctx.getPtrTy()}, {"out"});
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  Value *Buf = B.createAlloca(Ctx.getI32Ty(), 8, "buf");
  Value *Tid = B.createThreadIdx(0, "tid");
  Value *Mod = B.createSRem(Tid, B.getInt32(2), "mod");
  B.createStore(B.getInt32(1), B.createGep(Ctx.getI32Ty(), Buf, Mod, "p"));
  Value *V = B.createLoad(Ctx.getI32Ty(),
                          B.createGep(Ctx.getI32Ty(), Buf, B.getInt32(0), "q"),
                          "v");
  B.createStore(V, F->getArg(0));
  B.createCall(Helper, {Buf});
  B.createRet();
  expectValid(*F);

  AnalysisReport R = analyzeKernel(*F);
  EXPECT_TRUE(R.clean()) << R.message();
}

// ---------------------------------------------------------------------------
// Constant-index out-of-bounds lint.
// ---------------------------------------------------------------------------

TEST(SharedMemOOBTest, FlagsOverrunAndNegativeOffset) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = makeVoidKernel(M, "k", {Ctx.getPtrTy()}, {"out"});
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  Value *Buf = B.createAlloca(Ctx.getF64Ty(), 8, "buf"); // 64 bytes
  B.createStore(B.getDouble(1.0),
                B.createGep(Ctx.getF64Ty(), Buf, B.getInt32(0), "p0"));
  // One past the end: byte offset 64, width 8, size 64.
  B.createStore(B.getDouble(2.0),
                B.createGep(Ctx.getF64Ty(), Buf, B.getInt32(8), "p8"));
  // Negative constant index.
  Value *V = B.createLoad(
      Ctx.getF64Ty(),
      B.createGep(Ctx.getF64Ty(), Buf, B.getInt32(static_cast<uint32_t>(-1)),
                  "pneg"),
      "v");
  B.createStore(V, F->getArg(0));
  B.createRet();
  expectValid(*F);

  AnalysisReport R = analyzeKernel(*F);
  EXPECT_EQ(R.count(LintKind::SharedMemOOB), 2u) << R.message();
  EXPECT_EQ(R.Diags.size(), 2u) << R.message();
}

TEST(SharedMemOOBTest, ChainedGepOffsetsAccumulate) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = makeVoidKernel(M, "k", {Ctx.getPtrTy()}, {"out"});
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  Value *Buf = B.createAlloca(Ctx.getF64Ty(), 8, "buf");
  B.createStore(B.getDouble(0.0),
                B.createGep(Ctx.getF64Ty(), Buf, B.getInt32(0), "p0"));
  // gep(gep(buf, 4), 4): total byte offset 64 — out of a 64-byte buffer.
  Value *Mid = B.createGep(Ctx.getF64Ty(), Buf, B.getInt32(4), "mid");
  Value *End = B.createGep(Ctx.getF64Ty(), Mid, B.getInt32(4), "end");
  Value *V = B.createLoad(Ctx.getF64Ty(), End, "v");
  B.createStore(V, F->getArg(0));
  B.createRet();

  AnalysisReport R = analyzeKernel(*F);
  EXPECT_EQ(R.count(LintKind::SharedMemOOB), 1u) << R.message();
  EXPECT_EQ(R.Diags.size(), 1u) << R.message();
}

TEST(SharedMemOOBTest, InBoundsAccessesAreClean) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = makeVoidKernel(M, "k", {Ctx.getPtrTy()}, {"out"});
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  Value *Buf = B.createAlloca(Ctx.getF64Ty(), 8, "buf");
  B.createStore(B.getDouble(1.0),
                B.createGep(Ctx.getF64Ty(), Buf, B.getInt32(0), "p0"));
  B.createStore(B.getDouble(2.0),
                B.createGep(Ctx.getF64Ty(), Buf, B.getInt32(7), "p7"));
  Value *V = B.createLoad(
      Ctx.getF64Ty(), B.createGep(Ctx.getF64Ty(), Buf, B.getInt32(3), "p3"),
      "v");
  B.createStore(V, F->getArg(0));
  B.createRet();

  AnalysisReport R = analyzeKernel(*F);
  EXPECT_TRUE(R.clean()) << R.message();
}

// ---------------------------------------------------------------------------
// Uninitialized-load lint (may-stored union dataflow).
// ---------------------------------------------------------------------------

TEST(UninitLoadTest, FlagsLoadBeforeAnyStore) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = makeVoidKernel(M, "k", {Ctx.getPtrTy()}, {"out"});
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  Value *Buf = B.createAlloca(Ctx.getI32Ty(), 4, "buf");
  Value *V = B.createLoad(Ctx.getI32Ty(),
                          B.createGep(Ctx.getI32Ty(), Buf, B.getInt32(0), "p"),
                          "v");
  B.createStore(V, F->getArg(0));
  B.createRet();

  AnalysisReport R = analyzeKernel(*F);
  ASSERT_EQ(R.Diags.size(), 1u) << R.message();
  EXPECT_EQ(R.count(LintKind::UninitializedLoad), 1u);
  EXPECT_NE(R.Diags[0].Message.find("%buf"), std::string::npos);
}

TEST(UninitLoadTest, StoreThenLoadIsClean) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = makeVoidKernel(M, "k", {Ctx.getPtrTy()}, {"out"});
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  Value *Buf = B.createAlloca(Ctx.getI32Ty(), 4, "buf");
  Value *P = B.createGep(Ctx.getI32Ty(), Buf, B.getInt32(0), "p");
  B.createStore(B.getInt32(9), P);
  B.createStore(B.createLoad(Ctx.getI32Ty(), P, "v"), F->getArg(0));
  B.createRet();

  AnalysisReport R = analyzeKernel(*F);
  EXPECT_TRUE(R.clean()) << R.message();
}

TEST(UninitLoadTest, StoreOnOnePathSuppressesByDesign) {
  // May-analysis: a store on *some* path to the load keeps the lint quiet
  // (zero false positives beats path-sensitive completeness here).
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = makeVoidKernel(M, "k", {Ctx.getPtrTy(), Ctx.getI32Ty()},
                               {"out", "n"});
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *Then = F->createBlock("then", Ctx.getVoidTy());
  BasicBlock *Exit = F->createBlock("exit", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  Value *Buf = B.createAlloca(Ctx.getI32Ty(), 4, "buf");
  Value *C = B.createICmp(ICmpPred::SLT, B.getInt32(0), F->getArg(1), "c");
  B.createCondBr(C, Then, Exit);
  B.setInsertPoint(Then);
  B.createStore(B.getInt32(1),
                B.createGep(Ctx.getI32Ty(), Buf, B.getInt32(0), "p"));
  B.createBr(Exit);
  B.setInsertPoint(Exit);
  Value *V = B.createLoad(Ctx.getI32Ty(),
                          B.createGep(Ctx.getI32Ty(), Buf, B.getInt32(0), "q"),
                          "v");
  B.createStore(V, F->getArg(0));
  B.createRet();
  expectValid(*F);

  AnalysisReport R = analyzeKernel(*F);
  EXPECT_TRUE(R.clean()) << R.message();
}

TEST(UninitLoadTest, StoreInLoopBodyCoversExitLoad) {
  // The Wsm5-style fill-then-read pattern: stores in the loop body must
  // reach the load after the loop through the header's back edge.
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = makeVoidKernel(M, "k", {Ctx.getPtrTy(), Ctx.getI32Ty()},
                               {"out", "n"});
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *Header = F->createBlock("header", Ctx.getVoidTy());
  BasicBlock *Body = F->createBlock("body", Ctx.getVoidTy());
  BasicBlock *Exit = F->createBlock("exit", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  Value *Buf = B.createAlloca(Ctx.getI32Ty(), 8, "buf");
  B.createBr(Header);
  B.setInsertPoint(Header);
  PhiInst *I = B.createPhi(Ctx.getI32Ty(), "i");
  I->addIncoming(B.getInt32(0), Entry);
  Value *C = B.createICmp(ICmpPred::SLT, I, F->getArg(1), "c");
  B.createCondBr(C, Body, Exit);
  B.setInsertPoint(Body);
  B.createStore(I, B.createGep(Ctx.getI32Ty(), Buf, I, "p"));
  I->addIncoming(B.createAdd(I, B.getInt32(1), "i2"), Body);
  B.createBr(Header);
  B.setInsertPoint(Exit);
  Value *V = B.createLoad(Ctx.getI32Ty(),
                          B.createGep(Ctx.getI32Ty(), Buf, B.getInt32(0), "q"),
                          "v");
  B.createStore(V, F->getArg(0));
  B.createRet();
  expectValid(*F);

  AnalysisReport R = analyzeKernel(*F);
  EXPECT_TRUE(R.clean()) << R.message();
}

TEST(UninitLoadTest, ArgumentPointerLoadsAreNotTracked) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = makeVoidKernel(M, "k", {Ctx.getPtrTy(), Ctx.getPtrTy()},
                               {"in", "out"});
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  Value *Tid = B.createThreadIdx(0, "tid");
  Value *V = B.createLoad(Ctx.getI32Ty(),
                          B.createGep(Ctx.getI32Ty(), F->getArg(0), Tid, "p"),
                          "v");
  B.createStore(V, B.createGep(Ctx.getI32Ty(), F->getArg(1), Tid, "q"));
  B.createRet();

  AnalysisReport R = analyzeKernel(*F);
  EXPECT_TRUE(R.clean()) << R.message();
}

// ---------------------------------------------------------------------------
// A kernel seeded with all four bug classes at once: exact counts.
// ---------------------------------------------------------------------------

TEST(MultiBugTest, ReportsEachSeededBugExactlyOnce) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = makeVoidKernel(M, "buggy", {Ctx.getPtrTy()}, {"out"});
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *Then = F->createBlock("then", Ctx.getVoidTy());
  BasicBlock *Exit = F->createBlock("exit", Ctx.getVoidTy());

  B.setInsertPoint(Entry);
  Value *Buf = B.createAlloca(Ctx.getI32Ty(), 32, "buf");
  Value *Buf2 = B.createAlloca(Ctx.getI32Ty(), 16, "buf2");
  Value *Tid = B.createThreadIdx(0, "tid");
  // Bug 1: uninitialized read of buf2 (never stored).
  Value *U = B.createLoad(
      Ctx.getI32Ty(), B.createGep(Ctx.getI32Ty(), Buf2, B.getInt32(0), "u0"),
      "u");
  // Bug 2: divergent-index store racing the following load.
  Value *Mod = B.createSRem(Tid, B.getInt32(4), "mod");
  B.createStore(B.getInt32(1), B.createGep(Ctx.getI32Ty(), Buf, Mod, "p"));
  Value *W = B.createLoad(
      Ctx.getI32Ty(), B.createGep(Ctx.getI32Ty(), Buf, B.getInt32(0), "q"),
      "w");
  // Bug 3: constant index one past the end.
  B.createStore(B.getInt32(2),
                B.createGep(Ctx.getI32Ty(), Buf, B.getInt32(32), "pend"));
  B.createStore(B.createAdd(U, W, "uw"),
                B.createGep(Ctx.getI32Ty(), F->getArg(0), Tid, "outp"));
  Value *C = B.createICmp(ICmpPred::SLT, Tid, B.getInt32(8), "c");
  B.createCondBr(C, Then, Exit);

  // Bug 4: barrier under the divergent branch.
  B.setInsertPoint(Then);
  B.createBarrier();
  B.createBr(Exit);
  B.setInsertPoint(Exit);
  B.createRet();
  expectValid(*F);

  AnalysisReport R = analyzeKernel(*F);
  EXPECT_EQ(R.count(LintKind::DivergentBarrier), 1u) << R.message();
  EXPECT_EQ(R.count(LintKind::SharedMemRace), 1u) << R.message();
  EXPECT_EQ(R.count(LintKind::SharedMemOOB), 1u) << R.message();
  EXPECT_EQ(R.count(LintKind::UninitializedLoad), 1u) << R.message();
  EXPECT_EQ(R.Diags.size(), 4u) << R.message();
}

// ---------------------------------------------------------------------------
// Zero-false-positive sweep: every healthy kernel in the tree lints clean.
// ---------------------------------------------------------------------------

TEST(SweepTest, HecbenchCorpusIsLintClean) {
  for (const auto &Bench : hecbench::allBenchmarks()) {
    Context Ctx;
    std::unique_ptr<Module> M = Bench->buildModule(Ctx);
    AnalysisReport R = analyzeModule(*M);
    EXPECT_TRUE(R.clean())
        << "false positive(s) in benchmark " << Bench->name() << ":\n"
        << R.message();
  }
}

TEST(SweepTest, TestUtilKernelsAreLintClean) {
  Context Ctx;
  Module M(Ctx, "m");
  buildDaxpyKernel(M);
  buildLoopSumKernel(M);
  AnalysisReport R = analyzeModule(M);
  EXPECT_TRUE(R.clean()) << R.message();
}

TEST(SweepTest, ExampleFilesAreLintClean) {
  for (const char *Name : {"saxpy.pir", "reduction.pir"}) {
    std::string Path = std::string(PROTEUS_EXAMPLES_DIR) + "/" + Name;
    auto Bytes = fs::readFile(Path);
    ASSERT_TRUE(Bytes.has_value()) << Path;
    Context Ctx;
    ParseResult PR = parseModule(Ctx, std::string(Bytes->begin(), Bytes->end()));
    ASSERT_TRUE(static_cast<bool>(PR)) << PR.Error;
    AnalysisReport R = analyzeModule(*PR.M);
    EXPECT_TRUE(R.clean()) << Name << ":\n" << R.message();
  }
}

// ---------------------------------------------------------------------------
// Verifier operand-shape checks (built by corrupting valid IR, since the
// constructors assert on direct misuse).
// ---------------------------------------------------------------------------

struct CorruptibleKernel {
  Context Ctx;
  Module M{Ctx, "m"};
  Function *F = nullptr;
  IRBuilder B{Ctx};

  CorruptibleKernel() {
    F = M.createFunction("k", Ctx.getVoidTy(),
                         {Ctx.getPtrTy(), Ctx.getI32Ty()}, {"p", "n"},
                         FunctionKind::Kernel);
    B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  }

  void expectError(const std::string &Substr) {
    VerifyResult R = verifyFunction(*F);
    ASSERT_FALSE(R.ok()) << "expected verifier rejection: " << Substr;
    EXPECT_NE(R.message().find(Substr), std::string::npos) << R.message();
  }
};

TEST(VerifierExtraTest, RejectsNonPointerLoadAddress) {
  CorruptibleKernel K;
  Value *V = K.B.createLoad(K.Ctx.getI32Ty(), K.F->getArg(0), "v");
  K.B.createStore(V, K.F->getArg(0));
  K.B.createRet();
  cast<Instruction>(V)->setOperand(0, K.F->getArg(1)); // i32 as address
  K.expectError("load pointer operand must be pointer-typed");
}

TEST(VerifierExtraTest, RejectsNonPointerStoreAddress) {
  CorruptibleKernel K;
  K.B.createStore(K.B.getInt32(1), K.F->getArg(0));
  K.B.createRet();
  Instruction *St = &K.F->getEntryBlock().front();
  ASSERT_TRUE(isa<StoreInst>(St));
  St->setOperand(1, K.F->getArg(1));
  K.expectError("store pointer operand must be pointer-typed");
}

TEST(VerifierExtraTest, RejectsStoreTypeMismatchToAlloca) {
  CorruptibleKernel K;
  Value *Buf = K.B.createAlloca(K.Ctx.getI32Ty(), 4, "buf");
  // The constructor only checks the pointer shape; the pointee contract is
  // the verifier's job.
  K.B.createStore(K.B.getDouble(1.0), Buf);
  K.B.createRet();
  K.expectError("store value type does not match the allocated type");
}

TEST(VerifierExtraTest, RejectsNonPointerGepBase) {
  CorruptibleKernel K;
  Value *P = K.B.createGep(K.Ctx.getI32Ty(), K.F->getArg(0),
                           K.B.getInt32(1), "gep");
  Value *V = K.B.createLoad(K.Ctx.getI32Ty(), P, "v");
  K.B.createStore(V, K.F->getArg(0));
  K.B.createRet();
  cast<Instruction>(P)->setOperand(0, K.F->getArg(1));
  K.expectError("ptradd base operand must be pointer-typed");
}

TEST(VerifierExtraTest, RejectsNonI1BranchCondition) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction("k", Ctx.getVoidTy(), {Ctx.getI32Ty()},
                                 {"n"}, FunctionKind::Kernel);
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *A = F->createBlock("a", Ctx.getVoidTy());
  BasicBlock *Bb = F->createBlock("b", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  Value *C = B.createICmp(ICmpPred::SLT, F->getArg(0), B.getInt32(4), "c");
  B.createCondBr(C, A, Bb);
  B.setInsertPoint(A);
  B.createRet();
  B.setInsertPoint(Bb);
  B.createRet();
  Entry->getTerminator()->setOperand(0, F->getArg(0)); // i32 condition
  VerifyResult R = verifyFunction(*F);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.message().find("conditional branch condition must be i1"),
            std::string::npos)
      << R.message();
}

TEST(VerifierExtraTest, RejectsNonFunctionCallee) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *Helper = M.createFunction("helper", Ctx.getI32Ty(),
                                      {Ctx.getI32Ty()}, {"x"},
                                      FunctionKind::Device);
  B.setInsertPoint(Helper->createBlock("entry", Ctx.getVoidTy()));
  B.createRet(Helper->getArg(0));
  Function *F = M.createFunction("k", Ctx.getVoidTy(),
                                 {Ctx.getPtrTy()}, {"out"},
                                 FunctionKind::Kernel);
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  Value *V = B.createCall(Helper, {B.getInt32(3)}, "v");
  B.createStore(V, F->getArg(0));
  B.createRet();
  // A corrupted callee slot must be diagnosed, not cast<Function>'d.
  cast<Instruction>(V)->setOperand(0, Ctx.getInt32(7));
  VerifyResult R = verifyFunction(*F);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.message().find("call callee is not a function"),
            std::string::npos)
      << R.message();
}

// ---------------------------------------------------------------------------
// Per-pass pipeline validation: the PostPassHook seam attributes breakage
// to the offending pass by name.
// ---------------------------------------------------------------------------

/// A well-behaved pass that changes nothing.
struct IdentityPass final : FunctionPass {
  std::string name() const override { return "identity"; }
  bool run(Function &) override { return false; }
};

/// A deliberately broken pass: appends a second terminator to the entry
/// block, producing IR verifyFunction rejects.
struct EvilPass final : FunctionPass {
  std::string name() const override { return "evil"; }
  bool run(Function &F) override {
    Context &Ctx = F.getParent()->getContext();
    F.getEntryBlock().append(std::make_unique<RetInst>(Ctx.getVoidTy()));
    return true;
  }
};

TEST(PassHookTest, AttributesBreakageToOffendingPass) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction("k", Ctx.getVoidTy(), {}, {},
                                 FunctionKind::Kernel);
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  B.createRet();

  PassManager PM(/*MaxIterations=*/1);
  PM.addPass(std::make_unique<IdentityPass>());
  PM.addPass(std::make_unique<EvilPass>());
  std::vector<std::string> CleanPasses;
  std::string FirstBroken;
  PM.setPostPassHook([&](const std::string &PassName, Function &Fn) {
    if (!FirstBroken.empty())
      return;
    if (verifyFunction(Fn).ok())
      CleanPasses.push_back(PassName);
    else
      FirstBroken = PassName;
  });
  PM.run(*F);
  EXPECT_EQ(FirstBroken, "evil");
  ASSERT_EQ(CleanPasses.size(), 1u);
  EXPECT_EQ(CleanPasses[0], "identity");
}

// ---------------------------------------------------------------------------
// JIT launch-path integration: PROTEUS_ANALYZE gates launches on the
// *optimized* kernel; PROTEUS_VERIFY_EACH validates every pass.
// ---------------------------------------------------------------------------

struct JitRunResult {
  GpuError Err = GpuError::Success;
  std::string Message;
  JitRuntimeStats Stats;
};

/// Compiles \p M's single JIT-annotated kernel and launches it once through
/// the full AOT-extension + __jit_launch_kernel path.
JitRunResult runJitOnce(Module &M, const std::string &Symbol,
                        const JitConfig &JC, uint64_t OutBytes,
                        const std::vector<KernelArg> &ScalarTail) {
  JitRunResult Res;
  AotOptions AO;
  AO.Arch = GpuArch::AmdGcnSim;
  AO.EnableProteusExtensions = true;
  CompiledProgram Prog = aotCompile(M, AO);
  Device Dev(getTarget(GpuArch::AmdGcnSim), 1 << 22);
  JitRuntime Jit(Dev, Prog.ModuleId, JC);
  LoadedProgram LP(Dev, Prog, &Jit);
  EXPECT_TRUE(LP.ok()) << LP.error();
  DevicePtr Out = 0;
  EXPECT_EQ(gpuMalloc(Dev, &Out, OutBytes), GpuError::Success);
  std::vector<KernelArg> Args = {{Out}};
  Args.insert(Args.end(), ScalarTail.begin(), ScalarTail.end());
  Res.Err = LP.launch(Symbol, Dim3{1, 1, 1}, Dim3{32, 1, 1}, Args,
                      &Res.Message);
  Res.Stats = Jit.stats();
  return Res;
}

JitConfig memOnlyConfig() {
  JitConfig JC;
  JC.UsePersistentCache = false; // keep test runs hermetic
  return JC;
}

TEST(JitAnalyzeTest, ErrorModeRejectsDivergentBarrierLaunch) {
  Context Ctx;
  Module M(Ctx, "app");
  Function *F = buildDivergentBarrierKernel(M, /*BarrierInThen=*/true);
  F->setJitAnnotation(JitAnnotation{{2}});
  JitConfig JC = memOnlyConfig();
  JC.Analyze = JitConfig::AnalyzeMode::Error;
  JitRunResult R = runJitOnce(M, "divbar", JC, 32 * 4, {{32}});
  EXPECT_NE(R.Err, GpuError::Success);
  EXPECT_NE(R.Message.find("failed launch-time analysis"), std::string::npos)
      << R.Message;
  EXPECT_NE(R.Message.find("divergent-barrier"), std::string::npos)
      << R.Message;
  EXPECT_EQ(R.Stats.AnalysisRejects, 1u);
  EXPECT_GE(R.Stats.AnalysisDiagnostics, 1u);
  EXPECT_GT(R.Stats.AnalyzeSeconds, 0.0);
}

TEST(JitAnalyzeTest, WarnModeReportsAndStillLaunches) {
  Context Ctx;
  Module M(Ctx, "app");
  Function *F = buildDivergentBarrierKernel(M, /*BarrierInThen=*/true);
  F->setJitAnnotation(JitAnnotation{{2}});
  JitConfig JC = memOnlyConfig();
  JC.Analyze = JitConfig::AnalyzeMode::Warn; // the default, explicit here
  JitRunResult R = runJitOnce(M, "divbar", JC, 32 * 4, {{32}});
  EXPECT_EQ(R.Err, GpuError::Success) << R.Message;
  EXPECT_GE(R.Stats.AnalysisDiagnostics, 1u);
  EXPECT_EQ(R.Stats.AnalysisRejects, 0u);
  EXPECT_EQ(R.Stats.Compilations, 1u);
}

TEST(JitAnalyzeTest, OffModeSkipsTheStageEntirely) {
  Context Ctx;
  Module M(Ctx, "app");
  Function *F = buildDivergentBarrierKernel(M, /*BarrierInThen=*/true);
  F->setJitAnnotation(JitAnnotation{{2}});
  JitConfig JC = memOnlyConfig();
  JC.Analyze = JitConfig::AnalyzeMode::Off;
  JitRunResult R = runJitOnce(M, "divbar", JC, 32 * 4, {{32}});
  EXPECT_EQ(R.Err, GpuError::Success) << R.Message;
  EXPECT_EQ(R.Stats.AnalysisDiagnostics, 0u);
  EXPECT_EQ(R.Stats.AnalyzeSeconds, 0.0);
}

TEST(JitAnalyzeTest, ErrorModeAcceptsCleanKernel) {
  Context Ctx;
  Module M(Ctx, "app");
  buildDaxpyKernel(M); // annotates a (1) and n (4)
  JitConfig JC = memOnlyConfig();
  JC.Analyze = JitConfig::AnalyzeMode::Error;
  JC.VerifyEachPass = true; // the paranoid configuration, end to end
  JitRunResult Res;
  {
    AotOptions AO;
    AO.Arch = GpuArch::AmdGcnSim;
    AO.EnableProteusExtensions = true;
    CompiledProgram Prog = aotCompile(M, AO);
    Device Dev(getTarget(GpuArch::AmdGcnSim), 1 << 22);
    JitRuntime Jit(Dev, Prog.ModuleId, JC);
    LoadedProgram LP(Dev, Prog, &Jit);
    ASSERT_TRUE(LP.ok()) << LP.error();
    DevicePtr X = 0, Y = 0;
    ASSERT_EQ(gpuMalloc(Dev, &X, 64 * 8), GpuError::Success);
    ASSERT_EQ(gpuMalloc(Dev, &Y, 64 * 8), GpuError::Success);
    std::vector<KernelArg> Args = {{sem::boxF64(3.0)}, {X}, {Y}, {64}};
    Res.Err = LP.launch("daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1}, Args,
                        &Res.Message);
    Res.Stats = Jit.stats();
  }
  EXPECT_EQ(Res.Err, GpuError::Success) << Res.Message;
  EXPECT_EQ(Res.Stats.AnalysisDiagnostics, 0u);
  EXPECT_EQ(Res.Stats.AnalysisRejects, 0u);
  EXPECT_EQ(Res.Stats.VerifyFailures, 0u);
  EXPECT_GT(Res.Stats.AnalyzeSeconds, 0.0);
  EXPECT_GT(Res.Stats.VerifyEachSeconds, 0.0);
}

// ---------------------------------------------------------------------------
// Environment-variable plumbing.
// ---------------------------------------------------------------------------

TEST(JitConfigEnvTest, ParsesAnalyzeMode) {
  setenv("PROTEUS_ANALYZE", "error", 1);
  std::vector<std::string> W;
  EXPECT_EQ(JitConfig::fromEnvironment(&W).Analyze,
            JitConfig::AnalyzeMode::Error);
  EXPECT_TRUE(W.empty());

  setenv("PROTEUS_ANALYZE", "off", 1);
  EXPECT_EQ(JitConfig::fromEnvironment(&W).Analyze,
            JitConfig::AnalyzeMode::Off);

  // Invalid values keep the default and warn instead of silently coercing.
  setenv("PROTEUS_ANALYZE", "loud", 1);
  W.clear();
  EXPECT_EQ(JitConfig::fromEnvironment(&W).Analyze,
            JitConfig::AnalyzeMode::Warn);
  ASSERT_EQ(W.size(), 1u);
  EXPECT_NE(W[0].find("PROTEUS_ANALYZE"), std::string::npos) << W[0];
  unsetenv("PROTEUS_ANALYZE");
}

TEST(JitConfigEnvTest, ParsesVerifyEach) {
  setenv("PROTEUS_VERIFY_EACH", "1", 1);
  std::vector<std::string> W;
  EXPECT_TRUE(JitConfig::fromEnvironment(&W).VerifyEachPass);
  EXPECT_TRUE(W.empty());

  setenv("PROTEUS_VERIFY_EACH", "0", 1);
  EXPECT_FALSE(JitConfig::fromEnvironment(&W).VerifyEachPass);

  setenv("PROTEUS_VERIFY_EACH", "yes", 1);
  W.clear();
  EXPECT_FALSE(JitConfig::fromEnvironment(&W).VerifyEachPass);
  ASSERT_EQ(W.size(), 1u);
  EXPECT_NE(W[0].find("PROTEUS_VERIFY_EACH"), std::string::npos) << W[0];
  unsetenv("PROTEUS_VERIFY_EACH");
}

TEST(JitConfigEnvTest, ModeNamesRoundTrip) {
  EXPECT_STREQ(analyzeModeName(JitConfig::AnalyzeMode::Off), "off");
  EXPECT_STREQ(analyzeModeName(JitConfig::AnalyzeMode::Warn), "warn");
  EXPECT_STREQ(analyzeModeName(JitConfig::AnalyzeMode::Error), "error");
}

TEST(JitConfigEnvTest, ParsesPolicyAndWarnsWithoutCoercing) {
  setenv("PROTEUS_POLICY", "on", 1);
  std::vector<std::string> W;
  EXPECT_TRUE(JitConfig::fromEnvironment(&W).Policy);
  EXPECT_TRUE(W.empty());

  setenv("PROTEUS_POLICY", "off", 1);
  EXPECT_FALSE(JitConfig::fromEnvironment(&W).Policy);

  // An invalid value keeps the default, warns, and counts a config error.
  setenv("PROTEUS_POLICY", "auto", 1);
  W.clear();
  uint64_t ErrsBefore = 0;
  for (const auto &[K, V] : metrics::processRegistry().counterValues())
    if (K == "config.errors")
      ErrsBefore = V;
  EXPECT_FALSE(JitConfig::fromEnvironment(&W).Policy);
  ASSERT_EQ(W.size(), 1u);
  EXPECT_NE(W[0].find("PROTEUS_POLICY"), std::string::npos) << W[0];
  EXPECT_NE(W[0].find("off|on"), std::string::npos) << W[0];
  uint64_t ErrsAfter = 0;
  for (const auto &[K, V] : metrics::processRegistry().counterValues())
    if (K == "config.errors")
      ErrsAfter = V;
  EXPECT_EQ(ErrsAfter, ErrsBefore + 1);
  unsetenv("PROTEUS_POLICY");
}

// ---------------------------------------------------------------------------
// Static roofline classifier.
// ---------------------------------------------------------------------------

using pir::analysis::BottleneckClass;
using pir::analysis::KernelStaticProfile;
using pir::analysis::RegPressureFeedback;
using pir::analysis::RooflineReport;

/// Kernel with arithmetic intensity exactly 2 FLOPs/byte: one 8-byte load
/// and one 8-byte store against 32 chained FAdds per thread. AI = 2 sits
/// under amdgcn-sim's ridge (~3.26, packed FP32) and above nvptx-sim's
/// (~0.88) — the classification genuinely depends on the target.
Function *buildAi2Kernel(Module &M) {
  Context &Ctx = M.getContext();
  IRBuilder B(Ctx);
  Type *F64 = Ctx.getF64Ty();
  Function *F = M.createFunction("ai2", Ctx.getVoidTy(),
                                 {Ctx.getPtrTy(), Ctx.getPtrTy()},
                                 {"in", "out"}, FunctionKind::Kernel);
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  Value *Gtid = B.createGlobalThreadIdX();
  Value *V = B.createLoad(F64, B.createGep(F64, F->getArg(0), Gtid), "v");
  for (int K = 0; K != 32; ++K)
    V = B.createFAdd(V, B.getDouble(1.5));
  B.createStore(V, B.createGep(F64, F->getArg(1), Gtid));
  B.createRet();
  return F;
}

/// Kernel with one constant-trip loop holding a single FAdd, so the body's
/// FLOP contribution is exactly Trip.
Function *buildTripKernel(Module &M, uint32_t Trip) {
  Context &Ctx = M.getContext();
  IRBuilder B(Ctx);
  Type *F64 = Ctx.getF64Ty();
  Type *I32 = Ctx.getI32Ty();
  Function *F = M.createFunction("trip", Ctx.getVoidTy(), {Ctx.getPtrTy()},
                                 {"out"}, FunctionKind::Kernel);
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *Header = F->createBlock("header", Ctx.getVoidTy());
  BasicBlock *Body = F->createBlock("body", Ctx.getVoidTy());
  BasicBlock *Exit = F->createBlock("exit", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  Value *Gtid = B.createGlobalThreadIdX();
  B.createBr(Header);
  B.setInsertPoint(Header);
  PhiInst *I = B.createPhi(I32, "i");
  PhiInst *Acc = B.createPhi(F64, "acc");
  I->addIncoming(B.getInt32(0), Entry);
  Acc->addIncoming(B.getDouble(0.0), Entry);
  B.createCondBr(B.createICmp(ICmpPred::SLT, I,
                              B.getInt32(static_cast<int32_t>(Trip))),
                 Body, Exit);
  B.setInsertPoint(Body);
  Value *Acc2 = B.createFAdd(Acc, B.getDouble(1.5), "acc2");
  Value *I2 = B.createAdd(I, B.getInt32(1), "i2");
  I->addIncoming(I2, Body);
  Acc->addIncoming(Acc2, Body);
  B.createBr(Header);
  B.setInsertPoint(Exit);
  B.createStore(Acc, B.createGep(F64, F->getArg(0), Gtid));
  B.createRet();
  return F;
}

void expectProfilesEqual(const KernelStaticProfile &A,
                         const KernelStaticProfile &B) {
  EXPECT_DOUBLE_EQ(A.Flops, B.Flops);
  EXPECT_DOUBLE_EQ(A.IntOps, B.IntOps);
  EXPECT_DOUBLE_EQ(A.BytesLoaded, B.BytesLoaded);
  EXPECT_DOUBLE_EQ(A.BytesStored, B.BytesStored);
  EXPECT_DOUBLE_EQ(A.UniformBytesLoaded, B.UniformBytesLoaded);
  EXPECT_DOUBLE_EQ(A.UniformBytesStored, B.UniformBytesStored);
  EXPECT_DOUBLE_EQ(A.Transcendentals, B.Transcendentals);
  EXPECT_DOUBLE_EQ(A.Divides, B.Divides);
  EXPECT_DOUBLE_EQ(A.Atomics, B.Atomics);
  EXPECT_DOUBLE_EQ(A.Branches, B.Branches);
  EXPECT_DOUBLE_EQ(A.Barriers, B.Barriers);
  EXPECT_EQ(A.AllocaBytes, B.AllocaBytes);
  EXPECT_EQ(A.UnknownTripLoops, B.UnknownTripLoops);
}

TEST(RooflineTest, ProfileIsDeterministic) {
  KernelStaticProfile P1, P2;
  {
    Context Ctx;
    Module M(Ctx, "m");
    P1 = pir::analysis::computeStaticProfile(*buildDaxpyKernel(M));
  }
  {
    Context Ctx;
    Module M(Ctx, "m");
    P2 = pir::analysis::computeStaticProfile(*buildDaxpyKernel(M));
  }
  expectProfilesEqual(P1, P2);
}

TEST(RooflineTest, ArchSensitiveClassification) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildAi2Kernel(M);
  KernelStaticProfile P = pir::analysis::computeStaticProfile(*F);
  EXPECT_DOUBLE_EQ(P.Flops, 32.0);
  EXPECT_DOUBLE_EQ(P.BytesLoaded + P.BytesStored, 16.0);

  RooflineReport Amd =
      pir::analysis::classifyProfile(P, getAmdGcnSimTarget());
  RooflineReport Nv = pir::analysis::classifyProfile(P, getNvPtxSimTarget());
  EXPECT_DOUBLE_EQ(Amd.ArithmeticIntensity, 2.0);
  EXPECT_DOUBLE_EQ(Nv.ArithmeticIntensity, 2.0);
  // Same kernel, same intensity — opposite sides of the two ridges.
  EXPECT_GT(getAmdGcnSimTarget().ridgeFlopsPerByte(), 2.0 / 0.75);
  EXPECT_LT(getNvPtxSimTarget().ridgeFlopsPerByte(), 2.0 / 1.25);
  EXPECT_EQ(Amd.Class, BottleneckClass::MemoryBound) << Amd.Reason;
  EXPECT_EQ(Nv.Class, BottleneckClass::ComputeBound) << Nv.Reason;
}

TEST(RooflineTest, DaxpyIsMemoryBoundEverywhere) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildDaxpyKernel(M);
  for (const TargetInfo *T :
       {&getAmdGcnSimTarget(), &getNvPtxSimTarget()}) {
    RooflineReport R = pir::analysis::classifyKernel(*F, *T);
    EXPECT_EQ(R.Class, BottleneckClass::MemoryBound)
        << T->Name << ": " << R.Reason;
    EXPECT_LT(R.ArithmeticIntensity, 0.75 * T->ridgeFlopsPerByte());
  }
}

TEST(RooflineTest, ConstantLoopTripWeightsTheBody) {
  Context Ctx;
  Module M8(Ctx, "m8"), M16(Ctx, "m16");
  KernelStaticProfile P8 =
      pir::analysis::computeStaticProfile(*buildTripKernel(M8, 8));
  KernelStaticProfile P16 =
      pir::analysis::computeStaticProfile(*buildTripKernel(M16, 16));
  // The loop body holds exactly one FAdd, so doubling the constant trip
  // count adds exactly 8 weighted FLOPs.
  EXPECT_DOUBLE_EQ(P16.Flops - P8.Flops, 8.0);
  EXPECT_EQ(P8.UnknownTripLoops, 0u);
  EXPECT_EQ(P16.UnknownTripLoops, 0u);
}

TEST(RooflineTest, RegPressureFeedbackOverridesRoofline) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildAi2Kernel(M);
  KernelStaticProfile P = pir::analysis::computeStaticProfile(*F);

  RegPressureFeedback Spilled;
  Spilled.RegsUsed = 32;
  Spilled.SpillSlots = 2;
  Spilled.SpillLoads = 4;
  Spilled.SpillStores = 2;
  Spilled.RegisterBudget = 32;
  RooflineReport R = pir::analysis::classifyProfile(
      P, getAmdGcnSimTarget(), &Spilled);
  EXPECT_EQ(R.Class, BottleneckClass::RegPressureBound) << R.Reason;
  EXPECT_NE(R.Reason.find("spill"), std::string::npos) << R.Reason;

  // Saturating the budget without spilling is still pressure-bound.
  RegPressureFeedback Saturated;
  Saturated.RegsUsed = 64;
  Saturated.RegisterBudget = 64;
  EXPECT_EQ(pir::analysis::classifyProfile(P, getAmdGcnSimTarget(),
                                           &Saturated)
                .Class,
            BottleneckClass::RegPressureBound);

  // Comfortable allocation falls through to the roofline position.
  RegPressureFeedback Comfortable;
  Comfortable.RegsUsed = 16;
  Comfortable.RegisterBudget = 64;
  EXPECT_EQ(pir::analysis::classifyProfile(P, getAmdGcnSimTarget(),
                                           &Comfortable)
                .Class,
            BottleneckClass::MemoryBound);
}

TEST(RooflineTest, UnderfilledLaunchIsLatencyBound) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildAi2Kernel(M);
  const TargetInfo &T = getAmdGcnSimTarget();
  // 64 threads cannot fill 24 CUs x 64 lanes.
  RooflineReport Small =
      pir::analysis::classifyKernel(*F, T, nullptr, 64);
  EXPECT_EQ(Small.Class, BottleneckClass::LatencyBound) << Small.Reason;
  // A machine-filling launch classifies by its roofline position again.
  RooflineReport Big = pir::analysis::classifyKernel(
      *F, T, nullptr, static_cast<uint64_t>(T.WaveSize) * T.NumCUs * 8);
  EXPECT_EQ(Big.Class, BottleneckClass::MemoryBound) << Big.Reason;
}

TEST(RooflineTest, EmptyKernelPerformsNoModeledWork) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction("empty", Ctx.getVoidTy(), {}, {},
                                 FunctionKind::Kernel);
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  B.createRet();
  RooflineReport R =
      pir::analysis::classifyKernel(*F, getAmdGcnSimTarget());
  EXPECT_EQ(R.Class, BottleneckClass::LatencyBound);
  EXPECT_NE(R.Reason.find("no modeled work"), std::string::npos)
      << R.Reason;
  EXPECT_DOUBLE_EQ(R.ArithmeticIntensity, 0.0);
}

TEST(RooflineTest, RandomKernelsClassifyDeterministically) {
  // The classifier is a pure function of (IR, target): rebuilding the same
  // seeded kernel must reproduce the profile and the verdict exactly, on
  // both simulated targets, across many shapes.
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    KernelStaticProfile P1, P2;
    BottleneckClass C1[2], C2[2];
    {
      Context Ctx;
      std::unique_ptr<Module> M = buildRandomKernel(Ctx, Seed);
      Function *F = M->getFunction("rk");
      ASSERT_NE(F, nullptr);
      P1 = pir::analysis::computeStaticProfile(*F);
      C1[0] = pir::analysis::classifyProfile(P1, getAmdGcnSimTarget()).Class;
      C1[1] = pir::analysis::classifyProfile(P1, getNvPtxSimTarget()).Class;
    }
    {
      Context Ctx;
      std::unique_ptr<Module> M = buildRandomKernel(Ctx, Seed);
      Function *F = M->getFunction("rk");
      ASSERT_NE(F, nullptr);
      P2 = pir::analysis::computeStaticProfile(*F);
      C2[0] = pir::analysis::classifyProfile(P2, getAmdGcnSimTarget()).Class;
      C2[1] = pir::analysis::classifyProfile(P2, getNvPtxSimTarget()).Class;
    }
    expectProfilesEqual(P1, P2);
    EXPECT_EQ(C1[0], C2[0]) << "seed " << Seed;
    EXPECT_EQ(C1[1], C2[1]) << "seed " << Seed;
    EXPECT_STRNE(pir::analysis::bottleneckClassName(C1[0]), "");
  }
}

TEST(RooflineTest, ClassNamesRoundTrip) {
  for (BottleneckClass C :
       {BottleneckClass::MemoryBound, BottleneckClass::ComputeBound,
        BottleneckClass::RegPressureBound, BottleneckClass::LatencyBound}) {
    std::optional<BottleneckClass> Back =
        pir::analysis::parseBottleneckClass(
            pir::analysis::bottleneckClassName(C));
    ASSERT_TRUE(Back.has_value());
    EXPECT_EQ(*Back, C);
  }
  EXPECT_FALSE(pir::analysis::parseBottleneckClass("Bound").has_value());
}

// ---------------------------------------------------------------------------
// Cross-stream critical path.
// ---------------------------------------------------------------------------

TEST(CriticalPathTest, CrossLaneGateAndSlack) {
  using proteus::analysis::TimelineSpan;
  // Lane 0: A [0,100) then B [100,150). Lane 1: C [110,310) — gated by A
  // (the latest span elsewhere finishing before C starts). Critical path
  // is A -> C = 300 ns; B carries 150 ns of slack.
  std::vector<TimelineSpan> Spans = {
      {"A", 1, 0, 100},
      {"B", 1, 100, 50},
      {"C", 2, 110, 200},
  };
  proteus::analysis::CriticalPathReport R =
      proteus::analysis::analyzeTimeline(Spans);
  EXPECT_EQ(R.CriticalPathNs, 300u);
  EXPECT_EQ(R.MakespanNs, 310u);
  ASSERT_EQ(R.Spans.size(), 3u);
  for (const proteus::analysis::SpanCriticality &S : R.Spans) {
    if (S.Span.Name == "B") {
      EXPECT_EQ(S.SlackNs, 150u);
      EXPECT_FALSE(S.OnCriticalPath);
    } else {
      EXPECT_EQ(S.SlackNs, 0u) << S.Span.Name;
      EXPECT_TRUE(S.OnCriticalPath) << S.Span.Name;
    }
  }
  std::vector<std::string> Critical = R.criticalNames();
  ASSERT_EQ(Critical.size(), 2u);
  EXPECT_EQ(Critical[0], "C") << "sorted by critical nanoseconds";
  EXPECT_EQ(Critical[1], "A");
}

TEST(CriticalPathTest, SingleLaneIsFullyCritical) {
  using proteus::analysis::TimelineSpan;
  std::vector<TimelineSpan> Spans = {
      {"k1", 7, 0, 40},
      {"k2", 7, 50, 60},
  };
  proteus::analysis::CriticalPathReport R =
      proteus::analysis::analyzeTimeline(Spans);
  // FIFO lane order chains the spans even across the idle gap.
  EXPECT_EQ(R.CriticalPathNs, 100u);
  EXPECT_EQ(R.MakespanNs, 110u);
  for (const proteus::analysis::SpanCriticality &S : R.Spans)
    EXPECT_TRUE(S.OnCriticalPath) << S.Span.Name;
  // Every nanosecond of the chain is critical, split across the two names.
  ASSERT_EQ(R.ByName.size(), 2u);
  double FractionSum = 0;
  for (const proteus::analysis::NameCriticality &N : R.ByName) {
    EXPECT_EQ(N.CriticalNs, N.TotalNs) << N.Name;
    FractionSum += N.CriticalityFraction;
  }
  EXPECT_DOUBLE_EQ(FractionSum, 1.0);
}

TEST(CriticalPathTest, ParsesOnlyDeviceLaneCompleteEvents) {
  const uint32_t Lane0 = trace::LaneTidBase;
  const uint32_t Lane1 = trace::LaneTidBase + 1;
  std::string Json =
      "{\"traceEvents\":["
      "{\"name\":\"k1\",\"cat\":\"lane\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
      std::to_string(Lane0) +
      ",\"ts\":0,\"dur\":100},"
      "{\"name\":\"k2\",\"cat\":\"lane\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
      std::to_string(Lane1) +
      ",\"ts\":100.5,\"dur\":50},"
      "{\"name\":\"host\",\"cat\":\"jit\",\"ph\":\"X\",\"pid\":1,"
      "\"tid\":5,\"ts\":0,\"dur\":500},"
      "{\"name\":\"mark\",\"ph\":\"i\",\"pid\":1,\"tid\":" +
      std::to_string(Lane0) + ",\"ts\":10}"
      "],\"otherData\":{}}";
  std::vector<proteus::analysis::TimelineSpan> Spans;
  std::string Error;
  ASSERT_TRUE(proteus::analysis::parseTraceLanes(Json, Spans, Error))
      << Error;
  // Host spans and instant events are filtered; microseconds became
  // nanoseconds.
  ASSERT_EQ(Spans.size(), 2u);
  EXPECT_EQ(Spans[0].Name, "k1");
  EXPECT_EQ(Spans[0].StartNs, 0u);
  EXPECT_EQ(Spans[0].DurNs, 100000u);
  EXPECT_EQ(Spans[1].Name, "k2");
  EXPECT_EQ(Spans[1].StartNs, 100500u);
  EXPECT_EQ(Spans[1].DurNs, 50000u);

  ASSERT_FALSE(proteus::analysis::parseTraceLanes("not json", Spans, Error));
  EXPECT_FALSE(Error.empty());
}

} // namespace
