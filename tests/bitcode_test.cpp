//===- bitcode_test.cpp - bitcode serialization tests ---------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "bitcode/Bitcode.h"
#include "ir/Context.h"
#include "ir/IRPrinter.h"

#include <gtest/gtest.h>

using namespace pir;
using namespace proteus;
using namespace proteus_test;

namespace {

void expectBitcodeRoundTrip(Module &M) {
  std::vector<uint8_t> Bytes = writeBitcode(M);
  Context Ctx2;
  BitcodeReadResult R = readBitcode(Ctx2, Bytes);
  ASSERT_TRUE(R) << R.Error;
  expectValid(*R.M);
  EXPECT_EQ(printModule(M), printModule(*R.M));
  // Bitcode must be deterministic: same module, same bytes.
  EXPECT_EQ(Bytes, writeBitcode(*R.M));
}

TEST(BitcodeTest, RoundTripDaxpy) {
  Context Ctx;
  Module M(Ctx, "m");
  buildDaxpyKernel(M);
  expectBitcodeRoundTrip(M);
}

TEST(BitcodeTest, RoundTripLoopsPhisGlobalsCalls) {
  Context Ctx;
  Module M(Ctx, "m");
  std::vector<uint8_t> Init(8, 0x5A);
  M.createGlobal("g", Ctx.getI64Ty(), 1, Init);
  buildLoopSumKernel(M);

  IRBuilder B(Ctx);
  Function *Dev = M.createFunction("helper", Ctx.getF64Ty(),
                                   {Ctx.getF64Ty()}, {"x"},
                                   FunctionKind::Device);
  Dev->setAlwaysInline(true);
  B.setInsertPoint(Dev->createBlock("entry", Ctx.getVoidTy()));
  B.createRet(B.createSqrt(Dev->getArg(0)));

  Function *K = M.createFunction("caller", Ctx.getVoidTy(), {Ctx.getPtrTy()},
                                 {"p"}, FunctionKind::Kernel);
  K->setLaunchBounds(LaunchBounds{128, 2});
  B.setInsertPoint(K->createBlock("entry", Ctx.getVoidTy()));
  Value *G = M.getGlobal("g");
  Value *GI = B.createLoad(Ctx.getI64Ty(), G);
  Value *GF = B.createSIToFP(GI, Ctx.getF64Ty());
  Value *R = B.createCall(Dev, {GF});
  B.createStore(R, K->getArg(0));
  B.createRet();

  expectBitcodeRoundTrip(M);
}

TEST(BitcodeTest, PreservesAttributes) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildDaxpyKernel(M);
  F->setLaunchBounds(LaunchBounds{512, 4});

  std::vector<uint8_t> Bytes = writeBitcode(M);
  Context Ctx2;
  BitcodeReadResult R = readBitcode(Ctx2, Bytes);
  ASSERT_TRUE(R) << R.Error;
  Function *F2 = R.M->getFunction("daxpy");
  ASSERT_NE(F2, nullptr);
  ASSERT_TRUE(F2->getLaunchBounds().has_value());
  EXPECT_EQ(F2->getLaunchBounds()->MaxThreadsPerBlock, 512u);
  EXPECT_EQ(F2->getLaunchBounds()->MinBlocksPerProcessor, 4u);
  ASSERT_TRUE(F2->getJitAnnotation().has_value());
  EXPECT_EQ(F2->getJitAnnotation()->ArgIndices,
            (std::vector<uint32_t>{1, 4}));
  EXPECT_TRUE(F2->isKernel());
}

TEST(BitcodeTest, RejectsBadMagic) {
  Context Ctx;
  std::vector<uint8_t> Junk = {1, 2, 3, 4, 5, 6, 7, 8};
  BitcodeReadResult R = readBitcode(Ctx, Junk);
  EXPECT_FALSE(R);
  EXPECT_NE(R.Error.find("magic"), std::string::npos);
}

TEST(BitcodeTest, RejectsTruncation) {
  Context Ctx;
  Module M(Ctx, "m");
  buildLoopSumKernel(M);
  std::vector<uint8_t> Bytes = writeBitcode(M);
  // Any truncation point must fail cleanly, never crash.
  for (size_t Cut = 0; Cut < Bytes.size(); Cut += 7) {
    std::vector<uint8_t> Truncated(Bytes.begin(),
                                   Bytes.begin() + static_cast<long>(Cut));
    Context CtxN;
    BitcodeReadResult R = readBitcode(CtxN, Truncated);
    EXPECT_FALSE(R) << "cut at " << Cut;
  }
}

TEST(BitcodeTest, RejectsCorruptOperandSlots) {
  Context Ctx;
  Module M(Ctx, "m");
  buildDaxpyKernel(M);
  std::vector<uint8_t> Bytes = writeBitcode(M);
  // Flip bytes across the body region; reader must fail or produce a module
  // that still verifies — never crash or corrupt memory.
  for (size_t Pos = Bytes.size() / 2; Pos < Bytes.size(); Pos += 11) {
    std::vector<uint8_t> Mutated = Bytes;
    Mutated[Pos] ^= 0xFF;
    Context CtxN;
    BitcodeReadResult R = readBitcode(CtxN, Mutated);
    if (R) {
      // Accept only structurally valid results.
      VerifyResult V = verifyModule(*R.M);
      (void)V; // verification may fail; the point is memory safety
    }
  }
  SUCCEED();
}

TEST(BitcodeTest, SizeIsCompact) {
  Context Ctx;
  Module M(Ctx, "m");
  buildDaxpyKernel(M);
  buildLoopSumKernel(M);
  std::vector<uint8_t> Bytes = writeBitcode(M);
  // The paper reports KB-scale caches; our bitcode for two small kernels
  // should be well under 4KB.
  EXPECT_LT(Bytes.size(), 4096u);
  EXPECT_GT(Bytes.size(), 100u);
}

} // namespace
