//===- jit_concurrency_test.cpp - async JIT pipeline battery ---------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Concurrency battery for the asynchronous JIT pipeline: many threads
// hammer one JitRuntime with a mix of kernels and specializations, in each
// AsyncMode, and the results must be bit-identical to a single-threaded
// synchronous baseline. The in-flight compilation table must deduplicate
// concurrent misses to exactly one compilation per distinct specialization
// key. Designed to run under -DPROTEUS_SANITIZE=thread (tools/ci_tsan.sh).
//
// gtest assertions are not thread-safe: worker threads only record results;
// all checking happens on the main thread after join.
//
// Configs are seeded from the environment so the CI battery can re-run the
// whole file with the kernel sanitizer and per-pass verification on the hot
// path (PROTEUS_ANALYZE=error PROTEUS_VERIFY_EACH=1): every kernel here is
// lint-clean, so any rejection under contention is a sanitizer race.
//
//===----------------------------------------------------------------------===//

#include "RandomKernel.h"

#include "ir/Context.h"
#include "ir/OpSemantics.h"
#include "jit/Program.h"
#include "support/FileSystem.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace pir;
using namespace proteus;
using namespace proteus::gpu;
using namespace proteus_test;

namespace {

struct TempDir {
  std::string Path;
  TempDir() : Path(fs::makeTempDirectory("proteus-conc")) {}
  ~TempDir() { fs::removeAllFiles(Path); }
};

constexpr unsigned NumKernels = 5;
constexpr unsigned NumSpecs = 3;
constexpr unsigned NumThreads = 8;
constexpr unsigned Repeats = 3; // each thread launches every item this often
constexpr uint32_t N = 64;      // elements per buffer

struct WorkItem {
  std::string Symbol;
  double Sf;
  int32_t Si;
  unsigned OutIndex; // which output buffer this (kernel, spec) pair owns
};

std::vector<WorkItem> makeWorkItems() {
  std::vector<WorkItem> Items;
  for (unsigned K = 0; K != NumKernels; ++K)
    for (unsigned S = 0; S != NumSpecs; ++S)
      Items.push_back(WorkItem{"rk" + std::to_string(K), 1.25 + 0.5 * S,
                               static_cast<int32_t>(3 + S),
                               K * NumSpecs + S});
  return Items;
}

/// One program holding NumKernels distinct random kernels.
std::unique_ptr<Module> buildProgram(Context &Ctx) {
  auto M = std::make_unique<Module>(Ctx, "conc_app");
  for (unsigned K = 0; K != NumKernels; ++K)
    buildRandomKernelInto(*M, /*Seed=*/1000 + 17 * K,
                          "rk" + std::to_string(K));
  return M;
}

/// Shared per-run state: device, runtime, program, buffers.
struct Harness {
  Device Dev;
  JitRuntime Jit;
  LoadedProgram LP;
  DevicePtr In = 0;
  std::vector<DevicePtr> Outs;

  Harness(const CompiledProgram &Prog, GpuArch Arch, const JitConfig &JC)
      : Dev(getTarget(Arch), 1ull << 24), Jit(Dev, Prog.ModuleId, JC),
        LP(Dev, Prog, &Jit) {
    EXPECT_TRUE(LP.ok()) << LP.error();
    EXPECT_EQ(gpuMalloc(Dev, &In, N * 8), GpuError::Success);
    std::vector<double> HIn(N);
    for (uint32_t I = 0; I != N; ++I)
      HIn[I] = 0.25 * I - 3.0;
    gpuMemcpyHtoD(Dev, In, HIn.data(), N * 8);
    Outs.resize(NumKernels * NumSpecs);
    for (DevicePtr &P : Outs)
      EXPECT_EQ(gpuMalloc(Dev, &P, N * 8), GpuError::Success);
  }

  GpuError launch(const WorkItem &W, std::string *Err) {
    std::vector<KernelArg> Args = {{In},
                                   {Outs[W.OutIndex]},
                                   {N},
                                   {sem::boxF64(W.Sf)},
                                   {static_cast<uint64_t>(
                                       static_cast<uint32_t>(W.Si))}};
    return LP.launch(W.Symbol, Dim3{2, 1, 1}, Dim3{32, 1, 1}, Args, Err);
  }

  std::vector<uint8_t> readOut(unsigned Index) {
    std::vector<uint8_t> Bytes(N * 8);
    gpuMemcpyDtoH(Dev, Bytes.data(), Outs[Index], N * 8);
    return Bytes;
  }
};

/// Single-threaded synchronous reference execution. Async mode is forced
/// to Sync regardless of the environment (the CI battery re-runs this file
/// with PROTEUS_ASYNC set) so the baseline stays a synchronous reference;
/// tiering may still be enabled, in which case the drain below lets every
/// background Tier-1 promotion land before the compile count is checked.
std::vector<std::vector<uint8_t>> baselineResults(const CompiledProgram &Prog,
                                                  GpuArch Arch) {
  JitConfig JC = JitConfig::fromEnvironment();
  JC.UsePersistentCache = false;
  JC.Async = JitConfig::AsyncMode::Sync;
  Harness H(Prog, Arch, JC);
  std::vector<std::vector<uint8_t>> Out;
  for (const WorkItem &W : makeWorkItems()) {
    std::string Err;
    EXPECT_EQ(H.launch(W, &Err), GpuError::Success) << Err;
  }
  H.Jit.drain();
  EXPECT_EQ(H.Jit.stats().Compilations, uint64_t(NumKernels * NumSpecs));
  for (unsigned I = 0; I != NumKernels * NumSpecs; ++I)
    Out.push_back(H.readOut(I));
  return Out;
}

/// Hammers one runtime from NumThreads threads; checks results, error-free
/// execution and exactly one compilation per distinct specialization key.
void runConcurrent(const CompiledProgram &Prog, GpuArch Arch,
                   JitConfig::AsyncMode Mode,
                   const std::vector<std::vector<uint8_t>> &Expected) {
  SCOPED_TRACE(std::string("mode=") + asyncModeName(Mode));
  JitConfig JC = JitConfig::fromEnvironment();
  JC.UsePersistentCache = false;
  JC.Async = Mode;
  JC.AsyncWorkers = 4;
  Harness H(Prog, Arch, JC);

  const std::vector<WorkItem> Items = makeWorkItems();
  std::atomic<unsigned> Ready{0};
  std::atomic<bool> Go{false};
  std::vector<std::string> ThreadErrors(NumThreads);

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      ++Ready;
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      // Each thread walks the items from a different offset so distinct
      // specializations race with duplicate ones.
      for (unsigned R = 0; R != Repeats; ++R)
        for (unsigned I = 0; I != Items.size(); ++I) {
          const WorkItem &W = Items[(I + T * 7 + R) % Items.size()];
          std::string Err;
          if (H.launch(W, &Err) != GpuError::Success) {
            ThreadErrors[T] = "@" + W.Symbol + ": " + Err;
            return;
          }
        }
    });

  while (Ready.load() != NumThreads)
    std::this_thread::yield();
  Go.store(true, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();
  for (unsigned T = 0; T != NumThreads; ++T)
    EXPECT_TRUE(ThreadErrors[T].empty())
        << "thread " << T << " failed: " << ThreadErrors[T];

  H.Jit.drain(); // join background compiles before reading stats

  JitRuntimeStats S = H.Jit.stats();
  EXPECT_EQ(S.Compilations, uint64_t(NumKernels * NumSpecs))
      << "in-flight dedup must yield one compile per distinct key";
  EXPECT_EQ(S.Launches,
            uint64_t(NumThreads) * Repeats * Items.size());
  if (Mode == JitConfig::AsyncMode::Sync) {
    EXPECT_EQ(S.AsyncCompiles, 0u);
    EXPECT_EQ(S.FallbackLaunches, 0u);
  } else {
    EXPECT_EQ(S.AsyncCompiles, uint64_t(NumKernels * NumSpecs));
  }
  if (Mode != JitConfig::AsyncMode::Fallback) {
    EXPECT_EQ(S.FallbackLaunches, 0u);
  }

  // Bit-identical to the single-threaded synchronous baseline — in
  // Fallback mode this also proves the generic binary computes the same
  // function as the specialized one.
  for (unsigned I = 0; I != Items.size(); ++I)
    EXPECT_EQ(H.readOut(I), Expected[I]) << "output " << I << " diverged";

  // After everything is compiled and loaded, launches take the fast path:
  // no new compiles, no fallbacks, no waits.
  uint64_t FallbacksBefore = S.FallbackLaunches;
  for (const WorkItem &W : Items) {
    std::string Err;
    EXPECT_EQ(H.launch(W, &Err), GpuError::Success) << Err;
  }
  JitRuntimeStats S2 = H.Jit.stats();
  EXPECT_EQ(S2.Compilations, uint64_t(NumKernels * NumSpecs));
  EXPECT_EQ(S2.FallbackLaunches, FallbacksBefore)
      << "steady state must use the specialized binaries";
}

TEST(JitConcurrencyTest, AllModesMatchSyncBaseline) {
  Context Ctx;
  std::unique_ptr<Module> M = buildProgram(Ctx);
  AotOptions AO;
  AO.Arch = GpuArch::AmdGcnSim;
  AO.EnableProteusExtensions = true;
  CompiledProgram Prog = aotCompile(*M, AO);

  std::vector<std::vector<uint8_t>> Expected =
      baselineResults(Prog, GpuArch::AmdGcnSim);
  ASSERT_EQ(Expected.size(), size_t(NumKernels * NumSpecs));

  for (JitConfig::AsyncMode Mode :
       {JitConfig::AsyncMode::Sync, JitConfig::AsyncMode::Block,
        JitConfig::AsyncMode::Fallback})
    runConcurrent(Prog, GpuArch::AmdGcnSim, Mode, Expected);
}

TEST(JitConcurrencyTest, BlockModeOnNvPtxSim) {
  // The NVIDIA path reads bitcode back from device memory on the launch
  // thread — exercise that flow concurrently too.
  Context Ctx;
  std::unique_ptr<Module> M = buildProgram(Ctx);
  AotOptions AO;
  AO.Arch = GpuArch::NvPtxSim;
  AO.EnableProteusExtensions = true;
  CompiledProgram Prog = aotCompile(*M, AO);

  std::vector<std::vector<uint8_t>> Expected =
      baselineResults(Prog, GpuArch::NvPtxSim);
  runConcurrent(Prog, GpuArch::NvPtxSim, JitConfig::AsyncMode::Block,
                Expected);
}

TEST(JitConcurrencyTest, FallbackHotSwapsToSpecializedBinary) {
  Context Ctx;
  std::unique_ptr<Module> M = buildProgram(Ctx);
  AotOptions AO;
  AO.Arch = GpuArch::AmdGcnSim;
  AO.EnableProteusExtensions = true;
  CompiledProgram Prog = aotCompile(*M, AO);

  JitConfig JC = JitConfig::fromEnvironment();
  JC.UsePersistentCache = false;
  JC.Async = JitConfig::AsyncMode::Fallback;
  JC.AsyncWorkers = 1;
  Harness H(Prog, GpuArch::AmdGcnSim, JC);

  WorkItem W{"rk0", 2.0, 4, 0};
  std::string Err;
  // Cold launch: served by the generic binary or (if the compile won the
  // race) the specialized one — correct either way, and never blocking on
  // the whole pipeline.
  ASSERT_EQ(H.launch(W, &Err), GpuError::Success) << Err;
  H.Jit.drain();
  std::vector<uint8_t> AfterCold = H.readOut(0);

  // Warm launch: the specialized binary must now serve, with no further
  // fallback launches and no recompilation.
  JitRuntimeStats S1 = H.Jit.stats();
  ASSERT_EQ(H.launch(W, &Err), GpuError::Success) << Err;
  JitRuntimeStats S2 = H.Jit.stats();
  EXPECT_EQ(S2.FallbackLaunches, S1.FallbackLaunches);
  EXPECT_EQ(S2.Compilations, S1.Compilations);
  EXPECT_EQ(S2.Compilations, 1u);
  EXPECT_EQ(H.readOut(0), AfterCold) << "hot swap changed results";
}

TEST(JitConcurrencyTest, PersistentCacheWritesAreConcurrencySafe) {
  // All three modes writing cache-jit-<hash>.o concurrently into one
  // directory must produce only valid entries (atomic rename, no torn
  // files) that a fresh runtime can reuse without recompiling.
  Context Ctx;
  std::unique_ptr<Module> M = buildProgram(Ctx);
  AotOptions AO;
  AO.Arch = GpuArch::AmdGcnSim;
  AO.EnableProteusExtensions = true;
  CompiledProgram Prog = aotCompile(*M, AO);

  TempDir Tmp;
  JitConfig JC = JitConfig::fromEnvironment();
  JC.CacheDir = Tmp.Path;
  JC.Async = JitConfig::AsyncMode::Block;
  JC.AsyncWorkers = 4;
  {
    Harness H(Prog, GpuArch::AmdGcnSim, JC);
    const std::vector<WorkItem> Items = makeWorkItems();
    std::vector<std::string> ThreadErrors(NumThreads);
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T != NumThreads; ++T)
      Threads.emplace_back([&, T] {
        for (unsigned I = 0; I != Items.size(); ++I) {
          std::string Err;
          if (H.launch(Items[(I + T) % Items.size()], &Err) !=
              GpuError::Success) {
            ThreadErrors[T] = Err;
            return;
          }
        }
      });
    for (std::thread &T : Threads)
      T.join();
    for (const std::string &E : ThreadErrors)
      EXPECT_TRUE(E.empty()) << E;
    H.Jit.drain();
  }
  // No stale temp files may remain.
  for (const std::string &Name : fs::listFiles(Tmp.Path))
    EXPECT_EQ(Name.find(".tmp-"), std::string::npos) << Name;

  // Fresh runtime, warm disk: every entry must load (0 compilations).
  // The warm config is deliberately default (sync, untiered) so the reuse
  // check is deterministic — but the fleet routing must follow the
  // environment: when the battery points PROTEUS_CACHE_REMOTE at a cache
  // daemon, the storm above published into the daemon's store, and a warm
  // runtime that skipped the daemon would recompile everything.
  JitConfig Env = JitConfig::fromEnvironment();
  JitConfig Warm;
  Warm.CacheDir = Tmp.Path;
  Warm.CacheRemote = Env.CacheRemote;
  Warm.CacheSocket = Env.CacheSocket;
  Warm.Limits.Shards = Env.Limits.Shards;
  Harness H2(Prog, GpuArch::AmdGcnSim, Warm);
  for (const WorkItem &W : makeWorkItems()) {
    std::string Err;
    EXPECT_EQ(H2.launch(W, &Err), GpuError::Success) << Err;
  }
  EXPECT_EQ(H2.Jit.stats().Compilations, 0u);
  EXPECT_EQ(H2.Jit.cache().stats().CorruptPersistentEntries, 0u);
}

} // namespace
