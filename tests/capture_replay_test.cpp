//===- capture_replay_test.cpp - capture/replay differential suite --------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The capture/replay determinism contract, end to end:
//
//  * artifact serialization round-trips every field and rejects truncated
//    or corrupted inputs with precise errors;
//  * PROTEUS_CAPTURE=on records exactly one self-contained artifact per
//    distinct launch shape, counted in the runtime's metrics registry
//    (capture_pressure_test covers the dedup and capture-all accounting);
//  * property suite: capture -> replay over generated random kernels
//    (tests/RandomKernel.h, >= 64 fixed seeds across both simulated
//    architectures) is byte-identical with a matching specialization hash.
//    PROTEUS_FUZZ_ITERS widens the sweep beyond the quick-mode default;
//  * replay honors a persistent cache (warm replays compile nothing) and
//    stays byte-identical under tier and analyze pipeline overrides;
//  * the capture environment knobs follow the warn-don't-coerce contract:
//    invalid values fall back to defaults and are counted as config errors.
//
//===----------------------------------------------------------------------===//

#include "RandomKernel.h"

#include "capture/Artifact.h"
#include "capture/Capture.h"
#include "codegen/Target.h"
#include "ir/Context.h"
#include "ir/OpSemantics.h"
#include "jit/Program.h"
#include "jit/Replay.h"
#include "support/FileSystem.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

using namespace pir;
using namespace proteus;
using namespace proteus::gpu;
using namespace proteus_test;

namespace {

constexpr uint32_t N = 32; // elements / threads per random kernel

/// Quick mode runs the fixed 64-seed corpus; PROTEUS_FUZZ_ITERS widens it.
unsigned fuzzIterations() {
  if (const char *E = std::getenv("PROTEUS_FUZZ_ITERS")) {
    unsigned V = static_cast<unsigned>(std::strtoul(E, nullptr, 10));
    if (V > 0)
      return V;
  }
  return 64;
}

uint64_t counterValue(const metrics::Registry &R, const std::string &Name) {
  for (const auto &[K, V] : R.counterValues())
    if (K == Name)
      return V;
  return 0;
}

/// Captures one launch of the seed's random kernel through a fully
/// capture-enabled JitRuntime and returns the recorded artifact.
std::optional<capture::CaptureArtifact>
captureRandomKernel(uint64_t Seed, GpuArch Arch, std::string *FailReason) {
  Context Ctx;
  Module M(Ctx, "capture" + std::to_string(Seed));
  buildRandomKernelInto(M, Seed);

  AotOptions AO;
  AO.Arch = Arch;
  AO.EnableProteusExtensions = true;
  CompiledProgram Prog = aotCompile(M, AO);

  std::string Dir = fs::makeTempDirectory("proteus-capture-test");
  JitConfig JC;
  JC.UsePersistentCache = false;
  JC.Capture = true;
  JC.CaptureDir = Dir;

  std::optional<capture::CaptureArtifact> Artifact;
  {
    Device Dev(getTarget(Arch), 1 << 22);
    JitRuntime Jit(Dev, Prog.ModuleId, JC);
    LoadedProgram LP(Dev, Prog, &Jit);
    if (!LP.ok()) {
      *FailReason = "load: " + LP.error();
      fs::removeAllFiles(Dir);
      return std::nullopt;
    }
    DevicePtr In = 0, Out = 0;
    gpuMalloc(Dev, &In, N * sizeof(double));
    gpuMalloc(Dev, &Out, N * sizeof(double));
    std::vector<double> Init(N);
    Rng R(Seed ^ 0x5eed);
    for (uint32_t I = 0; I != N; ++I)
      Init[I] = R.unit() * 8.0 - 4.0;
    gpuMemcpyHtoD(Dev, In, Init.data(), N * sizeof(double));
    Rng AR(Seed ^ 0xa59);
    std::vector<KernelArg> Args = {{In},
                                   {Out},
                                   {N},
                                   {sem::boxF64(AR.unit() * 3.0)},
                                   {AR.below(1000)}};
    std::string Err;
    if (LP.launch("rk", Dim3{1, 1, 1}, Dim3{N, 1, 1}, Args, &Err) !=
        GpuError::Success) {
      *FailReason = "launch: " + Err;
      fs::removeAllFiles(Dir);
      return std::nullopt;
    }
    Jit.drain();

    EXPECT_EQ(counterValue(Jit.metricsRegistry(), "capture.records"), 1u);
    EXPECT_EQ(counterValue(Jit.metricsRegistry(), "capture.artifacts"), 1u);
    EXPECT_EQ(counterValue(Jit.metricsRegistry(), "capture.drops"), 0u);
  }

  std::vector<std::string> Files = fs::listFiles(Dir);
  if (Files.size() != 1) {
    *FailReason =
        "expected one artifact, found " + std::to_string(Files.size());
    fs::removeAllFiles(Dir);
    return std::nullopt;
  }
  std::string Error;
  Artifact = capture::readArtifactFile(Dir + "/" + Files[0], &Error);
  fs::removeAllFiles(Dir);
  if (!Artifact)
    *FailReason = "read: " + Error;
  return Artifact;
}

// ---------------------------------------------------------------------------
// Artifact serialization.
// ---------------------------------------------------------------------------

capture::CaptureArtifact sampleArtifact() {
  capture::CaptureArtifact A;
  A.ModuleId = 0x1122334455667788ull;
  A.KernelSymbol = "daxpy";
  A.Arch = GpuArch::NvPtxSim;
  A.Grid = Dim3{4, 2, 1};
  A.Block = Dim3{64, 1, 1};
  A.ArgBits = {1, 2, 3, 0xffffffffffffffffull};
  A.AnnotatedArgs = {1, 4};
  A.EnableRCF = true;
  A.EnableLaunchBounds = false;
  A.TierMode = true;
  A.SpecializationHash = 0xdeadbeefcafef00dull;
  A.PipelineFingerprint = 0x0123456789abcdefull;
  A.DeviceMemoryBytes = 1 << 20;
  A.Bitcode = {9, 8, 7, 6, 5};
  A.Globals = {{"lut", 4096}, {"cfg", 8192}};
  A.Regions = {{64, {1, 2, 3, 4}, {4, 3, 2, 1}}, {256, {0}, {9}}};
  return A;
}

TEST(ArtifactFormatTest, SerializationRoundTripsEveryField) {
  capture::CaptureArtifact A = sampleArtifact();
  std::vector<uint8_t> Bytes = capture::serializeArtifact(A);

  capture::CaptureArtifact B;
  std::string Error;
  ASSERT_TRUE(capture::deserializeArtifact(Bytes, B, &Error)) << Error;
  EXPECT_EQ(B.ModuleId, A.ModuleId);
  EXPECT_EQ(B.KernelSymbol, A.KernelSymbol);
  EXPECT_EQ(B.Arch, A.Arch);
  EXPECT_EQ(B.Grid.X, A.Grid.X);
  EXPECT_EQ(B.Grid.Y, A.Grid.Y);
  EXPECT_EQ(B.Block.X, A.Block.X);
  EXPECT_EQ(B.ArgBits, A.ArgBits);
  EXPECT_EQ(B.AnnotatedArgs, A.AnnotatedArgs);
  EXPECT_EQ(B.EnableRCF, A.EnableRCF);
  EXPECT_EQ(B.EnableLaunchBounds, A.EnableLaunchBounds);
  EXPECT_EQ(B.TierMode, A.TierMode);
  EXPECT_EQ(B.SpecializationHash, A.SpecializationHash);
  EXPECT_EQ(B.PipelineFingerprint, A.PipelineFingerprint);
  EXPECT_EQ(B.DeviceMemoryBytes, A.DeviceMemoryBytes);
  EXPECT_EQ(B.Bitcode, A.Bitcode);
  ASSERT_EQ(B.Globals.size(), 2u);
  EXPECT_EQ(B.Globals[0].Symbol, "lut");
  EXPECT_EQ(B.Globals[1].Address, 8192u);
  ASSERT_EQ(B.Regions.size(), 2u);
  EXPECT_EQ(B.Regions[0].Address, 64u);
  EXPECT_EQ(B.Regions[0].PreBytes, (std::vector<uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(B.Regions[0].PostBytes, (std::vector<uint8_t>{4, 3, 2, 1}));

  // Serialization is deterministic: same artifact, same bytes.
  EXPECT_EQ(capture::serializeArtifact(B), Bytes);
}

TEST(ArtifactFormatTest, RejectsTruncationAtEveryLength) {
  std::vector<uint8_t> Bytes = capture::serializeArtifact(sampleArtifact());
  capture::CaptureArtifact Out;
  for (size_t Len = 0; Len < Bytes.size(); ++Len) {
    std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + Len);
    std::string Error;
    EXPECT_FALSE(capture::deserializeArtifact(Cut, Out, &Error))
        << "length " << Len;
    EXPECT_FALSE(Error.empty()) << "length " << Len;
  }
}

TEST(ArtifactFormatTest, RejectsCorruptionWithPreciseErrors) {
  std::vector<uint8_t> Bytes = capture::serializeArtifact(sampleArtifact());
  capture::CaptureArtifact Out;
  std::string Error;

  std::vector<uint8_t> BadMagic = Bytes;
  BadMagic[0] = 'X';
  EXPECT_FALSE(capture::deserializeArtifact(BadMagic, Out, &Error));
  EXPECT_NE(Error.find("bad magic"), std::string::npos) << Error;

  std::vector<uint8_t> BadVersion = Bytes;
  BadVersion[4] = 99;
  EXPECT_FALSE(capture::deserializeArtifact(BadVersion, Out, &Error));
  EXPECT_NE(Error.find("unsupported artifact version"), std::string::npos)
      << Error;

  // Flip one payload byte: the integrity hash must catch it.
  std::vector<uint8_t> Flipped = Bytes;
  Flipped.back() ^= 0x40;
  EXPECT_FALSE(capture::deserializeArtifact(Flipped, Out, &Error));
  EXPECT_NE(Error.find("integrity hash"), std::string::npos) << Error;

  // Trailing garbage after the framed payload is rejected too.
  std::vector<uint8_t> Padded = Bytes;
  Padded.push_back(0);
  EXPECT_FALSE(capture::deserializeArtifact(Padded, Out, &Error));
}

// ---------------------------------------------------------------------------
// End-to-end capture.
// ---------------------------------------------------------------------------

TEST(CaptureTest, RecordsOneSelfContainedArtifactPerLaunch) {
  std::string Fail;
  std::optional<capture::CaptureArtifact> A =
      captureRandomKernel(11, GpuArch::AmdGcnSim, &Fail);
  ASSERT_TRUE(A) << Fail;
  EXPECT_EQ(A->KernelSymbol, "rk");
  EXPECT_EQ(A->Arch, GpuArch::AmdGcnSim);
  EXPECT_EQ(A->ArgBits.size(), 5u);
  EXPECT_EQ(A->AnnotatedArgs, (std::vector<uint32_t>{4, 5}));
  EXPECT_EQ(A->Grid.X, 1u);
  EXPECT_EQ(A->Block.X, N);
  EXPECT_FALSE(A->Bitcode.empty());
  EXPECT_NE(A->SpecializationHash, 0u);
  EXPECT_NE(A->PipelineFingerprint, 0u);
  // Both pointer args resolve to captured regions with both-way images.
  ASSERT_EQ(A->Regions.size(), 2u);
  for (const capture::MemoryRegion &R : A->Regions) {
    EXPECT_EQ(R.PreBytes.size(), N * sizeof(double));
    EXPECT_EQ(R.PostBytes.size(), N * sizeof(double));
  }
}

// ---------------------------------------------------------------------------
// The differential property: capture -> replay is byte-identical.
// ---------------------------------------------------------------------------

TEST(CaptureReplayPropertyTest, RandomKernelsReplayByteIdentical) {
  unsigned Iters = fuzzIterations();
  for (unsigned I = 0; I != Iters; ++I) {
    uint64_t Seed = 1000 + I;
    GpuArch Arch = (I % 2) ? GpuArch::NvPtxSim : GpuArch::AmdGcnSim;
    std::string Fail;
    std::optional<capture::CaptureArtifact> A =
        captureRandomKernel(Seed, Arch, &Fail);
    ASSERT_TRUE(A) << "seed " << Seed << ": " << Fail;

    ReplayOptions Opts; // default pipeline, hermetic (no persistent cache)
    Opts.Jit.UsePersistentCache = false;
    ReplayResult R = replayArtifact(*A, Opts);
    EXPECT_TRUE(R.Ok) << "seed " << Seed << ": " << R.Error;
    EXPECT_TRUE(R.OutputMatch)
        << "seed " << Seed << ": " << R.MismatchedRegions
        << " region(s) diverge: " << R.FirstMismatch;
    EXPECT_TRUE(R.HashMatch) << "seed " << Seed;
    if (!R.passed())
      break; // one broken seed is enough signal; keep the log short
  }
}

TEST(CaptureReplayPropertyTest, ReplayIsByteIdenticalUnderTierOverride) {
  std::string Fail;
  std::optional<capture::CaptureArtifact> A =
      captureRandomKernel(42, GpuArch::AmdGcnSim, &Fail);
  ASSERT_TRUE(A) << Fail;

  // PROTEUS_TIER=on equivalent: the Tier-0 fast path must produce the same
  // bytes as the full pipeline or the tiering design is broken.
  ReplayOptions Opts;
  Opts.Jit.UsePersistentCache = false;
  Opts.Jit.Tier = true;
  ReplayResult R = replayArtifact(*A, Opts);
  EXPECT_TRUE(R.passed()) << R.Error << R.FirstMismatch;

  // PROTEUS_ANALYZE=error: generated kernels are sanitizer-clean, so the
  // strictest launch gate must not reject the replay.
  ReplayOptions Strict;
  Strict.Jit.UsePersistentCache = false;
  Strict.Jit.Analyze = JitConfig::AnalyzeMode::Error;
  ReplayResult R2 = replayArtifact(*A, Strict);
  EXPECT_TRUE(R2.passed()) << R2.Error << R2.FirstMismatch;
}

TEST(ReplayTest, WarmReplayServesFromPersistentCache) {
  std::string Fail;
  std::optional<capture::CaptureArtifact> A =
      captureRandomKernel(77, GpuArch::NvPtxSim, &Fail);
  ASSERT_TRUE(A) << Fail;

  std::string CacheDir = fs::makeTempDirectory("proteus-replay-cache");
  ReplayOptions Opts;
  Opts.CacheDir = CacheDir;

  ReplayResult Cold = replayArtifact(*A, Opts);
  EXPECT_TRUE(Cold.passed()) << Cold.Error << Cold.FirstMismatch;
  EXPECT_GT(Cold.CompilationsUsed, 0u);

  ReplayResult Warm = replayArtifact(*A, Opts);
  EXPECT_TRUE(Warm.passed()) << Warm.Error << Warm.FirstMismatch;
  EXPECT_EQ(Warm.CompilationsUsed, 0u)
      << "warm replay must load the specialized binary from the cache";
  fs::removeAllFiles(CacheDir);
}

TEST(ReplayTest, RejectsUnrunnableArtifacts) {
  capture::CaptureArtifact A = sampleArtifact();
  A.Bitcode.clear();
  ReplayResult R = replayArtifact(A, ReplayOptions{});
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("no kernel bitcode"), std::string::npos) << R.Error;

  capture::CaptureArtifact B = sampleArtifact();
  B.DeviceMemoryBytes = 0;
  R = replayArtifact(B, ReplayOptions{});
  EXPECT_FALSE(R.Ok);

  capture::CaptureArtifact C = sampleArtifact();
  C.Regions[0].PostBytes.push_back(0); // pre/post images must pair up
  R = replayArtifact(C, ReplayOptions{});
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("mismatched pre/post"), std::string::npos)
      << R.Error;
}

// ---------------------------------------------------------------------------
// Environment validation: warn, don't coerce.
// ---------------------------------------------------------------------------

TEST(CaptureEnvTest, ParsesValidSettings) {
  setenv("PROTEUS_CAPTURE", "on", 1);
  setenv("PROTEUS_CAPTURE_DIR", "/tmp/proteus-env-captures", 1);
  setenv("PROTEUS_CAPTURE_RING", "128", 1);
  setenv("PROTEUS_CAPTURE_DEDUP", "off", 1);
  JitConfig C = JitConfig::fromEnvironment();
  EXPECT_TRUE(C.Capture);
  EXPECT_EQ(C.CaptureDir, "/tmp/proteus-env-captures");
  EXPECT_EQ(C.CaptureRing, 128u);
  EXPECT_FALSE(C.CaptureDedup);

  setenv("PROTEUS_CAPTURE", "off", 1);
  setenv("PROTEUS_CAPTURE_DEDUP", "on", 1);
  C = JitConfig::fromEnvironment();
  EXPECT_FALSE(C.Capture);
  EXPECT_TRUE(C.CaptureDedup);

  unsetenv("PROTEUS_CAPTURE");
  unsetenv("PROTEUS_CAPTURE_DIR");
  unsetenv("PROTEUS_CAPTURE_RING");
  unsetenv("PROTEUS_CAPTURE_DEDUP");
}

TEST(CaptureEnvTest, InvalidValuesWarnAndKeepDefaults) {
  metrics::Counter &Errors =
      metrics::processRegistry().counter("config.errors");

  uint64_t Before = Errors.value();
  setenv("PROTEUS_CAPTURE", "banana", 1);
  setenv("PROTEUS_CAPTURE_RING", "0", 1);
  JitConfig C = JitConfig::fromEnvironment();
  EXPECT_FALSE(C.Capture) << "invalid PROTEUS_CAPTURE must keep the default";
  EXPECT_EQ(C.CaptureRing, 64u)
      << "out-of-range PROTEUS_CAPTURE_RING must keep the default";
  EXPECT_GE(Errors.value(), Before + 2)
      << "each rejected setting counts as a config error";

  setenv("PROTEUS_CAPTURE_RING", "notanumber", 1);
  EXPECT_EQ(JitConfig::fromEnvironment().CaptureRing, 64u);
  setenv("PROTEUS_CAPTURE_RING", "70000", 1); // above the sanity ceiling
  EXPECT_EQ(JitConfig::fromEnvironment().CaptureRing, 64u);

  setenv("PROTEUS_CAPTURE_DIR", "", 1);
  EXPECT_EQ(JitConfig::fromEnvironment().CaptureDir, "proteus-captures");

  setenv("PROTEUS_CAPTURE_DEDUP", "sometimes", 1);
  EXPECT_TRUE(JitConfig::fromEnvironment().CaptureDedup)
      << "invalid PROTEUS_CAPTURE_DEDUP must keep the default";

  unsetenv("PROTEUS_CAPTURE");
  unsetenv("PROTEUS_CAPTURE_DIR");
  unsetenv("PROTEUS_CAPTURE_RING");
  unsetenv("PROTEUS_CAPTURE_DEDUP");
}

} // namespace
