//===- observability_test.cpp - JIT observability + config fixes -------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Regression tests for the observability layer at the JIT-runtime level:
// strict PROTEUS_ASYNC / PROTEUS_ASYNC_WORKERS parsing (invalid values are
// warned about, not silently coerced), stage timings that survive compile
// error paths, out-of-range jit-annotation indices surfacing as launch
// errors, and per-pass O3 attribution in JitRuntimeStats.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "bitcode/Bitcode.h"
#include "codegen/Target.h"
#include "ir/Context.h"
#include "jit/JitRuntime.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace pir;
using namespace proteus;
using namespace proteus::gpu;
using namespace proteus_test;

namespace {

// --- Environment parsing -----------------------------------------------------

/// Sets an environment variable for the current scope and restores the
/// previous value (or unsets) on destruction.
struct ScopedEnv {
  std::string Name;
  std::string Saved;
  bool HadValue;
  ScopedEnv(const std::string &Name, const std::string &Value) : Name(Name) {
    const char *Old = std::getenv(Name.c_str());
    HadValue = Old != nullptr;
    if (HadValue)
      Saved = Old;
    setenv(Name.c_str(), Value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (HadValue)
      setenv(Name.c_str(), Saved.c_str(), 1);
    else
      unsetenv(Name.c_str());
  }
};

TEST(JitConfigEnvTest, ValidValuesParseWithoutWarnings) {
  ScopedEnv A("PROTEUS_ASYNC", "block");
  ScopedEnv W("PROTEUS_ASYNC_WORKERS", "8");
  std::vector<std::string> Warnings;
  JitConfig C = JitConfig::fromEnvironment(&Warnings);
  EXPECT_TRUE(Warnings.empty()) << Warnings.front();
  EXPECT_EQ(C.Async, JitConfig::AsyncMode::Block);
  EXPECT_EQ(C.AsyncWorkers, 8u);
}

TEST(JitConfigEnvTest, ExplicitSyncIsAccepted) {
  ScopedEnv A("PROTEUS_ASYNC", "sync");
  std::vector<std::string> Warnings;
  JitConfig C = JitConfig::fromEnvironment(&Warnings);
  EXPECT_TRUE(Warnings.empty());
  EXPECT_EQ(C.Async, JitConfig::AsyncMode::Sync);
}

TEST(JitConfigEnvTest, InvalidAsyncModeWarnsAndKeepsDefault) {
  // "blocking" used to silently select Sync — the opposite of what the
  // user asked for. It must now be rejected with a diagnostic.
  ScopedEnv A("PROTEUS_ASYNC", "blocking");
  std::vector<std::string> Warnings;
  JitConfig C = JitConfig::fromEnvironment(&Warnings);
  ASSERT_EQ(Warnings.size(), 1u);
  EXPECT_NE(Warnings[0].find("PROTEUS_ASYNC"), std::string::npos);
  EXPECT_NE(Warnings[0].find("blocking"), std::string::npos);
  EXPECT_EQ(C.Async, JitConfig::AsyncMode::Sync) << "default preserved";
}

TEST(JitConfigEnvTest, InvalidWorkerCountsWarnAndKeepDefault) {
  for (const char *Bad : {"0", "abc", "12abc", "-3", ""}) {
    SCOPED_TRACE(std::string("PROTEUS_ASYNC_WORKERS=") + Bad);
    ScopedEnv W("PROTEUS_ASYNC_WORKERS", Bad);
    std::vector<std::string> Warnings;
    JitConfig C = JitConfig::fromEnvironment(&Warnings);
    ASSERT_EQ(Warnings.size(), 1u);
    EXPECT_NE(Warnings[0].find("PROTEUS_ASYNC_WORKERS"), std::string::npos);
    EXPECT_EQ(C.AsyncWorkers, 4u) << "default preserved";
  }
}

// --- Direct-runtime harness --------------------------------------------------

constexpr uint32_t N = 32;

/// Minimal JitRuntime driver: registers raw bitcode for a symbol and
/// launches it, bypassing the AOT/program layer so error paths can be
/// provoked with precisely malformed inputs.
struct RtHarness {
  Device Dev;
  JitRuntime Rt;

  explicit RtHarness(JitConfig JC = defaultConfig())
      : Dev(getTarget(GpuArch::AmdGcnSim), 1ull << 22),
        Rt(Dev, /*ModuleId=*/0x0b5e, std::move(JC)) {}

  static JitConfig defaultConfig() {
    JitConfig JC;
    JC.UsePersistentCache = false;
    return JC;
  }

  void registerBitcode(const std::string &Symbol,
                       std::vector<uint8_t> Bitcode,
                       std::vector<uint32_t> AnnotatedArgs = {}) {
    JitKernelInfo Info;
    Info.Symbol = Symbol;
    Info.AnnotatedArgs = std::move(AnnotatedArgs);
    Info.HostBitcode = std::move(Bitcode);
    Rt.registerKernel(std::move(Info));
  }

  GpuError launchDaxpy(std::string *Err, double A = 2.0) {
    DevicePtr X = 0, Y = 0;
    EXPECT_EQ(gpuMalloc(Dev, &X, N * 8), GpuError::Success);
    EXPECT_EQ(gpuMalloc(Dev, &Y, N * 8), GpuError::Success);
    std::vector<KernelArg> Args = {{sem::boxF64(A)}, {X}, {Y}, {N}};
    return Rt.launchKernel("daxpy", Dim3{1, 1, 1}, Dim3{N, 1, 1}, Args, Err);
  }
};

// --- Stage timings on error paths --------------------------------------------

TEST(JitErrorStatsTest, CorruptBitcodeRecordsParseTime) {
  RtHarness H;
  // Real bitcode, truncated: the parser does real work before failing.
  Context Ctx;
  Module M(Ctx, "app");
  buildDaxpyKernel(M);
  std::vector<uint8_t> BC = writeBitcode(M);
  BC.resize(BC.size() / 2);
  H.registerBitcode("daxpy", BC, {1, 4});

  std::string Err;
  EXPECT_NE(H.launchDaxpy(&Err), GpuError::Success);
  EXPECT_NE(Err.find("corrupt kernel bitcode"), std::string::npos) << Err;

  JitRuntimeStats S = H.Rt.stats();
  EXPECT_EQ(S.Compilations, 1u);
  EXPECT_GT(S.BitcodeParseSeconds, 0.0)
      << "parse time must be recorded on the parse-failure path";
}

TEST(JitErrorStatsTest, MissingKernelSymbolRecordsParseTime) {
  RtHarness H;
  Context Ctx;
  Module M(Ctx, "app");
  buildLoopSumKernel(M); // bitcode holds @loopsum, not @daxpy
  H.registerBitcode("daxpy", writeBitcode(M), {1, 4});

  std::string Err;
  EXPECT_EQ(H.launchDaxpy(&Err), GpuError::InvalidValue);
  EXPECT_NE(Err.find("does not contain the kernel"), std::string::npos)
      << Err;

  JitRuntimeStats S = H.Rt.stats();
  EXPECT_EQ(S.Compilations, 1u);
  EXPECT_GT(S.BitcodeParseSeconds, 0.0)
      << "parse time must be recorded on the kernel-not-found path";
}

TEST(JitErrorStatsTest, VerifierFailureRecordsParseTime) {
  JitConfig JC = RtHarness::defaultConfig();
  JC.VerifyIR = true;
  RtHarness H(JC);

  // A well-formed daxpy plus a device function whose body returns nothing
  // despite an f64 return type — writeBitcode round-trips it, the module
  // verifier rejects it.
  Context Ctx;
  Module M(Ctx, "app");
  buildDaxpyKernel(M);
  IRBuilder B(Ctx);
  Function *Bad = M.createFunction("badret", Ctx.getF64Ty(), {}, {},
                                   FunctionKind::Device);
  B.setInsertPoint(Bad->createBlock("entry", Ctx.getVoidTy()));
  B.createRet();
  H.registerBitcode("daxpy", writeBitcode(M), {1, 4});

  std::string Err;
  EXPECT_EQ(H.launchDaxpy(&Err), GpuError::InvalidValue);
  EXPECT_NE(Err.find("failed verification"), std::string::npos) << Err;

  JitRuntimeStats S = H.Rt.stats();
  EXPECT_EQ(S.Compilations, 1u);
  EXPECT_GT(S.BitcodeParseSeconds, 0.0)
      << "parse time must be recorded on the verifier-failure path";
}

TEST(JitErrorStatsTest, GlobalLinkFailureRecordsLinkTime) {
  RtHarness H;
  Context Ctx;
  Module M(Ctx, "app");
  IRBuilder B(Ctx);
  M.createGlobal("mystery", Ctx.getF64Ty(), 8);
  Function *F = M.createFunction("daxpy", Ctx.getVoidTy(), {Ctx.getPtrTy()},
                                 {"out"}, FunctionKind::Kernel);
  F->setJitAnnotation(JitAnnotation{{}});
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  Value *V = B.createLoad(Ctx.getF64Ty(), M.getGlobal("mystery"));
  B.createStore(V, F->getArg(0));
  B.createRet();
  H.registerBitcode("daxpy", writeBitcode(M));

  DevicePtr Out = 0;
  EXPECT_EQ(gpuMalloc(H.Dev, &Out, 8), GpuError::Success);
  std::vector<KernelArg> Args = {{Out}};
  std::string Err;
  // @mystery was never registered and resolves nowhere on the device.
  EXPECT_EQ(H.Rt.launchKernel("daxpy", Dim3{1, 1, 1}, Dim3{1, 1, 1}, Args,
                              &Err),
            GpuError::NotFound);
  EXPECT_NE(Err.find("cannot link device global"), std::string::npos) << Err;

  JitRuntimeStats S = H.Rt.stats();
  EXPECT_GT(S.BitcodeParseSeconds, 0.0);
  EXPECT_GT(S.LinkGlobalsSeconds, 0.0)
      << "link time must be recorded on the link-failure path";
}

// --- Annotation range validation ---------------------------------------------

TEST(JitAnnotationRangeTest, OutOfRangeIndexFailsLaunch) {
  RtHarness H;
  Context Ctx;
  Module M(Ctx, "app");
  buildDaxpyKernel(M);
  // Annotation claims argument 9 of a 4-argument kernel is foldable.
  H.registerBitcode("daxpy", writeBitcode(M), {9});

  std::string Err;
  EXPECT_EQ(H.launchDaxpy(&Err), GpuError::InvalidValue);
  EXPECT_NE(Err.find("out of range"), std::string::npos) << Err;
  EXPECT_NE(Err.find("9"), std::string::npos) << Err;

  JitRuntimeStats S = H.Rt.stats();
  EXPECT_EQ(S.AnnotationRangeErrors, 1u);
  EXPECT_EQ(S.Compilations, 0u)
      << "a mis-annotated launch must fail before compiling anything";
  EXPECT_EQ(S.Launches, 1u);
}

TEST(JitAnnotationRangeTest, ZeroIndexFailsLaunch) {
  RtHarness H;
  Context Ctx;
  Module M(Ctx, "app");
  buildDaxpyKernel(M);
  H.registerBitcode("daxpy", writeBitcode(M), {0}); // indices are 1-based

  std::string Err;
  EXPECT_EQ(H.launchDaxpy(&Err), GpuError::InvalidValue);
  EXPECT_EQ(H.Rt.stats().AnnotationRangeErrors, 1u);
}

TEST(JitAnnotationRangeTest, DisabledRcfIgnoresAnnotations) {
  JitConfig JC = RtHarness::defaultConfig();
  JC.EnableRCF = false; // no folding -> range never consulted
  RtHarness H(JC);
  Context Ctx;
  Module M(Ctx, "app");
  buildDaxpyKernel(M);
  H.registerBitcode("daxpy", writeBitcode(M), {9});

  std::string Err;
  EXPECT_EQ(H.launchDaxpy(&Err), GpuError::Success) << Err;
  EXPECT_EQ(H.Rt.stats().AnnotationRangeErrors, 0u);
}

// --- Per-pass O3 attribution and success-path stats --------------------------

TEST(JitMetricsTest, SuccessfulCompilePopulatesPerPassO3Times) {
  RtHarness H;
  Context Ctx;
  Module M(Ctx, "app");
  buildDaxpyKernel(M);
  H.registerBitcode("daxpy", writeBitcode(M), {1, 4});

  std::string Err;
  ASSERT_EQ(H.launchDaxpy(&Err), GpuError::Success) << Err;

  JitRuntimeStats S = H.Rt.stats();
  EXPECT_EQ(S.Compilations, 1u);
  EXPECT_GT(S.BitcodeParseSeconds, 0.0);
  EXPECT_GT(S.SpecializeSeconds, 0.0);
  EXPECT_GT(S.OptimizeSeconds, 0.0);
  EXPECT_GT(S.BackendSeconds, 0.0);

  // Every pass of the O3 pipeline must be attributed.
  for (const char *Pass : {"inline", "mem2reg", "instcombine", "simplifycfg",
                           "cse", "licm", "dce", "loop-unroll"})
    EXPECT_EQ(S.O3PassSeconds.count(Pass), 1u) << "missing pass " << Pass;
  double Sum = 0;
  for (const auto &[Name, Seconds] : S.O3PassSeconds) {
    EXPECT_GE(Seconds, 0.0) << Name;
    Sum += Seconds;
  }
  EXPECT_LE(Sum, S.OptimizeSeconds + 1e-4)
      << "per-pass times cannot exceed the whole-pipeline time";

  // The registry exposes the same instruments under their metric names.
  bool SawLaunches = false;
  for (const auto &[Name, Value] : H.Rt.metricsRegistry().counterValues())
    if (Name == "jit.launches") {
      SawLaunches = true;
      EXPECT_EQ(Value, S.Launches);
    }
  EXPECT_TRUE(SawLaunches);
}

TEST(JitMetricsTest, StatsSnapshotIsConsistentAcrossLaunches) {
  RtHarness H;
  Context Ctx;
  Module M(Ctx, "app");
  buildDaxpyKernel(M);
  H.registerBitcode("daxpy", writeBitcode(M), {1, 4});

  std::string Err;
  ASSERT_EQ(H.launchDaxpy(&Err), GpuError::Success) << Err;
  ASSERT_EQ(H.launchDaxpy(&Err), GpuError::Success) << Err;
  ASSERT_EQ(H.launchDaxpy(&Err, /*A=*/3.0), GpuError::Success) << Err;

  JitRuntimeStats S = H.Rt.stats();
  EXPECT_EQ(S.Launches, 3u);
  EXPECT_EQ(S.Compilations, 2u) << "distinct fold value -> new compile";
  EXPECT_GT(S.LaunchBlockedSeconds, 0.0)
      << "Sync-mode compiles are launch-visible";
  EXPECT_GE(S.totalCompileSeconds(), S.OptimizeSeconds);
  EXPECT_GE(S.hiddenCompileSeconds(), 0.0);
}

} // namespace
