//===- RandomKernel.h - deterministic random kernel generator ---*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates structurally valid random kernels from a seed: a guarded
/// prologue, a pool of integer/floating values grown by random arithmetic,
/// comparisons and selects, loads from an input buffer, an optional counted
/// inner loop with accumulators, diamond control flow, and stores to an
/// output buffer. Used by the property suites to differentially test the
/// optimizer and the codegen+simulator pipeline against the reference
/// interpreter over many shapes no hand-written test would cover.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_TESTS_RANDOMKERNEL_H
#define PROTEUS_TESTS_RANDOMKERNEL_H

#include "ir/IRBuilder.h"
#include "ir/Module.h"

#include <cstdint>
#include <vector>

namespace proteus_test {

/// Deterministic 64-bit LCG.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed * 2654435761u + 1) {}

  uint64_t next() {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    return State >> 11;
  }

  uint32_t below(uint32_t N) { return static_cast<uint32_t>(next() % N); }

  double unit() {
    return static_cast<double>(next() & 0xFFFFF) / 1048576.0;
  }

private:
  uint64_t State;
};

/// Builds a random kernel named \p Name into an existing module (so test
/// programs can carry several independent random kernels at once).
/// Signature: <name>(in: ptr, out: ptr, n: i32, sf: f64, si: i32).
/// The scalar arguments sf (4) and si (5) are jit-annotated.
inline pir::Function *buildRandomKernelInto(pir::Module &M, uint64_t Seed,
                                            const std::string &Name = "rk") {
  using namespace pir;
  Rng R(Seed);
  pir::Context &Ctx = M.getContext();
  IRBuilder B(Ctx);
  Type *F64 = Ctx.getF64Ty();
  Type *I32 = Ctx.getI32Ty();

  Function *F = M.createFunction(
      Name, Ctx.getVoidTy(),
      {Ctx.getPtrTy(), Ctx.getPtrTy(), I32, F64, I32},
      {"in", "out", "n", "sf", "si"}, FunctionKind::Kernel);
  F->setJitAnnotation(JitAnnotation{{4, 5}});

  Value *In = F->getArg(0), *Out = F->getArg(1), *N = F->getArg(2);
  Value *Sf = F->getArg(3), *Si = F->getArg(4);

  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *Work = F->createBlock("work", Ctx.getVoidTy());
  BasicBlock *Exit = F->createBlock("exit", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  Value *Gtid = B.createGlobalThreadIdX();
  B.createCondBr(B.createICmp(ICmpPred::SLT, Gtid, N), Work, Exit);
  B.setInsertPoint(Exit);
  B.createRet();
  B.setInsertPoint(Work);

  std::vector<Value *> IntPool = {Gtid, Si, B.getInt32(3),
                                  B.getInt32(static_cast<int32_t>(R.below(100)))};
  std::vector<Value *> FpPool = {Sf, B.getDouble(1.5),
                                 B.getDouble(R.unit() * 4.0 - 2.0)};

  // A couple of input loads (bounded index: gtid is already < n <= buffer).
  Value *LoadP = B.createGep(F64, In, Gtid);
  FpPool.push_back(B.createLoad(F64, LoadP, "inv"));

  auto PickI = [&] { return IntPool[R.below(IntPool.size())]; };
  auto PickF = [&] { return FpPool[R.below(FpPool.size())]; };

  // Random arithmetic soup.
  unsigned Ops = 8 + R.below(24);
  for (unsigned K = 0; K != Ops; ++K) {
    switch (R.below(10)) {
    case 0:
      IntPool.push_back(B.createAdd(PickI(), PickI()));
      break;
    case 1:
      IntPool.push_back(B.createMul(PickI(), PickI()));
      break;
    case 2:
      IntPool.push_back(B.createXor(PickI(), PickI()));
      break;
    case 3: // division is defined for 0 divisors in our semantics
      IntPool.push_back(B.createSDiv(PickI(), PickI()));
      break;
    case 4:
      FpPool.push_back(B.createFAdd(PickF(), PickF()));
      break;
    case 5:
      FpPool.push_back(B.createFMul(PickF(), PickF()));
      break;
    case 6:
      FpPool.push_back(B.createFSub(PickF(), PickF()));
      break;
    case 7: {
      Value *C = B.createICmp(static_cast<ICmpPred>(R.below(10)), PickI(),
                              PickI());
      FpPool.push_back(B.createSelect(C, PickF(), PickF()));
      break;
    }
    case 8: {
      Value *C = B.createFCmp(static_cast<FCmpPred>(R.below(6)), PickF(),
                              PickF());
      IntPool.push_back(B.createSelect(C, PickI(), PickI()));
      break;
    }
    default:
      FpPool.push_back(B.createSIToFP(PickI(), F64));
      break;
    }
  }

  // Optional counted inner loop accumulating into the pool.
  if (R.below(2)) {
    uint32_t Trip = 1 + R.below(9);
    BasicBlock *Header = F->createBlock("h", Ctx.getVoidTy());
    BasicBlock *Body = F->createBlock("b", Ctx.getVoidTy());
    BasicBlock *After = F->createBlock("a", Ctx.getVoidTy());
    BasicBlock *Pre = B.getInsertBlock();
    B.createBr(Header);
    B.setInsertPoint(Header);
    PhiInst *I = B.createPhi(I32, "i");
    PhiInst *Acc = B.createPhi(F64, "acc");
    I->addIncoming(B.getInt32(0), Pre);
    Acc->addIncoming(PickF(), Pre);
    // Bound is either a literal or the annotated scalar masked small.
    Value *Bound = R.below(2)
                       ? static_cast<Value *>(B.getInt32(
                             static_cast<int32_t>(Trip)))
                       : B.createAnd(Si, B.getInt32(7));
    B.createCondBr(B.createICmp(ICmpPred::SLT, I, Bound), Body, After);
    B.setInsertPoint(Body);
    Value *Term = B.createFMul(Acc, B.getDouble(0.5 + R.unit()));
    Value *Acc2 = B.createFAdd(Term, PickF());
    Value *I2 = B.createAdd(I, B.getInt32(1));
    I->addIncoming(I2, Body);
    Acc->addIncoming(Acc2, Body);
    B.createBr(Header);
    B.setInsertPoint(After);
    FpPool.push_back(Acc);
  }

  // Optional diamond.
  if (R.below(2)) {
    BasicBlock *T = F->createBlock("t", Ctx.getVoidTy());
    BasicBlock *E = F->createBlock("e", Ctx.getVoidTy());
    BasicBlock *J = F->createBlock("j", Ctx.getVoidTy());
    Value *C = B.createICmp(ICmpPred::SLT, PickI(), PickI());
    B.createCondBr(C, T, E);
    B.setInsertPoint(T);
    Value *Tv = B.createFAdd(PickF(), B.getDouble(1.0));
    B.createBr(J);
    B.setInsertPoint(E);
    Value *Ev = B.createFMul(PickF(), B.getDouble(0.25));
    B.createBr(J);
    B.setInsertPoint(J);
    PhiInst *Phi = B.createPhi(F64, "joinv");
    Phi->addIncoming(Tv, T);
    Phi->addIncoming(Ev, E);
    FpPool.push_back(Phi);
  }

  // Final store: combine a few pool values.
  Value *Sum = PickF();
  for (int K = 0; K != 3; ++K)
    Sum = B.createFAdd(Sum, PickF());
  Value *IntBits = B.createSIToFP(B.createAnd(PickI(), B.getInt32(1023)),
                                  F64);
  Sum = B.createFAdd(Sum, IntBits);
  B.createStore(Sum, B.createGep(F64, Out, Gtid));
  B.createRet();
  return F;
}

/// Builds a random kernel named "rk" into a fresh module.
inline std::unique_ptr<pir::Module> buildRandomKernel(pir::Context &Ctx,
                                                      uint64_t Seed) {
  auto M = std::make_unique<pir::Module>(Ctx, "random" + std::to_string(Seed));
  buildRandomKernelInto(*M, Seed);
  return M;
}

} // namespace proteus_test

#endif // PROTEUS_TESTS_RANDOMKERNEL_H
