//===- support_test.cpp - support-library tests ----------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Direct coverage of the foundations everything else relies on: FNV-1a
// hashing (stability across runs is what keeps persistent cache file names
// valid), the bounds-checked binary streams, string helpers, and the
// filesystem utilities behind the persistent cache.
//
//===----------------------------------------------------------------------===//

#include "jit/CodeCache.h"
#include "support/BinaryStream.h"
#include "support/FileSystem.h"
#include "support/Hashing.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

using namespace proteus;

namespace {

TEST(HashingTest, KnownFnv1aVectors) {
  // Standard FNV-1a 64 test vectors.
  EXPECT_EQ(hashString(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(hashString("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(hashString("foobar"), 0x85944171f73967e8ull);
}

TEST(HashingTest, IncrementalMatchesOneShot) {
  FNV1aHash H;
  H.update(std::string_view("hello "));
  H.update(std::string_view("world"));
  EXPECT_EQ(H.digest(), hashString("hello world"));
}

TEST(HashingTest, TypedUpdatesAreOrderSensitive) {
  FNV1aHash A, B;
  A.update(uint64_t(1));
  A.update(uint64_t(2));
  B.update(uint64_t(2));
  B.update(uint64_t(1));
  EXPECT_NE(A.digest(), B.digest());
}

TEST(HashingTest, HexRendering) {
  EXPECT_EQ(hashToHex(0), "0000000000000000");
  EXPECT_EQ(hashToHex(0xdeadbeef), "00000000deadbeef");
  EXPECT_EQ(hashToHex(~0ull), "ffffffffffffffff");
}

TEST(BinaryStreamTest, RoundTripAllTypes) {
  ByteWriter W;
  W.writeU8(0xAB);
  W.writeU32(0x12345678);
  W.writeU64(0x1122334455667788ull);
  W.writeF64(-3.25);
  W.writeString("proteus");
  W.writeBytes({9, 8, 7});

  ByteReader R(W.data());
  EXPECT_EQ(R.readU8(), 0xAB);
  EXPECT_EQ(R.readU32(), 0x12345678u);
  EXPECT_EQ(R.readU64(), 0x1122334455667788ull);
  EXPECT_DOUBLE_EQ(R.readF64(), -3.25);
  EXPECT_EQ(R.readString(), "proteus");
  EXPECT_EQ(R.readBytes(), (std::vector<uint8_t>{9, 8, 7}));
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.remaining(), 0u);
}

TEST(BinaryStreamTest, TruncationLatchesError) {
  ByteWriter W;
  W.writeU32(42);
  std::vector<uint8_t> Short(W.data().begin(), W.data().begin() + 2);
  ByteReader R(Short);
  EXPECT_EQ(R.readU32(), 0u);
  EXPECT_FALSE(R.ok());
  // Every subsequent read stays failed and yields zeros.
  EXPECT_EQ(R.readU64(), 0u);
  EXPECT_EQ(R.readString(), "");
  EXPECT_EQ(R.remaining(), 0u);
}

TEST(BinaryStreamTest, HugeLengthPrefixIsRejected) {
  ByteWriter W;
  W.writeU32(0xFFFFFFFF); // claims a 4GiB string follows
  ByteReader R(W.data());
  EXPECT_EQ(R.readString(), "");
  EXPECT_FALSE(R.ok());
}

TEST(StringUtilsTest, TrimAndSplit) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
  auto Parts = split("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(Parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(StringUtilsTest, FormatDoubleRoundTrips) {
  for (double V : {0.0, -0.0, 1.0 / 3.0, 1e-300, 3.141592653589793,
                   1.0000000000000002, -2.5e17}) {
    std::string S = formatDouble(V);
    EXPECT_EQ(std::strtod(S.c_str(), nullptr), V) << S;
  }
  // Integral values must still lex as floating point.
  EXPECT_NE(formatDouble(4.0).find('.'), std::string::npos);
}

TEST(StringUtilsTest, ByteSizeFormatting) {
  EXPECT_EQ(formatByteSize(512), "512B");
  EXPECT_EQ(formatByteSize(6 * 1024 + 512), "6.5KB");
  EXPECT_EQ(formatByteSize(3 * 1024 * 1024), "3.0MB");
}

TEST(FileSystemTest, ReadWriteListRemove) {
  std::string Dir = fs::makeTempDirectory("proteus-fs-test");
  std::vector<uint8_t> Data = {1, 2, 3, 4, 5};
  std::string Path = Dir + "/blob.bin";
  EXPECT_TRUE(fs::writeFile(Path, Data));
  EXPECT_TRUE(fs::exists(Path));
  auto Back = fs::readFile(Path);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(*Back, Data);
  EXPECT_EQ(fs::directorySize(Dir), Data.size());
  auto Names = fs::listFiles(Dir);
  ASSERT_EQ(Names.size(), 1u);
  EXPECT_EQ(Names[0], "blob.bin");
  EXPECT_TRUE(fs::removeFile(Path));
  EXPECT_FALSE(fs::exists(Path));
  EXPECT_FALSE(fs::readFile(Path).has_value());
  fs::removeAllFiles(Dir);
}

TEST(FileSystemTest, TempDirectoriesAreUnique) {
  std::string A = fs::makeTempDirectory("proteus-uniq");
  std::string B = fs::makeTempDirectory("proteus-uniq");
  EXPECT_NE(A, B);
  fs::removeAllFiles(A);
  fs::removeAllFiles(B);
}

TEST(FileSystemTest, UniqueNameTokensNeverRepeat) {
  std::set<std::string> Seen;
  for (int I = 0; I != 1000; ++I)
    EXPECT_TRUE(Seen.insert(fs::uniqueNameToken()).second);
}

TEST(FileSystemTest, AtomicWriteRoundTripsAndLeavesNoTempFiles) {
  std::string Dir = fs::makeTempDirectory("proteus-atomic");
  std::string Path = Dir + "/obj.bin";
  std::vector<uint8_t> Data = {10, 20, 30, 40};
  EXPECT_TRUE(fs::writeFileAtomic(Path, Data));
  auto Back = fs::readFile(Path);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(*Back, Data);
  // Overwrite is atomic too.
  std::vector<uint8_t> Data2 = {5, 6};
  EXPECT_TRUE(fs::writeFileAtomic(Path, Data2));
  EXPECT_EQ(*fs::readFile(Path), Data2);
  // The write-to-temp + rename protocol must not leak .tmp-* files.
  auto Names = fs::listFiles(Dir);
  ASSERT_EQ(Names.size(), 1u);
  EXPECT_EQ(Names[0], "obj.bin");
  fs::removeAllFiles(Dir);
}

// --- Specialization-hash determinism ----------------------------------------
//
// The persistent cache's file names are cache-jit-<hash>.o, so the key hash
// must be stable across processes, runs, AND refactors of the JIT runtime:
// a changed hash silently invalidates every user's warm cache. These golden
// values pin the exact hash function (FNV-1a 64 over the key fields in
// declaration order, integers little-endian); they were computed by an
// independent implementation and must never change.

TEST(SpecializationHashGoldenTest, HashesMatchPinnedValues) {
  SpecializationKey K1;
  K1.ModuleId = 0x1234;
  K1.KernelSymbol = "daxpy";
  K1.Arch = GpuArch::AmdGcnSim;
  K1.FoldedArgs = {{0, 100}, {3, 7}};
  K1.LaunchBoundsThreads = 256;
  EXPECT_EQ(computeSpecializationHash(K1), 0xed3ee630005c8764ull);

  SpecializationKey K2;
  K2.ModuleId = 0xfeedface;
  K2.KernelSymbol = "rk";
  K2.Arch = GpuArch::NvPtxSim;
  K2.FoldedArgs = {{3, 0x3FF8000000000000ull}, {4, 5}}; // sf=1.5, si=5
  K2.LaunchBoundsThreads = 64;
  EXPECT_EQ(computeSpecializationHash(K2), 0xb7885ac14f47cbb1ull);

  SpecializationKey Empty;
  Empty.ModuleId = 0;
  Empty.KernelSymbol = "";
  Empty.Arch = GpuArch::AmdGcnSim;
  EXPECT_EQ(computeSpecializationHash(Empty), 0x98b2b1418e80a50full);
}

TEST(SpecializationHashGoldenTest, PersistentFileNameIsPinned) {
  // The exact on-disk name for K1 above: a refactor that changes this
  // breaks warm-cache reuse for existing deployments.
  EXPECT_EQ("cache-jit-" + hashToHex(0xed3ee630005c8764ull) + ".o",
            "cache-jit-ed3ee630005c8764.o");
}

TEST(SpecializationHashGoldenTest, StableAcrossRepeatedComputation) {
  SpecializationKey K;
  K.ModuleId = 0xabcdef0123456789ull;
  K.KernelSymbol = "kernel_with_a_longer_symbol_name";
  K.Arch = GpuArch::NvPtxSim;
  for (uint32_t I = 0; I != 16; ++I)
    K.FoldedArgs.push_back({I, I * 0x9e3779b97f4a7c15ull});
  K.LaunchBoundsThreads = 1024;
  uint64_t First = computeSpecializationHash(K);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(computeSpecializationHash(K), First);
}

// --- ThreadPool --------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.workerCount(), 4u);
  std::atomic<int> Sum{0};
  for (int I = 1; I <= 100; ++I)
    EXPECT_TRUE(Pool.enqueue([&Sum, I] { Sum += I; }));
  Pool.waitIdle();
  EXPECT_EQ(Sum.load(), 5050);
  EXPECT_EQ(Pool.tasksEnqueued(), 100u);
  EXPECT_EQ(Pool.tasksCompleted(), 100u);
}

TEST(ThreadPoolTest, ZeroWorkersClampsToOne) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.workerCount(), 1u);
  std::atomic<bool> Ran{false};
  Pool.enqueue([&Ran] { Ran = true; });
  Pool.waitIdle();
  EXPECT_TRUE(Ran.load());
}

TEST(ThreadPoolTest, WaitIdleCoversTransitivelyEnqueuedTasks) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  Pool.enqueue([&] {
    ++Count;
    Pool.enqueue([&] { ++Count; });
  });
  Pool.waitIdle();
  EXPECT_EQ(Count.load(), 2);
}

TEST(ThreadPoolTest, ShutdownDrainsQueueAndRejectsNewWork) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I != 50; ++I)
      Pool.enqueue([&Count] { ++Count; });
    Pool.shutdown();
    EXPECT_EQ(Count.load(), 50) << "shutdown must drain, not drop";
    EXPECT_FALSE(Pool.enqueue([&Count] { ++Count; }))
        << "enqueue after shutdown must be rejected";
    Pool.shutdown(); // idempotent
  }
  EXPECT_EQ(Count.load(), 50);
}

TEST(ThreadPoolTest, ConcurrentProducers) {
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  std::vector<std::thread> Producers;
  for (int T = 0; T != 8; ++T)
    Producers.emplace_back([&] {
      for (int I = 0; I != 100; ++I)
        Pool.enqueue([&Count] { ++Count; });
    });
  for (auto &P : Producers)
    P.join();
  Pool.waitIdle();
  EXPECT_EQ(Count.load(), 800);
}

} // namespace
