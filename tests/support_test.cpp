//===- support_test.cpp - support-library tests ----------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Direct coverage of the foundations everything else relies on: FNV-1a
// hashing (stability across runs is what keeps persistent cache file names
// valid), the bounds-checked binary streams, string helpers, and the
// filesystem utilities behind the persistent cache.
//
//===----------------------------------------------------------------------===//

#include "support/BinaryStream.h"
#include "support/FileSystem.h"
#include "support/Hashing.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace proteus;

namespace {

TEST(HashingTest, KnownFnv1aVectors) {
  // Standard FNV-1a 64 test vectors.
  EXPECT_EQ(hashString(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(hashString("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(hashString("foobar"), 0x85944171f73967e8ull);
}

TEST(HashingTest, IncrementalMatchesOneShot) {
  FNV1aHash H;
  H.update(std::string_view("hello "));
  H.update(std::string_view("world"));
  EXPECT_EQ(H.digest(), hashString("hello world"));
}

TEST(HashingTest, TypedUpdatesAreOrderSensitive) {
  FNV1aHash A, B;
  A.update(uint64_t(1));
  A.update(uint64_t(2));
  B.update(uint64_t(2));
  B.update(uint64_t(1));
  EXPECT_NE(A.digest(), B.digest());
}

TEST(HashingTest, HexRendering) {
  EXPECT_EQ(hashToHex(0), "0000000000000000");
  EXPECT_EQ(hashToHex(0xdeadbeef), "00000000deadbeef");
  EXPECT_EQ(hashToHex(~0ull), "ffffffffffffffff");
}

TEST(BinaryStreamTest, RoundTripAllTypes) {
  ByteWriter W;
  W.writeU8(0xAB);
  W.writeU32(0x12345678);
  W.writeU64(0x1122334455667788ull);
  W.writeF64(-3.25);
  W.writeString("proteus");
  W.writeBytes({9, 8, 7});

  ByteReader R(W.data());
  EXPECT_EQ(R.readU8(), 0xAB);
  EXPECT_EQ(R.readU32(), 0x12345678u);
  EXPECT_EQ(R.readU64(), 0x1122334455667788ull);
  EXPECT_DOUBLE_EQ(R.readF64(), -3.25);
  EXPECT_EQ(R.readString(), "proteus");
  EXPECT_EQ(R.readBytes(), (std::vector<uint8_t>{9, 8, 7}));
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.remaining(), 0u);
}

TEST(BinaryStreamTest, TruncationLatchesError) {
  ByteWriter W;
  W.writeU32(42);
  std::vector<uint8_t> Short(W.data().begin(), W.data().begin() + 2);
  ByteReader R(Short);
  EXPECT_EQ(R.readU32(), 0u);
  EXPECT_FALSE(R.ok());
  // Every subsequent read stays failed and yields zeros.
  EXPECT_EQ(R.readU64(), 0u);
  EXPECT_EQ(R.readString(), "");
  EXPECT_EQ(R.remaining(), 0u);
}

TEST(BinaryStreamTest, HugeLengthPrefixIsRejected) {
  ByteWriter W;
  W.writeU32(0xFFFFFFFF); // claims a 4GiB string follows
  ByteReader R(W.data());
  EXPECT_EQ(R.readString(), "");
  EXPECT_FALSE(R.ok());
}

TEST(StringUtilsTest, TrimAndSplit) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
  auto Parts = split("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(Parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(StringUtilsTest, FormatDoubleRoundTrips) {
  for (double V : {0.0, -0.0, 1.0 / 3.0, 1e-300, 3.141592653589793,
                   1.0000000000000002, -2.5e17}) {
    std::string S = formatDouble(V);
    EXPECT_EQ(std::strtod(S.c_str(), nullptr), V) << S;
  }
  // Integral values must still lex as floating point.
  EXPECT_NE(formatDouble(4.0).find('.'), std::string::npos);
}

TEST(StringUtilsTest, ByteSizeFormatting) {
  EXPECT_EQ(formatByteSize(512), "512B");
  EXPECT_EQ(formatByteSize(6 * 1024 + 512), "6.5KB");
  EXPECT_EQ(formatByteSize(3 * 1024 * 1024), "3.0MB");
}

TEST(FileSystemTest, ReadWriteListRemove) {
  std::string Dir = fs::makeTempDirectory("proteus-fs-test");
  std::vector<uint8_t> Data = {1, 2, 3, 4, 5};
  std::string Path = Dir + "/blob.bin";
  EXPECT_TRUE(fs::writeFile(Path, Data));
  EXPECT_TRUE(fs::exists(Path));
  auto Back = fs::readFile(Path);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(*Back, Data);
  EXPECT_EQ(fs::directorySize(Dir), Data.size());
  auto Names = fs::listFiles(Dir);
  ASSERT_EQ(Names.size(), 1u);
  EXPECT_EQ(Names[0], "blob.bin");
  EXPECT_TRUE(fs::removeFile(Path));
  EXPECT_FALSE(fs::exists(Path));
  EXPECT_FALSE(fs::readFile(Path).has_value());
  fs::removeAllFiles(Dir);
}

TEST(FileSystemTest, TempDirectoriesAreUnique) {
  std::string A = fs::makeTempDirectory("proteus-uniq");
  std::string B = fs::makeTempDirectory("proteus-uniq");
  EXPECT_NE(A, B);
  fs::removeAllFiles(A);
  fs::removeAllFiles(B);
}

} // namespace
