//===- fleet_cache_test.cpp - fleet-scale shared cache tests --------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The fleet cache stack, bottom to top: consistent-hash shard index,
// wire-protocol codec (including malformed frames), the sharded local
// directory backend (budget eviction covering code AND tune files,
// lock-file compile claims with stale-steal), the in-process cache service
// plus its RemoteCacheBackend client (dedup across connections, claim
// release on disconnect, batched lookups, daemon-outage fallback), and the
// CodeCache / JitRuntime integration (RemoteHits attribution, fleet-served
// compiles end to end).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "fleet/CacheServer.h"
#include "fleet/Protocol.h"
#include "fleet/RemoteBackend.h"
#include "fleet/ShardIndex.h"
#include "jit/CodeCache.h"
#include "jit/JitRuntime.h"
#include "jit/Program.h"
#include "support/FileSystem.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

using namespace pir;
using namespace proteus;
using namespace proteus::fleet;
using namespace proteus::gpu;
using namespace proteus_test;

namespace {

struct TempDir {
  std::string Path;
  TempDir() : Path(fs::makeTempDirectory("proteus-fleet")) {}
  ~TempDir() { fs::removeTree(Path); }
};

std::vector<uint8_t> blob(size_t N, uint8_t Fill) {
  return std::vector<uint8_t>(N, Fill);
}

//===----------------------------------------------------------------------===//
// ShardIndex
//===----------------------------------------------------------------------===//

TEST(ShardIndexTest, ClampsShardCountToValidRange) {
  EXPECT_EQ(ShardIndex(0).shardCount(), 1u);
  EXPECT_EQ(ShardIndex(1).shardCount(), 1u);
  EXPECT_EQ(ShardIndex(8).shardCount(), 8u);
  EXPECT_EQ(ShardIndex(10000).shardCount(), 256u);
}

TEST(ShardIndexTest, DeterministicAcrossInstancesAndInRange) {
  ShardIndex A(6), B(6);
  for (uint64_t K = 0; K != 4096; ++K) {
    uint32_t S = A.shardFor(K * 0x9e3779b97f4a7c15ULL);
    EXPECT_LT(S, 6u);
    EXPECT_EQ(S, B.shardFor(K * 0x9e3779b97f4a7c15ULL))
        << "mapping must be stable across processes";
  }
}

TEST(ShardIndexTest, EveryShardOwnsPartOfTheKeySpace) {
  ShardIndex Idx(8);
  std::vector<unsigned> Count(8, 0);
  for (uint64_t K = 0; K != 20000; ++K)
    ++Count[Idx.shardFor(K * 0x2545f4914f6cdd1dULL + 1)];
  for (unsigned S = 0; S != 8; ++S)
    EXPECT_GT(Count[S], 0u) << "shard " << S << " owns no keys";
}

TEST(ShardIndexTest, GrowingTheRingRemapsOnlyAMinorityOfKeys) {
  // The consistent-hash property PROTEUS_CACHE_SHARDS relies on: adding a
  // shard must not reshuffle the whole key space.
  ShardIndex Before(8), After(9);
  unsigned Moved = 0;
  constexpr unsigned N = 20000;
  for (uint64_t K = 0; K != N; ++K) {
    uint64_t Key = K * 0x9e3779b97f4a7c15ULL + 7;
    if (Before.shardFor(Key) != After.shardFor(Key))
      ++Moved;
  }
  EXPECT_LT(Moved, N / 2) << "adding one shard remapped most keys";
}

TEST(ShardIndexTest, ShardDirNamesAreZeroPadded) {
  EXPECT_EQ(ShardIndex::shardDirName(0), "shard-00");
  EXPECT_EQ(ShardIndex::shardDirName(7), "shard-07");
  EXPECT_EQ(ShardIndex::shardDirName(42), "shard-42");
}

//===----------------------------------------------------------------------===//
// Wire protocol
//===----------------------------------------------------------------------===//

TEST(FleetProtocolTest, RequestsRoundTripEveryOp) {
  wire::Request Pub;
  Pub.Kind = wire::Op::Publish;
  Pub.Blob = BlobKind::Tune;
  Pub.Key = 0xdeadbeefcafef00dULL;
  Pub.Bytes = blob(100, 0x5A);
  auto D = wire::decodeRequest(wire::encodeRequest(Pub));
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->Kind, wire::Op::Publish);
  EXPECT_EQ(D->Blob, BlobKind::Tune);
  EXPECT_EQ(D->Key, Pub.Key);
  EXPECT_EQ(D->Bytes, Pub.Bytes);

  wire::Request Batch;
  Batch.Kind = wire::Op::Batch;
  Batch.BatchKeys = {{0, 1}, {1, 2}, {0, 0xffffffffffffffffULL}};
  auto DB = wire::decodeRequest(wire::encodeRequest(Batch));
  ASSERT_TRUE(DB.has_value());
  EXPECT_EQ(DB->BatchKeys, Batch.BatchKeys);

  for (wire::Op Op : {wire::Op::Ping, wire::Op::Lookup, wire::Op::Acquire,
                      wire::Op::Release, wire::Op::Remove, wire::Op::Clear,
                      wire::Op::Stats}) {
    wire::Request R;
    R.Kind = Op;
    R.Key = 99;
    auto Dec = wire::decodeRequest(wire::encodeRequest(R));
    ASSERT_TRUE(Dec.has_value()) << static_cast<int>(Op);
    EXPECT_EQ(Dec->Kind, Op);
  }
}

TEST(FleetProtocolTest, ResponsesRoundTripEveryShape) {
  wire::Response Hit;
  Hit.Code = wire::Status::Hit;
  Hit.Bytes = blob(64, 0xAB);
  auto D = wire::decodeResponse(wire::encodeResponse(Hit));
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->Code, wire::Status::Hit);
  EXPECT_EQ(D->Bytes, Hit.Bytes);

  wire::Response Err;
  Err.Code = wire::Status::Error;
  Err.Message = "shard on fire";
  auto DE = wire::decodeResponse(wire::encodeResponse(Err));
  ASSERT_TRUE(DE.has_value());
  EXPECT_EQ(DE->Message, "shard on fire");

  wire::Response Stats;
  Stats.Code = wire::Status::Ok;
  Stats.Stats = {{"hits", 7}, {"misses", 3}};
  auto DS = wire::decodeResponse(wire::encodeResponse(Stats));
  ASSERT_TRUE(DS.has_value());
  EXPECT_EQ(DS->Stats, Stats.Stats);

  wire::Response Batch;
  Batch.Code = wire::Status::Ok;
  Batch.BatchResults = {{wire::Status::Hit, blob(16, 1)},
                        {wire::Status::Miss, {}}};
  auto DBR = wire::decodeResponse(wire::encodeResponse(Batch));
  ASSERT_TRUE(DBR.has_value());
  EXPECT_EQ(DBR->BatchResults, Batch.BatchResults);
}

TEST(FleetProtocolTest, MalformedAndTruncatedPayloadsAreRejected) {
  EXPECT_FALSE(wire::decodeRequest({}).has_value());
  EXPECT_FALSE(wire::decodeRequest({0xFF}).has_value()) << "unknown op";
  EXPECT_FALSE(wire::decodeResponse({}).has_value());
  EXPECT_FALSE(wire::decodeResponse({0xEE}).has_value()) << "unknown status";

  // Every truncation of a valid Publish frame must be rejected, never
  // misdecoded.
  wire::Request Pub;
  Pub.Kind = wire::Op::Publish;
  Pub.Key = 42;
  Pub.Bytes = blob(32, 0x11);
  std::vector<uint8_t> Full = wire::encodeRequest(Pub);
  for (size_t Keep = 1; Keep < Full.size(); ++Keep) {
    std::vector<uint8_t> Cut(Full.begin(), Full.begin() + Keep);
    EXPECT_FALSE(wire::decodeRequest(Cut).has_value())
        << "truncated to " << Keep << " bytes";
  }
  // Trailing garbage is a framing error, not ignorable padding.
  Full.push_back(0x00);
  EXPECT_FALSE(wire::decodeRequest(Full).has_value());
}

//===----------------------------------------------------------------------===//
// LocalDirBackend
//===----------------------------------------------------------------------===//

TEST(LocalBackendTest, PublishLookupRemoveClearRoundTrip) {
  TempDir Tmp;
  LocalDirBackend B(Tmp.Path, {});
  EXPECT_FALSE(B.lookup(BlobKind::Code, 1).has_value());
  EXPECT_TRUE(B.publish(BlobKind::Code, 1, blob(128, 0xA1)));
  EXPECT_TRUE(B.publish(BlobKind::Tune, 1, blob(64, 0xB2)));
  auto Code = B.lookup(BlobKind::Code, 1);
  ASSERT_TRUE(Code.has_value());
  EXPECT_EQ(Code->Bytes, blob(128, 0xA1));
  EXPECT_FALSE(Code->Remote) << "local hits are not remote-attributed";
  // Kinds live in disjoint key spaces.
  auto Tune = B.lookup(BlobKind::Tune, 1);
  ASSERT_TRUE(Tune.has_value());
  EXPECT_EQ(Tune->Bytes, blob(64, 0xB2));
  EXPECT_EQ(B.totalBytes(), 128u + 64u);
  EXPECT_TRUE(B.remove(BlobKind::Code, 1));
  EXPECT_FALSE(B.lookup(BlobKind::Code, 1).has_value());
  B.clear();
  EXPECT_EQ(B.totalBytes(), 0u);
  fleet::BackendStats S = B.stats();
  EXPECT_GT(S.Hits, 0u);
  EXPECT_GT(S.Misses, 0u);
  EXPECT_EQ(S.Publishes, 2u);
}

TEST(LocalBackendTest, ShardedLayoutSpreadsEntriesAcrossShardDirs) {
  TempDir Tmp;
  LocalBackendOptions O;
  O.Shards = 4;
  LocalDirBackend B(Tmp.Path, O);
  for (uint64_t K = 0; K != 64; ++K)
    ASSERT_TRUE(B.publish(BlobKind::Code, K * 0x9e3779b97f4a7c15ULL + 3,
                          blob(32, static_cast<uint8_t>(K))));
  // Entries land inside shard subdirectories, none at the top level.
  EXPECT_TRUE(fs::listFiles(Tmp.Path).empty());
  unsigned Populated = 0;
  for (unsigned S = 0; S != 4; ++S)
    if (!fs::listFiles(Tmp.Path + "/" + ShardIndex::shardDirName(S)).empty())
      ++Populated;
  EXPECT_GT(Populated, 1u) << "64 keys all hashed into one shard";
  // And every entry is found again through the same index.
  for (uint64_t K = 0; K != 64; ++K)
    EXPECT_TRUE(
        B.lookup(BlobKind::Code, K * 0x9e3779b97f4a7c15ULL + 3).has_value());
}

TEST(LocalBackendTest, SingleShardKeepsHistoricalFlatLayout) {
  TempDir Tmp;
  LocalDirBackend B(Tmp.Path, {});
  ASSERT_TRUE(B.publish(BlobKind::Code, 0x77, blob(16, 1)));
  auto Names = fs::listFiles(Tmp.Path);
  ASSERT_EQ(Names.size(), 1u);
  EXPECT_EQ(Names[0].find("cache-jit-"), 0u)
      << "1-shard layout must stay byte-compatible with the pre-fleet cache";
}

TEST(LocalBackendTest, BudgetEvictionCoversCodeAndTuneFiles) {
  TempDir Tmp;
  LocalBackendOptions O;
  O.BudgetBytes = 4 * 1024;
  LocalDirBackend B(Tmp.Path, O);
  // Tune records alone can blow the budget — the historical bug was that
  // only cache-jit-*.o files were accounted.
  for (uint64_t K = 0; K != 8; ++K) {
    ASSERT_TRUE(B.publish(BlobKind::Tune, K, blob(1024, 0x70)));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_LE(B.totalBytes(), O.BudgetBytes);
  EXPECT_GT(B.stats().Evictions, 0u) << "tune files must be evictable";
  // Mixed: code entries push out old tune entries and vice versa.
  ASSERT_TRUE(B.publish(BlobKind::Code, 100, blob(2048, 0x33)));
  EXPECT_LE(B.totalBytes(), O.BudgetBytes);
  EXPECT_TRUE(B.lookup(BlobKind::Code, 100).has_value())
      << "the just-published entry must survive its own eviction pass";
}

TEST(LocalBackendTest, CompileClaimsDedupAcrossBackendInstances) {
  TempDir Tmp;
  // Two backends over one directory = two processes sharing a cache.
  LocalDirBackend A(Tmp.Path, {}), B(Tmp.Path, {});
  EXPECT_EQ(A.beginCompile(42), CompileClaim::Owner);
  EXPECT_EQ(B.beginCompile(42), CompileClaim::InFlightElsewhere);
  EXPECT_EQ(A.beginCompile(43), CompileClaim::Owner)
      << "claims are per-key, not global";
  A.endCompile(42);
  EXPECT_EQ(B.beginCompile(42), CompileClaim::Owner);
  B.endCompile(42);
  EXPECT_GT(B.stats().DedupHits, 0u);
}

TEST(LocalBackendTest, StaleClaimFromDeadOwnerIsStolen) {
  TempDir Tmp;
  LocalBackendOptions O;
  O.StaleLockMs = 60;
  LocalDirBackend A(Tmp.Path, O), B(Tmp.Path, O);
  EXPECT_EQ(A.beginCompile(7), CompileClaim::Owner);
  // A "crashes" without endCompile. Fresh claims see in-flight until the
  // lock goes stale, then exactly one steal succeeds.
  EXPECT_EQ(B.beginCompile(7), CompileClaim::InFlightElsewhere);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(B.beginCompile(7), CompileClaim::Owner);
  B.endCompile(7);
}

//===----------------------------------------------------------------------===//
// CacheServer + RemoteCacheBackend
//===----------------------------------------------------------------------===//

struct ServerFixture {
  TempDir Tmp;
  std::string Socket;
  std::unique_ptr<CacheServer> Server;

  explicit ServerFixture(uint32_t Shards = 2, uint64_t Budget = 0) {
    Socket = Tmp.Path + "/cached.sock";
    CacheServerOptions O;
    O.SocketPath = Socket;
    O.Dir = Tmp.Path + "/store";
    O.Shards = Shards;
    O.BudgetBytes = Budget;
    O.Workers = 2;
    Server = CacheServer::start(O);
  }

  std::unique_ptr<RemoteCacheBackend> client() const {
    RemoteBackendOptions RO;
    RO.SocketPath = Socket;
    RO.FallbackDir = Tmp.Path + "/fallback";
    return std::make_unique<RemoteCacheBackend>(std::move(RO));
  }
};

TEST(CacheServerTest, PublishedEntriesAreVisibleToEveryClient) {
  ServerFixture F;
  ASSERT_TRUE(F.Server);
  auto A = F.client(), B = F.client();
  EXPECT_FALSE(A->lookup(BlobKind::Code, 5).has_value());
  EXPECT_TRUE(A->publish(BlobKind::Code, 5, blob(256, 0xC5)));
  auto Hit = B->lookup(BlobKind::Code, 5);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->Bytes, blob(256, 0xC5));
  EXPECT_TRUE(Hit->Remote) << "daemon-served hits must be attributed remote";
  EXPECT_EQ(B->totalBytes(), 256u);
  EXPECT_TRUE(B->remove(BlobKind::Code, 5));
  EXPECT_FALSE(A->lookup(BlobKind::Code, 5).has_value());
  A->clear();
  EXPECT_EQ(A->totalBytes(), 0u);
  EXPECT_TRUE(A->connected());
  EXPECT_GE(F.Server->connectionsAccepted(), 2u);
}

TEST(CacheServerTest, AcquireDedupsAcrossConnections) {
  ServerFixture F;
  ASSERT_TRUE(F.Server);
  auto A = F.client(), B = F.client();
  EXPECT_EQ(A->beginCompile(11), CompileClaim::Owner);
  EXPECT_EQ(B->beginCompile(11), CompileClaim::InFlightElsewhere);
  A->endCompile(11);
  EXPECT_EQ(B->beginCompile(11), CompileClaim::Owner);
  B->endCompile(11);
}

TEST(CacheServerTest, DaemonClaimsAlsoBlockDaemonlessProcesses) {
  // Mixed fleet: one process talks to the daemon, another mounts the same
  // directory with a plain local backend. The daemon takes the on-disk lock
  // too, so both halves of the dedup protocol agree.
  ServerFixture F;
  ASSERT_TRUE(F.Server);
  auto A = F.client();
  LocalBackendOptions O;
  O.Shards = 2; // must match the server's sharding to find the locks
  LocalDirBackend Local(F.Tmp.Path + "/store", O);
  EXPECT_EQ(A->beginCompile(21), CompileClaim::Owner);
  EXPECT_EQ(Local.beginCompile(21), CompileClaim::InFlightElsewhere);
  A->endCompile(21);
  EXPECT_EQ(Local.beginCompile(21), CompileClaim::Owner);
  Local.endCompile(21);
}

TEST(CacheServerTest, OwnerDisconnectReleasesItsClaims) {
  ServerFixture F;
  ASSERT_TRUE(F.Server);
  auto B = F.client();
  {
    auto A = F.client();
    EXPECT_EQ(A->beginCompile(13), CompileClaim::Owner);
    EXPECT_EQ(B->beginCompile(13), CompileClaim::InFlightElsewhere);
  } // A's connection closes with the claim held ("client crashed")
  // The daemon must auto-release; B acquires within a bounded retry loop.
  CompileClaim Got = CompileClaim::InFlightElsewhere;
  for (int Try = 0; Try != 100 && Got != CompileClaim::Owner; ++Try) {
    Got = B->beginCompile(13);
    if (Got != CompileClaim::Owner)
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(Got, CompileClaim::Owner)
      << "claims must die with their connection";
  B->endCompile(13);
}

TEST(CacheServerTest, PublishByOwnerReleasesTheClaim) {
  ServerFixture F;
  ASSERT_TRUE(F.Server);
  auto A = F.client(), B = F.client();
  EXPECT_EQ(A->beginCompile(17), CompileClaim::Owner);
  EXPECT_TRUE(A->publish(BlobKind::Code, 17, blob(64, 0x17)));
  // The publish IS the release: the next claimant wins immediately (and
  // finds the entry on its double-check lookup).
  EXPECT_EQ(B->beginCompile(17), CompileClaim::Owner);
  B->endCompile(17);
  EXPECT_TRUE(B->lookup(BlobKind::Code, 17).has_value());
}

TEST(CacheServerTest, StatsRpcExposesDaemonCounters) {
  ServerFixture F;
  ASSERT_TRUE(F.Server);
  auto A = F.client();
  A->publish(BlobKind::Code, 1, blob(32, 1));
  A->lookup(BlobKind::Code, 1);
  A->lookup(BlobKind::Code, 999);
  std::vector<std::pair<std::string, uint64_t>> Stats = A->remoteStats();
  ASSERT_FALSE(Stats.empty());
  auto Value = [&](const std::string &Name) -> uint64_t {
    for (const auto &KV : Stats)
      if (KV.first == Name)
        return KV.second;
    ADD_FAILURE() << "missing daemon stat: " << Name;
    return 0;
  };
  EXPECT_GE(Value("hits"), 1u);
  EXPECT_GE(Value("misses"), 1u);
  EXPECT_GE(Value("publishes"), 1u);
  EXPECT_GE(Value("total_bytes"), 32u);
}

TEST(CacheServerTest, ConcurrentLookupsBatchAndStayCorrect) {
  ServerFixture F;
  ASSERT_TRUE(F.Server);
  auto A = F.client();
  constexpr unsigned Keys = 16;
  for (uint64_t K = 0; K != Keys; ++K)
    ASSERT_TRUE(A->publish(BlobKind::Code, K, blob(512, static_cast<uint8_t>(K))));
  std::atomic<unsigned> Wrong{0};
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T != 6; ++T)
    Ts.emplace_back([&, T] {
      for (unsigned I = 0; I != 50; ++I) {
        uint64_t K = (T * 7 + I) % Keys;
        auto Hit = A->lookup(BlobKind::Code, K);
        if (!Hit || Hit->Bytes != blob(512, static_cast<uint8_t>(K)))
          Wrong.fetch_add(1);
      }
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Wrong.load(), 0u);
  EXPECT_TRUE(A->connected());
  // 6 threads hammering one connection: the group-commit combiner must have
  // coalesced at least one window into a multi-lookup batch frame.
  EXPECT_GT(A->stats().BatchedLookups, 0u);
}

TEST(CacheServerTest, UnreachableDaemonFallsBackToLocalDir) {
  TempDir Tmp;
  RemoteBackendOptions RO;
  RO.SocketPath = Tmp.Path + "/nobody-home.sock";
  RO.FallbackDir = Tmp.Path;
  RO.TimeoutMs = 200;
  RemoteCacheBackend B(std::move(RO));
  EXPECT_TRUE(B.publish(BlobKind::Code, 3, blob(128, 0x99)));
  auto Hit = B.lookup(BlobKind::Code, 3);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->Bytes, blob(128, 0x99));
  EXPECT_FALSE(Hit->Remote) << "fallback hits are local, not remote";
  EXPECT_FALSE(B.connected());
  EXPECT_GT(B.stats().FallbackOps, 0u);
  EXPECT_TRUE(B.remoteStats().empty());
  // Claims degrade to the lock-file protocol on the fallback directory.
  EXPECT_EQ(B.beginCompile(5), CompileClaim::Owner);
  B.endCompile(5);
}

//===----------------------------------------------------------------------===//
// CodeCache / JitRuntime integration
//===----------------------------------------------------------------------===//

TEST(FleetCodeCacheTest, RemoteHitsAreAttributedSeparately) {
  ServerFixture F;
  ASSERT_TRUE(F.Server);
  RemoteBackendOptions RO;
  RO.SocketPath = F.Socket;
  RO.FallbackDir = F.Tmp.Path + "/fallback";
  CacheLimits L;
  CodeCache C(false, true, F.Tmp.Path + "/store", L,
              std::make_unique<RemoteCacheBackend>(std::move(RO)));
  C.insert(8, blob(64, 8));
  EXPECT_TRUE(C.lookup(8).has_value());
  CodeCacheStats S = C.stats();
  EXPECT_EQ(S.RemoteHits, 1u) << "daemon-served hit must count as remote";
  EXPECT_EQ(S.PersistentHits, 0u);
  EXPECT_EQ(S.MemoryHits, 0u);
}

TEST(FleetCodeCacheTest, WaitRemoteCompileServesTheOwnersPublish) {
  ServerFixture F;
  ASSERT_TRUE(F.Server);
  RemoteBackendOptions ROA, ROB;
  ROA.SocketPath = ROB.SocketPath = F.Socket;
  ROA.FallbackDir = ROB.FallbackDir = F.Tmp.Path + "/fallback";
  CacheLimits L;
  CodeCache A(false, true, F.Tmp.Path + "/store", L,
              std::make_unique<RemoteCacheBackend>(std::move(ROA)));
  CodeCache B(false, true, F.Tmp.Path + "/store", L,
              std::make_unique<RemoteCacheBackend>(std::move(ROB)));

  ASSERT_EQ(A.beginCompile(31), CompileClaim::Owner);
  ASSERT_EQ(B.beginCompile(31), CompileClaim::InFlightElsewhere);
  std::thread Owner([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    A.insert(31, blob(96, 0x31), CodeTier::Final, 0xF1);
    A.endCompile(31);
  });
  std::optional<CachedCode> Served = B.waitRemoteCompile(31, 5000);
  Owner.join();
  ASSERT_TRUE(Served.has_value()) << "waiter must see the owner's publish";
  EXPECT_EQ(Served->Object, blob(96, 0x31));
  EXPECT_EQ(Served->PipelineFingerprint, 0xF1u);
  EXPECT_GT(B.stats().RemoteHits + B.stats().PersistentHits, 0u);
}

TEST(FleetCodeCacheTest, ClaimsAreNoOpsWithoutAPersistentLevel) {
  CodeCache C(true, false, "");
  EXPECT_EQ(C.beginCompile(1), CompileClaim::Owner);
  C.endCompile(1); // must not crash
}

TEST(FleetConfigTest, EnvironmentControlsRemoteModeWarnDontCoerce) {
  setenv("PROTEUS_CACHE_REMOTE", "on", 1);
  setenv("PROTEUS_CACHE_SOCKET", "/run/proteus/cached.sock", 1);
  setenv("PROTEUS_CACHE_SHARDS", "16", 1);
  setenv("PROTEUS_CACHE_BUDGET", "1048576", 1);
  JitConfig C = JitConfig::fromEnvironment();
  EXPECT_TRUE(C.CacheRemote);
  EXPECT_EQ(C.CacheSocket, "/run/proteus/cached.sock");
  EXPECT_EQ(C.Limits.Shards, 16u);
  EXPECT_EQ(C.Limits.BudgetBytes, 1048576u);

  // Invalid values keep the defaults and are reported, never coerced.
  setenv("PROTEUS_CACHE_REMOTE", "maybe", 1);
  setenv("PROTEUS_CACHE_SHARDS", "4096", 1);
  setenv("PROTEUS_CACHE_BUDGET", "lots", 1);
  std::vector<std::string> Warnings;
  CacheLimits L = CacheLimits::fromEnvironment(&Warnings);
  EXPECT_EQ(L.Shards, 1u);
  EXPECT_EQ(L.BudgetBytes, 0u);
  EXPECT_GE(Warnings.size(), 2u);
  JitConfig C2 = JitConfig::fromEnvironment();
  EXPECT_FALSE(C2.CacheRemote) << "unknown mode must fall back to off";

  unsetenv("PROTEUS_CACHE_REMOTE");
  unsetenv("PROTEUS_CACHE_SOCKET");
  unsetenv("PROTEUS_CACHE_SHARDS");
  unsetenv("PROTEUS_CACHE_BUDGET");
}

TEST(FleetJitTest, EndToEndJitThroughTheSharedService) {
  ServerFixture F;
  ASSERT_TRUE(F.Server);
  Context Ctx;
  Module M(Ctx, "app");
  buildDaxpyKernel(M);
  AotOptions AO;
  AO.Arch = GpuArch::AmdGcnSim;
  AO.EnableProteusExtensions = true;
  CompiledProgram Prog = aotCompile(M, AO);

  JitConfig JC;
  JC.CacheDir = F.Tmp.Path + "/store";
  JC.CacheRemote = true;
  JC.CacheSocket = F.Socket;

  auto RunOnce = [&](uint64_t ExpectCompilations, uint64_t ExpectRemoteHits) {
    Device Dev(getAmdGcnSimTarget(), 1 << 22);
    JitRuntime Jit(Dev, Prog.ModuleId, JC);
    LoadedProgram LP(Dev, Prog, &Jit);
    ASSERT_TRUE(LP.ok()) << LP.error();
    DevicePtr X = 0, Y = 0;
    gpuMalloc(Dev, &X, 64 * 8);
    gpuMalloc(Dev, &Y, 64 * 8);
    std::vector<double> HX(64, 2.0), HY(64, 1.0);
    gpuMemcpyHtoD(Dev, X, HX.data(), 64 * 8);
    gpuMemcpyHtoD(Dev, Y, HY.data(), 64 * 8);
    std::vector<KernelArg> Args = {{sem::boxF64(3.0)}, {X}, {Y}, {64}};
    std::string Err;
    ASSERT_EQ(LP.launch("daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1}, Args, &Err),
              GpuError::Success)
        << Err;
    std::vector<double> Out(64);
    gpuMemcpyDtoH(Dev, Out.data(), Y, 64 * 8);
    for (double V : Out)
      EXPECT_DOUBLE_EQ(V, 7.0); // 3*2 + 1
    EXPECT_EQ(Jit.stats().Compilations, ExpectCompilations);
    EXPECT_GE(Jit.cache().stats().RemoteHits, ExpectRemoteHits);
  };

  RunOnce(1, 0); // cold: compiles, publishes to the daemon
  RunOnce(0, 1); // a second "process" is served by the daemon, no compile
  // The object really lives daemon-side: the store holds it, the fallback
  // dir was never used.
  EXPECT_GT(F.Server->backend().totalBytes(), 0u);
}

} // namespace
