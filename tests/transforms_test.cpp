//===- transforms_test.cpp - optimization pass tests ----------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Each pass is checked two ways: (1) targeted structural expectations, and
// (2) differential execution — the pass must preserve the reference
// interpreter's observable behaviour (memory image) on concrete inputs.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/Context.h"
#include "ir/IRPrinter.h"
#include "transforms/CSE.h"
#include "transforms/DCE.h"
#include "transforms/InstCombine.h"
#include "transforms/Inliner.h"
#include "transforms/LICM.h"
#include "transforms/LoopInfo.h"
#include "transforms/LoopUnroll.h"
#include "transforms/Mem2Reg.h"
#include "transforms/O3Pipeline.h"
#include "transforms/SimplifyCFG.h"
#include "transforms/SpecializeArgs.h"

#include <gtest/gtest.h>

using namespace pir;
using namespace proteus;
using namespace proteus_test;

namespace {

size_t countInstructions(Function &F) {
  size_t N = 0;
  for (BasicBlock &BB : F)
    N += BB.size();
  return N;
}

size_t countKind(Function &F, ValueKind K) {
  size_t N = 0;
  for (BasicBlock &BB : F)
    for (Instruction &I : BB)
      if (I.getKind() == K)
        ++N;
  return N;
}

/// Runs loopsum through the interpreter over a fresh memory image.
std::vector<uint8_t> runLoopSum(Function &F, uint32_t Iters,
                                bool ArgsIncludeN = true) {
  constexpr uint32_t N = 8;
  std::vector<uint8_t> Mem(2 * N * sizeof(double));
  auto *In = reinterpret_cast<double *>(Mem.data());
  for (uint32_t I = 0; I != N; ++I)
    In[I] = 0.5 + I;
  std::vector<uint64_t> Args = {0, N * sizeof(double)};
  if (ArgsIncludeN)
    Args.push_back(Iters);
  interpretLaunch(F, Args, Mem, 1, N);
  return Mem;
}

TEST(InstCombineTest, FoldsConstantExpressions) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction("k", Ctx.getVoidTy(), {Ctx.getPtrTy()},
                                 {"out"}, FunctionKind::Kernel);
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  Value *C = B.createFAdd(B.createFMul(B.getDouble(3.0), B.getDouble(4.0)),
                          B.getDouble(1.0));
  B.createStore(C, F->getArg(0));
  B.createRet();

  InstCombinePass().run(*F);
  expectValid(*F);
  // fmul and fadd must both be folded: only store+ret remain.
  EXPECT_EQ(countInstructions(*F), 2u);
  auto *St = cast<StoreInst>(&F->getEntryBlock().front());
  auto *Folded = dyn_cast<ConstantFP>(St->getValue());
  ASSERT_NE(Folded, nullptr);
  EXPECT_DOUBLE_EQ(Folded->getValue(), 13.0);
}

TEST(InstCombineTest, AppliesIdentitiesAndStrengthReduction) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction(
      "k", Ctx.getVoidTy(), {Ctx.getI32Ty(), Ctx.getPtrTy()}, {"a", "out"},
      FunctionKind::Kernel);
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  Value *A = F->getArg(0);
  Value *V = B.createAdd(A, B.getInt32(0));    // -> a
  V = B.createMul(V, B.getInt32(8));           // -> shl a, 3
  V = B.createUDiv(V, B.getInt32(4));          // -> lshr _, 2
  V = B.createURem(V, B.getInt32(16));         // -> and _, 15
  B.createStore(V, F->getArg(1));
  B.createRet();

  InstCombinePass().run(*F);
  expectValid(*F);
  EXPECT_EQ(countKind(*F, ValueKind::Mul), 0u);
  EXPECT_EQ(countKind(*F, ValueKind::UDiv), 0u);
  EXPECT_EQ(countKind(*F, ValueKind::URem), 0u);
  EXPECT_EQ(countKind(*F, ValueKind::Shl), 1u);
  EXPECT_EQ(countKind(*F, ValueKind::LShr), 1u);
  EXPECT_EQ(countKind(*F, ValueKind::And), 1u);
}

TEST(InstCombineTest, ExpandsPowBySmallInteger) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction("k", Ctx.getVoidTy(),
                                 {Ctx.getF64Ty(), Ctx.getPtrTy()},
                                 {"x", "out"}, FunctionKind::Kernel);
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  Value *P = B.createPow(F->getArg(0), B.getDouble(3.0));
  B.createStore(P, F->getArg(1));
  B.createRet();

  InstCombinePass().run(*F);
  expectValid(*F);
  EXPECT_EQ(countKind(*F, ValueKind::Pow), 0u);
  EXPECT_EQ(countKind(*F, ValueKind::FMul), 2u);
}

TEST(DCETest, RemovesDeadChainsKeepsEffects) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction("k", Ctx.getVoidTy(), {Ctx.getPtrTy()},
                                 {"p"}, FunctionKind::Kernel);
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  // Dead chain.
  Value *D1 = B.createAdd(B.getInt32(1), B.getInt32(2));
  Value *D2 = B.createMul(D1, B.getInt32(3));
  B.createXor(D2, D2);
  // Live store must survive; dead load goes.
  B.createLoad(Ctx.getF64Ty(), F->getArg(0));
  B.createStore(B.getDouble(1.0), F->getArg(0));
  B.createRet();

  EXPECT_TRUE(DCEPass().run(*F));
  expectValid(*F);
  EXPECT_EQ(countInstructions(*F), 2u); // store + ret
}

TEST(SimplifyCFGTest, FoldsConstantBranchAndRemovesDeadBlock) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction("k", Ctx.getVoidTy(), {Ctx.getPtrTy()},
                                 {"p"}, FunctionKind::Kernel);
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *Dead = F->createBlock("dead", Ctx.getVoidTy());
  BasicBlock *Live = F->createBlock("live", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  B.createCondBr(Ctx.getTrue(), Live, Dead);
  B.setInsertPoint(Dead);
  B.createStore(B.getDouble(666.0), F->getArg(0));
  B.createBr(Live);
  B.setInsertPoint(Live);
  PhiInst *Phi = B.createPhi(Ctx.getF64Ty(), "v");
  Phi->addIncoming(B.getDouble(1.0), Entry);
  Phi->addIncoming(B.getDouble(2.0), Dead);
  B.createStore(Phi, F->getArg(0));
  B.createRet();

  EXPECT_TRUE(SimplifyCFGPass().run(*F));
  expectValid(*F);
  // Everything merges into one block; the phi resolves to 1.0.
  EXPECT_EQ(F->size(), 1u);
  EXPECT_EQ(countKind(*F, ValueKind::Phi), 0u);
  auto *St = cast<StoreInst>(&F->getEntryBlock().front());
  EXPECT_DOUBLE_EQ(cast<ConstantFP>(St->getValue())->getValue(), 1.0);
}

TEST(CSETest, DeduplicatesAcrossDominatedBlocks) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction("k", Ctx.getVoidTy(),
                                 {Ctx.getI32Ty(), Ctx.getPtrTy()},
                                 {"a", "p"}, FunctionKind::Kernel);
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *Next = F->createBlock("next", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  Value *E1 = B.createMul(F->getArg(0), F->getArg(0));
  B.createStore(E1, F->getArg(1));
  B.createBr(Next);
  B.setInsertPoint(Next);
  Value *E2 = B.createMul(F->getArg(0), F->getArg(0)); // same expression
  Value *E3 = B.createMul(F->getArg(0), F->getArg(0)); // and again
  Value *S = B.createAdd(E2, E3);
  B.createStore(S, F->getArg(1));
  B.createRet();

  EXPECT_TRUE(CSEPass().run(*F));
  expectValid(*F);
  EXPECT_EQ(countKind(*F, ValueKind::Mul), 1u);
}

TEST(CSETest, NormalizesCommutativeOperands) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction("k", Ctx.getVoidTy(),
                                 {Ctx.getI32Ty(), Ctx.getI32Ty(),
                                  Ctx.getPtrTy()},
                                 {"a", "b", "p"}, FunctionKind::Kernel);
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  Value *X = B.createAdd(F->getArg(0), F->getArg(1));
  Value *Y = B.createAdd(F->getArg(1), F->getArg(0)); // commuted duplicate
  B.createStore(B.createMul(X, Y), F->getArg(2));
  B.createRet();

  EXPECT_TRUE(CSEPass().run(*F));
  EXPECT_EQ(countKind(*F, ValueKind::Add), 1u);
}

TEST(Mem2RegTest, PromotesLocalsAndInsertsPhis) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  // if (flag) v = 1.0 else v = 2.0; out[0] = v
  Function *F = M.createFunction("k", Ctx.getVoidTy(),
                                 {Ctx.getI1Ty(), Ctx.getPtrTy()},
                                 {"flag", "out"}, FunctionKind::Kernel);
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *T = F->createBlock("t", Ctx.getVoidTy());
  BasicBlock *E = F->createBlock("e", Ctx.getVoidTy());
  BasicBlock *Join = F->createBlock("join", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  Value *Slot = B.createAlloca(Ctx.getF64Ty(), 1, "v");
  B.createCondBr(F->getArg(0), T, E);
  B.setInsertPoint(T);
  B.createStore(B.getDouble(1.0), Slot);
  B.createBr(Join);
  B.setInsertPoint(E);
  B.createStore(B.getDouble(2.0), Slot);
  B.createBr(Join);
  B.setInsertPoint(Join);
  Value *V = B.createLoad(Ctx.getF64Ty(), Slot);
  B.createStore(V, F->getArg(1));
  B.createRet();

  EXPECT_TRUE(Mem2RegPass().run(*F));
  expectValid(*F);
  EXPECT_EQ(countKind(*F, ValueKind::Alloca), 0u);
  EXPECT_EQ(countKind(*F, ValueKind::Phi), 1u);
  EXPECT_EQ(countKind(*F, ValueKind::Load), 0u);
  EXPECT_EQ(countKind(*F, ValueKind::Store), 1u); // only the out-store

  // Behaviour check for both arms.
  for (bool Flag : {true, false}) {
    std::vector<uint8_t> Mem(8);
    IRInterpreter Interp(Mem);
    auto R = Interp.run(*F, {Flag ? 1ull : 0ull, 0}, ThreadGeometry{});
    ASSERT_TRUE(R.Ok) << R.Error;
    double Out;
    std::memcpy(&Out, Mem.data(), 8);
    EXPECT_DOUBLE_EQ(Out, Flag ? 1.0 : 2.0);
  }
}

TEST(Mem2RegTest, LeavesEscapingAllocasAlone) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction("k", Ctx.getVoidTy(), {Ctx.getPtrTy()},
                                 {"out"}, FunctionKind::Kernel);
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  Value *Arr = B.createAlloca(Ctx.getF64Ty(), 4, "arr"); // multi-element
  Value *P = B.createGep(Ctx.getF64Ty(), Arr, B.getInt32(2));
  B.createStore(B.getDouble(7.0), P);
  B.createRet();
  EXPECT_FALSE(Mem2RegPass().run(*F));
  EXPECT_EQ(countKind(*F, ValueKind::Alloca), 1u);
}

TEST(InlinerTest, InlinesDeviceCallsPreservingBehaviour) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *Dev = M.createFunction("mad", Ctx.getF64Ty(),
                                   {Ctx.getF64Ty(), Ctx.getF64Ty()},
                                   {"x", "y"}, FunctionKind::Device);
  B.setInsertPoint(Dev->createBlock("entry", Ctx.getVoidTy()));
  B.createRet(B.createFAdd(B.createFMul(Dev->getArg(0), Dev->getArg(0)),
                           Dev->getArg(1)));

  Function *K = M.createFunction("k", Ctx.getVoidTy(), {Ctx.getPtrTy()},
                                 {"out"}, FunctionKind::Kernel);
  B.setInsertPoint(K->createBlock("entry", Ctx.getVoidTy()));
  Value *R1 = B.createCall(Dev, {B.getDouble(3.0), B.getDouble(1.0)});
  Value *R2 = B.createCall(Dev, {R1, B.getDouble(0.5)});
  B.createStore(R2, K->getArg(0));
  B.createRet();

  EXPECT_TRUE(InlinerPass().run(*K));
  expectValid(*K);
  EXPECT_EQ(countKind(*K, ValueKind::Call), 0u);

  std::vector<uint8_t> Mem(8);
  IRInterpreter Interp(Mem);
  auto R = Interp.run(*K, {0}, ThreadGeometry{});
  ASSERT_TRUE(R.Ok) << R.Error;
  double Out;
  std::memcpy(&Out, Mem.data(), 8);
  EXPECT_DOUBLE_EQ(Out, 100.5); // (3*3+1)^2 + 0.5
}

TEST(InlinerTest, HandlesMultipleReturnsWithPhi) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *Dev = M.createFunction("pick", Ctx.getF64Ty(),
                                   {Ctx.getI1Ty()}, {"c"},
                                   FunctionKind::Device);
  BasicBlock *DE = Dev->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *DT = Dev->createBlock("t", Ctx.getVoidTy());
  BasicBlock *DF = Dev->createBlock("f", Ctx.getVoidTy());
  B.setInsertPoint(DE);
  B.createCondBr(Dev->getArg(0), DT, DF);
  B.setInsertPoint(DT);
  B.createRet(B.getDouble(10.0));
  B.setInsertPoint(DF);
  B.createRet(B.getDouble(20.0));

  Function *K = M.createFunction("k", Ctx.getVoidTy(),
                                 {Ctx.getI1Ty(), Ctx.getPtrTy()},
                                 {"c", "out"}, FunctionKind::Kernel);
  B.setInsertPoint(K->createBlock("entry", Ctx.getVoidTy()));
  Value *R = B.createCall(Dev, {K->getArg(0)});
  B.createStore(R, K->getArg(1));
  B.createRet();

  EXPECT_TRUE(InlinerPass().run(*K));
  expectValid(*K);
  for (bool C : {true, false}) {
    std::vector<uint8_t> Mem(8);
    IRInterpreter Interp(Mem);
    auto Res = Interp.run(*K, {C ? 1ull : 0ull, 0}, ThreadGeometry{});
    ASSERT_TRUE(Res.Ok) << Res.Error;
    double Out;
    std::memcpy(&Out, Mem.data(), 8);
    EXPECT_DOUBLE_EQ(Out, C ? 10.0 : 20.0);
  }
}

TEST(LoopInfoTest, DetectsCanonicalLoopAndTripCount) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildLoopSumKernel(M);
  // Specialize n := 12 so the trip count becomes constant.
  specializeArguments(*F, {{2, 12}});

  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  Loop *L = LI.loops()[0].get();
  EXPECT_NE(L->getPreheader(), nullptr);
  EXPECT_NE(L->getSingleLatch(), nullptr);
  EXPECT_NE(L->getDedicatedExit(), nullptr);
  auto TC = computeConstantTripCount(*L, 64);
  ASSERT_TRUE(TC.has_value());
  EXPECT_EQ(TC->Count, 12u);
}

TEST(LoopInfoTest, UnknownBoundHasNoTripCount) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildLoopSumKernel(M);
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  EXPECT_FALSE(computeConstantTripCount(*LI.loops()[0], 64).has_value());
}

TEST(LoopUnrollTest, FullyUnrollsSpecializedLoopPreservingResults) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildLoopSumKernel(M);
  std::vector<uint8_t> Before = runLoopSum(*F, 9);

  specializeArguments(*F, {{2, 9}});
  EXPECT_TRUE(LoopUnrollPass().run(*F));
  expectValid(*F);
  // Loop is gone: no phis and no back edge.
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  EXPECT_EQ(LI.loops().size(), 0u);

  std::vector<uint8_t> After = runLoopSum(*F, 9, /*ArgsIncludeN=*/true);
  EXPECT_EQ(Before, After);
}

TEST(LoopUnrollTest, TripCountZeroCollapsesLoop) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildLoopSumKernel(M);
  specializeArguments(*F, {{2, 0}});
  EXPECT_TRUE(LoopUnrollPass().run(*F));
  expectValid(*F);
  std::vector<uint8_t> Mem = runLoopSum(*F, 0);
  auto *Out = reinterpret_cast<double *>(Mem.data() + 8 * sizeof(double));
  for (int I = 0; I != 8; ++I)
    EXPECT_DOUBLE_EQ(Out[I], 0.0);
}

TEST(LoopUnrollTest, RespectsSizeThreshold) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildLoopSumKernel(M);
  specializeArguments(*F, {{2, 40}});
  UnrollOptions Opts;
  Opts.MaxTripCount = 8; // 40 > 8: refuse
  EXPECT_FALSE(LoopUnrollPass(Opts).run(*F));
}

TEST(LICMTest, HoistsInvariantComputation) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  // for (i<n) out[i] += (a*a); the a*a must hoist to the preheader.
  Function *F = M.createFunction("k", Ctx.getVoidTy(),
                                 {Ctx.getF64Ty(), Ctx.getPtrTy(),
                                  Ctx.getI32Ty()},
                                 {"a", "out", "n"}, FunctionKind::Kernel);
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *H = F->createBlock("header", Ctx.getVoidTy());
  BasicBlock *Body = F->createBlock("body", Ctx.getVoidTy());
  BasicBlock *Exit = F->createBlock("exit", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  B.createBr(H);
  B.setInsertPoint(H);
  PhiInst *I = B.createPhi(Ctx.getI32Ty(), "i");
  I->addIncoming(B.getInt32(0), Entry);
  B.createCondBr(B.createICmp(ICmpPred::SLT, I, F->getArg(2)), Body, Exit);
  B.setInsertPoint(Body);
  Value *AA = B.createFMul(F->getArg(0), F->getArg(0), "aa");
  Value *P = B.createGep(Ctx.getF64Ty(), F->getArg(1), I);
  Value *Old = B.createLoad(Ctx.getF64Ty(), P);
  B.createStore(B.createFAdd(Old, AA), P);
  Value *I2 = B.createAdd(I, B.getInt32(1));
  I->addIncoming(I2, Body);
  B.createBr(H);
  B.setInsertPoint(Exit);
  B.createRet();

  EXPECT_TRUE(LICMPass().run(*F));
  expectValid(*F);
  // aa moved to entry (the preheader).
  bool FoundInEntry = false;
  for (Instruction &Inst : F->getEntryBlock())
    if (Inst.getKind() == ValueKind::FMul)
      FoundInEntry = true;
  EXPECT_TRUE(FoundInEntry);
}

TEST(SpecializeTest, FoldsDesignatedArgumentsOnly) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildDaxpyKernel(M);
  unsigned N = specializeArguments(*F, {{0, sem::boxF64(2.5)},
                                        {3, 1024}});
  EXPECT_EQ(N, 2u);
  EXPECT_EQ(F->getArg(0)->getNumUses(), 0u);
  EXPECT_EQ(F->getArg(3)->getNumUses(), 0u);
  EXPECT_GT(F->getArg(1)->getNumUses(), 0u);
  expectValid(*F);
}

TEST(SpecializeTest, LaunchBoundsDefaultsMinBlocksToOne) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildDaxpyKernel(M);
  specializeLaunchBounds(*F, 256);
  ASSERT_TRUE(F->getLaunchBounds().has_value());
  EXPECT_EQ(F->getLaunchBounds()->MaxThreadsPerBlock, 256u);
  EXPECT_EQ(F->getLaunchBounds()->MinBlocksPerProcessor, 1u);
}

TEST(O3PipelineTest, SpecializedLoopSumCollapsesAndMatches) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildLoopSumKernel(M);
  std::vector<uint8_t> Before = runLoopSum(*F, 7);
  size_t InstrsBefore = countInstructions(*F);

  specializeArguments(*F, {{2, 7}});
  O3Options Opts;
  Opts.VerifyEach = true;
  runO3(*F, Opts);
  expectValid(*F);

  // Unrolled + folded: no branches left, single block.
  EXPECT_EQ(F->size(), 1u);
  std::vector<uint8_t> After = runLoopSum(*F, 7);
  EXPECT_EQ(Before, After);
  (void)InstrsBefore;
}

// Property sweep: for every trip count, O3 on the specialized kernel
// preserves the memory image produced by the unoptimized kernel.
class O3EquivalenceTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(O3EquivalenceTest, LoopSumAllTripCounts) {
  uint32_t Iters = GetParam();
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildLoopSumKernel(M);
  std::vector<uint8_t> Before = runLoopSum(*F, Iters);

  specializeArguments(*F, {{2, Iters}});
  O3Options Opts;
  Opts.VerifyEach = true;
  runO3(*F, Opts);
  std::vector<uint8_t> After = runLoopSum(*F, Iters);
  EXPECT_EQ(Before, After);
}

INSTANTIATE_TEST_SUITE_P(TripCounts, O3EquivalenceTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           33u, 64u));

TEST(O3PipelineTest, DaxpyGuardBranchSurvivesWithoutSpecialization) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildDaxpyKernel(M);
  runO3(*F);
  expectValid(*F);
  EXPECT_EQ(countKind(*F, ValueKind::CondBr), 1u);
}

} // namespace
