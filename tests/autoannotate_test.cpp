//===- autoannotate_test.cpp - automatic annotation tests -------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/Context.h"
#include "jit/AutoAnnotate.h"

#include <gtest/gtest.h>

using namespace pir;
using namespace proteus;
using namespace proteus_test;

namespace {

bool recommends(const std::vector<ArgRecommendation> &Recs, uint32_t Idx,
                SpecializationReason Why) {
  for (const ArgRecommendation &R : Recs)
    if (R.ArgIndex == Idx)
      return std::find(R.Reasons.begin(), R.Reasons.end(), Why) !=
             R.Reasons.end();
  return false;
}

bool mentions(const std::vector<ArgRecommendation> &Recs, uint32_t Idx) {
  for (const ArgRecommendation &R : Recs)
    if (R.ArgIndex == Idx)
      return true;
  return false;
}

TEST(AutoAnnotateTest, DaxpyMatchesThePapersChoice) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildDaxpyKernel(M);
  F->setJitAnnotation(JitAnnotation{{}}); // pretend unannotated
  std::vector<ArgRecommendation> Recs = suggestJitAnnotations(*F);
  // a (1): numeric; n (4): loop-bound/guard comparison. Pointers excluded.
  EXPECT_TRUE(recommends(Recs, 1, SpecializationReason::NumericCompute));
  EXPECT_TRUE(recommends(Recs, 4, SpecializationReason::ControlFlow));
  EXPECT_FALSE(mentions(Recs, 2));
  EXPECT_FALSE(mentions(Recs, 3));
}

TEST(AutoAnnotateTest, LoopBoundIsControlFlow) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildLoopSumKernel(M);
  std::vector<ArgRecommendation> Recs = suggestJitAnnotations(*F);
  EXPECT_TRUE(recommends(Recs, 3, SpecializationReason::ControlFlow))
      << "the loop bound must be classified as control-relevant";
}

TEST(AutoAnnotateTest, SkipsUnusedAndStoreOnlyArguments) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction(
      "k", Ctx.getVoidTy(),
      {Ctx.getPtrTy(), Ctx.getF64Ty(), Ctx.getF64Ty(), Ctx.getI32Ty()},
      {"out", "stored_only", "unused", "idx"}, FunctionKind::Kernel);
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  // stored_only is written to memory verbatim; idx only addresses.
  Value *P = B.createGep(Ctx.getF64Ty(), F->getArg(0), F->getArg(3));
  B.createStore(F->getArg(1), P);
  B.createRet();

  std::vector<ArgRecommendation> Recs = suggestJitAnnotations(*F);
  EXPECT_FALSE(mentions(Recs, 2)) << "store-only must be skipped";
  EXPECT_FALSE(mentions(Recs, 3)) << "unused must be skipped";
  EXPECT_TRUE(recommends(Recs, 4, SpecializationReason::Addressing));
}

TEST(AutoAnnotateTest, FollowsDeviceFunctionCalls) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  // The scalar only becomes control-relevant inside a callee.
  Function *Dev = M.createFunction("gate", Ctx.getF64Ty(),
                                   {Ctx.getF64Ty()}, {"t"},
                                   FunctionKind::Device);
  B.setInsertPoint(Dev->createBlock("entry", Ctx.getVoidTy()));
  Value *C = B.createFCmp(FCmpPred::OLT, Dev->getArg(0), B.getDouble(1.0));
  B.createRet(B.createSelect(C, B.getDouble(0.0), B.getDouble(2.0)));

  Function *K = M.createFunction("k", Ctx.getVoidTy(),
                                 {Ctx.getPtrTy(), Ctx.getF64Ty()},
                                 {"out", "threshold"}, FunctionKind::Kernel);
  B.setInsertPoint(K->createBlock("entry", Ctx.getVoidTy()));
  Value *R = B.createCall(Dev, {K->getArg(1)});
  B.createStore(R, K->getArg(0));
  B.createRet();

  std::vector<ArgRecommendation> Recs = suggestJitAnnotations(*K);
  EXPECT_TRUE(recommends(Recs, 2, SpecializationReason::ControlFlow));
}

TEST(AutoAnnotateTest, ModuleAutoAnnotationRespectsExisting) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *Daxpy = buildDaxpyKernel(M); // already annotated {1, 4}
  buildLoopSumKernel(M);                 // annotated {3}
  Function *Fresh = M.createFunction("fresh", Ctx.getVoidTy(),
                                     {Ctx.getPtrTy(), Ctx.getI32Ty()},
                                     {"out", "n"}, FunctionKind::Kernel);
  IRBuilder B(Ctx);
  B.setInsertPoint(Fresh->createBlock("entry", Ctx.getVoidTy()));
  Value *P = B.createGep(Ctx.getI32Ty(), Fresh->getArg(0),
                         B.createThreadIdx(0));
  B.createStore(Fresh->getArg(1), P);
  B.createRet();

  // "fresh" stores its scalar verbatim: nothing to recommend there, and the
  // pre-annotated kernels must be left alone.
  unsigned Annotated = autoAnnotateKernels(M);
  EXPECT_EQ(Annotated, 0u);
  EXPECT_EQ(Daxpy->getJitAnnotation()->ArgIndices,
            (std::vector<uint32_t>{1, 4}));
  EXPECT_FALSE(Fresh->hasJitAnnotation());

  // A kernel with a real opportunity gets annotated.
  Function *K2 = M.createFunction("k2", Ctx.getVoidTy(),
                                  {Ctx.getPtrTy(), Ctx.getF64Ty()},
                                  {"out", "scale"}, FunctionKind::Kernel);
  B.setInsertPoint(K2->createBlock("entry", Ctx.getVoidTy()));
  Value *Tid = B.createThreadIdx(0);
  Value *Vf = B.createSIToFP(Tid, Ctx.getF64Ty());
  Value *Scaled = B.createFMul(Vf, K2->getArg(1));
  B.createStore(Scaled, B.createGep(Ctx.getF64Ty(), K2->getArg(0), Tid));
  B.createRet();
  EXPECT_EQ(autoAnnotateKernels(M), 1u);
  ASSERT_TRUE(K2->hasJitAnnotation());
  EXPECT_EQ(K2->getJitAnnotation()->ArgIndices,
            (std::vector<uint32_t>{2}));
}

TEST(AutoAnnotateTest, AgreesWithManualChoicesOnTheBenchmarks) {
  // For each HeCBench-sim program, the automatic analysis must recommend a
  // superset-or-equal set relative to the hand-written annotations (it may
  // find additional legitimately meaningful scalars).
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildLoopSumKernel(M);
  auto Recs = suggestJitAnnotations(*F);
  for (uint32_t Manual : F->getJitAnnotation()->ArgIndices)
    EXPECT_TRUE(mentions(Recs, Manual)) << "missing manual index " << Manual;
}

} // namespace
