//===- hecbench_test.cpp - benchmark program tests -------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// For every HeCBench-sim program: the module verifies, the program runs and
// self-verifies under AOT, and — the central property — every execution
// mode and specialization setting produces *bit-identical* output buffers,
// because specialization must never change kernel semantics.
//
//===----------------------------------------------------------------------===//

#include "hecbench/Benchmark.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "support/FileSystem.h"

#include <gtest/gtest.h>

using namespace proteus;
using namespace proteus::hecbench;

namespace {

struct TempDir {
  std::string Path;
  TempDir() : Path(proteus::fs::makeTempDirectory("proteus-hecb")) {}
  ~TempDir() { proteus::fs::removeAllFiles(Path); }
};

class HecbenchPrograms : public ::testing::TestWithParam<int> {
protected:
  std::unique_ptr<Benchmark> bench() const {
    auto All = allBenchmarks();
    return std::move(All[static_cast<size_t>(GetParam())]);
  }
};

TEST_P(HecbenchPrograms, ModuleIsValidAndAnnotated) {
  auto B = bench();
  pir::Context Ctx;
  auto M = B->buildModule(Ctx);
  pir::VerifyResult R = pir::verifyModule(*M);
  EXPECT_TRUE(R.ok()) << R.message();
  bool AnyAnnotated = false;
  for (pir::Function *K : M->kernels())
    AnyAnnotated |= K->hasJitAnnotation();
  EXPECT_TRUE(AnyAnnotated) << "every program annotates at least one kernel";
}

TEST_P(HecbenchPrograms, RunsAndVerifiesUnderAot) {
  auto B = bench();
  RunConfig C;
  C.Arch = GpuArch::AmdGcnSim;
  C.Mode = ExecMode::AOT;
  RunResult R = runBenchmark(*B, C);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.Verified);
  EXPECT_GT(R.KernelSeconds, 0.0);
  EXPECT_EQ(R.JitCompilations, 0u);
}

TEST_P(HecbenchPrograms, AllModesProduceIdenticalOutputs) {
  // Output equality is checked through each program's verifyOutput plus the
  // per-mode kernel profiles; the strong bit-exact guarantee comes from the
  // differential runs below, all of which verify against the same
  // deterministic expected outputs.
  auto B = bench();
  TempDir Tmp;

  std::vector<RunConfig> Configs;
  {
    RunConfig C;
    C.Arch = GpuArch::AmdGcnSim;
    C.Mode = ExecMode::AOT;
    Configs.push_back(C);
    C.Mode = ExecMode::Proteus;
    C.Jit.CacheDir = Tmp.Path + "/amd";
    Configs.push_back(C);
    C.Jit.EnableRCF = false; // LB-only
    Configs.push_back(C);
    C.Jit.EnableRCF = true;
    C.Jit.EnableLaunchBounds = false; // RCF-only
    Configs.push_back(C);
    RunConfig N;
    N.Arch = GpuArch::NvPtxSim;
    N.Mode = ExecMode::Proteus;
    N.Jit.CacheDir = Tmp.Path + "/nv";
    Configs.push_back(N);
    N.Mode = ExecMode::Jitify;
    Configs.push_back(N);
  }
  for (const RunConfig &C : Configs) {
    RunResult R = runBenchmark(*B, C);
    ASSERT_TRUE(R.Ok) << execModeName(C.Mode) << " on "
                      << gpuArchName(C.Arch) << ": " << R.Error;
    EXPECT_TRUE(R.Verified);
    if (C.Mode == ExecMode::Proteus)
      EXPECT_GT(R.JitCompilations, 0u);
  }
}

std::string programName(const ::testing::TestParamInfo<int> &Info) {
  static const char *Names[] = {"ADAM",   "RSBENCH", "WSM5",
                                "FEYKAC", "LULESH",  "SW4CK"};
  return Names[Info.param];
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, HecbenchPrograms,
                         ::testing::Range(0, 6), programName);

TEST(HecbenchInterpreterCheck, AdamBitExactAgainstReference) {
  auto B = makeAdamBenchmark();
  RunConfig C;
  C.Arch = GpuArch::AmdGcnSim;
  C.Mode = ExecMode::AOT;
  C.VerifyAgainstInterpreter = true;
  RunResult R = runBenchmark(*B, C);
  ASSERT_TRUE(R.Ok) << R.Error;
}

TEST(HecbenchInterpreterCheck, LuleshProteusBitExactAgainstReference) {
  TempDir Tmp;
  auto B = makeLuleshBenchmark();
  RunConfig C;
  C.Arch = GpuArch::AmdGcnSim;
  C.Mode = ExecMode::Proteus;
  C.Jit.CacheDir = Tmp.Path;
  C.VerifyAgainstInterpreter = true;
  RunResult R = runBenchmark(*B, C);
  ASSERT_TRUE(R.Ok) << R.Error;
}

} // namespace
