//===- ir_textual_test.cpp - printer/parser round-trip tests ------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"

#include <gtest/gtest.h>

using namespace pir;
using namespace proteus_test;

namespace {

/// print -> parse -> print must be a fixpoint.
void expectRoundTrip(Module &M) {
  std::string Text1 = printModule(M);
  Context Ctx2;
  ParseResult R = parseModule(Ctx2, Text1);
  ASSERT_TRUE(R) << R.Error << "\nsource:\n" << Text1;
  expectValid(*R.M);
  std::string Text2 = printModule(*R.M);
  EXPECT_EQ(Text1, Text2);
}

TEST(PrinterTest, ContainsHeaderAttributesAndAnnotations) {
  Context Ctx;
  Module M(Ctx, "demo");
  Function *F = buildDaxpyKernel(M);
  F->setLaunchBounds(LaunchBounds{256, 1});
  std::string Text = printModule(M);
  EXPECT_NE(Text.find("kernel @daxpy("), std::string::npos);
  EXPECT_NE(Text.find("annotate(\"jit\", 1, 4)"), std::string::npos);
  EXPECT_NE(Text.find("launch_bounds(256, 1)"), std::string::npos);
  EXPECT_NE(Text.find("thread_idx.x"), std::string::npos);
}

TEST(ParserTest, RoundTripDaxpy) {
  Context Ctx;
  Module M(Ctx, "demo");
  buildDaxpyKernel(M);
  expectRoundTrip(M);
}

TEST(ParserTest, RoundTripLoopWithPhis) {
  Context Ctx;
  Module M(Ctx, "demo");
  buildLoopSumKernel(M);
  expectRoundTrip(M);
}

TEST(ParserTest, RoundTripGlobalsAndDeviceFunctions) {
  Context Ctx;
  Module M(Ctx, "demo");
  std::vector<uint8_t> Init(32, 0xAB);
  M.createGlobal("lut", Ctx.getI32Ty(), 8, Init);
  M.createGlobal("state", Ctx.getF64Ty(), 4);

  IRBuilder B(Ctx);
  Function *Dev = M.createFunction("helper", Ctx.getF64Ty(),
                                   {Ctx.getF64Ty()}, {"v"},
                                   FunctionKind::Device);
  Dev->setAlwaysInline(true);
  BasicBlock *DB = Dev->createBlock("entry", Ctx.getVoidTy());
  B.setInsertPoint(DB);
  B.createRet(B.createFMul(Dev->getArg(0), B.getDouble(2.0)));

  Function *K = M.createFunction("kern", Ctx.getVoidTy(), {Ctx.getPtrTy()},
                                 {"p"}, FunctionKind::Kernel);
  BasicBlock *KB = K->createBlock("entry", Ctx.getVoidTy());
  B.setInsertPoint(KB);
  Value *G = M.getGlobal("state");
  Value *L = B.createLoad(Ctx.getF64Ty(), G);
  Value *H = B.createCall(Dev, {L});
  B.createStore(H, K->getArg(0));
  B.createRet();

  expectRoundTrip(M);
}

TEST(ParserTest, RoundTripAllScalarInstructions) {
  Context Ctx;
  Module M(Ctx, "ops");
  IRBuilder B(Ctx);
  Function *F = M.createFunction(
      "allops", Ctx.getVoidTy(),
      {Ctx.getI32Ty(), Ctx.getI64Ty(), Ctx.getF32Ty(), Ctx.getF64Ty(),
       Ctx.getPtrTy()},
      {"a", "b", "f", "d", "p"}, FunctionKind::Kernel);
  BasicBlock *BB = F->createBlock("entry", Ctx.getVoidTy());
  B.setInsertPoint(BB);
  Value *A = F->getArg(0);
  Value *Bv = F->getArg(1);
  Value *Fv = F->getArg(2);
  Value *D = F->getArg(3);
  Value *P = F->getArg(4);
  B.createAdd(A, B.getInt32(1));
  B.createSub(A, A);
  B.createMul(A, A);
  B.createSDiv(A, B.getInt32(3));
  B.createUDiv(A, B.getInt32(3));
  B.createSRem(A, B.getInt32(3));
  B.createURem(A, B.getInt32(3));
  B.createAnd(A, A);
  B.createOr(A, A);
  B.createXor(A, A);
  B.createShl(A, B.getInt32(2));
  B.createLShr(A, B.getInt32(2));
  B.createAShr(A, B.getInt32(2));
  B.createFAdd(D, D);
  B.createFSub(D, D);
  B.createFMul(D, D);
  B.createFDiv(D, B.getDouble(2.0));
  B.createPow(D, B.getDouble(2.0));
  B.createFMin(D, D);
  B.createFMax(D, D);
  B.createSMin(A, A);
  B.createSMax(A, A);
  B.createFNeg(D);
  B.createSqrt(D);
  B.createExp(D);
  B.createLog(D);
  B.createSin(D);
  B.createCos(D);
  B.createFabs(D);
  B.createFloor(D);
  B.createTrunc(Bv, Ctx.getI32Ty());
  B.createZExt(A, Ctx.getI64Ty());
  B.createSExt(A, Ctx.getI64Ty());
  B.createFPExt(Fv, Ctx.getF64Ty());
  B.createFPTrunc(D, Ctx.getF32Ty());
  B.createSIToFP(A, Ctx.getF64Ty());
  B.createUIToFP(A, Ctx.getF32Ty());
  B.createFPToSI(D, Ctx.getI64Ty());
  Value *PI = B.createPtrToInt(P);
  B.createIntToPtr(PI);
  Value *Cmp = B.createICmp(ICmpPred::ULE, A, B.getInt32(10));
  B.createFCmp(FCmpPred::OGE, D, B.getDouble(0.0));
  B.createSelect(Cmp, A, B.getInt32(0));
  Value *Slot = B.createAlloca(Ctx.getF64Ty(), 4);
  Value *Elt = B.createGep(Ctx.getF64Ty(), Slot, B.getInt32(2));
  B.createStore(D, Elt);
  B.createLoad(Ctx.getF64Ty(), Elt);
  B.createAtomicAdd(P, D);
  B.createThreadIdx(0);
  B.createThreadIdx(1);
  B.createThreadIdx(2);
  B.createBlockIdx(0);
  B.createBlockDim(1);
  B.createGridDim(2);
  B.createBarrier();
  B.createRet();
  expectValid(M);
  expectRoundTrip(M);
}

TEST(ParserTest, RoundTripSpecialFloats) {
  Context Ctx;
  Module M(Ctx, "floats");
  IRBuilder B(Ctx);
  Function *F = M.createFunction("f", Ctx.getVoidTy(), {Ctx.getPtrTy()},
                                 {"p"}, FunctionKind::Kernel);
  BasicBlock *BB = F->createBlock("entry", Ctx.getVoidTy());
  B.setInsertPoint(BB);
  B.createStore(B.getDouble(1e-300), F->getArg(0));
  B.createStore(B.getDouble(-0.0), F->getArg(0));
  B.createStore(B.getDouble(3.141592653589793), F->getArg(0));
  B.createStore(B.getDouble(1.0000000000000002), F->getArg(0));
  B.createStore(B.getFloat(1.5e-30f), F->getArg(0));
  B.createRet();
  expectRoundTrip(M);
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  Context Ctx;
  ParseResult R = parseModule(Ctx, "module \"x\"\nkernel @k() {\nentry:\n"
                                   "  %a = frobnicate i32 1\n  ret\n}\n");
  ASSERT_FALSE(R);
  EXPECT_NE(R.Error.find("line 4"), std::string::npos);
  EXPECT_NE(R.Error.find("frobnicate"), std::string::npos);
}

TEST(ParserTest, RejectsTypeMismatches) {
  Context Ctx;
  ParseResult R = parseModule(Ctx, "module \"x\"\nkernel @k() {\nentry:\n"
                                   "  %a = add i32 1, i64 2\n  ret\n}\n");
  EXPECT_FALSE(R);
}

TEST(ParserTest, RejectsUnknownValue) {
  Context Ctx;
  ParseResult R = parseModule(
      Ctx, "module \"x\"\nkernel @k() {\nentry:\n  %a = add %ghost, i32 1\n"
           "  ret\n}\n");
  ASSERT_FALSE(R);
  EXPECT_NE(R.Error.find("ghost"), std::string::npos);
}

TEST(ParserTest, RejectsDuplicateNames) {
  Context Ctx;
  ParseResult R = parseModule(
      Ctx, "module \"x\"\nkernel @k() {\nentry:\n  %a = add i32 1, i32 1\n"
           "  %a = add i32 2, i32 2\n  ret\n}\n");
  EXPECT_FALSE(R);
}

TEST(ParserTest, ParsesForwardPhiReferences) {
  Context Ctx;
  const char *Src = R"(module "fwd"
kernel @k(%n: i32) {
entry:
  br %header
header:
  %i = phi i32 [ i32 0, %entry ], [ %inext, %header ]
  %inext = add %i, i32 1
  %c = icmp slt %inext, %n
  condbr %c, %header, %exit
exit:
  ret
}
)";
  ParseResult R = parseModule(Ctx, Src);
  ASSERT_TRUE(R) << R.Error;
  expectValid(*R.M);
}

} // namespace
