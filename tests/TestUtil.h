//===- TestUtil.h - shared test helpers -------------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Kernel builders and differential-execution helpers shared by the test
/// suites. The central utility runs a kernel through the reference IR
/// interpreter before and after a transformation (or through the codegen
/// simulator) and compares memory images bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_TESTS_TESTUTIL_H
#define PROTEUS_TESTS_TESTUTIL_H

#include "ir/Cloning.h"
#include "ir/IRBuilder.h"
#include "ir/Interpreter.h"
#include "ir/Module.h"
#include "ir/OpSemantics.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

namespace proteus_test {

/// Builds: kernel @daxpy(%a: f64, %x: ptr, %y: ptr, %n: i32)
/// y[i] = a * x[i] + y[i] for the global thread id i < n — the paper's
/// running example (Figure 2), with a "jit" annotation on a (1) and n (4).
inline pir::Function *buildDaxpyKernel(pir::Module &M) {
  pir::Context &Ctx = M.getContext();
  pir::IRBuilder B(Ctx);
  pir::Function *F = M.createFunction(
      "daxpy", Ctx.getVoidTy(),
      {Ctx.getF64Ty(), Ctx.getPtrTy(), Ctx.getPtrTy(), Ctx.getI32Ty()},
      {"a", "x", "y", "n"}, pir::FunctionKind::Kernel);
  F->setJitAnnotation(pir::JitAnnotation{{1, 4}});

  pir::BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  pir::BasicBlock *Then = F->createBlock("then", Ctx.getVoidTy());
  pir::BasicBlock *Exit = F->createBlock("exit", Ctx.getVoidTy());

  B.setInsertPoint(Entry);
  pir::Value *Gtid = B.createGlobalThreadIdX();
  pir::Value *InRange =
      B.createICmp(pir::ICmpPred::SLT, Gtid, F->getArg(3), "inrange");
  B.createCondBr(InRange, Then, Exit);

  B.setInsertPoint(Then);
  pir::Value *Xp = B.createGep(Ctx.getF64Ty(), F->getArg(1), Gtid, "xp");
  pir::Value *Yp = B.createGep(Ctx.getF64Ty(), F->getArg(2), Gtid, "yp");
  pir::Value *Xv = B.createLoad(Ctx.getF64Ty(), Xp, "xv");
  pir::Value *Yv = B.createLoad(Ctx.getF64Ty(), Yp, "yv");
  pir::Value *Ax = B.createFMul(F->getArg(0), Xv, "ax");
  pir::Value *Sum = B.createFAdd(Ax, Yv, "sum");
  B.createStore(Sum, Yp);
  B.createBr(Exit);

  B.setInsertPoint(Exit);
  B.createRet();
  return F;
}

/// Builds a reduction-style kernel with a loop whose bound is argument %n:
/// out[gtid] = sum_{k=0..n-1} (in[gtid] * k). Exercises phis, loops and
/// unrolling under specialization.
inline pir::Function *buildLoopSumKernel(pir::Module &M) {
  pir::Context &Ctx = M.getContext();
  pir::IRBuilder B(Ctx);
  pir::Function *F = M.createFunction(
      "loopsum", Ctx.getVoidTy(),
      {Ctx.getPtrTy(), Ctx.getPtrTy(), Ctx.getI32Ty()}, {"in", "out", "n"},
      pir::FunctionKind::Kernel);
  F->setJitAnnotation(pir::JitAnnotation{{3}});

  pir::BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  pir::BasicBlock *Header = F->createBlock("header", Ctx.getVoidTy());
  pir::BasicBlock *Body = F->createBlock("body", Ctx.getVoidTy());
  pir::BasicBlock *Exit = F->createBlock("exit", Ctx.getVoidTy());

  B.setInsertPoint(Entry);
  pir::Value *Gtid = B.createGlobalThreadIdX();
  pir::Value *InP = B.createGep(Ctx.getF64Ty(), F->getArg(0), Gtid, "inp");
  pir::Value *InV = B.createLoad(Ctx.getF64Ty(), InP, "inv");
  B.createBr(Header);

  B.setInsertPoint(Header);
  pir::PhiInst *I = B.createPhi(Ctx.getI32Ty(), "i");
  pir::PhiInst *Acc = B.createPhi(Ctx.getF64Ty(), "acc");
  I->addIncoming(B.getInt32(0), Entry);
  Acc->addIncoming(B.getDouble(0.0), Entry);
  pir::Value *Cond = B.createICmp(pir::ICmpPred::SLT, I, F->getArg(2), "c");
  B.createCondBr(Cond, Body, Exit);

  B.setInsertPoint(Body);
  pir::Value *Kf = B.createSIToFP(I, Ctx.getF64Ty(), "kf");
  pir::Value *Term = B.createFMul(InV, Kf, "term");
  pir::Value *Acc2 = B.createFAdd(Acc, Term, "acc2");
  pir::Value *I2 = B.createAdd(I, B.getInt32(1), "i2");
  I->addIncoming(I2, Body);
  Acc->addIncoming(Acc2, Body);
  B.createBr(Header);

  B.setInsertPoint(Exit);
  pir::Value *OutP = B.createGep(Ctx.getF64Ty(), F->getArg(1), Gtid, "outp");
  B.createStore(Acc, OutP);
  B.createRet();
  return F;
}

/// Asserts the module verifies, with the diagnostic on failure.
inline void expectValid(pir::Module &M) {
  pir::VerifyResult R = pir::verifyModule(M);
  EXPECT_TRUE(R.ok()) << R.message();
}

inline void expectValid(pir::Function &F) {
  pir::VerifyResult R = pir::verifyFunction(F);
  EXPECT_TRUE(R.ok()) << R.message();
}

/// Runs \p F in the reference interpreter for every thread of a 1-D launch
/// over \p Memory. Returns total dynamic instructions.
inline uint64_t interpretLaunch(pir::Function &F,
                                const std::vector<uint64_t> &ArgBits,
                                std::vector<uint8_t> &Memory, uint32_t Blocks,
                                uint32_t ThreadsPerBlock) {
  pir::IRInterpreter Interp(Memory);
  uint64_t Total = 0;
  for (uint32_t Blk = 0; Blk != Blocks; ++Blk) {
    for (uint32_t T = 0; T != ThreadsPerBlock; ++T) {
      pir::ThreadGeometry G;
      G.ThreadIdx[0] = T;
      G.BlockIdx[0] = Blk;
      G.BlockDim[0] = ThreadsPerBlock;
      G.GridDim[0] = Blocks;
      pir::InterpResult R = Interp.run(F, ArgBits, G);
      EXPECT_TRUE(R.Ok) << R.Error;
      Total += R.DynamicInstructions;
    }
  }
  return Total;
}

} // namespace proteus_test

#endif // PROTEUS_TESTS_TESTUTIL_H
