//===- codegen_test.cpp - ISel/regalloc/PTX/object tests ------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "codegen/Compiler.h"
#include "codegen/ISel.h"
#include "codegen/Ptx.h"
#include "ir/Context.h"
#include "transforms/O3Pipeline.h"

#include <gtest/gtest.h>

using namespace pir;
using namespace proteus;
using namespace proteus::mcode;
using namespace proteus_test;

namespace {

TEST(ISelTest, LowersDaxpyWithoutCallsOrPhis) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildDaxpyKernel(M);
  MachineFunction MF = selectInstructions(*F);
  EXPECT_EQ(MF.Name, "daxpy");
  EXPECT_EQ(MF.Params.size(), 4u);
  EXPECT_EQ(MF.Blocks.size(), 3u);
  EXPECT_FALSE(MF.Allocated);
  EXPECT_GT(MF.NumRegs, 4u);
  // The entry block ends in a conditional branch.
  ASSERT_FALSE(MF.Blocks[0].Instrs.empty());
  EXPECT_EQ(MF.Blocks[0].Instrs.back().Op, MOp::CondBr);
}

TEST(ISelTest, PhiBecomesPredecessorCopies) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildLoopSumKernel(M);
  MachineFunction MF = selectInstructions(*F);
  // loopsum's phis take no staging temps (their incoming values are not
  // sibling phis and both predecessors are single-successor blocks), so the
  // copies appear at the predecessor tails: the body/latch block ends with
  // MovRR copies into the phi registers followed by the back edge.
  ASSERT_GE(MF.Blocks.size(), 4u);
  const MachineBlock &Latch = MF.Blocks[2];
  ASSERT_GE(Latch.Instrs.size(), 3u);
  EXPECT_EQ(Latch.Instrs.back().Op, MOp::Br);
  EXPECT_EQ(Latch.Instrs[Latch.Instrs.size() - 2].Op, MOp::MovRR);
  EXPECT_EQ(Latch.Instrs[Latch.Instrs.size() - 3].Op, MOp::MovRR);
  // No staged head copies in the header: it begins with real work.
  const MachineBlock &Header = MF.Blocks[1];
  ASSERT_FALSE(Header.Instrs.empty());
  EXPECT_NE(Header.Instrs[0].Op, MOp::MovRR);
}

TEST(ISelTest, UniformityClassification) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction("k", Ctx.getVoidTy(),
                                 {Ctx.getI32Ty(), Ctx.getPtrTy()},
                                 {"n", "p"}, FunctionKind::Kernel);
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  Value *N2 = B.createMul(F->getArg(0), B.getInt32(2));   // uniform
  Value *Tid = B.createThreadIdx(0);                      // divergent
  Value *Mix = B.createAdd(N2, Tid);                      // divergent
  Value *P = B.createGep(Ctx.getI32Ty(), F->getArg(1), Mix);
  B.createStore(Mix, P);
  B.createRet();

  MachineFunction MF = selectInstructions(*F);
  // Find the mul (uniform) and add (divergent).
  bool SawUniformMul = false, SawDivergentAdd = false;
  for (const MachineInstr &MI : MF.Blocks[0].Instrs) {
    if (MI.Op == MOp::Binary &&
        static_cast<ValueKind>(MI.Aux) == ValueKind::Mul)
      SawUniformMul = MI.Uniform;
    if (MI.Op == MOp::Binary &&
        static_cast<ValueKind>(MI.Aux) == ValueKind::Add)
      SawDivergentAdd = !MI.Uniform;
  }
  EXPECT_TRUE(SawUniformMul);
  EXPECT_TRUE(SawDivergentAdd);
}

TEST(RegAllocTest, NoSpillsWithGenerousBudget) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildDaxpyKernel(M);
  MachineFunction MF = selectInstructions(*F);
  RegAllocResult R = allocateRegisters(MF, 256);
  EXPECT_EQ(R.SpilledValues, 0u);
  EXPECT_EQ(R.SpillLoads, 0u);
  EXPECT_TRUE(MF.Allocated);
  EXPECT_LE(MF.NumRegs, 256u);
}

TEST(RegAllocTest, TightBudgetSpillsButStaysCorrect) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildLoopSumKernel(M);
  MachineFunction MF = selectInstructions(*F);
  RegAllocResult R = allocateRegisters(MF, 8); // floor budget
  EXPECT_GT(R.SpilledValues, 0u);
  EXPECT_GT(R.SpillLoads, 0u);
  EXPECT_GT(MF.NumSpillSlots, 0u);
}

TEST(PtxTest, RoundTripThroughTextPreservesStructure) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildLoopSumKernel(M);
  F->setLaunchBounds(LaunchBounds{128, 1});
  MachineFunction MF = selectInstructions(*F);
  std::string Ptx = printPtx(MF);
  EXPECT_NE(Ptx.find(".visible .entry loopsum"), std::string::npos);
  EXPECT_NE(Ptx.find(".maxntid 128"), std::string::npos);

  PtxAssembleResult Asm = assemblePtx(Ptx);
  ASSERT_TRUE(Asm.Ok) << Asm.Error;
  EXPECT_EQ(Asm.MF.Name, MF.Name);
  EXPECT_EQ(Asm.MF.Blocks.size(), MF.Blocks.size());
  EXPECT_EQ(Asm.MF.NumRegs, MF.NumRegs);
  EXPECT_EQ(Asm.MF.Params.size(), MF.Params.size());
  EXPECT_EQ(Asm.MF.totalInstructions(), MF.totalInstructions());
  // Identical re-print.
  EXPECT_EQ(printPtx(Asm.MF), Ptx);
}

TEST(PtxTest, AssemblerRejectsGarbage) {
  PtxAssembleResult R = assemblePtx("this is not ptx");
  EXPECT_FALSE(R.Ok);
  R = assemblePtx("");
  EXPECT_FALSE(R.Ok);
}

TEST(ObjectTest, RoundTrip) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildDaxpyKernel(M);
  MachineFunction MF = compileKernel(*F, getAmdGcnSimTarget());
  std::vector<uint8_t> Obj = writeObject(MF, GpuArch::AmdGcnSim);
  ObjectReadResult R = readObject(Obj);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Arch, GpuArch::AmdGcnSim);
  EXPECT_EQ(R.MF.Name, "daxpy");
  EXPECT_EQ(R.MF.totalInstructions(), MF.totalInstructions());
  EXPECT_EQ(R.MF.NumRegs, MF.NumRegs);
  EXPECT_TRUE(R.MF.Allocated);
}

TEST(ObjectTest, RejectsTruncation) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildDaxpyKernel(M);
  std::vector<uint8_t> Obj =
      compileKernelToObject(*F, getAmdGcnSimTarget());
  for (size_t Cut = 0; Cut < Obj.size(); Cut += 13) {
    std::vector<uint8_t> T(Obj.begin(), Obj.begin() + static_cast<long>(Cut));
    EXPECT_FALSE(readObject(T).Ok) << "cut " << Cut;
  }
}

TEST(TargetTest, RegisterBudgets) {
  const TargetInfo &Amd = getAmdGcnSimTarget();
  const TargetInfo &Nv = getNvPtxSimTarget();
  // AMD default (no launch bounds): worst-case 1024 threads -> 32 regs.
  EXPECT_EQ(Amd.registerBudget(std::nullopt), 32u);
  // With LB(256): 128 regs.
  EXPECT_EQ(Amd.registerBudget(LaunchBounds{256, 1}), 128u);
  EXPECT_EQ(Amd.registerBudget(LaunchBounds{1024, 1}), 32u);
  // LB(256, minBlocks=2): halved.
  EXPECT_EQ(Amd.registerBudget(LaunchBounds{256, 2}), 64u);
  // NVIDIA default is less conservative (64); LB raises it further.
  EXPECT_EQ(Nv.registerBudget(std::nullopt), 64u);
  EXPECT_EQ(Nv.registerBudget(LaunchBounds{512, 1}), 128u);
  EXPECT_EQ(Nv.registerBudget(LaunchBounds{256, 1}), 255u);
}

TEST(CompilerTest, NvidiaPathReportsPtxStageTimes) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildLoopSumKernel(M);
  BackendStats S;
  MachineFunction MF = compileKernel(*F, getNvPtxSimTarget(), &S);
  EXPECT_TRUE(MF.Allocated);
  EXPECT_GT(S.PtxAsmSeconds + S.PtxEmitSeconds, 0.0);
  BackendStats S2;
  Module M2(Ctx, "m2");
  Function *F2 = buildLoopSumKernel(M2);
  compileKernel(*F2, getAmdGcnSimTarget(), &S2);
  EXPECT_EQ(S2.PtxAsmSeconds, 0.0);
}

} // namespace
