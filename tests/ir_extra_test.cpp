//===- ir_extra_test.cpp - IR machinery edge cases -------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/Context.h"
#include "ir/Dominators.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"

#include <gtest/gtest.h>

using namespace pir;
using namespace proteus_test;

namespace {

TEST(DominatorsTest, DiamondAndLoop) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction("k", Ctx.getVoidTy(), {Ctx.getI1Ty()},
                                 {"c"}, FunctionKind::Kernel);
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *T = F->createBlock("t", Ctx.getVoidTy());
  BasicBlock *E = F->createBlock("e", Ctx.getVoidTy());
  BasicBlock *J = F->createBlock("j", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  B.createCondBr(F->getArg(0), T, E);
  B.setInsertPoint(T);
  B.createBr(J);
  B.setInsertPoint(E);
  B.createBr(J);
  B.setInsertPoint(J);
  B.createRet();

  DominatorTree DT(*F);
  EXPECT_TRUE(DT.dominates(Entry, J));
  EXPECT_FALSE(DT.dominates(T, J)) << "join has two predecessors";
  EXPECT_EQ(DT.getIDom(J), Entry);
  EXPECT_EQ(DT.getIDom(T), Entry);
  EXPECT_EQ(DT.getIDom(Entry), nullptr);
  // The join is in both branches' dominance frontiers.
  auto InFrontier = [&](BasicBlock *BB) {
    const auto &DF = DT.getFrontier(BB);
    return std::find(DF.begin(), DF.end(), J) != DF.end();
  };
  EXPECT_TRUE(InFrontier(T));
  EXPECT_TRUE(InFrontier(E));
}

TEST(DominatorsTest, UnreachableBlocksExcluded) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction("k", Ctx.getVoidTy(), {}, {},
                                 FunctionKind::Kernel);
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *Dead = F->createBlock("dead", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  B.createRet();
  B.setInsertPoint(Dead);
  B.createRet();
  DominatorTree DT(*F);
  EXPECT_TRUE(DT.isReachable(Entry));
  EXPECT_FALSE(DT.isReachable(Dead));
  EXPECT_EQ(reversePostOrder(*F).size(), 1u);
}

TEST(UseListTest, RAUWWithThousandsOfUsesIsCorrect) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction("k", Ctx.getVoidTy(),
                                 {Ctx.getI32Ty(), Ctx.getI32Ty()},
                                 {"a", "b"}, FunctionKind::Kernel);
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  constexpr int N = 5000;
  std::vector<Value *> Sums;
  for (int I = 0; I != N; ++I)
    Sums.push_back(B.createAdd(F->getArg(0), F->getArg(0)));
  B.createRet();
  ASSERT_EQ(F->getArg(0)->getNumUses(), 2u * N);
  F->getArg(0)->replaceAllUsesWith(F->getArg(1));
  EXPECT_EQ(F->getArg(0)->getNumUses(), 0u);
  EXPECT_EQ(F->getArg(1)->getNumUses(), 2u * N);
  for (Value *S : Sums) {
    auto *I = cast<Instruction>(S);
    EXPECT_EQ(I->getOperand(0), F->getArg(1));
    EXPECT_EQ(I->getOperand(1), F->getArg(1));
  }
}

TEST(PrinterTest, NameCollisionsGetUniqued) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction("k", Ctx.getVoidTy(), {Ctx.getI32Ty()},
                                 {"x"}, FunctionKind::Kernel);
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  // Three instructions all named "x" (colliding with the argument too).
  B.createAdd(F->getArg(0), B.getInt32(1), "x");
  B.createAdd(F->getArg(0), B.getInt32(2), "x");
  B.createAdd(F->getArg(0), B.getInt32(3), "x");
  B.createRet();
  std::string Text = printFunction(*F);
  // Parse back: unique names required by the parser.
  Context Ctx2;
  ParseResult R = parseModule(Ctx2, "module \"m\"\n" + Text);
  ASSERT_TRUE(R) << R.Error << "\n" << Text;
}

TEST(PrinterTest, WeirdCharactersSanitized) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction("k", Ctx.getVoidTy(), {Ctx.getI32Ty()},
                                 {"x"}, FunctionKind::Kernel);
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  B.createAdd(F->getArg(0), B.getInt32(1), "has spaces & symbols!");
  B.createRet();
  std::string Text = printFunction(*F);
  Context Ctx2;
  ParseResult R = parseModule(Ctx2, "module \"m\"\n" + Text);
  ASSERT_TRUE(R) << R.Error << "\n" << Text;
}

TEST(ParserExtraTest, CommentsAndBlankLines) {
  Context Ctx;
  const char *Src = R"(module "c"

; a full-line comment
kernel @k(%n: i32) {
entry:
  %a = add %n, i32 1   ; trailing comment
  ; another comment

  ret
}
)";
  ParseResult R = parseModule(Ctx, Src);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(R.M->getFunction("k")->getEntryBlock().size(), 2u);
}

TEST(ParserExtraTest, DeclarationsParse) {
  Context Ctx;
  ParseResult R = parseModule(
      Ctx, "module \"d\"\ndevice @ext(%x: f64) : f64;\n");
  ASSERT_TRUE(R) << R.Error;
  Function *F = R.M->getFunction("ext");
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(F->isDeclaration());
}

TEST(ParserExtraTest, NegativeAndHexLiterals) {
  Context Ctx;
  const char *Src = R"(module "lits"
kernel @k(%p: ptr) {
entry:
  %a = add i32 -5, i32 0x10
  %f = fadd f64 -2.5e-3, f64 1.0
  store %a, %p
  ret
}
)";
  ParseResult R = parseModule(Ctx, Src);
  ASSERT_TRUE(R) << R.Error;
  // Evaluate: -5 + 16 = 11.
  Function *F = R.M->getFunction("k");
  auto *Add = cast<BinaryInst>(&F->getEntryBlock().front());
  EXPECT_EQ(cast<ConstantInt>(Add->getLHS())->getSExtValue(), -5);
  EXPECT_EQ(cast<ConstantInt>(Add->getRHS())->getSExtValue(), 16);
}

TEST(ModuleExtraTest, EraseFunctionRequiresNoUses) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *Dev = M.createFunction("helper", Ctx.getF64Ty(),
                                   {Ctx.getF64Ty()}, {"x"},
                                   FunctionKind::Device);
  B.setInsertPoint(Dev->createBlock("entry", Ctx.getVoidTy()));
  B.createRet(Dev->getArg(0));
  EXPECT_EQ(M.functions().size(), 1u);
  M.eraseFunction(Dev);
  EXPECT_EQ(M.functions().size(), 0u);
  EXPECT_EQ(M.getFunction("helper"), nullptr);
}

TEST(InterpreterExtraTest, GlobalLinkedViaConstantPtr) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  M.createGlobal("g", Ctx.getF64Ty(), 1);
  Function *F = M.createFunction("k", Ctx.getVoidTy(), {Ctx.getPtrTy()},
                                 {"out"}, FunctionKind::Kernel);
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  Value *G = M.getGlobal("g");
  Value *V = B.createLoad(Ctx.getF64Ty(), G);
  B.createStore(V, F->getArg(0));
  B.createRet();

  // Link the global at address 16 and place 3.5 there.
  G->replaceAllUsesWith(Ctx.getConstantPtr(16));
  std::vector<uint8_t> Mem(32, 0);
  double Val = 3.5;
  std::memcpy(Mem.data() + 16, &Val, 8);
  IRInterpreter Interp(Mem);
  auto R = Interp.run(*F, {0}, ThreadGeometry{});
  ASSERT_TRUE(R.Ok) << R.Error;
  double Out;
  std::memcpy(&Out, Mem.data(), 8);
  EXPECT_DOUBLE_EQ(Out, 3.5);
}

} // namespace
