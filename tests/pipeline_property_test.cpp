//===- pipeline_property_test.cpp - randomized differential testing ---------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Property suites over generated random kernels (tests/RandomKernel.h):
//
//  * generated kernels verify and round-trip through text and bitcode;
//  * the O3 pipeline preserves interpreter semantics bit-for-bit;
//  * the full codegen + simulator pipeline matches the interpreter on both
//    targets and under several register budgets;
//  * JIT specialization (folding the annotated scalars to the values
//    actually passed) never changes results.
//
//===----------------------------------------------------------------------===//

#include "RandomKernel.h"
#include "TestUtil.h"

#include "bitcode/Bitcode.h"
#include "codegen/Compiler.h"
#include "codegen/ISel.h"
#include "gpu/Runtime.h"
#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "transforms/O3Pipeline.h"
#include "transforms/SpecializeArgs.h"

#include <gtest/gtest.h>

using namespace pir;
using namespace proteus;
using namespace proteus::gpu;
using namespace proteus_test;

namespace {

constexpr uint32_t N = 32; // elements / threads per kernel

/// Fresh input/output image for one run.
std::vector<uint8_t> freshMemory(uint64_t Seed) {
  std::vector<uint8_t> Mem(2 * N * sizeof(double));
  auto *In = reinterpret_cast<double *>(Mem.data());
  Rng R(Seed ^ 0x5eed);
  for (uint32_t I = 0; I != N; ++I)
    In[I] = R.unit() * 8.0 - 4.0;
  return Mem;
}

std::vector<uint64_t> argsFor(uint64_t Seed) {
  Rng R(Seed ^ 0xa59);
  return {0, N * sizeof(double), N, sem::boxF64(R.unit() * 3.0),
          static_cast<uint64_t>(R.below(1000))};
}

class RandomKernelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomKernelTest, VerifiesAndRoundTrips) {
  uint64_t Seed = GetParam();
  Context Ctx;
  auto M = buildRandomKernel(Ctx, Seed);
  expectValid(*M);

  // Text round trip.
  std::string Text = printModule(*M);
  Context Ctx2;
  ParseResult PR = parseModule(Ctx2, Text);
  ASSERT_TRUE(PR) << PR.Error;
  EXPECT_EQ(printModule(*PR.M), Text);

  // Bitcode round trip.
  std::vector<uint8_t> BC = writeBitcode(*M);
  Context Ctx3;
  BitcodeReadResult BR = readBitcode(Ctx3, BC);
  ASSERT_TRUE(BR) << BR.Error;
  EXPECT_EQ(printModule(*BR.M), Text);
}

TEST_P(RandomKernelTest, O3PreservesSemantics) {
  uint64_t Seed = GetParam();
  Context Ctx;
  auto M = buildRandomKernel(Ctx, Seed);
  Function *F = M->getFunction("rk");
  std::vector<uint64_t> Args = argsFor(Seed);

  std::vector<uint8_t> Before = freshMemory(Seed);
  interpretLaunch(*F, Args, Before, 1, N);

  O3Options Opts;
  Opts.VerifyEach = true;
  runO3(*M, Opts);
  expectValid(*M);

  std::vector<uint8_t> After = freshMemory(Seed);
  interpretLaunch(*F, Args, After, 1, N);
  EXPECT_EQ(Before, After) << "O3 changed semantics for seed " << Seed;
}

TEST_P(RandomKernelTest, CodegenMatchesInterpreterBothTargets) {
  uint64_t Seed = GetParam();
  std::vector<uint64_t> Args = argsFor(Seed);

  Context Ctx;
  auto M = buildRandomKernel(Ctx, Seed);
  Function *F = M->getFunction("rk");
  std::vector<uint8_t> Ref = freshMemory(Seed);
  interpretLaunch(*F, Args, Ref, 1, N);
  runO3(*M);

  for (GpuArch Arch : {GpuArch::AmdGcnSim, GpuArch::NvPtxSim}) {
    for (unsigned Budget : {9u, 16u, 64u}) {
      mcode::MachineFunction MF = selectInstructions(*F);
      allocateRegisters(MF, Budget);
      std::vector<uint8_t> Obj = writeObject(MF, Arch);

      Device Dev(getTarget(Arch), 1 << 20);
      std::vector<uint8_t> Init = freshMemory(Seed);
      std::copy(Init.begin(), Init.end(), Dev.memory().begin());
      LoadedKernel *K = nullptr;
      std::string Err;
      ASSERT_EQ(gpuModuleLoad(Dev, &K, Obj, &Err), GpuError::Success)
          << Err;
      std::vector<KernelArg> KArgs;
      for (uint64_t A : Args)
        KArgs.push_back(KernelArg{A});
      ASSERT_EQ(gpuLaunchKernel(Dev, *K, Dim3{1, 1, 1}, Dim3{N, 1, 1},
                                KArgs, &Err),
                GpuError::Success)
          << Err << " (seed " << Seed << " budget " << Budget << ")";
      std::vector<uint8_t> Got(Dev.memory().begin(),
                               Dev.memory().begin() +
                                   static_cast<long>(Ref.size()));
      EXPECT_EQ(Ref, Got) << "seed " << Seed << " arch "
                          << gpuArchName(Arch) << " budget " << Budget;
    }
  }
}

TEST_P(RandomKernelTest, SpecializationPreservesSemantics) {
  uint64_t Seed = GetParam();
  std::vector<uint64_t> Args = argsFor(Seed);

  Context Ctx;
  auto M = buildRandomKernel(Ctx, Seed);
  Function *F = M->getFunction("rk");
  std::vector<uint8_t> Ref = freshMemory(Seed);
  interpretLaunch(*F, Args, Ref, 1, N);

  // Fold the annotated scalars (sf = arg index 3, si = 4, zero-based) to
  // the values actually passed, set launch bounds, optimize — results must
  // be unchanged.
  specializeArguments(*F, {{3, Args[3]}, {4, Args[4]}});
  specializeLaunchBounds(*F, N);
  O3Options Opts;
  Opts.VerifyEach = true;
  runO3(*M, Opts);

  std::vector<uint8_t> Got = freshMemory(Seed);
  interpretLaunch(*F, Args, Got, 1, N);
  EXPECT_EQ(Ref, Got) << "specialization changed semantics, seed " << Seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKernelTest,
                         ::testing::Range<uint64_t>(1, 33));

} // namespace
