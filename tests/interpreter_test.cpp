//===- interpreter_test.cpp - reference interpreter tests ----------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

using namespace pir;
using namespace proteus_test;

namespace {

TEST(InterpreterTest, DaxpyComputesCorrectValues) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildDaxpyKernel(M);

  constexpr uint32_t N = 40;
  std::vector<uint8_t> Mem(2 * N * sizeof(double));
  auto *X = reinterpret_cast<double *>(Mem.data());
  auto *Y = reinterpret_cast<double *>(Mem.data() + N * sizeof(double));
  for (uint32_t I = 0; I != N; ++I) {
    X[I] = I * 0.5;
    Y[I] = 100.0 + I;
  }
  std::vector<uint64_t> Args = {sem::boxF64(3.0), 0, N * sizeof(double), N};
  // Launch more threads than elements: the guard must hold.
  interpretLaunch(*F, Args, Mem, /*Blocks=*/2, /*ThreadsPerBlock=*/32);
  for (uint32_t I = 0; I != N; ++I)
    EXPECT_DOUBLE_EQ(Y[I], 3.0 * (I * 0.5) + 100.0 + I) << "at " << I;
}

TEST(InterpreterTest, LoopSumMatchesClosedForm) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildLoopSumKernel(M);

  constexpr uint32_t N = 8;
  constexpr uint32_t Iters = 11;
  std::vector<uint8_t> Mem(2 * N * sizeof(double));
  auto *In = reinterpret_cast<double *>(Mem.data());
  for (uint32_t I = 0; I != N; ++I)
    In[I] = 1.0 + I;
  std::vector<uint64_t> Args = {0, N * sizeof(double), Iters};
  interpretLaunch(*F, Args, Mem, 1, N);
  auto *Out = reinterpret_cast<double *>(Mem.data() + N * sizeof(double));
  double K = Iters * (Iters - 1) / 2.0;
  for (uint32_t I = 0; I != N; ++I)
    EXPECT_DOUBLE_EQ(Out[I], (1.0 + I) * K);
}

TEST(InterpreterTest, OutOfBoundsAccessFails) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction("bad", Ctx.getVoidTy(), {Ctx.getPtrTy()},
                                 {"p"}, FunctionKind::Kernel);
  BasicBlock *BB = F->createBlock("entry", Ctx.getVoidTy());
  B.setInsertPoint(BB);
  B.createLoad(Ctx.getF64Ty(), F->getArg(0));
  B.createRet();

  std::vector<uint8_t> Mem(16);
  IRInterpreter Interp(Mem);
  InterpResult R = Interp.run(*F, {1000}, ThreadGeometry{});
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("out of bounds"), std::string::npos);
}

TEST(InterpreterTest, StepLimitGuardsInfiniteLoops) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction("spin", Ctx.getVoidTy(), {}, {},
                                 FunctionKind::Kernel);
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *Loop = F->createBlock("loop", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  B.createBr(Loop);
  B.setInsertPoint(Loop);
  B.createBr(Loop);

  std::vector<uint8_t> Mem;
  IRInterpreter Interp(Mem);
  InterpResult R = Interp.run(*F, {}, ThreadGeometry{}, /*MaxSteps=*/1000);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("step limit"), std::string::npos);
}

TEST(InterpreterTest, DeviceCallAndReturnValue) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *Dev = M.createFunction("sq", Ctx.getF64Ty(), {Ctx.getF64Ty()},
                                   {"x"}, FunctionKind::Device);
  BasicBlock *DB = Dev->createBlock("entry", Ctx.getVoidTy());
  B.setInsertPoint(DB);
  B.createRet(B.createFMul(Dev->getArg(0), Dev->getArg(0)));

  Function *K = M.createFunction("k", Ctx.getVoidTy(), {Ctx.getPtrTy()},
                                 {"out"}, FunctionKind::Kernel);
  BasicBlock *KB = K->createBlock("entry", Ctx.getVoidTy());
  B.setInsertPoint(KB);
  Value *R = B.createCall(Dev, {B.getDouble(1.5)});
  B.createStore(R, K->getArg(0));
  B.createRet();

  std::vector<uint8_t> Mem(8);
  IRInterpreter Interp(Mem);
  InterpResult Res = Interp.run(*K, {0}, ThreadGeometry{});
  ASSERT_TRUE(Res.Ok) << Res.Error;
  double Out;
  std::memcpy(&Out, Mem.data(), 8);
  EXPECT_DOUBLE_EQ(Out, 2.25);
}

TEST(InterpreterTest, AllocaScratchIsPerInvocation) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *K = M.createFunction("k", Ctx.getVoidTy(), {Ctx.getPtrTy()},
                                 {"out"}, FunctionKind::Kernel);
  BasicBlock *BB = K->createBlock("entry", Ctx.getVoidTy());
  B.setInsertPoint(BB);
  Value *Slot = B.createAlloca(Ctx.getI64Ty(), 1);
  Value *Tid = B.createThreadIdx(0);
  Value *Tid64 = B.createZExt(Tid, Ctx.getI64Ty());
  B.createStore(Tid64, Slot);
  Value *Back = B.createLoad(Ctx.getI64Ty(), Slot);
  Value *OutP = B.createGep(Ctx.getI64Ty(), K->getArg(0), Tid);
  B.createStore(Back, OutP);
  B.createRet();

  std::vector<uint8_t> Mem(4 * 8);
  std::vector<uint64_t> Args = {0};
  interpretLaunch(*K, Args, Mem, 1, 4);
  auto *Out = reinterpret_cast<uint64_t *>(Mem.data());
  for (uint64_t I = 0; I != 4; ++I)
    EXPECT_EQ(Out[I], I);
}

TEST(InterpreterTest, AtomicAddReturnsOldValue) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *K = M.createFunction("k", Ctx.getVoidTy(),
                                 {Ctx.getPtrTy(), Ctx.getPtrTy()},
                                 {"ctr", "olds"}, FunctionKind::Kernel);
  BasicBlock *BB = K->createBlock("entry", Ctx.getVoidTy());
  B.setInsertPoint(BB);
  Value *Old = B.createAtomicAdd(K->getArg(0), B.getInt64(1));
  Value *Tid = B.createThreadIdx(0);
  Value *P = B.createGep(Ctx.getI64Ty(), K->getArg(1), Tid);
  B.createStore(Old, P);
  B.createRet();

  std::vector<uint8_t> Mem(8 + 4 * 8);
  std::vector<uint64_t> Args = {0, 8};
  interpretLaunch(*K, Args, Mem, 1, 4);
  uint64_t Counter;
  std::memcpy(&Counter, Mem.data(), 8);
  EXPECT_EQ(Counter, 4u);
  auto *Olds = reinterpret_cast<uint64_t *>(Mem.data() + 8);
  // Sequential simulation: olds are 0..3 in thread order.
  for (uint64_t I = 0; I != 4; ++I)
    EXPECT_EQ(Olds[I], I);
}

// Property sweep: evalBinary/evalICmp semantics vs. native C++ on i32.
class BinarySemanticsTest
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(BinarySemanticsTest, MatchesNativeInt32) {
  Context Ctx;
  auto [AS, BS] = GetParam();
  int32_t A = static_cast<int32_t>(AS), Bv = static_cast<int32_t>(BS);
  Type *I32 = Ctx.getI32Ty();
  auto Box = [](int32_t V) {
    return static_cast<uint64_t>(static_cast<uint32_t>(V));
  };
  EXPECT_EQ(sem::evalBinary(ValueKind::Add, I32, Box(A), Box(Bv)),
            Box(static_cast<int32_t>(static_cast<uint32_t>(A) +
                                     static_cast<uint32_t>(Bv))));
  EXPECT_EQ(sem::evalBinary(ValueKind::Mul, I32, Box(A), Box(Bv)),
            Box(static_cast<int32_t>(static_cast<uint32_t>(A) *
                                     static_cast<uint32_t>(Bv))));
  if (A == INT32_MIN && Bv == -1) {
    // Native int32 division would trap; our semantics compute in 64 bits
    // and truncate, wrapping to INT32_MIN.
    EXPECT_EQ(sem::evalBinary(ValueKind::SDiv, I32, Box(A), Box(Bv)),
              Box(INT32_MIN));
    EXPECT_EQ(sem::evalBinary(ValueKind::SRem, I32, Box(A), Box(Bv)),
              Box(0));
  } else if (Bv != 0) {
    EXPECT_EQ(sem::evalBinary(ValueKind::SDiv, I32, Box(A), Box(Bv)),
              Box(A / Bv));
    EXPECT_EQ(sem::evalBinary(ValueKind::SRem, I32, Box(A), Box(Bv)),
              Box(A % Bv));
  } else {
    EXPECT_EQ(sem::evalBinary(ValueKind::SDiv, I32, Box(A), Box(Bv)), 0u);
  }
  EXPECT_EQ(sem::evalICmp(ICmpPred::SLT, I32, Box(A), Box(Bv)), A < Bv);
  EXPECT_EQ(sem::evalICmp(ICmpPred::UGE, I32, Box(A), Box(Bv)),
            static_cast<uint32_t>(A) >= static_cast<uint32_t>(Bv));
  EXPECT_EQ(sem::evalBinary(ValueKind::SMax, I32, Box(A), Box(Bv)),
            Box(A > Bv ? A : Bv));
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, BinarySemanticsTest,
    ::testing::Values(std::make_pair<int64_t, int64_t>(0, 0),
                      std::make_pair<int64_t, int64_t>(7, 3),
                      std::make_pair<int64_t, int64_t>(-7, 3),
                      std::make_pair<int64_t, int64_t>(7, -3),
                      std::make_pair<int64_t, int64_t>(-1, -1),
                      std::make_pair<int64_t, int64_t>(INT32_MAX, 1),
                      std::make_pair<int64_t, int64_t>(INT32_MIN, -1),
                      std::make_pair<int64_t, int64_t>(123456, 0),
                      std::make_pair<int64_t, int64_t>(1, 31),
                      std::make_pair<int64_t, int64_t>(-8, 2)));

} // namespace
