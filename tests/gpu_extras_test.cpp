//===- gpu_extras_test.cpp - device model detail tests ----------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Coverage of the simulator details not exercised by the main differential
// suites: multi-dimensional launch geometry, the L2 cache model, transfer
// timing, the profiler accumulation, barriers, and failure paths.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "codegen/Compiler.h"
#include "gpu/PerfModel.h"
#include "gpu/Runtime.h"
#include "ir/Context.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace pir;
using namespace proteus;
using namespace proteus::gpu;
using namespace proteus_test;

namespace {

/// Kernel writing its full 3-D coordinates: out[linear] = encoded id.
Function *buildGeometryKernel(Module &M) {
  Context &Ctx = M.getContext();
  IRBuilder B(Ctx);
  Function *F = M.createFunction("geom", Ctx.getVoidTy(), {Ctx.getPtrTy()},
                                 {"out"}, FunctionKind::Kernel);
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  Value *Tx = B.createThreadIdx(0);
  Value *TyV = B.createThreadIdx(1);
  Value *Tz = B.createThreadIdx(2);
  Value *Bx = B.createBlockIdx(0);
  Value *Dx = B.createBlockDim(0);
  Value *Dy = B.createBlockDim(1);
  Value *Dz = B.createBlockDim(2);
  Value *Gx = B.createGridDim(0);
  // linear thread = ((bx*dz + tz)*dy + ty)*dx + tx, then scale by gridDim
  // presence to touch every special register.
  Value *L1 = B.createAdd(B.createMul(Bx, Dz), Tz);
  Value *L2 = B.createAdd(B.createMul(L1, Dy), TyV);
  Value *L3 = B.createAdd(B.createMul(L2, Dx), Tx);
  Value *Code = B.createAdd(B.createMul(L3, B.getInt32(100)), Gx);
  Value *P = B.createGep(Ctx.getI32Ty(), F->getArg(0), L3);
  B.createStore(Code, P);
  B.createRet();
  return F;
}

TEST(GeometryTest, ThreeDimensionalBlocksCoverAllThreads) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildGeometryKernel(M);
  Device Dev(getAmdGcnSimTarget(), 1 << 20);
  std::vector<uint8_t> Obj = compileKernelToObject(*F, getAmdGcnSimTarget());
  LoadedKernel *K = nullptr;
  std::string Err;
  ASSERT_EQ(gpuModuleLoad(Dev, &K, Obj, &Err), GpuError::Success) << Err;
  DevicePtr Out = 0;
  constexpr uint32_t Gx = 3, Bx = 4, By = 2, Bz = 2;
  constexpr uint32_t Total = Gx * Bx * By * Bz;
  ASSERT_EQ(gpuMalloc(Dev, &Out, Total * 4), GpuError::Success);
  ASSERT_EQ(gpuLaunchKernel(Dev, *K, Dim3{Gx, 1, 1}, Dim3{Bx, By, Bz},
                            {{Out}}, &Err),
            GpuError::Success)
      << Err;
  std::vector<int32_t> Host(Total);
  gpuMemcpyDtoH(Dev, Host.data(), Out, Total * 4);
  for (uint32_t I = 0; I != Total; ++I)
    EXPECT_EQ(Host[I], static_cast<int32_t>(I * 100 + Gx)) << "thread " << I;
  EXPECT_EQ(Dev.LastLaunch.totalThreads(), Total);
}

TEST(L2CacheTest, HitsMissesAndEviction) {
  L2Cache C(/*SizeBytes=*/16 * 128 * 2, /*LineBytes=*/128, /*Ways=*/2);
  EXPECT_FALSE(C.access(0));    // cold miss
  EXPECT_TRUE(C.access(64));    // same line
  EXPECT_FALSE(C.access(4096)); // different set/line
  EXPECT_TRUE(C.access(0));
  // Fill one set beyond associativity: set count = 16, ways = 2.
  // Lines mapping to set S: line % 16 == S.
  uint64_t LineBytes = 128, Sets = 16;
  // line numbers are address/128 + 1; choose addresses so (line % 16) == 1.
  auto AddrForLine = [&](uint64_t K) {
    return (K * Sets + 0) * LineBytes; // lines K*16+1 -> set 1
  };
  C.access(AddrForLine(1));
  C.access(AddrForLine(2));
  C.access(AddrForLine(3)); // evicts the LRU of the set
  unsigned Hits = 0;
  for (uint64_t K = 1; K <= 3; ++K)
    Hits += C.access(AddrForLine(K)) ? 1 : 0;
  EXPECT_LT(Hits, 3u) << "a 2-way set cannot retain 3 lines";
  C.reset();
  EXPECT_FALSE(C.access(0)) << "reset must drop all lines";
}

TEST(TransferModelTest, TimeScalesWithSize) {
  const TargetInfo &TI = getAmdGcnSimTarget();
  double Small = transferSeconds(TI, 1024);
  double Large = transferSeconds(TI, 64 * 1024 * 1024);
  EXPECT_GT(Large, Small);
  EXPECT_GT(Small, 0.0);
  // Latency floor dominates tiny copies.
  EXPECT_NEAR(transferSeconds(TI, 1) , transferSeconds(TI, 512), 1e-6);
}

TEST(ProfilerTest, AccumulatesAcrossLaunches) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildDaxpyKernel(M);
  Device Dev(getAmdGcnSimTarget(), 1 << 20);
  std::vector<uint8_t> Obj = compileKernelToObject(*F, getAmdGcnSimTarget());
  LoadedKernel *K = nullptr;
  std::string Err;
  ASSERT_EQ(gpuModuleLoad(Dev, &K, Obj, &Err), GpuError::Success) << Err;
  DevicePtr X = 0, Y = 0;
  gpuMalloc(Dev, &X, 64 * 8);
  gpuMalloc(Dev, &Y, 64 * 8);
  std::vector<KernelArg> Args = {{sem::boxF64(1.0)}, {X}, {Y}, {64}};
  for (int I = 0; I != 3; ++I)
    ASSERT_EQ(gpuLaunchKernel(Dev, *K, Dim3{2, 1, 1}, Dim3{32, 1, 1}, Args,
                              &Err),
              GpuError::Success);
  const LaunchStats &P = Dev.Profile.at("daxpy");
  EXPECT_EQ(P.MemStores, 3u * 64);
  EXPECT_EQ(P.Blocks, 3u * 2);
  // Durations vary slightly per launch (L2 warm-up): check accumulation.
  EXPECT_GT(P.DurationSec, 2.0 * Dev.LastLaunch.DurationSec);
  EXPECT_GT(Dev.kernelSeconds(), 0.0);
}

TEST(ExecutorTest, BarrierCountsAndRuns) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction("bar", Ctx.getVoidTy(), {Ctx.getPtrTy()},
                                 {"out"}, FunctionKind::Kernel);
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  Value *Tid = B.createThreadIdx(0);
  B.createBarrier();
  B.createStore(Tid, B.createGep(Ctx.getI32Ty(), F->getArg(0), Tid));
  B.createBarrier();
  B.createRet();
  Device Dev(getAmdGcnSimTarget(), 1 << 20);
  std::vector<uint8_t> Obj = compileKernelToObject(*F, getAmdGcnSimTarget());
  LoadedKernel *K = nullptr;
  std::string Err;
  ASSERT_EQ(gpuModuleLoad(Dev, &K, Obj, &Err), GpuError::Success) << Err;
  DevicePtr Out = 0;
  gpuMalloc(Dev, &Out, 16 * 4);
  ASSERT_EQ(gpuLaunchKernel(Dev, *K, Dim3{1, 1, 1}, Dim3{16, 1, 1}, {{Out}},
                            &Err),
            GpuError::Success);
  EXPECT_EQ(Dev.LastLaunch.Barriers, 2u * 16);
}

TEST(ExecutorTest, WrongArgumentCountFails) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildDaxpyKernel(M);
  Device Dev(getAmdGcnSimTarget(), 1 << 20);
  std::vector<uint8_t> Obj = compileKernelToObject(*F, getAmdGcnSimTarget());
  LoadedKernel *K = nullptr;
  std::string Err;
  ASSERT_EQ(gpuModuleLoad(Dev, &K, Obj, &Err), GpuError::Success) << Err;
  EXPECT_EQ(gpuLaunchKernel(Dev, *K, Dim3{1, 1, 1}, Dim3{1, 1, 1},
                            {{1}, {2}}, &Err),
            GpuError::LaunchFailure);
  EXPECT_NE(Err.find("argument count"), std::string::npos);
}

TEST(ExecutorTest, InfiniteLoopHitsStepLimit) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction("spin", Ctx.getVoidTy(), {}, {},
                                 FunctionKind::Kernel);
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *Loop = F->createBlock("loop", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  B.createBr(Loop);
  B.setInsertPoint(Loop);
  B.createBr(Loop);
  Device Dev(getAmdGcnSimTarget(), 1 << 16);
  std::vector<uint8_t> Obj = compileKernelToObject(*F, getAmdGcnSimTarget());
  LoadedKernel *K = nullptr;
  std::string Err;
  ASSERT_EQ(gpuModuleLoad(Dev, &K, Obj, &Err), GpuError::Success) << Err;
  LaunchResult R = launchKernel(Dev, *K, Dim3{1, 1, 1}, Dim3{1, 1, 1}, {},
                                /*MaxStepsPerThread=*/1000);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("step limit"), std::string::npos);
}

TEST(MachineIRTest, DisassemblyIsReadable) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildDaxpyKernel(M);
  mcode::MachineFunction MF = compileKernel(*F, getAmdGcnSimTarget());
  std::string Text = mcode::printMachineFunction(MF);
  EXPECT_NE(Text.find("daxpy"), std::string::npos);
  EXPECT_NE(Text.find("ld.global"), std::string::npos);
  EXPECT_NE(Text.find("st.global"), std::string::npos);
  EXPECT_NE(Text.find("ret"), std::string::npos);
}

TEST(PerfModelTest, ZeroInstructionLaunchPaysOnlyLaunchLatency) {
  // An empty kernel (or a body guarded off for every thread) retires no
  // instructions; the model must not divide by the zero counts and the
  // launch costs exactly the fixed launch latency.
  for (const TargetInfo *T :
       {&getAmdGcnSimTarget(), &getNvPtxSimTarget()}) {
    LaunchStats S;
    S.Kernel = "empty";
    S.Blocks = 4;
    S.ThreadsPerBlock = 64;
    S.RegsUsed = 8;
    applyPerfModel(*T, S);
    EXPECT_DOUBLE_EQ(S.DurationSec, 4e-6) << T->Name;
    EXPECT_EQ(S.IPC, 0.0) << T->Name;
    EXPECT_EQ(S.VALUBusyPct, 0.0) << T->Name;
    EXPECT_EQ(S.StallPct, 0.0) << T->Name;
    EXPECT_TRUE(std::isfinite(S.Occupancy)) << T->Name;
    EXPECT_GT(S.Occupancy, 0.0) << T->Name;
    EXPECT_LE(S.Occupancy, 1.0) << T->Name;
  }
}

TEST(DeviceTest, CrossArchObjectRejected) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildDaxpyKernel(M);
  std::vector<uint8_t> Obj = compileKernelToObject(*F, getNvPtxSimTarget());
  Device Amd(getAmdGcnSimTarget(), 1 << 16);
  LoadedKernel *K = nullptr;
  std::string Err;
  EXPECT_EQ(gpuModuleLoad(Amd, &K, Obj, &Err), GpuError::InvalidValue);
  EXPECT_NE(Err.find("nvptx-sim"), std::string::npos);
}

} // namespace
