//===- cache_crash_test.cpp - persistent-cache fault injection -------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Fault battery for the persistent code cache: truncated, bit-flipped and
// garbage cache-jit-<hash>.o files (simulating crashes mid-write on the
// pre-atomic-rename protocol, bit rot, or tampering) must be detected by
// the entry integrity header, treated as misses, deleted, and recompiled —
// never loaded as kernel objects. Also covers the write-to-temp +
// atomic-rename protocol itself: no temp files survive a successful insert,
// and stale temp leftovers are swept by clearPersistent().
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "fleet/CacheServer.h"
#include "fleet/LocalBackend.h"
#include "fleet/RemoteBackend.h"
#include "ir/Context.h"
#include "jit/Program.h"
#include "support/FileSystem.h"
#include "support/Hashing.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include <sys/wait.h>
#include <unistd.h>

using namespace pir;
using namespace proteus;
using namespace proteus::gpu;
using namespace proteus_test;

namespace {

struct TempDir {
  std::string Path;
  TempDir() : Path(fs::makeTempDirectory("proteus-crash")) {}
  ~TempDir() { fs::removeTree(Path); }
};

/// The single cache file in \p Dir (asserts there is exactly one).
std::string onlyCacheFile(const std::string &Dir) {
  auto Names = fs::listFiles(Dir);
  EXPECT_EQ(Names.size(), 1u);
  return Names.empty() ? "" : Dir + "/" + Names[0];
}

std::vector<uint8_t> objBlob() {
  std::vector<uint8_t> Obj(256);
  for (size_t I = 0; I != Obj.size(); ++I)
    Obj[I] = static_cast<uint8_t>(I * 7 + 1);
  return Obj;
}

TEST(CacheCrashTest, TruncatedEntriesAreDetectedAndRecompiled) {
  TempDir Tmp;
  const std::vector<uint8_t> Obj = objBlob();
  // Memory level disabled so every lookup exercises the persistent path.
  CodeCache C(false, true, Tmp.Path);
  C.insert(7, Obj);
  std::string Path = onlyCacheFile(Tmp.Path);
  auto Full = fs::readFile(Path);
  ASSERT_TRUE(Full.has_value());
  ASSERT_GT(Full->size(), Obj.size()) << "entries must carry a header";

  uint64_t ExpectedCorrupt = 0;
  for (size_t Keep : {size_t(0), size_t(10), Full->size() - Obj.size() - 1,
                      Full->size() - Obj.size() + Obj.size() / 2,
                      Full->size() - 1}) {
    // Simulate a crash mid-write: only a prefix reached the disk.
    std::vector<uint8_t> Truncated(Full->begin(), Full->begin() + Keep);
    ASSERT_TRUE(fs::writeFile(Path, Truncated));
    EXPECT_FALSE(C.lookup(7).has_value())
        << "truncated to " << Keep << " bytes must be a miss";
    EXPECT_EQ(C.stats().CorruptPersistentEntries, ++ExpectedCorrupt);
    EXPECT_FALSE(fs::exists(Path)) << "corrupt entry must be deleted";
    // The JIT recompiles and re-inserts on such a miss.
    C.insert(7, Obj);
    auto Hit = C.lookup(7);
    ASSERT_TRUE(Hit.has_value());
    EXPECT_EQ(*Hit, Obj);
  }
}

TEST(CacheCrashTest, BitFlippedPayloadIsRejectedByHash) {
  TempDir Tmp;
  const std::vector<uint8_t> Obj = objBlob();
  CodeCache C(false, true, Tmp.Path);
  C.insert(9, Obj);
  std::string Path = onlyCacheFile(Tmp.Path);
  auto Bytes = fs::readFile(Path);
  ASSERT_TRUE(Bytes.has_value());
  // Flip one bit in the payload region (past the header) — size still
  // matches, so only the payload hash can catch it.
  (*Bytes)[Bytes->size() - Obj.size() / 2] ^= 0x40;
  ASSERT_TRUE(fs::writeFile(Path, *Bytes));
  EXPECT_FALSE(C.lookup(9).has_value());
  EXPECT_EQ(C.stats().CorruptPersistentEntries, 1u);
  EXPECT_FALSE(fs::exists(Path));
}

TEST(CacheCrashTest, GarbageAndWrongMagicFilesAreRejected) {
  TempDir Tmp;
  CodeCache C(false, true, Tmp.Path);
  std::string Path = Tmp.Path + "/cache-jit-" + hashToHex(0x77) + ".o";
  // A raw object written by an old (pre-framing) cache version, or any
  // garbage: no magic, must be treated as a miss.
  ASSERT_TRUE(fs::writeFile(Path, std::vector<uint8_t>(512, 0xCD)));
  EXPECT_FALSE(C.lookup(0x77).has_value());
  EXPECT_EQ(C.stats().CorruptPersistentEntries, 1u);
  EXPECT_FALSE(fs::exists(Path));
}

TEST(CacheCrashTest, InsertLeavesNoTempFilesAndSweepCleansStaleOnes) {
  TempDir Tmp;
  CodeCache C(true, true, Tmp.Path);
  for (uint64_t H = 1; H <= 8; ++H)
    C.insert(H, objBlob());
  for (const std::string &Name : fs::listFiles(Tmp.Path))
    EXPECT_EQ(Name.find(".tmp-"), std::string::npos)
        << "temp file leaked: " << Name;

  // A crash between writing the temp file and renaming it leaves a
  // cache-jit-*.tmp-* orphan; clearPersistent() must sweep it.
  std::string Stale =
      Tmp.Path + "/cache-jit-" + hashToHex(0xbad) + ".o.tmp-12345-0";
  ASSERT_TRUE(fs::writeFile(Stale, {1, 2, 3}));
  C.clearPersistent();
  EXPECT_TRUE(fs::listFiles(Tmp.Path).empty())
      << "stale temp files must be swept";
}

TEST(CacheCrashTest, EndToEndJitRecompilesAfterCorruption) {
  TempDir Tmp;
  Context Ctx;
  Module M(Ctx, "app");
  buildDaxpyKernel(M);
  AotOptions AO;
  AO.Arch = GpuArch::AmdGcnSim;
  AO.EnableProteusExtensions = true;
  CompiledProgram Prog = aotCompile(M, AO);

  JitConfig JC;
  JC.CacheDir = Tmp.Path;

  auto RunOnce = [&](uint64_t ExpectCompilations) {
    Device Dev(getAmdGcnSimTarget(), 1 << 22);
    JitRuntime Jit(Dev, Prog.ModuleId, JC);
    LoadedProgram LP(Dev, Prog, &Jit);
    ASSERT_TRUE(LP.ok()) << LP.error();
    DevicePtr X = 0, Y = 0;
    gpuMalloc(Dev, &X, 64 * 8);
    gpuMalloc(Dev, &Y, 64 * 8);
    std::vector<double> HX(64, 2.0), HY(64, 1.0);
    gpuMemcpyHtoD(Dev, X, HX.data(), 64 * 8);
    gpuMemcpyHtoD(Dev, Y, HY.data(), 64 * 8);
    std::vector<KernelArg> Args = {{sem::boxF64(3.0)}, {X}, {Y}, {64}};
    std::string Err;
    ASSERT_EQ(LP.launch("daxpy", Dim3{2, 1, 1}, Dim3{32, 1, 1}, Args, &Err),
              GpuError::Success)
        << Err;
    std::vector<double> Out(64);
    gpuMemcpyDtoH(Dev, Out.data(), Y, 64 * 8);
    for (double V : Out)
      EXPECT_DOUBLE_EQ(V, 7.0); // 3*2 + 1
    EXPECT_EQ(Jit.stats().Compilations, ExpectCompilations);
    if (ExpectCompilations > 0) {
      EXPECT_GE(Jit.cache().stats().Misses, ExpectCompilations);
    }
  };

  RunOnce(1); // cold: compiles and persists

  // Corrupt the persisted entry as a crash mid-write would have.
  std::string Path = onlyCacheFile(Tmp.Path);
  auto Bytes = fs::readFile(Path);
  ASSERT_TRUE(Bytes.has_value());
  Bytes->resize(Bytes->size() / 2);
  ASSERT_TRUE(fs::writeFile(Path, *Bytes));

  RunOnce(1); // detects corruption, recompiles, correct results
  RunOnce(0); // the re-persisted entry is valid again
}

TEST(CacheCrashTest, TierTagAndFingerprintSurviveDiskRoundTrip) {
  TempDir Tmp;
  const std::vector<uint8_t> Obj = objBlob();
  const uint64_t Fp0 = jitPipelineFingerprint(CodeTier::Tier0);
  const uint64_t FpF = jitPipelineFingerprint(CodeTier::Final);
  {
    CodeCache C(false, true, Tmp.Path);
    C.insert(21, Obj, CodeTier::Tier0, Fp0);
    C.insert(22, Obj, CodeTier::Final, FpF);
  }
  // A fresh cache (fresh process) must decode both tags from the frame.
  CodeCache C2(false, true, Tmp.Path);
  auto T0 = C2.lookupEntry(21);
  ASSERT_TRUE(T0.has_value());
  EXPECT_EQ(T0->Object, Obj);
  EXPECT_EQ(T0->Tier, CodeTier::Tier0);
  EXPECT_EQ(T0->PipelineFingerprint, Fp0);
  auto Fin = C2.lookupEntry(22);
  ASSERT_TRUE(Fin.has_value());
  EXPECT_EQ(Fin->Tier, CodeTier::Final);
  EXPECT_EQ(Fin->PipelineFingerprint, FpF);
}

TEST(CacheCrashTest, FlippedTierMetadataIsRejectedByIntegrityHash) {
  // The integrity hash covers the tier tag and pipeline fingerprint, not
  // just the payload: flipping either turns the entry into a detected
  // corruption, never a Final-masquerading Tier-0 (or stale-pipeline)
  // binary.
  for (size_t Offset : {size_t(32) /* fingerprint */, size_t(40) /* tier */}) {
    TempDir Tmp;
    CodeCache C(false, true, Tmp.Path);
    C.insert(33, objBlob(), CodeTier::Tier0,
             jitPipelineFingerprint(CodeTier::Tier0));
    std::string Path = onlyCacheFile(Tmp.Path);
    auto Bytes = fs::readFile(Path);
    ASSERT_TRUE(Bytes.has_value());
    (*Bytes)[Offset] ^= 0x01;
    ASSERT_TRUE(fs::writeFile(Path, *Bytes));
    EXPECT_FALSE(C.lookupEntry(33).has_value())
        << "flipped metadata byte at " << Offset << " must be a miss";
    EXPECT_EQ(C.stats().CorruptPersistentEntries, 1u);
    EXPECT_FALSE(fs::exists(Path)) << "corrupt entry must be deleted";
  }
}

TEST(CacheCrashTest, ProcessCrashMidPublishIsInvisibleAndRecoverable) {
  // A real second process claims the compile, gets as far as the temp file,
  // and dies — no publish, no release. The atomic-rename protocol must keep
  // the torn write invisible (a miss, not a corrupt entry), and the stale
  // claim must be stolen so the survivor recompiles exactly once.
  TempDir Tmp;
  const uint64_t Hash = 0x5107;
  fleet::LocalBackendOptions BO;
  BO.StaleLockMs = 400;

  pid_t Child = fork();
  ASSERT_GE(Child, 0);
  if (Child == 0) {
    fleet::LocalDirBackend Crashing(Tmp.Path, BO);
    bool Owner = Crashing.beginCompile(Hash) == fleet::CompileClaim::Owner;
    // Crash mid-publish: only the half-written temp file reached the disk.
    fs::writeFile(Tmp.Path + "/cache-jit-" + hashToHex(Hash) + ".o.tmp-99-0",
                  {0xDE, 0xAD});
    _exit(Owner ? 0 : 1);
  }
  int Status = 0;
  ASSERT_EQ(waitpid(Child, &Status, 0), Child);
  ASSERT_TRUE(WIFEXITED(Status) && WEXITSTATUS(Status) == 0)
      << "child failed to take the claim";

  fleet::LocalDirBackend Survivor(Tmp.Path, BO);
  // The torn publish never became an entry.
  EXPECT_FALSE(Survivor.lookup(fleet::BlobKind::Code, Hash).has_value());
  // The dead owner's claim blocks until stale, then is stolen.
  EXPECT_EQ(Survivor.beginCompile(Hash), fleet::CompileClaim::InFlightElsewhere);
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  ASSERT_EQ(Survivor.beginCompile(Hash), fleet::CompileClaim::Owner);
  EXPECT_TRUE(Survivor.publish(fleet::BlobKind::Code, Hash, objBlob()));
  Survivor.endCompile(Hash);
  auto Hit = Survivor.lookup(fleet::BlobKind::Code, Hash);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->Bytes, objBlob());
  // The crash left no visible damage at the CodeCache level either; the
  // sweep removes the orphaned temp file.
  CodeCache C(false, true, Tmp.Path);
  EXPECT_EQ(C.stats().CorruptPersistentEntries, 0u);
  C.clearPersistent();
  EXPECT_TRUE(fs::listFiles(Tmp.Path).empty());
}

TEST(CacheCrashTest, DaemonCrashMidRunFallsBackToLocalPublishes) {
  // The shared cache service dies between two inserts: entries already
  // published stay readable through the fallback path (same directory),
  // new publishes divert to it, and nothing is ever served torn.
  TempDir Tmp;
  std::string Store = Tmp.Path + "/store";
  fleet::CacheServerOptions SO;
  SO.SocketPath = Tmp.Path + "/cached.sock";
  SO.Dir = Store;
  SO.Shards = 1; // fallback must agree on the layout
  auto Server = fleet::CacheServer::start(SO);
  ASSERT_TRUE(Server);

  fleet::RemoteBackendOptions RO;
  RO.SocketPath = SO.SocketPath;
  RO.FallbackDir = Store;
  RO.TimeoutMs = 500;
  CodeCache C(false, true, Store, CacheLimits(),
              std::make_unique<fleet::RemoteCacheBackend>(std::move(RO)));

  C.insert(1, objBlob());
  ASSERT_TRUE(C.lookup(1).has_value());

  Server->stop(); // daemon "crashes"

  C.insert(2, objBlob()); // must divert to the local fallback
  auto H1 = C.lookup(1), H2 = C.lookup(2);
  ASSERT_TRUE(H1.has_value()) << "daemon-published entry lost in the crash";
  ASSERT_TRUE(H2.has_value()) << "fallback publish failed";
  EXPECT_EQ(*H1, objBlob());
  EXPECT_EQ(*H2, objBlob());
  EXPECT_EQ(C.stats().CorruptPersistentEntries, 0u);
  auto *Remote = static_cast<fleet::RemoteCacheBackend *>(C.backend());
  EXPECT_FALSE(Remote->connected());
  EXPECT_GT(Remote->stats().FallbackOps, 0u);
}

TEST(CacheCrashTest, Tier0InsertNeverDowngradesFinalEntry) {
  // A racing Tier-0 compile finishing after the Tier-1 promotion (or a
  // replayed persist) must not replace the better artifact at either level.
  TempDir Tmp;
  std::vector<uint8_t> FinalObj = objBlob();
  std::vector<uint8_t> Tier0Obj(128, 0x5A);
  CodeCache C(true, true, Tmp.Path);
  C.insert(55, FinalObj, CodeTier::Final,
           jitPipelineFingerprint(CodeTier::Final));
  C.insert(55, Tier0Obj, CodeTier::Tier0,
           jitPipelineFingerprint(CodeTier::Tier0));

  auto Mem = C.lookupEntry(55); // served by the memory level
  ASSERT_TRUE(Mem.has_value());
  EXPECT_EQ(Mem->Tier, CodeTier::Final);
  EXPECT_EQ(Mem->Object, FinalObj);

  C.clearMemory(); // force the persistent level
  auto Disk = C.lookupEntry(55);
  ASSERT_TRUE(Disk.has_value());
  EXPECT_EQ(Disk->Tier, CodeTier::Final) << "disk level was downgraded";
  EXPECT_EQ(Disk->Object, FinalObj);
}

TEST(CacheCrashTest, CrashBetweenTier0PersistAndPromotionRecovers) {
  // A run that persisted its Tier-0 baseline and died before the Tier-1
  // promotion leaves a valid, loadable Tier-0 entry — the next run serves
  // it and completes the promotion by re-inserting in place.
  TempDir Tmp;
  const std::vector<uint8_t> Baseline = objBlob();
  {
    CodeCache DyingRun(false, true, Tmp.Path);
    DyingRun.insert(77, Baseline, CodeTier::Tier0,
                    jitPipelineFingerprint(CodeTier::Tier0));
  } // promotion never happened

  CodeCache NextRun(false, true, Tmp.Path);
  auto Recovered = NextRun.lookupEntry(77);
  ASSERT_TRUE(Recovered.has_value()) << "Tier-0 baseline lost";
  EXPECT_EQ(Recovered->Object, Baseline);
  EXPECT_EQ(Recovered->Tier, CodeTier::Tier0);
  EXPECT_EQ(NextRun.stats().CorruptPersistentEntries, 0u);

  // The promotion this run performs overwrites the slot with the Final
  // artifact; yet another run must see only the promoted entry.
  std::vector<uint8_t> Promoted(192, 0x3C);
  NextRun.insert(77, Promoted, CodeTier::Final,
                 jitPipelineFingerprint(CodeTier::Final));
  CodeCache ThirdRun(false, true, Tmp.Path);
  auto Entry = ThirdRun.lookupEntry(77);
  ASSERT_TRUE(Entry.has_value());
  EXPECT_EQ(Entry->Tier, CodeTier::Final);
  EXPECT_EQ(Entry->Object, Promoted);
}

} // namespace
