//===- cache_eviction_test.cpp - section 3.4 cache management tests --------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The paper's section 3.4 roadmap features: in-memory and persistent size
// limits with LRU eviction, the runtime-informed (LFU) policy, and the
// environment-variable configuration surface.
//
//===----------------------------------------------------------------------===//

#include "fleet/LocalBackend.h"
#include "jit/CodeCache.h"
#include "jit/JitRuntime.h"
#include "support/FileSystem.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include <sys/wait.h>
#include <unistd.h>

using namespace proteus;

namespace {

struct TempDir {
  std::string Path;
  TempDir() : Path(fs::makeTempDirectory("proteus-evict")) {}
  ~TempDir() { fs::removeTree(Path); }
};

std::vector<uint8_t> blob(size_t N, uint8_t Fill) {
  return std::vector<uint8_t>(N, Fill);
}

TEST(CacheEvictionTest, UnlimitedByDefaultMatchingThePaper) {
  CodeCache C(true, false, "");
  for (uint64_t H = 0; H != 64; ++H)
    C.insert(H, blob(1024, static_cast<uint8_t>(H)));
  EXPECT_EQ(C.memoryEntries(), 64u);
  EXPECT_EQ(C.stats().MemoryEvictions, 0u);
}

TEST(CacheEvictionTest, MemoryLruEvictsOldestFirst) {
  CacheLimits L;
  L.MaxMemoryBytes = 4 * 1024;
  CodeCache C(true, false, "", L);
  for (uint64_t H = 1; H <= 4; ++H)
    C.insert(H, blob(1024, 1));
  EXPECT_EQ(C.memoryEntries(), 4u);
  // Touch entry 1 so entry 2 becomes the LRU victim.
  EXPECT_TRUE(C.lookup(1).has_value());
  C.insert(5, blob(1024, 5));
  EXPECT_GT(C.stats().MemoryEvictions, 0u);
  EXPECT_TRUE(C.lookup(1).has_value()) << "recently used must survive";
  EXPECT_FALSE(C.lookup(2).has_value()) << "LRU victim must be gone";
  EXPECT_LE(C.memoryBytes(), L.MaxMemoryBytes);
}

TEST(CacheEvictionTest, LfuPrefersRarelyExecutedSpecializations) {
  CacheLimits L;
  L.MaxMemoryBytes = 3 * 1024;
  L.Policy = EvictionPolicy::LFU;
  CodeCache C(true, false, "", L);
  C.insert(10, blob(1024, 1)); // hot
  C.insert(20, blob(1024, 2)); // cold
  C.insert(30, blob(1024, 3)); // warm
  for (int I = 0; I != 5; ++I)
    C.lookup(10);
  C.lookup(30);
  // 20 was never executed again: the runtime-informed policy evicts it even
  // though 10 was used less recently than ... (order: 10 touched last).
  C.insert(40, blob(1024, 4));
  EXPECT_FALSE(C.lookup(20).has_value());
  EXPECT_TRUE(C.lookup(10).has_value());
  EXPECT_TRUE(C.lookup(30).has_value());
}

TEST(CacheEvictionTest, PersistentLimitRemovesOldestFiles) {
  TempDir Tmp;
  CacheLimits L;
  L.MaxPersistentBytes = 3 * 4096;
  CodeCache C(false, true, Tmp.Path, L);
  for (uint64_t H = 1; H <= 3; ++H) {
    C.insert(H, blob(4096, static_cast<uint8_t>(H)));
    // Distinct mtimes on filesystems with coarse timestamps.
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  }
  EXPECT_LE(C.persistentBytes(), L.MaxPersistentBytes);
  C.insert(4, blob(4096, 4));
  EXPECT_LE(C.persistentBytes(), L.MaxPersistentBytes);
  EXPECT_GT(C.stats().PersistentEvictions, 0u);
  EXPECT_FALSE(C.lookup(1).has_value()) << "oldest file evicted";
  EXPECT_TRUE(C.lookup(4).has_value());
}

TEST(CacheEvictionTest, EvictedEntryIsRecompiledNotCorrupted) {
  CacheLimits L;
  L.MaxMemoryBytes = 2 * 1024;
  CodeCache C(true, false, "", L);
  C.insert(1, blob(1024, 1));
  C.insert(2, blob(1024, 2));
  C.insert(3, blob(1024, 3)); // evicts 1
  auto Hit = C.lookup(3);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ((*Hit)[0], 3);
  EXPECT_FALSE(C.lookup(1).has_value());
  // Re-inserting the evicted entry works (the JIT recompiles on miss).
  C.insert(1, blob(1024, 9));
  auto Again = C.lookup(1);
  ASSERT_TRUE(Again.has_value());
  EXPECT_EQ((*Again)[0], 9);
}

TEST(CacheEvictionTest, PromotionPreservesHitCountForLfu) {
  // Regression: promoting an entry from the persistent level used to reset
  // its execution count, biasing the LFU policy against specializations
  // that round-tripped through disk (e.g. across a clearMemory "restart").
  TempDir Tmp;
  CacheLimits L;
  L.MaxMemoryBytes = 2 * 1024;
  L.Policy = EvictionPolicy::LFU;
  CodeCache C(true, true, Tmp.Path, L);

  C.insert(1, blob(1024, 1));
  for (int I = 0; I != 5; ++I)
    EXPECT_TRUE(C.lookup(1).has_value()); // hot: executed 5 times
  C.clearMemory(); // "process restart"; count written back to disk

  // Promote 1 back from the persistent level, then fill memory.
  EXPECT_TRUE(C.lookup(1).has_value());
  C.insert(2, blob(1024, 2)); // cold, never executed
  C.insert(3, blob(1024, 3)); // forces one LFU eviction

  // With the count preserved (1: 6 executions) the cold entry 2 must be
  // the victim; the buggy reset-to-zero behaviour evicted 1 instead.
  CodeCacheStats Before = C.stats();
  EXPECT_TRUE(C.lookup(1).has_value());
  CodeCacheStats After = C.stats();
  EXPECT_EQ(After.MemoryHits, Before.MemoryHits + 1)
      << "the hot promoted entry must still be in memory";
  EXPECT_EQ(After.PersistentHits, Before.PersistentHits);
  // 2 fell back to the persistent level (still correct, just slower).
  Before = C.stats();
  EXPECT_TRUE(C.lookup(2).has_value());
  After = C.stats();
  EXPECT_EQ(After.PersistentHits, Before.PersistentHits + 1)
      << "the cold entry must have been the LFU victim";
}

TEST(CacheEvictionTest, WriteBackPersistsExecutionCountsAcrossRestart) {
  // Execution counts survive clearMemory() (write-back into the entry
  // header), so a restarted process still sees runtime-informed
  // frequencies — verified end to end via LFU victim selection.
  TempDir Tmp;
  CacheLimits L;
  L.MaxMemoryBytes = 2 * 1024;
  L.Policy = EvictionPolicy::LFU;
  {
    CodeCache C(true, true, Tmp.Path, L);
    C.insert(1, blob(1024, 1));
    C.insert(2, blob(1024, 2)); // evicts nothing: exactly at the limit
    for (int I = 0; I != 4; ++I)
      C.lookup(1);
    C.clearMemory();
  }
  // New cache instance ("new process"), same disk.
  CodeCache C(true, true, Tmp.Path, L);
  EXPECT_TRUE(C.lookup(1).has_value()); // promoted with count 4+1
  EXPECT_TRUE(C.lookup(2).has_value()); // promoted with count 0+1
  C.insert(3, blob(1024, 3));           // LFU eviction
  CodeCacheStats Before = C.stats();
  EXPECT_TRUE(C.lookup(1).has_value());
  EXPECT_EQ(C.stats().MemoryHits, Before.MemoryHits + 1)
      << "frequently executed entry must survive the restart";
}

TEST(CacheEvictionTest, StatsSnapshotIsStableCopy) {
  CodeCache C(true, false, "");
  C.insert(1, blob(64, 1));
  C.lookup(1);
  C.lookup(2);
  CodeCacheStats S = C.stats(); // snapshot by value
  EXPECT_EQ(S.MemoryHits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  // Further cache activity must not mutate the snapshot.
  for (int I = 0; I != 10; ++I)
    C.lookup(1);
  EXPECT_EQ(S.MemoryHits, 1u);
  EXPECT_EQ(C.stats().MemoryHits, 11u);
}

TEST(CacheEvictionTest, ConcurrentMixedOperationsAreSafe) {
  // Thread-safety smoke for the cache itself (run under TSan by
  // tools/ci_tsan.sh): concurrent inserts, lookups, stats snapshots and
  // clears must neither crash nor corrupt counters.
  TempDir Tmp;
  CacheLimits L;
  L.MaxMemoryBytes = 8 * 1024;
  L.Policy = EvictionPolicy::LFU;
  CodeCache C(true, true, Tmp.Path, L);
  constexpr unsigned Threads = 8, Iters = 200;
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T != Threads; ++T)
    Ts.emplace_back([&C, T] {
      for (unsigned I = 0; I != Iters; ++I) {
        uint64_t H = (T * 13 + I) % 24;
        if (I % 3 == 0)
          C.insert(H, blob(512, static_cast<uint8_t>(H)));
        else
          C.lookup(H);
        if (I % 17 == 0)
          (void)C.stats();
        if (T == 0 && I % 97 == 0)
          C.clearMemory();
      }
    });
  for (std::thread &T : Ts)
    T.join();
  // Per thread: 67 of the 200 iterations insert (I % 3 == 0), 133 look up.
  CodeCacheStats S = C.stats();
  EXPECT_EQ(S.MemoryHits + S.PersistentHits + S.Misses,
            uint64_t(Threads) * 133)
      << "every lookup must be accounted exactly once";
  // Every surviving lookup result must round-trip correctly.
  for (uint64_t H = 0; H != 24; ++H)
    if (auto Hit = C.lookup(H)) {
      ASSERT_EQ(Hit->size(), 512u);
      EXPECT_EQ((*Hit)[0], static_cast<uint8_t>(H));
    }
}

TEST(CacheEvictionTest, TuningDecisionsCountTowardTheByteBudget) {
  // Regression for the unbounded-growth bug: cache-tune-<hex> files used to
  // bypass the persistent size accounting entirely, so a "size-limited"
  // cache grew without bound once the autotuner was on. Under BudgetBytes
  // they are budgeted and evictable like code entries.
  TempDir Tmp;
  CacheLimits L;
  L.BudgetBytes = 2048;
  CodeCache C(false, true, Tmp.Path, L);
  TuningDecision D;
  D.BlockX = 128;
  for (uint64_t Key = 1; Key <= 60; ++Key) {
    C.storeTuningDecision(Key, D);
    // Coarse-timestamp filesystems need distinct mtimes for eviction order.
    if (Key % 10 == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(12));
  }
  EXPECT_LE(C.persistentBytes(), L.BudgetBytes)
      << "tune files must not grow the cache past its budget";
  EXPECT_GT(C.stats().PersistentEvictions, 0u);
  // Recent decisions survive; evicted ones are simply re-tuned (a miss).
  EXPECT_TRUE(C.lookupTuningDecision(60).has_value());
}

TEST(CacheEvictionTest, BudgetCoversCodeAndTuneTogether) {
  TempDir Tmp;
  CacheLimits L;
  L.BudgetBytes = 8 * 1024;
  CodeCache C(false, true, Tmp.Path, L);
  TuningDecision D;
  for (uint64_t K = 1; K <= 8; ++K) {
    C.insert(K, blob(1536, static_cast<uint8_t>(K)));
    C.storeTuningDecision(K, D);
  }
  EXPECT_LE(C.persistentBytes(), L.BudgetBytes);
  EXPECT_GT(C.stats().PersistentEvictions, 0u);
}

TEST(CacheEvictionTest, MultiProcessContentionUnderTightBudgetStaysSafe) {
  // K real processes hammer one sharded cache directory under a budget far
  // too small to hold every entry, so evictions race lookups and publishes
  // constantly. Invariants: no process ever reads a torn/corrupt entry
  // (unlink/rename semantics — an eviction yields a miss, never garbage),
  // and the final directory respects the budget.
  TempDir Tmp;
  constexpr unsigned Procs = 4, Iters = 60, Keys = 16;
  constexpr uint64_t Budget = 32 * 1024;
  constexpr size_t EntryBytes = 4096;

  std::vector<pid_t> Pids;
  for (unsigned P = 0; P != Procs; ++P) {
    pid_t Pid = fork();
    ASSERT_GE(Pid, 0);
    if (Pid == 0) {
      CacheLimits L;
      L.BudgetBytes = Budget;
      L.Shards = 2;
      CodeCache C(false, true, Tmp.Path, L);
      unsigned Bad = 0;
      for (unsigned I = 0; I != Iters; ++I) {
        uint64_t Key = (I * Procs + P) % Keys;
        if (auto Hit = C.lookup(Key)) {
          if (*Hit != blob(EntryBytes, static_cast<uint8_t>(Key)))
            ++Bad; // corrupt read: the invariant this test exists for
        } else {
          C.insert(Key, blob(EntryBytes, static_cast<uint8_t>(Key)));
        }
      }
      if (C.stats().CorruptPersistentEntries != 0)
        ++Bad;
      _exit(Bad == 0 ? 0 : 1);
    }
    Pids.push_back(Pid);
  }
  for (pid_t Pid : Pids) {
    int Status = 0;
    ASSERT_EQ(waitpid(Pid, &Status, 0), Pid);
    EXPECT_TRUE(WIFEXITED(Status) && WEXITSTATUS(Status) == 0)
        << "a client observed a corrupt entry under eviction contention";
  }
  // One more publish triggers a final budget pass over whatever the races
  // left behind; the directory must settle at or below the budget.
  {
    CacheLimits L;
    L.BudgetBytes = Budget;
    L.Shards = 2;
    CodeCache C(false, true, Tmp.Path, L);
    C.insert(999, blob(EntryBytes, 9));
    EXPECT_LE(C.persistentBytes(), Budget);
    EXPECT_EQ(C.stats().CorruptPersistentEntries, 0u);
  }
}

TEST(CacheEvictionTest, EnvironmentConfiguration) {
  setenv("PROTEUS_CACHE_MEM_LIMIT", "12345", 1);
  setenv("PROTEUS_CACHE_DISK_LIMIT", "67890", 1);
  setenv("PROTEUS_CACHE_POLICY", "lfu", 1);
  setenv("PROTEUS_NO_RCF", "1", 1);
  setenv("PROTEUS_CACHE_DIR", "/tmp/proteus-env-cache", 1);
  setenv("PROTEUS_ASYNC", "fallback", 1);
  setenv("PROTEUS_ASYNC_WORKERS", "6", 1);
  JitConfig C = JitConfig::fromEnvironment();
  EXPECT_EQ(C.Limits.MaxMemoryBytes, 12345u);
  EXPECT_EQ(C.Limits.MaxPersistentBytes, 67890u);
  EXPECT_EQ(C.Limits.Policy, EvictionPolicy::LFU);
  EXPECT_FALSE(C.EnableRCF);
  EXPECT_TRUE(C.EnableLaunchBounds);
  EXPECT_EQ(C.CacheDir, "/tmp/proteus-env-cache");
  EXPECT_EQ(C.Async, JitConfig::AsyncMode::Fallback);
  EXPECT_EQ(C.AsyncWorkers, 6u);
  setenv("PROTEUS_ASYNC", "block", 1);
  EXPECT_EQ(JitConfig::fromEnvironment().Async, JitConfig::AsyncMode::Block);
  setenv("PROTEUS_ASYNC", "sync", 1);
  EXPECT_EQ(JitConfig::fromEnvironment().Async, JitConfig::AsyncMode::Sync);
  unsetenv("PROTEUS_CACHE_MEM_LIMIT");
  unsetenv("PROTEUS_CACHE_DISK_LIMIT");
  unsetenv("PROTEUS_CACHE_POLICY");
  unsetenv("PROTEUS_NO_RCF");
  unsetenv("PROTEUS_CACHE_DIR");
  unsetenv("PROTEUS_ASYNC");
  unsetenv("PROTEUS_ASYNC_WORKERS");
}

} // namespace
