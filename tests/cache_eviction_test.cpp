//===- cache_eviction_test.cpp - section 3.4 cache management tests --------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The paper's section 3.4 roadmap features: in-memory and persistent size
// limits with LRU eviction, the runtime-informed (LFU) policy, and the
// environment-variable configuration surface.
//
//===----------------------------------------------------------------------===//

#include "jit/CodeCache.h"
#include "jit/JitRuntime.h"
#include "support/FileSystem.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

using namespace proteus;

namespace {

struct TempDir {
  std::string Path;
  TempDir() : Path(fs::makeTempDirectory("proteus-evict")) {}
  ~TempDir() { fs::removeAllFiles(Path); }
};

std::vector<uint8_t> blob(size_t N, uint8_t Fill) {
  return std::vector<uint8_t>(N, Fill);
}

TEST(CacheEvictionTest, UnlimitedByDefaultMatchingThePaper) {
  CodeCache C(true, false, "");
  for (uint64_t H = 0; H != 64; ++H)
    C.insert(H, blob(1024, static_cast<uint8_t>(H)));
  EXPECT_EQ(C.memoryEntries(), 64u);
  EXPECT_EQ(C.stats().MemoryEvictions, 0u);
}

TEST(CacheEvictionTest, MemoryLruEvictsOldestFirst) {
  CacheLimits L;
  L.MaxMemoryBytes = 4 * 1024;
  CodeCache C(true, false, "", L);
  for (uint64_t H = 1; H <= 4; ++H)
    C.insert(H, blob(1024, 1));
  EXPECT_EQ(C.memoryEntries(), 4u);
  // Touch entry 1 so entry 2 becomes the LRU victim.
  EXPECT_TRUE(C.lookup(1).has_value());
  C.insert(5, blob(1024, 5));
  EXPECT_GT(C.stats().MemoryEvictions, 0u);
  EXPECT_TRUE(C.lookup(1).has_value()) << "recently used must survive";
  EXPECT_FALSE(C.lookup(2).has_value()) << "LRU victim must be gone";
  EXPECT_LE(C.memoryBytes(), L.MaxMemoryBytes);
}

TEST(CacheEvictionTest, LfuPrefersRarelyExecutedSpecializations) {
  CacheLimits L;
  L.MaxMemoryBytes = 3 * 1024;
  L.Policy = EvictionPolicy::LFU;
  CodeCache C(true, false, "", L);
  C.insert(10, blob(1024, 1)); // hot
  C.insert(20, blob(1024, 2)); // cold
  C.insert(30, blob(1024, 3)); // warm
  for (int I = 0; I != 5; ++I)
    C.lookup(10);
  C.lookup(30);
  // 20 was never executed again: the runtime-informed policy evicts it even
  // though 10 was used less recently than ... (order: 10 touched last).
  C.insert(40, blob(1024, 4));
  EXPECT_FALSE(C.lookup(20).has_value());
  EXPECT_TRUE(C.lookup(10).has_value());
  EXPECT_TRUE(C.lookup(30).has_value());
}

TEST(CacheEvictionTest, PersistentLimitRemovesOldestFiles) {
  TempDir Tmp;
  CacheLimits L;
  L.MaxPersistentBytes = 3 * 4096;
  CodeCache C(false, true, Tmp.Path, L);
  for (uint64_t H = 1; H <= 3; ++H) {
    C.insert(H, blob(4096, static_cast<uint8_t>(H)));
    // Distinct mtimes on filesystems with coarse timestamps.
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  }
  EXPECT_LE(C.persistentBytes(), L.MaxPersistentBytes);
  C.insert(4, blob(4096, 4));
  EXPECT_LE(C.persistentBytes(), L.MaxPersistentBytes);
  EXPECT_GT(C.stats().PersistentEvictions, 0u);
  EXPECT_FALSE(C.lookup(1).has_value()) << "oldest file evicted";
  EXPECT_TRUE(C.lookup(4).has_value());
}

TEST(CacheEvictionTest, EvictedEntryIsRecompiledNotCorrupted) {
  CacheLimits L;
  L.MaxMemoryBytes = 2 * 1024;
  CodeCache C(true, false, "", L);
  C.insert(1, blob(1024, 1));
  C.insert(2, blob(1024, 2));
  C.insert(3, blob(1024, 3)); // evicts 1
  auto Hit = C.lookup(3);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ((*Hit)[0], 3);
  EXPECT_FALSE(C.lookup(1).has_value());
  // Re-inserting the evicted entry works (the JIT recompiles on miss).
  C.insert(1, blob(1024, 9));
  auto Again = C.lookup(1);
  ASSERT_TRUE(Again.has_value());
  EXPECT_EQ((*Again)[0], 9);
}

TEST(CacheEvictionTest, EnvironmentConfiguration) {
  setenv("PROTEUS_CACHE_MEM_LIMIT", "12345", 1);
  setenv("PROTEUS_CACHE_DISK_LIMIT", "67890", 1);
  setenv("PROTEUS_CACHE_POLICY", "lfu", 1);
  setenv("PROTEUS_NO_RCF", "1", 1);
  setenv("PROTEUS_CACHE_DIR", "/tmp/proteus-env-cache", 1);
  JitConfig C = JitConfig::fromEnvironment();
  EXPECT_EQ(C.Limits.MaxMemoryBytes, 12345u);
  EXPECT_EQ(C.Limits.MaxPersistentBytes, 67890u);
  EXPECT_EQ(C.Limits.Policy, EvictionPolicy::LFU);
  EXPECT_FALSE(C.EnableRCF);
  EXPECT_TRUE(C.EnableLaunchBounds);
  EXPECT_EQ(C.CacheDir, "/tmp/proteus-env-cache");
  unsetenv("PROTEUS_CACHE_MEM_LIMIT");
  unsetenv("PROTEUS_CACHE_DISK_LIMIT");
  unsetenv("PROTEUS_CACHE_POLICY");
  unsetenv("PROTEUS_NO_RCF");
  unsetenv("PROTEUS_CACHE_DIR");
}

} // namespace
