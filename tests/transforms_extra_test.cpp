//===- transforms_extra_test.cpp - optimizer edge-case tests ----------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Edge cases beyond the core pass tests: nested loop handling, safety
// limits of LICM/CSE, inliner control-flow shapes, canonicalization, pass
// statistics, and fixpoint behaviour of the pipeline manager.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/Context.h"
#include "ir/IRPrinter.h"
#include "transforms/CSE.h"
#include "transforms/DCE.h"
#include "transforms/InstCombine.h"
#include "transforms/Inliner.h"
#include "transforms/LICM.h"
#include "transforms/LoopInfo.h"
#include "transforms/LoopUnroll.h"
#include "transforms/O3Pipeline.h"
#include "transforms/SimplifyCFG.h"
#include "transforms/SpecializeArgs.h"

#include <gtest/gtest.h>

using namespace pir;
using namespace proteus;
using namespace proteus_test;

namespace {

size_t countKind(Function &F, ValueKind K) {
  size_t N = 0;
  for (BasicBlock &BB : F)
    for (Instruction &I : BB)
      if (I.getKind() == K)
        ++N;
  return N;
}

/// Builds sum over a 2-level nest: for i<ni: for j<nj: acc += in[gtid]*i*j.
Function *buildNestedLoopKernel(Module &M) {
  Context &Ctx = M.getContext();
  IRBuilder B(Ctx);
  Type *F64 = Ctx.getF64Ty();
  Type *I32 = Ctx.getI32Ty();
  Function *F = M.createFunction(
      "nest", Ctx.getVoidTy(),
      {Ctx.getPtrTy(), Ctx.getPtrTy(), I32, I32},
      {"in", "out", "ni", "nj"}, FunctionKind::Kernel);
  F->setJitAnnotation(JitAnnotation{{3, 4}});

  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *OH = F->createBlock("oh", Ctx.getVoidTy());
  BasicBlock *OB = F->createBlock("ob", Ctx.getVoidTy());
  BasicBlock *IH = F->createBlock("ih", Ctx.getVoidTy());
  BasicBlock *IB = F->createBlock("ib", Ctx.getVoidTy());
  BasicBlock *IL = F->createBlock("il", Ctx.getVoidTy());
  BasicBlock *Exit = F->createBlock("exit", Ctx.getVoidTy());

  B.setInsertPoint(Entry);
  Value *Gtid = B.createGlobalThreadIdX();
  Value *Inv = B.createLoad(F64, B.createGep(F64, F->getArg(0), Gtid));
  B.createBr(OH);

  B.setInsertPoint(OH);
  PhiInst *I = B.createPhi(I32, "i");
  PhiInst *AccO = B.createPhi(F64, "acco");
  I->addIncoming(B.getInt32(0), Entry);
  AccO->addIncoming(B.getDouble(0.0), Entry);
  B.createCondBr(B.createICmp(ICmpPred::SLT, I, F->getArg(2)), OB, Exit);

  B.setInsertPoint(OB);
  B.createBr(IH);

  B.setInsertPoint(IH);
  PhiInst *J = B.createPhi(I32, "j");
  PhiInst *AccI = B.createPhi(F64, "acci");
  J->addIncoming(B.getInt32(0), OB);
  AccI->addIncoming(AccO, OB);
  B.createCondBr(B.createICmp(ICmpPred::SLT, J, F->getArg(3)), IB, IL);

  B.setInsertPoint(IB);
  Value *Ifp = B.createSIToFP(I, F64);
  Value *Jfp = B.createSIToFP(J, F64);
  Value *Term = B.createFMul(Inv, B.createFMul(Ifp, Jfp));
  Value *AccI2 = B.createFAdd(AccI, Term);
  Value *J2 = B.createAdd(J, B.getInt32(1));
  J->addIncoming(J2, IB);
  AccI->addIncoming(AccI2, IB);
  B.createBr(IH);

  B.setInsertPoint(IL); // inner exit = outer latch
  Value *I2 = B.createAdd(I, B.getInt32(1));
  I->addIncoming(I2, IL);
  AccO->addIncoming(AccI, IL);
  B.createBr(OH);

  B.setInsertPoint(Exit);
  B.createStore(AccO, B.createGep(F64, F->getArg(1), Gtid));
  B.createRet();
  return F;
}

std::vector<uint8_t> runNest(Function &F, int32_t Ni, int32_t Nj) {
  constexpr uint32_t N = 4;
  std::vector<uint8_t> Mem(2 * N * sizeof(double));
  auto *In = reinterpret_cast<double *>(Mem.data());
  for (uint32_t K = 0; K != N; ++K)
    In[K] = 1.0 + K;
  std::vector<uint64_t> Args = {0, N * sizeof(double),
                                static_cast<uint32_t>(Ni),
                                static_cast<uint32_t>(Nj)};
  interpretLaunch(F, Args, Mem, 1, N);
  return Mem;
}

TEST(LoopInfoExtraTest, DetectsNestingAndDepths) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildNestedLoopKernel(M);
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.loops().size(), 2u);
  auto Loops = LI.loopsInnermostFirst();
  EXPECT_EQ(Loops[0]->depth(), 2u);
  EXPECT_EQ(Loops[1]->depth(), 1u);
  EXPECT_TRUE(Loops[1]->contains(Loops[0]->Header));
  EXPECT_EQ(Loops[0]->Parent, Loops[1]);
}

TEST(LoopUnrollExtraTest, FullyUnrollsNestAfterSpecialization) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildNestedLoopKernel(M);
  std::vector<uint8_t> Before = runNest(*F, 3, 4);

  specializeArguments(*F, {{2, 3}, {3, 4}});
  O3Options Opts;
  Opts.VerifyEach = true;
  runO3(*F, Opts);
  // Both loops unroll: no phis remain.
  EXPECT_EQ(countKind(*F, ValueKind::Phi), 0u);
  std::vector<uint8_t> After = runNest(*F, 3, 4);
  EXPECT_EQ(Before, After);
}

TEST(LoopUnrollExtraTest, InnerOnlySpecializationUnrollsInnerLoop) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildNestedLoopKernel(M);
  std::vector<uint8_t> Before = runNest(*F, 5, 2);

  specializeArguments(*F, {{3, 2}}); // nj only
  O3Options Opts;
  Opts.VerifyEach = true;
  runO3(*F, Opts);
  // The outer loop must survive (bound still symbolic).
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  EXPECT_EQ(LI.loops().size(), 1u);
  std::vector<uint8_t> After = runNest(*F, 5, 2);
  EXPECT_EQ(Before, After);
}

TEST(LICMExtraTest, DoesNotHoistDivisionOrLoads) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction(
      "k", Ctx.getVoidTy(),
      {Ctx.getPtrTy(), Ctx.getI32Ty(), Ctx.getI32Ty()}, {"p", "d", "n"},
      FunctionKind::Kernel);
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *H = F->createBlock("h", Ctx.getVoidTy());
  BasicBlock *Body = F->createBlock("b", Ctx.getVoidTy());
  BasicBlock *Exit = F->createBlock("x", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  B.createBr(H);
  B.setInsertPoint(H);
  PhiInst *I = B.createPhi(Ctx.getI32Ty(), "i");
  I->addIncoming(B.getInt32(0), Entry);
  B.createCondBr(B.createICmp(ICmpPred::SLT, I, F->getArg(2)), Body, Exit);
  B.setInsertPoint(Body);
  // Loop-invariant but non-speculatable: sdiv may trap semantics-wise; the
  // load may fault. Neither may move to the preheader (the loop may run
  // zero iterations).
  Value *Div = B.createSDiv(B.getInt32(100), F->getArg(1), "div");
  Value *Ld = B.createLoad(Ctx.getI32Ty(), F->getArg(0), "ld");
  Value *Sum = B.createAdd(Div, Ld);
  B.createStore(Sum, F->getArg(0));
  Value *I2 = B.createAdd(I, B.getInt32(1));
  I->addIncoming(I2, Body);
  B.createBr(H);
  B.setInsertPoint(Exit);
  B.createRet();

  LICMPass().run(*F);
  expectValid(*F);
  bool DivInBody = false, LdInBody = false;
  for (Instruction &Inst : *Body) {
    if (Inst.getKind() == ValueKind::SDiv)
      DivInBody = true;
    if (Inst.getKind() == ValueKind::Load)
      LdInBody = true;
  }
  EXPECT_TRUE(DivInBody) << "sdiv must not be hoisted";
  EXPECT_TRUE(LdInBody) << "loads must not be hoisted";
}

TEST(InlinerExtraTest, InlinesCalleeWithLoop) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  // Callee computes x^n by repeated multiplication in a loop.
  Function *Dev = M.createFunction("ipow", Ctx.getF64Ty(),
                                   {Ctx.getF64Ty(), Ctx.getI32Ty()},
                                   {"x", "n"}, FunctionKind::Device);
  {
    BasicBlock *E = Dev->createBlock("e", Ctx.getVoidTy());
    BasicBlock *H = Dev->createBlock("h", Ctx.getVoidTy());
    BasicBlock *Bd = Dev->createBlock("b", Ctx.getVoidTy());
    BasicBlock *X = Dev->createBlock("x", Ctx.getVoidTy());
    B.setInsertPoint(E);
    B.createBr(H);
    B.setInsertPoint(H);
    PhiInst *I = B.createPhi(Ctx.getI32Ty(), "i");
    PhiInst *Acc = B.createPhi(Ctx.getF64Ty(), "acc");
    I->addIncoming(B.getInt32(0), E);
    Acc->addIncoming(B.getDouble(1.0), E);
    B.createCondBr(B.createICmp(ICmpPred::SLT, I, Dev->getArg(1)), Bd, X);
    B.setInsertPoint(Bd);
    Value *Acc2 = B.createFMul(Acc, Dev->getArg(0));
    Value *I2 = B.createAdd(I, B.getInt32(1));
    I->addIncoming(I2, Bd);
    Acc->addIncoming(Acc2, Bd);
    B.createBr(H);
    B.setInsertPoint(X);
    B.createRet(Acc);
  }
  Function *K = M.createFunction("k", Ctx.getVoidTy(), {Ctx.getPtrTy()},
                                 {"out"}, FunctionKind::Kernel);
  B.setInsertPoint(K->createBlock("entry", Ctx.getVoidTy()));
  Value *R = B.createCall(Dev, {B.getDouble(2.0), B.getInt32(10)});
  B.createStore(R, K->getArg(0));
  B.createRet();

  EXPECT_TRUE(InlinerPass().run(*K));
  expectValid(*K);
  EXPECT_EQ(countKind(*K, ValueKind::Call), 0u);

  std::vector<uint8_t> Mem(8);
  IRInterpreter Interp(Mem);
  auto Res = Interp.run(*K, {0}, ThreadGeometry{});
  ASSERT_TRUE(Res.Ok) << Res.Error;
  double Out;
  std::memcpy(&Out, Mem.data(), 8);
  EXPECT_DOUBLE_EQ(Out, 1024.0);

  // And the whole pipeline folds 2^10 to a constant store.
  runO3(*K);
  EXPECT_EQ(countKind(*K, ValueKind::FMul), 0u) << printFunction(*K);
}

TEST(SimplifyCFGExtraTest, CollapsesBranchChains) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction("k", Ctx.getVoidTy(), {Ctx.getPtrTy()},
                                 {"p"}, FunctionKind::Kernel);
  // entry -> a -> b -> c -> d (straight chain of single-successor blocks).
  BasicBlock *Cur = F->createBlock("entry", Ctx.getVoidTy());
  B.setInsertPoint(Cur);
  for (int I = 0; I != 4; ++I) {
    BasicBlock *Next = F->createBlock("c" + std::to_string(I),
                                      Ctx.getVoidTy());
    B.createStore(B.getDouble(I), F->getArg(0));
    B.createBr(Next);
    B.setInsertPoint(Next);
    Cur = Next;
  }
  B.createRet();
  EXPECT_TRUE(SimplifyCFGPass().run(*F));
  EXPECT_EQ(F->size(), 1u);
  expectValid(*F);
}

TEST(InstCombineExtraTest, CanonicalizesConstantsRight) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction("k", Ctx.getVoidTy(),
                                 {Ctx.getI32Ty(), Ctx.getPtrTy()},
                                 {"a", "p"}, FunctionKind::Kernel);
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  // 5 + a  ->  a + 5 (constant to the RHS), enabling later matches.
  Value *V = B.createAdd(B.getInt32(5), F->getArg(0));
  B.createStore(V, F->getArg(1));
  B.createRet();
  InstCombinePass().run(*F);
  auto *Add = cast<BinaryInst>(&F->getEntryBlock().front());
  EXPECT_EQ(Add->getKind(), ValueKind::Add);
  EXPECT_TRUE(isa<ConstantInt>(Add->getRHS()));
  EXPECT_EQ(Add->getLHS(), F->getArg(0));
}

TEST(CSEExtraTest, DoesNotMergeAcrossSiblingBranches) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction("k", Ctx.getVoidTy(),
                                 {Ctx.getI1Ty(), Ctx.getI32Ty(),
                                  Ctx.getPtrTy()},
                                 {"c", "a", "p"}, FunctionKind::Kernel);
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *T = F->createBlock("t", Ctx.getVoidTy());
  BasicBlock *E = F->createBlock("e", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  B.createCondBr(F->getArg(0), T, E);
  B.setInsertPoint(T);
  B.createStore(B.createMul(F->getArg(1), F->getArg(1)), F->getArg(2));
  B.createRet();
  B.setInsertPoint(E);
  // The same expression in a sibling (not dominated) block must stay.
  B.createStore(B.createMul(F->getArg(1), F->getArg(1)), F->getArg(2));
  B.createRet();
  EXPECT_FALSE(CSEPass().run(*F));
  EXPECT_EQ(countKind(*F, ValueKind::Mul), 2u);
}

TEST(PassManagerTest, CollectsStatisticsAndReachesFixpoint) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildLoopSumKernel(M);
  specializeArguments(*F, {{2, 4}});

  PassManager PM(/*MaxIterations=*/4);
  PM.addPass(std::make_unique<InstCombinePass>());
  PM.addPass(std::make_unique<SimplifyCFGPass>());
  PM.addPass(std::make_unique<LoopUnrollPass>());
  PM.addPass(std::make_unique<DCEPass>());
  PM.run(*F);
  expectValid(*F);

  const std::vector<PassStatistics> &Stats = PM.statistics();
  ASSERT_EQ(Stats.size(), 4u);
  EXPECT_EQ(Stats[0].Name, "instcombine");
  EXPECT_EQ(Stats[2].Name, "loop-unroll");
  for (const PassStatistics &S : Stats) {
    EXPECT_GE(S.Invocations, 2u) << S.Name << ": fixpoint needs >= 2 runs";
    EXPECT_LE(S.ChangedInvocations, S.Invocations);
  }
  // The unroller fired exactly once (the loop exists only once).
  EXPECT_EQ(Stats[2].ChangedInvocations, 1u);
}

TEST(SpecializeExtraTest, PointerArgumentFoldsToConstantAddress) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildDaxpyKernel(M);
  // Fold the x pointer (index 1 zero-based) to a concrete device address.
  specializeArguments(*F, {{1, 0x1000}});
  bool FoundConstPtr = false;
  for (BasicBlock &BB : *F)
    for (Instruction &I : BB)
      for (Value *Op : I.operands())
        if (auto *CP = dyn_cast<ConstantPtr>(Op))
          FoundConstPtr |= CP->getAddress() == 0x1000;
  EXPECT_TRUE(FoundConstPtr);
  expectValid(*F);
}

/// Uniform-trip-count loop whose body synchronizes each iteration:
/// for (i = 0; i < n; ++i) { barrier; out[i] = i; } — the GPU invariant is
/// that every transformation preserves both the barriers and their count
/// per iteration.
Function *buildBarrierLoopKernel(Module &M) {
  Context &Ctx = M.getContext();
  IRBuilder B(Ctx);
  Function *F = M.createFunction("kbar", Ctx.getVoidTy(),
                                 {Ctx.getPtrTy(), Ctx.getI32Ty()},
                                 {"out", "n"}, FunctionKind::Kernel);
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *H = F->createBlock("header", Ctx.getVoidTy());
  BasicBlock *Body = F->createBlock("body", Ctx.getVoidTy());
  BasicBlock *Exit = F->createBlock("exit", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  B.createBr(H);
  B.setInsertPoint(H);
  PhiInst *I = B.createPhi(Ctx.getI32Ty(), "i");
  I->addIncoming(B.getInt32(0), Entry);
  B.createCondBr(B.createICmp(ICmpPred::SLT, I, F->getArg(1), "c"), Body,
                 Exit);
  B.setInsertPoint(Body);
  B.createBarrier();
  B.createStore(I, B.createGep(Ctx.getI32Ty(), F->getArg(0), I, "p"));
  Value *I2 = B.createAdd(I, B.getInt32(1), "i2");
  I->addIncoming(I2, Body);
  B.createBr(H);
  B.setInsertPoint(Exit);
  B.createRet();
  return F;
}

TEST(DCEBarrierTest, NeverDeletesBarriers) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction("k", Ctx.getVoidTy(), {Ctx.getPtrTy()},
                                 {"out"}, FunctionKind::Kernel);
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  B.createBarrier();
  // Dead arithmetic around the barrier: removable. The barrier produces no
  // value and has no uses, yet is a synchronization side effect.
  B.createAdd(B.getInt32(1), B.getInt32(2), "dead");
  B.createBarrier();
  B.createRet();

  EXPECT_TRUE(DCEPass().run(*F));
  EXPECT_EQ(countKind(*F, ValueKind::Add), 0u);
  EXPECT_EQ(countKind(*F, ValueKind::Barrier), 2u);
  expectValid(*F);
}

TEST(LICMBarrierTest, DoesNotMoveMemoryAccessesAcrossLoopBarrier) {
  Context Ctx;
  Module M(Ctx, "m");
  IRBuilder B(Ctx);
  Function *F = M.createFunction(
      "k", Ctx.getVoidTy(), {Ctx.getPtrTy(), Ctx.getI32Ty()}, {"p", "n"},
      FunctionKind::Kernel);
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *H = F->createBlock("h", Ctx.getVoidTy());
  BasicBlock *Body = F->createBlock("b", Ctx.getVoidTy());
  BasicBlock *Exit = F->createBlock("x", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  B.createBr(H);
  B.setInsertPoint(H);
  PhiInst *I = B.createPhi(Ctx.getI32Ty(), "i");
  I->addIncoming(B.getInt32(0), Entry);
  B.createCondBr(B.createICmp(ICmpPred::SLT, I, F->getArg(1)), Body, Exit);
  B.setInsertPoint(Body);
  // A loop-invariant load and a store bracketing a barrier. Another
  // thread's store becomes visible at the barrier, so neither access may
  // cross it (the load is non-speculatable; the store is effectful).
  Value *Ld = B.createLoad(Ctx.getI32Ty(), F->getArg(0), "ld");
  B.createBarrier();
  B.createStore(B.createAdd(Ld, I, "s"), F->getArg(0));
  Value *I2 = B.createAdd(I, B.getInt32(1));
  I->addIncoming(I2, Body);
  B.createBr(H);
  B.setInsertPoint(Exit);
  B.createRet();

  LICMPass().run(*F);
  expectValid(*F);
  bool SawLoad = false, SawBarrier = false, SawStore = false;
  // Order within the body must also be intact: load, barrier, store.
  for (Instruction &Inst : *Body) {
    if (Inst.getKind() == ValueKind::Load) {
      EXPECT_FALSE(SawBarrier) << "load moved across the barrier";
      SawLoad = true;
    }
    if (Inst.getKind() == ValueKind::Barrier) {
      EXPECT_TRUE(SawLoad);
      SawBarrier = true;
    }
    if (Inst.getKind() == ValueKind::Store) {
      EXPECT_TRUE(SawBarrier) << "store moved across the barrier";
      SawStore = true;
    }
  }
  EXPECT_TRUE(SawLoad && SawBarrier && SawStore)
      << "an access left the loop body";
}

TEST(LoopUnrollBarrierTest, UnrollPreservesBarrierCountPerIteration) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = buildBarrierLoopKernel(M);
  EXPECT_EQ(countKind(*F, ValueKind::Barrier), 1u);

  specializeArguments(*F, {{1, 4}}); // n = 4: the trip count is now exact
  O3Options Opts;
  Opts.VerifyEach = true;
  runO3(*F, Opts);
  expectValid(*F);
  // Fully unrolled: one barrier per original iteration, no more, no less.
  EXPECT_EQ(countKind(*F, ValueKind::Phi), 0u) << "loop did not unroll";
  EXPECT_EQ(countKind(*F, ValueKind::Barrier), 4u);
  EXPECT_EQ(countKind(*F, ValueKind::Store), 4u);
}

} // namespace
