//===- tiered_jit_test.cpp - tiered JIT differential battery ----------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Differential battery for the tiered JIT (PROTEUS_TIER=on):
//
//  * the Tier-0 pipeline (fast O3 preset + single-pass register allocation)
//    produces bit-identical results to the full Tier-1 pipeline over the
//    random-kernel corpus, on both simulated targets;
//  * a cold launch in tiered Sync mode is served by Tier-0 and later
//    promoted in place by the background Tier-1 compile, with outputs
//    identical before and after promotion;
//  * a persisted Tier-0 entry (a run that exited before promoting) is
//    served immediately on a fresh runtime and promoted to Final on disk;
//    with tiering off it is treated as a miss and fully recompiled;
//  * a stale pipeline fingerprint forces recompilation;
//  * a launch storm racing a hot-swap promotion (Fallback + tier on) stays
//    correct and converges to the promoted binary. Designed to also run
//    under -DPROTEUS_SANITIZE=thread (tools/ci_tsan.sh).
//
// gtest assertions are not thread-safe: storm threads only record results;
// all checking happens on the main thread after join.
//
//===----------------------------------------------------------------------===//

#include "RandomKernel.h"
#include "TestUtil.h"

#include "bitcode/Bitcode.h"
#include "codegen/Compiler.h"
#include "codegen/ISel.h"
#include "gpu/Runtime.h"
#include "ir/Context.h"
#include "ir/OpSemantics.h"
#include "jit/Program.h"
#include "support/FileSystem.h"
#include "transforms/O3Pipeline.h"
#include "transforms/SpecializeArgs.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace pir;
using namespace proteus;
using namespace proteus::gpu;
using namespace proteus_test;

namespace {

struct TempDir {
  std::string Path;
  TempDir() : Path(fs::makeTempDirectory("proteus-tier")) {}
  ~TempDir() { fs::removeAllFiles(Path); }
};

constexpr uint32_t N = 32; // elements / threads per kernel

std::vector<uint8_t> freshMemory(uint64_t Seed) {
  std::vector<uint8_t> Mem(2 * N * sizeof(double));
  auto *In = reinterpret_cast<double *>(Mem.data());
  Rng R(Seed ^ 0x7157);
  for (uint32_t I = 0; I != N; ++I)
    In[I] = R.unit() * 8.0 - 4.0;
  return Mem;
}

std::vector<uint64_t> argsFor(uint64_t Seed) {
  Rng R(Seed ^ 0x71e5);
  return {0, N * sizeof(double), N, sem::boxF64(R.unit() * 3.0),
          static_cast<uint64_t>(R.below(1000))};
}

/// Specializes, optimizes and compiles one random kernel with either the
/// Tier-0 flavor (fast preset, fast register allocation) or the full
/// pipeline, then runs it on a fresh device and returns the memory image.
std::vector<uint8_t> compileAndRun(uint64_t Seed, GpuArch Arch,
                                   unsigned Budget, bool Tier0Flavor) {
  std::vector<uint64_t> Args = argsFor(Seed);
  Context Ctx;
  auto M = buildRandomKernel(Ctx, Seed);
  Function *F = M->getFunction("rk");

  specializeArguments(*F, {{3, Args[3]}, {4, Args[4]}});
  specializeLaunchBounds(*F, N);
  O3Options Opts;
  Opts.VerifyEach = true;
  if (Tier0Flavor)
    Opts.Preset = O3Preset::Fast;
  runO3(*M, Opts);
  expectValid(*M);

  mcode::MachineFunction MF = selectInstructions(*F);
  RegAllocOptions RA;
  RA.Fast = Tier0Flavor;
  allocateRegisters(MF, Budget, RA);
  std::vector<uint8_t> Obj = writeObject(MF, Arch);

  Device Dev(getTarget(Arch), 1 << 20);
  std::vector<uint8_t> Init = freshMemory(Seed);
  std::copy(Init.begin(), Init.end(), Dev.memory().begin());
  LoadedKernel *K = nullptr;
  std::string Err;
  EXPECT_EQ(gpuModuleLoad(Dev, &K, Obj, &Err), GpuError::Success) << Err;
  std::vector<KernelArg> KArgs;
  for (uint64_t A : Args)
    KArgs.push_back(KernelArg{A});
  EXPECT_EQ(gpuLaunchKernel(Dev, *K, Dim3{1, 1, 1}, Dim3{N, 1, 1}, KArgs,
                            &Err),
            GpuError::Success)
      << Err << " (seed " << Seed << ")";
  return std::vector<uint8_t>(Dev.memory().begin(),
                              Dev.memory().begin() +
                                  static_cast<long>(Init.size()));
}

class TieredPipelineTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TieredPipelineTest, FastPresetMatchesFullPipeline) {
  uint64_t Seed = GetParam();
  // Interpreter reference on the unoptimized kernel.
  std::vector<uint64_t> Args = argsFor(Seed);
  Context Ctx;
  auto M = buildRandomKernel(Ctx, Seed);
  std::vector<uint8_t> Ref = freshMemory(Seed);
  interpretLaunch(*M->getFunction("rk"), Args, Ref, 1, N);

  for (GpuArch Arch : {GpuArch::AmdGcnSim, GpuArch::NvPtxSim}) {
    // Budget 9 forces spilling through the fast allocator's conservative
    // whole-range intervals; 64 is the comfortable case.
    for (unsigned Budget : {9u, 64u}) {
      std::vector<uint8_t> Full = compileAndRun(Seed, Arch, Budget, false);
      std::vector<uint8_t> Fast = compileAndRun(Seed, Arch, Budget, true);
      EXPECT_EQ(Full, Ref) << "full pipeline diverged, seed " << Seed
                           << " arch " << gpuArchName(Arch) << " budget "
                           << Budget;
      EXPECT_EQ(Fast, Ref) << "Tier-0 pipeline diverged, seed " << Seed
                           << " arch " << gpuArchName(Arch) << " budget "
                           << Budget;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TieredPipelineTest,
                         ::testing::Range<uint64_t>(1, 25));

// ---------------------------------------------------------------------------
// Runtime-level battery: full JIT runtime with PROTEUS_TIER semantics.
// ---------------------------------------------------------------------------

constexpr unsigned NumKernels = 3;
constexpr unsigned NumSpecs = 2;
constexpr uint32_t BufN = 64;

struct WorkItem {
  std::string Symbol;
  double Sf;
  int32_t Si;
  unsigned OutIndex;
};

std::vector<WorkItem> makeWorkItems() {
  std::vector<WorkItem> Items;
  for (unsigned K = 0; K != NumKernels; ++K)
    for (unsigned S = 0; S != NumSpecs; ++S)
      Items.push_back(WorkItem{"rk" + std::to_string(K), 0.75 + 0.5 * S,
                               static_cast<int32_t>(2 + S),
                               K * NumSpecs + S});
  return Items;
}

std::unique_ptr<Module> buildProgram(Context &Ctx) {
  auto M = std::make_unique<Module>(Ctx, "tier_app");
  for (unsigned K = 0; K != NumKernels; ++K)
    buildRandomKernelInto(*M, /*Seed=*/4200 + 31 * K,
                          "rk" + std::to_string(K));
  return M;
}

struct Harness {
  Device Dev;
  JitRuntime Jit;
  LoadedProgram LP;
  DevicePtr In = 0;
  std::vector<DevicePtr> Outs;

  Harness(const CompiledProgram &Prog, GpuArch Arch, const JitConfig &JC)
      : Dev(getTarget(Arch), 1ull << 24), Jit(Dev, Prog.ModuleId, JC),
        LP(Dev, Prog, &Jit) {
    EXPECT_TRUE(LP.ok()) << LP.error();
    EXPECT_EQ(gpuMalloc(Dev, &In, BufN * 8), GpuError::Success);
    std::vector<double> HIn(BufN);
    for (uint32_t I = 0; I != BufN; ++I)
      HIn[I] = 0.125 * I - 2.0;
    gpuMemcpyHtoD(Dev, In, HIn.data(), BufN * 8);
    Outs.resize(NumKernels * NumSpecs);
    for (DevicePtr &P : Outs)
      EXPECT_EQ(gpuMalloc(Dev, &P, BufN * 8), GpuError::Success);
  }

  GpuError launch(const WorkItem &W, std::string *Err) {
    std::vector<KernelArg> Args = {{In},
                                   {Outs[W.OutIndex]},
                                   {BufN},
                                   {sem::boxF64(W.Sf)},
                                   {static_cast<uint64_t>(
                                       static_cast<uint32_t>(W.Si))}};
    return LP.launch(W.Symbol, Dim3{2, 1, 1}, Dim3{32, 1, 1}, Args, Err);
  }

  std::vector<uint8_t> readOut(unsigned Index) {
    std::vector<uint8_t> Bytes(BufN * 8);
    // A background Tier-1 promotion may be charging device time right now;
    // device timelines are serialized under the runtime's per-device lock.
    Jit.withDeviceLocked(0, [&](Device &D) {
      gpuMemcpyDtoH(D, Bytes.data(), Outs[Index], BufN * 8);
    });
    return Bytes;
  }
};

std::vector<std::vector<uint8_t>> referenceResults(const CompiledProgram &P,
                                                   GpuArch Arch) {
  JitConfig JC;
  JC.UsePersistentCache = false;
  Harness H(P, Arch, JC);
  std::vector<std::vector<uint8_t>> Out;
  for (const WorkItem &W : makeWorkItems()) {
    std::string Err;
    EXPECT_EQ(H.launch(W, &Err), GpuError::Success) << Err;
  }
  for (unsigned I = 0; I != NumKernels * NumSpecs; ++I)
    Out.push_back(H.readOut(I));
  return Out;
}

CompiledProgram compileProgram(Module &M, GpuArch Arch) {
  AotOptions AO;
  AO.Arch = Arch;
  AO.EnableProteusExtensions = true;
  return aotCompile(M, AO);
}

TEST(TieredJitTest, SyncColdLaunchServesTier0ThenPromotes) {
  Context Ctx;
  std::unique_ptr<Module> M = buildProgram(Ctx);
  CompiledProgram Prog = compileProgram(*M, GpuArch::AmdGcnSim);
  std::vector<std::vector<uint8_t>> Expected =
      referenceResults(Prog, GpuArch::AmdGcnSim);

  JitConfig JC;
  JC.UsePersistentCache = false;
  JC.Tier = true;
  Harness H(Prog, GpuArch::AmdGcnSim, JC);

  const std::vector<WorkItem> Items = makeWorkItems();
  // Cold pass: every first launch compiles Tier-0 inline; output read
  // right after must already match the full-pipeline reference.
  for (unsigned I = 0; I != Items.size(); ++I) {
    std::string Err;
    ASSERT_EQ(H.launch(Items[I], &Err), GpuError::Success) << Err;
    EXPECT_EQ(H.readOut(Items[I].OutIndex), Expected[I])
        << "cold (Tier-0 era) output " << I << " diverged";
  }
  JitRuntimeStats Cold = H.Jit.stats();
  EXPECT_EQ(Cold.Tier0Compiles, uint64_t(Items.size()));
  EXPECT_EQ(Cold.AsyncCompiles, 0u) << "Sync launches never hit the pool";
  EXPECT_GT(Cold.Tier0VisibleSeconds, 0.0);

  // Promotion: every specialization gets exactly one background Tier-1
  // compile that hot-swaps the loaded kernel and leaves outputs unchanged.
  H.Jit.drain();
  JitRuntimeStats Promoted = H.Jit.stats();
  EXPECT_EQ(Promoted.Compilations, uint64_t(Items.size()));
  EXPECT_EQ(Promoted.Tier1Promotions, uint64_t(Items.size()));
  for (unsigned I = 0; I != Items.size(); ++I) {
    std::string Err;
    ASSERT_EQ(H.launch(Items[I], &Err), GpuError::Success) << Err;
    EXPECT_EQ(H.readOut(Items[I].OutIndex), Expected[I])
        << "promoted output " << I << " diverged";
  }
  // Steady state: no further compiles of either tier.
  JitRuntimeStats Steady = H.Jit.stats();
  EXPECT_EQ(Steady.Tier0Compiles, Promoted.Tier0Compiles);
  EXPECT_EQ(Steady.Compilations, Promoted.Compilations);
}

TEST(TieredJitTest, PersistedTier0IsServedAndPromotedInPlace) {
  Context Ctx;
  std::unique_ptr<Module> M = buildProgram(Ctx);
  CompiledProgram Prog = compileProgram(*M, GpuArch::AmdGcnSim);
  const WorkItem W = makeWorkItems()[0];

  // Reconstruct the specialization key exactly as buildKey does, to place
  // an entry where the runtime will look (also cross-checks the key
  // derivation itself below).
  SpecializationKey Key;
  Key.ModuleId = Prog.ModuleId;
  Key.KernelSymbol = W.Symbol;
  Key.Arch = GpuArch::AmdGcnSim;
  Key.FoldedArgs = {{3, sem::boxF64(W.Sf)},
                    {4, static_cast<uint64_t>(static_cast<uint32_t>(W.Si))}};
  Key.LaunchBoundsThreads = 32;
  const uint64_t Hash = computeSpecializationHash(Key);

  // Obtain a real (loadable) object for this specialization and keep the
  // reference output.
  std::vector<uint8_t> Object;
  std::vector<uint8_t> Expected;
  {
    JitConfig JC;
    JC.UsePersistentCache = false;
    Harness H(Prog, GpuArch::AmdGcnSim, JC);
    std::string Err;
    ASSERT_EQ(H.launch(W, &Err), GpuError::Success) << Err;
    Expected = H.readOut(W.OutIndex);
    auto Hit = H.Jit.cache().lookup(Hash);
    ASSERT_TRUE(Hit.has_value())
        << "reconstructed key does not match the runtime's";
    Object = *Hit;
  }

  // Simulate a run that persisted Tier-0 and crashed before promoting.
  TempDir Tmp;
  {
    CodeCache Seed(false, true, Tmp.Path);
    Seed.insert(Hash, Object, CodeTier::Tier0,
                jitPipelineFingerprint(CodeTier::Tier0));
  }

  // Fresh tiered runtime: the Tier-0 entry is served without compiling
  // anything on the launch path, then promoted to Final in place.
  {
    JitConfig JC;
    JC.UseMemoryCache = true;
    JC.CacheDir = Tmp.Path;
    JC.Tier = true;
    Harness H(Prog, GpuArch::AmdGcnSim, JC);
    std::string Err;
    ASSERT_EQ(H.launch(W, &Err), GpuError::Success) << Err;
    EXPECT_EQ(H.readOut(W.OutIndex), Expected);
    EXPECT_EQ(H.Jit.stats().Tier0Compiles, 0u)
        << "persisted Tier-0 must be served, not recompiled";
    H.Jit.drain();
    JitRuntimeStats S = H.Jit.stats();
    EXPECT_EQ(S.Compilations, 1u);
    EXPECT_EQ(S.Tier1Promotions, 1u);
    ASSERT_EQ(H.launch(W, &Err), GpuError::Success) << Err;
    EXPECT_EQ(H.readOut(W.OutIndex), Expected)
        << "promotion changed results";
  }

  // The on-disk entry is now Final with the Tier-1 fingerprint.
  CodeCache Check(false, true, Tmp.Path);
  auto Entry = Check.lookupEntry(Hash);
  ASSERT_TRUE(Entry.has_value());
  EXPECT_EQ(Entry->Tier, CodeTier::Final);
  EXPECT_EQ(Entry->PipelineFingerprint,
            jitPipelineFingerprint(CodeTier::Final));
}

TEST(TieredJitTest, TierOffTreatsPersistedTier0AsMiss) {
  Context Ctx;
  std::unique_ptr<Module> M = buildProgram(Ctx);
  CompiledProgram Prog = compileProgram(*M, GpuArch::AmdGcnSim);
  const WorkItem W = makeWorkItems()[0];

  SpecializationKey Key;
  Key.ModuleId = Prog.ModuleId;
  Key.KernelSymbol = W.Symbol;
  Key.Arch = GpuArch::AmdGcnSim;
  Key.FoldedArgs = {{3, sem::boxF64(W.Sf)},
                    {4, static_cast<uint64_t>(static_cast<uint32_t>(W.Si))}};
  Key.LaunchBoundsThreads = 32;
  const uint64_t Hash = computeSpecializationHash(Key);

  std::vector<uint8_t> Object;
  {
    JitConfig JC;
    JC.UsePersistentCache = false;
    Harness H(Prog, GpuArch::AmdGcnSim, JC);
    std::string Err;
    ASSERT_EQ(H.launch(W, &Err), GpuError::Success) << Err;
    Object = *H.Jit.cache().lookup(Hash);
  }

  TempDir Tmp;
  {
    CodeCache Seed(false, true, Tmp.Path);
    Seed.insert(Hash, Object, CodeTier::Tier0,
                jitPipelineFingerprint(CodeTier::Tier0));
  }

  // Tiering off: a Tier-0 baseline is not acceptable as a final artifact —
  // the launch recompiles the full pipeline and overwrites the entry.
  JitConfig JC;
  JC.CacheDir = Tmp.Path;
  Harness H(Prog, GpuArch::AmdGcnSim, JC);
  std::string Err;
  ASSERT_EQ(H.launch(W, &Err), GpuError::Success) << Err;
  EXPECT_EQ(H.Jit.stats().Compilations, 1u);
  CodeCache Check(false, true, Tmp.Path);
  auto Entry = Check.lookupEntry(Hash);
  ASSERT_TRUE(Entry.has_value());
  EXPECT_EQ(Entry->Tier, CodeTier::Final);
}

TEST(TieredJitTest, StalePipelineFingerprintForcesRecompile) {
  Context Ctx;
  std::unique_ptr<Module> M = buildProgram(Ctx);
  CompiledProgram Prog = compileProgram(*M, GpuArch::AmdGcnSim);
  const WorkItem W = makeWorkItems()[0];

  SpecializationKey Key;
  Key.ModuleId = Prog.ModuleId;
  Key.KernelSymbol = W.Symbol;
  Key.Arch = GpuArch::AmdGcnSim;
  Key.FoldedArgs = {{3, sem::boxF64(W.Sf)},
                    {4, static_cast<uint64_t>(static_cast<uint32_t>(W.Si))}};
  Key.LaunchBoundsThreads = 32;
  const uint64_t Hash = computeSpecializationHash(Key);

  TempDir Tmp;
  {
    // A Final-tagged entry from a hypothetical older pipeline: wrong
    // fingerprint, garbage payload — it must never be served.
    CodeCache Seed(false, true, Tmp.Path);
    Seed.insert(Hash, std::vector<uint8_t>(64, 0xEE), CodeTier::Final,
                /*PipelineFingerprint=*/0xDEAD);
  }

  JitConfig JC;
  JC.CacheDir = Tmp.Path;
  Harness H(Prog, GpuArch::AmdGcnSim, JC);
  std::string Err;
  ASSERT_EQ(H.launch(W, &Err), GpuError::Success) << Err;
  EXPECT_EQ(H.Jit.stats().Compilations, 1u)
      << "stale-fingerprint entry must be recompiled, not served";
}

TEST(TieredJitTest, HotSwapLaunchStormDuringPromotion) {
  Context Ctx;
  std::unique_ptr<Module> M = buildProgram(Ctx);
  CompiledProgram Prog = compileProgram(*M, GpuArch::AmdGcnSim);
  std::vector<std::vector<uint8_t>> Expected =
      referenceResults(Prog, GpuArch::AmdGcnSim);

  // Fallback + tiering: launches race the generic binary, the Tier-0
  // compile and the Tier-1 hot-swap all at once.
  JitConfig JC;
  JC.UsePersistentCache = false;
  JC.Tier = true;
  JC.Async = JitConfig::AsyncMode::Fallback;
  JC.AsyncWorkers = 4;
  Harness H(Prog, GpuArch::AmdGcnSim, JC);

  constexpr unsigned NumThreads = 8;
  constexpr unsigned Repeats = 6;
  const std::vector<WorkItem> Items = makeWorkItems();
  std::atomic<unsigned> Ready{0};
  std::atomic<bool> Go{false};
  std::vector<std::string> ThreadErrors(NumThreads);

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      ++Ready;
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      for (unsigned R = 0; R != Repeats; ++R)
        for (unsigned I = 0; I != Items.size(); ++I) {
          const WorkItem &W = Items[(I + T * 5 + R) % Items.size()];
          std::string Err;
          if (H.launch(W, &Err) != GpuError::Success) {
            ThreadErrors[T] = "@" + W.Symbol + ": " + Err;
            return;
          }
        }
    });

  while (Ready.load() != NumThreads)
    std::this_thread::yield();
  Go.store(true, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();
  for (unsigned T = 0; T != NumThreads; ++T)
    EXPECT_TRUE(ThreadErrors[T].empty())
        << "thread " << T << " failed: " << ThreadErrors[T];

  H.Jit.drain();
  JitRuntimeStats S = H.Jit.stats();
  EXPECT_EQ(S.Tier0Compiles, uint64_t(Items.size()))
      << "one Tier-0 compile per distinct specialization";
  EXPECT_EQ(S.Compilations, uint64_t(Items.size()))
      << "one Tier-1 promotion compile per distinct specialization";
  EXPECT_EQ(S.Tier1Promotions, uint64_t(Items.size()));

  // Post-promotion launches must produce the reference results and take
  // the fast path (no new fallbacks, no new compiles).
  for (unsigned I = 0; I != Items.size(); ++I) {
    std::string Err;
    ASSERT_EQ(H.launch(Items[I], &Err), GpuError::Success) << Err;
    EXPECT_EQ(H.readOut(Items[I].OutIndex), Expected[I])
        << "output " << I << " diverged after the storm";
  }
  JitRuntimeStats S2 = H.Jit.stats();
  EXPECT_EQ(S2.FallbackLaunches, S.FallbackLaunches);
  EXPECT_EQ(S2.Compilations, S.Compilations);
  EXPECT_EQ(S2.Tier0Compiles, S.Tier0Compiles);
}

TEST(TieredJitTest, ModuleIndexPrunesUnreachableFunctions) {
  // One bitcode blob holding two kernels and a shared helper, registered
  // for both kernels (as a multi-kernel embedding would): materializing a
  // specialization of one kernel must clone only its call closure.
  Context Ctx;
  Module M(Ctx, "multi");
  IRBuilder B(Ctx);
  Function *Helper = M.createFunction("scale3", Ctx.getF64Ty(),
                                      {Ctx.getF64Ty()}, {"x"},
                                      FunctionKind::Device);
  B.setInsertPoint(Helper->createBlock("entry", Ctx.getVoidTy()));
  B.createRet(B.createFMul(Helper->getArg(0), B.getDouble(3.0)));

  Function *KA = M.createFunction("ka", Ctx.getVoidTy(), {Ctx.getPtrTy()},
                                  {"out"}, FunctionKind::Kernel);
  KA->setJitAnnotation(JitAnnotation{{}});
  B.setInsertPoint(KA->createBlock("entry", Ctx.getVoidTy()));
  B.createStore(B.createCall(Helper, {B.getDouble(2.0)}), KA->getArg(0));
  B.createRet();

  Function *KB = M.createFunction("kb", Ctx.getVoidTy(), {Ctx.getPtrTy()},
                                  {"out"}, FunctionKind::Kernel);
  KB->setJitAnnotation(JitAnnotation{{}});
  B.setInsertPoint(KB->createBlock("entry", Ctx.getVoidTy()));
  B.createStore(B.getDouble(7.5), KB->getArg(0));
  B.createRet();

  std::vector<uint8_t> BC = writeBitcode(M);

  Device Dev(getAmdGcnSimTarget(), 1 << 20);
  JitConfig JC;
  JC.UsePersistentCache = false;
  JitRuntime Jit(Dev, /*ModuleId=*/0x7157, JC);
  Jit.registerKernel(JitKernelInfo{"ka", {}, BC, 0, 0, {}});
  Jit.registerKernel(JitKernelInfo{"kb", {}, BC, 0, 0, {}});

  DevicePtr Out = 0;
  ASSERT_EQ(gpuMalloc(Dev, &Out, 8), GpuError::Success);
  std::string Err;

  // ka's closure is {scale3, ka}: of the 3 functions in the blob, 1 (kb)
  // is pruned.
  ASSERT_EQ(Jit.launchKernel("ka", Dim3{1, 1, 1}, Dim3{1, 1, 1}, {{Out}},
                             &Err),
            GpuError::Success)
      << Err;
  double V = 0;
  gpuMemcpyDtoH(Dev, &V, Out, 8);
  EXPECT_DOUBLE_EQ(V, 6.0);
  EXPECT_EQ(Jit.stats().PrunedFunctions, 1u);

  // kb's closure is {kb} alone: 2 of 3 functions pruned; the counter
  // accumulates.
  ASSERT_EQ(Jit.launchKernel("kb", Dim3{1, 1, 1}, Dim3{1, 1, 1}, {{Out}},
                             &Err),
            GpuError::Success)
      << Err;
  gpuMemcpyDtoH(Dev, &V, Out, 8);
  EXPECT_DOUBLE_EQ(V, 7.5);
  EXPECT_EQ(Jit.stats().PrunedFunctions, 3u);
}

TEST(TieredJitTest, TierEnvVarParsesAndRejectsGarbage) {
  EXPECT_STREQ(tierModeName(true), "on");
  EXPECT_STREQ(tierModeName(false), "off");

  setenv("PROTEUS_TIER", "on", 1);
  std::vector<std::string> Warnings;
  EXPECT_TRUE(JitConfig::fromEnvironment(&Warnings).Tier);
  EXPECT_TRUE(Warnings.empty());

  setenv("PROTEUS_TIER", "off", 1);
  EXPECT_FALSE(JitConfig::fromEnvironment(&Warnings).Tier);
  EXPECT_TRUE(Warnings.empty());

  setenv("PROTEUS_TIER", "banana", 1);
  JitConfig C = JitConfig::fromEnvironment(&Warnings);
  EXPECT_FALSE(C.Tier) << "invalid value must keep the default";
  ASSERT_EQ(Warnings.size(), 1u);
  EXPECT_NE(Warnings[0].find("PROTEUS_TIER"), std::string::npos);
  unsetenv("PROTEUS_TIER");
}

} // namespace
