//===- proteus_replay.cpp - capture-artifact replay CLI -------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Loads capture artifacts (.pcap, produced under PROTEUS_CAPTURE=on), re-JITs
// each one standalone through the same JitRuntime pipeline, executes it on a
// fresh simulated device, and diffs the output memory and specialization
// hash against the values recorded at capture time:
//
//   proteus-replay [options] artifact.pcap [more.pcap ...]
//
// Options:
//   --info       print artifact metadata without replaying
//   --dump-pir   print the artifact's pruned kernel module as textual PIR
//                (pipe into pir-lint for sanitizer checks) without replaying
//   --cache-dir=DIR  use DIR as the replay runtime's persistent code cache
//                (a second replay against the same DIR compiles nothing)
//   --publish    compile each artifact's specialization through the
//                configured cache backend (requires --cache-dir; honors the
//                PROTEUS_CACHE_* remote/fleet settings) so a fresh fleet
//                starts warm — prints a PUBLISHED line per artifact
//   --device-arch=ARCH  replay on ARCH (amdgcn-sim|nvptx-sim) instead of
//                the recorded architecture, exercising the cross-arch
//                retarget path; the differential output check still applies
//                in full, but the specialization hash keys the overridden
//                arch, so hash equality is only enforced when ARCH matches
//                the recording
//
// The replay honors the usual PROTEUS_* environment overrides (PROTEUS_TIER,
// PROTEUS_ANALYZE, PROTEUS_VERIFY_EACH, ...), so a captured workload can be
// re-checked under any pipeline configuration. The artifact's own
// specialization knobs (RCF / launch bounds) always win — they are inputs of
// the recorded hash.
//
// Exit status: 0 when every artifact replays byte-identical with a matching
// hash, 1 on any mismatch or replay failure, 2 on usage errors.
//
//===----------------------------------------------------------------------===//

#include "bitcode/ModuleIndex.h"
#include "codegen/Target.h"
#include "ir/Context.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "jit/Replay.h"
#include "support/Hashing.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace proteus;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: proteus-replay [--info] [--dump-pir] "
               "[--cache-dir=DIR] [--publish] [--device-arch=ARCH] "
               "artifact.pcap [more.pcap ...]\n");
  return 2;
}

/// Maps an --device-arch operand to the simulated architecture it names.
bool parseArch(const std::string &Name, GpuArch *Out) {
  for (GpuArch A : {GpuArch::AmdGcnSim, GpuArch::NvPtxSim}) {
    if (Name == gpuArchName(A)) {
      *Out = A;
      return true;
    }
  }
  return false;
}

void printInfo(const std::string &Path, const capture::CaptureArtifact &A) {
  std::printf("%s:\n", Path.c_str());
  std::printf("  kernel        @%s\n", A.KernelSymbol.c_str());
  std::printf("  arch          %s\n", gpuArchName(A.Arch));
  std::printf("  module id     %s\n", hashToHex(A.ModuleId).c_str());
  std::printf("  grid          %ux%ux%u  block %ux%ux%u\n", A.Grid.X,
              A.Grid.Y, A.Grid.Z, A.Block.X, A.Block.Y, A.Block.Z);
  std::printf("  args          %zu (%zu jit-annotated)\n", A.ArgBits.size(),
              A.AnnotatedArgs.size());
  std::printf("  spec knobs    rcf=%s lb=%s tier=%s\n",
              A.EnableRCF ? "on" : "off", A.EnableLaunchBounds ? "on" : "off",
              A.TierMode ? "on" : "off");
  std::printf("  spec hash     %s\n", hashToHex(A.SpecializationHash).c_str());
  std::printf("  pipeline fp   %s\n",
              hashToHex(A.PipelineFingerprint).c_str());
  std::printf("  device memory %llu bytes\n",
              static_cast<unsigned long long>(A.DeviceMemoryBytes));
  std::printf("  bitcode       %zu bytes\n", A.Bitcode.size());
  std::printf("  globals       %zu\n", A.Globals.size());
  uint64_t RegionBytes = 0;
  for (const capture::MemoryRegion &R : A.Regions)
    RegionBytes += R.PreBytes.size();
  std::printf("  regions       %zu (%llu bytes each way)\n", A.Regions.size(),
              static_cast<unsigned long long>(RegionBytes));
}

/// Rebuilds the pruned kernel module from the artifact's bitcode and prints
/// it as parseable PIR text (the pir-lint input format).
bool dumpPir(const std::string &Path, const capture::CaptureArtifact &A) {
  std::string Error;
  std::shared_ptr<const KernelModuleIndex> Index =
      KernelModuleIndex::create(A.Bitcode, Error);
  if (!Index) {
    std::fprintf(stderr, "%s: corrupt artifact bitcode: %s\n", Path.c_str(),
                 Error.c_str());
    return false;
  }
  pir::Context Ctx;
  std::unique_ptr<pir::Module> M =
      Index->materialize(Ctx, A.KernelSymbol, nullptr);
  if (!M) {
    std::fprintf(stderr, "%s: artifact bitcode lacks kernel @%s\n",
                 Path.c_str(), A.KernelSymbol.c_str());
    return false;
  }
  std::fputs(pir::printModule(*M).c_str(), stdout);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Info = false;
  bool DumpPir = false;
  bool Publish = false;
  std::string CacheDir;
  std::optional<GpuArch> ArchOverride;
  std::vector<std::string> Files;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--info")
      Info = true;
    else if (Arg == "--dump-pir")
      DumpPir = true;
    else if (Arg == "--publish")
      Publish = true;
    else if (Arg.rfind("--cache-dir=", 0) == 0)
      CacheDir = Arg.substr(12);
    else if (Arg.rfind("--device-arch=", 0) == 0) {
      GpuArch A;
      if (!parseArch(Arg.substr(14), &A)) {
        std::fprintf(stderr,
                     "proteus-replay: unknown architecture '%s' "
                     "(expected amdgcn-sim|nvptx-sim)\n",
                     Arg.substr(14).c_str());
        return 2;
      }
      ArchOverride = A;
    } else if (!Arg.empty() && Arg[0] == '-')
      return usage();
    else
      Files.push_back(Arg);
  }
  if (Files.empty())
    return usage();
  if (Publish && CacheDir.empty()) {
    std::fprintf(stderr, "proteus-replay: --publish requires --cache-dir\n");
    return 2;
  }

  ReplayOptions Opts;
  Opts.Jit = JitConfig::fromEnvironment();
  Opts.CacheDir = CacheDir;
  Opts.ArchOverride = ArchOverride;

  size_t Failures = 0;
  for (const std::string &Path : Files) {
    std::string Error;
    std::optional<capture::CaptureArtifact> A =
        capture::readArtifactFile(Path, &Error);
    if (!A) {
      std::fprintf(stderr, "proteus-replay: %s: %s\n", Path.c_str(),
                   Error.c_str());
      ++Failures;
      continue;
    }
    if (Info) {
      printInfo(Path, *A);
      continue;
    }
    if (DumpPir) {
      if (!dumpPir(Path, *A))
        ++Failures;
      continue;
    }
    ReplayResult R = replayArtifact(*A, Opts);
    const GpuArch ReplayArch = ArchOverride.value_or(A->Arch);
    // Retargeting to a different arch re-keys the specialization hash, so
    // hash equality is only enforced when the replay arch is the recorded
    // one; the byte-exact differential check always applies.
    const bool Passed = ReplayArch == A->Arch ? R.passed()
                                              : R.Ok && R.OutputMatch;
    if (Passed) {
      std::printf("%s: OK @%s on %s (%zu region(s) byte-identical, hash %s, "
                  "%llu compile(s))\n",
                  Path.c_str(), A->KernelSymbol.c_str(),
                  gpuArchName(ReplayArch), A->Regions.size(),
                  hashToHex(R.ReplayedHash).c_str(),
                  static_cast<unsigned long long>(R.CompilationsUsed));
      if (Publish)
        std::printf("%s: PUBLISHED @%s for %s (%llu compile(s) into cache)\n",
                    Path.c_str(), A->KernelSymbol.c_str(),
                    gpuArchName(ReplayArch),
                    static_cast<unsigned long long>(R.CompilationsUsed));
      continue;
    }
    ++Failures;
    if (!R.Ok) {
      std::fprintf(stderr, "%s: FAILED: %s\n", Path.c_str(),
                   R.Error.c_str());
      continue;
    }
    if (!R.HashMatch && ReplayArch == A->Arch)
      std::fprintf(stderr,
                   "%s: HASH MISMATCH: captured %s, replayed %s\n",
                   Path.c_str(), hashToHex(R.RecordedHash).c_str(),
                   hashToHex(R.ReplayedHash).c_str());
    if (!R.OutputMatch)
      std::fprintf(stderr, "%s: OUTPUT MISMATCH in %u region(s): %s\n",
                   Path.c_str(), R.MismatchedRegions,
                   R.FirstMismatch.c_str());
  }
  if (Failures) {
    std::fprintf(stderr, "proteus-replay: %zu of %zu artifact(s) failed\n",
                 Failures, Files.size());
    return 1;
  }
  return 0;
}
