# Replays every checked-in capture artifact (tests/corpus/*.pcap) with
# proteus-replay — each must re-execute byte-identical with a matching
# specialization hash — and re-lints each artifact's pruned kernel bitcode
# against its .expect file (the exact sanitizer findings recorded when the
# corpus was generated; an empty .expect means lint-clean). Each .expect
# also pins the kernel's roofline bottleneck class per simulated target on
# a line of the form
#
#   roofline: amdgcn-sim=<Class> nvptx-sim=<Class>
#
# which is checked against pir-roofline's verdict on the dumped PIR — the
# classifier's golden regression set. Invoked by the replay_corpus_check
# ctest (see tools/CMakeLists.txt) with -DREPLAY=..., -DLINT=...,
# -DROOFLINE=..., -DCORPUS_DIR=..., -DWORK_DIR=...

file(GLOB Artifacts "${CORPUS_DIR}/*.pcap")
if(NOT Artifacts)
  message(FATAL_ERROR "no capture artifacts found in ${CORPUS_DIR}")
endif()
list(SORT Artifacts)
file(MAKE_DIRECTORY "${WORK_DIR}")

foreach(Artifact IN LISTS Artifacts)
  get_filename_component(Base "${Artifact}" NAME_WE)

  # 1. Differential replay: byte-identical output, identical spec hash.
  execute_process(
    COMMAND "${REPLAY}" "${Artifact}"
    RESULT_VARIABLE ReplayResult
    OUTPUT_VARIABLE ReplayOut
    ERROR_VARIABLE ReplayErr)
  if(NOT ReplayResult EQUAL 0)
    message(FATAL_ERROR
      "replay of ${Base}.pcap failed (rc=${ReplayResult}):\n"
      "${ReplayOut}\n${ReplayErr}")
  endif()
  message(STATUS "${ReplayOut}")

  # 2. Sanitizer expectations: dump the artifact's pruned module as PIR,
  # lint it, and require the exact recorded finding kinds and counts.
  set(ExpectFile "${CORPUS_DIR}/${Base}.expect")
  if(NOT EXISTS "${ExpectFile}")
    message(FATAL_ERROR "missing ${Base}.expect next to ${Base}.pcap")
  endif()

  set(PirFile "${WORK_DIR}/${Base}.pir")
  execute_process(
    COMMAND "${REPLAY}" --dump-pir "${Artifact}"
    RESULT_VARIABLE DumpResult
    OUTPUT_FILE "${PirFile}"
    ERROR_VARIABLE DumpErr)
  if(NOT DumpResult EQUAL 0)
    message(FATAL_ERROR
      "--dump-pir of ${Base}.pcap failed (rc=${DumpResult}):\n${DumpErr}")
  endif()

  execute_process(
    COMMAND "${LINT}" "${PirFile}"
    RESULT_VARIABLE LintResult
    OUTPUT_VARIABLE LintOut
    ERROR_VARIABLE LintErr)

  file(READ "${ExpectFile}" ExpectedRaw)
  string(STRIP "${ExpectedRaw}" ExpectedRaw)

  # Separate the pinned roofline classification from the sanitizer
  # findings: the "roofline:" line feeds the classifier check below, the
  # rest stays the exact lint expectation.
  set(Expected "")
  set(RooflineExpect "")
  string(REPLACE "\n" ";" ExpectLines "${ExpectedRaw}")
  foreach(Line IN LISTS ExpectLines)
    if(Line MATCHES "^roofline: (.*)$")
      set(RooflineExpect "${CMAKE_MATCH_1}")
    elseif(NOT Line STREQUAL "")
      list(APPEND Expected "${Line}")
    endif()
  endforeach()
  string(REPLACE ";" "\n" Expected "${Expected}")
  string(STRIP "${Expected}" Expected)

  # pir-lint prints "<file>: [kind] @kernel(block): message" per finding
  # plus a trailing summary; reduce to the bare rendered findings so the
  # comparison is path-independent.
  set(Findings "")
  string(REPLACE "\n" ";" LintLines "${LintOut}")
  foreach(Line IN LISTS LintLines)
    if(Line MATCHES "^.*\\.pir: (.*)$")
      list(APPEND Findings "${CMAKE_MATCH_1}")
    endif()
  endforeach()
  string(REPLACE ";" "\n" Findings "${Findings}")
  string(STRIP "${Findings}" Findings)

  if(Expected STREQUAL "")
    if(NOT LintResult EQUAL 0)
      message(FATAL_ERROR
        "${Base}.pcap expected lint-clean, got findings (rc=${LintResult}):\n"
        "${LintOut}\n${LintErr}")
    endif()
  else()
    if(NOT LintResult EQUAL 1)
      message(FATAL_ERROR
        "${Base}.pcap expected sanitizer findings, pir-lint rc=${LintResult}:\n"
        "${LintOut}\n${LintErr}")
    endif()
    if(NOT Findings STREQUAL Expected)
      message(FATAL_ERROR
        "${Base}.pcap sanitizer findings diverge from ${Base}.expect\n"
        "expected:\n${Expected}\n"
        "actual:\n${Findings}")
    endif()
  endif()
  message(STATUS "${Base}: sanitizer expectations hold")

  # 3. Roofline golden classification: pir-roofline's verdict on the dumped
  # PIR must match the class pinned per target in the .expect file.
  if(RooflineExpect STREQUAL "")
    message(FATAL_ERROR
      "${Base}.expect pins no roofline classification (expected a line "
      "'roofline: amdgcn-sim=<Class> nvptx-sim=<Class>')")
  endif()
  execute_process(
    COMMAND "${ROOFLINE}" --target=all "${PirFile}"
    RESULT_VARIABLE RoofResult
    OUTPUT_VARIABLE RoofOut
    ERROR_VARIABLE RoofErr)
  if(NOT RoofResult EQUAL 0)
    message(FATAL_ERROR
      "pir-roofline on ${Base}.pir failed (rc=${RoofResult}):\n"
      "${RoofOut}\n${RoofErr}")
  endif()
  set(AmdClass "")
  set(NvClass "")
  if(RoofOut MATCHES "\\[amdgcn-sim\\] class=([A-Za-z]+)")
    set(AmdClass "${CMAKE_MATCH_1}")
  endif()
  if(RoofOut MATCHES "\\[nvptx-sim\\] class=([A-Za-z]+)")
    set(NvClass "${CMAKE_MATCH_1}")
  endif()
  set(RooflineActual "amdgcn-sim=${AmdClass} nvptx-sim=${NvClass}")
  if(NOT RooflineActual STREQUAL RooflineExpect)
    message(FATAL_ERROR
      "${Base}.pcap roofline classification diverges from ${Base}.expect\n"
      "expected: roofline: ${RooflineExpect}\n"
      "actual:   roofline: ${RooflineActual}\n"
      "full output:\n${RoofOut}")
  endif()
  message(STATUS "${Base}: roofline class pinned (${RooflineActual})")

  # 4. Cross-arch retarget replay: the artifact's bitcode recompiled through
  # each simulated backend must still reproduce the captured bytes — the
  # migration subsystem's correctness contract, checked per arch (one of
  # the two is the recorded arch, so this also covers the plain replay with
  # an explicit override).
  foreach(Arch amdgcn-sim nvptx-sim)
    execute_process(
      COMMAND "${REPLAY}" "--device-arch=${Arch}" "${Artifact}"
      RESULT_VARIABLE RetargetResult
      OUTPUT_VARIABLE RetargetOut
      ERROR_VARIABLE RetargetErr)
    if(NOT RetargetResult EQUAL 0)
      message(FATAL_ERROR
        "retargeted replay of ${Base}.pcap on ${Arch} failed "
        "(rc=${RetargetResult}):\n${RetargetOut}\n${RetargetErr}")
    endif()
  endforeach()
  message(STATUS "${Base}: retargeted replay byte-identical on both arches")
endforeach()

list(LENGTH Artifacts Count)
message(STATUS "replay_corpus_check: ${Count} artifact(s) verified")
