# Replays every checked-in capture artifact (tests/corpus/*.pcap) with
# proteus-replay — each must re-execute byte-identical with a matching
# specialization hash — and re-lints each artifact's pruned kernel bitcode
# against its .expect file (the exact sanitizer findings recorded when the
# corpus was generated; an empty .expect means lint-clean). Invoked by the
# replay_corpus_check ctest (see tools/CMakeLists.txt) with -DREPLAY=...,
# -DLINT=..., -DCORPUS_DIR=..., -DWORK_DIR=...

file(GLOB Artifacts "${CORPUS_DIR}/*.pcap")
if(NOT Artifacts)
  message(FATAL_ERROR "no capture artifacts found in ${CORPUS_DIR}")
endif()
list(SORT Artifacts)
file(MAKE_DIRECTORY "${WORK_DIR}")

foreach(Artifact IN LISTS Artifacts)
  get_filename_component(Base "${Artifact}" NAME_WE)

  # 1. Differential replay: byte-identical output, identical spec hash.
  execute_process(
    COMMAND "${REPLAY}" "${Artifact}"
    RESULT_VARIABLE ReplayResult
    OUTPUT_VARIABLE ReplayOut
    ERROR_VARIABLE ReplayErr)
  if(NOT ReplayResult EQUAL 0)
    message(FATAL_ERROR
      "replay of ${Base}.pcap failed (rc=${ReplayResult}):\n"
      "${ReplayOut}\n${ReplayErr}")
  endif()
  message(STATUS "${ReplayOut}")

  # 2. Sanitizer expectations: dump the artifact's pruned module as PIR,
  # lint it, and require the exact recorded finding kinds and counts.
  set(ExpectFile "${CORPUS_DIR}/${Base}.expect")
  if(NOT EXISTS "${ExpectFile}")
    message(FATAL_ERROR "missing ${Base}.expect next to ${Base}.pcap")
  endif()

  set(PirFile "${WORK_DIR}/${Base}.pir")
  execute_process(
    COMMAND "${REPLAY}" --dump-pir "${Artifact}"
    RESULT_VARIABLE DumpResult
    OUTPUT_FILE "${PirFile}"
    ERROR_VARIABLE DumpErr)
  if(NOT DumpResult EQUAL 0)
    message(FATAL_ERROR
      "--dump-pir of ${Base}.pcap failed (rc=${DumpResult}):\n${DumpErr}")
  endif()

  execute_process(
    COMMAND "${LINT}" "${PirFile}"
    RESULT_VARIABLE LintResult
    OUTPUT_VARIABLE LintOut
    ERROR_VARIABLE LintErr)

  file(READ "${ExpectFile}" Expected)
  string(STRIP "${Expected}" Expected)

  # pir-lint prints "<file>: [kind] @kernel(block): message" per finding
  # plus a trailing summary; reduce to the bare rendered findings so the
  # comparison is path-independent.
  set(Findings "")
  string(REPLACE "\n" ";" LintLines "${LintOut}")
  foreach(Line IN LISTS LintLines)
    if(Line MATCHES "^.*\\.pir: (.*)$")
      list(APPEND Findings "${CMAKE_MATCH_1}")
    endif()
  endforeach()
  string(REPLACE ";" "\n" Findings "${Findings}")
  string(STRIP "${Findings}" Findings)

  if(Expected STREQUAL "")
    if(NOT LintResult EQUAL 0)
      message(FATAL_ERROR
        "${Base}.pcap expected lint-clean, got findings (rc=${LintResult}):\n"
        "${LintOut}\n${LintErr}")
    endif()
  else()
    if(NOT LintResult EQUAL 1)
      message(FATAL_ERROR
        "${Base}.pcap expected sanitizer findings, pir-lint rc=${LintResult}:\n"
        "${LintOut}\n${LintErr}")
    endif()
    if(NOT Findings STREQUAL Expected)
      message(FATAL_ERROR
        "${Base}.pcap sanitizer findings diverge from ${Base}.expect\n"
        "expected:\n${Expected}\n"
        "actual:\n${Findings}")
    endif()
  endif()
  message(STATUS "${Base}: sanitizer expectations hold")
endforeach()

list(LENGTH Artifacts Count)
message(STATUS "replay_corpus_check: ${Count} artifact(s) verified")
