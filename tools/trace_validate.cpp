//===- trace_validate.cpp - chrome trace export checker ---------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Validates a PROTEUS_TRACE export: well-formed trace-event JSON, properly
// nested per-thread spans, and (optionally) that a set of required event
// names was recorded. Used by the trace_check ctest and by hand:
//
//   trace_validate trace.json [--require=name ...]
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

int main(int argc, char **argv) {
  std::string Path;
  std::vector<std::string> Required;
  for (int I = 1; I < argc; ++I) {
    if (std::strncmp(argv[I], "--require=", 10) == 0) {
      Required.push_back(argv[I] + 10);
    } else if (Path.empty()) {
      Path = argv[I];
    } else {
      std::fprintf(stderr, "usage: %s <trace.json> [--require=name ...]\n",
                   argv[0]);
      return 2;
    }
  }
  if (Path.empty()) {
    std::fprintf(stderr, "usage: %s <trace.json> [--require=name ...]\n",
                 argv[0]);
    return 2;
  }

  std::string Error;
  if (!proteus::trace::validateTraceFile(Path, Required, &Error)) {
    std::fprintf(stderr, "trace_validate: %s: %s\n", Path.c_str(),
                 Error.c_str());
    return 1;
  }
  std::printf("trace_validate: %s: ok (%zu required events present)\n",
              Path.c_str(), Required.size());
  return 0;
}
