//===- proteus_capture_gen.cpp - regression corpus generator --------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Regenerates the checked-in differential regression corpus (tests/corpus):
//
//   proteus-capture-gen <output-dir>
//
// Each corpus entry is a capture artifact (.pcap) recorded by launching a
// deterministic kernel once through a capture-enabled JitRuntime — exactly
// the PROTEUS_CAPTURE=on path — paired with a .expect file holding the
// kernel sanitizer findings for the artifact's pruned bitcode (empty file =
// lint-clean). The replay_corpus_check ctest replays every artifact with
// proteus-replay (byte-identical output + matching specialization hash) and
// re-lints the dumped PIR against the .expect lines.
//
// The corpus spans the seeded-bug kernels of the analysis suite (divergent
// barrier, shared-scratch race), the clean daxpy running example, a fixed-
// seed random kernel, and two hecbench programs (feykac, rsbench), each on
// both simulated architectures. Every input is fixed (seeds, buffer
// contents, geometry), so regeneration is reproducible.
//
// Exit status: 0 when every entry was written, 1 on any failure.
//
//===----------------------------------------------------------------------===//

#include "analysis/KernelAnalyzer.h"
#include "bitcode/ModuleIndex.h"
#include "capture/Artifact.h"
#include "codegen/Target.h"
#include "hecbench/Benchmark.h"
#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "ir/OpSemantics.h"
#include "jit/Program.h"
#include "support/FileSystem.h"
#include "tests/RandomKernel.h"

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

using namespace proteus;
using namespace proteus::gpu;

namespace {

const char *archShortName(GpuArch Arch) {
  return Arch == GpuArch::AmdGcnSim ? "amdgcn" : "nvptx";
}

// -- Corpus kernels ----------------------------------------------------------
//
// Local copies of the canonical test-suite kernels (TestUtil.h pulls in
// gtest, so the builders are restated here; shapes must stay in sync with
// the analysis suite for the .expect files to stay meaningful).

/// y[i] = a * x[i] + y[i] — the paper's running example, lint-clean.
void buildDaxpy(pir::Module &M) {
  using namespace pir;
  Context &Ctx = M.getContext();
  IRBuilder B(Ctx);
  Function *F = M.createFunction(
      "daxpy", Ctx.getVoidTy(),
      {Ctx.getF64Ty(), Ctx.getPtrTy(), Ctx.getPtrTy(), Ctx.getI32Ty()},
      {"a", "x", "y", "n"}, FunctionKind::Kernel);
  F->setJitAnnotation(JitAnnotation{{1, 4}});
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *Body = F->createBlock("body", Ctx.getVoidTy());
  BasicBlock *Exit = F->createBlock("exit", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  Value *I = B.createGlobalThreadIdX("i");
  B.createCondBr(B.createICmp(ICmpPred::SLT, I, F->getArg(3), "c"), Body,
                 Exit);
  B.setInsertPoint(Body);
  Type *F64 = Ctx.getF64Ty();
  Value *Xp = B.createGep(F64, F->getArg(1), I, "xp");
  Value *Yp = B.createGep(F64, F->getArg(2), I, "yp");
  Value *Ax = B.createFMul(F->getArg(0), B.createLoad(F64, Xp, "xv"), "ax");
  B.createStore(B.createFAdd(Ax, B.createLoad(F64, Yp, "yv"), "r"), Yp);
  B.createBr(Exit);
  B.setInsertPoint(Exit);
  B.createRet();
}

/// if (tid < 16) { barrier; ... } — one divergent-barrier finding.
void buildDivergentBarrier(pir::Module &M) {
  using namespace pir;
  Context &Ctx = M.getContext();
  IRBuilder B(Ctx);
  Function *F =
      M.createFunction("divbar", Ctx.getVoidTy(),
                       {Ctx.getPtrTy(), Ctx.getI32Ty()}, {"out", "n"},
                       FunctionKind::Kernel);
  F->setJitAnnotation(JitAnnotation{{2}});
  BasicBlock *Entry = F->createBlock("entry", Ctx.getVoidTy());
  BasicBlock *Then = F->createBlock("then", Ctx.getVoidTy());
  BasicBlock *Exit = F->createBlock("exit", Ctx.getVoidTy());
  B.setInsertPoint(Entry);
  Value *Tid = B.createThreadIdx(0, "tid");
  B.createCondBr(B.createICmp(ICmpPred::SLT, Tid, B.getInt32(16), "c"), Then,
                 Exit);
  B.setInsertPoint(Then);
  B.createBarrier();
  B.createStore(B.getInt32(1),
                B.createGep(Ctx.getI32Ty(), F->getArg(0), Tid, "p"));
  B.createBr(Exit);
  B.setInsertPoint(Exit);
  B.createRet();
}

/// Divergent scratch store with no barrier before the load — the canonical
/// shared-memory race.
void buildScratchRace(pir::Module &M) {
  using namespace pir;
  Context &Ctx = M.getContext();
  IRBuilder B(Ctx);
  Function *F =
      M.createFunction("scratch", Ctx.getVoidTy(),
                       {Ctx.getPtrTy(), Ctx.getI32Ty()}, {"out", "n"},
                       FunctionKind::Kernel);
  F->setJitAnnotation(JitAnnotation{{2}});
  B.setInsertPoint(F->createBlock("entry", Ctx.getVoidTy()));
  Value *Buf = B.createAlloca(Ctx.getI32Ty(), 64, "buf");
  Value *Tid = B.createThreadIdx(0, "tid");
  Value *Idx = B.createSRem(Tid, B.getInt32(4), "mod");
  B.createStore(B.getInt32(1), B.createGep(Ctx.getI32Ty(), Buf, Idx, "p"));
  Value *Q = B.createGep(Ctx.getI32Ty(), Buf, B.getInt32(0), "q");
  Value *V = B.createLoad(Ctx.getI32Ty(), Q, "v");
  B.createStore(V, B.createGep(Ctx.getI32Ty(), F->getArg(0), Tid, "outp"));
  B.createRet();
}

// -- Capture harness ---------------------------------------------------------

/// Picks the first-launch artifact (sequence 0) out of \p TmpDir, copies it
/// to \p OutPath, and clears the temporary directory. Returns an error
/// string, empty on success.
std::string takeFirstArtifact(const std::string &TmpDir,
                              const std::string &OutPath) {
  std::string First;
  for (const std::string &Name : fs::listFiles(TmpDir)) {
    if (Name.size() < 7 || Name.compare(Name.size() - 7, 7, "-0.pcap") != 0)
      continue;
    First = Name;
    break;
  }
  if (First.empty()) {
    fs::removeAllFiles(TmpDir);
    return "capture produced no sequence-0 artifact";
  }
  auto Bytes = fs::readFile(TmpDir + "/" + First);
  fs::removeAllFiles(TmpDir);
  if (!Bytes)
    return "cannot read back captured artifact " + First;
  if (!fs::writeFileAtomic(OutPath, *Bytes))
    return "cannot write " + OutPath;
  return "";
}

/// AOT-compiles \p M with the Proteus extensions, launches \p Symbol once
/// through a capture-enabled JitRuntime, and moves the recorded artifact to
/// \p OutPath.
std::string captureKernel(
    pir::Module &M, const std::string &Symbol, GpuArch Arch, Dim3 Grid,
    Dim3 Block,
    const std::function<std::vector<KernelArg>(Device &)> &SetupArgs,
    const std::string &OutPath) {
  AotOptions AO;
  AO.Arch = Arch;
  AO.EnableProteusExtensions = true;
  CompiledProgram Prog = aotCompile(M, AO);

  std::string TmpDir = fs::makeTempDirectory("proteus-capture-gen");
  JitConfig JC;
  JC.UsePersistentCache = false;
  JC.Capture = true;
  JC.CaptureDir = TmpDir;
  JC.CaptureRing = 256;

  Device Dev(getTarget(Arch), 1 << 22);
  JitRuntime Jit(Dev, Prog.ModuleId, JC);
  LoadedProgram LP(Dev, Prog, &Jit);
  if (!LP.ok())
    return "program load failed: " + LP.error();

  std::vector<KernelArg> Args = SetupArgs(Dev);
  std::string Err;
  if (LP.launch(Symbol, Grid, Block, Args, &Err) != GpuError::Success)
    return "launch failed: " + (Err.empty() ? "unknown error" : Err);
  Jit.drain();
  return takeFirstArtifact(TmpDir, OutPath);
}

/// Runs a hecbench program in Proteus mode with capture on and keeps its
/// first launch's artifact.
std::string captureBenchmark(const hecbench::Benchmark &B, GpuArch Arch,
                             const std::string &OutPath) {
  std::string TmpDir = fs::makeTempDirectory("proteus-capture-gen");
  hecbench::RunConfig Config;
  Config.Arch = Arch;
  Config.Mode = hecbench::ExecMode::Proteus;
  Config.ColdCache = true;
  Config.Jit.UsePersistentCache = false;
  Config.Jit.Capture = true;
  Config.Jit.CaptureDir = TmpDir;
  Config.Jit.CaptureRing = 4096;
  hecbench::RunResult R = hecbench::runBenchmark(B, Config);
  if (!R.Ok) {
    fs::removeAllFiles(TmpDir);
    return "benchmark run failed: " + R.Error;
  }
  return takeFirstArtifact(TmpDir, OutPath);
}

/// Writes <base>.expect next to the artifact: the sanitizer findings for
/// the artifact's pruned bitcode, computed through the exact pipeline the
/// corpus check uses (materialize -> print -> parse -> analyze), one
/// rendered finding per line. An empty file records "lint-clean".
std::string writeExpectations(const std::string &ArtifactPath,
                              const std::string &ExpectPath) {
  std::string Error;
  auto A = capture::readArtifactFile(ArtifactPath, &Error);
  if (!A)
    return "cannot reload " + ArtifactPath + ": " + Error;
  std::shared_ptr<const KernelModuleIndex> Index =
      KernelModuleIndex::create(A->Bitcode, Error);
  if (!Index)
    return "corrupt artifact bitcode: " + Error;
  pir::Context Ctx;
  std::unique_ptr<pir::Module> M =
      Index->materialize(Ctx, A->KernelSymbol, nullptr);
  if (!M)
    return "artifact bitcode lacks kernel @" + A->KernelSymbol;

  // Round-trip through the textual form so block/value names match what
  // pir-lint will see when it re-parses proteus-replay --dump-pir output.
  pir::Context Ctx2;
  pir::ParseResult PR = pir::parseModule(Ctx2, pir::printModule(*M));
  if (!PR)
    return "printed PIR does not re-parse: " + PR.Error;

  pir::analysis::AnalysisReport AR = pir::analysis::analyzeModule(*PR.M);
  std::string Text;
  for (const pir::analysis::LintDiagnostic &D : AR.Diags)
    Text += D.render() + "\n";
  std::vector<uint8_t> Bytes(Text.begin(), Text.end());
  if (!fs::writeFileAtomic(ExpectPath, Bytes))
    return "cannot write " + ExpectPath;
  return "";
}

struct CorpusCase {
  std::string Name;
  std::function<std::string(GpuArch, const std::string &)> Capture;
};

} // namespace

int main(int Argc, char **Argv) {
  if (Argc != 2) {
    std::fprintf(stderr, "usage: proteus-capture-gen <output-dir>\n");
    return 2;
  }
  std::string OutDir = Argv[1];
  if (!fs::createDirectories(OutDir)) {
    std::fprintf(stderr, "proteus-capture-gen: cannot create %s\n",
                 OutDir.c_str());
    return 1;
  }

  auto SimpleKernel =
      [](void (*Build)(pir::Module &), const std::string &Symbol, Dim3 Grid,
         Dim3 Block,
         std::function<std::vector<KernelArg>(Device &)> SetupArgs) {
        return [=](GpuArch Arch, const std::string &OutPath) {
          pir::Context Ctx;
          pir::Module M(Ctx, Symbol + "_corpus");
          Build(M);
          return captureKernel(M, Symbol, Arch, Grid, Block, SetupArgs,
                               OutPath);
        };
      };

  std::vector<CorpusCase> Cases;
  Cases.push_back(
      {"daxpy", SimpleKernel(buildDaxpy, "daxpy", Dim3{2, 1, 1},
                             Dim3{32, 1, 1}, [](Device &Dev) {
                               DevicePtr X = 0, Y = 0;
                               gpuMalloc(Dev, &X, 64 * 8);
                               gpuMalloc(Dev, &Y, 64 * 8);
                               std::vector<double> Init(64);
                               for (size_t I = 0; I != 64; ++I)
                                 Init[I] = 0.25 * static_cast<double>(I) - 3.0;
                               gpuMemcpyHtoD(Dev, X, Init.data(), 64 * 8);
                               for (size_t I = 0; I != 64; ++I)
                                 Init[I] = 1.5 - 0.125 * static_cast<double>(I);
                               gpuMemcpyHtoD(Dev, Y, Init.data(), 64 * 8);
                               return std::vector<KernelArg>{
                                   {pir::sem::boxF64(3.0)}, {X}, {Y}, {64}};
                             })});
  Cases.push_back(
      {"divbar", SimpleKernel(buildDivergentBarrier, "divbar", Dim3{1, 1, 1},
                              Dim3{32, 1, 1}, [](Device &Dev) {
                                DevicePtr Out = 0;
                                gpuMalloc(Dev, &Out, 32 * 4);
                                return std::vector<KernelArg>{{Out}, {32}};
                              })});
  Cases.push_back(
      {"scratch", SimpleKernel(buildScratchRace, "scratch", Dim3{1, 1, 1},
                               Dim3{32, 1, 1}, [](Device &Dev) {
                                 DevicePtr Out = 0;
                                 gpuMalloc(Dev, &Out, 32 * 4);
                                 return std::vector<KernelArg>{{Out}, {32}};
                               })});
  Cases.push_back({"rk7", [](GpuArch Arch, const std::string &OutPath) {
                     pir::Context Ctx;
                     pir::Module M(Ctx, "rk7_corpus");
                     proteus_test::buildRandomKernelInto(M, 7);
                     return captureKernel(
                         M, "rk", Arch, Dim3{2, 1, 1}, Dim3{32, 1, 1},
                         [](Device &Dev) {
                           DevicePtr In = 0, Out = 0;
                           gpuMalloc(Dev, &In, 64 * 8);
                           gpuMalloc(Dev, &Out, 64 * 8);
                           std::vector<double> Init(64);
                           for (size_t I = 0; I != 64; ++I)
                             Init[I] = 0.5 * static_cast<double>(I) - 8.0;
                           gpuMemcpyHtoD(Dev, In, Init.data(), 64 * 8);
                           return std::vector<KernelArg>{
                               {In}, {Out}, {64}, {pir::sem::boxF64(1.25)}, {5}};
                         },
                         OutPath);
                   }});
  Cases.push_back({"feykac", [](GpuArch Arch, const std::string &OutPath) {
                     return captureBenchmark(*hecbench::makeFeykacBenchmark(),
                                             Arch, OutPath);
                   }});
  Cases.push_back({"rsbench", [](GpuArch Arch, const std::string &OutPath) {
                     return captureBenchmark(*hecbench::makeRsbenchBenchmark(),
                                             Arch, OutPath);
                   }});

  size_t Failures = 0, Written = 0;
  for (const CorpusCase &Case : Cases) {
    for (GpuArch Arch : {GpuArch::AmdGcnSim, GpuArch::NvPtxSim}) {
      std::string Base =
          OutDir + "/" + Case.Name + "-" + archShortName(Arch);
      std::string Err = Case.Capture(Arch, Base + ".pcap");
      if (Err.empty())
        Err = writeExpectations(Base + ".pcap", Base + ".expect");
      if (!Err.empty()) {
        std::fprintf(stderr, "proteus-capture-gen: %s-%s: %s\n",
                     Case.Name.c_str(), archShortName(Arch), Err.c_str());
        ++Failures;
        continue;
      }
      std::printf("proteus-capture-gen: wrote %s.pcap\n", Base.c_str());
      ++Written;
    }
  }
  std::printf("proteus-capture-gen: %zu artifact(s) written, %zu failed\n",
              Written, Failures);
  return Failures ? 1 : 0;
}
