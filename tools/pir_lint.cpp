//===- pir_lint.cpp - standalone PIR kernel sanitizer -------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Runs the full launch-time analysis suite over textual .pir files, for CI
// and for kernel authors — the same checks PROTEUS_ANALYZE applies inside
// the JIT, but ahead of time and over every kernel in every file:
//
//   pir-lint file.pir [file2.pir ...]
//
// Per file: parse, verify structural well-formedness, then report every
// kernel-sanitizer finding (divergent barriers, shared-scratch races,
// out-of-bounds accesses, uninitialized reads) as
//
//   <file>: [kind] @kernel(block): message
//
// Exit status: 0 when every file is clean, 1 on any finding or parse /
// verification error, 2 on usage errors.
//
//===----------------------------------------------------------------------===//

#include "analysis/KernelAnalyzer.h"
#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "support/FileSystem.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace proteus;

namespace {

/// Lints one file; returns the number of problems (parse errors, verifier
/// errors, or sanitizer findings).
size_t lintFile(const std::string &Path) {
  auto Bytes = fs::readFile(Path);
  if (!Bytes) {
    std::fprintf(stderr, "pir-lint: cannot read '%s'\n", Path.c_str());
    return 1;
  }
  pir::Context Ctx;
  std::string Text(Bytes->begin(), Bytes->end());
  pir::ParseResult R = pir::parseModule(Ctx, Text);
  if (!R) {
    std::fprintf(stderr, "%s: parse error: %s\n", Path.c_str(),
                 R.Error.c_str());
    return 1;
  }
  pir::VerifyResult VR = pir::verifyModule(*R.M);
  if (!VR.ok()) {
    for (const std::string &E : VR.Errors)
      std::fprintf(stderr, "%s: verifier: %s\n", Path.c_str(), E.c_str());
    return VR.Errors.size();
  }
  pir::analysis::AnalysisReport AR = pir::analysis::analyzeModule(*R.M);
  for (const pir::analysis::LintDiagnostic &D : AR.Diags)
    std::printf("%s: %s\n", Path.c_str(), D.render().c_str());
  return AR.Diags.size();
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Files;
  for (int I = 1; I < Argc; ++I)
    Files.push_back(Argv[I]);
  if (Files.empty()) {
    std::fprintf(stderr, "usage: pir-lint file.pir [file2.pir ...]\n");
    return 2;
  }
  size_t Problems = 0;
  for (const std::string &F : Files)
    Problems += lintFile(F);
  if (Problems == 0) {
    std::printf("pir-lint: %zu file(s) clean\n", Files.size());
    return 0;
  }
  std::fprintf(stderr, "pir-lint: %zu finding(s) across %zu file(s)\n",
               Problems, Files.size());
  return 1;
}
