//===- pir_lint.cpp - standalone PIR kernel sanitizer -------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Runs the full launch-time analysis suite over textual .pir files, for CI
// and for kernel authors — the same checks PROTEUS_ANALYZE applies inside
// the JIT, but ahead of time and over every kernel in every file:
//
//   pir-lint [--json] file.pir [file2.pir ...]
//
// Per file: parse, verify structural well-formedness, then report every
// kernel-sanitizer finding (divergent barriers, shared-scratch races,
// out-of-bounds accesses, uninitialized reads) as
//
//   <file>: [kind] @kernel(block): message
//
// With --json the report is one machine-readable document on stdout
// (self-validated through JsonLite before it is printed), so CI can diff
// findings structurally instead of by text match:
//
//   {"files":[{"file":"...","errors":[...],"findings":[
//     {"kind":"...","kernel":"...","block":"...","message":"..."}]}],
//    "findings":N,"clean":true|false}
//
// Exit status: 0 when every file is clean, 1 on any finding or parse /
// verification error, 2 on usage errors.
//
//===----------------------------------------------------------------------===//

#include "analysis/KernelAnalyzer.h"
#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "support/FileSystem.h"
#include "support/JsonLite.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace proteus;

namespace {

/// Structured result of linting one file, shared by both output modes.
struct FileReport {
  std::string Path;
  /// Infrastructure problems: unreadable file, parse error, verifier
  /// errors. Any of these makes the file "not clean" without findings.
  std::vector<std::string> Errors;
  std::vector<pir::analysis::LintDiagnostic> Findings;

  size_t problems() const { return Errors.size() + Findings.size(); }
};

FileReport lintFile(const std::string &Path) {
  FileReport FR;
  FR.Path = Path;
  auto Bytes = fs::readFile(Path);
  if (!Bytes) {
    FR.Errors.push_back("cannot read file");
    return FR;
  }
  pir::Context Ctx;
  std::string Text(Bytes->begin(), Bytes->end());
  pir::ParseResult R = pir::parseModule(Ctx, Text);
  if (!R) {
    FR.Errors.push_back("parse error: " + R.Error);
    return FR;
  }
  pir::VerifyResult VR = pir::verifyModule(*R.M);
  if (!VR.ok()) {
    for (const std::string &E : VR.Errors)
      FR.Errors.push_back("verifier: " + E);
    return FR;
  }
  pir::analysis::AnalysisReport AR = pir::analysis::analyzeModule(*R.M);
  FR.Findings = std::move(AR.Diags);
  return FR;
}

void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

std::string renderJson(const std::vector<FileReport> &Reports,
                       size_t Problems) {
  std::string Out = "{\"files\":[";
  for (size_t I = 0; I != Reports.size(); ++I) {
    const FileReport &FR = Reports[I];
    if (I)
      Out += ',';
    Out += "{\"file\":";
    appendJsonString(Out, FR.Path);
    Out += ",\"errors\":[";
    for (size_t J = 0; J != FR.Errors.size(); ++J) {
      if (J)
        Out += ',';
      appendJsonString(Out, FR.Errors[J]);
    }
    Out += "],\"findings\":[";
    for (size_t J = 0; J != FR.Findings.size(); ++J) {
      const pir::analysis::LintDiagnostic &D = FR.Findings[J];
      if (J)
        Out += ',';
      Out += "{\"kind\":";
      appendJsonString(Out, pir::analysis::lintKindName(D.Kind));
      Out += ",\"kernel\":";
      appendJsonString(Out, D.FunctionName);
      Out += ",\"block\":";
      appendJsonString(Out, D.BlockName);
      Out += ",\"message\":";
      appendJsonString(Out, D.Message);
      Out += '}';
    }
    Out += "]}";
  }
  Out += "],\"findings\":" + std::to_string(Problems);
  Out += ",\"clean\":";
  Out += Problems == 0 ? "true" : "false";
  Out += "}\n";
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = false;
  std::vector<std::string> Files;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json")
      Json = true;
    else
      Files.push_back(std::move(Arg));
  }
  if (Files.empty()) {
    std::fprintf(stderr, "usage: pir-lint [--json] file.pir [file2.pir ...]\n");
    return 2;
  }

  std::vector<FileReport> Reports;
  size_t Problems = 0;
  for (const std::string &F : Files) {
    Reports.push_back(lintFile(F));
    Problems += Reports.back().problems();
  }

  if (Json) {
    std::string Doc = renderJson(Reports, Problems);
    // Self-validate before emitting: a malformed document must fail the
    // tool, never poison a CI diff downstream.
    json::ParseResult PR = json::parse(Doc);
    if (!PR) {
      std::fprintf(stderr, "pir-lint: internal error: produced invalid JSON: %s\n",
                   PR.Error.c_str());
      return 2;
    }
    std::fputs(Doc.c_str(), stdout);
    return Problems == 0 ? 0 : 1;
  }

  for (const FileReport &FR : Reports) {
    for (const std::string &E : FR.Errors)
      std::fprintf(stderr, "%s: %s\n", FR.Path.c_str(), E.c_str());
    for (const pir::analysis::LintDiagnostic &D : FR.Findings)
      std::printf("%s: %s\n", FR.Path.c_str(), D.render().c_str());
  }
  if (Problems == 0) {
    std::printf("pir-lint: %zu file(s) clean\n", Files.size());
    return 0;
  }
  std::fprintf(stderr, "pir-lint: %zu finding(s) across %zu file(s)\n",
               Problems, Files.size());
  return 1;
}
