//===- pir_roofline.cpp - static roofline classifier CLI ----------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Places every kernel of the given inputs on the simulated targets'
// rooflines and reports the bottleneck classification — the same verdict
// PROTEUS_POLICY=on computes inside the JIT, available ahead of time for
// kernel authors and for the pinned-corpus golden checks:
//
//   pir-roofline [--target=amdgcn-sim|nvptx-sim|all] [--json]
//                [--trace trace.json] file.pir|file.pcap [...]
//
// Inputs may be textual .pir modules (every kernel definition is
// classified) or capture artifacts (.pcap; the recorded kernel's pruned
// bitcode is classified). Classification here is purely static — no launch
// geometry or register-allocation feedback is applied — so the verdict is
// the kernel's intrinsic roofline position, deterministic for a given
// (file, arch), which is what the corpus goldens pin. One line per
// (kernel, target):
//
//   <file>: @kernel [<arch>] class=<Class> ai=<v> ridge=<v> \
//       peak_gflops=<v> peak_bw=<v>
//
// With --trace, a chrome-trace export's device lanes are additionally run
// through the cross-stream critical-path analysis, reporting the makespan,
// the critical-path length, and each kernel's criticality fraction.
//
// --json emits one machine-readable document (self-validated through
// JsonLite before printing). Exit status: 0 on success, 1 when any input
// could not be classified, 2 on usage errors.
//
//===----------------------------------------------------------------------===//

#include "analysis/CriticalPath.h"
#include "analysis/Roofline.h"
#include "bitcode/ModuleIndex.h"
#include "capture/Artifact.h"
#include "codegen/Target.h"
#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/Module.h"
#include "support/FileSystem.h"
#include "support/JsonLite.h"
#include "support/StringUtils.h"

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

using namespace proteus;

namespace {

struct KernelRow {
  std::string File;
  std::string Kernel;
  std::string Arch;
  pir::analysis::RooflineReport Report;
};

std::string formatMetric(double V) {
  if (std::isinf(V))
    return "inf";
  return formatString("%.6g", V);
}

bool endsWith(const std::string &S, const char *Suffix) {
  std::string Suf = Suffix;
  return S.size() >= Suf.size() &&
         S.compare(S.size() - Suf.size(), Suf.size(), Suf) == 0;
}

/// Classifies every kernel of \p File on each target in \p Targets.
/// Returns false (with a diagnostic on stderr) when the file cannot be
/// read, parsed or holds no kernel.
bool classifyFile(const std::string &File,
                  const std::vector<const TargetInfo *> &Targets,
                  std::vector<KernelRow> &Rows) {
  pir::Context Ctx;
  std::unique_ptr<pir::Module> Owner;
  std::vector<pir::Function *> Kernels;

  if (endsWith(File, ".pcap")) {
    std::string Error;
    std::optional<capture::CaptureArtifact> A =
        capture::readArtifactFile(File, &Error);
    if (!A) {
      std::fprintf(stderr, "pir-roofline: %s: %s\n", File.c_str(),
                   Error.c_str());
      return false;
    }
    std::shared_ptr<const KernelModuleIndex> Index =
        KernelModuleIndex::create(A->Bitcode, Error);
    if (!Index) {
      std::fprintf(stderr, "pir-roofline: %s: %s\n", File.c_str(),
                   Error.c_str());
      return false;
    }
    Owner = Index->materialize(Ctx, A->KernelSymbol, nullptr);
    pir::Function *F = Owner ? Owner->getFunction(A->KernelSymbol) : nullptr;
    if (!F) {
      std::fprintf(stderr, "pir-roofline: %s: artifact kernel @%s missing\n",
                   File.c_str(), A->KernelSymbol.c_str());
      return false;
    }
    Kernels.push_back(F);
  } else {
    auto Bytes = fs::readFile(File);
    if (!Bytes) {
      std::fprintf(stderr, "pir-roofline: cannot read '%s'\n", File.c_str());
      return false;
    }
    std::string Text(Bytes->begin(), Bytes->end());
    pir::ParseResult R = pir::parseModule(Ctx, Text);
    if (!R) {
      std::fprintf(stderr, "pir-roofline: %s: parse error: %s\n",
                   File.c_str(), R.Error.c_str());
      return false;
    }
    Owner = std::move(R.M);
    for (auto &F : Owner->functions())
      if (F->isKernel() && !F->isDeclaration())
        Kernels.push_back(F.get());
    if (Kernels.empty()) {
      std::fprintf(stderr, "pir-roofline: %s: no kernel definitions\n",
                   File.c_str());
      return false;
    }
  }

  for (pir::Function *F : Kernels) {
    // The profile is arch-neutral; compute it once per kernel and fold it
    // against each target's wave size and ceilings.
    pir::analysis::KernelStaticProfile P =
        pir::analysis::computeStaticProfile(*F);
    for (const TargetInfo *T : Targets) {
      KernelRow Row;
      Row.File = File;
      Row.Kernel = F->getName();
      Row.Arch = T->Name;
      Row.Report = pir::analysis::classifyProfile(P, *T);
      Rows.push_back(std::move(Row));
    }
  }
  return true;
}

void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
  Out += '"';
}

void appendJsonNumber(std::string &Out, double V) {
  // JSON has no infinity; encode the no-bytes-moved AI as a string.
  if (std::isinf(V) || std::isnan(V)) {
    appendJsonString(Out, formatMetric(V));
    return;
  }
  Out += formatString("%.17g", V);
}

std::string
renderJson(const std::vector<KernelRow> &Rows,
           const std::optional<analysis::CriticalPathReport> &Trace) {
  std::string Out = "{\"kernels\":[";
  for (size_t I = 0; I != Rows.size(); ++I) {
    const KernelRow &R = Rows[I];
    if (I)
      Out += ',';
    Out += "{\"file\":";
    appendJsonString(Out, R.File);
    Out += ",\"kernel\":";
    appendJsonString(Out, R.Kernel);
    Out += ",\"arch\":";
    appendJsonString(Out, R.Arch);
    Out += ",\"class\":";
    appendJsonString(Out,
                     pir::analysis::bottleneckClassName(R.Report.Class));
    Out += ",\"ai\":";
    appendJsonNumber(Out, R.Report.ArithmeticIntensity);
    Out += ",\"ridge\":";
    appendJsonNumber(Out, R.Report.Model.ridgeFlopsPerByte());
    Out += ",\"peak_gflops\":";
    appendJsonNumber(Out, R.Report.Model.PeakGFlops);
    Out += ",\"peak_bw_gbs\":";
    appendJsonNumber(Out, R.Report.Model.PeakBandwidthGBs);
    Out += ",\"attainable_gflops\":";
    appendJsonNumber(Out, R.Report.AttainableGFlops);
    Out += ",\"reason\":";
    appendJsonString(Out, R.Report.Reason);
    Out += '}';
  }
  Out += ']';
  if (Trace) {
    Out += ",\"critical_path\":{\"critical_path_ns\":";
    appendJsonNumber(Out, static_cast<double>(Trace->CriticalPathNs));
    Out += ",\"makespan_ns\":";
    appendJsonNumber(Out, static_cast<double>(Trace->MakespanNs));
    Out += ",\"kernels\":[";
    for (size_t I = 0; I != Trace->ByName.size(); ++I) {
      const analysis::NameCriticality &N = Trace->ByName[I];
      if (I)
        Out += ',';
      Out += "{\"name\":";
      appendJsonString(Out, N.Name);
      Out += ",\"total_ns\":";
      appendJsonNumber(Out, static_cast<double>(N.TotalNs));
      Out += ",\"critical_ns\":";
      appendJsonNumber(Out, static_cast<double>(N.CriticalNs));
      Out += ",\"criticality\":";
      appendJsonNumber(Out, N.CriticalityFraction);
      Out += '}';
    }
    Out += "]}";
  }
  Out += "}\n";
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Json = false;
  std::string TargetSel = "all";
  std::string TracePath;
  std::vector<std::string> Files;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json") {
      Json = true;
    } else if (Arg.rfind("--target=", 0) == 0) {
      TargetSel = Arg.substr(9);
    } else if (Arg == "--trace" && I + 1 < Argc) {
      TracePath = Argv[++I];
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "pir-roofline: unknown option '%s'\n",
                   Arg.c_str());
      return 2;
    } else {
      Files.push_back(std::move(Arg));
    }
  }
  std::vector<const TargetInfo *> Targets;
  if (TargetSel == "all") {
    Targets = {&getAmdGcnSimTarget(), &getNvPtxSimTarget()};
  } else if (TargetSel == "amdgcn-sim") {
    Targets = {&getAmdGcnSimTarget()};
  } else if (TargetSel == "nvptx-sim") {
    Targets = {&getNvPtxSimTarget()};
  } else {
    std::fprintf(stderr,
                 "pir-roofline: invalid --target '%s' (expected "
                 "amdgcn-sim|nvptx-sim|all)\n",
                 TargetSel.c_str());
    return 2;
  }
  if (Files.empty() && TracePath.empty()) {
    std::fprintf(stderr,
                 "usage: pir-roofline [--target=amdgcn-sim|nvptx-sim|all] "
                 "[--json] [--trace trace.json] file.pir|file.pcap [...]\n");
    return 2;
  }

  bool AllOk = true;
  std::vector<KernelRow> Rows;
  for (const std::string &F : Files)
    if (!classifyFile(F, Targets, Rows))
      AllOk = false;

  std::optional<analysis::CriticalPathReport> Trace;
  if (!TracePath.empty()) {
    auto Bytes = fs::readFile(TracePath);
    if (!Bytes) {
      std::fprintf(stderr, "pir-roofline: cannot read trace '%s'\n",
                   TracePath.c_str());
      AllOk = false;
    } else {
      std::string Error;
      std::vector<analysis::TimelineSpan> Spans;
      if (!analysis::parseTraceLanes(
              std::string_view(reinterpret_cast<const char *>(Bytes->data()),
                               Bytes->size()),
              Spans, Error)) {
        std::fprintf(stderr, "pir-roofline: trace '%s': %s\n",
                     TracePath.c_str(), Error.c_str());
        AllOk = false;
      } else {
        Trace = analysis::analyzeTimeline(std::move(Spans));
      }
    }
  }

  if (Json) {
    std::string Doc = renderJson(Rows, Trace);
    json::ParseResult PR = json::parse(Doc);
    if (!PR) {
      std::fprintf(stderr,
                   "pir-roofline: internal error: produced invalid JSON: %s\n",
                   PR.Error.c_str());
      return 2;
    }
    std::fputs(Doc.c_str(), stdout);
    return AllOk ? 0 : 1;
  }

  for (const KernelRow &R : Rows)
    std::printf("%s: @%s [%s] class=%s ai=%s ridge=%s peak_gflops=%s "
                "peak_bw=%s\n",
                R.File.c_str(), R.Kernel.c_str(), R.Arch.c_str(),
                pir::analysis::bottleneckClassName(R.Report.Class),
                formatMetric(R.Report.ArithmeticIntensity).c_str(),
                formatMetric(R.Report.Model.ridgeFlopsPerByte()).c_str(),
                formatMetric(R.Report.Model.PeakGFlops).c_str(),
                formatMetric(R.Report.Model.PeakBandwidthGBs).c_str());
  if (Trace) {
    std::printf("%s: critical_path_ns=%llu makespan_ns=%llu\n",
                TracePath.c_str(),
                static_cast<unsigned long long>(Trace->CriticalPathNs),
                static_cast<unsigned long long>(Trace->MakespanNs));
    for (const analysis::NameCriticality &N : Trace->ByName)
      std::printf("%s: kernel %s total_ns=%llu critical_ns=%llu "
                  "criticality=%s\n",
                  TracePath.c_str(), N.Name.c_str(),
                  static_cast<unsigned long long>(N.TotalNs),
                  static_cast<unsigned long long>(N.CriticalNs),
                  formatMetric(N.CriticalityFraction).c_str());
  }
  return AllOk ? 0 : 1;
}
