//===- pirc.cpp - PIR compiler driver tool ------------------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Command-line driver over the PIR stack, in the spirit of opt/llc:
//
//   pirc verify file.pir               parse + verify, print diagnostics
//   pirc print file.pir                parse and pretty-print (round trip)
//   pirc opt file.pir                  run the O3 pipeline, print the result
//   pirc compile file.pir [--target=amdgcn-sim|nvptx-sim] [--kernel=name]
//                                      compile to an object, print a summary
//   pirc disasm file.pir [...]         compile and print the machine code
//   pirc ptx file.pir [...]            print the PTX-like assembly
//   pirc run file.pir --kernel=name [--blocks=N --threads=N --args=a,b,...]
//                                      execute on the simulator and report
//                                      the hardware counters
//   pirc annotate file.pir             print automatic specialization
//                                      recommendations per kernel
//
// Scalar arguments for `run` are parsed per the kernel signature (i32/i64
// as integers, f32/f64 as decimals); pointer arguments receive device
// buffers sized --bufsize bytes (default 64KiB), zero-initialized.
//
//===----------------------------------------------------------------------===//

#include "codegen/Compiler.h"
#include "codegen/ISel.h"
#include "codegen/Ptx.h"
#include "gpu/Runtime.h"
#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "ir/OpSemantics.h"
#include "ir/Verifier.h"
#include "jit/AutoAnnotate.h"
#include "support/FileSystem.h"
#include "support/StringUtils.h"
#include "transforms/O3Pipeline.h"

#include <cstdio>
#include <cstring>

using namespace proteus;
using namespace proteus::gpu;

namespace {

struct Options {
  std::string Command;
  std::string File;
  GpuArch Arch = GpuArch::AmdGcnSim;
  std::string Kernel;
  uint32_t Blocks = 1;
  uint32_t Threads = 32;
  uint64_t BufBytes = 64 * 1024;
  std::string ArgsCsv;
};

int usage() {
  std::fprintf(stderr,
               "usage: pirc <verify|print|opt|compile|disasm|ptx|run|"
               "annotate> file.pir\n"
               "            [--target=amdgcn-sim|nvptx-sim] [--kernel=NAME]\n"
               "            [--blocks=N] [--threads=N] [--args=v1,v2,...]\n"
               "            [--bufsize=BYTES]\n");
  return 2;
}

bool parseOptions(int Argc, char **Argv, Options &Opts) {
  if (Argc < 3)
    return false;
  Opts.Command = Argv[1];
  Opts.File = Argv[2];
  for (int I = 3; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Value = [&A](const char *Prefix) -> const char * {
      size_t N = std::strlen(Prefix);
      return A.compare(0, N, Prefix) == 0 ? A.c_str() + N : nullptr;
    };
    if (const char *V = Value("--target=")) {
      if (std::string(V) == "nvptx-sim")
        Opts.Arch = GpuArch::NvPtxSim;
      else if (std::string(V) == "amdgcn-sim")
        Opts.Arch = GpuArch::AmdGcnSim;
      else
        return false;
    } else if (const char *V = Value("--kernel=")) {
      Opts.Kernel = V;
    } else if (const char *V = Value("--blocks=")) {
      Opts.Blocks = static_cast<uint32_t>(std::strtoul(V, nullptr, 10));
    } else if (const char *V = Value("--threads=")) {
      Opts.Threads = static_cast<uint32_t>(std::strtoul(V, nullptr, 10));
    } else if (const char *V = Value("--args=")) {
      Opts.ArgsCsv = V;
    } else if (const char *V = Value("--bufsize=")) {
      Opts.BufBytes = std::strtoull(V, nullptr, 10);
    } else {
      return false;
    }
  }
  return true;
}

std::unique_ptr<pir::Module> load(pir::Context &Ctx, const std::string &Path,
                                  bool &Ok) {
  Ok = false;
  auto Bytes = fs::readFile(Path);
  if (!Bytes) {
    std::fprintf(stderr, "pirc: cannot read '%s'\n", Path.c_str());
    return nullptr;
  }
  std::string Text(Bytes->begin(), Bytes->end());
  pir::ParseResult R = pir::parseModule(Ctx, Text);
  if (!R) {
    std::fprintf(stderr, "pirc: %s: %s\n", Path.c_str(), R.Error.c_str());
    return nullptr;
  }
  Ok = true;
  return std::move(R.M);
}

pir::Function *selectKernel(pir::Module &M, const Options &Opts) {
  if (!Opts.Kernel.empty()) {
    pir::Function *F = M.getFunction(Opts.Kernel);
    if (!F || !F->isKernel()) {
      std::fprintf(stderr, "pirc: no kernel named '%s'\n",
                   Opts.Kernel.c_str());
      return nullptr;
    }
    return F;
  }
  auto Kernels = M.kernels();
  if (Kernels.size() != 1) {
    std::fprintf(stderr,
                 "pirc: module has %zu kernels; select one with "
                 "--kernel=NAME\n",
                 Kernels.size());
    return nullptr;
  }
  return Kernels[0];
}

int cmdRun(pir::Module &M, pir::Function *F, const Options &Opts) {
  runO3(M);
  Device Dev(getTarget(Opts.Arch));
  std::vector<uint8_t> Obj = compileKernelToObject(*F, Dev.target());
  // Register module globals before load so relocations resolve.
  for (const auto &G : M.globals())
    gpuRegisterVar(Dev, G->getName(), G->sizeInBytes(), G->getInit());
  LoadedKernel *K = nullptr;
  std::string Err;
  if (gpuModuleLoad(Dev, &K, Obj, &Err) != GpuError::Success) {
    std::fprintf(stderr, "pirc: load failed: %s\n", Err.c_str());
    return 1;
  }

  // Marshal arguments: pointers become fresh buffers, scalars come from
  // --args in order.
  std::vector<std::string_view> Scalars =
      Opts.ArgsCsv.empty() ? std::vector<std::string_view>{}
                           : split(Opts.ArgsCsv, ',');
  size_t NextScalar = 0;
  std::vector<KernelArg> Args;
  for (size_t I = 0; I != F->getNumArgs(); ++I) {
    pir::Type *Ty = F->getArg(I)->getType();
    if (Ty->isPointer()) {
      DevicePtr P = 0;
      if (gpuMalloc(Dev, &P, Opts.BufBytes) != GpuError::Success) {
        std::fprintf(stderr, "pirc: device OOM\n");
        return 1;
      }
      Args.push_back(KernelArg{P});
      continue;
    }
    std::string V = NextScalar < Scalars.size()
                        ? std::string(Scalars[NextScalar++])
                        : "0";
    if (Ty->isFloatingPoint()) {
      double D = std::strtod(V.c_str(), nullptr);
      Args.push_back(KernelArg{Ty->isF32() ? pir::sem::boxF32(
                                                 static_cast<float>(D))
                                           : pir::sem::boxF64(D)});
    } else {
      Args.push_back(KernelArg{static_cast<uint64_t>(
          std::strtoll(V.c_str(), nullptr, 0))});
    }
  }

  if (gpuLaunchKernel(Dev, *K, Dim3{Opts.Blocks, 1, 1},
                      Dim3{Opts.Threads, 1, 1}, Args,
                      &Err) != GpuError::Success) {
    std::fprintf(stderr, "pirc: launch failed: %s\n", Err.c_str());
    return 1;
  }
  const LaunchStats &S = Dev.LastLaunch;
  std::printf("kernel %s on %s: %u x %u threads\n", F->getName().c_str(),
              Dev.target().Name.c_str(), Opts.Blocks, Opts.Threads);
  std::printf("  duration        %.9f s (simulated)\n", S.DurationSec);
  std::printf("  instructions    %llu (%.1f per thread)\n",
              static_cast<unsigned long long>(S.TotalInstrs),
              S.instPerThread());
  std::printf("  VALU / SALU     %llu / %llu\n",
              static_cast<unsigned long long>(S.VALUInsts),
              static_cast<unsigned long long>(S.SALUInsts));
  std::printf("  mem ld/st       %llu / %llu   L2 hit %.1f%%\n",
              static_cast<unsigned long long>(S.MemLoads),
              static_cast<unsigned long long>(S.MemStores),
              100.0 * S.l2HitRatio());
  std::printf("  spills ld/st    %llu / %llu   regs %u   occupancy %.1f%%\n",
              static_cast<unsigned long long>(S.SpillLoads),
              static_cast<unsigned long long>(S.SpillStores), S.RegsUsed,
              100.0 * S.Occupancy);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseOptions(Argc, Argv, Opts))
    return usage();

  pir::Context Ctx;
  bool Ok = false;
  std::unique_ptr<pir::Module> M = load(Ctx, Opts.File, Ok);
  if (!Ok)
    return 1;

  if (Opts.Command == "verify") {
    pir::VerifyResult R = pir::verifyModule(*M);
    if (!R.ok()) {
      std::fprintf(stderr, "%s", R.message().c_str());
      return 1;
    }
    std::printf("%s: OK (%zu functions, %zu globals)\n", Opts.File.c_str(),
                M->functions().size(), M->globals().size());
    return 0;
  }
  if (Opts.Command == "print") {
    std::fputs(pir::printModule(*M).c_str(), stdout);
    return 0;
  }
  if (Opts.Command == "opt") {
    runO3(*M);
    std::fputs(pir::printModule(*M).c_str(), stdout);
    return 0;
  }
  if (Opts.Command == "annotate") {
    for (pir::Function *K : M->kernels()) {
      std::printf("kernel @%s:", K->getName().c_str());
      auto Recs = suggestJitAnnotations(*K);
      if (Recs.empty()) {
        std::printf(" no specialization candidates\n");
        continue;
      }
      std::printf(" annotate(\"jit\"");
      for (const ArgRecommendation &R : Recs)
        std::printf(", %u", R.ArgIndex);
      std::printf(")\n");
      for (const ArgRecommendation &R : Recs) {
        std::printf("  arg %u (%s):", R.ArgIndex,
                    K->getArg(R.ArgIndex - 1)->getName().c_str());
        for (SpecializationReason Why : R.Reasons)
          std::printf(" %s", specializationReasonName(Why));
        std::printf("\n");
      }
    }
    return 0;
  }

  pir::Function *F = selectKernel(*M, Opts);
  if (!F)
    return 1;

  if (Opts.Command == "compile" || Opts.Command == "disasm" ||
      Opts.Command == "ptx") {
    runO3(*M);
    if (Opts.Command == "ptx") {
      mcode::MachineFunction MF = selectInstructions(*F);
      std::fputs(printPtx(MF).c_str(), stdout);
      return 0;
    }
    BackendStats BS;
    mcode::MachineFunction MF =
        compileKernel(*F, getTarget(Opts.Arch), &BS);
    if (Opts.Command == "disasm") {
      std::fputs(mcode::printMachineFunction(MF).c_str(), stdout);
      return 0;
    }
    std::vector<uint8_t> Obj = writeObject(MF, Opts.Arch);
    std::printf("%s: kernel @%s for %s\n", Opts.File.c_str(),
                F->getName().c_str(), gpuArchName(Opts.Arch));
    std::printf("  object          %zu bytes\n", Obj.size());
    std::printf("  instructions    %zu in %zu blocks\n",
                MF.totalInstructions(), MF.Blocks.size());
    std::printf("  registers       %u (budget %u)   spill slots %u\n",
                MF.NumRegs, BS.RegisterBudget, MF.NumSpillSlots);
    return 0;
  }
  if (Opts.Command == "run")
    return cmdRun(*M, F, Opts);
  return usage();
}
