# Runs the quickstart example with PROTEUS_TRACE set, then validates the
# exported chrome://tracing JSON: the file must be well-formed, per-thread
# spans properly nested, and every JIT pipeline stage present as an event.
# Invoked by the trace_check ctest (see tools/CMakeLists.txt) with
# -DQUICKSTART=..., -DVALIDATOR=..., -DTRACE_FILE=...

file(REMOVE "${TRACE_FILE}")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env "PROTEUS_TRACE=${TRACE_FILE}" "${QUICKSTART}"
  RESULT_VARIABLE RunResult
  OUTPUT_VARIABLE RunOut
  ERROR_VARIABLE RunErr)
if(NOT RunResult EQUAL 0)
  message(FATAL_ERROR
    "quickstart failed under PROTEUS_TRACE (rc=${RunResult}):\n"
    "${RunOut}\n${RunErr}")
endif()

if(NOT EXISTS "${TRACE_FILE}")
  message(FATAL_ERROR "PROTEUS_TRACE did not produce ${TRACE_FILE}")
endif()

# One required name per pipeline stage of a cold specialization compile on
# amdgcn-sim (the quickstart target). cache.hit.memory is intentionally not
# required: repeat launches of the same specialization short-circuit at the
# loaded-kernel map and never reach the cache.
execute_process(
  COMMAND "${VALIDATOR}" "${TRACE_FILE}"
    --require=jit.launch
    --require=jit.build_key
    --require=jit.cache_lookup
    --require=jit.fetch_bitcode
    --require=jit.compile
    --require=compile.parse
    --require=compile.link_globals
    --require=compile.specialize
    --require=compile.o3
    --require=compile.backend
    --require=o3.inline
    --require=o3.mem2reg
    --require=o3.instcombine
    --require=o3.simplifycfg
    --require=o3.cse
    --require=o3.licm
    --require=o3.dce
    --require=o3.loop-unroll
    --require=backend.isel
    --require=backend.regalloc
    --require=cache.miss
    --require=cache.insert
    --require=jit.module_load
    --require=jit.kernel_launch
  RESULT_VARIABLE ValResult
  OUTPUT_VARIABLE ValOut
  ERROR_VARIABLE ValErr)
if(NOT ValResult EQUAL 0)
  message(FATAL_ERROR "trace validation failed:\n${ValOut}\n${ValErr}")
endif()
message(STATUS "${ValOut}")
