//===- proteus_cached.cpp - shared JIT cache daemon -----------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The node-level shared cache service: every JIT process on a node points
// PROTEUS_CACHE_REMOTE=on / PROTEUS_CACHE_SOCKET at one of these and gets a
// shared, sharded, budget-evicted code cache with fleet-wide compile dedup
// and batched lookups.
//
//   proteus-cached --socket=/run/proteus/cached.sock --dir=/var/cache/proteus
//                  [--shards=4] [--budget=BYTES] [--workers=4]
//                  [--policy=lru|lfu]
//
// Runs until SIGINT/SIGTERM, then prints a stats summary and exits 0.
//
//===----------------------------------------------------------------------===//

#include "fleet/CacheServer.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

using namespace proteus;

namespace {

std::atomic<bool> StopRequested{false};

void onSignal(int) { StopRequested.store(true); }

bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty() || S.find_first_not_of("0123456789") != std::string::npos)
    return false;
  Out = std::strtoull(S.c_str(), nullptr, 10);
  return true;
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --socket=PATH --dir=PATH [--shards=N] "
               "[--budget=BYTES] [--workers=N] [--policy=lru|lfu]\n",
               Argv0);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  fleet::CacheServerOptions Options;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto valueOf = [&](const char *Prefix) -> const char * {
      size_t N = std::strlen(Prefix);
      return Arg.compare(0, N, Prefix) == 0 ? Arg.c_str() + N : nullptr;
    };
    uint64_t V;
    if (const char *S = valueOf("--socket=")) {
      Options.SocketPath = S;
    } else if (const char *S = valueOf("--dir=")) {
      Options.Dir = S;
    } else if (const char *S = valueOf("--shards=")) {
      if (!parseU64(S, V) || V < 1 || V > 64)
        return usage(Argv[0]);
      Options.Shards = static_cast<uint32_t>(V);
    } else if (const char *S = valueOf("--budget=")) {
      if (!parseU64(S, V))
        return usage(Argv[0]);
      Options.BudgetBytes = V;
    } else if (const char *S = valueOf("--workers=")) {
      if (!parseU64(S, V) || V < 1 || V > 256)
        return usage(Argv[0]);
      Options.Workers = static_cast<unsigned>(V);
    } else if (const char *S = valueOf("--policy=")) {
      std::string P = S;
      if (P == "lru")
        Options.Policy = fleet::EvictPolicy::LRU;
      else if (P == "lfu")
        Options.Policy = fleet::EvictPolicy::LFU;
      else
        return usage(Argv[0]);
    } else {
      return usage(Argv[0]);
    }
  }
  if (Options.SocketPath.empty() || Options.Dir.empty())
    return usage(Argv[0]);

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::signal(SIGPIPE, SIG_IGN);

  auto Server = fleet::CacheServer::start(Options);
  if (!Server) {
    std::fprintf(stderr, "proteus-cached: cannot listen on %s\n",
                 Options.SocketPath.c_str());
    return 1;
  }
  std::fprintf(stderr, "proteus-cached: serving %s on %s (shards=%u%s)\n",
               Options.Dir.c_str(), Options.SocketPath.c_str(),
               Options.Shards,
               Options.BudgetBytes
                   ? (", budget=" + std::to_string(Options.BudgetBytes)).c_str()
                   : "");

  while (!StopRequested.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  fleet::BackendStats S = Server->backend().stats();
  std::fprintf(stderr,
               "proteus-cached: exiting — connections=%llu requests=%llu "
               "hits=%llu misses=%llu publishes=%llu publish_bytes=%llu "
               "evictions=%llu dedup_hits=%llu\n",
               static_cast<unsigned long long>(Server->connectionsAccepted()),
               static_cast<unsigned long long>(Server->requestsServed()),
               static_cast<unsigned long long>(S.Hits),
               static_cast<unsigned long long>(S.Misses),
               static_cast<unsigned long long>(S.Publishes),
               static_cast<unsigned long long>(S.PublishBytes),
               static_cast<unsigned long long>(S.Evictions),
               static_cast<unsigned long long>(S.DedupHits));
  Server->stop();
  return 0;
}
