#!/usr/bin/env bash
#===- tools/ci_tsan.sh - ThreadSanitizer CI battery ----------------------===#
#
# Part of the Proteus reproduction project.
#
# Configures a dedicated build tree with -DPROTEUS_SANITIZE=thread, builds
# the JIT/cache/concurrency test binaries, and runs them under TSan. Any
# data race, lock-order inversion, or thread leak fails the script.
#
# Usage: tools/ci_tsan.sh [build-dir]   (default: build-tsan)
#
#===----------------------------------------------------------------------===#
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build-tsan}"

# halt_on_error makes the first report fatal so CI fails fast;
# second_deadlock_stack improves lock-order-inversion diagnostics.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"

TESTS=(
  support_test
  cache_eviction_test
  cache_crash_test
  jit_test
  jit_concurrency_test
  tiered_jit_test
  stream_test
  trace_test
  observability_test
  analysis_test
  capture_replay_test
  capture_pressure_test
  autotuner_test
  fleet_cache_test
  sched_test
)

echo "== Configuring TSan build in ${BUILD_DIR} =="
cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPROTEUS_SANITIZE=thread

echo "== Building test battery =="
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target "${TESTS[@]}"

STATUS=0
for T in "${TESTS[@]}"; do
  echo "== TSan: ${T} =="
  if ! "${BUILD_DIR}/tests/${T}"; then
    echo "!! ${T} FAILED under ThreadSanitizer"
    STATUS=1
  fi
done

# Re-run the concurrency battery with tracing enabled so the trace ring
# buffer, name interning, and counter paths are exercised under contention
# from every pipeline thread. The export itself is discarded.
TRACE_TMP="$(mktemp -d)"
trap 'rm -rf "${TRACE_TMP}"' EXIT
echo "== TSan: jit_concurrency_test (PROTEUS_TRACE enabled) =="
if ! PROTEUS_TRACE="${TRACE_TMP}/tsan_trace.json" \
     "${BUILD_DIR}/tests/jit_concurrency_test"; then
  echo "!! jit_concurrency_test FAILED under ThreadSanitizer with tracing"
  STATUS=1
fi

# One more concurrency pass with the sanitizer and per-pass verification on
# the hot path: the analysis stage and the PostPassHook closure run on every
# compile worker, so races in their shared state (the report, the verify
# failure slot, the counters) would surface here.
echo "== TSan: jit_concurrency_test (PROTEUS_ANALYZE=error, PROTEUS_VERIFY_EACH=1) =="
if ! PROTEUS_ANALYZE=error PROTEUS_VERIFY_EACH=1 \
     "${BUILD_DIR}/tests/jit_concurrency_test"; then
  echo "!! jit_concurrency_test FAILED under ThreadSanitizer with analysis enabled"
  STATUS=1
fi

# Tiered compilation under contention: every launch-path miss compiles
# Tier-0 while the generic binary covers the launch, and the background
# Tier-1 promotion hot-swaps loaded kernels racing against the launch
# storm — the richest cross-thread interleaving the runtime has.
echo "== TSan: jit_concurrency_test (PROTEUS_TIER=on, PROTEUS_ASYNC=fallback) =="
if ! PROTEUS_TIER=on PROTEUS_ASYNC=fallback \
     "${BUILD_DIR}/tests/jit_concurrency_test"; then
  echo "!! jit_concurrency_test FAILED under ThreadSanitizer with tiering enabled"
  STATUS=1
fi

# Multi-stream + multi-device launch storm: threads spray launches across
# a 4-device pool with 4 streams each while tiering hot-swaps loaded
# kernels on every device and fallback serves generics — per-device locks,
# per-stream timelines, and the cross-device promotion path all race here.
echo "== TSan: stream_test (PROTEUS_NUM_DEVICES=4, PROTEUS_DEFAULT_STREAMS=4, PROTEUS_TIER=on, PROTEUS_ASYNC=fallback) =="
if ! PROTEUS_NUM_DEVICES=4 PROTEUS_DEFAULT_STREAMS=4 \
     PROTEUS_TIER=on PROTEUS_ASYNC=fallback \
     "${BUILD_DIR}/tests/stream_test"; then
  echo "!! stream_test FAILED under ThreadSanitizer with a multi-device pool"
  STATUS=1
fi

# The same storm with launch capture recording into a bounded ring: the
# launch path snapshots device memory under per-device locks while the
# capture writer thread serializes bitcode and persists artifacts — the
# ring hand-off, the shedding counters, and the writer race the storm.
CAPTURE_TMP="${TRACE_TMP}/captures"
echo "== TSan: stream_test (capture enabled during the multi-device storm) =="
if ! PROTEUS_NUM_DEVICES=4 PROTEUS_DEFAULT_STREAMS=4 \
     PROTEUS_TIER=on PROTEUS_ASYNC=fallback \
     PROTEUS_CAPTURE=on PROTEUS_CAPTURE_DIR="${CAPTURE_TMP}" \
     "${BUILD_DIR}/tests/stream_test"; then
  echo "!! stream_test FAILED under ThreadSanitizer with capture enabled"
  STATUS=1
fi

# Tuning enabled during a tiered multi-device storm: concurrent variant
# races replay artifacts on throwaway devices while the decision store,
# the tuner counters, and the installFinalTier hot-swap path contend with
# live launches and background promotions (ConcurrentTuningStorm drives
# the threads; the env turns every knob the tuner interacts with).
echo "== TSan: autotuner_test (PROTEUS_NUM_DEVICES=4, PROTEUS_TIER=on, PROTEUS_ASYNC=fallback, PROTEUS_TUNE=on) =="
if ! PROTEUS_NUM_DEVICES=4 PROTEUS_TIER=on PROTEUS_ASYNC=fallback \
     PROTEUS_TUNE=on \
     "${BUILD_DIR}/tests/autotuner_test"; then
  echo "!! autotuner_test FAILED under ThreadSanitizer with tuning enabled"
  STATUS=1
fi

# The bottleneck-aware policy during the same tiered multi-device tuning
# storm: roofline classification runs on the compile workers, verdict
# reads/writes hit the policy store from every tuning session, and the
# axis-pruning counters race concurrent generateVariants calls — all while
# tier demotion consults the policy on the promotion path.
echo "== TSan: autotuner_test (PROTEUS_NUM_DEVICES=4, PROTEUS_TIER=on, PROTEUS_ASYNC=fallback, PROTEUS_TUNE=on, PROTEUS_POLICY=on) =="
if ! PROTEUS_NUM_DEVICES=4 PROTEUS_TIER=on PROTEUS_ASYNC=fallback \
     PROTEUS_TUNE=on PROTEUS_POLICY=on \
     "${BUILD_DIR}/tests/autotuner_test"; then
  echo "!! autotuner_test FAILED under ThreadSanitizer with the policy enabled"
  STATUS=1
fi

# Migration storm over a bigger heterogeneous pool: launcher threads spray
# scheduler-placed launches across 4 mixed-arch devices while a migrator
# thread bounces the kernel (and its reachable state) between arches under
# tiering — the withDeviceLocked protocol, the retarget hot-swap, and the
# lock-free load gauges all race here.
echo "== TSan: sched_test (PROTEUS_NUM_DEVICES=4, PROTEUS_DEVICE_ARCHS=amdgcn-sim,nvptx-sim, PROTEUS_TIER=on, PROTEUS_ASYNC=fallback) =="
if ! PROTEUS_NUM_DEVICES=4 PROTEUS_DEVICE_ARCHS=amdgcn-sim,nvptx-sim \
     PROTEUS_TIER=on PROTEUS_ASYNC=fallback \
     "${BUILD_DIR}/tests/sched_test"; then
  echo "!! sched_test FAILED under ThreadSanitizer with a heterogeneous pool"
  STATUS=1
fi

# Fleet-cache storm: the full concurrency battery again, but every cache
# operation now rides the shared-cache daemon — the group-commit lookup
# combiner, the batch fan-out across the server's worker pool, and the
# cross-process claim release paths all race the compile storm. The daemon
# itself is a TSan build, so server-side races fail the lane too.
echo "== TSan: jit_concurrency_test (PROTEUS_CACHE_REMOTE=on via proteus-cached) =="
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target proteus-cached
FLEET_SOCK="${TRACE_TMP}/cached.sock"
FLEET_DIR="${TRACE_TMP}/fleet-cache"
"${BUILD_DIR}/tools/proteus-cached" \
  "--socket=${FLEET_SOCK}" "--dir=${FLEET_DIR}" --shards=4 --workers=4 &
FLEET_PID=$!
trap 'kill "${FLEET_PID}" 2>/dev/null || true; rm -rf "${TRACE_TMP}"' EXIT
for _ in $(seq 1 100); do
  [ -S "${FLEET_SOCK}" ] && break
  sleep 0.05
done
if ! PROTEUS_CACHE_REMOTE=on PROTEUS_CACHE_SOCKET="${FLEET_SOCK}" \
     PROTEUS_CACHE_SHARDS=4 \
     "${BUILD_DIR}/tests/jit_concurrency_test"; then
  echo "!! jit_concurrency_test FAILED under ThreadSanitizer against the cache daemon"
  STATUS=1
fi
if ! kill -0 "${FLEET_PID}" 2>/dev/null; then
  echo "!! proteus-cached exited during the fleet storm"
  STATUS=1
fi
kill "${FLEET_PID}" 2>/dev/null || true
wait "${FLEET_PID}" 2>/dev/null || true

# Every artifact the storm recorded must replay byte-identical — capture
# under contention may shed, but must never corrupt.
if compgen -G "${CAPTURE_TMP}/*.pcap" > /dev/null; then
  echo "== TSan: replaying storm-captured artifacts =="
  cmake --build "${BUILD_DIR}" -j "$(nproc)" --target proteus-replay
  if ! "${BUILD_DIR}/tools/proteus-replay" "${CAPTURE_TMP}"/*.pcap; then
    echo "!! storm-captured artifacts failed differential replay"
    STATUS=1
  fi
fi

if [ "${STATUS}" -eq 0 ]; then
  echo "== TSan battery passed: no data races detected =="
else
  echo "== TSan battery FAILED =="
fi
exit "${STATUS}"
