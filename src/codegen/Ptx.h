//===- Ptx.h - PTX-like textual assembly step -------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The NVIDIA-path intermediate step. The nvptx-sim backend does not emit
/// binary code directly: it prints a PTX-like textual module from the
/// virtual-register machine IR, and a separate assembler (the ptxas /
/// nvPTXCompilerCompile stand-in) parses that text and performs register
/// allocation to produce the final binary. This extra, genuinely-executed
/// step is the source of the additional NVIDIA JIT overhead the paper
/// measures (sections 3.3 and 4.3).
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_CODEGEN_PTX_H
#define PROTEUS_CODEGEN_PTX_H

#include "codegen/MachineIR.h"

#include <string>

namespace proteus {

/// Renders pre-allocation machine IR as PTX-like text.
std::string printPtx(const mcode::MachineFunction &MF);

/// Result of assembling PTX text.
struct PtxAssembleResult {
  mcode::MachineFunction MF; // virtual registers; caller runs allocation
  bool Ok = false;
  std::string Error;
};

/// Parses PTX-like text back into machine IR. Tolerates only text produced
/// by printPtx; malformed input yields an error result.
PtxAssembleResult assemblePtx(const std::string &Text);

} // namespace proteus

#endif // PROTEUS_CODEGEN_PTX_H
