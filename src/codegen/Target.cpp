//===- Target.cpp - simulated GPU target descriptions -----------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "codegen/Target.h"

#include "support/Error.h"

using namespace proteus;

const char *proteus::gpuArchName(GpuArch A) {
  switch (A) {
  case GpuArch::AmdGcnSim:
    return "amdgcn-sim";
  case GpuArch::NvPtxSim:
    return "nvptx-sim";
  }
  proteus_unreachable("unknown arch");
}

const TargetInfo &proteus::getAmdGcnSimTarget() {
  static const TargetInfo T = [] {
    TargetInfo TI;
    TI.Arch = GpuArch::AmdGcnSim;
    TI.Name = "amdgcn-sim";
    TI.EmitsPtx = false;
    TI.WaveSize = 64;
    TI.NumCUs = 24; // MI250X-like geometry, scaled to simulation throughput
    TI.RegFilePerCU = 32768;
    TI.MaxRegsPerThread = 256;
    TI.MinRegsPerThread = 16;
    TI.MaxThreadsPerCU = 2048;
    TI.MaxWavesPerCU = 32;
    // Without launch bounds the allocator must assume the ISA maximum block
    // size, strangling the per-thread budget (32768/1024 = 32 registers) —
    // the conservative allocation + spilling the paper attributes to
    // missing launch bounds on AMD.
    TI.DefaultAssumedThreads = 1024;
    TI.ClockGHz = 1.7;
    TI.MemBandwidthGBs = 1600.0;
    TI.L2Bytes = 8ull << 20;
    // CDNA-style packed FP32: two FLOPs per lane-cycle. Combined with the
    // high HBM bandwidth this puts the roofline ridge near 3.3 FLOPs/byte.
    TI.Fp32ValuWidth = 2;
    return TI;
  }();
  return T;
}

const TargetInfo &proteus::getNvPtxSimTarget() {
  static const TargetInfo T = [] {
    TargetInfo TI;
    TI.Arch = GpuArch::NvPtxSim;
    TI.Name = "nvptx-sim";
    TI.EmitsPtx = true;
    TI.WaveSize = 32;
    TI.NumCUs = 18; // V100-like geometry, scaled to simulation throughput
    TI.RegFilePerCU = 65536;
    TI.MaxRegsPerThread = 255;
    TI.MinRegsPerThread = 16;
    TI.MaxThreadsPerCU = 2048;
    TI.MaxWavesPerCU = 64;
    // The proprietary allocator's effective default is less conservative
    // than AMD's (65536/1024 = 64 vs 32 registers), so launch-bounds
    // specialization only matters for kernels above that pressure — the
    // paper's RSBENCH, but not SW4CK.
    TI.DefaultAssumedThreads = 1024;
    TI.ClockGHz = 1.38;
    TI.MemBandwidthGBs = 900.0;
    TI.L2Bytes = 6ull << 20;
    // One FP32 result per lane-cycle; with the narrower HBM2 bandwidth the
    // ridge lands near 0.9 FLOPs/byte — kernels between the two ridges
    // classify differently per arch, which the tests pin.
    TI.Fp32ValuWidth = 1;
    return TI;
  }();
  return T;
}

const TargetInfo &proteus::getTarget(GpuArch A) {
  return A == GpuArch::AmdGcnSim ? getAmdGcnSimTarget() : getNvPtxSimTarget();
}
