//===- Compiler.h - kernel compilation driver -------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backend driver shared by AOT device compilation and the JIT runtime:
/// instruction selection, register allocation under the launch-bounds
/// budget, and (on nvptx-sim) the PTX print/assemble detour. Stage timings
/// are surfaced so the benchmarks can attribute JIT overhead precisely.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_CODEGEN_COMPILER_H
#define PROTEUS_CODEGEN_COMPILER_H

#include "codegen/ObjectFile.h"
#include "codegen/RegAlloc.h"

namespace pir {
class Function;
} // namespace pir

namespace proteus {

/// Wall-time and outcome statistics of one backend invocation.
struct BackendStats {
  double ISelSeconds = 0;
  double PtxEmitSeconds = 0; // nvptx-sim only
  double PtxAsmSeconds = 0;  // nvptx-sim only
  double RegAllocSeconds = 0;
  RegAllocResult RA;
  uint32_t RegisterBudget = 0;
};

/// Backend policy knobs shared by both tiers.
struct BackendOptions {
  /// Register allocation policy; Tier-0 sets RegAlloc.Fast.
  RegAllocOptions RegAlloc;
};

/// Compiles \p F for \p Target into an executable machine function. \p F
/// must be a void kernel with all calls inlined (runO3 guarantees this,
/// in both its Full and Fast presets).
mcode::MachineFunction compileKernel(pir::Function &F,
                                     const TargetInfo &Target,
                                     BackendStats *Stats = nullptr,
                                     const BackendOptions &Options = {});

/// Convenience: compile and serialize.
std::vector<uint8_t> compileKernelToObject(pir::Function &F,
                                           const TargetInfo &Target,
                                           BackendStats *Stats = nullptr,
                                           const BackendOptions &Options = {});

} // namespace proteus

#endif // PROTEUS_CODEGEN_COMPILER_H
