//===- MachineIR.h - simulated GPU machine IR -------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-level program representation shared by both simulated GPU
/// targets. Before register allocation operands are virtual registers; after
/// allocation they are physical registers plus spill slots. The GPU
/// simulator executes this form directly; the perf model and hardware
/// counters classify instructions via the per-instruction flags computed
/// here (uniform => scalar ALU on the AMD-like target, spill memory ops,
/// etc.).
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_CODEGEN_MACHINEIR_H
#define PROTEUS_CODEGEN_MACHINEIR_H

#include "ir/Type.h"
#include "ir/Value.h"

#include <cstdint>
#include <string>
#include <vector>

namespace proteus {
namespace mcode {

/// Register number. Virtual before allocation, physical after.
using Reg = uint32_t;
constexpr Reg NoReg = ~0u;

/// Machine opcodes. Arithmetic/compare opcodes reuse the IR ValueKind
/// numbering through the Aux field where a sub-opcode is needed.
enum class MOp : uint8_t {
  Nop,
  MovRR,   // Dst = Src1
  MovImm,  // Dst = Imm (64-bit payload; also used for resolved globals)
  Binary,  // Dst = Src1 <Aux:ValueKind> Src2, operating width from TypeTag
  Unary,   // Dst = <Aux:ValueKind> Src1
  Cast,    // Dst = cast<Aux:ValueKind>(Src1), TypeTag = source type kind
  ICmp,    // Dst = Src1 <Aux:ICmpPred> Src2 (0/1)
  FCmp,    // Dst = Src1 <Aux:FCmpPred> Src2 (0/1)
  Sel,     // Dst = Src1 ? Src2 : Src3
  Ld,      // Dst = mem[Src1], width from TypeTag
  St,      // mem[Src2] = Src1, width from TypeTag
  PtrAdd,  // Dst = Src1 + sext(Src2) * Imm  (address MAD)
  AtomicAdd, // Dst = old mem[Src1]; mem[Src1] += Src2 (type from TypeTag)
  LdSpill, // Dst = scratch[Imm]
  StSpill, // scratch[Imm] = Src1
  ReadSpecial, // Dst = geometry register; Aux = SpecialReg
  Bar,     // block barrier
  Br,      // jump to block Imm
  CondBr,  // if (Src1 & 1) jump Imm else jump Imm2
  Ret,
  Alloca,  // Dst = thread-scratch address for local slot Imm (size Imm2)
};

/// Geometry registers readable via ReadSpecial: value = Aux/3 selects the
/// register, Aux%3 the dimension.
enum class SpecialReg : uint8_t {
  TidX = 0, TidY, TidZ,
  CtaidX, CtaidY, CtaidZ,
  NtidX, NtidY, NtidZ,
  NctaidX, NctaidY, NctaidZ,
};

/// One machine instruction. Fixed shape keeps the executor's decode trivial.
struct MachineInstr {
  MOp Op = MOp::Nop;
  /// Operating type (width + int/fp) for Binary/Unary/Ld/St/Cast/AtomicAdd.
  pir::Type::Kind TypeTag = pir::Type::Kind::I64;
  /// Sub-opcode: ValueKind for Binary/Unary/Cast, predicate for ICmp/FCmp,
  /// SpecialReg for ReadSpecial.
  uint16_t Aux = 0;
  /// True when the result is block-uniform (same for every lane): classified
  /// as scalar-ALU work on the AMD-like target.
  bool Uniform = false;
  Reg Dst = NoReg;
  Reg Src1 = NoReg;
  Reg Src2 = NoReg;
  Reg Src3 = NoReg;
  int64_t Imm = 0;
  int32_t Imm2 = 0;
};

/// A straight-line run of machine instructions (terminated by Br/CondBr/Ret).
struct MachineBlock {
  std::string Name;
  std::vector<MachineInstr> Instrs;
};

/// Parameter metadata needed to marshal launch arguments into registers.
/// Before allocation ArgReg is a virtual register; afterwards it is either a
/// physical register, or NoReg with SpillSlot >= 0 when the parameter lives
/// in scratch (the launcher initializes the slot).
struct MachineParam {
  pir::Type::Kind TypeKind;
  Reg ArgReg;
  int32_t SpillSlot = -1;
};

/// Relocation: instruction (block, index) whose MovImm payload must be
/// patched with the device address of a global symbol at module load time.
/// Produced only by AOT compilation; the JIT links globals before codegen.
struct Relocation {
  uint32_t Block;
  uint32_t InstrIndex;
  std::string Symbol;
};

/// A compiled kernel in machine form.
struct MachineFunction {
  std::string Name;
  std::vector<MachineParam> Params;
  std::vector<MachineBlock> Blocks;
  std::vector<Relocation> Relocs;

  /// Virtual register count before allocation; physical register count in
  /// use after allocation (includes reserved spill temporaries).
  uint32_t NumRegs = 0;

  /// Number of 8-byte spill slots after register allocation.
  uint32_t NumSpillSlots = 0;

  /// Bytes of thread-local scratch used by allocas.
  uint32_t LocalBytes = 0;

  /// Launch bounds the kernel was compiled under (0 = unbounded/default).
  uint32_t LaunchBoundsThreads = 0;
  uint32_t LaunchBoundsMinBlocks = 1;

  /// True once registers are physical.
  bool Allocated = false;

  size_t totalInstructions() const {
    size_t N = 0;
    for (const MachineBlock &B : Blocks)
      N += B.Instrs.size();
    return N;
  }
};

/// Mnemonic for one machine opcode (diagnostics and the PTX-like printer).
const char *mopName(MOp Op);

/// Disassembles \p MF to text (testing/debugging).
std::string printMachineFunction(const MachineFunction &MF);

} // namespace mcode
} // namespace proteus

#endif // PROTEUS_CODEGEN_MACHINEIR_H
