//===- Ptx.cpp - PTX-like textual assembly step ---------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "codegen/Ptx.h"

#include "support/StringUtils.h"

#include <cstdlib>
#include <sstream>
#include <unordered_map>
#include <vector>

using namespace proteus;
using namespace proteus::mcode;

namespace {

const char *typeTagName(pir::Type::Kind K) {
  switch (K) {
  case pir::Type::Kind::Void:
    return "void";
  case pir::Type::Kind::I1:
    return "pred";
  case pir::Type::Kind::I32:
    return "s32";
  case pir::Type::Kind::I64:
    return "s64";
  case pir::Type::Kind::F32:
    return "f32";
  case pir::Type::Kind::F64:
    return "f64";
  case pir::Type::Kind::Ptr:
    return "u64";
  }
  return "u64";
}

int typeTagFromName(const std::string &S) {
  if (S == "void")
    return static_cast<int>(pir::Type::Kind::Void);
  if (S == "pred")
    return static_cast<int>(pir::Type::Kind::I1);
  if (S == "s32")
    return static_cast<int>(pir::Type::Kind::I32);
  if (S == "s64")
    return static_cast<int>(pir::Type::Kind::I64);
  if (S == "f32")
    return static_cast<int>(pir::Type::Kind::F32);
  if (S == "f64")
    return static_cast<int>(pir::Type::Kind::F64);
  if (S == "u64")
    return static_cast<int>(pir::Type::Kind::Ptr);
  return -1;
}

void printReg(std::ostringstream &OS, Reg R) {
  if (R == NoReg)
    OS << " _";
  else
    OS << " %r" << R;
}

} // namespace

std::string proteus::printPtx(const MachineFunction &MF) {
  std::ostringstream OS;
  OS << "//\n// ptx-sim module (generated)\n//\n";
  OS << ".version 8.0\n.target sm_70\n.address_size 64\n\n";
  OS << ".visible .entry " << MF.Name << "\n";
  if (MF.LaunchBoundsThreads)
    OS << ".maxntid " << MF.LaunchBoundsThreads << ", 1, 1\n"
       << ".minnctapersm " << MF.LaunchBoundsMinBlocks << "\n";
  OS << ".reg " << MF.NumRegs << "\n";
  OS << ".localbytes " << MF.LocalBytes << "\n";
  OS << ".params";
  for (const MachineParam &P : MF.Params)
    OS << " " << typeTagName(P.TypeKind) << ":%r" << P.ArgReg;
  OS << "\n";
  for (const Relocation &R : MF.Relocs)
    OS << ".reloc " << R.Block << " " << R.InstrIndex << " " << R.Symbol
       << "\n";
  OS << "{\n";
  for (size_t B = 0; B != MF.Blocks.size(); ++B) {
    OS << "$L" << B << ": // " << MF.Blocks[B].Name << "\n";
    for (const MachineInstr &MI : MF.Blocks[B].Instrs) {
      OS << "  " << mopName(MI.Op) << "." << typeTagName(MI.TypeTag) << "."
         << MI.Aux << "." << (MI.Uniform ? "u" : "d");
      printReg(OS, MI.Dst);
      printReg(OS, MI.Src1);
      printReg(OS, MI.Src2);
      printReg(OS, MI.Src3);
      OS << " " << MI.Imm << " " << MI.Imm2 << ";\n";
    }
  }
  OS << "}\n";
  return OS.str();
}

PtxAssembleResult proteus::assemblePtx(const std::string &Text) {
  PtxAssembleResult Out;
  MachineFunction &MF = Out.MF;
  auto fail = [&](const std::string &Msg) {
    Out.Ok = false;
    Out.Error = Msg;
    return Out;
  };

  // Build the mnemonic lookup once.
  static const auto &OpByName = *[] {
    auto *M = new std::unordered_map<std::string, MOp>();
    for (int O = 0; O <= static_cast<int>(MOp::Alloca); ++O)
      (*M)[mopName(static_cast<MOp>(O))] = static_cast<MOp>(O);
    return M;
  }();

  std::istringstream In(Text);
  std::string Line;
  int CurBlock = -1;
  while (std::getline(In, Line)) {
    std::string_view L = trim(Line);
    if (L.empty() || startsWith(L, "//") || L == "{" || L == "}")
      continue;
    if (startsWith(L, ".visible .entry ")) {
      MF.Name = std::string(trim(L.substr(16)));
      continue;
    }
    if (startsWith(L, ".maxntid ")) {
      MF.LaunchBoundsThreads =
          static_cast<uint32_t>(std::strtoul(L.data() + 9, nullptr, 10));
      continue;
    }
    if (startsWith(L, ".minnctapersm ")) {
      MF.LaunchBoundsMinBlocks =
          static_cast<uint32_t>(std::strtoul(L.data() + 14, nullptr, 10));
      continue;
    }
    if (startsWith(L, ".reg ")) {
      MF.NumRegs =
          static_cast<uint32_t>(std::strtoul(L.data() + 5, nullptr, 10));
      continue;
    }
    if (startsWith(L, ".localbytes ")) {
      MF.LocalBytes =
          static_cast<uint32_t>(std::strtoul(L.data() + 12, nullptr, 10));
      continue;
    }
    if (startsWith(L, ".params")) {
      for (std::string_view Tok : split(L.substr(7), ' ')) {
        Tok = trim(Tok);
        if (Tok.empty())
          continue;
        size_t Colon = Tok.find(':');
        if (Colon == std::string_view::npos || Tok.size() < Colon + 4 ||
            Tok[Colon + 1] != '%' || Tok[Colon + 2] != 'r')
          return fail("bad .params entry");
        int TT = typeTagFromName(std::string(Tok.substr(0, Colon)));
        if (TT < 0)
          return fail("bad parameter type");
        MachineParam P;
        P.TypeKind = static_cast<pir::Type::Kind>(TT);
        P.ArgReg = static_cast<Reg>(
            std::strtoul(std::string(Tok.substr(Colon + 3)).c_str(), nullptr,
                         10));
        MF.Params.push_back(P);
      }
      continue;
    }
    if (startsWith(L, ".reloc ")) {
      std::vector<std::string_view> Parts = split(trim(L.substr(7)), ' ');
      if (Parts.size() != 3)
        return fail("bad .reloc");
      Relocation R;
      R.Block = static_cast<uint32_t>(
          std::strtoul(std::string(Parts[0]).c_str(), nullptr, 10));
      R.InstrIndex = static_cast<uint32_t>(
          std::strtoul(std::string(Parts[1]).c_str(), nullptr, 10));
      R.Symbol = std::string(Parts[2]);
      MF.Relocs.push_back(std::move(R));
      continue;
    }
    if (startsWith(L, ".version") || startsWith(L, ".target") ||
        startsWith(L, ".address_size"))
      continue;
    if (startsWith(L, "$L")) {
      // Label: "$L<N>: // name"
      size_t Colon = L.find(':');
      if (Colon == std::string_view::npos)
        return fail("bad label");
      CurBlock = static_cast<int>(
          std::strtoul(std::string(L.substr(2, Colon - 2)).c_str(), nullptr,
                       10));
      if (CurBlock != static_cast<int>(MF.Blocks.size()))
        return fail("labels out of order");
      MachineBlock MB;
      size_t NamePos = L.find("// ");
      if (NamePos != std::string_view::npos)
        MB.Name = std::string(L.substr(NamePos + 3));
      MF.Blocks.push_back(std::move(MB));
      continue;
    }
    // Instruction line: "<mop>.<type>.<aux>.<u|d> %rD %r1 %r2 %r3 imm imm2;"
    if (CurBlock < 0)
      return fail("instruction before first label");
    std::string_view Body = L;
    if (!Body.empty() && Body.back() == ';')
      Body.remove_suffix(1);
    std::vector<std::string_view> Tokens;
    for (std::string_view T : split(Body, ' ')) {
      T = trim(T);
      if (!T.empty())
        Tokens.push_back(T);
    }
    if (Tokens.size() != 7)
      return fail("bad instruction arity: " + std::string(L));
    std::vector<std::string_view> OpParts = split(Tokens[0], '.');
    // The mnemonic itself may contain dots (e.g. ld.global): the trailing
    // three components are type, aux, uniformity.
    if (OpParts.size() < 4)
      return fail("bad opcode format");
    std::string UniStr(OpParts.back());
    OpParts.pop_back();
    std::string AuxStr(OpParts.back());
    OpParts.pop_back();
    std::string TypeStr(OpParts.back());
    OpParts.pop_back();
    std::string Mnemonic;
    for (size_t I = 0; I != OpParts.size(); ++I) {
      if (I)
        Mnemonic += '.';
      Mnemonic += std::string(OpParts[I]);
    }
    auto OpIt = OpByName.find(Mnemonic);
    if (OpIt == OpByName.end())
      return fail("unknown mnemonic '" + Mnemonic + "'");
    int TT = typeTagFromName(TypeStr);
    if (TT < 0)
      return fail("bad type suffix");
    MachineInstr MI;
    MI.Op = OpIt->second;
    MI.TypeTag = static_cast<pir::Type::Kind>(TT);
    MI.Aux = static_cast<uint16_t>(std::strtoul(AuxStr.c_str(), nullptr, 10));
    MI.Uniform = UniStr == "u";
    auto parseReg = [&](std::string_view T, Reg &R) {
      if (T == "_") {
        R = NoReg;
        return true;
      }
      if (T.size() < 3 || T[0] != '%' || T[1] != 'r')
        return false;
      R = static_cast<Reg>(
          std::strtoul(std::string(T.substr(2)).c_str(), nullptr, 10));
      return true;
    };
    if (!parseReg(Tokens[1], MI.Dst) || !parseReg(Tokens[2], MI.Src1) ||
        !parseReg(Tokens[3], MI.Src2) || !parseReg(Tokens[4], MI.Src3))
      return fail("bad register token");
    MI.Imm = std::strtoll(std::string(Tokens[5]).c_str(), nullptr, 10);
    MI.Imm2 = static_cast<int32_t>(
        std::strtol(std::string(Tokens[6]).c_str(), nullptr, 10));
    MF.Blocks[static_cast<size_t>(CurBlock)].Instrs.push_back(MI);
  }
  if (MF.Name.empty() || MF.Blocks.empty())
    return fail("missing entry or body");
  Out.Ok = true;
  return Out;
}
