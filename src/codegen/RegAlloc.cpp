//===- RegAlloc.cpp - linear-scan register allocation ---------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Pipeline: global instruction numbering -> per-block liveness (iterative
// backward dataflow over register bitsets) -> live intervals -> Poletto/
// Sarkar linear scan with furthest-end spilling -> rewrite (spilled virtual
// registers load/store through reserved temporaries).
//
//===----------------------------------------------------------------------===//

#include "codegen/RegAlloc.h"

#include "support/Error.h"

#include <algorithm>
#include <functional>
#include <vector>

using namespace proteus;
using namespace proteus::mcode;

namespace {

/// Dense bitset over virtual registers.
class RegSet {
public:
  explicit RegSet(size_t N) : Words((N + 63) / 64, 0) {}

  bool test(Reg R) const { return Words[R >> 6] >> (R & 63) & 1; }
  void set(Reg R) { Words[R >> 6] |= 1ULL << (R & 63); }
  void reset(Reg R) { Words[R >> 6] &= ~(1ULL << (R & 63)); }

  /// this |= O; returns true if anything changed.
  bool unionWith(const RegSet &O) {
    bool Changed = false;
    for (size_t I = 0; I != Words.size(); ++I) {
      uint64_t New = Words[I] | O.Words[I];
      Changed |= New != Words[I];
      Words[I] = New;
    }
    return Changed;
  }

  template <typename Fn> void forEach(Fn F) const {
    for (size_t I = 0; I != Words.size(); ++I) {
      uint64_t W = Words[I];
      while (W) {
        unsigned B = static_cast<unsigned>(__builtin_ctzll(W));
        F(static_cast<Reg>(I * 64 + B));
        W &= W - 1;
      }
    }
  }

private:
  std::vector<uint64_t> Words;
};

void forEachUse(const MachineInstr &MI, const std::function<void(Reg)> &F) {
  if (MI.Src1 != NoReg)
    F(MI.Src1);
  if (MI.Src2 != NoReg)
    F(MI.Src2);
  if (MI.Src3 != NoReg)
    F(MI.Src3);
}

struct Interval {
  Reg VReg;
  uint32_t Start;
  uint32_t End;
};

} // namespace

RegAllocResult proteus::allocateRegisters(MachineFunction &MF,
                                          unsigned RegisterBudget,
                                          const RegAllocOptions &Options) {
  if (MF.Allocated)
    reportFatalError("regalloc: function already allocated");
  if (RegisterBudget < 8)
    RegisterBudget = 8;
  const unsigned NumSpillTemps = 3;
  const unsigned NumAllocatable = RegisterBudget - NumSpillTemps;

  const uint32_t NumVRegs = MF.NumRegs;
  const size_t NumBlocks = MF.Blocks.size();

  // --- Global instruction numbering --------------------------------------
  std::vector<uint32_t> BlockStart(NumBlocks), BlockEnd(NumBlocks);
  uint32_t Pos = 0;
  for (size_t B = 0; B != NumBlocks; ++B) {
    BlockStart[B] = Pos;
    Pos += static_cast<uint32_t>(MF.Blocks[B].Instrs.size());
    BlockEnd[B] = Pos;
  }

  // --- Live intervals ------------------------------------------------------
  constexpr uint32_t NoPos = ~0u;
  std::vector<uint32_t> IvStart(NumVRegs, NoPos), IvEnd(NumVRegs, 0);
  auto extend = [&](Reg R, uint32_t P) {
    if (IvStart[R] == NoPos || P < IvStart[R])
      IvStart[R] = P;
    if (P > IvEnd[R])
      IvEnd[R] = P;
  };
  if (Options.Fast) {
    // Tier-0 interval approximation in one forward pass, no dataflow.
    // A value whose every reference sits in a single block *and* whose
    // first reference is its definition cannot be live around a back edge,
    // so its [first-ref, last-ref] range is exact. Everything else is
    // conservatively live for the whole function — always safe (a
    // cross-block value may be live around any loop), just greedier on
    // registers than the full liveness fixpoint.
    const uint32_t LastPos = Pos == 0 ? 0 : Pos - 1;
    std::vector<uint32_t> FirstBlock(NumVRegs, NoPos);
    std::vector<bool> CrossBlock(NumVRegs, false);
    std::vector<bool> FirstIsDef(NumVRegs, false);
    auto reference = [&](Reg R, uint32_t B, uint32_t P, bool IsDef) {
      if (FirstBlock[R] == NoPos) {
        FirstBlock[R] = B;
        FirstIsDef[R] = IsDef;
      } else if (FirstBlock[R] != B) {
        CrossBlock[R] = true;
      }
      extend(R, P);
    };
    for (size_t B = 0; B != NumBlocks; ++B) {
      const auto &Instrs = MF.Blocks[B].Instrs;
      for (size_t I = 0; I != Instrs.size(); ++I) {
        uint32_t P = BlockStart[B] + static_cast<uint32_t>(I);
        const MachineInstr &MI = Instrs[I];
        // Uses before the def: a reg both read and written by one
        // instruction is first referenced as a use.
        forEachUse(MI, [&](Reg R) {
          reference(R, static_cast<uint32_t>(B), P, false);
        });
        if (MI.Dst != NoReg)
          reference(MI.Dst, static_cast<uint32_t>(B), P, true);
      }
    }
    for (Reg R = 0; R != NumVRegs; ++R)
      if (IvStart[R] != NoPos && (CrossBlock[R] || !FirstIsDef[R])) {
        IvStart[R] = 0;
        IvEnd[R] = LastPos;
      }
  } else {
    // --- Successor map ----------------------------------------------------
    std::vector<std::vector<uint32_t>> Succs(NumBlocks);
    for (size_t B = 0; B != NumBlocks; ++B) {
      if (MF.Blocks[B].Instrs.empty())
        continue;
      const MachineInstr &Term = MF.Blocks[B].Instrs.back();
      if (Term.Op == MOp::Br)
        Succs[B].push_back(static_cast<uint32_t>(Term.Imm));
      else if (Term.Op == MOp::CondBr) {
        Succs[B].push_back(static_cast<uint32_t>(Term.Imm));
        Succs[B].push_back(static_cast<uint32_t>(Term.Imm2));
      }
    }

    // --- Liveness ----------------------------------------------------------
    std::vector<RegSet> LiveIn(NumBlocks, RegSet(NumVRegs));
    std::vector<RegSet> LiveOut(NumBlocks, RegSet(NumVRegs));
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (size_t B = NumBlocks; B-- > 0;) {
        RegSet Out(NumVRegs);
        for (uint32_t S : Succs[B])
          Out.unionWith(LiveIn[S]);
        Changed |= LiveOut[B].unionWith(Out);
        // In = (Out - defs) + uses, computed backward through the block.
        RegSet In = LiveOut[B];
        const auto &Instrs = MF.Blocks[B].Instrs;
        for (size_t I = Instrs.size(); I-- > 0;) {
          const MachineInstr &MI = Instrs[I];
          if (MI.Dst != NoReg)
            In.reset(MI.Dst);
          forEachUse(MI, [&](Reg R) { In.set(R); });
        }
        Changed |= LiveIn[B].unionWith(In);
      }
    }

    for (size_t B = 0; B != NumBlocks; ++B) {
      const auto &Instrs = MF.Blocks[B].Instrs;
      LiveIn[B].forEach([&](Reg R) { extend(R, BlockStart[B]); });
      LiveOut[B].forEach([&](Reg R) {
        extend(R, BlockEnd[B] == 0 ? 0 : BlockEnd[B] - 1);
      });
      for (size_t I = 0; I != Instrs.size(); ++I) {
        uint32_t P = BlockStart[B] + static_cast<uint32_t>(I);
        const MachineInstr &MI = Instrs[I];
        if (MI.Dst != NoReg)
          extend(MI.Dst, P);
        forEachUse(MI, [&](Reg R) { extend(R, P); });
      }
    }
  }

  // Parameters are written at launch (position 0): their intervals must
  // cover [0, last use] so no other interval reuses their register earlier.
  for (const MachineParam &P : MF.Params)
    if (IvStart[P.ArgReg] != NoPos)
      IvStart[P.ArgReg] = 0;

  std::vector<Interval> Intervals;
  for (Reg R = 0; R != NumVRegs; ++R)
    if (IvStart[R] != NoPos)
      Intervals.push_back(Interval{R, IvStart[R], IvEnd[R]});
  std::sort(Intervals.begin(), Intervals.end(),
            [](const Interval &A, const Interval &B) {
              return A.Start < B.Start ||
                     (A.Start == B.Start && A.VReg < B.VReg);
            });

  // --- Rematerialization table -------------------------------------------
  // Values defined exactly once by an immediate move are never reloaded
  // from scratch: their uses re-emit the immediate (free in the ISA model),
  // and their defs need no spill store — like LLVM's remat of constants.
  std::vector<int8_t> DefCount(NumVRegs, 0);
  std::vector<int64_t> RematImm(NumVRegs, 0);
  std::vector<bool> Remat(NumVRegs, false);
  // Fast (Tier-0) mode skips rematerialization entirely: every spill gets a
  // scratch slot and a plain reload, saving the def-count and relocation
  // scans on the launch-visible path.
  if (!Options.Fast) {
    for (const MachineBlock &MB : MF.Blocks)
      for (const MachineInstr &MI : MB.Instrs)
        if (MI.Dst != NoReg && DefCount[MI.Dst] < 2) {
          ++DefCount[MI.Dst];
          if (MI.Op == MOp::MovImm) {
            RematImm[MI.Dst] = MI.Imm;
            Remat[MI.Dst] = true;
          } else {
            Remat[MI.Dst] = false;
          }
        }
    for (Reg R = 0; R != NumVRegs; ++R)
      if (DefCount[R] > 1)
        Remat[R] = false;

    // A MovImm whose payload is patched by a relocation (device global
    // address) must stay in place: its uses cannot re-emit the immediate.
    for (const Relocation &Rel : MF.Relocs) {
      if (Rel.Block >= MF.Blocks.size() ||
          Rel.InstrIndex >= MF.Blocks[Rel.Block].Instrs.size())
        continue;
      const MachineInstr &MI = MF.Blocks[Rel.Block].Instrs[Rel.InstrIndex];
      if (MI.Dst != NoReg)
        Remat[MI.Dst] = false;
    }
  }

  // --- Linear scan ----------------------------------------------------------
  RegAllocResult Result;
  std::vector<Reg> Assignment(NumVRegs, NoReg); // physical reg or NoReg
  std::vector<int32_t> SpillSlot(NumVRegs, -1);
  std::vector<bool> FreePhys(NumAllocatable, true);
  // Active intervals sorted by increasing end.
  std::vector<Interval> Active;
  uint32_t MaxPhysUsed = 0;
  uint32_t NextSlot = 0;

  auto expireBefore = [&](uint32_t Start) {
    size_t Keep = 0;
    for (size_t I = 0; I != Active.size(); ++I) {
      if (Active[I].End >= Start) {
        Active[Keep++] = Active[I];
      } else {
        FreePhys[Assignment[Active[I].VReg]] = true;
      }
    }
    Active.resize(Keep);
  };

  for (const Interval &Iv : Intervals) {
    expireBefore(Iv.Start);
    // Find a free physical register.
    Reg Phys = NoReg;
    for (unsigned P = 0; P != NumAllocatable; ++P)
      if (FreePhys[P]) {
        Phys = P;
        break;
      }
    if (Phys != NoReg) {
      FreePhys[Phys] = false;
      Assignment[Iv.VReg] = Phys;
      MaxPhysUsed = std::max(MaxPhysUsed, Phys + 1);
      auto It = std::upper_bound(
          Active.begin(), Active.end(), Iv,
          [](const Interval &A, const Interval &B) { return A.End < B.End; });
      Active.insert(It, Iv);
      continue;
    }
    // Spill: the active interval with the furthest end, or this one.
    // Rematerializable values need no scratch slot. Fast mode skips the
    // victim search (spill-cost tuning) and always spills the incoming
    // interval itself.
    if (!Options.Fast && !Active.empty() && Active.back().End > Iv.End) {
      Interval Victim = Active.back();
      Active.pop_back();
      Assignment[Iv.VReg] = Assignment[Victim.VReg];
      Assignment[Victim.VReg] = NoReg;
      if (!Remat[Victim.VReg])
        SpillSlot[Victim.VReg] = static_cast<int32_t>(NextSlot++);
      auto It = std::upper_bound(
          Active.begin(), Active.end(), Iv,
          [](const Interval &A, const Interval &B) { return A.End < B.End; });
      Active.insert(It, Iv);
    } else if (!Remat[Iv.VReg]) {
      SpillSlot[Iv.VReg] = static_cast<int32_t>(NextSlot++);
    }
    ++Result.SpilledValues;
  }

  // --- Rewrite ---------------------------------------------------------------
  const Reg Temp0 = NumAllocatable;
  // Spill code shifts instruction positions; relocations index into blocks,
  // so track the old->new index mapping per block.
  std::vector<std::vector<uint32_t>> IndexMaps(NumBlocks);
  for (size_t B = 0; B != NumBlocks; ++B) {
    std::vector<MachineInstr> NewInstrs;
    NewInstrs.reserve(MF.Blocks[B].Instrs.size());
    IndexMaps[B].reserve(MF.Blocks[B].Instrs.size());
    for (MachineInstr MI : MF.Blocks[B].Instrs) {
      IndexMaps[B].push_back(~0u); // patched below once MI is placed
      Reg Temps[3];
      unsigned TempCount = 0;
      Reg SpilledSrc[3] = {NoReg, NoReg, NoReg};
      Reg SrcTemp[3] = {NoReg, NoReg, NoReg};
      auto mapSrc = [&](Reg &Src, bool SrcUniform) {
        if (Src == NoReg)
          return;
        if (Assignment[Src] != NoReg) {
          Src = Assignment[Src];
          return;
        }
        // Reload from scratch (or rematerialize an immediate); reuse a temp
        // if the same vreg is already loaded for this instruction.
        for (unsigned K = 0; K != TempCount; ++K)
          if (SpilledSrc[K] == Src) {
            Src = SrcTemp[K];
            return;
          }
        Reg T = Temp0 + TempCount;
        MachineInstr Ld;
        if (Remat[Src]) {
          Ld.Op = MOp::MovImm;
          Ld.Dst = T;
          Ld.Imm = RematImm[Src];
          Ld.Uniform = SrcUniform;
        } else {
          Ld.Op = MOp::LdSpill;
          Ld.Dst = T;
          Ld.Imm = SpillSlot[Src];
          Ld.Uniform = SrcUniform;
          ++Result.SpillLoads;
        }
        NewInstrs.push_back(Ld);
        SpilledSrc[TempCount] = Src;
        SrcTemp[TempCount] = T;
        Temps[TempCount] = T;
        (void)Temps;
        ++TempCount;
        Src = T;
      };
      mapSrc(MI.Src1, MI.Uniform);
      mapSrc(MI.Src2, MI.Uniform);
      mapSrc(MI.Src3, MI.Uniform);
      bool DstSpilled = false;
      int64_t DstSlot = 0;
      if (MI.Dst != NoReg) {
        if (Assignment[MI.Dst] != NoReg) {
          MI.Dst = Assignment[MI.Dst];
        } else if (Remat[MI.Dst]) {
          // Rematerializable definition: uses re-emit the immediate, so the
          // defining move can vanish entirely.
          IndexMaps[B].back() = static_cast<uint32_t>(NewInstrs.size());
          MachineInstr Dead;
          Dead.Op = MOp::Nop;
          NewInstrs.push_back(Dead);
          continue;
        } else {
          DstSpilled = true;
          DstSlot = SpillSlot[MI.Dst];
          MI.Dst = Temp0 + 2; // dedicated def temp
        }
      }
      bool WasUniform = MI.Uniform;
      IndexMaps[B].back() = static_cast<uint32_t>(NewInstrs.size());
      NewInstrs.push_back(MI);
      if (DstSpilled) {
        MachineInstr St;
        St.Op = MOp::StSpill;
        St.Src1 = Temp0 + 2;
        St.Imm = DstSlot;
        St.Uniform = WasUniform;
        NewInstrs.push_back(St);
        ++Result.SpillStores;
      }
    }
    MF.Blocks[B].Instrs = std::move(NewInstrs);
  }

  // Remap relocation instruction indices to post-spill positions.
  for (Relocation &Rel : MF.Relocs)
    if (Rel.Block < IndexMaps.size() &&
        Rel.InstrIndex < IndexMaps[Rel.Block].size())
      Rel.InstrIndex = IndexMaps[Rel.Block][Rel.InstrIndex];

  // Rewrite parameter locations to their post-allocation homes.
  for (MachineParam &P : MF.Params) {
    Reg V = P.ArgReg;
    if (IvStart[V] == NoPos) {
      P.ArgReg = NoReg; // never used
      P.SpillSlot = -1;
    } else if (Assignment[V] != NoReg) {
      P.ArgReg = Assignment[V];
    } else {
      P.ArgReg = NoReg;
      P.SpillSlot = SpillSlot[V];
    }
  }

  Result.SpillSlots = NextSlot;
  Result.RegsUsed =
      (Result.SpillLoads || Result.SpillStores)
          ? std::max(MaxPhysUsed, Temp0 + NumSpillTemps)
          : MaxPhysUsed;
  MF.NumRegs = std::max(Result.RegsUsed, 1u);
  MF.NumSpillSlots = NextSlot;
  MF.Allocated = true;
  return Result;
}
