//===- RegAlloc.h - linear-scan register allocation -------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Liveness analysis and linear-scan register allocation with spilling.
/// The per-thread register budget comes from the target and the kernel's
/// launch bounds (see TargetInfo::registerBudget): this is the mechanism
/// through which the paper's launch-bounds specialization changes register
/// allocation, spill traffic and occupancy.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_CODEGEN_REGALLOC_H
#define PROTEUS_CODEGEN_REGALLOC_H

#include "codegen/MachineIR.h"

namespace proteus {

/// Outcome statistics of one allocation run.
struct RegAllocResult {
  uint32_t RegsUsed = 0;      // distinct physical registers
  uint32_t SpilledValues = 0; // virtual registers sent to scratch
  uint32_t SpillSlots = 0;    // 8-byte scratch slots
  uint32_t SpillLoads = 0;    // reload instructions inserted
  uint32_t SpillStores = 0;   // spill-store instructions inserted
};

/// Allocation policy knobs.
struct RegAllocOptions {
  /// Tier-0 baseline mode: a single forward pass builds approximate live
  /// intervals (block-local values get exact ranges; anything live across
  /// blocks is conservatively live for the whole function), and the scan
  /// skips rematerialization and furthest-end victim selection (a value
  /// that finds no free register spills itself). Much cheaper than the
  /// full liveness fixpoint; worse spill placement is acceptable because
  /// Tier-1 re-runs the full allocator in the background.
  bool Fast = false;
};

/// Allocates \p MF in place under \p RegisterBudget physical registers
/// (including three reserved spill temporaries). Inserts LdSpill/StSpill
/// around spilled uses/defs and rewrites all operands to physical registers.
RegAllocResult allocateRegisters(mcode::MachineFunction &MF,
                                 unsigned RegisterBudget,
                                 const RegAllocOptions &Options = {});

} // namespace proteus

#endif // PROTEUS_CODEGEN_REGALLOC_H
