//===- ISel.h - instruction selection ---------------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a fully inlined PIR kernel to machine IR with virtual registers:
/// SSA deconstruction (phi -> two-stage copies), constant materialization,
/// global-variable relocations, and block-uniformity classification (the
/// basis of the SALU/VALU counter split on the AMD-like target).
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_CODEGEN_ISEL_H
#define PROTEUS_CODEGEN_ISEL_H

#include "codegen/MachineIR.h"

namespace pir {
class Function;
} // namespace pir

namespace proteus {

/// Lowers \p F (a kernel with no remaining calls) to virtual-register
/// machine code. Fatal error on unsupported IR (calls, non-void returns).
mcode::MachineFunction selectInstructions(pir::Function &F);

/// Computes the Uniform flag of every instruction of \p MF by forward
/// dataflow over virtual registers: kernel parameters, immediates and block
/// geometry reads (other than threadIdx) are block-uniform; loads, atomics,
/// alloca addresses and threadIdx are divergent; everything else inherits.
void computeUniformity(mcode::MachineFunction &MF);

} // namespace proteus

#endif // PROTEUS_CODEGEN_ISEL_H
