//===- Compiler.cpp - kernel compilation driver ---------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "codegen/Compiler.h"

#include "codegen/ISel.h"
#include "codegen/Ptx.h"
#include "ir/Function.h"
#include "support/Error.h"
#include "support/Timer.h"
#include "support/Trace.h"

using namespace proteus;
using namespace proteus::mcode;

MachineFunction proteus::compileKernel(pir::Function &F,
                                       const TargetInfo &Target,
                                       BackendStats *Stats,
                                       const BackendOptions &Options) {
  BackendStats Local;
  BackendStats &S = Stats ? *Stats : Local;

  Timer T;
  MachineFunction MF = [&] {
    trace::Span Sp("backend.isel", "backend");
    return selectInstructions(F);
  }();
  S.ISelSeconds = T.seconds();

  if (Target.EmitsPtx) {
    // NVIDIA path: print PTX-like text and re-assemble it — the extra step
    // the real toolchain performs in ptxas / nvPTXCompilerCompile.
    T.reset();
    std::string Ptx = [&] {
      trace::Span Sp("backend.ptx_emit", "backend");
      return printPtx(MF);
    }();
    S.PtxEmitSeconds = T.seconds();
    T.reset();
    PtxAssembleResult Asm = [&] {
      trace::Span Sp("backend.ptx_asm", "backend");
      return assemblePtx(Ptx);
    }();
    S.PtxAsmSeconds = T.seconds();
    if (!Asm.Ok)
      reportFatalError("ptx-sim assembler rejected generated code: " +
                       Asm.Error);
    MF = std::move(Asm.MF);
  }

  S.RegisterBudget = Target.registerBudget(F.getLaunchBounds());
  T.reset();
  {
    trace::Span Sp("backend.regalloc", "backend");
    S.RA = allocateRegisters(MF, S.RegisterBudget, Options.RegAlloc);
  }
  S.RegAllocSeconds = T.seconds();
  return MF;
}

std::vector<uint8_t> proteus::compileKernelToObject(pir::Function &F,
                                                    const TargetInfo &Target,
                                                    BackendStats *Stats,
                                                    const BackendOptions &Options) {
  MachineFunction MF = compileKernel(F, Target, Stats, Options);
  return writeObject(MF, Target.Arch);
}
