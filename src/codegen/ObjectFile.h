//===- ObjectFile.h - compiled kernel container ------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary container for a compiled (register-allocated) kernel. This is the
/// unit stored by the two-level code cache: the in-memory cache holds the
/// decoded form, the persistent cache stores these bytes in
/// cache-jit-<hash>.o files. AOT device images embed the same containers.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_CODEGEN_OBJECTFILE_H
#define PROTEUS_CODEGEN_OBJECTFILE_H

#include "codegen/MachineIR.h"
#include "codegen/Target.h"

#include <string>
#include <vector>

namespace proteus {

/// Serializes an allocated machine function (plus its target) to bytes.
std::vector<uint8_t> writeObject(const mcode::MachineFunction &MF,
                                 GpuArch Arch);

/// Result of decoding an object.
struct ObjectReadResult {
  mcode::MachineFunction MF;
  GpuArch Arch = GpuArch::AmdGcnSim;
  bool Ok = false;
  std::string Error;
};

/// Decodes object bytes; returns an error (never crashes) on corrupt or
/// truncated input, since persistent-cache files come from disk.
ObjectReadResult readObject(const std::vector<uint8_t> &Bytes);

} // namespace proteus

#endif // PROTEUS_CODEGEN_OBJECTFILE_H
