//===- Target.h - simulated GPU target descriptions -------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Descriptions of the two simulated GPU targets. They encode the
/// architectural asymmetries the paper's evaluation hinges on:
///
///  * amdgcn-sim (MI250X-like): the backend emits binary code directly.
///    Without launch bounds the register allocator assumes the worst-case
///    1024 threads/block, leaving only a small per-thread register budget —
///    which is why LB specialization recovers large wins on AMD (paper
///    sections 4.5, RSBENCH/SW4CK).
///
///  * nvptx-sim (V100-like): the backend emits PTX-like text that a separate
///    assembler lowers to binary (the extra JIT step the paper measures),
///    and its register allocator's *default* thread assumption is already
///    aggressive ("NVIDIA's proprietary register allocator already optimizes
///    effectively"), so LB rarely changes the outcome except for kernels
///    with extreme pressure (RSBENCH).
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_CODEGEN_TARGET_H
#define PROTEUS_CODEGEN_TARGET_H

#include "ir/Function.h"

#include <optional>
#include <string>

namespace proteus {

/// Which simulated vendor architecture to compile for.
enum class GpuArch { AmdGcnSim, NvPtxSim };

const char *gpuArchName(GpuArch A);

/// Static description of one simulated GPU target.
struct TargetInfo {
  GpuArch Arch;
  std::string Name;

  /// True when code generation goes through the PTX-like textual step
  /// (printer + assembler) instead of direct binary emission.
  bool EmitsPtx;

  unsigned WaveSize;          // lanes per wave/warp
  unsigned NumCUs;            // compute units / SMs
  unsigned RegFilePerCU;      // registers per CU shared by resident threads
  unsigned MaxRegsPerThread;  // ISA addressing limit
  unsigned MinRegsPerThread;  // floor the allocator may not go below
  unsigned MaxThreadsPerCU;   // occupancy limit independent of registers
  unsigned MaxWavesPerCU;     // scheduler slots
  /// Threads/block the register allocator must assume when the kernel has
  /// no launch bounds (the conservative AOT default the paper describes).
  unsigned DefaultAssumedThreads;
  double ClockGHz;
  double MemBandwidthGBs; // host<->device copy model
  uint64_t L2Bytes;       // shared L2 capacity (cache model + spill pollution)
  /// FP32 results each lane retires per clock (the rocm-perf-lab
  /// `fp32_valu_width` idea: CDNA-style dual-issue/packed-FP32 VALUs retire
  /// more than one FLOP per lane-cycle). Scales the roofline's compute
  /// ceiling, so the two sim arches have genuinely different ridge points.
  unsigned Fp32ValuWidth;

  /// Peak attainable compute: every lane of every CU retiring
  /// Fp32ValuWidth FLOPs per clock.
  double peakGFlops() const {
    return static_cast<double>(NumCUs) * WaveSize * Fp32ValuWidth * ClockGHz;
  }

  /// Roofline ridge point (FLOPs/byte): the arithmetic intensity where the
  /// compute and bandwidth ceilings intersect.
  double ridgeFlopsPerByte() const {
    return MemBandwidthGBs > 0 ? peakGFlops() / MemBandwidthGBs : 0;
  }

  /// Per-thread register budget for the allocator given the kernel's launch
  /// bounds (paper: LB specialization "helps register allocation maximize
  /// register usage under expected thread occupancy").
  unsigned registerBudget(const std::optional<pir::LaunchBounds> &LB) const {
    unsigned Threads = DefaultAssumedThreads;
    unsigned MinBlocks = 1;
    if (LB && LB->MaxThreadsPerBlock > 0) {
      Threads = LB->MaxThreadsPerBlock;
      MinBlocks = LB->MinBlocksPerProcessor ? LB->MinBlocksPerProcessor : 1;
    }
    unsigned Budget = RegFilePerCU / std::max(1u, Threads * MinBlocks);
    if (Budget < MinRegsPerThread)
      Budget = MinRegsPerThread;
    if (Budget > MaxRegsPerThread)
      Budget = MaxRegsPerThread;
    return Budget;
  }
};

/// The MI250X-like description.
const TargetInfo &getAmdGcnSimTarget();

/// The V100-like description.
const TargetInfo &getNvPtxSimTarget();

const TargetInfo &getTarget(GpuArch A);

} // namespace proteus

#endif // PROTEUS_CODEGEN_TARGET_H
