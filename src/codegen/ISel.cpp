//===- ISel.cpp - instruction selection ----------------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "codegen/ISel.h"

#include "ir/Module.h"
#include "ir/OpSemantics.h"
#include "support/Error.h"

#include <unordered_map>

using namespace proteus;
using namespace proteus::mcode;
using namespace pir;

namespace {

class Selector {
public:
  explicit Selector(Function &F) : F(F) {}

  MachineFunction run() {
    MF.Name = F.getName();
    if (const auto &LB = F.getLaunchBounds()) {
      MF.LaunchBoundsThreads = LB->MaxThreadsPerBlock;
      MF.LaunchBoundsMinBlocks = LB->MinBlocksPerProcessor;
    }

    for (const auto &A : F.args()) {
      Reg R = newReg();
      VRegs[A.get()] = R;
      MF.Params.push_back(
          MachineParam{A->getType()->getKind(), R});
    }

    // Number blocks in layout order; create empty machine blocks.
    uint32_t Index = 0;
    for (BasicBlock &BB : F) {
      BlockIndex[&BB] = Index++;
      MachineBlock MB;
      MB.Name = BB.getName();
      MF.Blocks.push_back(std::move(MB));
    }

    // Pre-assign result registers for phis. A phi needs two-stage staging
    // (through a temp written at predecessor tails) only when some incoming
    // value is itself a phi of the same block — the classic parallel-copy
    // swap hazard. Everything else copies directly into the phi register,
    // which halves the cross-back-edge register pressure of wide
    // accumulator bands.
    for (BasicBlock &BB : F)
      for (PhiInst *Phi : BB.phis()) {
        PhiRegs[Phi] = newReg();
        VRegs[Phi] = PhiRegs[Phi];
      }
    for (BasicBlock &BB : F)
      for (PhiInst *Phi : BB.phis()) {
        bool Hazard = false;
        for (size_t K = 0; K != Phi->getNumIncoming(); ++K) {
          // Swap hazard: the incoming value is another phi of this block.
          auto *InPhi = dyn_cast<PhiInst>(Phi->getIncomingValue(K));
          if (InPhi && InPhi->getParent() == &BB)
            Hazard = true;
          // Clobber hazard: a predecessor with multiple successors writes
          // phi registers even when branching elsewhere; the phi's current
          // value may still be read on the other path.
          if (Phi->getIncomingBlock(K)->successors().size() > 1)
            Hazard = true;
        }
        if (Hazard)
          PhiTmps[Phi] = newReg();
      }

    for (BasicBlock &BB : F)
      lowerBlock(BB);

    MF.NumRegs = NextReg;
    return std::move(MF);
  }

private:
  Reg newReg() { return NextReg++; }

  MachineBlock &mblock(BasicBlock *BB) {
    return MF.Blocks[BlockIndex.at(BB)];
  }

  void emit(MachineBlock &MB, MachineInstr MI) {
    MB.Instrs.push_back(MI);
  }

  /// Returns the register holding \p V inside \p MB, materializing
  /// constants/globals on demand (cached per block).
  Reg regFor(MachineBlock &MB, Value *V) {
    auto It = VRegs.find(V);
    if (It != VRegs.end())
      return It->second;

    auto CKey = std::make_pair(&MB, V);
    auto CIt = BlockConstRegs.find(CKey);
    if (CIt != BlockConstRegs.end())
      return CIt->second;

    MachineInstr MI;
    MI.Op = MOp::MovImm;
    MI.Dst = newReg();
    if (auto *CI = dyn_cast<ConstantInt>(V)) {
      MI.Imm = static_cast<int64_t>(CI->getZExtValue());
      MI.TypeTag = CI->getType()->getKind();
    } else if (auto *CF = dyn_cast<ConstantFP>(V)) {
      uint64_t Bits = CF->getType()->isF32()
                          ? sem::boxF32(static_cast<float>(CF->getValue()))
                          : sem::boxF64(CF->getValue());
      MI.Imm = static_cast<int64_t>(Bits);
      MI.TypeTag = CF->getType()->getKind();
    } else if (auto *CP = dyn_cast<ConstantPtr>(V)) {
      MI.Imm = static_cast<int64_t>(CP->getAddress());
      MI.TypeTag = Type::Kind::Ptr;
    } else if (auto *G = dyn_cast<GlobalVariable>(V)) {
      // Address resolved at device-image load time.
      MI.Imm = 0;
      MI.TypeTag = Type::Kind::Ptr;
      MF.Relocs.push_back(Relocation{
          BlockIndex.at(CurBB), static_cast<uint32_t>(MB.Instrs.size()),
          G->getName()});
    } else {
      reportFatalError("isel: unsupported operand kind");
    }
    emit(MB, MI);
    BlockConstRegs[CKey] = MI.Dst;
    return MI.Dst;
  }

  void lowerBlock(BasicBlock &BB) {
    CurBB = &BB;
    MachineBlock &MB = mblock(&BB);

    // Phi heads: PhiReg <- PhiTmp for staged phis only.
    for (PhiInst *Phi : BB.phis()) {
      if (&BB == &F.getEntryBlock())
        reportFatalError("isel: phi in entry block");
      auto TmpIt = PhiTmps.find(Phi);
      if (TmpIt == PhiTmps.end())
        continue;
      MachineInstr MI;
      MI.Op = MOp::MovRR;
      MI.TypeTag = Phi->getType()->getKind();
      MI.Dst = PhiRegs.at(Phi);
      MI.Src1 = TmpIt->second;
      emit(MB, MI);
    }

    for (Instruction &I : BB) {
      if (isa<PhiInst>(&I))
        continue;
      if (I.isTerminator()) {
        emitPhiTmpCopies(BB, MB);
        lowerTerminator(MB, I);
        continue;
      }
      lowerInstruction(MB, I);
    }
  }

  /// At the end of \p BB (before its terminator), copy each successor phi's
  /// incoming value into its staging register (hazardous phis) or directly
  /// into the phi register. Direct writes are safe because a direct phi's
  /// incoming value is never another phi of the same successor: sources
  /// read here are either staged temps (read-only at successor heads) or
  /// values unrelated to the registers written.
  void emitPhiTmpCopies(BasicBlock &BB, MachineBlock &MB) {
    for (BasicBlock *Succ : BB.successors()) {
      // Stage 1: hazardous phis write their temps (reads happen first).
      for (PhiInst *Phi : Succ->phis()) {
        auto TmpIt = PhiTmps.find(Phi);
        if (TmpIt == PhiTmps.end())
          continue;
        Value *In = Phi->getIncomingValueForBlock(&BB);
        if (!In)
          reportFatalError("isel: phi missing incoming for predecessor");
        MachineInstr MI;
        MI.Op = MOp::MovRR;
        MI.TypeTag = Phi->getType()->getKind();
        MI.Dst = TmpIt->second;
        MI.Src1 = regFor(MB, In);
        emit(MB, MI);
      }
      // Stage 2: direct phis write their result registers.
      for (PhiInst *Phi : Succ->phis()) {
        if (PhiTmps.count(Phi))
          continue;
        Value *In = Phi->getIncomingValueForBlock(&BB);
        if (!In)
          reportFatalError("isel: phi missing incoming for predecessor");
        MachineInstr MI;
        MI.Op = MOp::MovRR;
        MI.TypeTag = Phi->getType()->getKind();
        MI.Dst = PhiRegs.at(Phi);
        MI.Src1 = regFor(MB, In);
        emit(MB, MI);
      }
    }
  }

  void lowerTerminator(MachineBlock &MB, Instruction &I) {
    MachineInstr MI;
    switch (I.getKind()) {
    case ValueKind::Br: {
      MI.Op = MOp::Br;
      MI.Imm = BlockIndex.at(cast<BranchInst>(I).getSuccessor(0));
      emit(MB, MI);
      return;
    }
    case ValueKind::CondBr: {
      auto &Br = cast<BranchInst>(I);
      MI.Op = MOp::CondBr;
      MI.Src1 = regFor(MB, Br.getCondition());
      MI.Imm = BlockIndex.at(Br.getSuccessor(0));
      MI.Imm2 = static_cast<int32_t>(BlockIndex.at(Br.getSuccessor(1)));
      emit(MB, MI);
      return;
    }
    case ValueKind::Ret: {
      if (cast<RetInst>(I).hasReturnValue())
        reportFatalError("isel: kernels must return void");
      MI.Op = MOp::Ret;
      emit(MB, MI);
      return;
    }
    default:
      proteus_unreachable("unknown terminator");
    }
  }

  void lowerInstruction(MachineBlock &MB, Instruction &I) {
    MachineInstr MI;
    switch (I.getKind()) {
    case ValueKind::ICmp: {
      auto &C = cast<ICmpInst>(I);
      MI.Op = MOp::ICmp;
      MI.TypeTag = C.getLHS()->getType()->getKind();
      MI.Aux = static_cast<uint16_t>(C.getPredicate());
      MI.Src1 = regFor(MB, C.getLHS());
      MI.Src2 = regFor(MB, C.getRHS());
      break;
    }
    case ValueKind::FCmp: {
      auto &C = cast<FCmpInst>(I);
      MI.Op = MOp::FCmp;
      MI.TypeTag = C.getLHS()->getType()->getKind();
      MI.Aux = static_cast<uint16_t>(C.getPredicate());
      MI.Src1 = regFor(MB, C.getLHS());
      MI.Src2 = regFor(MB, C.getRHS());
      break;
    }
    case ValueKind::Select: {
      MI.Op = MOp::Sel;
      MI.TypeTag = I.getType()->getKind();
      MI.Src1 = regFor(MB, I.getOperand(0));
      MI.Src2 = regFor(MB, I.getOperand(1));
      MI.Src3 = regFor(MB, I.getOperand(2));
      break;
    }
    case ValueKind::Alloca: {
      auto &A = cast<AllocaInst>(I);
      MI.Op = MOp::Alloca;
      MI.TypeTag = Type::Kind::Ptr;
      MI.Imm = MF.LocalBytes;
      MI.Imm2 = static_cast<int32_t>(A.allocationSizeBytes());
      MF.LocalBytes += A.allocationSizeBytes();
      break;
    }
    case ValueKind::Load: {
      MI.Op = MOp::Ld;
      MI.TypeTag = I.getType()->getKind();
      MI.Src1 = regFor(MB, I.getOperand(0));
      break;
    }
    case ValueKind::Store: {
      auto &S = cast<StoreInst>(I);
      MI.Op = MOp::St;
      MI.TypeTag = S.getValue()->getType()->getKind();
      MI.Src1 = regFor(MB, S.getValue());
      MI.Src2 = regFor(MB, S.getPointer());
      break;
    }
    case ValueKind::PtrAdd: {
      auto &P = cast<PtrAddInst>(I);
      MI.Op = MOp::PtrAdd;
      MI.TypeTag = P.getIndex()->getType()->getKind();
      MI.Src1 = regFor(MB, P.getBase());
      MI.Src2 = regFor(MB, P.getIndex());
      MI.Imm = P.getElemSize();
      break;
    }
    case ValueKind::AtomicAdd: {
      auto &A = cast<AtomicAddInst>(I);
      MI.Op = MOp::AtomicAdd;
      MI.TypeTag = A.getValue()->getType()->getKind();
      MI.Src1 = regFor(MB, A.getPointer());
      MI.Src2 = regFor(MB, A.getValue());
      break;
    }
    case ValueKind::ThreadIdx:
    case ValueKind::BlockIdx:
    case ValueKind::BlockDim:
    case ValueKind::GridDim: {
      auto &G = cast<GpuIndexInst>(I);
      MI.Op = MOp::ReadSpecial;
      MI.TypeTag = Type::Kind::I32;
      unsigned Base = 0;
      switch (I.getKind()) {
      case ValueKind::ThreadIdx:
        Base = 0;
        break;
      case ValueKind::BlockIdx:
        Base = 3;
        break;
      case ValueKind::BlockDim:
        Base = 6;
        break;
      default:
        Base = 9;
        break;
      }
      MI.Aux = static_cast<uint16_t>(Base + G.getDim());
      break;
    }
    case ValueKind::Barrier: {
      MI.Op = MOp::Bar;
      emit(MB, MI);
      return;
    }
    case ValueKind::Call:
      reportFatalError("isel: call survived inlining in @" + F.getName());
    default: {
      if (isa<BinaryInst>(&I)) {
        MI.Op = MOp::Binary;
        MI.TypeTag = I.getType()->getKind();
        MI.Aux = static_cast<uint16_t>(I.getKind());
        MI.Src1 = regFor(MB, I.getOperand(0));
        MI.Src2 = regFor(MB, I.getOperand(1));
        break;
      }
      if (isa<UnaryInst>(&I)) {
        MI.Op = MOp::Unary;
        MI.TypeTag = I.getType()->getKind();
        MI.Aux = static_cast<uint16_t>(I.getKind());
        MI.Src1 = regFor(MB, I.getOperand(0));
        break;
      }
      if (auto *C = dyn_cast<CastInst>(&I)) {
        MI.Op = MOp::Cast;
        // TypeTag carries the *source* type; Imm2 the destination kind.
        MI.TypeTag = C->getSource()->getType()->getKind();
        MI.Aux = static_cast<uint16_t>(I.getKind());
        MI.Imm2 = static_cast<int32_t>(I.getType()->getKind());
        MI.Src1 = regFor(MB, C->getSource());
        break;
      }
      reportFatalError("isel: unhandled instruction kind");
    }
    }
    if (!I.getType()->isVoid()) {
      MI.Dst = newReg();
      VRegs[&I] = MI.Dst;
    }
    emit(MB, MI);
  }

  Function &F;
  MachineFunction MF;
  BasicBlock *CurBB = nullptr;
  Reg NextReg = 0;
  std::unordered_map<BasicBlock *, uint32_t> BlockIndex;
  std::unordered_map<Value *, Reg> VRegs;
  std::unordered_map<PhiInst *, Reg> PhiRegs;
  std::unordered_map<PhiInst *, Reg> PhiTmps;

  struct PairHash {
    size_t operator()(const std::pair<MachineBlock *, Value *> &P) const {
      return std::hash<void *>()(P.first) * 31 ^
             std::hash<void *>()(P.second);
    }
  };
  std::unordered_map<std::pair<MachineBlock *, Value *>, Reg, PairHash>
      BlockConstRegs;
};

} // namespace

MachineFunction proteus::selectInstructions(Function &F) {
  if (F.isDeclaration())
    reportFatalError("isel: cannot select a declaration");
  MachineFunction MF = Selector(F).run();
  computeUniformity(MF);
  return MF;
}

void proteus::computeUniformity(MachineFunction &MF) {
  // Forward fixpoint over registers: a register is uniform until proven
  // divergent; instructions become divergent if any input is.
  std::vector<bool> Divergent(MF.NumRegs, false);
  bool Changed = true;
  auto markDef = [&](Reg R, bool Div) {
    if (R != NoReg && Div && !Divergent[R]) {
      Divergent[R] = true;
      return true;
    }
    return false;
  };
  while (Changed) {
    Changed = false;
    for (MachineBlock &MB : MF.Blocks) {
      for (MachineInstr &MI : MB.Instrs) {
        bool Div = false;
        switch (MI.Op) {
        case MOp::ReadSpecial:
          Div = MI.Aux <= static_cast<uint16_t>(SpecialReg::TidZ);
          break;
        case MOp::Ld:
        case MOp::AtomicAdd:
        case MOp::Alloca:
        case MOp::LdSpill:
          Div = true;
          break;
        default:
          for (Reg S : {MI.Src1, MI.Src2, MI.Src3})
            if (S != NoReg && Divergent[S])
              Div = true;
          break;
        }
        Changed |= markDef(MI.Dst, Div);
      }
    }
  }
  for (MachineBlock &MB : MF.Blocks)
    for (MachineInstr &MI : MB.Instrs) {
      bool Div = false;
      if (MI.Dst != NoReg) {
        Div = Divergent[MI.Dst];
      } else {
        for (Reg S : {MI.Src1, MI.Src2, MI.Src3})
          if (S != NoReg && Divergent[S])
            Div = true;
      }
      MI.Uniform = !Div;
    }
}
