//===- MachineIR.cpp - simulated GPU machine IR ---------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "codegen/MachineIR.h"

#include "support/Error.h"
#include "support/StringUtils.h"

#include <sstream>

using namespace proteus;
using namespace proteus::mcode;

const char *proteus::mcode::mopName(MOp Op) {
  switch (Op) {
  case MOp::Nop:
    return "nop";
  case MOp::MovRR:
    return "mov";
  case MOp::MovImm:
    return "movi";
  case MOp::Binary:
    return "bin";
  case MOp::Unary:
    return "un";
  case MOp::Cast:
    return "cvt";
  case MOp::ICmp:
    return "setp.i";
  case MOp::FCmp:
    return "setp.f";
  case MOp::Sel:
    return "selp";
  case MOp::Ld:
    return "ld.global";
  case MOp::St:
    return "st.global";
  case MOp::PtrAdd:
    return "mad.addr";
  case MOp::AtomicAdd:
    return "atom.add";
  case MOp::LdSpill:
    return "ld.local";
  case MOp::StSpill:
    return "st.local";
  case MOp::ReadSpecial:
    return "mov.sreg";
  case MOp::Bar:
    return "bar.sync";
  case MOp::Br:
    return "bra";
  case MOp::CondBr:
    return "brc";
  case MOp::Ret:
    return "ret";
  case MOp::Alloca:
    return "local.addr";
  }
  proteus_unreachable("unknown machine opcode");
}

std::string proteus::mcode::printMachineFunction(const MachineFunction &MF) {
  std::ostringstream OS;
  OS << "; machine function " << MF.Name << " regs=" << MF.NumRegs
     << " spills=" << MF.NumSpillSlots << " local=" << MF.LocalBytes << "\n";
  for (size_t B = 0; B != MF.Blocks.size(); ++B) {
    OS << "B" << B << " (" << MF.Blocks[B].Name << "):\n";
    for (const MachineInstr &MI : MF.Blocks[B].Instrs) {
      OS << "  " << mopName(MI.Op);
      OS << " t" << static_cast<int>(MI.TypeTag) << " a" << MI.Aux
         << (MI.Uniform ? " s" : " v");
      auto Emit = [&OS](const char *Tag, Reg R) {
        if (R != NoReg)
          OS << " " << Tag << R;
      };
      Emit("d", MI.Dst);
      Emit("r", MI.Src1);
      Emit("r", MI.Src2);
      Emit("r", MI.Src3);
      if (MI.Imm)
        OS << " imm=" << MI.Imm;
      if (MI.Imm2)
        OS << " imm2=" << MI.Imm2;
      OS << "\n";
    }
  }
  return OS.str();
}
