//===- ObjectFile.cpp - compiled kernel container -------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "codegen/ObjectFile.h"

#include "support/BinaryStream.h"

using namespace proteus;
using namespace proteus::mcode;

namespace {
constexpr uint32_t ObjMagic = 0x4A424F50; // "POBJ"
constexpr uint32_t ObjVersion = 1;
} // namespace

std::vector<uint8_t> proteus::writeObject(const MachineFunction &MF,
                                          GpuArch Arch) {
  ByteWriter W;
  W.writeU32(ObjMagic);
  W.writeU32(ObjVersion);
  W.writeU8(static_cast<uint8_t>(Arch));
  W.writeString(MF.Name);
  W.writeU32(MF.NumRegs);
  W.writeU32(MF.NumSpillSlots);
  W.writeU32(MF.LocalBytes);
  W.writeU32(MF.LaunchBoundsThreads);
  W.writeU32(MF.LaunchBoundsMinBlocks);
  W.writeU8(MF.Allocated ? 1 : 0);

  W.writeU32(static_cast<uint32_t>(MF.Params.size()));
  for (const MachineParam &P : MF.Params) {
    W.writeU8(static_cast<uint8_t>(P.TypeKind));
    W.writeU32(P.ArgReg);
    W.writeU32(static_cast<uint32_t>(P.SpillSlot));
  }

  W.writeU32(static_cast<uint32_t>(MF.Relocs.size()));
  for (const Relocation &R : MF.Relocs) {
    W.writeU32(R.Block);
    W.writeU32(R.InstrIndex);
    W.writeString(R.Symbol);
  }

  W.writeU32(static_cast<uint32_t>(MF.Blocks.size()));
  for (const MachineBlock &MB : MF.Blocks) {
    W.writeString(MB.Name);
    W.writeU32(static_cast<uint32_t>(MB.Instrs.size()));
    for (const MachineInstr &MI : MB.Instrs) {
      W.writeU8(static_cast<uint8_t>(MI.Op));
      W.writeU8(static_cast<uint8_t>(MI.TypeTag));
      W.writeU32(MI.Aux | (MI.Uniform ? 0x10000u : 0u));
      W.writeU32(MI.Dst);
      W.writeU32(MI.Src1);
      W.writeU32(MI.Src2);
      W.writeU32(MI.Src3);
      W.writeU64(static_cast<uint64_t>(MI.Imm));
      W.writeU32(static_cast<uint32_t>(MI.Imm2));
    }
  }
  return W.take();
}

ObjectReadResult proteus::readObject(const std::vector<uint8_t> &Bytes) {
  ObjectReadResult Out;
  ByteReader R(Bytes);
  auto fail = [&](const char *Msg) {
    Out.Ok = false;
    Out.Error = Msg;
    return Out;
  };
  if (R.readU32() != ObjMagic || R.readU32() != ObjVersion)
    return fail("bad object magic/version");
  uint8_t Arch = R.readU8();
  if (Arch > 1)
    return fail("bad architecture tag");
  Out.Arch = static_cast<GpuArch>(Arch);
  MachineFunction &MF = Out.MF;
  MF.Name = R.readString();
  MF.NumRegs = R.readU32();
  MF.NumSpillSlots = R.readU32();
  MF.LocalBytes = R.readU32();
  MF.LaunchBoundsThreads = R.readU32();
  MF.LaunchBoundsMinBlocks = R.readU32();
  MF.Allocated = R.readU8() != 0;

  uint32_t NumParams = R.readU32();
  if (NumParams > 65536)
    return fail("parameter count too large");
  for (uint32_t I = 0; I != NumParams && R.ok(); ++I) {
    MachineParam P;
    uint8_t TK = R.readU8();
    if (TK > static_cast<uint8_t>(pir::Type::Kind::Ptr))
      return fail("bad parameter type");
    P.TypeKind = static_cast<pir::Type::Kind>(TK);
    P.ArgReg = R.readU32();
    P.SpillSlot = static_cast<int32_t>(R.readU32());
    MF.Params.push_back(P);
  }

  uint32_t NumRelocs = R.readU32();
  if (NumRelocs > 1u << 20)
    return fail("relocation count too large");
  for (uint32_t I = 0; I != NumRelocs && R.ok(); ++I) {
    Relocation Rel;
    Rel.Block = R.readU32();
    Rel.InstrIndex = R.readU32();
    Rel.Symbol = R.readString();
    MF.Relocs.push_back(std::move(Rel));
  }

  uint32_t NumBlocks = R.readU32();
  if (NumBlocks > 1u << 20)
    return fail("block count too large");
  for (uint32_t B = 0; B != NumBlocks && R.ok(); ++B) {
    MachineBlock MB;
    MB.Name = R.readString();
    uint32_t NumInstrs = R.readU32();
    if (NumInstrs > 1u << 24)
      return fail("instruction count too large");
    MB.Instrs.reserve(NumInstrs);
    for (uint32_t I = 0; I != NumInstrs && R.ok(); ++I) {
      MachineInstr MI;
      uint8_t Op = R.readU8();
      if (Op > static_cast<uint8_t>(MOp::Alloca))
        return fail("bad machine opcode");
      MI.Op = static_cast<MOp>(Op);
      uint8_t TT = R.readU8();
      if (TT > static_cast<uint8_t>(pir::Type::Kind::Ptr))
        return fail("bad type tag");
      MI.TypeTag = static_cast<pir::Type::Kind>(TT);
      uint32_t Aux = R.readU32();
      MI.Aux = static_cast<uint16_t>(Aux & 0xFFFF);
      MI.Uniform = (Aux & 0x10000u) != 0;
      MI.Dst = R.readU32();
      MI.Src1 = R.readU32();
      MI.Src2 = R.readU32();
      MI.Src3 = R.readU32();
      MI.Imm = static_cast<int64_t>(R.readU64());
      MI.Imm2 = static_cast<int32_t>(R.readU32());
      MB.Instrs.push_back(MI);
    }
    MF.Blocks.push_back(std::move(MB));
  }
  if (!R.ok())
    return fail("truncated object");
  // Sanity-check branch targets so the executor can trust them.
  for (const MachineBlock &MB : MF.Blocks)
    for (const MachineInstr &MI : MB.Instrs) {
      if (MI.Op == MOp::Br && static_cast<uint64_t>(MI.Imm) >= NumBlocks)
        return fail("branch target out of range");
      if (MI.Op == MOp::CondBr &&
          (static_cast<uint64_t>(MI.Imm) >= NumBlocks ||
           static_cast<uint32_t>(MI.Imm2) >= NumBlocks))
        return fail("branch target out of range");
    }
  Out.Ok = true;
  return Out;
}
