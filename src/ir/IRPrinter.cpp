//===- IRPrinter.cpp - PIR textual output --------------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"

#include "ir/Module.h"
#include "support/Error.h"
#include "support/StringUtils.h"

#include <sstream>
#include <unordered_set>
#include <unordered_map>

using namespace pir;
using namespace proteus;

namespace {

/// Assigns deterministic, unique textual names to values and blocks within
/// one function and prints the body.
class FunctionPrinter {
public:
  explicit FunctionPrinter(Function &F) : F(F) { assignNames(); }

  void print(std::ostringstream &OS) {
    printHeader(OS);
    if (F.isDeclaration()) {
      OS << ";\n";
      return;
    }
    OS << " {\n";
    for (BasicBlock &BB : F) {
      OS << BlockNames.at(&BB) << ":\n";
      for (Instruction &I : BB) {
        OS << "  ";
        printInstruction(OS, I);
        OS << "\n";
      }
    }
    OS << "}\n";
  }

private:
  void assignNames() {
    // Names are kept verbatim when already unique so that print -> parse ->
    // print is a fixpoint (the parser preserves names); collisions get a
    // numeric ".N" suffix.
    std::unordered_set<std::string> UsedValues, UsedBlocks;
    auto uniquify = [](const std::string &Hint,
                       std::unordered_set<std::string> &Used,
                       const char *Fallback) {
      std::string Base = Hint.empty() ? Fallback : sanitize(Hint);
      if (Used.insert(Base).second)
        return Base;
      for (unsigned I = 0;; ++I) {
        std::string Candidate = Base + "." + std::to_string(I);
        if (Used.insert(Candidate).second)
          return Candidate;
      }
    };
    for (const auto &A : F.args())
      ValueNames[A.get()] = "%" + uniquify(A->getName(), UsedValues, "arg");
    for (BasicBlock &BB : F) {
      BlockNames[&BB] = uniquify(BB.getName(), UsedBlocks, "bb");
      for (Instruction &I : BB) {
        if (!I.getType()->isVoid())
          ValueNames[&I] = "%" + uniquify(I.getName(), UsedValues, "v");
      }
    }
  }

  static std::string sanitize(const std::string &S) {
    std::string Out;
    for (char C : S) {
      if (std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '.')
        Out += C;
      else
        Out += '_';
    }
    return Out.empty() ? "v" : Out;
  }

  void printHeader(std::ostringstream &OS) {
    OS << (F.isKernel() ? "kernel" : "device") << " @" << F.getName() << "(";
    for (size_t I = 0, E = F.getNumArgs(); I != E; ++I) {
      if (I)
        OS << ", ";
      Argument *A = F.getArg(I);
      OS << ValueNames.at(A) << ": " << A->getType()->getName();
    }
    OS << ")";
    if (!F.getReturnType()->isVoid())
      OS << " : " << F.getReturnType()->getName();
    if (F.isAlwaysInline())
      OS << " always_inline";
    if (const auto &LB = F.getLaunchBounds())
      OS << " launch_bounds(" << LB->MaxThreadsPerBlock << ", "
         << LB->MinBlocksPerProcessor << ")";
    if (const auto &Ann = F.getJitAnnotation()) {
      OS << " annotate(\"jit\"";
      for (uint32_t Idx : Ann->ArgIndices)
        OS << ", " << Idx;
      OS << ")";
    }
  }

  std::string operandRef(Value *V) {
    if (auto *CI = dyn_cast<ConstantInt>(V)) {
      if (CI->getType()->isI1())
        return std::string("i1 ") + (CI->isZero() ? "0" : "1");
      return CI->getType()->getName() + " " +
             std::to_string(CI->getSExtValue());
    }
    if (auto *CF = dyn_cast<ConstantFP>(V))
      return CF->getType()->getName() + " " + formatDouble(CF->getValue());
    if (auto *CP = dyn_cast<ConstantPtr>(V)) {
      if (CP->isNull())
        return "ptr null";
      return formatString("ptr 0x%llx",
                          static_cast<unsigned long long>(CP->getAddress()));
    }
    if (auto *G = dyn_cast<GlobalVariable>(V))
      return "@" + G->getName();
    if (auto *Fn = dyn_cast<Function>(V))
      return "@" + Fn->getName();
    if (auto *BB = dyn_cast<BasicBlock>(V))
      return "%" + BlockNames.at(BB);
    auto It = ValueNames.find(V);
    if (It == ValueNames.end())
      reportFatalError("printer: reference to value outside function");
    return It->second;
  }

  void printInstruction(std::ostringstream &OS, Instruction &I) {
    if (!I.getType()->isVoid())
      OS << ValueNames.at(&I) << " = ";
    switch (I.getKind()) {
    case ValueKind::ICmp: {
      auto &C = cast<ICmpInst>(I);
      OS << "icmp " << icmpPredName(C.getPredicate()) << " "
         << operandRef(C.getLHS()) << ", " << operandRef(C.getRHS());
      return;
    }
    case ValueKind::FCmp: {
      auto &C = cast<FCmpInst>(I);
      OS << "fcmp " << fcmpPredName(C.getPredicate()) << " "
         << operandRef(C.getLHS()) << ", " << operandRef(C.getRHS());
      return;
    }
    case ValueKind::Select:
      OS << "select " << operandRef(I.getOperand(0)) << ", "
         << operandRef(I.getOperand(1)) << ", " << operandRef(I.getOperand(2));
      return;
    case ValueKind::Alloca: {
      auto &A = cast<AllocaInst>(I);
      OS << "alloca " << A.getAllocatedType()->getName() << " x "
         << A.getNumElements();
      return;
    }
    case ValueKind::Load:
      OS << "load " << I.getType()->getName() << ", "
         << operandRef(I.getOperand(0));
      return;
    case ValueKind::Store:
      OS << "store " << operandRef(I.getOperand(0)) << ", "
         << operandRef(I.getOperand(1));
      return;
    case ValueKind::PtrAdd: {
      auto &P = cast<PtrAddInst>(I);
      OS << "ptradd " << operandRef(P.getBase()) << ", "
         << operandRef(P.getIndex()) << ", " << P.getElemSize();
      return;
    }
    case ValueKind::AtomicAdd:
      OS << "atomicadd " << operandRef(I.getOperand(0)) << ", "
         << operandRef(I.getOperand(1));
      return;
    case ValueKind::ThreadIdx:
    case ValueKind::BlockIdx:
    case ValueKind::BlockDim:
    case ValueKind::GridDim: {
      auto &G = cast<GpuIndexInst>(I);
      OS << valueKindName(I.getKind()) << "."
         << "xyz"[G.getDim()];
      return;
    }
    case ValueKind::Barrier:
      OS << "barrier";
      return;
    case ValueKind::Call: {
      auto &C = cast<CallInst>(I);
      OS << "call @" << C.getCallee()->getName() << "(";
      for (size_t A = 0, E = C.getNumArgs(); A != E; ++A) {
        if (A)
          OS << ", ";
        OS << operandRef(C.getArg(A));
      }
      OS << ")";
      if (!I.getType()->isVoid())
        OS << " : " << I.getType()->getName();
      return;
    }
    case ValueKind::Phi: {
      auto &P = cast<PhiInst>(I);
      OS << "phi " << P.getType()->getName();
      for (size_t K = 0, E = P.getNumIncoming(); K != E; ++K) {
        OS << (K ? ", [ " : " [ ") << operandRef(P.getIncomingValue(K))
           << ", " << operandRef(P.getIncomingBlock(K)) << " ]";
      }
      return;
    }
    case ValueKind::Br:
      OS << "br " << operandRef(cast<BranchInst>(I).getSuccessor(0));
      return;
    case ValueKind::CondBr: {
      auto &B = cast<BranchInst>(I);
      OS << "condbr " << operandRef(B.getCondition()) << ", "
         << operandRef(B.getSuccessor(0)) << ", "
         << operandRef(B.getSuccessor(1));
      return;
    }
    case ValueKind::Ret: {
      auto &R = cast<RetInst>(I);
      OS << "ret";
      if (R.hasReturnValue())
        OS << " " << operandRef(R.getReturnValue());
      return;
    }
    default:
      break;
    }
    if (auto *B = dyn_cast<BinaryInst>(&I)) {
      OS << valueKindName(I.getKind()) << " " << operandRef(B->getLHS())
         << ", " << operandRef(B->getRHS());
      return;
    }
    if (auto *U = dyn_cast<UnaryInst>(&I)) {
      OS << valueKindName(I.getKind()) << " "
         << operandRef(U->getOperandValue());
      return;
    }
    if (auto *C = dyn_cast<CastInst>(&I)) {
      OS << valueKindName(I.getKind()) << " " << operandRef(C->getSource())
         << " to " << I.getType()->getName();
      return;
    }
    reportFatalError("printer: unhandled instruction kind");
  }

  Function &F;
  std::unordered_map<const Value *, std::string> ValueNames;
  std::unordered_map<const BasicBlock *, std::string> BlockNames;
};

void printGlobal(std::ostringstream &OS, const GlobalVariable &G) {
  OS << "global @" << G.getName() << " : " << G.getElemType()->getName()
     << " x " << G.getNumElements();
  if (G.getInit().empty()) {
    OS << " = zeroinit\n";
    return;
  }
  OS << " = hex ";
  static const char Digits[] = "0123456789abcdef";
  for (uint8_t B : G.getInit()) {
    OS << Digits[B >> 4] << Digits[B & 0xF];
  }
  OS << "\n";
}

} // namespace

std::string pir::printModule(Module &M) {
  std::ostringstream OS;
  OS << "module \"" << M.getName() << "\"\n\n";
  for (const auto &G : M.globals())
    printGlobal(OS, *G);
  if (!M.globals().empty())
    OS << "\n";
  for (const auto &F : M.functions()) {
    FunctionPrinter(*F).print(OS);
    OS << "\n";
  }
  return OS.str();
}

std::string pir::printFunction(Function &F) {
  std::ostringstream OS;
  FunctionPrinter(F).print(OS);
  return OS.str();
}
