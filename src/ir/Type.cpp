//===- Type.cpp - PIR type system ---------------------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Type.h"

#include "support/Error.h"

using namespace pir;

std::string Type::getName() const {
  switch (TheKind) {
  case Kind::Void:
    return "void";
  case Kind::I1:
    return "i1";
  case Kind::I32:
    return "i32";
  case Kind::I64:
    return "i64";
  case Kind::F32:
    return "f32";
  case Kind::F64:
    return "f64";
  case Kind::Ptr:
    return "ptr";
  }
  proteus_unreachable("unknown type kind");
}
