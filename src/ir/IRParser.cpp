//===- IRParser.cpp - PIR textual parser ---------------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Line-oriented recursive-descent parser for PIR assembly. Each instruction
// occupies one line; block labels are lines of the form "name:". Forward
// references are permitted for blocks (pre-scanned per function) and for phi
// incoming values (resolved through fixups after the body is parsed).
//
//===----------------------------------------------------------------------===//

#include "ir/IRParser.h"

#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "support/StringUtils.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>

using namespace pir;
using namespace proteus;

namespace {

/// Cursor over one source line.
class LineLexer {
public:
  explicit LineLexer(std::string_view Line) : S(Line) {}

  void skipSpace() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= S.size() || S[Pos] == ';'; // ';' starts a comment
  }

  bool consume(char C) {
    skipSpace();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consumeWord(std::string_view W) {
    skipSpace();
    size_t Save = Pos;
    std::string Ident = lexIdent();
    if (Ident == W)
      return true;
    Pos = Save;
    return false;
  }

  /// Identifier: [A-Za-z_][A-Za-z0-9_.]*
  std::string lexIdent() {
    skipSpace();
    size_t Start = Pos;
    if (Pos < S.size() &&
        (std::isalpha(static_cast<unsigned char>(S[Pos])) || S[Pos] == '_')) {
      ++Pos;
      while (Pos < S.size() &&
             (std::isalnum(static_cast<unsigned char>(S[Pos])) ||
              S[Pos] == '_' || S[Pos] == '.'))
        ++Pos;
    }
    return std::string(S.substr(Start, Pos - Start));
  }

  /// Number: optional sign, digits, optional fraction/exponent/hex.
  std::optional<std::string> lexNumber() {
    skipSpace();
    size_t Start = Pos;
    size_t P = Pos;
    if (P < S.size() && (S[P] == '-' || S[P] == '+'))
      ++P;
    if (P >= S.size() || (!std::isdigit(static_cast<unsigned char>(S[P]))))
      return std::nullopt;
    while (P < S.size() &&
           (std::isalnum(static_cast<unsigned char>(S[P])) || S[P] == '.' ||
            S[P] == '+' || S[P] == '-')) {
      // Stop '+'/'-' unless preceded by exponent 'e'/'E'.
      if ((S[P] == '+' || S[P] == '-') &&
          !(S[P - 1] == 'e' || S[P - 1] == 'E'))
        break;
      ++P;
    }
    Pos = P;
    return std::string(S.substr(Start, P - Start));
  }

  std::optional<std::string> lexQuoted() {
    skipSpace();
    if (Pos >= S.size() || S[Pos] != '"')
      return std::nullopt;
    size_t Start = ++Pos;
    while (Pos < S.size() && S[Pos] != '"')
      ++Pos;
    if (Pos >= S.size())
      return std::nullopt;
    std::string Out(S.substr(Start, Pos - Start));
    ++Pos;
    return Out;
  }

  std::string rest() {
    skipSpace();
    return std::string(S.substr(Pos));
  }

private:
  std::string_view S;
  size_t Pos = 0;
};

struct PhiFixup {
  PhiInst *Phi;
  size_t OperandIndex; // index of the placeholder value operand
  std::string Name;    // %-less local name to resolve
};

class Parser {
public:
  Parser(Context &Ctx, const std::string &Text) : Ctx(Ctx) {
    for (std::string_view L : split(Text, '\n'))
      Lines.push_back(std::string(L));
  }

  ParseResult run() {
    if (!parseModuleHeader())
      return fail();
    while (CurLine < Lines.size()) {
      std::string_view L = trim(Lines[CurLine]);
      if (L.empty() || L[0] == ';') {
        ++CurLine;
        continue;
      }
      if (startsWith(L, "global ")) {
        if (!parseGlobal())
          return fail();
        continue;
      }
      if (startsWith(L, "kernel ") || startsWith(L, "device ")) {
        if (!parseFunction())
          return fail();
        continue;
      }
      return error("expected 'global', 'kernel' or 'device'"), fail();
    }
    ParseResult R;
    R.M = std::move(M);
    return R;
  }

private:
  ParseResult fail() {
    ParseResult R;
    R.Error = Diag;
    return R;
  }

  void error(const std::string &Msg) {
    if (Diag.empty())
      Diag = "line " + std::to_string(CurLine + 1) + ": " + Msg;
  }

  bool parseModuleHeader() {
    // Skip leading blank lines.
    while (CurLine < Lines.size() && trim(Lines[CurLine]).empty())
      ++CurLine;
    if (CurLine >= Lines.size())
      return error("empty input"), false;
    LineLexer Lex(Lines[CurLine]);
    if (!Lex.consumeWord("module"))
      return error("expected 'module \"name\"'"), false;
    auto Name = Lex.lexQuoted();
    if (!Name)
      return error("expected module name string"), false;
    M = std::make_unique<Module>(Ctx, *Name);
    ++CurLine;
    return true;
  }

  Type *parseTypeName(const std::string &Name) {
    if (Name == "void")
      return Ctx.getVoidTy();
    if (Name == "i1")
      return Ctx.getI1Ty();
    if (Name == "i32")
      return Ctx.getI32Ty();
    if (Name == "i64")
      return Ctx.getI64Ty();
    if (Name == "f32")
      return Ctx.getF32Ty();
    if (Name == "f64")
      return Ctx.getF64Ty();
    if (Name == "ptr")
      return Ctx.getPtrTy();
    return nullptr;
  }

  bool parseGlobal() {
    LineLexer Lex(Lines[CurLine]);
    Lex.consumeWord("global");
    if (!Lex.consume('@'))
      return error("expected '@name' after 'global'"), false;
    std::string Name = Lex.lexIdent();
    if (!Lex.consume(':'))
      return error("expected ':' in global"), false;
    Type *ElemTy = parseTypeName(Lex.lexIdent());
    if (!ElemTy || ElemTy->isVoid())
      return error("bad global element type"), false;
    if (!Lex.consumeWord("x"))
      return error("expected 'x <count>' in global"), false;
    auto CountStr = Lex.lexNumber();
    if (!CountStr)
      return error("expected element count"), false;
    uint64_t Count = std::strtoull(CountStr->c_str(), nullptr, 10);
    if (!Lex.consume('='))
      return error("expected '=' in global"), false;
    std::vector<uint8_t> Init;
    if (Lex.consumeWord("hex")) {
      std::string Hex = Lex.lexIdent();
      if (Hex.empty()) {
        if (auto N = Lex.lexNumber())
          Hex = *N;
      }
      if (Hex.size() % 2 != 0)
        return error("odd hex initializer length"), false;
      for (size_t I = 0; I < Hex.size(); I += 2) {
        auto Nibble = [&](char C) -> int {
          if (C >= '0' && C <= '9')
            return C - '0';
          if (C >= 'a' && C <= 'f')
            return C - 'a' + 10;
          if (C >= 'A' && C <= 'F')
            return C - 'A' + 10;
          return -1;
        };
        int Hi = Nibble(Hex[I]), Lo = Nibble(Hex[I + 1]);
        if (Hi < 0 || Lo < 0)
          return error("bad hex digit in initializer"), false;
        Init.push_back(static_cast<uint8_t>(Hi << 4 | Lo));
      }
      if (Init.size() != Count * ElemTy->sizeInBytes())
        return error("initializer size mismatch"), false;
    } else if (!Lex.consumeWord("zeroinit")) {
      return error("expected 'zeroinit' or 'hex'"), false;
    }
    if (M->getGlobal(Name))
      return error("duplicate global @" + Name), false;
    M->createGlobal(Name, ElemTy, Count, std::move(Init));
    ++CurLine;
    return true;
  }

  bool parseFunction() {
    LineLexer Lex(Lines[CurLine]);
    FunctionKind FK =
        Lex.consumeWord("kernel") ? FunctionKind::Kernel : FunctionKind::Device;
    if (FK == FunctionKind::Device && !Lex.consumeWord("device"))
      return error("expected 'kernel' or 'device'"), false;
    if (!Lex.consume('@'))
      return error("expected '@name'"), false;
    std::string Name = Lex.lexIdent();
    if (!Lex.consume('('))
      return error("expected '(' after function name"), false;
    std::vector<Type *> ParamTypes;
    std::vector<std::string> ParamNames;
    if (!Lex.consume(')')) {
      for (;;) {
        if (!Lex.consume('%'))
          return error("expected '%arg' in parameter list"), false;
        ParamNames.push_back(Lex.lexIdent());
        if (!Lex.consume(':'))
          return error("expected ':' after parameter name"), false;
        Type *Ty = parseTypeName(Lex.lexIdent());
        if (!Ty || Ty->isVoid())
          return error("bad parameter type"), false;
        ParamTypes.push_back(Ty);
        if (Lex.consume(')'))
          break;
        if (!Lex.consume(','))
          return error("expected ',' or ')' in parameter list"), false;
      }
    }
    Type *RetTy = Ctx.getVoidTy();
    if (Lex.consume(':')) {
      RetTy = parseTypeName(Lex.lexIdent());
      if (!RetTy)
        return error("bad return type"), false;
    }
    bool AlwaysInline = false;
    std::optional<LaunchBounds> LB;
    std::optional<JitAnnotation> Ann;
    for (;;) {
      if (Lex.consumeWord("always_inline")) {
        AlwaysInline = true;
        continue;
      }
      if (Lex.consumeWord("launch_bounds")) {
        if (!Lex.consume('('))
          return error("expected '(' after launch_bounds"), false;
        auto A = Lex.lexNumber();
        if (!A || !Lex.consume(','))
          return error("bad launch_bounds"), false;
        auto B = Lex.lexNumber();
        if (!B || !Lex.consume(')'))
          return error("bad launch_bounds"), false;
        LB = LaunchBounds{
            static_cast<uint32_t>(std::strtoul(A->c_str(), nullptr, 10)),
            static_cast<uint32_t>(std::strtoul(B->c_str(), nullptr, 10))};
        continue;
      }
      if (Lex.consumeWord("annotate")) {
        if (!Lex.consume('('))
          return error("expected '(' after annotate"), false;
        auto Kind = Lex.lexQuoted();
        if (!Kind || *Kind != "jit")
          return error("only annotate(\"jit\", ...) is supported"), false;
        JitAnnotation A;
        while (Lex.consume(',')) {
          auto N = Lex.lexNumber();
          if (!N)
            return error("bad annotate index"), false;
          A.ArgIndices.push_back(
              static_cast<uint32_t>(std::strtoul(N->c_str(), nullptr, 10)));
        }
        if (!Lex.consume(')'))
          return error("expected ')' after annotate"), false;
        Ann = std::move(A);
        continue;
      }
      break;
    }
    if (M->getFunction(Name))
      return error("duplicate function @" + Name), false;
    Function *F = M->createFunction(Name, RetTy, ParamTypes, ParamNames, FK);
    F->setAlwaysInline(AlwaysInline);
    if (LB)
      F->setLaunchBounds(*LB);
    if (Ann)
      F->setJitAnnotation(std::move(*Ann));

    bool IsDeclaration = Lex.consume(';');
    bool HasBody = !IsDeclaration && Lex.consume('{');
    if (!IsDeclaration && !HasBody)
      return error("expected '{' or ';' after function header"), false;
    ++CurLine;
    if (IsDeclaration)
      return true;
    return parseBody(F);
  }

  bool parseBody(Function *F) {
    Values.clear();
    Blocks.clear();
    Fixups.clear();
    for (const auto &A : F->args()) {
      if (Values.count(A->getName()))
        return error("duplicate argument name %" + A->getName()), false;
      Values[A->getName()] = A.get();
    }

    // Pre-scan labels so blocks exist in definition order.
    size_t End = CurLine;
    for (; End < Lines.size(); ++End) {
      std::string_view L = trim(Lines[End]);
      if (L == "}")
        break;
      if (!L.empty() && L.back() == ':' &&
          L.find_first_of(" \t,(") == std::string_view::npos) {
        std::string Label(L.substr(0, L.size() - 1));
        if (Blocks.count(Label))
          return error("duplicate block label " + Label), false;
        Blocks[Label] = F->createBlock(Label, Ctx.getVoidTy());
      }
    }
    if (End >= Lines.size())
      return error("missing '}' at end of function"), false;

    IRBuilder B(Ctx);
    BasicBlock *Cur = nullptr;
    for (; CurLine < End; ++CurLine) {
      std::string_view L = trim(Lines[CurLine]);
      if (L.empty() || L[0] == ';')
        continue;
      if (L.back() == ':' &&
          L.find_first_of(" \t,(") == std::string_view::npos) {
        Cur = Blocks.at(std::string(L.substr(0, L.size() - 1)));
        B.setInsertPoint(Cur);
        continue;
      }
      if (!Cur)
        return error("instruction before first block label"), false;
      if (!parseInstruction(B, F, std::string(L)))
        return false;
    }
    CurLine = End + 1;

    // Resolve phi forward references.
    for (const PhiFixup &Fx : Fixups) {
      auto It = Values.find(Fx.Name);
      if (It == Values.end())
        return error("unresolved phi operand %" + Fx.Name), false;
      Fx.Phi->setOperand(Fx.OperandIndex, It->second);
    }
    return true;
  }

  /// Parses an operand reference: %name | @name | <type> <literal>.
  /// Returns null and sets the diagnostic on failure. When \p AllowForward
  /// is a phi, unresolved %names produce a placeholder and a fixup.
  Value *parseOperand(LineLexer &Lex, PhiInst *AllowForward = nullptr,
                      Type *ForwardTy = nullptr) {
    if (Lex.consume('%')) {
      std::string Name = Lex.lexIdent();
      auto It = Values.find(Name);
      if (It != Values.end())
        return It->second;
      auto BIt = Blocks.find(Name);
      if (BIt != Blocks.end())
        return BIt->second;
      if (AllowForward) {
        Fixups.push_back(
            PhiFixup{AllowForward, AllowForward->getNumOperands(), Name});
        return placeholderFor(ForwardTy);
      }
      error("unknown value %" + Name);
      return nullptr;
    }
    if (Lex.consume('@')) {
      std::string Name = Lex.lexIdent();
      if (GlobalVariable *G = M->getGlobal(Name))
        return G;
      if (Function *F = M->getFunction(Name))
        return F;
      error("unknown global @" + Name);
      return nullptr;
    }
    std::string TyName = Lex.lexIdent();
    Type *Ty = parseTypeName(TyName);
    if (!Ty) {
      error("expected operand, got '" + TyName + "'");
      return nullptr;
    }
    if (Ty->isPointer()) {
      if (Lex.consumeWord("null"))
        return Ctx.getNullPtr();
      auto N = Lex.lexNumber();
      if (!N) {
        error("expected pointer literal");
        return nullptr;
      }
      return Ctx.getConstantPtr(std::strtoull(N->c_str(), nullptr, 0));
    }
    auto N = Lex.lexNumber();
    if (!N) {
      error("expected numeric literal");
      return nullptr;
    }
    if (Ty->isInteger())
      return Ctx.getConstantInt(
          Ty, static_cast<uint64_t>(std::strtoll(N->c_str(), nullptr, 0)));
    return Ctx.getConstantFP(Ty, std::strtod(N->c_str(), nullptr));
  }

  Value *placeholderFor(Type *Ty) {
    if (Ty->isInteger())
      return Ctx.getConstantInt(Ty, 0);
    if (Ty->isFloatingPoint())
      return Ctx.getConstantFP(Ty, 0.0);
    return Ctx.getNullPtr();
  }

  bool defineValue(const std::string &Name, Value *V) {
    if (Name.empty())
      return error("instruction result requires a name"), false;
    if (Values.count(Name))
      return error("duplicate value name %" + Name), false;
    Values[Name] = V;
    V->setName(Name);
    return true;
  }

  bool parseInstruction(IRBuilder &B, Function *F, const std::string &Line);

  Context &Ctx;
  std::unique_ptr<Module> M;
  std::vector<std::string> Lines;
  size_t CurLine = 0;
  std::string Diag;

  std::map<std::string, Value *> Values;
  std::map<std::string, BasicBlock *> Blocks;
  std::vector<PhiFixup> Fixups;
};

bool Parser::parseInstruction(IRBuilder &B, Function *F,
                              const std::string &Line) {
  LineLexer Lex(Line);
  std::string ResultName;
  {
    LineLexer Probe(Line);
    if (Probe.consume('%')) {
      std::string N = Probe.lexIdent();
      if (Probe.consume('=')) {
        ResultName = N;
        Lex = Probe;
      }
    }
  }

  std::string Op = Lex.lexIdent();
  if (Op.empty())
    return error("expected instruction mnemonic"), false;

  auto finish = [&](Value *V) -> bool {
    if (!V)
      return false;
    if (!ResultName.empty())
      return defineValue(ResultName, V);
    return true;
  };

  // GPU geometry reads: "thread_idx.x" etc. lex as one ident (dot allowed).
  auto geomDim = [&](std::string_view Suffix) -> int {
    if (Suffix == "x")
      return 0;
    if (Suffix == "y")
      return 1;
    if (Suffix == "z")
      return 2;
    return -1;
  };
  size_t Dot = Op.find('.');
  if (Dot != std::string::npos) {
    std::string Base = Op.substr(0, Dot);
    int Dim = geomDim(Op.substr(Dot + 1));
    if (Dim >= 0) {
      if (Base == "thread_idx")
        return finish(B.createThreadIdx(static_cast<uint8_t>(Dim)));
      if (Base == "block_idx")
        return finish(B.createBlockIdx(static_cast<uint8_t>(Dim)));
      if (Base == "block_dim")
        return finish(B.createBlockDim(static_cast<uint8_t>(Dim)));
      if (Base == "grid_dim")
        return finish(B.createGridDim(static_cast<uint8_t>(Dim)));
    }
  }

  static const std::map<std::string, ValueKind> BinaryOps = {
      {"add", ValueKind::Add},     {"sub", ValueKind::Sub},
      {"mul", ValueKind::Mul},     {"sdiv", ValueKind::SDiv},
      {"udiv", ValueKind::UDiv},   {"srem", ValueKind::SRem},
      {"urem", ValueKind::URem},   {"and", ValueKind::And},
      {"or", ValueKind::Or},       {"xor", ValueKind::Xor},
      {"shl", ValueKind::Shl},     {"lshr", ValueKind::LShr},
      {"ashr", ValueKind::AShr},   {"fadd", ValueKind::FAdd},
      {"fsub", ValueKind::FSub},   {"fmul", ValueKind::FMul},
      {"fdiv", ValueKind::FDiv},   {"pow", ValueKind::Pow},
      {"fmin", ValueKind::FMin},   {"fmax", ValueKind::FMax},
      {"smin", ValueKind::SMin},   {"smax", ValueKind::SMax}};
  if (auto It = BinaryOps.find(Op); It != BinaryOps.end()) {
    Value *L = parseOperand(Lex);
    if (!L || !Lex.consume(','))
      return error("bad binary operands"), false;
    Value *R = parseOperand(Lex);
    if (!R)
      return false;
    if (L->getType() != R->getType())
      return error("binary operand type mismatch"), false;
    return finish(B.createBinary(It->second, L, R));
  }

  static const std::map<std::string, ValueKind> UnaryOps = {
      {"fneg", ValueKind::FNeg}, {"sqrt", ValueKind::Sqrt},
      {"exp", ValueKind::Exp},   {"log", ValueKind::Log},
      {"sin", ValueKind::Sin},   {"cos", ValueKind::Cos},
      {"fabs", ValueKind::Fabs}, {"floor", ValueKind::Floor}};
  if (auto It = UnaryOps.find(Op); It != UnaryOps.end()) {
    Value *V = parseOperand(Lex);
    if (!V)
      return false;
    return finish(B.createUnary(It->second, V));
  }

  static const std::map<std::string, ValueKind> CastOps = {
      {"trunc", ValueKind::Trunc},     {"zext", ValueKind::ZExt},
      {"sext", ValueKind::SExt},       {"fpext", ValueKind::FPExt},
      {"fptrunc", ValueKind::FPTrunc}, {"sitofp", ValueKind::SIToFP},
      {"uitofp", ValueKind::UIToFP},   {"fptosi", ValueKind::FPToSI},
      {"inttoptr", ValueKind::IntToPtr}, {"ptrtoint", ValueKind::PtrToInt}};
  if (auto It = CastOps.find(Op); It != CastOps.end()) {
    Value *V = parseOperand(Lex);
    if (!V || !Lex.consumeWord("to"))
      return error("bad cast syntax"), false;
    Type *Ty = parseTypeName(Lex.lexIdent());
    if (!Ty)
      return error("bad cast destination type"), false;
    return finish(B.createCast(It->second, V, Ty));
  }

  if (Op == "icmp") {
    static const std::map<std::string, ICmpPred> Preds = {
        {"eq", ICmpPred::EQ},   {"ne", ICmpPred::NE},
        {"slt", ICmpPred::SLT}, {"sle", ICmpPred::SLE},
        {"sgt", ICmpPred::SGT}, {"sge", ICmpPred::SGE},
        {"ult", ICmpPred::ULT}, {"ule", ICmpPred::ULE},
        {"ugt", ICmpPred::UGT}, {"uge", ICmpPred::UGE}};
    auto It = Preds.find(Lex.lexIdent());
    if (It == Preds.end())
      return error("bad icmp predicate"), false;
    Value *L = parseOperand(Lex);
    if (!L || !Lex.consume(','))
      return error("bad icmp operands"), false;
    Value *R = parseOperand(Lex);
    if (!R)
      return false;
    if (L->getType() != R->getType())
      return error("icmp operand type mismatch"), false;
    return finish(B.createICmp(It->second, L, R));
  }

  if (Op == "fcmp") {
    static const std::map<std::string, FCmpPred> Preds = {
        {"oeq", FCmpPred::OEQ}, {"one", FCmpPred::ONE},
        {"olt", FCmpPred::OLT}, {"ole", FCmpPred::OLE},
        {"ogt", FCmpPred::OGT}, {"oge", FCmpPred::OGE}};
    auto It = Preds.find(Lex.lexIdent());
    if (It == Preds.end())
      return error("bad fcmp predicate"), false;
    Value *L = parseOperand(Lex);
    if (!L || !Lex.consume(','))
      return error("bad fcmp operands"), false;
    Value *R = parseOperand(Lex);
    if (!R)
      return false;
    if (L->getType() != R->getType())
      return error("fcmp operand type mismatch"), false;
    return finish(B.createFCmp(It->second, L, R));
  }

  if (Op == "select") {
    Value *C = parseOperand(Lex);
    if (!C || !Lex.consume(','))
      return error("bad select"), false;
    Value *T = parseOperand(Lex);
    if (!T || !Lex.consume(','))
      return error("bad select"), false;
    Value *Fv = parseOperand(Lex);
    if (!Fv)
      return false;
    if (!C->getType()->isI1() || T->getType() != Fv->getType())
      return error("select type mismatch"), false;
    return finish(B.createSelect(C, T, Fv));
  }

  if (Op == "alloca") {
    Type *Ty = parseTypeName(Lex.lexIdent());
    if (!Ty || !Lex.consumeWord("x"))
      return error("bad alloca"), false;
    auto N = Lex.lexNumber();
    if (!N)
      return error("bad alloca count"), false;
    return finish(B.createAlloca(
        Ty, static_cast<uint32_t>(std::strtoul(N->c_str(), nullptr, 10))));
  }

  if (Op == "load") {
    Type *Ty = parseTypeName(Lex.lexIdent());
    if (!Ty || !Lex.consume(','))
      return error("bad load"), false;
    Value *P = parseOperand(Lex);
    if (!P)
      return false;
    if (!P->getType()->isPointer())
      return error("load pointer operand must be ptr"), false;
    return finish(B.createLoad(Ty, P));
  }

  if (Op == "store") {
    Value *V = parseOperand(Lex);
    if (!V || !Lex.consume(','))
      return error("bad store"), false;
    Value *P = parseOperand(Lex);
    if (!P)
      return false;
    if (!P->getType()->isPointer())
      return error("store pointer operand must be ptr"), false;
    B.createStore(V, P);
    return true;
  }

  if (Op == "ptradd") {
    Value *Base = parseOperand(Lex);
    if (!Base || !Lex.consume(','))
      return error("bad ptradd"), false;
    Value *Idx = parseOperand(Lex);
    if (!Idx || !Lex.consume(','))
      return error("bad ptradd"), false;
    auto Sz = Lex.lexNumber();
    if (!Sz)
      return error("bad ptradd element size"), false;
    if (!Base->getType()->isPointer())
      return error("ptradd base must be ptr"), false;
    return finish(B.createPtrAdd(
        Base, Idx,
        static_cast<uint32_t>(std::strtoul(Sz->c_str(), nullptr, 10))));
  }

  if (Op == "atomicadd") {
    Value *P = parseOperand(Lex);
    if (!P || !Lex.consume(','))
      return error("bad atomicadd"), false;
    Value *V = parseOperand(Lex);
    if (!V)
      return false;
    if (!P->getType()->isPointer())
      return error("atomicadd pointer operand must be ptr"), false;
    return finish(B.createAtomicAdd(P, V));
  }

  if (Op == "barrier") {
    B.createBarrier();
    return true;
  }

  if (Op == "call") {
    if (!Lex.consume('@'))
      return error("expected callee after call"), false;
    std::string Callee = Lex.lexIdent();
    Function *CF = M->getFunction(Callee);
    if (!CF)
      return error("unknown callee @" + Callee), false;
    std::vector<Value *> Args;
    if (!Lex.consume('('))
      return error("expected '(' after callee"), false;
    if (!Lex.consume(')')) {
      for (;;) {
        Value *A = parseOperand(Lex);
        if (!A)
          return false;
        Args.push_back(A);
        if (Lex.consume(')'))
          break;
        if (!Lex.consume(','))
          return error("expected ',' or ')' in call"), false;
      }
    }
    if (Args.size() != CF->getNumArgs())
      return error("call arity mismatch for @" + Callee), false;
    for (size_t I = 0; I != Args.size(); ++I)
      if (Args[I]->getType() != CF->getArg(I)->getType())
        return error("call argument type mismatch for @" + Callee), false;
    return finish(B.createCall(CF, Args));
  }

  if (Op == "phi") {
    Type *Ty = parseTypeName(Lex.lexIdent());
    if (!Ty)
      return error("bad phi type"), false;
    PhiInst *Phi = B.createPhi(Ty);
    while (Lex.consume('[')) {
      Value *V = parseOperand(Lex, Phi, Ty);
      if (!V || !Lex.consume(','))
        return error("bad phi incoming"), false;
      if (!Lex.consume('%'))
        return error("phi incoming block must be %label"), false;
      std::string Label = Lex.lexIdent();
      auto BIt = Blocks.find(Label);
      if (BIt == Blocks.end())
        return error("unknown block label " + Label), false;
      if (!Lex.consume(']'))
        return error("expected ']' in phi"), false;
      if (V->getType() != Ty)
        return error("phi incoming type mismatch"), false;
      Phi->addIncoming(V, BIt->second);
      Lex.consume(',');
    }
    if (Phi->getNumIncoming() == 0)
      return error("phi requires at least one incoming"), false;
    return finish(Phi);
  }

  if (Op == "br") {
    if (!Lex.consume('%'))
      return error("expected %label after br"), false;
    auto BIt = Blocks.find(Lex.lexIdent());
    if (BIt == Blocks.end())
      return error("unknown branch target"), false;
    B.createBr(BIt->second);
    return true;
  }

  if (Op == "condbr") {
    Value *C = parseOperand(Lex);
    if (!C || !Lex.consume(','))
      return error("bad condbr"), false;
    if (!C->getType()->isI1())
      return error("condbr condition must be i1"), false;
    if (!Lex.consume('%'))
      return error("expected %label in condbr"), false;
    auto TIt = Blocks.find(Lex.lexIdent());
    if (TIt == Blocks.end() || !Lex.consume(','))
      return error("bad condbr targets"), false;
    if (!Lex.consume('%'))
      return error("expected %label in condbr"), false;
    auto FIt = Blocks.find(Lex.lexIdent());
    if (FIt == Blocks.end())
      return error("bad condbr targets"), false;
    B.createCondBr(C, TIt->second, FIt->second);
    return true;
  }

  if (Op == "ret") {
    if (Lex.atEnd()) {
      if (!F->getReturnType()->isVoid())
        return error("non-void function must return a value"), false;
      B.createRet();
      return true;
    }
    Value *V = parseOperand(Lex);
    if (!V)
      return false;
    if (V->getType() != F->getReturnType())
      return error("return type mismatch"), false;
    B.createRet(V);
    return true;
  }

  return error("unknown instruction '" + Op + "'"), false;
}

} // namespace

ParseResult pir::parseModule(Context &Ctx, const std::string &Text) {
  Parser P(Ctx, Text);
  return P.run();
}
