//===- Instructions.cpp - PIR instruction hierarchy -------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Instructions.h"

#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "support/Error.h"

using namespace pir;
using namespace proteus;

const char *pir::icmpPredName(ICmpPred P) {
  switch (P) {
  case ICmpPred::EQ:
    return "eq";
  case ICmpPred::NE:
    return "ne";
  case ICmpPred::SLT:
    return "slt";
  case ICmpPred::SLE:
    return "sle";
  case ICmpPred::SGT:
    return "sgt";
  case ICmpPred::SGE:
    return "sge";
  case ICmpPred::ULT:
    return "ult";
  case ICmpPred::ULE:
    return "ule";
  case ICmpPred::UGT:
    return "ugt";
  case ICmpPred::UGE:
    return "uge";
  }
  proteus_unreachable("unknown icmp predicate");
}

const char *pir::fcmpPredName(FCmpPred P) {
  switch (P) {
  case FCmpPred::OEQ:
    return "oeq";
  case FCmpPred::ONE:
    return "one";
  case FCmpPred::OLT:
    return "olt";
  case FCmpPred::OLE:
    return "ole";
  case FCmpPred::OGT:
    return "ogt";
  case FCmpPred::OGE:
    return "oge";
  }
  proteus_unreachable("unknown fcmp predicate");
}

Function *Instruction::getFunction() const {
  return Parent ? Parent->getParent() : nullptr;
}

void Instruction::eraseFromParent() {
  assert(Parent && "instruction is not linked into a block");
  Parent->erase(this);
}

void Instruction::moveBefore(Instruction *Pos) {
  assert(Parent && "instruction is not linked into a block");
  assert(Pos->getParent() && "position is not linked into a block");
  std::unique_ptr<Instruction> Self = Parent->remove(this);
  Pos->getParent()->insertBefore(Pos, std::move(Self));
}

bool Instruction::mayHaveSideEffects() const {
  switch (getKind()) {
  case ValueKind::Store:
  case ValueKind::AtomicAdd:
  case ValueKind::Barrier:
  case ValueKind::Br:
  case ValueKind::CondBr:
  case ValueKind::Ret:
    return true;
  case ValueKind::Call: {
    // Conservatively treat calls as effectful; the inliner removes them
    // before any DCE question matters for kernels.
    return true;
  }
  default:
    return false;
  }
}

bool Instruction::isSpeculatable() const {
  switch (getKind()) {
  case ValueKind::Store:
  case ValueKind::AtomicAdd:
  case ValueKind::Barrier:
  case ValueKind::Br:
  case ValueKind::CondBr:
  case ValueKind::Ret:
  case ValueKind::Call:
  case ValueKind::Phi:
  case ValueKind::Load:   // may fault on a path-dependent pointer
  case ValueKind::Alloca: // placement is semantically entry-bound
  case ValueKind::SDiv:
  case ValueKind::UDiv:
  case ValueKind::SRem:
  case ValueKind::URem: // may trap on zero
    return false;
  default:
    return true;
  }
}

Function *CallInst::getCallee() const {
  return cast<Function>(getOperand(0));
}

BasicBlock *PhiInst::getIncomingBlock(size_t I) const {
  return cast<BasicBlock>(getOperand(2 * I + 1));
}

void PhiInst::setIncomingBlock(size_t I, BasicBlock *BB) {
  setOperand(2 * I + 1, BB);
}

void PhiInst::addIncoming(Value *V, BasicBlock *BB) {
  assert(V->getType() == getType() && "phi incoming type mismatch");
  addOperand(V);
  addOperand(BB);
}

void PhiInst::removeIncoming(size_t I) {
  size_t N = getNumIncoming();
  assert(I < N && "incoming index out of range");
  // Move the last pair into slot I, then drop the last pair.
  if (I != N - 1) {
    setOperand(2 * I, getOperand(2 * (N - 1)));
    setOperand(2 * I + 1, getOperand(2 * (N - 1) + 1));
  }
  removeLastOperand();
  removeLastOperand();
}

Value *PhiInst::getIncomingValueForBlock(const BasicBlock *BB) const {
  for (size_t I = 0, E = getNumIncoming(); I != E; ++I)
    if (getIncomingBlock(I) == BB)
      return getIncomingValue(I);
  return nullptr;
}

BranchInst::BranchInst(BasicBlock *Dest, Type *VoidTy)
    : Instruction(ValueKind::Br, VoidTy) {
  addOperand(Dest);
}

BranchInst::BranchInst(Value *Cond, BasicBlock *TrueBB, BasicBlock *FalseBB,
                       Type *VoidTy)
    : Instruction(ValueKind::CondBr, VoidTy) {
  assert(Cond->getType()->isI1() && "branch condition must be i1");
  addOperand(Cond);
  addOperand(TrueBB);
  addOperand(FalseBB);
}

BasicBlock *BranchInst::getSuccessor(size_t I) const {
  assert(I < getNumSuccessors() && "successor index out of range");
  return cast<BasicBlock>(getOperand(isConditional() ? I + 1 : I));
}

void BranchInst::setSuccessor(size_t I, BasicBlock *BB) {
  assert(I < getNumSuccessors() && "successor index out of range");
  setOperand(isConditional() ? I + 1 : I, BB);
}
