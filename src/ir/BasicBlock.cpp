//===- BasicBlock.cpp - PIR basic block -------------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"

#include "ir/Function.h"

#include <algorithm>

using namespace pir;

BasicBlock::~BasicBlock() {
  // Break operand cycles (e.g. self loops) before destruction.
  for (auto &I : Insts)
    I->dropAllReferences();
  Insts.clear();
}

Instruction *BasicBlock::append(std::unique_ptr<Instruction> I) {
  assert(I && "appending null instruction");
  assert(!I->Parent && "instruction already linked");
  Instruction *Raw = I.get();
  Insts.push_back(std::move(I));
  Raw->Parent = this;
  Raw->SelfIt = std::prev(Insts.end());
  return Raw;
}

Instruction *BasicBlock::insertBefore(Instruction *Pos,
                                      std::unique_ptr<Instruction> I) {
  assert(Pos->Parent == this && "position not in this block");
  assert(I && !I->Parent && "instruction already linked");
  Instruction *Raw = I.get();
  auto It = Insts.insert(Pos->SelfIt, std::move(I));
  Raw->Parent = this;
  Raw->SelfIt = It;
  return Raw;
}

std::unique_ptr<Instruction> BasicBlock::remove(Instruction *I) {
  assert(I->Parent == this && "instruction not in this block");
  std::unique_ptr<Instruction> Owned = std::move(*I->SelfIt);
  Insts.erase(I->SelfIt);
  I->Parent = nullptr;
  return Owned;
}

void BasicBlock::erase(Instruction *I) {
  assert(!I->hasUses() && "erasing an instruction that still has uses");
  std::unique_ptr<Instruction> Owned = remove(I);
  Owned->dropAllReferences();
  // Owned destructor runs here.
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  std::vector<BasicBlock *> Out;
  const Instruction *Term = getTerminator();
  if (const auto *BI = dyn_cast_if_present<BranchInst>(Term))
    for (size_t I = 0, E = BI->getNumSuccessors(); I != E; ++I)
      Out.push_back(BI->getSuccessor(I));
  return Out;
}

std::vector<BasicBlock *> BasicBlock::predecessors() const {
  std::vector<BasicBlock *> Out;
  for (const Use &U : uses()) {
    auto *Br = dyn_cast<BranchInst>(static_cast<Value *>(U.TheUser));
    if (!Br || !Br->getParent())
      continue;
    BasicBlock *Pred = Br->getParent();
    if (std::find(Out.begin(), Out.end(), Pred) == Out.end())
      Out.push_back(Pred);
  }
  return Out;
}

std::vector<PhiInst *> BasicBlock::phis() {
  std::vector<PhiInst *> Out;
  for (Instruction &I : *this) {
    auto *P = dyn_cast<PhiInst>(&I);
    if (!P)
      break;
    Out.push_back(P);
  }
  return Out;
}

void BasicBlock::spliceAllFrom(BasicBlock *Donor) {
  while (!Donor->Insts.empty()) {
    std::unique_ptr<Instruction> I = std::move(Donor->Insts.front());
    Donor->Insts.pop_front();
    I->Parent = nullptr;
    append(std::move(I));
  }
}
