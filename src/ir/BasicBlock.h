//===- BasicBlock.h - PIR basic block ---------------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BasicBlock: an ordered list of instructions ending in a terminator.
/// Blocks are Values (branch and phi operands), so CFG edits use the same
/// use-list machinery as dataflow edits.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_IR_BASICBLOCK_H
#define PROTEUS_IR_BASICBLOCK_H

#include "ir/Instructions.h"

#include <list>
#include <memory>
#include <vector>

namespace pir {

class Function;

/// A straight-line sequence of instructions with a single terminator.
class BasicBlock : public Value {
public:
  using InstListType = std::list<std::unique_ptr<Instruction>>;

  /// Iterator that presents Instruction& directly.
  class iterator {
  public:
    using inner = InstListType::iterator;
    iterator() = default;
    explicit iterator(inner It) : It(It) {}
    Instruction &operator*() const { return **It; }
    Instruction *operator->() const { return It->get(); }
    iterator &operator++() { ++It; return *this; }
    iterator operator++(int) { iterator Tmp = *this; ++It; return Tmp; }
    iterator &operator--() { --It; return *this; }
    bool operator==(const iterator &O) const { return It == O.It; }
    bool operator!=(const iterator &O) const { return It != O.It; }
    inner getInner() const { return It; }

  private:
    inner It;
  };

  explicit BasicBlock(Type *VoidTy, std::string Name = "")
      : Value(ValueKind::BasicBlock, VoidTy) {
    setName(std::move(Name));
  }

  ~BasicBlock() override;

  Function *getParent() const { return Parent; }

  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }

  iterator begin() { return iterator(Insts.begin()); }
  iterator end() { return iterator(Insts.end()); }

  Instruction &front() { return *Insts.front(); }
  Instruction &back() { return *Insts.back(); }

  /// The block terminator, or null if the block is not yet terminated.
  Instruction *getTerminator() {
    if (Insts.empty() || !Insts.back()->isTerminator())
      return nullptr;
    return Insts.back().get();
  }
  const Instruction *getTerminator() const {
    return const_cast<BasicBlock *>(this)->getTerminator();
  }

  /// Appends \p I (takes ownership).
  Instruction *append(std::unique_ptr<Instruction> I);

  /// Inserts \p I before \p Pos (takes ownership).
  Instruction *insertBefore(Instruction *Pos, std::unique_ptr<Instruction> I);

  /// Unlinks \p I without destroying it.
  std::unique_ptr<Instruction> remove(Instruction *I);

  /// Unlinks and destroys \p I (uses must already be gone).
  void erase(Instruction *I);

  /// Successor blocks, in terminator order (empty for ret).
  std::vector<BasicBlock *> successors() const;

  /// Predecessor blocks, deduplicated, in deterministic discovery order.
  std::vector<BasicBlock *> predecessors() const;

  /// Phi nodes at the head of the block.
  std::vector<PhiInst *> phis();

  /// Moves all non-phi instructions of \p Donor to the end of this block
  /// (used when merging straight-line blocks).
  void spliceAllFrom(BasicBlock *Donor);

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::BasicBlock;
  }

private:
  friend class Function;
  friend class Instruction;

  Function *Parent = nullptr;
  InstListType Insts;
};

} // namespace pir

#endif // PROTEUS_IR_BASICBLOCK_H
