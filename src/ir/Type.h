//===- Type.h - PIR type system --------------------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PIR type system. PIR is the in-tree stand-in for LLVM IR: a typed SSA
/// IR over which the Proteus JIT performs runtime specialization. The type
/// lattice is deliberately small — the scalar types CUDA/HIP kernels use in
/// practice plus an opaque pointer type (device global memory addresses).
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_IR_TYPE_H
#define PROTEUS_IR_TYPE_H

#include <cassert>
#include <cstdint>
#include <string>

namespace pir {

class Context;

/// A PIR first-class type. Instances are uniqued singletons owned by the
/// Context; pointer equality is type equality.
class Type {
public:
  enum class Kind : uint8_t { Void, I1, I32, I64, F32, F64, Ptr };

  Kind getKind() const { return TheKind; }

  bool isVoid() const { return TheKind == Kind::Void; }
  bool isI1() const { return TheKind == Kind::I1; }
  bool isI32() const { return TheKind == Kind::I32; }
  bool isI64() const { return TheKind == Kind::I64; }
  bool isF32() const { return TheKind == Kind::F32; }
  bool isF64() const { return TheKind == Kind::F64; }
  bool isPointer() const { return TheKind == Kind::Ptr; }

  bool isInteger() const {
    return TheKind == Kind::I1 || TheKind == Kind::I32 ||
           TheKind == Kind::I64;
  }

  bool isFloatingPoint() const {
    return TheKind == Kind::F32 || TheKind == Kind::F64;
  }

  /// Size of a value of this type in device memory, in bytes.
  unsigned sizeInBytes() const {
    switch (TheKind) {
    case Kind::Void:
      return 0;
    case Kind::I1:
      return 1;
    case Kind::I32:
    case Kind::F32:
      return 4;
    case Kind::I64:
    case Kind::F64:
    case Kind::Ptr:
      return 8;
    }
    return 0;
  }

  /// Bit width for integer types.
  unsigned integerBitWidth() const {
    assert(isInteger() && "not an integer type");
    switch (TheKind) {
    case Kind::I1:
      return 1;
    case Kind::I32:
      return 32;
    default:
      return 64;
    }
  }

  /// The textual spelling used by the IR printer/parser ("i32", "ptr", ...).
  std::string getName() const;

private:
  friend class Context;
  explicit Type(Kind K) : TheKind(K) {}

  Kind TheKind;
};

} // namespace pir

#endif // PROTEUS_IR_TYPE_H
