//===- Instructions.h - PIR instruction hierarchy ---------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PIR instruction set: scalar arithmetic, casts, comparisons, memory
/// access, GPU thread-geometry intrinsics, calls, phis and control flow.
/// This is the IR the Proteus AOT extensions extract per annotated kernel
/// and the JIT runtime specializes at launch time.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_IR_INSTRUCTIONS_H
#define PROTEUS_IR_INSTRUCTIONS_H

#include "ir/Constants.h"
#include "ir/Value.h"

#include <list>
#include <memory>

namespace pir {

class BasicBlock;
class Function;

/// Base class of everything that lives inside a BasicBlock.
class Instruction : public User {
public:
  BasicBlock *getParent() const { return Parent; }

  /// The function containing this instruction, or null when unlinked.
  Function *getFunction() const;

  /// Unlinks and destroys this instruction. All uses must be gone.
  void eraseFromParent();

  /// Unlinks this instruction and re-inserts it immediately before \p Pos
  /// (which may live in a different block of the same function).
  void moveBefore(Instruction *Pos);

  bool isTerminator() const {
    ValueKind K = getKind();
    return K == ValueKind::Br || K == ValueKind::CondBr || K == ValueKind::Ret;
  }

  /// True for instructions that write memory or have control-relevant
  /// effects and must not be removed even when unused.
  bool mayHaveSideEffects() const;

  /// True if this instruction can be freely re-executed or hoisted (no
  /// memory write, no barrier, no trap potential from division).
  bool isSpeculatable() const;

  static bool classof(const Value *V) { return V->isInstruction(); }

protected:
  Instruction(ValueKind K, Type *T) : User(K, T) {}

private:
  friend class BasicBlock;
  BasicBlock *Parent = nullptr;
  std::list<std::unique_ptr<Instruction>>::iterator SelfIt;
};

/// Two-operand arithmetic/bitwise/binary-math instruction.
class BinaryInst : public Instruction {
public:
  BinaryInst(ValueKind K, Value *LHS, Value *RHS)
      : Instruction(K, LHS->getType()) {
    assert(isBinaryKind(K) && "not a binary opcode");
    assert(LHS->getType() == RHS->getType() &&
           "binary operands must have matching types");
    addOperand(LHS);
    addOperand(RHS);
  }

  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  static bool isBinaryKind(ValueKind K) {
    return K >= ValueKind::Add && K <= ValueKind::SMax;
  }

  /// True for opcodes where operand order does not matter.
  bool isCommutative() const {
    switch (getKind()) {
    case ValueKind::Add:
    case ValueKind::Mul:
    case ValueKind::And:
    case ValueKind::Or:
    case ValueKind::Xor:
    case ValueKind::FAdd:
    case ValueKind::FMul:
    case ValueKind::FMin:
    case ValueKind::FMax:
    case ValueKind::SMin:
    case ValueKind::SMax:
      return true;
    default:
      return false;
    }
  }

  static bool classof(const Value *V) { return isBinaryKind(V->getKind()); }
};

/// One-operand instruction: fneg and the unary math intrinsics.
class UnaryInst : public Instruction {
public:
  UnaryInst(ValueKind K, Value *Operand)
      : Instruction(K, Operand->getType()) {
    assert(isUnaryKind(K) && "not a unary opcode");
    addOperand(Operand);
  }

  Value *getOperandValue() const { return getOperand(0); }

  static bool isUnaryKind(ValueKind K) {
    return K >= ValueKind::FNeg && K <= ValueKind::Floor;
  }

  static bool classof(const Value *V) { return isUnaryKind(V->getKind()); }
};

/// Type conversion.
class CastInst : public Instruction {
public:
  CastInst(ValueKind K, Value *Operand, Type *DestTy)
      : Instruction(K, DestTy) {
    assert(isCastKind(K) && "not a cast opcode");
    addOperand(Operand);
  }

  Value *getSource() const { return getOperand(0); }

  static bool isCastKind(ValueKind K) {
    return K >= ValueKind::Trunc && K <= ValueKind::PtrToInt;
  }

  static bool classof(const Value *V) { return isCastKind(V->getKind()); }
};

/// Integer/pointer comparison predicates.
enum class ICmpPred : uint8_t { EQ, NE, SLT, SLE, SGT, SGE, ULT, ULE, UGT, UGE };

/// Ordered floating-point comparison predicates.
enum class FCmpPred : uint8_t { OEQ, ONE, OLT, OLE, OGT, OGE };

const char *icmpPredName(ICmpPred P);
const char *fcmpPredName(FCmpPred P);

/// Integer (or pointer) comparison producing i1.
class ICmpInst : public Instruction {
public:
  ICmpInst(ICmpPred P, Value *LHS, Value *RHS, Type *I1Ty)
      : Instruction(ValueKind::ICmp, I1Ty), Pred(P) {
    assert(LHS->getType() == RHS->getType() && "icmp operand type mismatch");
    addOperand(LHS);
    addOperand(RHS);
  }

  ICmpPred getPredicate() const { return Pred; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::ICmp;
  }

private:
  ICmpPred Pred;
};

/// Floating-point comparison producing i1.
class FCmpInst : public Instruction {
public:
  FCmpInst(FCmpPred P, Value *LHS, Value *RHS, Type *I1Ty)
      : Instruction(ValueKind::FCmp, I1Ty), Pred(P) {
    assert(LHS->getType() == RHS->getType() && "fcmp operand type mismatch");
    addOperand(LHS);
    addOperand(RHS);
  }

  FCmpPred getPredicate() const { return Pred; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::FCmp;
  }

private:
  FCmpPred Pred;
};

/// select cond, tval, fval.
class SelectInst : public Instruction {
public:
  SelectInst(Value *Cond, Value *TrueV, Value *FalseV)
      : Instruction(ValueKind::Select, TrueV->getType()) {
    assert(Cond->getType()->isI1() && "select condition must be i1");
    assert(TrueV->getType() == FalseV->getType() &&
           "select arm type mismatch");
    addOperand(Cond);
    addOperand(TrueV);
    addOperand(FalseV);
  }

  Value *getCondition() const { return getOperand(0); }
  Value *getTrueValue() const { return getOperand(1); }
  Value *getFalseValue() const { return getOperand(2); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Select;
  }
};

/// Thread-private scratch allocation ("local memory"). Produces a pointer
/// valid only within the executing thread.
class AllocaInst : public Instruction {
public:
  AllocaInst(Type *PtrTy, Type *ElemTy, uint32_t NumElements)
      : Instruction(ValueKind::Alloca, PtrTy), ElemTy(ElemTy),
        NumElements(NumElements) {
    assert(!ElemTy->isVoid() && "cannot allocate void");
  }

  Type *getAllocatedType() const { return ElemTy; }
  uint32_t getNumElements() const { return NumElements; }
  uint64_t allocationSizeBytes() const {
    return static_cast<uint64_t>(ElemTy->sizeInBytes()) * NumElements;
  }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Alloca;
  }

private:
  Type *ElemTy;
  uint32_t NumElements;
};

/// Typed load from a pointer.
class LoadInst : public Instruction {
public:
  LoadInst(Type *LoadedTy, Value *Ptr) : Instruction(ValueKind::Load, LoadedTy) {
    assert(Ptr->getType()->isPointer() && "load requires pointer operand");
    addOperand(Ptr);
  }

  Value *getPointer() const { return getOperand(0); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Load;
  }
};

/// Typed store to a pointer.
class StoreInst : public Instruction {
public:
  StoreInst(Value *Val, Value *Ptr, Type *VoidTy)
      : Instruction(ValueKind::Store, VoidTy) {
    assert(Ptr->getType()->isPointer() && "store requires pointer operand");
    addOperand(Val);
    addOperand(Ptr);
  }

  Value *getValue() const { return getOperand(0); }
  Value *getPointer() const { return getOperand(1); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Store;
  }
};

/// Pointer arithmetic: result = base + index * elemSize (GEP restricted to
/// flat arrays, which is all the GPU kernels need).
class PtrAddInst : public Instruction {
public:
  PtrAddInst(Value *Base, Value *Index, uint32_t ElemSize)
      : Instruction(ValueKind::PtrAdd, Base->getType()), ElemSize(ElemSize) {
    assert(Base->getType()->isPointer() && "ptradd base must be a pointer");
    assert(Index->getType()->isInteger() && !Index->getType()->isI1() &&
           "ptradd index must be i32/i64");
    addOperand(Base);
    addOperand(Index);
  }

  Value *getBase() const { return getOperand(0); }
  Value *getIndex() const { return getOperand(1); }
  uint32_t getElemSize() const { return ElemSize; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::PtrAdd;
  }

private:
  uint32_t ElemSize;
};

/// Atomic fetch-and-add on device memory; returns the prior value.
class AtomicAddInst : public Instruction {
public:
  AtomicAddInst(Value *Ptr, Value *Val)
      : Instruction(ValueKind::AtomicAdd, Val->getType()) {
    assert(Ptr->getType()->isPointer() && "atomicadd requires pointer");
    addOperand(Ptr);
    addOperand(Val);
  }

  Value *getPointer() const { return getOperand(0); }
  Value *getValue() const { return getOperand(1); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::AtomicAdd;
  }
};

/// Reads one coordinate of the GPU thread geometry (threadIdx / blockIdx /
/// blockDim / gridDim).
class GpuIndexInst : public Instruction {
public:
  GpuIndexInst(ValueKind K, uint8_t Dim, Type *I32Ty)
      : Instruction(K, I32Ty), Dim(Dim) {
    assert(isGpuIndexKind(K) && "not a GPU index opcode");
    assert(Dim < 3 && "dimension must be x/y/z");
  }

  /// 0 = x, 1 = y, 2 = z.
  uint8_t getDim() const { return Dim; }

  static bool isGpuIndexKind(ValueKind K) {
    return K >= ValueKind::ThreadIdx && K <= ValueKind::GridDim;
  }

  static bool classof(const Value *V) {
    return isGpuIndexKind(V->getKind());
  }

private:
  uint8_t Dim;
};

/// Block-level execution barrier (__syncthreads equivalent).
class BarrierInst : public Instruction {
public:
  explicit BarrierInst(Type *VoidTy) : Instruction(ValueKind::Barrier, VoidTy) {}

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Barrier;
  }
};

/// Direct call to a device function. Operand 0 is the callee Function.
class CallInst : public Instruction {
public:
  CallInst(Type *RetTy, Value *Callee, const std::vector<Value *> &Args)
      : Instruction(ValueKind::Call, RetTy) {
    addOperand(Callee);
    for (Value *A : Args)
      addOperand(A);
  }

  Function *getCallee() const;
  size_t getNumArgs() const { return getNumOperands() - 1; }
  Value *getArg(size_t I) const { return getOperand(I + 1); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Call;
  }
};

/// SSA phi node. Operands are interleaved [value0, block0, value1, block1...]
/// so that block references participate in use-list maintenance (needed when
/// SimplifyCFG rewrites the CFG).
class PhiInst : public Instruction {
public:
  explicit PhiInst(Type *Ty) : Instruction(ValueKind::Phi, Ty) {}

  size_t getNumIncoming() const { return getNumOperands() / 2; }

  Value *getIncomingValue(size_t I) const { return getOperand(2 * I); }
  BasicBlock *getIncomingBlock(size_t I) const;

  void setIncomingValue(size_t I, Value *V) { setOperand(2 * I, V); }
  void setIncomingBlock(size_t I, BasicBlock *BB);

  void addIncoming(Value *V, BasicBlock *BB);
  void removeIncoming(size_t I);

  /// Returns the incoming value for \p BB, or null if \p BB is not a
  /// predecessor entry of this phi.
  Value *getIncomingValueForBlock(const BasicBlock *BB) const;

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Phi;
  }
};

/// Branch: unconditional (Br, one block operand) or conditional (CondBr,
/// [cond, true-block, false-block]).
class BranchInst : public Instruction {
public:
  /// Unconditional branch.
  BranchInst(BasicBlock *Dest, Type *VoidTy);

  /// Conditional branch.
  BranchInst(Value *Cond, BasicBlock *TrueBB, BasicBlock *FalseBB,
             Type *VoidTy);

  bool isConditional() const { return getKind() == ValueKind::CondBr; }

  Value *getCondition() const {
    assert(isConditional() && "no condition on unconditional branch");
    return getOperand(0);
  }

  size_t getNumSuccessors() const { return isConditional() ? 2 : 1; }
  BasicBlock *getSuccessor(size_t I) const;
  void setSuccessor(size_t I, BasicBlock *BB);

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Br || V->getKind() == ValueKind::CondBr;
  }
};

/// Function return, with optional value.
class RetInst : public Instruction {
public:
  explicit RetInst(Type *VoidTy) : Instruction(ValueKind::Ret, VoidTy) {}

  RetInst(Value *V, Type *VoidTy) : Instruction(ValueKind::Ret, VoidTy) {
    addOperand(V);
  }

  bool hasReturnValue() const { return getNumOperands() == 1; }
  Value *getReturnValue() const {
    assert(hasReturnValue() && "void return");
    return getOperand(0);
  }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Ret;
  }
};

} // namespace pir

#endif // PROTEUS_IR_INSTRUCTIONS_H
