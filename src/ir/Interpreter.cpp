//===- Interpreter.cpp - reference IR interpreter --------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"

#include "ir/Module.h"
#include "ir/OpSemantics.h"
#include "support/StringUtils.h"

#include <unordered_map>

using namespace pir;
using namespace proteus;

namespace {

/// Per-call-frame interpreter state shared through one thread's execution.
struct ExecState {
  std::vector<uint8_t> &Memory;
  std::vector<uint8_t> Scratch;
  const ThreadGeometry &Geometry;
  uint64_t Steps = 0;
  uint64_t MaxSteps;
  std::string Error;

  ExecState(std::vector<uint8_t> &Memory, const ThreadGeometry &Geometry,
            uint64_t MaxSteps)
      : Memory(Memory), Geometry(Geometry), MaxSteps(MaxSteps) {}

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
    return false;
  }

  uint8_t *resolve(uint64_t Addr, unsigned Size) {
    if (Addr >= IRInterpreter::ScratchBase) {
      uint64_t Off = Addr - IRInterpreter::ScratchBase;
      if (Off + Size > Scratch.size())
        return nullptr;
      return Scratch.data() + Off;
    }
    if (Addr + Size > Memory.size())
      return nullptr;
    return Memory.data() + Addr;
  }

  bool load(uint64_t Addr, Type *Ty, uint64_t &Out) {
    unsigned Size = Ty->sizeInBytes();
    uint8_t *P = resolve(Addr, Size);
    if (!P)
      return fail(formatString("load out of bounds at 0x%llx",
                               static_cast<unsigned long long>(Addr)));
    uint64_t Bits = 0;
    std::memcpy(&Bits, P, Size);
    Out = Bits;
    return true;
  }

  bool store(uint64_t Addr, Type *Ty, uint64_t Bits) {
    unsigned Size = Ty->sizeInBytes();
    uint8_t *P = resolve(Addr, Size);
    if (!P)
      return fail(formatString("store out of bounds at 0x%llx",
                               static_cast<unsigned long long>(Addr)));
    std::memcpy(P, &Bits, Size);
    return true;
  }
};

/// Interprets one function activation. Recursion handles device calls.
class FrameInterp {
public:
  FrameInterp(Function &F, ExecState &S) : F(F), S(S) {}

  bool run(const std::vector<uint64_t> &ArgBits,
           std::optional<uint64_t> &RetBits) {
    assert(ArgBits.size() == F.getNumArgs() && "argument count mismatch");
    for (size_t I = 0; I != ArgBits.size(); ++I)
      Values[F.getArg(I)] = ArgBits[I];
    if (F.isDeclaration())
      return S.fail("cannot interpret a declaration");

    BasicBlock *BB = &F.getEntryBlock();
    BasicBlock *Prev = nullptr;
    while (BB) {
      BasicBlock *Next = nullptr;
      if (!executeBlock(BB, Prev, Next, RetBits))
        return false;
      Prev = BB;
      BB = Next;
    }
    return true;
  }

private:
  uint64_t get(Value *V) {
    if (auto *CI = dyn_cast<ConstantInt>(V))
      return CI->getZExtValue();
    if (auto *CF = dyn_cast<ConstantFP>(V))
      return CF->getType()->isF32()
                 ? sem::boxF32(static_cast<float>(CF->getValue()))
                 : sem::boxF64(CF->getValue());
    if (auto *CP = dyn_cast<ConstantPtr>(V))
      return CP->getAddress();
    if (auto *G = dyn_cast<GlobalVariable>(V)) {
      // Direct references to globals only occur pre-linking; modules run by
      // the interpreter are expected to have globals placed at fixed
      // addresses recorded in the value map by the test harness, or not to
      // use them. Report a deterministic failure otherwise.
      auto It = Values.find(G);
      if (It != Values.end())
        return It->second;
      S.fail("unlinked global @" + G->getName() + " dereferenced");
      return 0;
    }
    auto It = Values.find(V);
    if (It == Values.end()) {
      S.fail("use of undefined value in interpreter");
      return 0;
    }
    return It->second;
  }

  bool executeBlock(BasicBlock *BB, BasicBlock *Prev, BasicBlock *&Next,
                    std::optional<uint64_t> &RetBits) {
    // Phis evaluate in parallel against the incoming edge.
    std::vector<std::pair<PhiInst *, uint64_t>> PhiUpdates;
    for (Instruction &I : *BB) {
      auto *Phi = dyn_cast<PhiInst>(&I);
      if (!Phi)
        break;
      Value *In = Phi->getIncomingValueForBlock(Prev);
      if (!In)
        return S.fail("phi has no entry for executed predecessor");
      PhiUpdates.push_back({Phi, get(In)});
      if (!S.Error.empty())
        return false;
    }
    for (auto &[Phi, Bits] : PhiUpdates)
      Values[Phi] = Bits;

    for (Instruction &I : *BB) {
      if (isa<PhiInst>(&I))
        continue;
      if (++S.Steps > S.MaxSteps)
        return S.fail("interpreter step limit exceeded");
      if (!executeInstruction(I, Next, RetBits))
        return false;
      if (Next || RetDone)
        return true;
    }
    return S.fail("fell off the end of a block without terminator");
  }

  bool executeInstruction(Instruction &I, BasicBlock *&Next,
                          std::optional<uint64_t> &RetBits) {
    switch (I.getKind()) {
    case ValueKind::ICmp: {
      auto &C = cast<ICmpInst>(I);
      Values[&I] = sem::evalICmp(C.getPredicate(), C.getLHS()->getType(),
                                 get(C.getLHS()), get(C.getRHS()))
                       ? 1
                       : 0;
      break;
    }
    case ValueKind::FCmp: {
      auto &C = cast<FCmpInst>(I);
      Values[&I] = sem::evalFCmp(C.getPredicate(), C.getLHS()->getType(),
                                 get(C.getLHS()), get(C.getRHS()))
                       ? 1
                       : 0;
      break;
    }
    case ValueKind::Select: {
      auto &Sel = cast<SelectInst>(I);
      Values[&I] = get(Sel.getCondition()) & 1 ? get(Sel.getTrueValue())
                                               : get(Sel.getFalseValue());
      break;
    }
    case ValueKind::Alloca: {
      auto &A = cast<AllocaInst>(I);
      // Re-executing an alloca (in a loop) returns the same slot.
      auto It = AllocaSlots.find(&A);
      if (It != AllocaSlots.end()) {
        Values[&I] = It->second;
        break;
      }
      uint64_t Addr = IRInterpreter::ScratchBase + S.Scratch.size();
      S.Scratch.resize(S.Scratch.size() + A.allocationSizeBytes(), 0);
      AllocaSlots[&A] = Addr;
      Values[&I] = Addr;
      break;
    }
    case ValueKind::Load: {
      auto &L = cast<LoadInst>(I);
      uint64_t Bits = 0;
      if (!S.load(get(L.getPointer()), L.getType(), Bits))
        return false;
      Values[&I] = Bits;
      break;
    }
    case ValueKind::Store: {
      auto &St = cast<StoreInst>(I);
      if (!S.store(get(St.getPointer()), St.getValue()->getType(),
                   get(St.getValue())))
        return false;
      break;
    }
    case ValueKind::PtrAdd: {
      auto &P = cast<PtrAddInst>(I);
      uint64_t Base = get(P.getBase());
      int64_t Idx = sem::signExtend(P.getIndex()->getType(),
                                    get(P.getIndex()));
      Values[&I] = Base + static_cast<uint64_t>(Idx * P.getElemSize());
      break;
    }
    case ValueKind::AtomicAdd: {
      auto &A = cast<AtomicAddInst>(I);
      Type *Ty = A.getValue()->getType();
      uint64_t Addr = get(A.getPointer());
      uint64_t Old = 0;
      if (!S.load(Addr, Ty, Old))
        return false;
      uint64_t Sum = Ty->isFloatingPoint()
                         ? sem::evalBinary(ValueKind::FAdd, Ty, Old,
                                           get(A.getValue()))
                         : sem::evalBinary(ValueKind::Add, Ty, Old,
                                           get(A.getValue()));
      if (!S.store(Addr, Ty, Sum))
        return false;
      Values[&I] = Old;
      break;
    }
    case ValueKind::ThreadIdx:
      Values[&I] = S.Geometry.ThreadIdx[cast<GpuIndexInst>(I).getDim()];
      break;
    case ValueKind::BlockIdx:
      Values[&I] = S.Geometry.BlockIdx[cast<GpuIndexInst>(I).getDim()];
      break;
    case ValueKind::BlockDim:
      Values[&I] = S.Geometry.BlockDim[cast<GpuIndexInst>(I).getDim()];
      break;
    case ValueKind::GridDim:
      Values[&I] = S.Geometry.GridDim[cast<GpuIndexInst>(I).getDim()];
      break;
    case ValueKind::Barrier:
      // Single-thread reference execution: a barrier is a no-op.
      break;
    case ValueKind::Call: {
      auto &C = cast<CallInst>(I);
      std::vector<uint64_t> Args;
      for (size_t K = 0; K != C.getNumArgs(); ++K)
        Args.push_back(get(C.getArg(K)));
      if (!S.Error.empty())
        return false;
      FrameInterp Callee(*C.getCallee(), S);
      std::optional<uint64_t> SubRet;
      if (!Callee.run(Args, SubRet))
        return false;
      if (!I.getType()->isVoid()) {
        if (!SubRet)
          return S.fail("callee returned no value");
        Values[&I] = *SubRet;
      }
      break;
    }
    case ValueKind::Br:
      Next = cast<BranchInst>(I).getSuccessor(0);
      return true;
    case ValueKind::CondBr: {
      auto &B = cast<BranchInst>(I);
      Next = (get(B.getCondition()) & 1) ? B.getSuccessor(0)
                                         : B.getSuccessor(1);
      return S.Error.empty();
    }
    case ValueKind::Ret: {
      auto &R = cast<RetInst>(I);
      if (R.hasReturnValue())
        RetBits = get(R.getReturnValue());
      RetDone = true;
      return S.Error.empty();
    }
    default: {
      if (auto *B = dyn_cast<BinaryInst>(&I)) {
        Values[&I] = sem::evalBinary(I.getKind(), B->getLHS()->getType(),
                                     get(B->getLHS()), get(B->getRHS()));
        break;
      }
      if (auto *U = dyn_cast<UnaryInst>(&I)) {
        Values[&I] = sem::evalUnary(I.getKind(),
                                    U->getOperandValue()->getType(),
                                    get(U->getOperandValue()));
        break;
      }
      if (auto *C = dyn_cast<CastInst>(&I)) {
        Values[&I] = sem::evalCast(I.getKind(), C->getSource()->getType(),
                                   I.getType(), get(C->getSource()));
        break;
      }
      return S.fail("interpreter: unhandled instruction");
    }
    }
    return S.Error.empty();
  }

  Function &F;
  ExecState &S;
  std::unordered_map<Value *, uint64_t> Values;
  std::unordered_map<AllocaInst *, uint64_t> AllocaSlots;
  bool RetDone = false;
};

} // namespace

InterpResult IRInterpreter::run(Function &F,
                                const std::vector<uint64_t> &ArgBits,
                                const ThreadGeometry &Geometry,
                                uint64_t MaxSteps) {
  InterpResult R;
  ExecState S(Memory, Geometry, MaxSteps);
  FrameInterp Frame(F, S);
  std::optional<uint64_t> Ret;
  bool Ok = Frame.run(ArgBits, Ret);
  R.Ok = Ok;
  R.Error = S.Error;
  R.ReturnBits = Ret;
  R.DynamicInstructions = S.Steps;
  return R;
}
