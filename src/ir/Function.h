//===- Function.h - PIR function --------------------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Function: kernels (__global__), device functions (__device__), arguments,
/// and the attributes Proteus consumes — the "jit" annotation with the list
/// of argument positions to specialize (paper Listing 1) and launch_bounds
/// set either by the programmer AOT or injected by the JIT runtime.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_IR_FUNCTION_H
#define PROTEUS_IR_FUNCTION_H

#include "ir/BasicBlock.h"

#include <optional>

namespace pir {

class Module;

/// Formal parameter of a Function.
class Argument : public Value {
public:
  Argument(Type *Ty, std::string Name, Function *Parent, unsigned Index)
      : Value(ValueKind::Argument, Ty), Parent(Parent), Index(Index) {
    setName(std::move(Name));
  }

  Function *getParent() const { return Parent; }

  /// Zero-based position in the argument list. Note the user-facing
  /// annotation indices (paper Listing 1) are one-based.
  unsigned getIndex() const { return Index; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Argument;
  }

private:
  Function *Parent;
  unsigned Index;
};

/// CUDA/HIP __launch_bounds__ equivalent. MaxThreadsPerBlock is required;
/// MinBlocksPerProcessor defaults to 1 (as the JIT runtime sets it).
struct LaunchBounds {
  uint32_t MaxThreadsPerBlock = 0;
  uint32_t MinBlocksPerProcessor = 1;

  bool operator==(const LaunchBounds &) const = default;
};

/// The __attribute__((annotate("jit", ...))) payload: one-based indices of
/// kernel arguments to fold at runtime (empty means launch-bounds-only
/// specialization is still applied).
struct JitAnnotation {
  std::vector<uint32_t> ArgIndices;

  bool operator==(const JitAnnotation &) const = default;
};

/// Whether a function runs on the device as an entry point (kernel) or as a
/// callee (device function).
enum class FunctionKind : uint8_t { Kernel, Device };

/// A PIR function: signature, attributes and CFG.
class Function : public Value {
public:
  using BlockListType = std::list<std::unique_ptr<BasicBlock>>;

  /// Block iterator presenting BasicBlock&.
  class iterator {
  public:
    using inner = BlockListType::iterator;
    iterator() = default;
    explicit iterator(inner It) : It(It) {}
    BasicBlock &operator*() const { return **It; }
    BasicBlock *operator->() const { return It->get(); }
    iterator &operator++() { ++It; return *this; }
    bool operator==(const iterator &O) const { return It == O.It; }
    bool operator!=(const iterator &O) const { return It != O.It; }
    inner getInner() const { return It; }

  private:
    inner It;
  };

  Function(Type *PtrTy, std::string Name, Type *RetTy,
           const std::vector<Type *> &ParamTypes,
           const std::vector<std::string> &ParamNames, FunctionKind FK);

  ~Function() override;

  Module *getParent() const { return Parent; }
  Type *getReturnType() const { return RetTy; }
  FunctionKind getFunctionKind() const { return FK; }
  bool isKernel() const { return FK == FunctionKind::Kernel; }

  size_t getNumArgs() const { return Args.size(); }
  Argument *getArg(size_t I) const { return Args[I].get(); }
  const std::vector<std::unique_ptr<Argument>> &args() const { return Args; }

  bool isDeclaration() const { return Blocks.empty(); }

  // -- Attributes ---------------------------------------------------------

  bool isAlwaysInline() const { return AlwaysInlineFlag; }
  void setAlwaysInline(bool V) { AlwaysInlineFlag = V; }

  const std::optional<LaunchBounds> &getLaunchBounds() const { return LB; }
  void setLaunchBounds(LaunchBounds B) { LB = B; }
  void clearLaunchBounds() { LB.reset(); }

  const std::optional<JitAnnotation> &getJitAnnotation() const {
    return Annotation;
  }
  void setJitAnnotation(JitAnnotation A) { Annotation = std::move(A); }
  bool hasJitAnnotation() const { return Annotation.has_value(); }

  // -- CFG ----------------------------------------------------------------

  BasicBlock &getEntryBlock() {
    assert(!Blocks.empty() && "function has no body");
    return *Blocks.front();
  }

  size_t size() const { return Blocks.size(); }
  iterator begin() { return iterator(Blocks.begin()); }
  iterator end() { return iterator(Blocks.end()); }

  /// Creates and appends a new block.
  BasicBlock *createBlock(std::string Name, Type *VoidTy);

  /// Unlinks and destroys \p BB. Drops the block's instructions first.
  void eraseBlock(BasicBlock *BB);

  /// Moves \p BB to immediately after \p After (layout only; no CFG change).
  void moveBlockAfter(BasicBlock *BB, BasicBlock *After);

  /// Blocks in layout order, as raw pointers (stable snapshot for passes
  /// that mutate the block list while iterating).
  std::vector<BasicBlock *> blockList();

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Function;
  }

private:
  friend class Module;

  Module *Parent = nullptr;
  Type *RetTy;
  FunctionKind FK;
  bool AlwaysInlineFlag = false;
  std::optional<LaunchBounds> LB;
  std::optional<JitAnnotation> Annotation;
  std::vector<std::unique_ptr<Argument>> Args;
  BlockListType Blocks;
};

} // namespace pir

#endif // PROTEUS_IR_FUNCTION_H
