//===- IRBuilder.h - PIR construction helper --------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IRBuilder: convenience API for constructing PIR, used both by the
/// HeCBench-sim kernels (standing in for Clang's CUDA/HIP lowering) and by
/// transformation passes when materializing new instructions.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_IR_IRBUILDER_H
#define PROTEUS_IR_IRBUILDER_H

#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Module.h"

namespace pir {

/// Builds instructions at an insertion point (end of a block, or before a
/// given instruction).
class IRBuilder {
public:
  explicit IRBuilder(Context &Ctx) : Ctx(Ctx) {}

  Context &getContext() const { return Ctx; }

  /// Inserts subsequent instructions at the end of \p BB.
  void setInsertPoint(BasicBlock *BB) {
    InsertBlock = BB;
    InsertBefore = nullptr;
  }

  /// Inserts subsequent instructions immediately before \p I.
  void setInsertPoint(Instruction *I) {
    InsertBlock = I->getParent();
    InsertBefore = I;
  }

  BasicBlock *getInsertBlock() const { return InsertBlock; }

  // -- Constants ----------------------------------------------------------

  ConstantInt *getInt32(uint32_t V) { return Ctx.getInt32(V); }
  ConstantInt *getInt64(uint64_t V) { return Ctx.getInt64(V); }
  ConstantInt *getBool(bool V) { return V ? Ctx.getTrue() : Ctx.getFalse(); }
  ConstantFP *getFloat(float V) { return Ctx.getFloat(V); }
  ConstantFP *getDouble(double V) { return Ctx.getDouble(V); }

  Type *getI1Ty() { return Ctx.getI1Ty(); }
  Type *getI32Ty() { return Ctx.getI32Ty(); }
  Type *getI64Ty() { return Ctx.getI64Ty(); }
  Type *getF32Ty() { return Ctx.getF32Ty(); }
  Type *getF64Ty() { return Ctx.getF64Ty(); }
  Type *getPtrTy() { return Ctx.getPtrTy(); }
  Type *getVoidTy() { return Ctx.getVoidTy(); }

  // -- Arithmetic ---------------------------------------------------------

  Value *createBinary(ValueKind K, Value *L, Value *R, std::string Name = "");

  Value *createAdd(Value *L, Value *R, std::string N = "") {
    return createBinary(ValueKind::Add, L, R, std::move(N));
  }
  Value *createSub(Value *L, Value *R, std::string N = "") {
    return createBinary(ValueKind::Sub, L, R, std::move(N));
  }
  Value *createMul(Value *L, Value *R, std::string N = "") {
    return createBinary(ValueKind::Mul, L, R, std::move(N));
  }
  Value *createSDiv(Value *L, Value *R, std::string N = "") {
    return createBinary(ValueKind::SDiv, L, R, std::move(N));
  }
  Value *createUDiv(Value *L, Value *R, std::string N = "") {
    return createBinary(ValueKind::UDiv, L, R, std::move(N));
  }
  Value *createSRem(Value *L, Value *R, std::string N = "") {
    return createBinary(ValueKind::SRem, L, R, std::move(N));
  }
  Value *createURem(Value *L, Value *R, std::string N = "") {
    return createBinary(ValueKind::URem, L, R, std::move(N));
  }
  Value *createAnd(Value *L, Value *R, std::string N = "") {
    return createBinary(ValueKind::And, L, R, std::move(N));
  }
  Value *createOr(Value *L, Value *R, std::string N = "") {
    return createBinary(ValueKind::Or, L, R, std::move(N));
  }
  Value *createXor(Value *L, Value *R, std::string N = "") {
    return createBinary(ValueKind::Xor, L, R, std::move(N));
  }
  Value *createShl(Value *L, Value *R, std::string N = "") {
    return createBinary(ValueKind::Shl, L, R, std::move(N));
  }
  Value *createLShr(Value *L, Value *R, std::string N = "") {
    return createBinary(ValueKind::LShr, L, R, std::move(N));
  }
  Value *createAShr(Value *L, Value *R, std::string N = "") {
    return createBinary(ValueKind::AShr, L, R, std::move(N));
  }
  Value *createFAdd(Value *L, Value *R, std::string N = "") {
    return createBinary(ValueKind::FAdd, L, R, std::move(N));
  }
  Value *createFSub(Value *L, Value *R, std::string N = "") {
    return createBinary(ValueKind::FSub, L, R, std::move(N));
  }
  Value *createFMul(Value *L, Value *R, std::string N = "") {
    return createBinary(ValueKind::FMul, L, R, std::move(N));
  }
  Value *createFDiv(Value *L, Value *R, std::string N = "") {
    return createBinary(ValueKind::FDiv, L, R, std::move(N));
  }
  Value *createPow(Value *L, Value *R, std::string N = "") {
    return createBinary(ValueKind::Pow, L, R, std::move(N));
  }
  Value *createFMin(Value *L, Value *R, std::string N = "") {
    return createBinary(ValueKind::FMin, L, R, std::move(N));
  }
  Value *createFMax(Value *L, Value *R, std::string N = "") {
    return createBinary(ValueKind::FMax, L, R, std::move(N));
  }
  Value *createSMin(Value *L, Value *R, std::string N = "") {
    return createBinary(ValueKind::SMin, L, R, std::move(N));
  }
  Value *createSMax(Value *L, Value *R, std::string N = "") {
    return createBinary(ValueKind::SMax, L, R, std::move(N));
  }

  Value *createUnary(ValueKind K, Value *V, std::string Name = "");

  Value *createFNeg(Value *V, std::string N = "") {
    return createUnary(ValueKind::FNeg, V, std::move(N));
  }
  Value *createSqrt(Value *V, std::string N = "") {
    return createUnary(ValueKind::Sqrt, V, std::move(N));
  }
  Value *createExp(Value *V, std::string N = "") {
    return createUnary(ValueKind::Exp, V, std::move(N));
  }
  Value *createLog(Value *V, std::string N = "") {
    return createUnary(ValueKind::Log, V, std::move(N));
  }
  Value *createSin(Value *V, std::string N = "") {
    return createUnary(ValueKind::Sin, V, std::move(N));
  }
  Value *createCos(Value *V, std::string N = "") {
    return createUnary(ValueKind::Cos, V, std::move(N));
  }
  Value *createFabs(Value *V, std::string N = "") {
    return createUnary(ValueKind::Fabs, V, std::move(N));
  }
  Value *createFloor(Value *V, std::string N = "") {
    return createUnary(ValueKind::Floor, V, std::move(N));
  }

  // -- Casts --------------------------------------------------------------

  Value *createCast(ValueKind K, Value *V, Type *DestTy, std::string N = "");

  Value *createTrunc(Value *V, Type *T, std::string N = "") {
    return createCast(ValueKind::Trunc, V, T, std::move(N));
  }
  Value *createZExt(Value *V, Type *T, std::string N = "") {
    return createCast(ValueKind::ZExt, V, T, std::move(N));
  }
  Value *createSExt(Value *V, Type *T, std::string N = "") {
    return createCast(ValueKind::SExt, V, T, std::move(N));
  }
  Value *createFPExt(Value *V, Type *T, std::string N = "") {
    return createCast(ValueKind::FPExt, V, T, std::move(N));
  }
  Value *createFPTrunc(Value *V, Type *T, std::string N = "") {
    return createCast(ValueKind::FPTrunc, V, T, std::move(N));
  }
  Value *createSIToFP(Value *V, Type *T, std::string N = "") {
    return createCast(ValueKind::SIToFP, V, T, std::move(N));
  }
  Value *createUIToFP(Value *V, Type *T, std::string N = "") {
    return createCast(ValueKind::UIToFP, V, T, std::move(N));
  }
  Value *createFPToSI(Value *V, Type *T, std::string N = "") {
    return createCast(ValueKind::FPToSI, V, T, std::move(N));
  }
  Value *createIntToPtr(Value *V, std::string N = "") {
    return createCast(ValueKind::IntToPtr, V, getPtrTy(), std::move(N));
  }
  Value *createPtrToInt(Value *V, std::string N = "") {
    return createCast(ValueKind::PtrToInt, V, getI64Ty(), std::move(N));
  }

  // -- Comparison / select -------------------------------------------------

  Value *createICmp(ICmpPred P, Value *L, Value *R, std::string N = "");
  Value *createFCmp(FCmpPred P, Value *L, Value *R, std::string N = "");
  Value *createSelect(Value *C, Value *T, Value *F, std::string N = "");

  // -- Memory --------------------------------------------------------------

  Value *createAlloca(Type *ElemTy, uint32_t NumElements = 1,
                      std::string N = "");
  Value *createLoad(Type *Ty, Value *Ptr, std::string N = "");
  void createStore(Value *V, Value *Ptr);
  Value *createPtrAdd(Value *Base, Value *Index, uint32_t ElemSize,
                      std::string N = "");
  /// ptradd with the element size taken from \p ElemTy.
  Value *createGep(Type *ElemTy, Value *Base, Value *Index,
                   std::string N = "") {
    return createPtrAdd(Base, Index, ElemTy->sizeInBytes(), std::move(N));
  }
  Value *createAtomicAdd(Value *Ptr, Value *V, std::string N = "");

  // -- GPU intrinsics ------------------------------------------------------

  Value *createThreadIdx(uint8_t Dim = 0, std::string N = "");
  Value *createBlockIdx(uint8_t Dim = 0, std::string N = "");
  Value *createBlockDim(uint8_t Dim = 0, std::string N = "");
  Value *createGridDim(uint8_t Dim = 0, std::string N = "");
  void createBarrier();

  /// blockIdx.x * blockDim.x + threadIdx.x as i32 — the ubiquitous global
  /// thread id idiom.
  Value *createGlobalThreadIdX(std::string N = "gtid");

  // -- Calls / control flow -------------------------------------------------

  Value *createCall(Function *Callee, const std::vector<Value *> &Args,
                    std::string N = "");
  PhiInst *createPhi(Type *Ty, std::string N = "");
  void createBr(BasicBlock *Dest);
  void createCondBr(Value *Cond, BasicBlock *T, BasicBlock *F);
  void createRet();
  void createRet(Value *V);

private:
  Instruction *insert(std::unique_ptr<Instruction> I, std::string Name);

  Context &Ctx;
  BasicBlock *InsertBlock = nullptr;
  Instruction *InsertBefore = nullptr;
};

} // namespace pir

#endif // PROTEUS_IR_IRBUILDER_H
