//===- Constants.h - PIR constants ------------------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Uniqued constant values. ConstantPtr carries a raw device address and is
/// produced by the JIT runtime when it links device global variables into a
/// specialized module (section 3.3 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_IR_CONSTANTS_H
#define PROTEUS_IR_CONSTANTS_H

#include "ir/Value.h"

namespace pir {

/// Common base for uniqued constants.
class Constant : public Value {
public:
  static bool classof(const Value *V) {
    ValueKind K = V->getKind();
    return K == ValueKind::ConstantInt || K == ValueKind::ConstantFP ||
           K == ValueKind::ConstantPtr;
  }

protected:
  Constant(ValueKind K, Type *T) : Value(K, T) {}
};

/// Integer constant (i1/i32/i64). The payload is stored zero-extended to 64
/// bits; signed interpretations sign-extend from the type's width.
class ConstantInt : public Constant {
public:
  ConstantInt(Type *Ty, uint64_t V)
      : Constant(ValueKind::ConstantInt, Ty), Val(maskToWidth(Ty, V)) {
    assert(Ty->isInteger() && "ConstantInt requires integer type");
  }

  /// Zero-extended payload.
  uint64_t getZExtValue() const { return Val; }

  /// Sign-extended payload.
  int64_t getSExtValue() const {
    unsigned Bits = getType()->integerBitWidth();
    if (Bits == 64)
      return static_cast<int64_t>(Val);
    uint64_t SignBit = 1ULL << (Bits - 1);
    return static_cast<int64_t>((Val ^ SignBit)) - static_cast<int64_t>(SignBit);
  }

  bool isZero() const { return Val == 0; }
  bool isOne() const { return Val == 1; }

  static uint64_t maskToWidth(Type *Ty, uint64_t V) {
    unsigned Bits = Ty->integerBitWidth();
    return Bits >= 64 ? V : (V & ((1ULL << Bits) - 1));
  }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::ConstantInt;
  }

private:
  uint64_t Val;
};

/// Floating-point constant (f32/f64). Stored as double; f32 constants are
/// kept in f32 precision (value round-trips through float).
class ConstantFP : public Constant {
public:
  ConstantFP(Type *Ty, double V)
      : Constant(ValueKind::ConstantFP, Ty),
        Val(Ty->isF32() ? static_cast<double>(static_cast<float>(V)) : V) {
    assert(Ty->isFloatingPoint() && "ConstantFP requires FP type");
  }

  double getValue() const { return Val; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::ConstantFP;
  }

private:
  double Val;
};

/// Raw pointer constant: a resolved device memory address. Address 0 is the
/// null pointer.
class ConstantPtr : public Constant {
public:
  ConstantPtr(Type *PtrTy, uint64_t Address)
      : Constant(ValueKind::ConstantPtr, PtrTy), Address(Address) {
    assert(PtrTy->isPointer() && "ConstantPtr requires pointer type");
  }

  uint64_t getAddress() const { return Address; }
  bool isNull() const { return Address == 0; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::ConstantPtr;
  }

private:
  uint64_t Address;
};

} // namespace pir

#endif // PROTEUS_IR_CONSTANTS_H
