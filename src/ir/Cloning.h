//===- Cloning.h - IR cloning utilities -------------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep-cloning of functions and modules. The JIT runtime clones the
/// extracted kernel module before specializing it, so the pristine bitcode
/// remains available for other specializations of the same kernel; the
/// inliner and loop unroller clone bodies/blocks through the same machinery.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_IR_CLONING_H
#define PROTEUS_IR_CLONING_H

#include <memory>
#include <string>
#include <unordered_map>

namespace pir {

class BasicBlock;
class Context;
class Function;
class Module;
class Value;

/// Mapping from original values to their clones, extended as cloning runs.
using ValueMap = std::unordered_map<Value *, Value *>;

/// Clones a single instruction. Operands are remapped through \p VM;
/// unmapped constants are translated into \p Ctx (identity for same-context
/// clones, since constants are uniqued per context) and memoized in \p VM;
/// other unmapped operands are used as-is, which is correct only for values
/// the caller guarantees are shared (same-context cloning, e.g. inlining).
/// Phi forward references get destination-context placeholders instead of
/// the original values so the source IR's use lists are never mutated —
/// cloning from a shared read-only prototype module is therefore safe to
/// run concurrently from multiple threads.
class Instruction;
std::unique_ptr<Instruction> cloneInstruction(Instruction &I, ValueMap &VM,
                                              Context &Ctx);

/// Clones \p Src into \p DestModule under \p NewName. Global variables and
/// callee functions referenced by \p Src must already exist in \p DestModule
/// under identical names (createFunctionDeclarations/linkage handled by the
/// caller); they are remapped by name.
Function *cloneFunctionInto(Module &DestModule, Function &Src,
                            const std::string &NewName);

/// Deep-clones an entire module (globals first, then functions, remapping
/// cross-references). \p Ctx may be a different context than the source's:
/// types and constants are translated into it.
std::unique_ptr<Module> cloneModule(Module &Src, Context &Ctx,
                                    const std::string &NewName);

} // namespace pir

#endif // PROTEUS_IR_CLONING_H
