//===- IRParser.h - PIR textual parser --------------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual PIR produced by IRPrinter. Besides round-trip testing
/// this is the front end of the Jitify-sim baseline, which (like NVIDIA's
/// Jitify) receives kernels as source strings and must parse and analyze
/// them at runtime — the overhead Proteus avoids by shipping bitcode.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_IR_IRPARSER_H
#define PROTEUS_IR_IRPARSER_H

#include <memory>
#include <string>

namespace pir {

class Context;
class Module;

/// Outcome of a parse: a module on success, a diagnostic on failure.
struct ParseResult {
  std::unique_ptr<Module> M;
  std::string Error;

  explicit operator bool() const { return M != nullptr; }
};

/// Parses \p Text into a fresh module owned by the result.
ParseResult parseModule(Context &Ctx, const std::string &Text);

} // namespace pir

#endif // PROTEUS_IR_IRPARSER_H
