//===- Dominators.h - dominator tree analysis -------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree built with the Cooper–Harvey–Kennedy iterative algorithm,
/// plus dominance frontiers (used by mem2reg's phi placement) and a
/// reverse-post-order walk helper shared by several passes.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_IR_DOMINATORS_H
#define PROTEUS_IR_DOMINATORS_H

#include <unordered_map>
#include <vector>

namespace pir {

class BasicBlock;
class Function;
class Instruction;
class Value;

/// Blocks of \p F in reverse post order from the entry. Unreachable blocks
/// are excluded.
std::vector<BasicBlock *> reversePostOrder(Function &F);

/// Immediate-dominator tree over the reachable CFG of one function.
class DominatorTree {
public:
  explicit DominatorTree(Function &F);

  /// Immediate dominator of \p BB (null for the entry block and for
  /// unreachable blocks).
  BasicBlock *getIDom(BasicBlock *BB) const;

  /// True if \p BB is reachable from the entry.
  bool isReachable(BasicBlock *BB) const { return Index.count(BB) != 0; }

  /// True if \p A dominates \p B (reflexive).
  bool dominates(BasicBlock *A, BasicBlock *B) const;

  /// True if the *definition* \p Def is available at the *use site*
  /// (\p UseSite): Def's block strictly dominates the use block, or both are
  /// in one block with Def earlier. Phi uses are checked against the end of
  /// the corresponding incoming block by the verifier, not here.
  bool dominates(const Instruction *Def, const Instruction *UseSite) const;

  /// Dominator-tree children of \p BB.
  const std::vector<BasicBlock *> &getChildren(BasicBlock *BB) const;

  /// Dominance frontier of \p BB.
  const std::vector<BasicBlock *> &getFrontier(BasicBlock *BB) const;

  /// Reverse post order used to build the tree (reachable blocks only).
  const std::vector<BasicBlock *> &getRPO() const { return RPO; }

private:
  void computeFrontiers();

  Function &F;
  std::vector<BasicBlock *> RPO;
  std::unordered_map<BasicBlock *, unsigned> Index; // position in RPO
  std::vector<int> IDom;                            // by RPO index, -1 = none
  std::unordered_map<BasicBlock *, std::vector<BasicBlock *>> Children;
  std::unordered_map<BasicBlock *, std::vector<BasicBlock *>> Frontier;
  std::vector<BasicBlock *> Empty;
};

} // namespace pir

#endif // PROTEUS_IR_DOMINATORS_H
