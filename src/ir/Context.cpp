//===- Context.cpp - PIR context / constant uniquing ------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Context.h"

#include "ir/Constants.h"
#include "support/Error.h"

#include <cstring>

using namespace pir;

Context::Context() = default;
Context::~Context() = default;

Type *Context::getType(Type::Kind K) {
  switch (K) {
  case Type::Kind::Void:
    return &VoidTy;
  case Type::Kind::I1:
    return &I1Ty;
  case Type::Kind::I32:
    return &I32Ty;
  case Type::Kind::I64:
    return &I64Ty;
  case Type::Kind::F32:
    return &F32Ty;
  case Type::Kind::F64:
    return &F64Ty;
  case Type::Kind::Ptr:
    return &PtrTy;
  }
  proteus_unreachable("unknown type kind");
}

ConstantInt *Context::getConstantInt(Type *Ty, uint64_t Value) {
  assert(Ty->isInteger() && "integer constant requires integer type");
  uint64_t Masked = ConstantInt::maskToWidth(Ty, Value);
  auto Key = std::make_pair(Ty->getKind(), Masked);
  auto It = IntConstants.find(Key);
  if (It != IntConstants.end())
    return It->second.get();
  auto C = std::make_unique<ConstantInt>(Ty, Masked);
  ConstantInt *Raw = C.get();
  IntConstants.emplace(Key, std::move(C));
  return Raw;
}

ConstantFP *Context::getConstantFP(Type *Ty, double Value) {
  assert(Ty->isFloatingPoint() && "FP constant requires FP type");
  if (Ty->isF32())
    Value = static_cast<double>(static_cast<float>(Value));
  // Key on the bit pattern so that -0.0 and NaN payloads stay distinct.
  uint64_t Bits;
  std::memcpy(&Bits, &Value, sizeof(Bits));
  auto Key = std::make_pair(Ty->getKind(), Bits);
  auto It = FPConstants.find(Key);
  if (It != FPConstants.end())
    return It->second.get();
  auto C = std::make_unique<ConstantFP>(Ty, Value);
  ConstantFP *Raw = C.get();
  FPConstants.emplace(Key, std::move(C));
  return Raw;
}

ConstantPtr *Context::getConstantPtr(uint64_t Address) {
  auto It = PtrConstants.find(Address);
  if (It != PtrConstants.end())
    return It->second.get();
  auto C = std::make_unique<ConstantPtr>(&PtrTy, Address);
  ConstantPtr *Raw = C.get();
  PtrConstants.emplace(Address, std::move(C));
  return Raw;
}
