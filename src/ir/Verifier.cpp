//===- Verifier.cpp - PIR well-formedness checks --------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/Dominators.h"
#include "ir/Module.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <unordered_set>

using namespace pir;
using namespace proteus;

std::string VerifyResult::message() const {
  std::string Out;
  for (const std::string &E : Errors) {
    Out += E;
    Out += '\n';
  }
  return Out;
}

namespace {

class FunctionVerifier {
public:
  FunctionVerifier(Function &F, VerifyResult &R) : F(F), R(R) {}

  void run() {
    if (F.isDeclaration())
      return;
    checkBlocks();
    if (!R.ok())
      return; // structural problems make dominance checks meaningless
    DominatorTree DT(F);
    checkSSA(DT);
  }

private:
  void err(const std::string &Msg) {
    R.Errors.push_back("function @" + F.getName() + ": " + Msg);
  }

  void checkBlocks() {
    for (BasicBlock &BB : F) {
      if (BB.empty()) {
        err("block has no instructions");
        continue;
      }
      Instruction *Term = BB.getTerminator();
      if (!Term) {
        err("block does not end with a terminator");
        continue;
      }
      bool SeenNonPhi = false;
      for (Instruction &I : BB) {
        if (I.isTerminator() && &I != Term)
          err("terminator in the middle of a block");
        if (isa<PhiInst>(&I)) {
          if (SeenNonPhi)
            err("phi after non-phi instruction");
        } else {
          SeenNonPhi = true;
        }
        checkInstruction(I);
      }
    }
  }

  void checkInstruction(Instruction &I) {
    for (Value *Op : I.operands()) {
      if (auto *OpInst = dyn_cast<Instruction>(Op)) {
        if (!OpInst->getParent() || OpInst->getFunction() != &F)
          err("operand instruction from another function");
      } else if (auto *A = dyn_cast<Argument>(Op)) {
        if (A->getParent() != &F)
          err("argument operand from another function");
      }
    }
    switch (I.getKind()) {
    case ValueKind::Ret: {
      auto &Ret = cast<RetInst>(I);
      if (F.getReturnType()->isVoid()) {
        if (Ret.hasReturnValue())
          err("void function returns a value");
      } else if (!Ret.hasReturnValue()) {
        err("non-void function returns nothing");
      } else if (Ret.getReturnValue()->getType() != F.getReturnType()) {
        err("return value type mismatch");
      }
      return;
    }
    case ValueKind::Phi: {
      auto &Phi = cast<PhiInst>(I);
      std::vector<BasicBlock *> Preds = I.getParent()->predecessors();
      if (Phi.getNumIncoming() != Preds.size()) {
        err("phi incoming count does not match predecessor count");
        return;
      }
      std::unordered_set<BasicBlock *> Seen;
      for (size_t K = 0; K != Phi.getNumIncoming(); ++K) {
        BasicBlock *In = Phi.getIncomingBlock(K);
        if (!Seen.insert(In).second)
          err("phi lists a predecessor twice");
        if (std::find(Preds.begin(), Preds.end(), In) == Preds.end())
          err("phi incoming block is not a predecessor");
        if (Phi.getIncomingValue(K)->getType() != Phi.getType())
          err("phi incoming value type mismatch");
      }
      return;
    }
    case ValueKind::Call: {
      auto &Call = cast<CallInst>(I);
      // The accessor cast<Function>s operand 0; a call whose callee slot
      // holds a null or non-function value (possible after a bad RAUW or a
      // corrupted bitcode round trip) must be diagnosed, not dereferenced.
      Function *Callee = dyn_cast_if_present<Function>(Call.getOperand(0));
      if (!Callee) {
        err("call callee is not a function");
        return;
      }
      if (Callee->getParent() != F.getParent()) {
        err("call to function outside this module");
        return;
      }
      if (Callee->isKernel())
        err("kernels cannot be called from device code");
      if (Call.getNumArgs() != Callee->getNumArgs()) {
        err("call arity mismatch");
        return;
      }
      for (size_t K = 0; K != Call.getNumArgs(); ++K)
        if (Call.getArg(K)->getType() != Callee->getArg(K)->getType())
          err("call argument type mismatch");
      if (Call.getType() != Callee->getReturnType())
        err("call result type mismatch");
      return;
    }
    case ValueKind::Load:
      if (!cast<LoadInst>(I).getPointer()->getType()->isPointer())
        err("load pointer operand must be pointer-typed");
      return;
    case ValueKind::Store: {
      auto &St = cast<StoreInst>(I);
      if (!St.getPointer()->getType()->isPointer()) {
        err("store pointer operand must be pointer-typed");
        return;
      }
      // Pointers are opaque, so the pointee contract is only checkable when
      // the address is a direct alloca (chasing ptradd chains would claim
      // type knowledge reinterpreting accesses legitimately lack).
      if (auto *A = dyn_cast<AllocaInst>(St.getPointer()))
        if (St.getValue()->getType() != A->getAllocatedType())
          err("store value type does not match the allocated type of its "
              "alloca pointee");
      return;
    }
    case ValueKind::PtrAdd: {
      auto &PA = cast<PtrAddInst>(I);
      if (!PA.getBase()->getType()->isPointer())
        err("ptradd base operand must be pointer-typed");
      if (!PA.getIndex()->getType()->isInteger() ||
          PA.getIndex()->getType()->isI1())
        err("ptradd index must be i32/i64");
      return;
    }
    case ValueKind::AtomicAdd:
      if (!cast<AtomicAddInst>(I).getPointer()->getType()->isPointer())
        err("atomicadd pointer operand must be pointer-typed");
      return;
    case ValueKind::CondBr:
      if (!cast<BranchInst>(I).getCondition()->getType()->isI1())
        err("conditional branch condition must be i1");
      return;
    default:
      break;
    }
    if (auto *Bin = dyn_cast<BinaryInst>(&I)) {
      Type *Ty = Bin->getType();
      bool IsFloatOp = I.getKind() >= ValueKind::FAdd &&
                       I.getKind() <= ValueKind::FMax &&
                       I.getKind() != ValueKind::SMin &&
                       I.getKind() != ValueKind::SMax;
      if (IsFloatOp && !Ty->isFloatingPoint())
        err("floating-point op on non-FP type");
      bool IsIntOp = (I.getKind() >= ValueKind::Add &&
                      I.getKind() <= ValueKind::AShr) ||
                     I.getKind() == ValueKind::SMin ||
                     I.getKind() == ValueKind::SMax;
      if (IsIntOp && !Ty->isInteger())
        err("integer op on non-integer type");
      return;
    }
    if (auto *C = dyn_cast<CastInst>(&I)) {
      Type *Src = C->getSource()->getType();
      Type *Dst = C->getType();
      switch (I.getKind()) {
      case ValueKind::Trunc:
        if (!Src->isInteger() || !Dst->isInteger() ||
            Src->integerBitWidth() <= Dst->integerBitWidth())
          err("invalid trunc");
        break;
      case ValueKind::ZExt:
      case ValueKind::SExt:
        if (!Src->isInteger() || !Dst->isInteger() ||
            Src->integerBitWidth() >= Dst->integerBitWidth())
          err("invalid integer extension");
        break;
      case ValueKind::FPExt:
        if (!Src->isF32() || !Dst->isF64())
          err("invalid fpext");
        break;
      case ValueKind::FPTrunc:
        if (!Src->isF64() || !Dst->isF32())
          err("invalid fptrunc");
        break;
      case ValueKind::SIToFP:
      case ValueKind::UIToFP:
        if (!Src->isInteger() || !Dst->isFloatingPoint())
          err("invalid int-to-fp cast");
        break;
      case ValueKind::FPToSI:
        if (!Src->isFloatingPoint() || !Dst->isInteger())
          err("invalid fp-to-int cast");
        break;
      case ValueKind::IntToPtr:
        if (!Src->isI64() || !Dst->isPointer())
          err("inttoptr requires i64 source");
        break;
      case ValueKind::PtrToInt:
        if (!Src->isPointer() || !Dst->isI64())
          err("ptrtoint requires i64 destination");
        break;
      default:
        break;
      }
      return;
    }
  }

  void checkSSA(DominatorTree &DT) {
    for (BasicBlock &BB : F) {
      if (!DT.isReachable(&BB))
        continue;
      for (Instruction &I : BB) {
        if (auto *Phi = dyn_cast<PhiInst>(&I)) {
          for (size_t K = 0; K != Phi->getNumIncoming(); ++K) {
            Value *In = Phi->getIncomingValue(K);
            auto *Def = dyn_cast<Instruction>(In);
            if (!Def)
              continue;
            BasicBlock *InBB = Phi->getIncomingBlock(K);
            // Definition must be available at the end of the incoming edge.
            if (!DT.isReachable(Def->getParent()))
              err("phi incoming defined in unreachable block");
            else if (!DT.dominates(Def->getParent(), InBB))
              err("phi incoming value does not dominate incoming edge");
          }
          continue;
        }
        for (Value *Op : I.operands()) {
          auto *Def = dyn_cast<Instruction>(Op);
          if (!Def)
            continue;
          if (!DT.isReachable(Def->getParent())) {
            err("use of value defined in unreachable block");
            continue;
          }
          if (!DT.dominates(Def, &I))
            err(formatString("definition of '%s' does not dominate a use",
                             Def->getName().c_str()));
        }
      }
    }
  }

  Function &F;
  VerifyResult &R;
};

} // namespace

VerifyResult pir::verifyFunction(Function &F) {
  VerifyResult R;
  FunctionVerifier(F, R).run();
  return R;
}

VerifyResult pir::verifyModule(Module &M) {
  VerifyResult R;
  for (const auto &F : M.functions()) {
    if (const auto &Ann = F->getJitAnnotation()) {
      for (uint32_t Idx : Ann->ArgIndices)
        if (Idx == 0 || Idx > F->getNumArgs())
          R.Errors.push_back("function @" + F->getName() +
                             ": jit annotation index out of range");
      if (!F->isKernel())
        R.Errors.push_back("function @" + F->getName() +
                           ": jit annotation on non-kernel");
    }
    FunctionVerifier(*F, R).run();
  }
  return R;
}
