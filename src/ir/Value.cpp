//===- Value.cpp - PIR value/use machinery ---------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Value.h"

#include "support/Error.h"

using namespace pir;

const char *pir::valueKindName(ValueKind K) {
  switch (K) {
  case ValueKind::ConstantInt:
    return "constant-int";
  case ValueKind::ConstantFP:
    return "constant-fp";
  case ValueKind::ConstantPtr:
    return "constant-ptr";
  case ValueKind::Argument:
    return "argument";
  case ValueKind::GlobalVariable:
    return "global";
  case ValueKind::Function:
    return "function";
  case ValueKind::BasicBlock:
    return "block";
  case ValueKind::InstBegin:
  case ValueKind::InstEnd:
    return "<sentinel>";
  case ValueKind::Add:
    return "add";
  case ValueKind::Sub:
    return "sub";
  case ValueKind::Mul:
    return "mul";
  case ValueKind::SDiv:
    return "sdiv";
  case ValueKind::UDiv:
    return "udiv";
  case ValueKind::SRem:
    return "srem";
  case ValueKind::URem:
    return "urem";
  case ValueKind::And:
    return "and";
  case ValueKind::Or:
    return "or";
  case ValueKind::Xor:
    return "xor";
  case ValueKind::Shl:
    return "shl";
  case ValueKind::LShr:
    return "lshr";
  case ValueKind::AShr:
    return "ashr";
  case ValueKind::FAdd:
    return "fadd";
  case ValueKind::FSub:
    return "fsub";
  case ValueKind::FMul:
    return "fmul";
  case ValueKind::FDiv:
    return "fdiv";
  case ValueKind::Pow:
    return "pow";
  case ValueKind::FMin:
    return "fmin";
  case ValueKind::FMax:
    return "fmax";
  case ValueKind::SMin:
    return "smin";
  case ValueKind::SMax:
    return "smax";
  case ValueKind::FNeg:
    return "fneg";
  case ValueKind::Sqrt:
    return "sqrt";
  case ValueKind::Exp:
    return "exp";
  case ValueKind::Log:
    return "log";
  case ValueKind::Sin:
    return "sin";
  case ValueKind::Cos:
    return "cos";
  case ValueKind::Fabs:
    return "fabs";
  case ValueKind::Floor:
    return "floor";
  case ValueKind::Trunc:
    return "trunc";
  case ValueKind::ZExt:
    return "zext";
  case ValueKind::SExt:
    return "sext";
  case ValueKind::FPExt:
    return "fpext";
  case ValueKind::FPTrunc:
    return "fptrunc";
  case ValueKind::SIToFP:
    return "sitofp";
  case ValueKind::UIToFP:
    return "uitofp";
  case ValueKind::FPToSI:
    return "fptosi";
  case ValueKind::IntToPtr:
    return "inttoptr";
  case ValueKind::PtrToInt:
    return "ptrtoint";
  case ValueKind::ICmp:
    return "icmp";
  case ValueKind::FCmp:
    return "fcmp";
  case ValueKind::Select:
    return "select";
  case ValueKind::Alloca:
    return "alloca";
  case ValueKind::Load:
    return "load";
  case ValueKind::Store:
    return "store";
  case ValueKind::PtrAdd:
    return "ptradd";
  case ValueKind::AtomicAdd:
    return "atomicadd";
  case ValueKind::ThreadIdx:
    return "thread_idx";
  case ValueKind::BlockIdx:
    return "block_idx";
  case ValueKind::BlockDim:
    return "block_dim";
  case ValueKind::GridDim:
    return "grid_dim";
  case ValueKind::Barrier:
    return "barrier";
  case ValueKind::Call:
    return "call";
  case ValueKind::Phi:
    return "phi";
  case ValueKind::Br:
    return "br";
  case ValueKind::CondBr:
    return "condbr";
  case ValueKind::Ret:
    return "ret";
  }
  proteus_unreachable("unknown value kind");
}

Value::~Value() {
  assert(UseList.empty() &&
         "value deleted while still in use; erase users first");
}

uint32_t Value::addUse(User *U, uint32_t OperandIndex) {
  UseList.push_back(Use{U, OperandIndex});
  return static_cast<uint32_t>(UseList.size() - 1);
}

void Value::removeUse(uint32_t Slot) {
  assert(Slot < UseList.size() && "bad use slot");
  uint32_t Last = static_cast<uint32_t>(UseList.size() - 1);
  if (Slot != Last) {
    UseList[Slot] = UseList[Last];
    // Fix the back-pointer of the use we moved into this slot.
    Use &Moved = UseList[Slot];
    Moved.TheUser->UseSlots[Moved.OperandIndex] = Slot;
  }
  UseList.pop_back();
}

void Value::replaceAllUsesWith(Value *NewValue) {
  assert(NewValue && "cannot RAUW with null");
  assert(NewValue != this && "RAUW with self is a no-op loop");
  assert(NewValue->getType() == getType() &&
         "RAUW requires matching types");
  while (!UseList.empty()) {
    Use U = UseList.back();
    U.TheUser->setOperand(U.OperandIndex, NewValue);
  }
}

User::~User() {
  // Subclasses are expected to have called dropAllReferences() via
  // eraseFromParent paths; handle direct deletion too.
  dropAllReferences();
}

void User::addOperand(Value *V) {
  assert(V && "null operand");
  uint32_t Index = static_cast<uint32_t>(Operands.size());
  Operands.push_back(V);
  UseSlots.push_back(V->addUse(this, Index));
}

void User::removeLastOperand() {
  assert(!Operands.empty() && "no operand to remove");
  uint32_t Index = static_cast<uint32_t>(Operands.size() - 1);
  Operands[Index]->removeUse(UseSlots[Index]);
  Operands.pop_back();
  UseSlots.pop_back();
}

void User::setOperand(size_t I, Value *V) {
  assert(I < Operands.size() && "operand index out of range");
  assert(V && "null operand");
  if (Operands[I] == V)
    return;
  Operands[I]->removeUse(UseSlots[I]);
  Operands[I] = V;
  UseSlots[I] = V->addUse(this, static_cast<uint32_t>(I));
}

void User::dropAllReferences() {
  for (size_t I = 0, E = Operands.size(); I != E; ++I)
    Operands[I]->removeUse(UseSlots[I]);
  Operands.clear();
  UseSlots.clear();
}
