//===- OpSemantics.h - shared evaluation semantics --------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One definition of what every PIR operation computes, shared by three
/// consumers that must agree bit-for-bit: the IR interpreter (reference
/// semantics for differential testing), the constant folder (compile-time
/// evaluation), and the GPU simulator's machine-code executor. Values are
/// carried as 64-bit containers: integers zero-extended to the container,
/// f32 in the low 32 bits (IEEE single), f64 as the full container.
///
/// Integer division/remainder by zero is *defined* to produce 0 — the
/// simulator must not trap, and the folder must match the simulator.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_IR_OPSEMANTICS_H
#define PROTEUS_IR_OPSEMANTICS_H

#include "ir/Instructions.h"
#include "support/Error.h"

#include <cmath>
#include <cstring>

namespace pir {
namespace sem {

inline uint64_t boxF32(float F) {
  uint32_t B;
  std::memcpy(&B, &F, sizeof(B));
  return B;
}

inline float unboxF32(uint64_t Bits) {
  uint32_t B = static_cast<uint32_t>(Bits);
  float F;
  std::memcpy(&F, &B, sizeof(F));
  return F;
}

inline uint64_t boxF64(double D) {
  uint64_t B;
  std::memcpy(&B, &D, sizeof(B));
  return B;
}

inline double unboxF64(uint64_t Bits) {
  double D;
  std::memcpy(&D, &Bits, sizeof(D));
  return D;
}

inline uint64_t maskToType(Type *Ty, uint64_t Bits) {
  switch (Ty->getKind()) {
  case Type::Kind::I1:
    return Bits & 1;
  case Type::Kind::I32:
  case Type::Kind::F32:
    return Bits & 0xFFFFFFFFULL;
  default:
    return Bits;
  }
}

inline int64_t signExtend(Type *Ty, uint64_t Bits) {
  switch (Ty->getKind()) {
  case Type::Kind::I1:
    return (Bits & 1) ? -1 : 0;
  case Type::Kind::I32:
    return static_cast<int64_t>(static_cast<int32_t>(Bits));
  default:
    return static_cast<int64_t>(Bits);
  }
}

/// Evaluates a binary operation of kind \p K on operand type \p Ty.
inline uint64_t evalBinary(ValueKind K, Type *Ty, uint64_t A, uint64_t B) {
  const bool IsF32 = Ty->isF32();
  auto FoldFP = [&](auto Fn) -> uint64_t {
    if (IsF32)
      return boxF32(static_cast<float>(Fn(unboxF32(A), unboxF32(B))));
    return boxF64(Fn(unboxF64(A), unboxF64(B)));
  };
  const uint64_t UA = maskToType(Ty, A), UB = maskToType(Ty, B);
  const int64_t SA = signExtend(Ty, UA), SB = signExtend(Ty, UB);
  const unsigned Width = Ty->isInteger() ? Ty->integerBitWidth() : 64;
  const uint64_t ShAmt = Width ? (UB % Width) : 0;
  switch (K) {
  case ValueKind::Add:
    return maskToType(Ty, UA + UB);
  case ValueKind::Sub:
    return maskToType(Ty, UA - UB);
  case ValueKind::Mul:
    return maskToType(Ty, UA * UB);
  case ValueKind::SDiv:
    if (SB == 0)
      return 0;
    if (SA == INT64_MIN && SB == -1) // would trap natively; wraps instead
      return maskToType(Ty, static_cast<uint64_t>(SA));
    return maskToType(Ty, static_cast<uint64_t>(SA / SB));
  case ValueKind::UDiv:
    return UB == 0 ? 0 : maskToType(Ty, UA / UB);
  case ValueKind::SRem:
    if (SB == 0 || (SA == INT64_MIN && SB == -1))
      return 0;
    return maskToType(Ty, static_cast<uint64_t>(SA % SB));
  case ValueKind::URem:
    return UB == 0 ? 0 : maskToType(Ty, UA % UB);
  case ValueKind::And:
    return UA & UB;
  case ValueKind::Or:
    return UA | UB;
  case ValueKind::Xor:
    return UA ^ UB;
  case ValueKind::Shl:
    return maskToType(Ty, UA << ShAmt);
  case ValueKind::LShr:
    return maskToType(Ty, UA >> ShAmt);
  case ValueKind::AShr:
    return maskToType(Ty, static_cast<uint64_t>(SA >> ShAmt));
  case ValueKind::FAdd:
    return FoldFP([](auto X, auto Y) { return X + Y; });
  case ValueKind::FSub:
    return FoldFP([](auto X, auto Y) { return X - Y; });
  case ValueKind::FMul:
    return FoldFP([](auto X, auto Y) { return X * Y; });
  case ValueKind::FDiv:
    return FoldFP([](auto X, auto Y) { return X / Y; });
  case ValueKind::Pow:
    if (IsF32)
      return boxF32(std::pow(unboxF32(A), unboxF32(B)));
    return boxF64(std::pow(unboxF64(A), unboxF64(B)));
  case ValueKind::FMin:
    return FoldFP([](auto X, auto Y) { return X < Y ? X : Y; });
  case ValueKind::FMax:
    return FoldFP([](auto X, auto Y) { return X > Y ? X : Y; });
  case ValueKind::SMin:
    return maskToType(Ty, static_cast<uint64_t>(SA < SB ? SA : SB));
  case ValueKind::SMax:
    return maskToType(Ty, static_cast<uint64_t>(SA > SB ? SA : SB));
  default:
    proteus_unreachable("not a binary opcode");
  }
}

/// Evaluates a unary operation of kind \p K on operand type \p Ty.
inline uint64_t evalUnary(ValueKind K, Type *Ty, uint64_t A) {
  const bool IsF32 = Ty->isF32();
  auto FoldFP = [&](auto Fn) -> uint64_t {
    if (IsF32)
      return boxF32(static_cast<float>(Fn(unboxF32(A))));
    return boxF64(Fn(unboxF64(A)));
  };
  switch (K) {
  case ValueKind::FNeg:
    return FoldFP([](auto X) { return -X; });
  case ValueKind::Sqrt:
    if (IsF32)
      return boxF32(std::sqrt(unboxF32(A)));
    return boxF64(std::sqrt(unboxF64(A)));
  case ValueKind::Exp:
    if (IsF32)
      return boxF32(std::exp(unboxF32(A)));
    return boxF64(std::exp(unboxF64(A)));
  case ValueKind::Log:
    if (IsF32)
      return boxF32(std::log(unboxF32(A)));
    return boxF64(std::log(unboxF64(A)));
  case ValueKind::Sin:
    if (IsF32)
      return boxF32(std::sin(unboxF32(A)));
    return boxF64(std::sin(unboxF64(A)));
  case ValueKind::Cos:
    if (IsF32)
      return boxF32(std::cos(unboxF32(A)));
    return boxF64(std::cos(unboxF64(A)));
  case ValueKind::Fabs:
    return FoldFP([](auto X) { return X < 0 ? -X : (X == 0 ? X * X : X); });
  case ValueKind::Floor:
    if (IsF32)
      return boxF32(std::floor(unboxF32(A)));
    return boxF64(std::floor(unboxF64(A)));
  default:
    proteus_unreachable("not a unary opcode");
  }
}

/// Evaluates a cast from \p SrcTy to \p DstTy.
inline uint64_t evalCast(ValueKind K, Type *SrcTy, Type *DstTy, uint64_t A) {
  switch (K) {
  case ValueKind::Trunc:
    return maskToType(DstTy, A);
  case ValueKind::ZExt:
    return maskToType(SrcTy, A);
  case ValueKind::SExt:
    return maskToType(DstTy,
                      static_cast<uint64_t>(signExtend(SrcTy, A)));
  case ValueKind::FPExt:
    return boxF64(static_cast<double>(unboxF32(A)));
  case ValueKind::FPTrunc:
    return boxF32(static_cast<float>(unboxF64(A)));
  case ValueKind::SIToFP: {
    int64_t S = signExtend(SrcTy, A);
    return DstTy->isF32() ? boxF32(static_cast<float>(S))
                          : boxF64(static_cast<double>(S));
  }
  case ValueKind::UIToFP: {
    uint64_t U = maskToType(SrcTy, A);
    return DstTy->isF32() ? boxF32(static_cast<float>(U))
                          : boxF64(static_cast<double>(U));
  }
  case ValueKind::FPToSI: {
    double D = SrcTy->isF32() ? static_cast<double>(unboxF32(A)) : unboxF64(A);
    // Saturating-ish conversion: NaN -> 0, out-of-range clamps, matching
    // what the simulator executes.
    if (std::isnan(D))
      return 0;
    int64_t S;
    if (D >= 9.2233720368547758e18)
      S = INT64_MAX;
    else if (D <= -9.2233720368547758e18)
      S = INT64_MIN;
    else
      S = static_cast<int64_t>(D);
    return maskToType(DstTy, static_cast<uint64_t>(S));
  }
  case ValueKind::IntToPtr:
  case ValueKind::PtrToInt:
    return A;
  default:
    proteus_unreachable("not a cast opcode");
  }
}

inline bool evalICmp(ICmpPred P, Type *Ty, uint64_t A, uint64_t B) {
  const uint64_t UA = maskToType(Ty, A), UB = maskToType(Ty, B);
  const int64_t SA = signExtend(Ty, UA), SB = signExtend(Ty, UB);
  switch (P) {
  case ICmpPred::EQ:
    return UA == UB;
  case ICmpPred::NE:
    return UA != UB;
  case ICmpPred::SLT:
    return SA < SB;
  case ICmpPred::SLE:
    return SA <= SB;
  case ICmpPred::SGT:
    return SA > SB;
  case ICmpPred::SGE:
    return SA >= SB;
  case ICmpPred::ULT:
    return UA < UB;
  case ICmpPred::ULE:
    return UA <= UB;
  case ICmpPred::UGT:
    return UA > UB;
  case ICmpPred::UGE:
    return UA >= UB;
  }
  proteus_unreachable("unknown icmp predicate");
}

inline bool evalFCmp(FCmpPred P, Type *Ty, uint64_t A, uint64_t B) {
  double X = Ty->isF32() ? static_cast<double>(unboxF32(A)) : unboxF64(A);
  double Y = Ty->isF32() ? static_cast<double>(unboxF32(B)) : unboxF64(B);
  switch (P) {
  case FCmpPred::OEQ:
    return X == Y;
  case FCmpPred::ONE:
    return X < Y || X > Y; // ordered-and-unequal
  case FCmpPred::OLT:
    return X < Y;
  case FCmpPred::OLE:
    return X <= Y;
  case FCmpPred::OGT:
    return X > Y;
  case FCmpPred::OGE:
    return X >= Y;
  }
  proteus_unreachable("unknown fcmp predicate");
}

} // namespace sem
} // namespace pir

#endif // PROTEUS_IR_OPSEMANTICS_H
