//===- Dominators.cpp - dominator tree analysis --------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Dominators.h"

#include "ir/Function.h"

#include <algorithm>
#include <cassert>

using namespace pir;

std::vector<BasicBlock *> pir::reversePostOrder(Function &F) {
  std::vector<BasicBlock *> PostOrder;
  std::unordered_map<BasicBlock *, unsigned> State; // 0 new, 1 open, 2 done
  std::vector<std::pair<BasicBlock *, size_t>> Stack;
  if (F.isDeclaration())
    return PostOrder;
  BasicBlock *Entry = &F.getEntryBlock();
  Stack.push_back({Entry, 0});
  State[Entry] = 1;
  while (!Stack.empty()) {
    auto &[BB, NextSucc] = Stack.back();
    std::vector<BasicBlock *> Succs = BB->successors();
    if (NextSucc < Succs.size()) {
      BasicBlock *S = Succs[NextSucc++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.push_back({S, 0});
      }
      continue;
    }
    State[BB] = 2;
    PostOrder.push_back(BB);
    Stack.pop_back();
  }
  std::reverse(PostOrder.begin(), PostOrder.end());
  return PostOrder;
}

DominatorTree::DominatorTree(Function &F) : F(F) {
  RPO = reversePostOrder(F);
  for (unsigned I = 0; I != RPO.size(); ++I)
    Index[RPO[I]] = I;
  IDom.assign(RPO.size(), -1);
  if (RPO.empty())
    return;
  IDom[0] = 0; // entry's idom is itself during iteration

  auto intersect = [&](int A, int B) {
    while (A != B) {
      while (A > B)
        A = IDom[A];
      while (B > A)
        B = IDom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned I = 1; I < RPO.size(); ++I) {
      int NewIDom = -1;
      for (BasicBlock *P : RPO[I]->predecessors()) {
        auto It = Index.find(P);
        if (It == Index.end())
          continue; // unreachable predecessor
        int PI = static_cast<int>(It->second);
        if (IDom[PI] < 0 && PI != 0)
          continue; // not yet processed
        NewIDom = NewIDom < 0 ? PI : intersect(PI, NewIDom);
      }
      if (NewIDom >= 0 && IDom[I] != NewIDom) {
        IDom[I] = NewIDom;
        Changed = true;
      }
    }
  }

  for (unsigned I = 1; I < RPO.size(); ++I)
    if (IDom[I] >= 0)
      Children[RPO[IDom[I]]].push_back(RPO[I]);

  computeFrontiers();
}

BasicBlock *DominatorTree::getIDom(BasicBlock *BB) const {
  auto It = Index.find(BB);
  if (It == Index.end() || It->second == 0)
    return nullptr;
  int D = IDom[It->second];
  return D < 0 ? nullptr : RPO[D];
}

bool DominatorTree::dominates(BasicBlock *A, BasicBlock *B) const {
  auto AIt = Index.find(A);
  auto BIt = Index.find(B);
  if (AIt == Index.end() || BIt == Index.end())
    return false;
  unsigned AI = AIt->second;
  int Cur = static_cast<int>(BIt->second);
  for (;;) {
    if (static_cast<unsigned>(Cur) == AI)
      return true;
    if (Cur == 0)
      return false;
    Cur = IDom[Cur];
    if (Cur < 0)
      return false;
  }
}

bool DominatorTree::dominates(const Instruction *Def,
                              const Instruction *UseSite) const {
  BasicBlock *DefBB = Def->getParent();
  BasicBlock *UseBB = UseSite->getParent();
  if (DefBB != UseBB)
    return dominates(DefBB, UseBB);
  for (Instruction &I : *DefBB) {
    if (&I == Def)
      return true;
    if (&I == UseSite)
      return false;
  }
  assert(false && "instructions not found in their block");
  return false;
}

const std::vector<BasicBlock *> &
DominatorTree::getChildren(BasicBlock *BB) const {
  auto It = Children.find(BB);
  return It == Children.end() ? Empty : It->second;
}

const std::vector<BasicBlock *> &
DominatorTree::getFrontier(BasicBlock *BB) const {
  auto It = Frontier.find(BB);
  return It == Frontier.end() ? Empty : It->second;
}

void DominatorTree::computeFrontiers() {
  for (BasicBlock *BB : RPO) {
    std::vector<BasicBlock *> Preds;
    for (BasicBlock *P : BB->predecessors())
      if (Index.count(P))
        Preds.push_back(P);
    if (Preds.size() < 2)
      continue;
    BasicBlock *IDomBB = getIDom(BB);
    for (BasicBlock *P : Preds) {
      BasicBlock *Runner = P;
      while (Runner && Runner != IDomBB) {
        auto &DF = Frontier[Runner];
        if (std::find(DF.begin(), DF.end(), BB) == DF.end())
          DF.push_back(BB);
        Runner = getIDom(Runner);
        if (!Runner && Runner != IDomBB)
          break;
      }
    }
  }
}
