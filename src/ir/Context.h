//===- Context.h - PIR context / constant uniquing --------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Context owns the uniqued Type singletons and uniqued Constants.
/// Everything built within one Context may be freely mixed; Modules from
/// different Contexts may not reference each other's values.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_IR_CONTEXT_H
#define PROTEUS_IR_CONTEXT_H

#include "ir/Type.h"

#include <cstdint>
#include <map>
#include <memory>

namespace pir {

class Constant;
class ConstantInt;
class ConstantFP;
class ConstantPtr;

/// Owner of types and uniqued constants.
class Context {
public:
  Context();
  ~Context();

  Context(const Context &) = delete;
  Context &operator=(const Context &) = delete;

  Type *getVoidTy() { return &VoidTy; }
  Type *getI1Ty() { return &I1Ty; }
  Type *getI32Ty() { return &I32Ty; }
  Type *getI64Ty() { return &I64Ty; }
  Type *getF32Ty() { return &F32Ty; }
  Type *getF64Ty() { return &F64Ty; }
  Type *getPtrTy() { return &PtrTy; }

  /// Returns the type with the given kind.
  Type *getType(Type::Kind K);

  /// Uniqued integer constant of type \p Ty (I1/I32/I64). \p Value is stored
  /// zero-extended; signed interpretation happens at use sites.
  ConstantInt *getConstantInt(Type *Ty, uint64_t Value);

  ConstantInt *getTrue() { return getConstantInt(&I1Ty, 1); }
  ConstantInt *getFalse() { return getConstantInt(&I1Ty, 0); }
  ConstantInt *getInt32(uint32_t V) { return getConstantInt(&I32Ty, V); }
  ConstantInt *getInt64(uint64_t V) { return getConstantInt(&I64Ty, V); }

  /// Uniqued floating-point constant of type \p Ty (F32/F64).
  ConstantFP *getConstantFP(Type *Ty, double Value);

  ConstantFP *getFloat(float V) {
    return getConstantFP(&F32Ty, static_cast<double>(V));
  }
  ConstantFP *getDouble(double V) { return getConstantFP(&F64Ty, V); }

  /// Uniqued raw pointer constant. Address 0 doubles as the null pointer.
  /// JIT-time linking of device globals rewrites GlobalVariable references
  /// into ConstantPtr addresses resolved via gpuGetSymbolAddress.
  ConstantPtr *getConstantPtr(uint64_t Address);

  ConstantPtr *getNullPtr() { return getConstantPtr(0); }

private:
  Type VoidTy{Type::Kind::Void};
  Type I1Ty{Type::Kind::I1};
  Type I32Ty{Type::Kind::I32};
  Type I64Ty{Type::Kind::I64};
  Type F32Ty{Type::Kind::F32};
  Type F64Ty{Type::Kind::F64};
  Type PtrTy{Type::Kind::Ptr};

  std::map<std::pair<Type::Kind, uint64_t>, std::unique_ptr<ConstantInt>>
      IntConstants;
  std::map<std::pair<Type::Kind, uint64_t>, std::unique_ptr<ConstantFP>>
      FPConstants;
  std::map<uint64_t, std::unique_ptr<ConstantPtr>> PtrConstants;
};

} // namespace pir

#endif // PROTEUS_IR_CONTEXT_H
