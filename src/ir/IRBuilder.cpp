//===- IRBuilder.cpp - PIR construction helper --------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"

using namespace pir;

Instruction *IRBuilder::insert(std::unique_ptr<Instruction> I,
                               std::string Name) {
  assert(InsertBlock && "no insertion point set");
  if (!Name.empty())
    I->setName(std::move(Name));
  if (InsertBefore)
    return InsertBlock->insertBefore(InsertBefore, std::move(I));
  return InsertBlock->append(std::move(I));
}

Value *IRBuilder::createBinary(ValueKind K, Value *L, Value *R,
                               std::string Name) {
  return insert(std::make_unique<BinaryInst>(K, L, R), std::move(Name));
}

Value *IRBuilder::createUnary(ValueKind K, Value *V, std::string Name) {
  return insert(std::make_unique<UnaryInst>(K, V), std::move(Name));
}

Value *IRBuilder::createCast(ValueKind K, Value *V, Type *DestTy,
                             std::string Name) {
  return insert(std::make_unique<CastInst>(K, V, DestTy), std::move(Name));
}

Value *IRBuilder::createICmp(ICmpPred P, Value *L, Value *R,
                             std::string Name) {
  return insert(std::make_unique<ICmpInst>(P, L, R, Ctx.getI1Ty()),
                std::move(Name));
}

Value *IRBuilder::createFCmp(FCmpPred P, Value *L, Value *R,
                             std::string Name) {
  return insert(std::make_unique<FCmpInst>(P, L, R, Ctx.getI1Ty()),
                std::move(Name));
}

Value *IRBuilder::createSelect(Value *C, Value *T, Value *F,
                               std::string Name) {
  return insert(std::make_unique<SelectInst>(C, T, F), std::move(Name));
}

Value *IRBuilder::createAlloca(Type *ElemTy, uint32_t NumElements,
                               std::string Name) {
  return insert(
      std::make_unique<AllocaInst>(Ctx.getPtrTy(), ElemTy, NumElements),
      std::move(Name));
}

Value *IRBuilder::createLoad(Type *Ty, Value *Ptr, std::string Name) {
  return insert(std::make_unique<LoadInst>(Ty, Ptr), std::move(Name));
}

void IRBuilder::createStore(Value *V, Value *Ptr) {
  insert(std::make_unique<StoreInst>(V, Ptr, Ctx.getVoidTy()), "");
}

Value *IRBuilder::createPtrAdd(Value *Base, Value *Index, uint32_t ElemSize,
                               std::string Name) {
  return insert(std::make_unique<PtrAddInst>(Base, Index, ElemSize),
                std::move(Name));
}

Value *IRBuilder::createAtomicAdd(Value *Ptr, Value *V, std::string Name) {
  return insert(std::make_unique<AtomicAddInst>(Ptr, V), std::move(Name));
}

Value *IRBuilder::createThreadIdx(uint8_t Dim, std::string Name) {
  return insert(std::make_unique<GpuIndexInst>(ValueKind::ThreadIdx, Dim,
                                               Ctx.getI32Ty()),
                std::move(Name));
}

Value *IRBuilder::createBlockIdx(uint8_t Dim, std::string Name) {
  return insert(std::make_unique<GpuIndexInst>(ValueKind::BlockIdx, Dim,
                                               Ctx.getI32Ty()),
                std::move(Name));
}

Value *IRBuilder::createBlockDim(uint8_t Dim, std::string Name) {
  return insert(std::make_unique<GpuIndexInst>(ValueKind::BlockDim, Dim,
                                               Ctx.getI32Ty()),
                std::move(Name));
}

Value *IRBuilder::createGridDim(uint8_t Dim, std::string Name) {
  return insert(std::make_unique<GpuIndexInst>(ValueKind::GridDim, Dim,
                                               Ctx.getI32Ty()),
                std::move(Name));
}

void IRBuilder::createBarrier() {
  insert(std::make_unique<BarrierInst>(Ctx.getVoidTy()), "");
}

Value *IRBuilder::createGlobalThreadIdX(std::string Name) {
  Value *Bid = createBlockIdx(0, "bid");
  Value *Bdim = createBlockDim(0, "bdim");
  Value *Tid = createThreadIdx(0, "tid");
  Value *Base = createMul(Bid, Bdim);
  return createAdd(Base, Tid, std::move(Name));
}

Value *IRBuilder::createCall(Function *Callee,
                             const std::vector<Value *> &Args,
                             std::string Name) {
  assert(Callee->getNumArgs() == Args.size() && "call arity mismatch");
  return insert(
      std::make_unique<CallInst>(Callee->getReturnType(), Callee, Args),
      std::move(Name));
}

PhiInst *IRBuilder::createPhi(Type *Ty, std::string Name) {
  // Phis must be grouped at the block head; insert after existing phis.
  assert(InsertBlock && "no insertion point set");
  auto Phi = std::make_unique<PhiInst>(Ty);
  if (!Name.empty())
    Phi->setName(std::move(Name));
  PhiInst *Raw = Phi.get();
  for (Instruction &I : *InsertBlock) {
    if (!isa<PhiInst>(&I)) {
      InsertBlock->insertBefore(&I, std::move(Phi));
      return Raw;
    }
  }
  InsertBlock->append(std::move(Phi));
  return Raw;
}

void IRBuilder::createBr(BasicBlock *Dest) {
  insert(std::make_unique<BranchInst>(Dest, Ctx.getVoidTy()), "");
}

void IRBuilder::createCondBr(Value *Cond, BasicBlock *T, BasicBlock *F) {
  insert(std::make_unique<BranchInst>(Cond, T, F, Ctx.getVoidTy()), "");
}

void IRBuilder::createRet() {
  insert(std::make_unique<RetInst>(Ctx.getVoidTy()), "");
}

void IRBuilder::createRet(Value *V) {
  insert(std::make_unique<RetInst>(V, Ctx.getVoidTy()), "");
}
