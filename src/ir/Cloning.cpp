//===- Cloning.cpp - IR cloning utilities ---------------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Cloning.h"

#include "ir/Constants.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "support/Error.h"

using namespace pir;
using namespace proteus;

namespace {

/// Returns the destination-context singleton for \p Ty. Identity when the
/// source already lives in \p Ctx (types are uniqued per context), which is
/// what makes cross-context cloning a strict generalization of the original
/// same-context behavior.
Type *mapType(Type *Ty, Context &Ctx) { return Ctx.getType(Ty->getKind()); }

/// Re-creates \p C inside \p Ctx. Constants are uniqued per context, so for
/// same-context cloning this returns \p C itself.
Constant *translateConstant(Constant *C, Context &Ctx) {
  if (auto *CI = dyn_cast<ConstantInt>(C))
    return Ctx.getConstantInt(mapType(CI->getType(), Ctx), CI->getZExtValue());
  if (auto *CF = dyn_cast<ConstantFP>(C))
    return Ctx.getConstantFP(mapType(CF->getType(), Ctx), CF->getValue());
  if (auto *CP = dyn_cast<ConstantPtr>(C))
    return Ctx.getConstantPtr(CP->getAddress());
  proteus_unreachable("unhandled constant kind in translateConstant");
}

Value *mapOperand(Value *Op, ValueMap &VM, Context &Ctx) {
  auto It = VM.find(Op);
  if (It != VM.end())
    return It->second;
  // Unmapped constants are translated into the destination context (identity
  // for same-context clones) and memoized. Other unmapped values are used
  // as-is, which is correct only for values the caller guarantees are shared
  // (e.g. caller-context values during inlining).
  if (auto *C = dyn_cast<Constant>(Op)) {
    Value *T = translateConstant(C, Ctx);
    VM[Op] = T;
    return T;
  }
  return Op;
}

/// A typed throw-away incoming value for phi forward references. Using a
/// destination-context constant (instead of the original value) keeps the
/// source IR's use lists untouched, so a shared read-only prototype module
/// can be cloned from concurrently. The second phi-patch pass replaces it.
Value *phiPlaceholder(Type *Ty, Context &Ctx) {
  switch (Ty->getKind()) {
  case Type::Kind::F32:
  case Type::Kind::F64:
    return Ctx.getConstantFP(Ty, 0.0);
  case Type::Kind::Ptr:
    return Ctx.getNullPtr();
  default:
    return Ctx.getConstantInt(Ty, 0);
  }
}

} // namespace

std::unique_ptr<Instruction> pir::cloneInstruction(Instruction &I,
                                                   ValueMap &VM,
                                                   Context &Ctx) {
  auto Op = [&](size_t K) { return mapOperand(I.getOperand(K), VM, Ctx); };

  switch (I.getKind()) {
  case ValueKind::ICmp: {
    auto &C = cast<ICmpInst>(I);
    return std::make_unique<ICmpInst>(C.getPredicate(), Op(0), Op(1),
                                      Ctx.getI1Ty());
  }
  case ValueKind::FCmp: {
    auto &C = cast<FCmpInst>(I);
    return std::make_unique<FCmpInst>(C.getPredicate(), Op(0), Op(1),
                                      Ctx.getI1Ty());
  }
  case ValueKind::Select:
    return std::make_unique<SelectInst>(Op(0), Op(1), Op(2));
  case ValueKind::Alloca: {
    auto &A = cast<AllocaInst>(I);
    return std::make_unique<AllocaInst>(Ctx.getPtrTy(),
                                        mapType(A.getAllocatedType(), Ctx),
                                        A.getNumElements());
  }
  case ValueKind::Load:
    return std::make_unique<LoadInst>(mapType(I.getType(), Ctx), Op(0));
  case ValueKind::Store:
    return std::make_unique<StoreInst>(Op(0), Op(1), Ctx.getVoidTy());
  case ValueKind::PtrAdd: {
    auto &P = cast<PtrAddInst>(I);
    return std::make_unique<PtrAddInst>(Op(0), Op(1), P.getElemSize());
  }
  case ValueKind::AtomicAdd:
    return std::make_unique<AtomicAddInst>(Op(0), Op(1));
  case ValueKind::ThreadIdx:
  case ValueKind::BlockIdx:
  case ValueKind::BlockDim:
  case ValueKind::GridDim: {
    auto &G = cast<GpuIndexInst>(I);
    return std::make_unique<GpuIndexInst>(I.getKind(), G.getDim(),
                                          Ctx.getI32Ty());
  }
  case ValueKind::Barrier:
    return std::make_unique<BarrierInst>(Ctx.getVoidTy());
  case ValueKind::Call: {
    auto &C = cast<CallInst>(I);
    std::vector<Value *> Args;
    for (size_t K = 0; K != C.getNumArgs(); ++K)
      Args.push_back(Op(K + 1));
    return std::make_unique<CallInst>(mapType(I.getType(), Ctx), Op(0), Args);
  }
  case ValueKind::Phi: {
    auto &P = cast<PhiInst>(I);
    Type *Ty = mapType(P.getType(), Ctx);
    auto Clone = std::make_unique<PhiInst>(Ty);
    for (size_t K = 0; K != P.getNumIncoming(); ++K) {
      // Incoming values may be forward references to instructions not yet
      // cloned. Install a typed placeholder rather than the original value:
      // touching the original would append to its use list, mutating the
      // source function (a data race when cloning from a shared prototype).
      // The caller's second phi-patch pass resolves the real value.
      Value *OrigV = P.getIncomingValue(K);
      auto It = VM.find(OrigV);
      Value *InV;
      if (It != VM.end())
        InV = It->second;
      else if (isa<Constant>(OrigV))
        InV = mapOperand(OrigV, VM, Ctx);
      else
        InV = phiPlaceholder(Ty, Ctx);
      auto *InB = cast<BasicBlock>(mapOperand(P.getIncomingBlock(K), VM, Ctx));
      Clone->addIncoming(InV, InB);
    }
    return Clone;
  }
  case ValueKind::Br: {
    auto &Br = cast<BranchInst>(I);
    return std::make_unique<BranchInst>(
        cast<BasicBlock>(mapOperand(Br.getSuccessor(0), VM, Ctx)),
        Ctx.getVoidTy());
  }
  case ValueKind::CondBr: {
    auto &Br = cast<BranchInst>(I);
    return std::make_unique<BranchInst>(
        Op(0), cast<BasicBlock>(mapOperand(Br.getSuccessor(0), VM, Ctx)),
        cast<BasicBlock>(mapOperand(Br.getSuccessor(1), VM, Ctx)),
        Ctx.getVoidTy());
  }
  case ValueKind::Ret: {
    auto &R = cast<RetInst>(I);
    if (R.hasReturnValue())
      return std::make_unique<RetInst>(Op(0), Ctx.getVoidTy());
    return std::make_unique<RetInst>(Ctx.getVoidTy());
  }
  default:
    break;
  }
  if (isa<BinaryInst>(&I))
    return std::make_unique<BinaryInst>(I.getKind(), Op(0), Op(1));
  if (isa<UnaryInst>(&I))
    return std::make_unique<UnaryInst>(I.getKind(), Op(0));
  if (isa<CastInst>(&I))
    return std::make_unique<CastInst>(I.getKind(), Op(0),
                                      mapType(I.getType(), Ctx));
  proteus_unreachable("unhandled instruction kind in cloneInstruction");
}

Function *pir::cloneFunctionInto(Module &DestModule, Function &Src,
                                 const std::string &NewName) {
  Context &Ctx = DestModule.getContext();
  std::vector<Type *> ParamTypes;
  std::vector<std::string> ParamNames;
  for (const auto &A : Src.args()) {
    ParamTypes.push_back(mapType(A->getType(), Ctx));
    ParamNames.push_back(A->getName());
  }
  Function *Dst = DestModule.createFunction(
      NewName, mapType(Src.getReturnType(), Ctx), ParamTypes, ParamNames,
      Src.getFunctionKind());
  Dst->setAlwaysInline(Src.isAlwaysInline());
  if (Src.getLaunchBounds())
    Dst->setLaunchBounds(*Src.getLaunchBounds());
  if (Src.getJitAnnotation())
    Dst->setJitAnnotation(*Src.getJitAnnotation());
  if (Src.isDeclaration())
    return Dst;

  ValueMap VM;
  for (size_t I = 0; I != Src.getNumArgs(); ++I)
    VM[Src.getArg(I)] = Dst->getArg(I);
  // Remap globals and callees by name.
  for (const auto &G : Src.getParent()->globals()) {
    GlobalVariable *DG = DestModule.getGlobal(G->getName());
    if (DG)
      VM[G.get()] = DG;
  }
  for (const auto &F : Src.getParent()->functions()) {
    Function *DF = DestModule.getFunction(F->getName());
    if (DF && DF != Dst)
      VM[F.get()] = DF;
  }

  // Create all blocks first so branches/phis can be remapped.
  for (BasicBlock &BB : Src)
    VM[&BB] = Dst->createBlock(BB.getName(), Ctx.getVoidTy());

  // Clone instructions; phi incoming values may be forward references, which
  // cloneInstruction fills with destination-context placeholders — patch them
  // in a second pass.
  struct PhiPatch {
    PhiInst *Clone;
    PhiInst *Orig;
  };
  std::vector<PhiPatch> Phis;
  for (BasicBlock &BB : Src) {
    auto *DstBB = cast<BasicBlock>(VM[&BB]);
    for (Instruction &I : BB) {
      std::unique_ptr<Instruction> C = cloneInstruction(I, VM, Ctx);
      C->setName(I.getName());
      Instruction *Raw = DstBB->append(std::move(C));
      VM[&I] = Raw;
      if (auto *P = dyn_cast<PhiInst>(Raw))
        Phis.push_back(PhiPatch{P, cast<PhiInst>(&I)});
    }
  }
  for (const PhiPatch &P : Phis)
    for (size_t K = 0; K != P.Clone->getNumIncoming(); ++K)
      P.Clone->setIncomingValue(
          K, mapOperand(P.Orig->getIncomingValue(K), VM, Ctx));
  return Dst;
}

std::unique_ptr<Module> pir::cloneModule(Module &Src, Context &Ctx,
                                         const std::string &NewName) {
  auto Dst = std::make_unique<Module>(Ctx, NewName);
  for (const auto &G : Src.globals())
    Dst->createGlobal(G->getName(), mapType(G->getElemType(), Ctx),
                      G->getNumElements(), G->getInit());
  // Declarations first so cross-calls resolve regardless of order.
  for (const auto &F : Src.functions()) {
    std::vector<Type *> ParamTypes;
    std::vector<std::string> ParamNames;
    for (const auto &A : F->args()) {
      ParamTypes.push_back(mapType(A->getType(), Ctx));
      ParamNames.push_back(A->getName());
    }
    Function *DF = Dst->createFunction(F->getName(),
                                       mapType(F->getReturnType(), Ctx),
                                       ParamTypes, ParamNames,
                                       F->getFunctionKind());
    DF->setAlwaysInline(F->isAlwaysInline());
    if (F->getLaunchBounds())
      DF->setLaunchBounds(*F->getLaunchBounds());
    if (F->getJitAnnotation())
      DF->setJitAnnotation(*F->getJitAnnotation());
  }
  for (const auto &F : Src.functions()) {
    if (F->isDeclaration())
      continue;
    Function *DF = Dst->getFunction(F->getName());
    // Clone the body into the existing declaration.
    ValueMap VM;
    for (size_t I = 0; I != F->getNumArgs(); ++I)
      VM[F->getArg(I)] = DF->getArg(I);
    for (const auto &G : Src.globals())
      VM[G.get()] = Dst->getGlobal(G->getName());
    for (const auto &OF : Src.functions())
      VM[OF.get()] = Dst->getFunction(OF->getName());
    for (BasicBlock &BB : *F)
      VM[&BB] = DF->createBlock(BB.getName(), Ctx.getVoidTy());
    struct PhiPatch {
      PhiInst *Clone;
      PhiInst *Orig;
    };
    std::vector<PhiPatch> Phis;
    for (BasicBlock &BB : *F) {
      auto *DstBB = cast<BasicBlock>(VM[&BB]);
      for (Instruction &I : BB) {
        std::unique_ptr<Instruction> C = cloneInstruction(I, VM, Ctx);
        C->setName(I.getName());
        Instruction *Raw = DstBB->append(std::move(C));
        VM[&I] = Raw;
        if (auto *P = dyn_cast<PhiInst>(Raw))
          Phis.push_back(PhiPatch{P, cast<PhiInst>(&I)});
      }
    }
    for (const PhiPatch &P : Phis)
      for (size_t K = 0; K != P.Clone->getNumIncoming(); ++K)
        P.Clone->setIncomingValue(
            K, mapOperand(P.Orig->getIncomingValue(K), VM, Ctx));
  }
  return Dst;
}
