//===- Cloning.cpp - IR cloning utilities ---------------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Cloning.h"

#include "ir/Context.h"
#include "ir/Module.h"
#include "support/Error.h"

using namespace pir;
using namespace proteus;

namespace {

Value *mapOperand(Value *Op, ValueMap &VM) {
  auto It = VM.find(Op);
  return It == VM.end() ? Op : It->second;
}

} // namespace

std::unique_ptr<Instruction> pir::cloneInstruction(Instruction &I,
                                                   ValueMap &VM,
                                                   Context &Ctx) {
  auto Op = [&](size_t K) { return mapOperand(I.getOperand(K), VM); };

  switch (I.getKind()) {
  case ValueKind::ICmp: {
    auto &C = cast<ICmpInst>(I);
    return std::make_unique<ICmpInst>(C.getPredicate(), Op(0), Op(1),
                                      Ctx.getI1Ty());
  }
  case ValueKind::FCmp: {
    auto &C = cast<FCmpInst>(I);
    return std::make_unique<FCmpInst>(C.getPredicate(), Op(0), Op(1),
                                      Ctx.getI1Ty());
  }
  case ValueKind::Select:
    return std::make_unique<SelectInst>(Op(0), Op(1), Op(2));
  case ValueKind::Alloca: {
    auto &A = cast<AllocaInst>(I);
    return std::make_unique<AllocaInst>(Ctx.getPtrTy(), A.getAllocatedType(),
                                        A.getNumElements());
  }
  case ValueKind::Load:
    return std::make_unique<LoadInst>(I.getType(), Op(0));
  case ValueKind::Store:
    return std::make_unique<StoreInst>(Op(0), Op(1), Ctx.getVoidTy());
  case ValueKind::PtrAdd: {
    auto &P = cast<PtrAddInst>(I);
    return std::make_unique<PtrAddInst>(Op(0), Op(1), P.getElemSize());
  }
  case ValueKind::AtomicAdd:
    return std::make_unique<AtomicAddInst>(Op(0), Op(1));
  case ValueKind::ThreadIdx:
  case ValueKind::BlockIdx:
  case ValueKind::BlockDim:
  case ValueKind::GridDim: {
    auto &G = cast<GpuIndexInst>(I);
    return std::make_unique<GpuIndexInst>(I.getKind(), G.getDim(),
                                          Ctx.getI32Ty());
  }
  case ValueKind::Barrier:
    return std::make_unique<BarrierInst>(Ctx.getVoidTy());
  case ValueKind::Call: {
    auto &C = cast<CallInst>(I);
    std::vector<Value *> Args;
    for (size_t K = 0; K != C.getNumArgs(); ++K)
      Args.push_back(Op(K + 1));
    return std::make_unique<CallInst>(I.getType(), Op(0), Args);
  }
  case ValueKind::Phi: {
    auto &P = cast<PhiInst>(I);
    auto Clone = std::make_unique<PhiInst>(P.getType());
    for (size_t K = 0; K != P.getNumIncoming(); ++K) {
      Value *InV = mapOperand(P.getIncomingValue(K), VM);
      auto *InB = cast<BasicBlock>(mapOperand(P.getIncomingBlock(K), VM));
      Clone->addIncoming(InV, InB);
    }
    return Clone;
  }
  case ValueKind::Br: {
    auto &Br = cast<BranchInst>(I);
    return std::make_unique<BranchInst>(
        cast<BasicBlock>(mapOperand(Br.getSuccessor(0), VM)),
        Ctx.getVoidTy());
  }
  case ValueKind::CondBr: {
    auto &Br = cast<BranchInst>(I);
    return std::make_unique<BranchInst>(
        Op(0), cast<BasicBlock>(mapOperand(Br.getSuccessor(0), VM)),
        cast<BasicBlock>(mapOperand(Br.getSuccessor(1), VM)), Ctx.getVoidTy());
  }
  case ValueKind::Ret: {
    auto &R = cast<RetInst>(I);
    if (R.hasReturnValue())
      return std::make_unique<RetInst>(Op(0), Ctx.getVoidTy());
    return std::make_unique<RetInst>(Ctx.getVoidTy());
  }
  default:
    break;
  }
  if (isa<BinaryInst>(&I))
    return std::make_unique<BinaryInst>(I.getKind(), Op(0), Op(1));
  if (isa<UnaryInst>(&I))
    return std::make_unique<UnaryInst>(I.getKind(), Op(0));
  if (isa<CastInst>(&I))
    return std::make_unique<CastInst>(I.getKind(), Op(0), I.getType());
  proteus_unreachable("unhandled instruction kind in cloneInstruction");
}

Function *pir::cloneFunctionInto(Module &DestModule, Function &Src,
                                 const std::string &NewName) {
  Context &Ctx = DestModule.getContext();
  std::vector<Type *> ParamTypes;
  std::vector<std::string> ParamNames;
  for (const auto &A : Src.args()) {
    ParamTypes.push_back(A->getType());
    ParamNames.push_back(A->getName());
  }
  Function *Dst =
      DestModule.createFunction(NewName, Src.getReturnType(), ParamTypes,
                                ParamNames, Src.getFunctionKind());
  Dst->setAlwaysInline(Src.isAlwaysInline());
  if (Src.getLaunchBounds())
    Dst->setLaunchBounds(*Src.getLaunchBounds());
  if (Src.getJitAnnotation())
    Dst->setJitAnnotation(*Src.getJitAnnotation());
  if (Src.isDeclaration())
    return Dst;

  ValueMap VM;
  for (size_t I = 0; I != Src.getNumArgs(); ++I)
    VM[Src.getArg(I)] = Dst->getArg(I);
  // Remap globals and callees by name.
  for (const auto &G : Src.getParent()->globals()) {
    GlobalVariable *DG = DestModule.getGlobal(G->getName());
    if (DG)
      VM[G.get()] = DG;
  }
  for (const auto &F : Src.getParent()->functions()) {
    Function *DF = DestModule.getFunction(F->getName());
    if (DF && DF != Dst)
      VM[F.get()] = DF;
  }

  // Create all blocks first so branches/phis can be remapped.
  for (BasicBlock &BB : Src)
    VM[&BB] = Dst->createBlock(BB.getName(), Ctx.getVoidTy());

  // Clone instructions; phi incoming values may be forward references, which
  // is fine because mapOperand falls back to the original value — patch them
  // in a second pass.
  struct PhiPatch {
    PhiInst *Clone;
    PhiInst *Orig;
  };
  std::vector<PhiPatch> Phis;
  for (BasicBlock &BB : Src) {
    auto *DstBB = cast<BasicBlock>(VM[&BB]);
    for (Instruction &I : BB) {
      std::unique_ptr<Instruction> C = cloneInstruction(I, VM, Ctx);
      C->setName(I.getName());
      Instruction *Raw = DstBB->append(std::move(C));
      VM[&I] = Raw;
      if (auto *P = dyn_cast<PhiInst>(Raw))
        Phis.push_back(PhiPatch{P, cast<PhiInst>(&I)});
    }
  }
  for (const PhiPatch &P : Phis)
    for (size_t K = 0; K != P.Clone->getNumIncoming(); ++K)
      P.Clone->setIncomingValue(
          K, mapOperand(P.Orig->getIncomingValue(K), VM));
  return Dst;
}

std::unique_ptr<Module> pir::cloneModule(Module &Src, Context &Ctx,
                                         const std::string &NewName) {
  auto Dst = std::make_unique<Module>(Ctx, NewName);
  for (const auto &G : Src.globals())
    Dst->createGlobal(G->getName(), G->getElemType(), G->getNumElements(),
                      G->getInit());
  // Declarations first so cross-calls resolve regardless of order.
  for (const auto &F : Src.functions()) {
    std::vector<Type *> ParamTypes;
    std::vector<std::string> ParamNames;
    for (const auto &A : F->args()) {
      ParamTypes.push_back(A->getType());
      ParamNames.push_back(A->getName());
    }
    Function *DF = Dst->createFunction(F->getName(), F->getReturnType(),
                                       ParamTypes, ParamNames,
                                       F->getFunctionKind());
    DF->setAlwaysInline(F->isAlwaysInline());
    if (F->getLaunchBounds())
      DF->setLaunchBounds(*F->getLaunchBounds());
    if (F->getJitAnnotation())
      DF->setJitAnnotation(*F->getJitAnnotation());
  }
  for (const auto &F : Src.functions()) {
    if (F->isDeclaration())
      continue;
    Function *DF = Dst->getFunction(F->getName());
    // Clone the body into the existing declaration.
    ValueMap VM;
    for (size_t I = 0; I != F->getNumArgs(); ++I)
      VM[F->getArg(I)] = DF->getArg(I);
    for (const auto &G : Src.globals())
      VM[G.get()] = Dst->getGlobal(G->getName());
    for (const auto &OF : Src.functions())
      VM[OF.get()] = Dst->getFunction(OF->getName());
    for (BasicBlock &BB : *F)
      VM[&BB] = DF->createBlock(BB.getName(), Ctx.getVoidTy());
    struct PhiPatch {
      PhiInst *Clone;
      PhiInst *Orig;
    };
    std::vector<PhiPatch> Phis;
    for (BasicBlock &BB : *F) {
      auto *DstBB = cast<BasicBlock>(VM[&BB]);
      for (Instruction &I : BB) {
        std::unique_ptr<Instruction> C = cloneInstruction(I, VM, Ctx);
        C->setName(I.getName());
        Instruction *Raw = DstBB->append(std::move(C));
        VM[&I] = Raw;
        if (auto *P = dyn_cast<PhiInst>(Raw))
          Phis.push_back(PhiPatch{P, cast<PhiInst>(&I)});
      }
    }
    for (const PhiPatch &P : Phis)
      for (size_t K = 0; K != P.Clone->getNumIncoming(); ++K)
        P.Clone->setIncomingValue(
            K, mapOperand(P.Orig->getIncomingValue(K), VM));
  }
  return Dst;
}
