//===- Module.cpp - PIR module -----------------------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include "ir/Context.h"
#include "ir/IRPrinter.h"
#include "support/Hashing.h"

using namespace pir;

Module::~Module() {
  // Instructions may reference values across functions (callees) and
  // globals; sever every edge before destroying any container.
  for (auto &F : Functions)
    for (BasicBlock &BB : *F)
      for (Instruction &I : BB)
        I.dropAllReferences();
  Functions.clear();
  Globals.clear();
}

Function *Module::createFunction(std::string FName, Type *RetTy,
                                 const std::vector<Type *> &ParamTypes,
                                 const std::vector<std::string> &ParamNames,
                                 FunctionKind FK) {
  assert(!getFunction(FName) && "duplicate function name");
  auto F = std::make_unique<Function>(Ctx.getPtrTy(), FName, RetTy, ParamTypes,
                                      ParamNames, FK);
  Function *Raw = F.get();
  Raw->Parent = this;
  FunctionMap.emplace(Raw->getName(), Raw);
  Functions.push_back(std::move(F));
  return Raw;
}

Function *Module::getFunction(const std::string &FName) const {
  auto It = FunctionMap.find(FName);
  return It == FunctionMap.end() ? nullptr : It->second;
}

void Module::eraseFunction(Function *F) {
  assert(F->getParent() == this && "function not in this module");
  assert(!F->hasUses() && "erasing a function that is still called");
  FunctionMap.erase(F->getName());
  for (auto It = Functions.begin(), E = Functions.end(); It != E; ++It) {
    if (It->get() == F) {
      Functions.erase(It);
      return;
    }
  }
  assert(false && "function not found in list");
}

std::vector<Function *> Module::kernels() const {
  std::vector<Function *> Out;
  for (const auto &F : Functions)
    if (F->isKernel())
      Out.push_back(F.get());
  return Out;
}

GlobalVariable *Module::createGlobal(std::string GName, Type *ElemTy,
                                     uint64_t NumElements,
                                     std::vector<uint8_t> Init) {
  assert(!getGlobal(GName) && "duplicate global name");
  auto G = std::make_unique<GlobalVariable>(Ctx.getPtrTy(), GName, ElemTy,
                                            NumElements, std::move(Init));
  GlobalVariable *Raw = G.get();
  GlobalMap.emplace(Raw->getName(), Raw);
  Globals.push_back(std::move(G));
  return Raw;
}

GlobalVariable *Module::getGlobal(const std::string &GName) const {
  auto It = GlobalMap.find(GName);
  return It == GlobalMap.end() ? nullptr : It->second;
}

uint64_t Module::computeModuleId() const {
  return proteus::hashString(printModule(*const_cast<Module *>(this)));
}
