//===- Interpreter.h - reference IR interpreter -----------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A direct interpreter over PIR used as the *reference semantics* in tests:
/// every transform pass and the whole codegen pipeline are differentially
/// checked against it. Pointers are byte offsets into a caller-provided
/// memory image; per-thread alloca scratch lives above ScratchBase.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_IR_INTERPRETER_H
#define PROTEUS_IR_INTERPRETER_H

#include "ir/Function.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace pir {

/// GPU thread coordinates for one interpreted thread.
struct ThreadGeometry {
  uint32_t ThreadIdx[3] = {0, 0, 0};
  uint32_t BlockIdx[3] = {0, 0, 0};
  uint32_t BlockDim[3] = {1, 1, 1};
  uint32_t GridDim[3] = {1, 1, 1};
};

/// Outcome of interpreting one function invocation.
struct InterpResult {
  bool Ok = false;
  std::string Error;
  std::optional<uint64_t> ReturnBits;
  uint64_t DynamicInstructions = 0;
};

/// Interprets PIR functions against a flat memory image.
class IRInterpreter {
public:
  /// Pointers at or above this value address per-invocation alloca scratch.
  static constexpr uint64_t ScratchBase = 1ULL << 40;

  explicit IRInterpreter(std::vector<uint8_t> &Memory) : Memory(Memory) {}

  /// Runs \p F to completion for one thread. \p ArgBits are the argument
  /// values boxed per OpSemantics conventions. Execution aborts with an
  /// error after \p MaxSteps dynamic instructions (runaway-loop guard) or on
  /// an out-of-bounds access.
  InterpResult run(Function &F, const std::vector<uint64_t> &ArgBits,
                   const ThreadGeometry &Geometry,
                   uint64_t MaxSteps = 100'000'000);

private:
  std::vector<uint8_t> &Memory;
};

} // namespace pir

#endif // PROTEUS_IR_INTERPRETER_H
