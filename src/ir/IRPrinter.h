//===- IRPrinter.h - PIR textual output -------------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints PIR in the textual assembly form that IRParser accepts. The
/// printed form is deterministic, so its hash serves as the LLVM-style
/// module identifier the code cache keys on, and it is the "stringified
/// source" representation the Jitify-sim baseline compiles from.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_IR_IRPRINTER_H
#define PROTEUS_IR_IRPRINTER_H

#include <string>

namespace pir {

class Module;
class Function;

/// Renders the whole module as parseable text.
std::string printModule(Module &M);

/// Renders one function (with header and body) as parseable text.
std::string printFunction(Function &F);

} // namespace pir

#endif // PROTEUS_IR_IRPRINTER_H
