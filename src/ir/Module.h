//===- Module.h - PIR module ------------------------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Module: the translation-unit-level container of functions and device
/// global variables. The module identifier — an LLVM-style content hash
/// "bound to source code" — feeds the JIT cache key so that source changes
/// invalidate stale persistent-cache entries (paper section 3.3).
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_IR_MODULE_H
#define PROTEUS_IR_MODULE_H

#include "ir/Function.h"

#include <unordered_map>

namespace pir {

class Context;

/// A device global variable (__device__ qualified). Its Value type is ptr;
/// the JIT runtime resolves its device address and rewrites references into
/// ConstantPtr at specialization time.
class GlobalVariable : public Value {
public:
  GlobalVariable(Type *PtrTy, std::string Name, Type *ElemTy,
                 uint64_t NumElements, std::vector<uint8_t> Init = {})
      : Value(ValueKind::GlobalVariable, PtrTy), ElemTy(ElemTy),
        NumElements(NumElements), Init(std::move(Init)) {
    setName(std::move(Name));
    assert((this->Init.empty() || this->Init.size() == sizeInBytes()) &&
           "initializer size mismatch");
  }

  Type *getElemType() const { return ElemTy; }
  uint64_t getNumElements() const { return NumElements; }
  uint64_t sizeInBytes() const {
    return static_cast<uint64_t>(ElemTy->sizeInBytes()) * NumElements;
  }

  /// Raw initializer bytes; empty means zero-initialized.
  const std::vector<uint8_t> &getInit() const { return Init; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::GlobalVariable;
  }

private:
  Type *ElemTy;
  uint64_t NumElements;
  std::vector<uint8_t> Init;
};

/// The device-code translation unit.
class Module {
public:
  Module(Context &Ctx, std::string Name) : Ctx(Ctx), Name(std::move(Name)) {}

  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;
  ~Module();

  Context &getContext() const { return Ctx; }
  const std::string &getName() const { return Name; }

  // -- Functions ----------------------------------------------------------

  /// Creates a function with a body to be filled in.
  Function *createFunction(std::string Name, Type *RetTy,
                           const std::vector<Type *> &ParamTypes,
                           const std::vector<std::string> &ParamNames,
                           FunctionKind FK);

  Function *getFunction(const std::string &Name) const;

  /// Unlinks and destroys \p F; there must be no remaining calls to it.
  void eraseFunction(Function *F);

  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Functions;
  }

  /// Kernels in declaration order.
  std::vector<Function *> kernels() const;

  // -- Globals ------------------------------------------------------------

  GlobalVariable *createGlobal(std::string Name, Type *ElemTy,
                               uint64_t NumElements,
                               std::vector<uint8_t> Init = {});

  GlobalVariable *getGlobal(const std::string &Name) const;

  const std::vector<std::unique_ptr<GlobalVariable>> &globals() const {
    return Globals;
  }

  // -- Module identity ----------------------------------------------------

  /// Content hash of the module's textual form. Mirrors the unique,
  /// LLVM-generated module identifier the paper uses in cache keys: any
  /// source change produces a different id, so stale persistent-cache
  /// entries never match. Computed on demand; mutating the module
  /// invalidates prior results, so callers hash after construction.
  uint64_t computeModuleId() const;

private:
  Context &Ctx;
  std::string Name;
  std::vector<std::unique_ptr<Function>> Functions;
  std::unordered_map<std::string, Function *> FunctionMap;
  std::vector<std::unique_ptr<GlobalVariable>> Globals;
  std::unordered_map<std::string, GlobalVariable *> GlobalMap;
};

} // namespace pir

#endif // PROTEUS_IR_MODULE_H
