//===- Function.cpp - PIR function -------------------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

#include "ir/Context.h"
#include "ir/Module.h"

using namespace pir;

Function::Function(Type *PtrTy, std::string Name, Type *RetTy,
                   const std::vector<Type *> &ParamTypes,
                   const std::vector<std::string> &ParamNames, FunctionKind FK)
    : Value(ValueKind::Function, PtrTy), RetTy(RetTy), FK(FK) {
  setName(std::move(Name));
  assert((ParamNames.empty() || ParamNames.size() == ParamTypes.size()) &&
         "parameter name/type count mismatch");
  for (size_t I = 0, E = ParamTypes.size(); I != E; ++I) {
    std::string ArgName =
        ParamNames.empty() ? ("arg" + std::to_string(I)) : ParamNames[I];
    Args.push_back(std::make_unique<Argument>(ParamTypes[I],
                                              std::move(ArgName), this,
                                              static_cast<unsigned>(I)));
  }
}

Function::~Function() {
  // Instructions may reference values across blocks (and blocks reference
  // each other); sever all edges before any block is destroyed.
  for (auto &BB : Blocks)
    for (Instruction &I : *BB)
      I.dropAllReferences();
  Blocks.clear();
}

BasicBlock *Function::createBlock(std::string Name, Type *VoidTy) {
  auto BB = std::make_unique<BasicBlock>(VoidTy, std::move(Name));
  BasicBlock *Raw = BB.get();
  Raw->Parent = this;
  Blocks.push_back(std::move(BB));
  return Raw;
}

void Function::eraseBlock(BasicBlock *BB) {
  assert(BB->getParent() == this && "block not in this function");
  // Sever instruction operand edges first so that cross-references (e.g.
  // branches into this block being deleted elsewhere first) cannot dangle.
  for (Instruction &I : *BB)
    I.dropAllReferences();
  while (!BB->empty())
    BB->erase(&BB->front());
  assert(!BB->hasUses() && "erasing a block that is still referenced");
  for (auto It = Blocks.begin(), E = Blocks.end(); It != E; ++It) {
    if (It->get() == BB) {
      Blocks.erase(It);
      return;
    }
  }
  assert(false && "block not found in list");
}

void Function::moveBlockAfter(BasicBlock *BB, BasicBlock *After) {
  assert(BB->getParent() == this && After->getParent() == this &&
         "blocks not in this function");
  auto BBIt = Blocks.end();
  auto AfterIt = Blocks.end();
  for (auto It = Blocks.begin(), E = Blocks.end(); It != E; ++It) {
    if (It->get() == BB)
      BBIt = It;
    if (It->get() == After)
      AfterIt = It;
  }
  assert(BBIt != Blocks.end() && AfterIt != Blocks.end());
  std::unique_ptr<BasicBlock> Owned = std::move(*BBIt);
  Blocks.erase(BBIt);
  // Re-find After (iterators after erase of a different node remain valid
  // for std::list, but AfterIt could equal BBIt only if BB==After).
  for (auto It = Blocks.begin(), E = Blocks.end(); It != E; ++It) {
    if (It->get() == After) {
      Blocks.insert(std::next(It), std::move(Owned));
      return;
    }
  }
  assert(false && "anchor block disappeared");
}

std::vector<BasicBlock *> Function::blockList() {
  std::vector<BasicBlock *> Out;
  Out.reserve(Blocks.size());
  for (auto &BB : Blocks)
    Out.push_back(BB.get());
  return Out;
}
