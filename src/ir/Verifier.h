//===- Verifier.h - PIR well-formedness checks ------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and SSA validation of PIR. Run after construction, after each
/// transform in pipeline debug mode, and on every JIT-specialized module
/// before code generation.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_IR_VERIFIER_H
#define PROTEUS_IR_VERIFIER_H

#include <string>
#include <vector>

namespace pir {

class Function;
class Module;

/// Accumulated verification problems; empty means valid.
struct VerifyResult {
  std::vector<std::string> Errors;

  bool ok() const { return Errors.empty(); }

  /// All messages joined with newlines (for diagnostics).
  std::string message() const;
};

/// Verifies one function: terminators, operand types, phi/pred agreement,
/// SSA dominance of uses, argument/return consistency.
VerifyResult verifyFunction(Function &F);

/// Verifies every function in \p M plus module-level rules (unique names,
/// calls target module functions, annotation indices in range).
VerifyResult verifyModule(Module &M);

} // namespace pir

#endif // PROTEUS_IR_VERIFIER_H
