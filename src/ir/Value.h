//===- Value.h - PIR value/use machinery ------------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Value, Use and User: the SSA value graph with O(1) use-list maintenance.
/// Mirrors the LLVM design: every operand edge is tracked on the used Value
/// so that replaceAllUsesWith (the workhorse of runtime constant folding)
/// is proportional to the number of uses being rewritten.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_IR_VALUE_H
#define PROTEUS_IR_VALUE_H

#include "ir/Type.h"
#include "support/Casting.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace pir {

// LLVM-style RTTI helpers, shared with the proteus support library.
using proteus::cast;
using proteus::dyn_cast;
using proteus::dyn_cast_if_present;
using proteus::isa;
using proteus::isa_and_present;

class User;
class Value;

/// Discriminator for the whole Value hierarchy (LLVM-style RTTI).
enum class ValueKind : uint8_t {
  // Non-instruction values.
  ConstantInt,
  ConstantFP,
  ConstantPtr,
  Argument,
  GlobalVariable,
  Function,
  BasicBlock,

  // Instructions. Everything from InstBegin to InstEnd (exclusive) is an
  // Instruction; the sub-ranges are used by the instruction classof()s.
  InstBegin,

  // Integer binary arithmetic / bitwise.
  Add,
  Sub,
  Mul,
  SDiv,
  UDiv,
  SRem,
  URem,
  And,
  Or,
  Xor,
  Shl,
  LShr,
  AShr,
  // Floating-point binary arithmetic.
  FAdd,
  FSub,
  FMul,
  FDiv,
  // Binary math intrinsics.
  Pow,
  FMin,
  FMax,
  SMin,
  SMax,

  // Unary.
  FNeg,
  Sqrt,
  Exp,
  Log,
  Sin,
  Cos,
  Fabs,
  Floor,

  // Casts.
  Trunc,
  ZExt,
  SExt,
  FPExt,
  FPTrunc,
  SIToFP,
  UIToFP,
  FPToSI,
  IntToPtr,
  PtrToInt,

  // Comparisons and select.
  ICmp,
  FCmp,
  Select,

  // Memory.
  Alloca,
  Load,
  Store,
  PtrAdd,
  AtomicAdd,

  // GPU intrinsics.
  ThreadIdx,
  BlockIdx,
  BlockDim,
  GridDim,
  Barrier,

  // Calls, phis, control flow.
  Call,
  Phi,
  Br,
  CondBr,
  Ret,

  InstEnd,
};

/// Returns a stable mnemonic for \p K ("add", "fmul", ...), shared by the
/// printer, parser and diagnostics.
const char *valueKindName(ValueKind K);

/// One operand edge: records which User holds the edge and at which operand
/// index, so the edge can be rewritten in O(1).
struct Use {
  User *TheUser = nullptr;
  uint32_t OperandIndex = 0;
};

/// Base of the SSA value hierarchy.
class Value {
public:
  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;
  virtual ~Value();

  ValueKind getKind() const { return TheKind; }
  Type *getType() const { return Ty; }

  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }
  bool hasName() const { return !Name.empty(); }

  /// All operand edges that reference this value.
  const std::vector<Use> &uses() const { return UseList; }
  bool hasUses() const { return !UseList.empty(); }
  size_t getNumUses() const { return UseList.size(); }

  /// Rewrites every use of this value to refer to \p NewValue instead. This
  /// is the primitive behind runtime constant folding: the JIT runtime calls
  /// it to fold a kernel Argument into its runtime-constant value.
  void replaceAllUsesWith(Value *NewValue);

  bool isInstruction() const {
    return TheKind > ValueKind::InstBegin && TheKind < ValueKind::InstEnd;
  }

protected:
  Value(ValueKind K, Type *T) : TheKind(K), Ty(T) {
    assert(T && "value requires a type");
  }

private:
  friend class User;

  /// Registers a new use edge; returns its slot in the use list.
  uint32_t addUse(User *U, uint32_t OperandIndex);

  /// Removes the use edge in \p Slot (swap-with-last, fixing back-pointers).
  void removeUse(uint32_t Slot);

  ValueKind TheKind;
  Type *Ty;
  std::string Name;
  std::vector<Use> UseList;
};

/// A Value that references other Values through operands.
class User : public Value {
public:
  size_t getNumOperands() const { return Operands.size(); }

  Value *getOperand(size_t I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }

  /// Replaces operand \p I, updating both values' use lists.
  void setOperand(size_t I, Value *V);

  const std::vector<Value *> &operands() const { return Operands; }

  /// Drops all operand edges (used when bulk-deleting IR that may contain
  /// reference cycles, e.g. loops of blocks).
  void dropAllReferences();

  static bool classof(const Value *V) { return V->isInstruction(); }

protected:
  User(ValueKind K, Type *T) : Value(K, T) {}
  ~User() override;

  /// Appends an operand, registering the use edge.
  void addOperand(Value *V);

  /// Removes the last operand.
  void removeLastOperand();

private:
  friend class Value;

  std::vector<Value *> Operands;
  /// For each operand, the slot of its Use record inside the operand
  /// value's use list. Kept in sync by add/set/remove.
  std::vector<uint32_t> UseSlots;
};

} // namespace pir

#endif // PROTEUS_IR_VALUE_H
