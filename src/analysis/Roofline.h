//===- Roofline.h - static roofline classifier ------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-kernel *static* instruction-mix and memory-footprint estimator over
/// PIR, feeding an architecture-aware roofline model: the estimator walks
/// the kernel once, weighting each block by the trip counts of its
/// enclosing loops (constant counts from LoopInfo's phi-evolution
/// simulation; a fixed heuristic weight for loops with unknown bounds) and
/// accumulating per-thread FLOPs and bytes moved. Uniformity analysis
/// (the Dataflow.h framework) refines bytes-moved: a load through a
/// wave-uniform address is one broadcast transaction shared by every lane,
/// not WaveSize independent ones.
///
/// The resulting arithmetic intensity is placed against a target's roofline
/// (TargetInfo::peakGFlops / MemBandwidthGBs; the per-arch Fp32ValuWidth
/// scales the compute ceiling, so the two sim arches have different ridge
/// points) and classified:
///
///   * RegPressureBound — register-allocation feedback shows spills or a
///     saturated budget: occupancy, not the roofline, is the limiter.
///   * MemoryBound      — intensity well under the ridge: the bandwidth
///     ceiling binds; compile-side axes that do not reduce bytes moved
///     (unrolling, LICM, preset) cannot help.
///   * ComputeBound     — intensity well over the ridge: the compute
///     ceiling binds; pipeline aggressiveness is the lever.
///   * LatencyBound     — near the ridge, a launch too small to fill the
///     machine, or a kernel with no measurable work: neither ceiling
///     clearly binds and latency hiding / scheduling dominates.
///
/// The classification is deterministic (a pure function of the IR and the
/// target) and consumed by the JIT's CompilationPolicy, the pir-roofline
/// CLI, and the pinned-corpus golden checks.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_ANALYSIS_ROOFLINE_H
#define PROTEUS_ANALYSIS_ROOFLINE_H

#include "codegen/Target.h"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace pir {

class Function;

namespace analysis {

/// What limits the kernel on a given target.
enum class BottleneckClass : uint8_t {
  MemoryBound,
  ComputeBound,
  RegPressureBound,
  LatencyBound,
};

const char *bottleneckClassName(BottleneckClass C);
std::optional<BottleneckClass> parseBottleneckClass(std::string_view Name);

/// Arch-neutral per-thread execution estimate of one kernel. Weighted by
/// loop trip counts; bytes through wave-uniform addresses are kept apart so
/// the wave-broadcast discount can be applied per target (wave sizes
/// differ).
struct KernelStaticProfile {
  double Flops = 0;   ///< weighted FP operations (divides and
                      ///< transcendentals count at their issue weight)
  double IntOps = 0;  ///< weighted integer/address/compare operations
  double BytesLoaded = 0;  ///< per-thread bytes read (divergent addresses)
  double BytesStored = 0;  ///< per-thread bytes written (divergent addresses)
  double UniformBytesLoaded = 0;  ///< bytes read through wave-uniform
                                  ///< addresses (one transaction per wave)
  double UniformBytesStored = 0;
  double Transcendentals = 0; ///< weighted sqrt/exp/log/sin/cos/pow count
  double Divides = 0;         ///< weighted integer+FP divide/rem count
  double Atomics = 0;
  double Branches = 0; ///< weighted conditional branches
  double Barriers = 0;
  uint64_t AllocaBytes = 0;     ///< thread-private scratch footprint
  uint64_t UnknownTripLoops = 0; ///< loops estimated with the heuristic
                                 ///< weight instead of a constant trip

  /// Effective per-thread bytes moved on a target with \p WaveSize lanes:
  /// uniform traffic is one broadcast shared by the wave.
  double bytesMoved(unsigned WaveSize) const {
    double Broadcast =
        (UniformBytesLoaded + UniformBytesStored) /
        static_cast<double>(WaveSize ? WaveSize : 1);
    return BytesLoaded + BytesStored + Broadcast;
  }
};

/// One target's roofline ceilings.
struct RooflineModel {
  double PeakGFlops = 0;
  double PeakBandwidthGBs = 0;

  double ridgeFlopsPerByte() const {
    return PeakBandwidthGBs > 0 ? PeakGFlops / PeakBandwidthGBs : 0;
  }
  /// Attainable GFLOP/s at arithmetic intensity \p AI: the lower of the
  /// two ceilings.
  double attainableGFlops(double AI) const {
    double BandwidthCeiling = AI * PeakBandwidthGBs;
    return BandwidthCeiling < PeakGFlops ? BandwidthCeiling : PeakGFlops;
  }
};

RooflineModel rooflineFor(const proteus::TargetInfo &T);

/// Register-allocation feedback from the backend (BackendStats), when the
/// kernel has been compiled: spills override the roofline verdict.
struct RegPressureFeedback {
  uint32_t RegsUsed = 0;
  uint32_t SpillSlots = 0;
  uint32_t SpillLoads = 0;
  uint32_t SpillStores = 0;
  uint32_t RegisterBudget = 0;
};

/// The full classification of one kernel on one target.
struct RooflineReport {
  KernelStaticProfile Profile;
  RooflineModel Model;
  /// FLOPs per byte moved; +inf for a kernel that computes without
  /// touching memory, 0 for one that does neither.
  double ArithmeticIntensity = 0;
  double AttainableGFlops = 0;
  BottleneckClass Class = BottleneckClass::LatencyBound;
  /// One-line deterministic rationale, for diagnostics and the CLI.
  std::string Reason;
};

/// Walks \p F once and accumulates the loop-trip-weighted static profile.
/// \p F must have a body. Deterministic: same IR, same profile.
KernelStaticProfile computeStaticProfile(Function &F);

/// Places \p P on \p T's roofline and classifies. \p Reg, when provided,
/// supplies register-allocation feedback (spills force RegPressureBound);
/// \p TotalThreads, when nonzero, lets the classifier detect launches too
/// small to fill the machine (LatencyBound).
RooflineReport classifyProfile(const KernelStaticProfile &P,
                               const proteus::TargetInfo &T,
                               const RegPressureFeedback *Reg = nullptr,
                               uint64_t TotalThreads = 0);

/// computeStaticProfile + classifyProfile in one step.
RooflineReport classifyKernel(Function &F, const proteus::TargetInfo &T,
                              const RegPressureFeedback *Reg = nullptr,
                              uint64_t TotalThreads = 0);

} // namespace analysis
} // namespace pir

#endif // PROTEUS_ANALYSIS_ROOFLINE_H
