//===- Dataflow.h - forward dataflow framework over PIR ---------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reusable forward-dataflow / abstract-interpretation framework over PIR.
/// Facts are lattice elements keyed by `Value*`; the solver runs a worklist
/// of `BasicBlock`s seeded in reverse post order and re-enqueues the blocks
/// of a value's users whenever its fact climbs the lattice, so loop-carried
/// phis converge from bottom in the usual Kildall fashion.
///
/// Analyses derive from ForwardValueDataflow<FactT> and provide the lattice
/// (bottom/join) plus the transfer function; the framework guarantees
/// monotone updates (new fact := join(old, transfer)) and therefore
/// termination for any finite-height lattice. Phi joins fall out naturally:
/// a phi's transfer reads getFact() of every incoming value, and incoming
/// facts arriving later re-trigger the phi's block.
///
/// UniformityAnalysis (GPU thread-dependence), the divergent-barrier check
/// and the shared-memory lint are built on this; the auto-tuner and future
/// transforms (e.g. uniformity-aware LICM) can layer further analyses on
/// the same solver.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_ANALYSIS_DATAFLOW_H
#define PROTEUS_ANALYSIS_DATAFLOW_H

#include "ir/Dominators.h"
#include "ir/Function.h"

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace pir {
namespace dataflow {

/// Iterated dominance frontier of \p Seeds — the classic phi-placement /
/// control-reconvergence set: every block where paths that bypass a seed
/// and paths through a seed first rejoin. Used by UniformityAnalysis to
/// find the blocks whose phis become control-dependent on a divergent
/// branch. Only reachable blocks are returned.
std::vector<BasicBlock *>
iteratedDominanceFrontier(const DominatorTree &DT,
                          const std::vector<BasicBlock *> &Seeds);

/// Forward dataflow solver with facts keyed by Value*.
///
/// FactT is a lattice element; derived analyses implement:
///   * bottom()       — the least element (initial fact of instructions)
///   * join(A, B)     — least upper bound
///   * initialFact(V) — fact of non-instruction values (constants,
///                      arguments, globals, blocks)
///   * transfer(I)    — fact of instruction I from its operands' facts
///                      (via getFact)
/// and may override blockProcessed() to inject non-operand dataflow edges
/// (e.g. control dependence) by enqueueing further blocks.
template <typename FactT> class ForwardValueDataflow {
public:
  virtual ~ForwardValueDataflow() = default;

  /// Current fact for \p V: the solved fact for instructions, the boundary
  /// fact for everything else.
  FactT getFact(const Value *V) const {
    auto It = Facts.find(V);
    if (It != Facts.end())
      return It->second;
    if (V->isInstruction())
      return bottom();
    return initialFact(*V);
  }

protected:
  virtual FactT bottom() const = 0;
  virtual FactT join(const FactT &A, const FactT &B) const = 0;
  virtual FactT initialFact(const Value &V) const = 0;
  virtual FactT transfer(const Instruction &I) = 0;

  /// Called after every (re)evaluation of a block; \p Enqueue schedules a
  /// block for (re)processing. Default: no extra edges.
  virtual void blockProcessed(BasicBlock &BB,
                              const std::function<void(BasicBlock *)> &) {
    (void)BB;
  }

  /// Runs the worklist to a fixpoint over the reachable blocks of \p F.
  void solve(Function &F) {
    std::vector<BasicBlock *> RPO = reversePostOrder(F);
    std::vector<BasicBlock *> Worklist(RPO.rbegin(), RPO.rend());
    std::unordered_set<BasicBlock *> InList(Worklist.begin(), Worklist.end());
    std::unordered_set<BasicBlock *> Reachable(RPO.begin(), RPO.end());
    auto Enqueue = [&](BasicBlock *BB) {
      if (Reachable.count(BB) && InList.insert(BB).second)
        Worklist.push_back(BB);
    };
    while (!Worklist.empty()) {
      BasicBlock *BB = Worklist.back();
      Worklist.pop_back();
      InList.erase(BB);
      for (Instruction &I : *BB) {
        FactT Old = getFact(&I);
        FactT New = join(Old, transfer(I));
        if (New == Old)
          continue;
        Facts[&I] = New;
        // The fact climbed: everything consuming it must be re-evaluated.
        for (const Use &U : I.uses())
          if (auto *UserInst = dyn_cast<Instruction>(
                  static_cast<Value *>(U.TheUser)))
            if (UserInst->getParent())
              Enqueue(UserInst->getParent());
      }
      blockProcessed(*BB, Enqueue);
    }
  }

  std::unordered_map<const Value *, FactT> Facts;
};

} // namespace dataflow
} // namespace pir

#endif // PROTEUS_ANALYSIS_DATAFLOW_H
