//===- CriticalPath.h - cross-stream critical-path analysis -----*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Critical-path analysis over the `trace::lane` timelines: given the
/// per-device/per-stream span lanes the tracer records for kernel
/// executions, reconstruct the implied dependency DAG and find the chain of
/// spans that gates end-to-end time. The edges are structural, recovered
/// from the timeline itself:
///
///  * same-lane FIFO order — a stream executes its launches in order, so
///    each span depends on its lane predecessor;
///  * cross-lane gating — a span that starts only after some span on
///    another lane finished is treated as gated by the latest such finisher
///    (the host-side synchronization the trace cannot record directly).
///
/// A forward/backward longest-path pass yields the critical-path length,
/// per-span slack, and a per-kernel-name criticality fraction. The JIT's
/// CompilationPolicy uses the kernel names on the critical path to decide
/// which symbols deserve Tier-1 promotion: a kernel with large slack cannot
/// shorten the run no matter how well it is compiled.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_ANALYSIS_CRITICALPATH_H
#define PROTEUS_ANALYSIS_CRITICALPATH_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace proteus {
namespace analysis {

/// One complete span on a timeline lane (a device:stream track).
struct TimelineSpan {
  std::string Name;
  uint32_t Tid = 0; ///< lane track id (trace::laneTid)
  uint64_t StartNs = 0;
  uint64_t DurNs = 0;

  uint64_t endNs() const { return StartNs + DurNs; }
};

/// Per-span result of the analysis.
struct SpanCriticality {
  TimelineSpan Span;
  /// How far this span could slip without lengthening the critical path.
  uint64_t SlackNs = 0;
  bool OnCriticalPath = false;
};

/// Aggregated criticality of all spans sharing one name.
struct NameCriticality {
  std::string Name;
  uint64_t TotalNs = 0;        ///< summed duration across all spans
  uint64_t CriticalNs = 0;     ///< summed duration of zero-slack spans
  double CriticalityFraction = 0; ///< CriticalNs / CriticalPathNs
};

struct CriticalPathReport {
  /// Length of the longest dependency chain (sum of span durations on it).
  uint64_t CriticalPathNs = 0;
  /// Wall-clock extent of the timeline: last end minus first start.
  uint64_t MakespanNs = 0;
  std::vector<SpanCriticality> Spans;
  /// Per-name aggregation, sorted by descending CriticalNs (ties by name).
  std::vector<NameCriticality> ByName;

  /// Names with at least one zero-slack span — the kernels that gate
  /// end-to-end time.
  std::vector<std::string> criticalNames() const;

  /// Criticality fraction of \p Name, or -1 when the report carries no
  /// spans of that name. The slack export the heterogeneous scheduler
  /// consumes: 0 means every span of the kernel had slack (placing it on
  /// an idle-but-slower device cannot lengthen the run), positive means it
  /// gates end-to-end time, unknown (-1) is treated as critical.
  double criticalityOf(const std::string &Name) const;

  /// Names whose every span had slack — the off-critical-path kernels the
  /// scheduler may bias toward idle or slower devices.
  std::vector<std::string> slackNames() const;
};

/// Runs the critical-path pass over \p Spans. Order of the input does not
/// matter; the result is deterministic.
CriticalPathReport analyzeTimeline(std::vector<TimelineSpan> Spans);

/// Extracts the lane spans (complete events on tids at or above
/// trace::LaneTidBase) from a chrome-trace JSON document, converting the
/// microsecond timestamps back to nanoseconds. Returns false with
/// \p Error set on malformed input.
bool parseTraceLanes(std::string_view JsonText, std::vector<TimelineSpan> &Out,
                     std::string &Error);

} // namespace analysis
} // namespace proteus

#endif // PROTEUS_ANALYSIS_CRITICALPATH_H
