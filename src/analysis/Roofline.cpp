//===- Roofline.cpp - static roofline classifier ------------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Roofline.h"

#include "analysis/Uniformity.h"
#include "ir/Dominators.h"
#include "ir/Function.h"
#include "ir/Instructions.h"
#include "support/StringUtils.h"
#include "transforms/LoopInfo.h"

#include <cmath>
#include <limits>
#include <unordered_map>

using namespace pir;
using namespace pir::analysis;

const char *pir::analysis::bottleneckClassName(BottleneckClass C) {
  switch (C) {
  case BottleneckClass::MemoryBound:
    return "MemoryBound";
  case BottleneckClass::ComputeBound:
    return "ComputeBound";
  case BottleneckClass::RegPressureBound:
    return "RegPressureBound";
  case BottleneckClass::LatencyBound:
    return "LatencyBound";
  }
  return "unknown";
}

std::optional<BottleneckClass>
pir::analysis::parseBottleneckClass(std::string_view Name) {
  if (Name == "MemoryBound")
    return BottleneckClass::MemoryBound;
  if (Name == "ComputeBound")
    return BottleneckClass::ComputeBound;
  if (Name == "RegPressureBound")
    return BottleneckClass::RegPressureBound;
  if (Name == "LatencyBound")
    return BottleneckClass::LatencyBound;
  return std::nullopt;
}

RooflineModel pir::analysis::rooflineFor(const proteus::TargetInfo &T) {
  RooflineModel M;
  M.PeakGFlops = T.peakGFlops();
  M.PeakBandwidthGBs = T.MemBandwidthGBs;
  return M;
}

namespace {

/// Issue weights of the expensive arithmetic forms, in FLOP-equivalents.
/// Mirrors the simulator's CostModel ratios (Transcendental 8x, Divide 4x
/// the ALU cost) so the static estimate and the dynamic perf model agree
/// on what "a lot of compute" means.
constexpr double TranscendentalFlops = 8.0;
constexpr double DivideFlops = 4.0;

/// Body weight for a loop whose trip count the phi-evolution simulation
/// cannot determine: a deliberate middle ground — large enough that loop
/// bodies dominate straight-line prologues, small enough that an unknown
/// loop cannot masquerade as unbounded compute.
constexpr double UnknownTripWeight = 16.0;

/// Trip counts above this are clamped (and counted as if constant): the
/// classification is a ratio, so magnitudes beyond this add nothing.
constexpr uint64_t MaxTripCount = 1u << 20;

/// Execution weight of \p BB: the product of the trip counts of every loop
/// enclosing it, innermost to outermost. Trip counts are memoized per loop
/// so the walk stays linear.
double blockWeight(pir::BasicBlock *BB, const proteus::LoopInfo &LI,
                   std::unordered_map<const proteus::Loop *, double> &TripMemo,
                   uint64_t &UnknownTripLoops) {
  double W = 1.0;
  for (proteus::Loop *L = LI.getLoopFor(BB); L; L = L->Parent) {
    auto It = TripMemo.find(L);
    if (It == TripMemo.end()) {
      double Trip = UnknownTripWeight;
      if (std::optional<proteus::TripCount> TC =
              proteus::computeConstantTripCount(*L, MaxTripCount))
        Trip = static_cast<double>(TC->Count ? TC->Count : 1);
      else
        ++UnknownTripLoops;
      It = TripMemo.emplace(L, Trip).first;
    }
    W *= It->second;
  }
  return W;
}

bool isFloatingPointResult(const Instruction &I) {
  return I.getType() && I.getType()->isFloatingPoint();
}

} // namespace

KernelStaticProfile pir::analysis::computeStaticProfile(Function &F) {
  KernelStaticProfile P;
  if (F.isDeclaration())
    return P;

  DominatorTree DT(F);
  proteus::LoopInfo LI(F, DT);
  UniformityAnalysis UA(F);
  std::unordered_map<const proteus::Loop *, double> TripMemo;

  for (BasicBlock &BB : F) {
    if (!DT.isReachable(&BB))
      continue;
    const double W = blockWeight(&BB, LI, TripMemo, P.UnknownTripLoops);
    for (Instruction &I : BB) {
      switch (I.getKind()) {
      // FP arithmetic: one FLOP per lane.
      case ValueKind::FAdd:
      case ValueKind::FSub:
      case ValueKind::FMul:
      case ValueKind::FNeg:
      case ValueKind::FMin:
      case ValueKind::FMax:
      case ValueKind::Fabs:
      case ValueKind::Floor:
      case ValueKind::FCmp:
        P.Flops += W;
        break;
      case ValueKind::FDiv:
        P.Flops += W * DivideFlops;
        P.Divides += W;
        break;
      case ValueKind::Pow:
      case ValueKind::Sqrt:
      case ValueKind::Exp:
      case ValueKind::Log:
      case ValueKind::Sin:
      case ValueKind::Cos:
        P.Flops += W * TranscendentalFlops;
        P.Transcendentals += W;
        break;
      // Integer divides are the slow integer form.
      case ValueKind::SDiv:
      case ValueKind::UDiv:
      case ValueKind::SRem:
      case ValueKind::URem:
        P.IntOps += W * DivideFlops;
        P.Divides += W;
        break;
      // Everything else integer-ish: address math, compares, casts,
      // selects, geometry reads.
      case ValueKind::Add:
      case ValueKind::Sub:
      case ValueKind::Mul:
      case ValueKind::And:
      case ValueKind::Or:
      case ValueKind::Xor:
      case ValueKind::Shl:
      case ValueKind::LShr:
      case ValueKind::AShr:
      case ValueKind::SMin:
      case ValueKind::SMax:
      case ValueKind::ICmp:
      case ValueKind::Select:
      case ValueKind::Trunc:
      case ValueKind::ZExt:
      case ValueKind::SExt:
      case ValueKind::FPExt:
      case ValueKind::FPTrunc:
      case ValueKind::SIToFP:
      case ValueKind::UIToFP:
      case ValueKind::FPToSI:
      case ValueKind::IntToPtr:
      case ValueKind::PtrToInt:
      case ValueKind::PtrAdd:
      case ValueKind::ThreadIdx:
      case ValueKind::BlockIdx:
      case ValueKind::BlockDim:
      case ValueKind::GridDim:
        P.IntOps += W;
        break;
      case ValueKind::Load: {
        auto &L = static_cast<LoadInst &>(I);
        const double Bytes = W * L.getType()->sizeInBytes();
        if (UA.isUniform(L.getPointer()))
          P.UniformBytesLoaded += Bytes;
        else
          P.BytesLoaded += Bytes;
        break;
      }
      case ValueKind::Store: {
        auto &S = static_cast<StoreInst &>(I);
        const double Bytes = W * S.getValue()->getType()->sizeInBytes();
        if (UA.isUniform(S.getPointer()))
          P.UniformBytesStored += Bytes;
        else
          P.BytesStored += Bytes;
        break;
      }
      case ValueKind::AtomicAdd: {
        auto &A = static_cast<AtomicAddInst &>(I);
        const double Bytes = W * A.getValue()->getType()->sizeInBytes();
        // Read-modify-write: bytes both ways, never broadcast (the whole
        // point of an atomic is per-lane serialization).
        P.BytesLoaded += Bytes;
        P.BytesStored += Bytes;
        P.Atomics += W;
        if (isFloatingPointResult(I))
          P.Flops += W;
        else
          P.IntOps += W;
        break;
      }
      case ValueKind::Alloca:
        P.AllocaBytes += static_cast<AllocaInst &>(I).allocationSizeBytes();
        break;
      case ValueKind::Barrier:
        P.Barriers += W;
        break;
      case ValueKind::CondBr:
        P.Branches += W;
        break;
      default:
        break; // br/ret/phi/call carry no modeled cost
      }
    }
  }
  return P;
}

RooflineReport pir::analysis::classifyProfile(const KernelStaticProfile &P,
                                              const proteus::TargetInfo &T,
                                              const RegPressureFeedback *Reg,
                                              uint64_t TotalThreads) {
  RooflineReport R;
  R.Profile = P;
  R.Model = rooflineFor(T);

  const double Bytes = P.bytesMoved(T.WaveSize);
  if (Bytes > 0)
    R.ArithmeticIntensity = P.Flops / Bytes;
  else
    R.ArithmeticIntensity = P.Flops > 0
                                ? std::numeric_limits<double>::infinity()
                                : 0.0;
  R.AttainableGFlops = Bytes > 0 ? R.Model.attainableGFlops(
                                       R.ArithmeticIntensity)
                                 : R.Model.PeakGFlops;

  const double Ridge = R.Model.ridgeFlopsPerByte();

  // 1. Spill feedback overrides the roofline: scratch round-trips serialize
  // every lane regardless of arithmetic intensity, and the launch-bounds
  // budget — not a ceiling — is the knob that moves the kernel.
  if (Reg && (Reg->SpillSlots > 0 ||
              (Reg->RegisterBudget > 0 && Reg->RegsUsed >= Reg->RegisterBudget))) {
    R.Class = BottleneckClass::RegPressureBound;
    R.Reason = proteus::formatString(
        "register allocation spilled %u slot(s) with %u/%u registers used",
        Reg->SpillSlots, Reg->RegsUsed, Reg->RegisterBudget);
    return R;
  }

  // 2. A launch smaller than one wave per CU cannot fill the machine: the
  // limiter is launch/latency overhead, not either roofline ceiling.
  const uint64_t FillThreads =
      static_cast<uint64_t>(T.WaveSize) * T.NumCUs;
  if (TotalThreads > 0 && TotalThreads < FillThreads) {
    R.Class = BottleneckClass::LatencyBound;
    R.Reason = proteus::formatString(
        "launch of %llu thread(s) cannot fill %u CUs x %u lanes",
        static_cast<unsigned long long>(TotalThreads), T.NumCUs, T.WaveSize);
    return R;
  }

  // 3. No measurable work at all: launch latency dominates.
  if (P.Flops <= 0 && P.IntOps <= 0 && Bytes <= 0) {
    R.Class = BottleneckClass::LatencyBound;
    R.Reason = "kernel performs no modeled work";
    return R;
  }

  // 4. Roofline position, with a +/-25% dead band around the ridge: well
  // under it the bandwidth ceiling binds, well over it the compute ceiling
  // binds, inside the band neither clearly does.
  if (R.ArithmeticIntensity < 0.75 * Ridge) {
    R.Class = BottleneckClass::MemoryBound;
    R.Reason = proteus::formatString(
        "intensity %.3f flops/byte under 0.75x ridge %.3f",
        R.ArithmeticIntensity, Ridge);
    return R;
  }
  if (R.ArithmeticIntensity > 1.25 * Ridge) {
    R.Class = BottleneckClass::ComputeBound;
    R.Reason = std::isinf(R.ArithmeticIntensity)
                   ? std::string("kernel moves no bytes; compute ceiling binds")
                   : proteus::formatString(
                         "intensity %.3f flops/byte over 1.25x ridge %.3f",
                         R.ArithmeticIntensity, Ridge);
    return R;
  }
  R.Class = BottleneckClass::LatencyBound;
  R.Reason = proteus::formatString(
      "intensity %.3f flops/byte within 25%% of ridge %.3f; neither ceiling "
      "clearly binds",
      R.ArithmeticIntensity, Ridge);
  return R;
}

RooflineReport pir::analysis::classifyKernel(Function &F,
                                             const proteus::TargetInfo &T,
                                             const RegPressureFeedback *Reg,
                                             uint64_t TotalThreads) {
  return classifyProfile(computeStaticProfile(F), T, Reg, TotalThreads);
}
