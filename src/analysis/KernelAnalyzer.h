//===- KernelAnalyzer.h - GPU-specific kernel lints -------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The launch-time kernel sanitizer: GPU-semantics lints layered on
/// UniformityAnalysis. Because the JIT sees the exact specialized kernel as
/// IR at launch time, this is the one place a semantic analyzer can inspect
/// what will actually run on-device — where a divergent barrier simply
/// hangs the GPU.
///
/// Checks:
///  * BarrierDivergenceCheck — a BarrierInst control-dependent on a
///    thread-dependent branch (the __syncthreads-in-divergent-branch
///    deadlock).
///  * SharedMemLint — for Alloca-backed scratch buffers (PIR's stand-in
///    for block-shared memory; the IR has no separate shared address
///    space): stores indexed by a thread-dependent-but-not-injective value
///    alongside a conflicting access between consecutive barriers (a data
///    race), loads that no store may precede on any path (uninitialized
///    read), and constant-index accesses that overrun
///    AllocaInst::getAllocatedType()/count (out of bounds).
///
/// Consumed by the JIT hot path (PROTEUS_ANALYZE=off|warn|error) and the
/// standalone tools/pir-lint CLI.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_ANALYSIS_KERNELANALYZER_H
#define PROTEUS_ANALYSIS_KERNELANALYZER_H

#include <cstddef>
#include <string>
#include <vector>

namespace pir {

class Function;
class Module;

namespace analysis {

/// Category of a sanitizer finding.
enum class LintKind : uint8_t {
  DivergentBarrier,
  SharedMemRace,
  SharedMemOOB,
  UninitializedLoad,
};

const char *lintKindName(LintKind K);

/// One finding, formatted for kernel authors.
struct LintDiagnostic {
  LintKind Kind;
  std::string FunctionName; ///< kernel the finding is in
  std::string BlockName;    ///< block the offending instruction lives in
  std::string Message;      ///< human-readable description

  /// "[kind] @kernel(block): message" — the canonical rendering used by
  /// the JIT warning path and pir-lint.
  std::string render() const;
};

/// All findings for one kernel (or one module).
struct AnalysisReport {
  std::vector<LintDiagnostic> Diags;

  bool clean() const { return Diags.empty(); }
  size_t count(LintKind K) const;

  /// All findings rendered one per line.
  std::string message() const;
};

/// Runs the full lint suite over one kernel body.
AnalysisReport analyzeKernel(Function &F);

/// Runs analyzeKernel over every kernel definition in \p M. Device
/// functions are analyzed only in their inlined/called context (they have
/// no thread geometry of their own).
AnalysisReport analyzeModule(Module &M);

} // namespace analysis
} // namespace pir

#endif // PROTEUS_ANALYSIS_KERNELANALYZER_H
