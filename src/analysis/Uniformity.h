//===- Uniformity.h - GPU thread-dependence analysis ------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// UniformityAnalysis classifies every PIR value as uniform (all threads of
/// a block compute the same value), injective (a thread-dependent value
/// known to be distinct for distinct threads — the fact that makes
/// `out[tid] = ...` race-free), or divergent (thread-dependent with no
/// injectivity guarantee). Taint propagates forward from ThreadIdx through
/// arithmetic, loads and control-dependent phis; control dependence is
/// recovered via the iterated dominance frontier of divergent branches
/// (reusing Dominators), which also yields the divergent-region set the
/// barrier-divergence check consumes.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_ANALYSIS_UNIFORMITY_H
#define PROTEUS_ANALYSIS_UNIFORMITY_H

#include "analysis/Dataflow.h"

namespace pir {
namespace analysis {

/// Thread-dependence lattice, ordered Unknown < Uniform < Injective <
/// Divergent; join is max. "Injective" is deliberately between the two:
/// it is thread-dependent (so branches on it diverge) but per-thread
/// distinct (so stores indexed by it do not race).
enum class Uniformity : uint8_t {
  Unknown = 0, ///< bottom: not yet computed (unreached code stays here)
  Uniform,     ///< identical across all threads of a block
  Injective,   ///< thread-dependent, but distinct per thread (e.g. tid, tid+c)
  Divergent,   ///< thread-dependent, no injectivity guarantee
};

const char *uniformityName(Uniformity U);

/// Forward dataflow instance computing per-value Uniformity plus the sync
/// dependence induced by divergent branches.
class UniformityAnalysis final
    : public dataflow::ForwardValueDataflow<Uniformity> {
public:
  /// Runs the analysis to a fixpoint over \p F (must have a body). The
  /// DominatorTree is built internally and retained for queries.
  explicit UniformityAnalysis(Function &F);

  // -- Per-value queries ---------------------------------------------------

  Uniformity uniformity(const Value *V) const { return getFact(V); }
  bool isUniform(const Value *V) const {
    Uniformity U = getFact(V);
    return U == Uniformity::Uniform || U == Uniformity::Unknown;
  }
  bool isThreadDependent(const Value *V) const { return !isUniform(V); }
  bool isInjective(const Value *V) const {
    return getFact(V) == Uniformity::Injective;
  }

  // -- Sync dependence -----------------------------------------------------

  /// Conditional branches whose condition is thread-dependent.
  const std::vector<BranchInst *> &divergentBranches() const {
    return DivergentBranches;
  }

  /// True if \p BB is a control-flow join of some divergent branch (its
  /// phis merge values from divergently-executed paths). Barriers *at* a
  /// join are safe — all threads reconverge there.
  bool isDivergentJoin(BasicBlock *BB) const {
    return DivergentJoins.count(BB) != 0;
  }

  /// True if \p BB executes under thread-dependent control flow: it lies
  /// between a divergent branch and its reconvergence joins, so not all
  /// threads of the block are guaranteed to reach it together.
  bool isInDivergentRegion(BasicBlock *BB) const {
    return DivergentRegion.count(BB) != 0;
  }

  /// The divergent branch that placed \p BB in a divergent region (the
  /// first recorded one, for diagnostics), or null.
  BranchInst *controllingBranch(BasicBlock *BB) const {
    auto It = RegionBranch.find(BB);
    return It == RegionBranch.end() ? nullptr : It->second;
  }

  const DominatorTree &getDomTree() const { return DT; }

protected:
  Uniformity bottom() const override { return Uniformity::Unknown; }
  Uniformity join(const Uniformity &A, const Uniformity &B) const override {
    return A > B ? A : B;
  }
  Uniformity initialFact(const Value &V) const override;
  Uniformity transfer(const Instruction &I) override;
  void blockProcessed(BasicBlock &BB,
                      const std::function<void(BasicBlock *)> &Enqueue)
      override;

private:
  /// Marks the region controlled by newly-divergent branch \p Br: blocks
  /// reachable from its successors without passing through a reconvergence
  /// join. Returns the join blocks (IDF of the successors).
  std::vector<BasicBlock *> markDivergentRegion(BranchInst *Br);

  /// Does calling \p F observe thread identity or thread-interleaved
  /// memory? (Transitive; conservative for recursion.)
  bool calleeIsThreadDependent(const Function *Callee);

  DominatorTree DT;
  std::vector<BranchInst *> DivergentBranches;
  std::unordered_set<const BranchInst *> DivergentBranchSet;
  std::unordered_set<BasicBlock *> DivergentJoins;
  std::unordered_set<BasicBlock *> DivergentRegion;
  std::unordered_map<BasicBlock *, BranchInst *> RegionBranch;
  std::unordered_map<const Function *, bool> CalleeCache;
};

} // namespace analysis
} // namespace pir

#endif // PROTEUS_ANALYSIS_UNIFORMITY_H
