//===- KernelAnalyzer.cpp - GPU-specific kernel lints ---------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/KernelAnalyzer.h"

#include "analysis/Uniformity.h"
#include "ir/BasicBlock.h"
#include "ir/Module.h"

#include <unordered_map>
#include <unordered_set>

namespace pir {
namespace analysis {

const char *lintKindName(LintKind K) {
  switch (K) {
  case LintKind::DivergentBarrier:
    return "divergent-barrier";
  case LintKind::SharedMemRace:
    return "shared-mem-race";
  case LintKind::SharedMemOOB:
    return "shared-mem-oob";
  case LintKind::UninitializedLoad:
    return "uninitialized-load";
  }
  return "?";
}

std::string LintDiagnostic::render() const {
  return "[" + std::string(lintKindName(Kind)) + "] @" + FunctionName + "(" +
         BlockName + "): " + Message;
}

size_t AnalysisReport::count(LintKind K) const {
  size_t N = 0;
  for (const LintDiagnostic &D : Diags)
    if (D.Kind == K)
      ++N;
  return N;
}

std::string AnalysisReport::message() const {
  std::string Out;
  for (const LintDiagnostic &D : Diags) {
    if (!Out.empty())
      Out += '\n';
    Out += D.render();
  }
  return Out;
}

namespace {

std::string blockName(const BasicBlock *BB) {
  return BB->hasName() ? BB->getName() : std::string("<anon>");
}

std::string describe(const Value *V) {
  if (V->hasName())
    return "%" + V->getName();
  if (const auto *C = dyn_cast<ConstantInt>(V))
    return std::to_string(C->getSExtValue());
  return std::string("<") + valueKindName(V->getKind()) + ">";
}

/// Chases a chain of PtrAdds to its base. Returns the AllocaInst if the
/// base is one, accumulating the byte offset of constant indices;
/// \p AllConst is cleared when any index along the chain is non-constant.
AllocaInst *resolveBuffer(Value *Ptr, int64_t &ByteOffset, bool &AllConst) {
  ByteOffset = 0;
  AllConst = true;
  while (auto *PA = dyn_cast<PtrAddInst>(Ptr)) {
    if (auto *C = dyn_cast<ConstantInt>(PA->getIndex()))
      ByteOffset += C->getSExtValue() * static_cast<int64_t>(PA->getElemSize());
    else
      AllConst = false;
    Ptr = PA->getBase();
  }
  return dyn_cast<AllocaInst>(Ptr);
}

/// True when the buffer's address leaks beyond direct load/store/atomic
/// access (stored as a value, passed to a call, ptrtoint, merged through
/// select/phi, returned) — then stores through unknown aliases are
/// possible and the lint stays silent about the buffer.
bool bufferEscapes(AllocaInst *A) {
  std::vector<Value *> Work{A};
  std::unordered_set<Value *> Seen{A};
  while (!Work.empty()) {
    Value *V = Work.back();
    Work.pop_back();
    for (const Use &U : V->uses()) {
      auto *UI = dyn_cast<Instruction>(U.TheUser);
      if (!UI)
        return true;
      switch (UI->getKind()) {
      case ValueKind::Load:
        break;
      case ValueKind::Store:
        if (U.OperandIndex == 0)
          return true; // the pointer itself is stored
        break;
      case ValueKind::AtomicAdd:
        if (U.OperandIndex != 0)
          return true;
        break;
      case ValueKind::PtrAdd:
        if (U.OperandIndex == 0 && Seen.insert(UI).second)
          Work.push_back(UI);
        break;
      case ValueKind::ICmp:
        break; // address comparison does not leak the buffer
      default:
        return true;
      }
    }
  }
  return false;
}

/// One resolved access to a non-escaping alloca buffer.
struct BufferAccess {
  Instruction *I = nullptr;
  AllocaInst *Buffer = nullptr;
  bool IsPlainStore = false;
  bool IsAtomic = false;
  int64_t ByteOffset = 0;
  bool AllConstIndices = false;
  Uniformity PtrFact = Uniformity::Unknown;
  Type *AccessTy = nullptr;
};

class SharedMemLint {
public:
  SharedMemLint(Function &F, const UniformityAnalysis &UA, AnalysisReport &R)
      : F(F), UA(UA), R(R) {}

  void run() {
    collectAccesses();
    checkOutOfBounds();
    checkRaces();
    checkUninitializedLoads();
  }

private:
  void diag(LintKind K, const BasicBlock *BB, std::string Msg) {
    R.Diags.push_back(
        {K, F.getName(), blockName(BB), std::move(Msg)});
  }

  void collectAccesses() {
    for (BasicBlock &BB : F) {
      for (Instruction &I : BB) {
        Value *Ptr = nullptr;
        BufferAccess A;
        switch (I.getKind()) {
        case ValueKind::Load:
          Ptr = cast<LoadInst>(&I)->getPointer();
          A.AccessTy = I.getType();
          break;
        case ValueKind::Store:
          Ptr = cast<StoreInst>(&I)->getPointer();
          A.IsPlainStore = true;
          A.AccessTy = cast<StoreInst>(&I)->getValue()->getType();
          break;
        case ValueKind::AtomicAdd:
          Ptr = cast<AtomicAddInst>(&I)->getPointer();
          A.IsAtomic = true;
          A.AccessTy = cast<AtomicAddInst>(&I)->getValue()->getType();
          break;
        default:
          continue;
        }
        A.Buffer = resolveBuffer(Ptr, A.ByteOffset, A.AllConstIndices);
        if (!A.Buffer)
          continue;
        auto EscIt = Escaped.find(A.Buffer);
        if (EscIt == Escaped.end())
          EscIt = Escaped.emplace(A.Buffer, bufferEscapes(A.Buffer)).first;
        if (EscIt->second)
          continue;
        A.I = &I;
        A.PtrFact = UA.uniformity(Ptr);
        Accesses.emplace(&I, A);
      }
    }
  }

  void checkOutOfBounds() {
    for (BasicBlock &BB : F) {
      for (Instruction &I : BB) {
        auto It = Accesses.find(&I);
        if (It == Accesses.end() || !It->second.AllConstIndices)
          continue;
        const BufferAccess &A = It->second;
        int64_t End = A.ByteOffset +
                      static_cast<int64_t>(A.AccessTy->sizeInBytes());
        int64_t Size =
            static_cast<int64_t>(A.Buffer->allocationSizeBytes());
        if (A.ByteOffset >= 0 && End <= Size)
          continue;
        diag(LintKind::SharedMemOOB, &BB,
             std::string(valueKindName(I.getKind())) + " at constant byte "
                 "offset " + std::to_string(A.ByteOffset) + " (width " +
                 std::to_string(A.AccessTy->sizeInBytes()) +
                 ") overruns buffer " + describe(A.Buffer) + " of " +
                 std::to_string(Size) + " bytes");
      }
    }
  }

  /// Between consecutive barriers in one block, a plain store whose address
  /// is thread-dependent but not injective (distinct threads may hit the
  /// same slot) races with any other non-atomic access to the same buffer.
  void checkRaces() {
    struct IntervalState {
      Instruction *DivergentStore = nullptr;
      Instruction *OtherAccess = nullptr;
      bool Reported = false;
    };
    for (BasicBlock &BB : F) {
      std::unordered_map<AllocaInst *, IntervalState> State;
      for (Instruction &I : BB) {
        if (isa<BarrierInst>(&I)) {
          State.clear(); // the barrier orders every prior access
          continue;
        }
        auto It = Accesses.find(&I);
        if (It == Accesses.end() || It->second.IsAtomic)
          continue;
        const BufferAccess &A = It->second;
        IntervalState &S = State[A.Buffer];
        bool IsDivStore =
            A.IsPlainStore && A.PtrFact == Uniformity::Divergent;
        bool Conflicts =
            S.DivergentStore || (IsDivStore && S.OtherAccess);
        if (Conflicts && !S.Reported) {
          S.Reported = true;
          Instruction *Store = S.DivergentStore ? S.DivergentStore : &I;
          diag(LintKind::SharedMemRace, &BB,
               "store to buffer " + describe(A.Buffer) +
                   " indexed by a thread-dependent, non-injective value (" +
                   describe(cast<StoreInst>(Store)->getPointer()) +
                   ") races with another access to the same buffer between "
                   "barriers");
        }
        if (IsDivStore)
          S.DivergentStore = &I;
        else
          S.OtherAccess = &I;
      }
    }
  }

  /// Flags loads from a buffer that no store may precede on any path
  /// (may-stored union dataflow over the CFG: zero false positives, may
  /// miss path-sensitive bugs).
  void checkUninitializedLoads() {
    std::vector<BasicBlock *> RPO = reversePostOrder(F);
    std::unordered_map<BasicBlock *, std::unordered_set<AllocaInst *>> Out;
    auto InSet = [&](BasicBlock *BB) {
      std::unordered_set<AllocaInst *> In;
      for (BasicBlock *P : BB->predecessors()) {
        auto It = Out.find(P);
        if (It != Out.end())
          In.insert(It->second.begin(), It->second.end());
      }
      return In;
    };
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (BasicBlock *BB : RPO) {
        std::unordered_set<AllocaInst *> Cur = InSet(BB);
        for (Instruction &I : *BB) {
          auto It = Accesses.find(&I);
          if (It != Accesses.end() &&
              (It->second.IsPlainStore || It->second.IsAtomic))
            Cur.insert(It->second.Buffer);
        }
        if (Cur != Out[BB]) {
          Out[BB] = std::move(Cur);
          Changed = true;
        }
      }
    }
    for (BasicBlock *BB : RPO) {
      std::unordered_set<AllocaInst *> Stored = InSet(BB);
      for (Instruction &I : *BB) {
        auto It = Accesses.find(&I);
        if (It == Accesses.end())
          continue;
        const BufferAccess &A = It->second;
        if (A.IsPlainStore || A.IsAtomic) {
          Stored.insert(A.Buffer);
          continue;
        }
        if (!Stored.count(A.Buffer))
          diag(LintKind::UninitializedLoad, BB,
               "load " + describe(&I) + " reads buffer " +
                   describe(A.Buffer) +
                   " before any store to it on every path");
      }
    }
  }

  Function &F;
  const UniformityAnalysis &UA;
  AnalysisReport &R;
  std::unordered_map<Instruction *, BufferAccess> Accesses;
  std::unordered_map<AllocaInst *, bool> Escaped;
};

void checkBarrierDivergence(Function &F, const UniformityAnalysis &UA,
                            AnalysisReport &R) {
  for (BasicBlock &BB : F) {
    if (!UA.isInDivergentRegion(&BB))
      continue;
    for (Instruction &I : BB) {
      if (!isa<BarrierInst>(&I))
        continue;
      BranchInst *Br = UA.controllingBranch(&BB);
      std::string Why =
          Br ? " (branch in '" + blockName(Br->getParent()) +
                   "' on thread-dependent condition " +
                   describe(Br->getCondition()) + ")"
             : "";
      R.Diags.push_back(
          {LintKind::DivergentBarrier, F.getName(), blockName(&BB),
           "barrier executes under thread-dependent control flow" + Why +
               ": threads that skip this path never reach it and the "
               "block deadlocks"});
    }
  }
}

} // namespace

AnalysisReport analyzeKernel(Function &F) {
  AnalysisReport R;
  if (F.isDeclaration())
    return R;
  // Every lint is rooted in a barrier or an alloca-backed buffer; a kernel
  // with neither cannot produce a finding, and most kernels have neither.
  // One linear scan here keeps the launch-path cost of PROTEUS_ANALYZE=warn
  // negligible for them — the dominator tree and the dataflow fixpoint are
  // only built when something could actually be diagnosed.
  bool HasBarrier = false, HasAlloca = false;
  for (BasicBlock &BB : F) {
    for (Instruction &I : BB) {
      HasBarrier |= isa<BarrierInst>(&I);
      HasAlloca |= isa<AllocaInst>(&I);
    }
  }
  if (!HasBarrier && !HasAlloca)
    return R;
  UniformityAnalysis UA(F);
  if (HasBarrier)
    checkBarrierDivergence(F, UA, R);
  if (HasAlloca)
    SharedMemLint(F, UA, R).run();
  return R;
}

AnalysisReport analyzeModule(Module &M) {
  AnalysisReport R;
  for (Function *K : M.kernels()) {
    if (K->isDeclaration())
      continue;
    AnalysisReport FR = analyzeKernel(*K);
    R.Diags.insert(R.Diags.end(), FR.Diags.begin(), FR.Diags.end());
  }
  return R;
}

} // namespace analysis
} // namespace pir
