//===- Dataflow.cpp - forward dataflow framework over PIR -----------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"

#include "ir/BasicBlock.h"

#include <unordered_set>

namespace pir {
namespace dataflow {

std::vector<BasicBlock *>
iteratedDominanceFrontier(const DominatorTree &DT,
                          const std::vector<BasicBlock *> &Seeds) {
  std::vector<BasicBlock *> Result;
  std::unordered_set<BasicBlock *> InResult;
  std::vector<BasicBlock *> Worklist;
  std::unordered_set<BasicBlock *> Visited;
  for (BasicBlock *BB : Seeds)
    if (DT.isReachable(BB) && Visited.insert(BB).second)
      Worklist.push_back(BB);
  while (!Worklist.empty()) {
    BasicBlock *BB = Worklist.back();
    Worklist.pop_back();
    for (BasicBlock *Front : DT.getFrontier(BB)) {
      if (InResult.insert(Front).second)
        Result.push_back(Front);
      // The frontier block itself becomes a seed for the next iteration
      // (iterated frontier), exactly as in phi placement.
      if (Visited.insert(Front).second)
        Worklist.push_back(Front);
    }
  }
  return Result;
}

} // namespace dataflow
} // namespace pir
