//===- Uniformity.cpp - GPU thread-dependence analysis --------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Uniformity.h"

#include "ir/BasicBlock.h"
#include "ir/Function.h"

namespace pir {
namespace analysis {

const char *uniformityName(Uniformity U) {
  switch (U) {
  case Uniformity::Unknown:
    return "unknown";
  case Uniformity::Uniform:
    return "uniform";
  case Uniformity::Injective:
    return "injective";
  case Uniformity::Divergent:
    return "divergent";
  }
  return "?";
}

UniformityAnalysis::UniformityAnalysis(Function &F) : DT(F) { solve(F); }

Uniformity UniformityAnalysis::initialFact(const Value &V) const {
  // Constants, kernel arguments, globals, functions and block labels are
  // identical for every thread of a block.
  (void)V;
  return Uniformity::Uniform;
}

bool UniformityAnalysis::calleeIsThreadDependent(const Function *Callee) {
  if (!Callee)
    return true; // malformed call: be conservative
  auto It = CalleeCache.find(Callee);
  if (It != CalleeCache.end())
    return It->second;
  // Seed conservatively so (malformed) recursive call chains terminate.
  CalleeCache[Callee] = true;
  bool Dependent = Callee->isDeclaration(); // unknown body: conservative
  for (BasicBlock &BB : *const_cast<Function *>(Callee)) {
    for (Instruction &I : BB) {
      switch (I.getKind()) {
      case ValueKind::ThreadIdx:
      case ValueKind::AtomicAdd:
      case ValueKind::Load: // may observe thread-interleaved memory
        Dependent = true;
        break;
      case ValueKind::Call:
        if (calleeIsThreadDependent(cast<CallInst>(&I)->getCallee()))
          Dependent = true;
        break;
      default:
        break;
      }
      if (Dependent)
        break;
    }
    if (Dependent)
      break;
  }
  CalleeCache[Callee] = Dependent;
  return Dependent;
}

Uniformity UniformityAnalysis::transfer(const Instruction &I) {
  auto Fact = [&](const Value *V) { return getFact(V); };
  auto MaxOfOperands = [&]() {
    Uniformity U = Uniformity::Uniform;
    for (Value *Op : I.operands())
      U = join(U, Fact(Op));
    return U;
  };
  // True when every operand is uniform; thread-dependence of any operand
  // makes the default result Divergent (injectivity survives arithmetic
  // only through the special cases below).
  auto DefaultCombine = [&]() {
    Uniformity U = MaxOfOperands();
    return U <= Uniformity::Uniform ? U : Uniformity::Divergent;
  };

  switch (I.getKind()) {
  // --- GPU thread geometry -------------------------------------------------
  case ValueKind::ThreadIdx:
    // The taint source: per-thread distinct by construction.
    return Uniformity::Injective;
  case ValueKind::BlockIdx:
  case ValueKind::BlockDim:
  case ValueKind::GridDim:
    // Identical for every thread of a block.
    return Uniformity::Uniform;
  case ValueKind::Barrier:
    return Uniformity::Uniform;

  // --- Arithmetic: injectivity-preserving cases ----------------------------
  case ValueKind::Add:
  case ValueKind::Sub:
  case ValueKind::Xor: {
    Uniformity A = Fact(I.getOperand(0)), B = Fact(I.getOperand(1));
    // tid + c, c - tid, tid ^ c: bijective in tid for uniform c.
    if ((A == Uniformity::Injective && B <= Uniformity::Uniform) ||
        (B == Uniformity::Injective && A <= Uniformity::Uniform))
      return Uniformity::Injective;
    return DefaultCombine();
  }
  case ValueKind::Mul:
  case ValueKind::Shl: {
    Uniformity A = Fact(I.getOperand(0)), B = Fact(I.getOperand(1));
    // tid * k and tid << k stay injective for a nonzero constant k.
    auto NonzeroConst = [](const Value *V) {
      const auto *C = dyn_cast<ConstantInt>(V);
      return C && !C->isZero();
    };
    if ((A == Uniformity::Injective && NonzeroConst(I.getOperand(1))) ||
        (I.getKind() == ValueKind::Mul && B == Uniformity::Injective &&
         NonzeroConst(I.getOperand(0))))
      return Uniformity::Injective;
    return DefaultCombine();
  }

  // --- Casts ---------------------------------------------------------------
  case ValueKind::ZExt:
  case ValueKind::SExt:
  case ValueKind::SIToFP:
  case ValueKind::UIToFP:
    // Widening conversions are injective maps.
    return Fact(I.getOperand(0));

  // --- Memory --------------------------------------------------------------
  case ValueKind::Alloca:
    // The buffer handle itself is the same abstract object for indexing.
    return Uniformity::Uniform;
  case ValueKind::PtrAdd: {
    Uniformity Base = Fact(I.getOperand(0)), Idx = Fact(I.getOperand(1));
    if (Base <= Uniformity::Uniform && Idx == Uniformity::Injective)
      return Uniformity::Injective; // distinct address per thread
    Uniformity U = join(Base, Idx);
    return U <= Uniformity::Uniform ? U : Uniformity::Divergent;
  }
  case ValueKind::Load: {
    Uniformity Ptr = Fact(I.getOperand(0));
    // Same address for all threads -> same value (assuming no intra-kernel
    // racing writes, which SharedMemLint reports separately). Distinct
    // addresses -> unrelated values: thread-dependent, not injective.
    return Ptr <= Uniformity::Uniform ? Uniformity::Uniform
                                      : Uniformity::Divergent;
  }
  case ValueKind::Store:
    return Uniformity::Uniform; // void
  case ValueKind::AtomicAdd:
    // Returns the prior value: depends on thread interleaving.
    return Uniformity::Divergent;

  // --- Comparisons and select ----------------------------------------------
  case ValueKind::ICmp:
  case ValueKind::FCmp:
    // An i1 has no useful injectivity; any thread-dependent input makes the
    // predicate divergent.
    return DefaultCombine();
  case ValueKind::Select: {
    Uniformity Cond = Fact(I.getOperand(0));
    if (Cond > Uniformity::Uniform)
      return Uniformity::Divergent;
    // Uniform condition: all threads pick the same arm.
    return join(Fact(I.getOperand(1)), Fact(I.getOperand(2)));
  }

  // --- Calls ---------------------------------------------------------------
  case ValueKind::Call: {
    const auto &Call = *cast<CallInst>(&I);
    Function *Callee = dyn_cast_if_present<Function>(Call.getOperand(0));
    if (calleeIsThreadDependent(Callee))
      return Uniformity::Divergent;
    // Pure function of uniform arguments.
    Uniformity U = Uniformity::Uniform;
    for (size_t ArgI = 0; ArgI < Call.getNumArgs(); ++ArgI)
      U = join(U, Fact(Call.getArg(ArgI)));
    return U <= Uniformity::Uniform ? U : Uniformity::Divergent;
  }

  // --- Phis: data join plus control dependence -----------------------------
  case ValueKind::Phi: {
    const auto &Phi = *cast<PhiInst>(&I);
    Uniformity U = Uniformity::Unknown;
    for (size_t Inc = 0; Inc < Phi.getNumIncoming(); ++Inc)
      U = join(U, Fact(Phi.getIncomingValue(Inc)));
    if (U == Uniformity::Injective)
      U = Uniformity::Divergent; // merging distinct injective flows
    // A phi at the reconvergence point of a divergent branch selects its
    // incoming value by thread identity even when every incoming value is
    // uniform.
    if (DivergentJoins.count(I.getParent()))
      U = join(U, Uniformity::Divergent);
    return U;
  }

  // --- Control flow (void results) -----------------------------------------
  case ValueKind::Br:
  case ValueKind::CondBr:
  case ValueKind::Ret:
    return Uniformity::Uniform;

  default:
    // Remaining unary/binary math (FAdd, FDiv, Sqrt, SMin, ...): uniform in,
    // uniform out; thread-dependent in, divergent out.
    return DefaultCombine();
  }
}

std::vector<BasicBlock *>
UniformityAnalysis::markDivergentRegion(BranchInst *Br) {
  std::vector<BasicBlock *> Seeds;
  for (size_t S = 0; S < Br->getNumSuccessors(); ++S)
    Seeds.push_back(Br->getSuccessor(S));
  std::vector<BasicBlock *> Joins =
      dataflow::iteratedDominanceFrontier(DT, Seeds);
  std::unordered_set<BasicBlock *> JoinSet(Joins.begin(), Joins.end());

  // Blocks reachable from the divergent successors without crossing a
  // reconvergence join execute under thread-dependent control.
  std::vector<BasicBlock *> Stack;
  std::unordered_set<BasicBlock *> Visited;
  for (BasicBlock *S : Seeds)
    if (!JoinSet.count(S) && Visited.insert(S).second)
      Stack.push_back(S);
  while (!Stack.empty()) {
    BasicBlock *BB = Stack.back();
    Stack.pop_back();
    DivergentRegion.insert(BB);
    RegionBranch.emplace(BB, Br);
    for (BasicBlock *Succ : BB->successors())
      if (!JoinSet.count(Succ) && Visited.insert(Succ).second)
        Stack.push_back(Succ);
  }
  return Joins;
}

void UniformityAnalysis::blockProcessed(
    BasicBlock &BB, const std::function<void(BasicBlock *)> &Enqueue) {
  auto *Br = dyn_cast_if_present<BranchInst>(BB.getTerminator());
  if (!Br || !Br->isConditional())
    return;
  if (getFact(Br->getCondition()) <= Uniformity::Uniform)
    return;
  if (!DivergentBranchSet.insert(Br).second)
    return; // region already marked
  DivergentBranches.push_back(Br);
  for (BasicBlock *Join : markDivergentRegion(Br)) {
    // Phis at the join are now control-dependent on thread identity:
    // re-evaluate them under the updated DivergentJoins set.
    DivergentJoins.insert(Join);
    Enqueue(Join);
  }
}

} // namespace analysis
} // namespace pir
