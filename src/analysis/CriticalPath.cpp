//===- CriticalPath.cpp - cross-stream critical-path analysis ------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/CriticalPath.h"

#include "support/JsonLite.h"
#include "support/Trace.h"

#include <algorithm>
#include <map>
#include <numeric>

using namespace proteus;
using namespace proteus::analysis;

std::vector<std::string> CriticalPathReport::criticalNames() const {
  std::vector<std::string> Names;
  for (const NameCriticality &N : ByName)
    if (N.CriticalNs > 0)
      Names.push_back(N.Name);
  return Names;
}

double CriticalPathReport::criticalityOf(const std::string &Name) const {
  for (const NameCriticality &N : ByName)
    if (N.Name == Name)
      return N.CriticalityFraction;
  return -1.0;
}

std::vector<std::string> CriticalPathReport::slackNames() const {
  std::vector<std::string> Names;
  for (const NameCriticality &N : ByName)
    if (N.CriticalNs == 0)
      Names.push_back(N.Name);
  return Names;
}

CriticalPathReport analysis::analyzeTimeline(std::vector<TimelineSpan> Spans) {
  CriticalPathReport R;
  if (Spans.empty())
    return R;

  // Deterministic topological order: edges only ever point from a span to
  // one starting no earlier, so (start, tid, name) ordering is a valid
  // processing order and independent of input order.
  std::sort(Spans.begin(), Spans.end(),
            [](const TimelineSpan &A, const TimelineSpan &B) {
              if (A.StartNs != B.StartNs)
                return A.StartNs < B.StartNs;
              if (A.Tid != B.Tid)
                return A.Tid < B.Tid;
              return A.Name < B.Name;
            });

  const size_t N = Spans.size();
  std::vector<std::vector<size_t>> Preds(N);

  // Same-lane FIFO adjacency: each span depends on its lane predecessor.
  std::map<uint32_t, size_t> LastOnLane;
  for (size_t I = 0; I != N; ++I) {
    auto It = LastOnLane.find(Spans[I].Tid);
    if (It != LastOnLane.end())
      Preds[I].push_back(It->second);
    LastOnLane[Spans[I].Tid] = I;
  }

  // Cross-lane gating: the latest-finishing span on another lane whose end
  // is at or before this span's start. O(n^2) worst case, fine for the
  // bounded trace buffers this runs over.
  for (size_t I = 0; I != N; ++I) {
    size_t Gate = N;
    uint64_t GateEnd = 0;
    for (size_t J = 0; J != I; ++J) {
      if (Spans[J].Tid == Spans[I].Tid)
        continue;
      const uint64_t End = Spans[J].endNs();
      if (End > Spans[I].StartNs)
        continue;
      if (Gate == N || End > GateEnd ||
          (End == GateEnd && J > Gate)) { // latest end, then latest in order
        Gate = J;
        GateEnd = End;
      }
    }
    if (Gate != N)
      Preds[I].push_back(Gate);
  }

  // Forward pass: longest chain ending at each span (inclusive).
  std::vector<uint64_t> Head(N, 0);
  for (size_t I = 0; I != N; ++I) {
    uint64_t Best = 0;
    for (size_t P : Preds[I])
      Best = std::max(Best, Head[P]);
    Head[I] = Best + Spans[I].DurNs;
  }
  R.CriticalPathNs = *std::max_element(Head.begin(), Head.end());

  // Backward pass: longest chain starting at each span (inclusive).
  std::vector<uint64_t> Tail(N, 0);
  for (size_t I = N; I-- != 0;) {
    Tail[I] = std::max(Tail[I], Spans[I].DurNs);
    for (size_t P : Preds[I])
      Tail[P] = std::max(Tail[P], Tail[I] + Spans[P].DurNs);
  }

  uint64_t FirstStart = Spans.front().StartNs;
  uint64_t LastEnd = 0;
  for (const TimelineSpan &S : Spans)
    LastEnd = std::max(LastEnd, S.endNs());
  R.MakespanNs = LastEnd - FirstStart;

  R.Spans.reserve(N);
  std::map<std::string, NameCriticality> ByName;
  for (size_t I = 0; I != N; ++I) {
    SpanCriticality SC;
    SC.Span = Spans[I];
    const uint64_t Through = Head[I] + Tail[I] - Spans[I].DurNs;
    SC.SlackNs = R.CriticalPathNs - Through;
    SC.OnCriticalPath = SC.SlackNs == 0;

    NameCriticality &NC = ByName[Spans[I].Name];
    NC.Name = Spans[I].Name;
    NC.TotalNs += Spans[I].DurNs;
    if (SC.OnCriticalPath)
      NC.CriticalNs += Spans[I].DurNs;
    R.Spans.push_back(std::move(SC));
  }

  R.ByName.reserve(ByName.size());
  for (auto &KV : ByName) {
    if (R.CriticalPathNs > 0)
      KV.second.CriticalityFraction =
          static_cast<double>(KV.second.CriticalNs) / R.CriticalPathNs;
    R.ByName.push_back(std::move(KV.second));
  }
  std::sort(R.ByName.begin(), R.ByName.end(),
            [](const NameCriticality &A, const NameCriticality &B) {
              if (A.CriticalNs != B.CriticalNs)
                return A.CriticalNs > B.CriticalNs;
              return A.Name < B.Name;
            });
  return R;
}

bool analysis::parseTraceLanes(std::string_view JsonText,
                               std::vector<TimelineSpan> &Out,
                               std::string &Error) {
  json::ParseResult P = json::parse(JsonText);
  if (!P) {
    Error = P.Error;
    return false;
  }
  const json::Value *Events = P.V.find("traceEvents");
  if (!Events || !Events->isArray()) {
    Error = "missing traceEvents array";
    return false;
  }
  for (const json::Value &E : Events->Arr) {
    const json::Value *Ph = E.find("ph");
    if (!Ph || !Ph->isString() || Ph->Str != "X")
      continue;
    const json::Value *Tid = E.find("tid");
    if (!Tid || !Tid->isNumber() || Tid->Num < trace::LaneTidBase)
      continue;
    const json::Value *Name = E.find("name");
    const json::Value *Ts = E.find("ts");
    const json::Value *Dur = E.find("dur");
    if (!Name || !Name->isString() || !Ts || !Ts->isNumber() || !Dur ||
        !Dur->isNumber()) {
      Error = "lane span missing name/ts/dur";
      return false;
    }
    TimelineSpan S;
    S.Name = Name->Str;
    S.Tid = static_cast<uint32_t>(Tid->Num);
    // Chrome-trace timestamps are microseconds; the tracer records ns.
    S.StartNs = static_cast<uint64_t>(Ts->Num * 1000.0 + 0.5);
    S.DurNs = static_cast<uint64_t>(Dur->Num * 1000.0 + 0.5);
    Out.push_back(std::move(S));
  }
  return true;
}
