//===- O3Pipeline.h - the aggressive optimization pipeline ------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the "aggressive O3 optimization pipeline" (paper section 3.3)
/// used both by AOT device compilation and by the JIT runtime after
/// specialization: inline -> mem2reg -> scalar cleanup -> unroll -> cleanup.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_TRANSFORMS_O3PIPELINE_H
#define PROTEUS_TRANSFORMS_O3PIPELINE_H

#include "transforms/LoopUnroll.h"
#include "transforms/Pass.h"

namespace proteus {

/// Which pipeline to build. Full is the aggressive fixpoint pipeline; Fast
/// is the Tier-0 baseline-compiler preset: inline (a codegen precondition —
/// the backend requires all calls inlined), mem2reg, one InstCombine
/// constant-fold sweep, and DCE, run exactly once. Everything costly
/// (SimplifyCFG/CSE/LICM/unroll and fixpoint iteration) is deferred to the
/// background Tier-1 recompile.
enum class O3Preset { Full, Fast };

/// Pipeline configuration. Defaults correspond to the full O3 behaviour.
/// The unroll knobs, the preset and EnableLICM are the variant axes the
/// kernel variant manager (jit/AutoTuner.h) races against each other: LICM
/// and unrolling both trade register pressure for instruction count, so
/// whether they pay off depends on the kernel and the launch shape.
struct O3Options {
  UnrollOptions Unroll;
  O3Preset Preset = O3Preset::Full;
  /// Run loop-invariant code motion in the full pipeline. Hoisting
  /// lengthens live ranges; register-pressure-bound kernels can be faster
  /// without it.
  bool EnableLICM = true;
  /// Verify IR after every pass (slow; enabled by tests).
  bool VerifyEach = false;
};

/// Returns a configured pass manager implementing the O3 pipeline.
std::unique_ptr<PassManager> buildO3Pipeline(const O3Options &Opts = {});

/// Runs O3 over one function. Convenience for the JIT runtime.
void runO3(pir::Function &F, const O3Options &Opts = {});

/// Runs O3 over every function in the module.
void runO3(pir::Module &M, const O3Options &Opts = {});

} // namespace proteus

#endif // PROTEUS_TRANSFORMS_O3PIPELINE_H
