//===- LICM.h - loop-invariant code motion ----------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hoists speculatable loop-invariant computation into the preheader.
/// Combined with runtime constant folding this removes per-iteration work
/// that depended on kernel arguments (e.g. FEY-KAC's 2/(a*a) term).
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_TRANSFORMS_LICM_H
#define PROTEUS_TRANSFORMS_LICM_H

#include "transforms/Pass.h"

namespace proteus {

class LICMPass : public FunctionPass {
public:
  std::string name() const override { return "licm"; }
  bool run(pir::Function &F) override;
};

} // namespace proteus

#endif // PROTEUS_TRANSFORMS_LICM_H
