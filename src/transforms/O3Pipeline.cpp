//===- O3Pipeline.cpp - the aggressive optimization pipeline -----------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transforms/O3Pipeline.h"

#include "ir/Module.h"
#include "transforms/CSE.h"
#include "transforms/DCE.h"
#include "transforms/InstCombine.h"
#include "transforms/Inliner.h"
#include "transforms/LICM.h"
#include "transforms/Mem2Reg.h"
#include "transforms/SimplifyCFG.h"

using namespace proteus;

std::unique_ptr<PassManager> proteus::buildO3Pipeline(const O3Options &Opts) {
  if (Opts.Preset == O3Preset::Fast) {
    // Tier-0 baseline preset: one non-iterated sweep. The inliner stays
    // because codegen requires all calls inlined; it fixpoints internally
    // within its single invocation, so one iteration fully flattens nested
    // calls.
    auto PM = std::make_unique<PassManager>(/*MaxIterations=*/1);
    PM->setVerifyEach(Opts.VerifyEach);
    PM->addPass(std::make_unique<InlinerPass>());
    PM->addPass(std::make_unique<Mem2RegPass>());
    PM->addPass(std::make_unique<InstCombinePass>());
    PM->addPass(std::make_unique<DCEPass>());
    return PM;
  }
  // Two fixpoint iterations of the scalar section are enough in practice;
  // the second run picks up opportunities exposed by unrolling.
  auto PM = std::make_unique<PassManager>(/*MaxIterations=*/3);
  PM->setVerifyEach(Opts.VerifyEach);
  PM->addPass(std::make_unique<InlinerPass>());
  PM->addPass(std::make_unique<Mem2RegPass>());
  PM->addPass(std::make_unique<InstCombinePass>());
  PM->addPass(std::make_unique<SimplifyCFGPass>());
  PM->addPass(std::make_unique<CSEPass>());
  if (Opts.EnableLICM)
    PM->addPass(std::make_unique<LICMPass>());
  PM->addPass(std::make_unique<DCEPass>());
  PM->addPass(std::make_unique<LoopUnrollPass>(Opts.Unroll));
  PM->addPass(std::make_unique<InstCombinePass>());
  PM->addPass(std::make_unique<SimplifyCFGPass>());
  PM->addPass(std::make_unique<CSEPass>());
  PM->addPass(std::make_unique<DCEPass>());
  return PM;
}

void proteus::runO3(pir::Function &F, const O3Options &Opts) {
  buildO3Pipeline(Opts)->run(F);
}

void proteus::runO3(pir::Module &M, const O3Options &Opts) {
  buildO3Pipeline(Opts)->run(M);
}
