//===- CSE.h - common subexpression elimination -----------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator-scoped common-subexpression elimination over pure instructions.
/// Particularly valuable after full loop unrolling, where address arithmetic
/// repeats across unrolled iterations.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_TRANSFORMS_CSE_H
#define PROTEUS_TRANSFORMS_CSE_H

#include "transforms/Pass.h"

namespace proteus {

class CSEPass : public FunctionPass {
public:
  std::string name() const override { return "cse"; }
  bool run(pir::Function &F) override;
};

} // namespace proteus

#endif // PROTEUS_TRANSFORMS_CSE_H
