//===- Mem2Reg.cpp - promote allocas to SSA registers -----------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transforms/Mem2Reg.h"

#include "ir/Context.h"
#include "ir/Dominators.h"
#include "ir/Function.h"
#include "ir/Module.h"

#include <unordered_map>
#include <unordered_set>

using namespace proteus;
using namespace pir;

namespace {

/// An alloca is promotable when it is a single element whose pointer is used
/// only by loads of the allocated type and stores *into* it (never stored as
/// a value, never offset).
bool isPromotable(AllocaInst &A) {
  if (A.getNumElements() != 1)
    return false;
  for (const Use &U : A.uses()) {
    auto *I = dyn_cast<Instruction>(static_cast<Value *>(U.TheUser));
    if (!I)
      return false;
    if (auto *L = dyn_cast<LoadInst>(I)) {
      if (L->getType() != A.getAllocatedType())
        return false;
      continue;
    }
    if (auto *S = dyn_cast<StoreInst>(I)) {
      if (S->getPointer() != &A || S->getValue() == &A)
        return false;
      if (S->getValue()->getType() != A.getAllocatedType())
        return false;
      continue;
    }
    return false;
  }
  return true;
}

class Promoter {
public:
  Promoter(Function &F, DominatorTree &DT) : F(F), DT(DT) {}

  bool promote(AllocaInst &A) {
    Type *Ty = A.getAllocatedType();
    Context &Ctx = F.getParent()->getContext();

    // Blocks containing stores define the value.
    std::unordered_set<BasicBlock *> DefBlocks;
    for (const Use &U : A.uses())
      if (auto *S = dyn_cast<StoreInst>(static_cast<Value *>(U.TheUser)))
        DefBlocks.insert(S->getParent());

    // Iterated dominance frontier -> phi placement.
    std::unordered_set<BasicBlock *> PhiBlocks;
    std::vector<BasicBlock *> Work(DefBlocks.begin(), DefBlocks.end());
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      for (BasicBlock *DF : DT.getFrontier(BB)) {
        if (!PhiBlocks.insert(DF).second)
          continue;
        Work.push_back(DF);
      }
    }

    std::unordered_map<BasicBlock *, PhiInst *> Phis;
    for (BasicBlock *BB : PhiBlocks) {
      auto Phi = std::make_unique<PhiInst>(Ty);
      Phi->setName(A.getName() + ".phi");
      PhiInst *Raw = Phi.get();
      if (BB->empty())
        BB->append(std::move(Phi));
      else
        BB->insertBefore(&BB->front(), std::move(Phi));
      Phis[BB] = Raw;
    }

    // Rename along the dominator tree.
    Value *Undef = defaultValue(Ctx, Ty);
    rename(&F.getEntryBlock(), Undef, A, Phis);

    // All loads/stores rewritten; drop the alloca.
    std::vector<Instruction *> Dead;
    for (const Use &U : A.uses())
      Dead.push_back(cast<Instruction>(static_cast<Value *>(U.TheUser)));
    for (Instruction *I : Dead) {
      assert((isa<StoreInst>(I)) && "loads should have been replaced");
      I->eraseFromParent();
    }
    A.eraseFromParent();
    return true;
  }

private:
  static Value *defaultValue(Context &Ctx, Type *Ty) {
    if (Ty->isInteger())
      return Ctx.getConstantInt(Ty, 0);
    if (Ty->isFloatingPoint())
      return Ctx.getConstantFP(Ty, 0.0);
    return Ctx.getNullPtr();
  }

  void rename(BasicBlock *BB, Value *Incoming, AllocaInst &A,
              std::unordered_map<BasicBlock *, PhiInst *> &Phis) {
    // Iterative DFS over the dominator tree carrying the reaching value.
    struct Frame {
      BasicBlock *BB;
      Value *In;
    };
    std::vector<Frame> Stack{{BB, Incoming}};
    std::unordered_map<BasicBlock *, Value *> OutValue;

    // First pass: compute the value leaving each block and rewrite
    // loads/stores, walking the dominator tree (so the incoming value of a
    // child is the parent's out-value... except phi blocks override).
    while (!Stack.empty()) {
      auto [Cur, In] = Stack.back();
      Stack.pop_back();
      Value *V = In;
      if (auto It = Phis.find(Cur); It != Phis.end())
        V = It->second;
      for (auto I = Cur->begin(); I != Cur->end();) {
        Instruction &Inst = *I;
        ++I;
        if (auto *L = dyn_cast<LoadInst>(&Inst)) {
          if (L->getPointer() == &A) {
            L->replaceAllUsesWith(V);
            L->eraseFromParent();
          }
          continue;
        }
        if (auto *S = dyn_cast<StoreInst>(&Inst)) {
          if (S->getPointer() == &A)
            V = S->getValue();
          continue;
        }
      }
      OutValue[Cur] = V;
      for (BasicBlock *Child : DT.getChildren(Cur))
        Stack.push_back({Child, V});
    }

    // Second pass: fill phi incomings from each predecessor's out-value.
    for (auto &[PhiBB, Phi] : Phis) {
      for (BasicBlock *Pred : PhiBB->predecessors()) {
        auto It = OutValue.find(Pred);
        Value *V = It != OutValue.end() ? It->second : Incoming;
        Phi->addIncoming(V, Pred);
      }
    }
  }

  Function &F;
  DominatorTree &DT;
};

} // namespace

bool Mem2RegPass::run(Function &F) {
  if (F.isDeclaration())
    return false;
  bool Changed = false;
  DominatorTree DT(F);
  std::vector<AllocaInst *> Candidates;
  for (BasicBlock &BB : F)
    for (Instruction &I : BB)
      if (auto *A = dyn_cast<AllocaInst>(&I))
        if (isPromotable(*A))
          Candidates.push_back(A);
  for (AllocaInst *A : Candidates) {
    Promoter P(F, DT);
    Changed |= P.promote(*A);
  }
  return Changed;
}
