//===- DCE.h - dead code elimination ----------------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Worklist-driven elimination of unused pure instructions. After runtime
/// constant folding kills branches and folds expressions, this pass sweeps
/// the now-unreferenced computation — the bulk of the instruction-count
/// reductions reported in the paper's Figures 7 and 8.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_TRANSFORMS_DCE_H
#define PROTEUS_TRANSFORMS_DCE_H

#include "transforms/Pass.h"

namespace proteus {

class DCEPass : public FunctionPass {
public:
  std::string name() const override { return "dce"; }
  bool run(pir::Function &F) override;
};

} // namespace proteus

#endif // PROTEUS_TRANSFORMS_DCE_H
