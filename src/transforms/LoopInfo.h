//===- LoopInfo.h - natural loop analysis -----------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection over the dominator tree, plus the canonical-form
/// queries the unroller and LICM need (preheader, single latch, dedicated
/// exit) and constant trip-count discovery by simulating the evolution of
/// constant-evolving header phis — which is exactly what runtime constant
/// folding of a kernel argument turns a symbolic bound into.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_TRANSFORMS_LOOPINFO_H
#define PROTEUS_TRANSFORMS_LOOPINFO_H

#include "ir/Dominators.h"

#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

namespace proteus {

/// One natural loop: header plus body blocks; Parent links form the loop
/// forest.
struct Loop {
  pir::BasicBlock *Header = nullptr;
  std::unordered_set<pir::BasicBlock *> Blocks;
  std::vector<Loop *> SubLoops;
  Loop *Parent = nullptr;

  bool contains(pir::BasicBlock *BB) const { return Blocks.count(BB) != 0; }

  /// Depth in the loop forest (outermost = 1).
  unsigned depth() const {
    unsigned D = 1;
    for (Loop *P = Parent; P; P = P->Parent)
      ++D;
    return D;
  }

  /// The unique in-loop predecessor of the header through a back edge, or
  /// null if there is more than one latch.
  pir::BasicBlock *getSingleLatch() const;

  /// The unique out-of-loop predecessor of the header, if it branches only
  /// to the header (a canonical preheader); null otherwise.
  pir::BasicBlock *getPreheader() const;

  /// The unique successor of the header outside the loop when the header
  /// terminator is a conditional branch with exactly one exiting side, and
  /// that exit block has the header as its only predecessor; null otherwise.
  pir::BasicBlock *getDedicatedExit() const;

  /// All edges leaving the loop (from, to) — used by LICM safety checks.
  std::vector<std::pair<pir::BasicBlock *, pir::BasicBlock *>>
  exitEdges() const;
};

/// The loop forest of one function.
class LoopInfo {
public:
  LoopInfo(pir::Function &F, const pir::DominatorTree &DT);

  const std::vector<std::unique_ptr<Loop>> &loops() const { return AllLoops; }

  /// Innermost loop containing \p BB, or null.
  Loop *getLoopFor(pir::BasicBlock *BB) const;

  /// All loops, innermost first (safe order for unrolling/LICM).
  std::vector<Loop *> loopsInnermostFirst() const;

private:
  std::vector<std::unique_ptr<Loop>> AllLoops;
  std::unordered_map<pir::BasicBlock *, Loop *> InnermostMap;
};

/// Computed constant trip count of a canonical loop (see
/// computeConstantTripCount).
struct TripCount {
  uint64_t Count = 0;
};

/// Tries to determine how many times \p L's body executes by simulating the
/// loop's constant-evolving phis: header phis whose preheader incoming is a
/// constant and whose latch incoming is computable from constants and other
/// evolving phis through pure in-loop instructions. Requires canonical form
/// (preheader, single latch, header-exit via conditional branch). Returns
/// nullopt if the count is unknown or exceeds \p MaxTrip.
std::optional<TripCount> computeConstantTripCount(Loop &L, uint64_t MaxTrip);

} // namespace proteus

#endif // PROTEUS_TRANSFORMS_LOOPINFO_H
