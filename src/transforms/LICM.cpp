//===- LICM.cpp - loop-invariant code motion ---------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transforms/LICM.h"

#include "ir/Function.h"
#include "transforms/LoopInfo.h"

using namespace proteus;
using namespace pir;

namespace {

bool isInvariant(Loop &L, Value *V) {
  auto *I = dyn_cast<Instruction>(V);
  if (!I)
    return true; // constants, arguments, globals
  return !L.contains(I->getParent());
}

bool hoistInLoop(Loop &L, BasicBlock *Preheader) {
  bool Changed = false;
  bool LocalChanged = true;
  while (LocalChanged) {
    LocalChanged = false;
    for (BasicBlock *BB : L.Blocks) {
      for (auto It = BB->begin(); It != BB->end();) {
        Instruction &I = *It;
        ++It;
        if (!I.isSpeculatable() || I.getType()->isVoid())
          continue;
        if (isa<PhiInst>(&I) || isa<GpuIndexInst>(&I))
          continue;
        bool AllInvariant = true;
        for (Value *Op : I.operands())
          if (!isInvariant(L, Op)) {
            AllInvariant = false;
            break;
          }
        if (!AllInvariant)
          continue;
        I.moveBefore(Preheader->getTerminator());
        LocalChanged = true;
        Changed = true;
      }
    }
  }
  return Changed;
}

} // namespace

bool LICMPass::run(Function &F) {
  if (F.isDeclaration())
    return false;
  DominatorTree DT(F);
  LoopInfo LI(F, DT);
  bool Changed = false;
  for (Loop *L : LI.loopsInnermostFirst()) {
    BasicBlock *Preheader = L->getPreheader();
    if (!Preheader || !Preheader->getTerminator())
      continue;
    Changed |= hoistInLoop(*L, Preheader);
  }
  return Changed;
}
