//===- Mem2Reg.h - promote allocas to SSA registers -------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic SSA construction: promotes single-element allocas whose address
/// never escapes into SSA values, inserting phis at iterated dominance
/// frontiers. The HeCBench-sim kernels written in "local variable" style
/// (WSM5, SW4CK) rely on this running before any scalar optimization.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_TRANSFORMS_MEM2REG_H
#define PROTEUS_TRANSFORMS_MEM2REG_H

#include "transforms/Pass.h"

namespace proteus {

class Mem2RegPass : public FunctionPass {
public:
  std::string name() const override { return "mem2reg"; }
  bool run(pir::Function &F) override;
};

} // namespace proteus

#endif // PROTEUS_TRANSFORMS_MEM2REG_H
