//===- Inliner.h - device function inlining ---------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inlines calls to device functions into their callers. GPU backends here
/// (as on real GPUs for non-recursive code) require fully inlined kernels;
/// the pass runs first in the O3 pipeline and it is also what lets runtime
/// constant folding reach into callees such as FEY-KAC's potential().
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_TRANSFORMS_INLINER_H
#define PROTEUS_TRANSFORMS_INLINER_H

#include "transforms/Pass.h"

namespace proteus {

/// Inlines every call site in the function, repeatedly, until none remain.
/// Mutual/self recursion is rejected with a fatal error (GPU device code is
/// non-recursive by construction in the supported workloads).
class InlinerPass : public FunctionPass {
public:
  std::string name() const override { return "inline"; }
  bool run(pir::Function &F) override;
};

} // namespace proteus

#endif // PROTEUS_TRANSFORMS_INLINER_H
