//===- SpecializeArgs.cpp - runtime argument specialization ----------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transforms/SpecializeArgs.h"

#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/OpSemantics.h"

using namespace proteus;
using namespace pir;

unsigned proteus::specializeArguments(
    Function &F, const std::vector<RuntimeArgValue> &Values) {
  Context &Ctx = F.getParent()->getContext();
  unsigned Folded = 0;
  for (const RuntimeArgValue &RV : Values) {
    assert(RV.ArgIndex < F.getNumArgs() && "argument index out of range");
    Argument *A = F.getArg(RV.ArgIndex);
    Type *Ty = A->getType();
    Value *C = nullptr;
    if (Ty->isInteger())
      C = Ctx.getConstantInt(Ty, RV.Bits);
    else if (Ty->isF32())
      C = Ctx.getConstantFP(Ty, static_cast<double>(sem::unboxF32(RV.Bits)));
    else if (Ty->isF64())
      C = Ctx.getConstantFP(Ty, sem::unboxF64(RV.Bits));
    else
      C = Ctx.getConstantPtr(RV.Bits);
    if (!A->hasUses())
      continue;
    A->replaceAllUsesWith(C);
    ++Folded;
  }
  return Folded;
}

void proteus::specializeLaunchBounds(Function &F, uint32_t ThreadsPerBlock) {
  LaunchBounds LB;
  LB.MaxThreadsPerBlock = ThreadsPerBlock;
  LB.MinBlocksPerProcessor = 1; // the runtime's default minimum
  F.setLaunchBounds(LB);
}
