//===- LoopUnroll.h - full loop unrolling -----------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Full unrolling of loops whose trip count becomes a compile-time constant.
/// Ahead of time most kernel loop bounds are arguments, so this pass does
/// nothing; after Proteus folds the bound argument to its runtime value the
/// trip count materializes and the loop unrolls — one of the two cascading
/// effects (with dead-branch elimination) behind the paper's RCF results.
/// The same unrolling is also the mechanism by which RCF can *hurt* (SW4CK
/// kernel4): unrolled bodies lengthen live ranges and increase register
/// pressure.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_TRANSFORMS_LOOPUNROLL_H
#define PROTEUS_TRANSFORMS_LOOPUNROLL_H

#include "transforms/Pass.h"

#include <cstdint>

namespace proteus {

/// Unroll cost model knobs.
struct UnrollOptions {
  /// Never unroll loops with more iterations than this.
  uint64_t MaxTripCount = 64;
  /// Skip unrolling when (trip count x loop size) exceeds this many
  /// instructions.
  uint64_t MaxExpandedInstructions = 4096;
};

class LoopUnrollPass : public FunctionPass {
public:
  explicit LoopUnrollPass(UnrollOptions Opts = UnrollOptions())
      : Opts(Opts) {}

  std::string name() const override { return "loop-unroll"; }
  bool run(pir::Function &F) override;

private:
  UnrollOptions Opts;
};

} // namespace proteus

#endif // PROTEUS_TRANSFORMS_LOOPUNROLL_H
