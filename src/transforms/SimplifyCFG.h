//===- SimplifyCFG.h - control-flow cleanup ---------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CFG cleanup: folds branches on constant conditions (the direct product
/// of argument specialization), deletes unreachable blocks, merges
/// straight-line block chains, and removes single-incoming phis.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_TRANSFORMS_SIMPLIFYCFG_H
#define PROTEUS_TRANSFORMS_SIMPLIFYCFG_H

#include "transforms/Pass.h"

namespace proteus {

class SimplifyCFGPass : public FunctionPass {
public:
  std::string name() const override { return "simplifycfg"; }
  bool run(pir::Function &F) override;
};

} // namespace proteus

#endif // PROTEUS_TRANSFORMS_SIMPLIFYCFG_H
