//===- CSE.cpp - common subexpression elimination ------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transforms/CSE.h"

#include "ir/Dominators.h"
#include "ir/Function.h"
#include "support/Hashing.h"

#include <unordered_map>

using namespace proteus;
using namespace pir;

namespace {

/// Structural key of a pure instruction: kind + extras + operand identities.
struct ExprKey {
  uint64_t Hash;
  ValueKind Kind;
  std::vector<const Value *> Ops;
  uint64_t Extra;

  bool operator==(const ExprKey &O) const {
    return Kind == O.Kind && Extra == O.Extra && Ops == O.Ops;
  }
};

struct ExprKeyHash {
  size_t operator()(const ExprKey &K) const { return K.Hash; }
};

/// True for instructions CSE may deduplicate: pure, deterministic, not
/// control- or memory-dependent.
bool isCSECandidate(Instruction &I) {
  switch (I.getKind()) {
  case ValueKind::Load:   // would need memory dependence analysis
  case ValueKind::Alloca: // identity matters
  case ValueKind::Call:
  case ValueKind::Phi:
    return false;
  default:
    return !I.getType()->isVoid() && !I.mayHaveSideEffects();
  }
}

std::optional<ExprKey> makeKey(Instruction &I) {
  if (!isCSECandidate(I))
    return std::nullopt;
  ExprKey K;
  K.Kind = I.getKind();
  K.Extra = 0;
  if (auto *C = dyn_cast<ICmpInst>(&I))
    K.Extra = static_cast<uint64_t>(C->getPredicate());
  else if (auto *C = dyn_cast<FCmpInst>(&I))
    K.Extra = static_cast<uint64_t>(C->getPredicate()) | 0x100;
  else if (auto *P = dyn_cast<PtrAddInst>(&I))
    K.Extra = P->getElemSize();
  else if (auto *G = dyn_cast<GpuIndexInst>(&I))
    K.Extra = G->getDim();
  else if (isa<CastInst>(&I))
    K.Extra = static_cast<uint64_t>(I.getType()->getKind()) | 0x200;
  for (Value *Op : I.operands())
    K.Ops.push_back(Op);
  // Commutative normalization: order operand pair by pointer identity.
  if (auto *B = dyn_cast<BinaryInst>(&I))
    if (B->isCommutative() && K.Ops.size() == 2 && K.Ops[0] > K.Ops[1])
      std::swap(K.Ops[0], K.Ops[1]);
  FNV1aHash H;
  H.update(static_cast<uint64_t>(K.Kind));
  H.update(K.Extra);
  for (const Value *Op : K.Ops)
    H.update(reinterpret_cast<uint64_t>(Op));
  K.Hash = H.digest();
  return K;
}

/// Scoped hash table walk over the dominator tree.
class DomTreeCSE {
public:
  explicit DomTreeCSE(Function &F) : DT(F) {}

  bool run(Function &F) {
    if (F.isDeclaration())
      return false;
    return visit(&F.getEntryBlock());
  }

private:
  bool visit(BasicBlock *BB) {
    bool Changed = false;
    std::vector<ExprKey> Inserted;
    for (auto It = BB->begin(); It != BB->end();) {
      Instruction &I = *It;
      ++It;
      auto Key = makeKey(I);
      if (!Key)
        continue;
      auto Found = Table.find(*Key);
      if (Found != Table.end()) {
        I.replaceAllUsesWith(Found->second);
        I.eraseFromParent();
        Changed = true;
        continue;
      }
      Table.emplace(*Key, &I);
      Inserted.push_back(std::move(*Key));
    }
    for (BasicBlock *Child : DT.getChildren(BB))
      Changed |= visit(Child);
    for (const ExprKey &K : Inserted)
      Table.erase(K);
    return Changed;
  }

  DominatorTree DT;
  std::unordered_map<ExprKey, Instruction *, ExprKeyHash> Table;
};

} // namespace

bool CSEPass::run(Function &F) { return DomTreeCSE(F).run(F); }
