//===- InstCombine.h - peephole simplification ------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constant folding and algebraic peephole simplification. This is the pass
/// that turns runtime-constant-folded kernel arguments into the cascading
/// optimizations the paper describes: dead branch conditions, strength
/// reduction (mul/div/rem by powers of two), pow-by-small-integer expansion,
/// and identity elimination.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_TRANSFORMS_INSTCOMBINE_H
#define PROTEUS_TRANSFORMS_INSTCOMBINE_H

#include "transforms/Pass.h"

namespace pir {
class Context;
class Instruction;
class Value;
} // namespace pir

namespace proteus {

/// If every operand of \p I is constant (and \p I is pure), evaluates it and
/// returns the resulting constant; null otherwise.
pir::Value *constantFoldInstruction(pir::Instruction &I, pir::Context &Ctx);

/// Tries algebraic simplification of \p I to an *existing* value (identity
/// elimination etc.). Returns the replacement value or null. Never creates
/// new instructions.
pir::Value *simplifyInstruction(pir::Instruction &I, pir::Context &Ctx);

/// The peephole pass: folds, simplifies, and performs in-place strength
/// reduction until a local fixpoint.
class InstCombinePass : public FunctionPass {
public:
  std::string name() const override { return "instcombine"; }
  bool run(pir::Function &F) override;
};

} // namespace proteus

#endif // PROTEUS_TRANSFORMS_INSTCOMBINE_H
