//===- SimplifyCFG.cpp - control-flow cleanup -----------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transforms/SimplifyCFG.h"

#include "ir/Context.h"
#include "ir/Dominators.h"
#include "ir/Function.h"
#include "ir/Module.h"

#include <algorithm>
#include <unordered_set>

using namespace proteus;
using namespace pir;

namespace {

/// Removes \p Pred's entries from phis in \p BB (called when the edge
/// Pred->BB disappears).
void removePredecessorFromPhis(BasicBlock *BB, BasicBlock *Pred) {
  for (PhiInst *Phi : BB->phis()) {
    for (size_t I = 0; I < Phi->getNumIncoming();) {
      if (Phi->getIncomingBlock(I) == Pred)
        Phi->removeIncoming(I);
      else
        ++I;
    }
  }
}

/// condbr on a constant (or with identical successors) -> br.
bool foldConstantBranches(Function &F) {
  Context &Ctx = F.getParent()->getContext();
  bool Changed = false;
  for (BasicBlock *BB : F.blockList()) {
    auto *Br = dyn_cast_if_present<BranchInst>(BB->getTerminator());
    if (!Br || !Br->isConditional())
      continue;
    BasicBlock *TrueBB = Br->getSuccessor(0);
    BasicBlock *FalseBB = Br->getSuccessor(1);
    BasicBlock *Keep = nullptr;
    if (auto *C = dyn_cast<ConstantInt>(Br->getCondition()))
      Keep = C->isZero() ? FalseBB : TrueBB;
    else if (TrueBB == FalseBB)
      Keep = TrueBB;
    if (!Keep)
      continue;
    BasicBlock *Drop = Keep == TrueBB ? FalseBB : TrueBB;
    Br->eraseFromParent();
    BB->append(std::make_unique<BranchInst>(Keep, Ctx.getVoidTy()));
    if (Drop != Keep)
      removePredecessorFromPhis(Drop, BB);
    Changed = true;
  }
  return Changed;
}

/// Deletes blocks not reachable from the entry.
bool removeUnreachableBlocks(Function &F) {
  std::vector<BasicBlock *> RPO = reversePostOrder(F);
  std::unordered_set<BasicBlock *> Reachable(RPO.begin(), RPO.end());
  std::vector<BasicBlock *> Doomed;
  for (BasicBlock *BB : F.blockList())
    if (!Reachable.count(BB))
      Doomed.push_back(BB);
  if (Doomed.empty())
    return false;
  // Phis in reachable blocks may list doomed predecessors.
  for (BasicBlock *BB : Doomed)
    for (BasicBlock *S : BB->successors())
      if (Reachable.count(S))
        removePredecessorFromPhis(S, BB);
  // Sever all edges inside the doomed region before deleting anything.
  for (BasicBlock *BB : Doomed)
    for (Instruction &I : *BB)
      I.dropAllReferences();
  for (BasicBlock *BB : Doomed)
    F.eraseBlock(BB);
  return true;
}

/// Merges BB -> Succ when BB's only successor is Succ and Succ's only
/// predecessor is BB.
bool mergeBlockChains(Function &F) {
  bool Changed = false;
  bool LocalChanged = true;
  while (LocalChanged) {
    LocalChanged = false;
    for (BasicBlock *BB : F.blockList()) {
      auto *Br = dyn_cast_if_present<BranchInst>(BB->getTerminator());
      if (!Br || Br->isConditional())
        continue;
      BasicBlock *Succ = Br->getSuccessor(0);
      if (Succ == BB || Succ == &F.getEntryBlock())
        continue;
      std::vector<BasicBlock *> Preds = Succ->predecessors();
      if (Preds.size() != 1)
        continue;
      // Single-pred phis become direct values.
      for (PhiInst *Phi : Succ->phis()) {
        assert(Phi->getNumIncoming() == 1 && "phi in single-pred block");
        Value *In = Phi->getIncomingValue(0);
        Phi->replaceAllUsesWith(In);
        Phi->eraseFromParent();
      }
      Br->eraseFromParent();
      BB->spliceAllFrom(Succ);
      Succ->replaceAllUsesWith(BB); // remaining refs: phis naming Succ as pred
      F.eraseBlock(Succ);
      LocalChanged = true;
      Changed = true;
      break; // block list changed; restart scan
    }
  }
  return Changed;
}

/// phi with one incoming value, or all-identical incoming values, collapses.
bool simplifyPhis(Function &F) {
  bool Changed = false;
  for (BasicBlock &BB : F) {
    for (PhiInst *Phi : BB.phis()) {
      if (Phi->getNumIncoming() == 0)
        continue;
      Value *First = Phi->getIncomingValue(0);
      bool AllSame = true;
      for (size_t I = 1; I != Phi->getNumIncoming(); ++I)
        if (Phi->getIncomingValue(I) != First &&
            Phi->getIncomingValue(I) != Phi) {
          AllSame = false;
          break;
        }
      if (!AllSame || First == Phi)
        continue;
      Phi->replaceAllUsesWith(First);
      Phi->eraseFromParent();
      Changed = true;
    }
  }
  return Changed;
}

} // namespace

bool SimplifyCFGPass::run(Function &F) {
  bool Changed = false;
  bool LocalChanged = true;
  while (LocalChanged) {
    LocalChanged = false;
    LocalChanged |= foldConstantBranches(F);
    LocalChanged |= removeUnreachableBlocks(F);
    LocalChanged |= simplifyPhis(F);
    LocalChanged |= mergeBlockChains(F);
    Changed |= LocalChanged;
  }
  return Changed;
}
