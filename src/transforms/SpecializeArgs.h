//===- SpecializeArgs.h - runtime argument specialization -------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The core specialization transform of Proteus: runtime constant folding
/// (RCF) replaces uses of designated kernel arguments with their exact
/// runtime values, and launch-bounds (LB) specialization records the
/// invocation's thread configuration as a function attribute consumed by
/// the register allocator. The JIT runtime applies one or both depending on
/// configuration (the paper's None/LB/RCF/LB+RCF modes in section 4.5).
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_TRANSFORMS_SPECIALIZEARGS_H
#define PROTEUS_TRANSFORMS_SPECIALIZEARGS_H

#include <cstdint>
#include <vector>

namespace pir {
class Function;
} // namespace pir

namespace proteus {

/// One runtime argument value destined for folding. Bits follow the
/// OpSemantics boxing conventions (f32 in the low 32 bits, etc.).
struct RuntimeArgValue {
  uint32_t ArgIndex; // zero-based position in the kernel signature
  uint64_t Bits;
};

/// Replaces all uses of the designated arguments of \p F with constants of
/// their runtime values. Pointer-typed arguments become ConstantPtr (their
/// pointees are *not* assumed constant). Returns the number of arguments
/// folded.
unsigned specializeArguments(pir::Function &F,
                             const std::vector<RuntimeArgValue> &Values);

/// Applies launch-bounds specialization: records the exact threads-per-block
/// of this launch with the minimum blocks-per-processor default of 1, as the
/// JIT runtime does (paper section 3.3).
void specializeLaunchBounds(pir::Function &F, uint32_t ThreadsPerBlock);

} // namespace proteus

#endif // PROTEUS_TRANSFORMS_SPECIALIZEARGS_H
