//===- LoopUnroll.cpp - full loop unrolling ---------------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Strategy: for a canonical loop (preheader, single latch, dedicated header
// exit) with constant trip count N, emit N copies of the loop body laid out
// sequentially. Header phis are not cloned; iteration k's mapping sends each
// header phi to its iteration-(k-1) latch-incoming value (preheader incoming
// for k = 0). The final mapping (iteration N) rewrites uses of header phis
// outside the loop. The original loop blocks become unreachable and are
// erased.
//
//===----------------------------------------------------------------------===//

#include "transforms/LoopUnroll.h"

#include "ir/Cloning.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "transforms/LoopInfo.h"

#include <unordered_map>
#include <unordered_set>

using namespace proteus;
using namespace pir;

namespace {

struct UnrollPlan {
  // Copied out of the (function-local) LoopInfo so the plan stays valid
  // after the analysis is destroyed.
  BasicBlock *Header;
  std::unordered_set<BasicBlock *> Blocks;
  BasicBlock *Preheader;
  BasicBlock *Latch;
  BasicBlock *Exit;
  uint64_t TripCount;
  std::vector<BasicBlock *> LoopBlocks; // deterministic order, header first
};

uint64_t countLoopInstructions(const Loop &L) {
  uint64_t N = 0;
  for (BasicBlock *BB : L.Blocks)
    N += BB->size();
  return N;
}

/// Finds a suitable loop and constant trip count, innermost-first.
std::optional<UnrollPlan> planOne(Function &F, const UnrollOptions &Opts) {
  DominatorTree DT(F);
  LoopInfo LI(F, DT);
  for (Loop *L : LI.loopsInnermostFirst()) {
    BasicBlock *Preheader = L->getPreheader();
    BasicBlock *Latch = L->getSingleLatch();
    BasicBlock *Exit = L->getDedicatedExit();
    if (!Preheader || !Latch || !Exit)
      continue;
    if (!Exit->phis().empty())
      continue;
    auto TC = computeConstantTripCount(*L, Opts.MaxTripCount);
    if (!TC)
      continue;
    if (TC->Count * countLoopInstructions(*L) > Opts.MaxExpandedInstructions)
      continue;
    // Only header-defined values may be used outside the loop (values from
    // conditional body blocks would not dominate the exit).
    bool Ok = true;
    for (BasicBlock *BB : L->Blocks) {
      for (Instruction &I : *BB) {
        for (const Use &U : I.uses()) {
          auto *UserInst =
              dyn_cast<Instruction>(static_cast<Value *>(U.TheUser));
          if (!UserInst)
            continue;
          if (!L->contains(UserInst->getParent()) &&
              !(BB == L->Header && isa<PhiInst>(&I))) {
            Ok = false;
            break;
          }
        }
        if (!Ok)
          break;
      }
      if (!Ok)
        break;
    }
    if (!Ok)
      continue;
    UnrollPlan Plan;
    Plan.Header = L->Header;
    Plan.Blocks = L->Blocks;
    Plan.Preheader = Preheader;
    Plan.Latch = Latch;
    Plan.Exit = Exit;
    Plan.TripCount = TC->Count;
    Plan.LoopBlocks.push_back(L->Header);
    // Deterministic layout order: function order.
    for (BasicBlock *BB : F.blockList())
      if (L->contains(BB) && BB != L->Header)
        Plan.LoopBlocks.push_back(BB);
    return Plan;
  }
  return std::nullopt;
}

void unroll(Function &F, const UnrollPlan &Plan) {
  Context &Ctx = F.getParent()->getContext();
  BasicBlock *Header = Plan.Header;
  auto InLoop = [&Plan](BasicBlock *BB) { return Plan.Blocks.count(BB) != 0; };
  std::vector<PhiInst *> HeaderPhis = Header->phis();
  auto *HeaderBr = cast<BranchInst>(Header->getTerminator());
  // The header's unique in-loop successor (the header itself for
  // single-block loops).
  BasicBlock *InLoopSucc = InLoop(HeaderBr->getSuccessor(0))
                               ? HeaderBr->getSuccessor(0)
                               : HeaderBr->getSuccessor(1);

  // Current mapping of each header phi to its value entering iteration k.
  std::unordered_map<PhiInst *, Value *> PhiIn;
  for (PhiInst *Phi : HeaderPhis)
    PhiIn[Phi] = Phi->getIncomingValueForBlock(Plan.Preheader);

  // Where the previous piece of straight-line code should branch next.
  // Starts as the preheader's terminator retarget.
  auto retarget = [&](BasicBlock *From, BasicBlock *OldTo, BasicBlock *NewTo) {
    auto *Br = cast<BranchInst>(From->getTerminator());
    for (size_t I = 0; I != Br->getNumSuccessors(); ++I)
      if (Br->getSuccessor(I) == OldTo)
        Br->setSuccessor(I, NewTo);
  };

  BasicBlock *PrevTail = Plan.Preheader; // block whose branch enters next iter
  BasicBlock *PrevTailTarget = Header;   // the successor slot to rewrite

  for (uint64_t Iter = 0; Iter != Plan.TripCount; ++Iter) {
    ValueMap VM;
    // Header phis resolve to this iteration's incoming values.
    for (PhiInst *Phi : HeaderPhis)
      VM[Phi] = PhiIn[Phi];
    // Create this iteration's blocks.
    std::string Suffix = ".it" + std::to_string(Iter);
    for (BasicBlock *BB : Plan.LoopBlocks)
      VM[BB] = F.createBlock(BB->getName() + Suffix, Ctx.getVoidTy());

    struct PhiPatch {
      PhiInst *Clone;
      PhiInst *Orig;
    };
    std::vector<PhiPatch> Phis;
    for (BasicBlock *BB : Plan.LoopBlocks) {
      auto *DstBB = cast<BasicBlock>(VM[BB]);
      for (Instruction &I : *BB) {
        // Header phis are resolved through the iteration mapping.
        if (BB == Header && isa<PhiInst>(&I))
          continue;
        // The header's conditional branch is replaced by an unconditional
        // branch into this iteration's body: the simulated trip count is
        // exact, and keeping the conditional exit edge would break the
        // dominance of final-iteration values used at the exit.
        if (BB == Header && &I == HeaderBr) {
          DstBB->append(std::make_unique<BranchInst>(
              cast<BasicBlock>(VM.at(InLoopSucc)), Ctx.getVoidTy()));
          continue;
        }
        std::unique_ptr<Instruction> C = cloneInstruction(I, VM, Ctx);
        C->setName(I.getName());
        Instruction *Raw = DstBB->append(std::move(C));
        VM[&I] = Raw;
        if (auto *P = dyn_cast<PhiInst>(Raw))
          Phis.push_back(PhiPatch{P, cast<PhiInst>(&I)});
      }
    }
    for (const PhiPatch &P : Phis)
      for (size_t K = 0; K != P.Clone->getNumIncoming(); ++K) {
        Value *Orig = P.Orig->getIncomingValue(K);
        auto It = VM.find(Orig);
        if (It != VM.end())
          P.Clone->setIncomingValue(K, It->second);
      }

    // Wire the previous tail into this iteration's header clone.
    auto *HeaderClone = cast<BasicBlock>(VM[Header]);
    retarget(PrevTail, PrevTailTarget, HeaderClone);

    // This iteration's latch clone currently branches to the *original*
    // header (cloneInstruction mapped blocks, but Header maps to nothing in
    // VM — blocks map only for loop blocks; Header IS a loop block, so the
    // latch branch maps to HeaderClone... which is wrong: it must go to the
    // NEXT iteration). Fix up below: the latch clone's branch to HeaderClone
    // becomes the dangling edge rewired on the next round.
    auto *LatchClone = cast<BasicBlock>(VM[Plan.Latch]);
    PrevTail = LatchClone;
    PrevTailTarget = HeaderClone;

    // Step the phi mapping for the next iteration.
    std::unordered_map<PhiInst *, Value *> NextIn;
    for (PhiInst *Phi : HeaderPhis) {
      Value *Next = Phi->getIncomingValueForBlock(Plan.Latch);
      auto It = VM.find(Next);
      NextIn[Phi] = It == VM.end() ? Next : It->second;
    }
    PhiIn = std::move(NextIn);
  }

  // After the last iteration (or immediately for trip count 0), control
  // flows to the exit block.
  retarget(PrevTail, PrevTailTarget, Plan.Exit);

  // Rewrite uses of header-defined values outside the loop with their final
  // mapping.
  for (PhiInst *Phi : HeaderPhis) {
    std::vector<std::pair<User *, uint32_t>> ExternalUses;
    for (const Use &U : Phi->uses()) {
      auto *UserInst = dyn_cast<Instruction>(static_cast<Value *>(U.TheUser));
      if (UserInst && !InLoop(UserInst->getParent()))
        ExternalUses.push_back({U.TheUser, U.OperandIndex});
    }
    for (auto &[UserV, Idx] : ExternalUses)
      UserV->setOperand(Idx, PhiIn[Phi]);
  }
  // Non-phi header instructions used outside the loop: their final iteration
  // clone is the value observed at the exit only if the loop ran; with a
  // dedicated exit reached from the last header evaluation, the value seen
  // is the iteration-N header clone — but we deleted that evaluation. The
  // planner therefore rejected such loops unless the value is a phi.
  // (Header non-phi values used externally would require re-evaluating the
  // header once more; planOne() only permits external uses of header
  // *instructions* when BB == Header... tighten here.)

  // The original loop blocks are now unreachable: remove them.
  for (BasicBlock *BB : Plan.LoopBlocks)
    for (Instruction &I : *BB)
      I.dropAllReferences();
  // Phis in the original header may still be referenced by original loop
  // instructions only; all edges were dropped above.
  for (BasicBlock *BB : Plan.LoopBlocks)
    F.eraseBlock(BB);
}

} // namespace

bool LoopUnrollPass::run(Function &F) {
  if (F.isDeclaration())
    return false;
  bool Changed = false;
  // Unroll one loop at a time (analyses are invalidated by the transform);
  // bound the rounds to keep worst-case cost sane.
  for (unsigned Round = 0; Round != 64; ++Round) {
    auto Plan = planOne(F, Opts);
    if (!Plan)
      break;
    unroll(F, *Plan);
    Changed = true;
  }
  return Changed;
}
