//===- Pass.cpp - pass interfaces and pipeline manager -------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transforms/Pass.h"

#include "ir/Module.h"
#include "ir/Verifier.h"
#include "support/Error.h"
#include "support/Timer.h"
#include "support/Trace.h"

using namespace proteus;
using namespace pir;

bool PassManager::runOnce(Function &F) {
  bool Changed = false;
  if (Stats.empty()) {
    for (const auto &P : Passes) {
      Stats.push_back(PassStatistics{P->name(), 0, 0, 0.0});
      SpanNames.push_back(trace::internName("o3." + P->name()));
    }
  }
  for (size_t I = 0; I != Passes.size(); ++I) {
    bool PassChanged;
    double Seconds;
    {
      trace::Span Sp(SpanNames[I], "o3");
      Timer T;
      PassChanged = Passes[I]->run(F);
      Seconds = T.seconds();
    }
    Stats[I].Seconds += Seconds;
    if (TimingHookFn)
      TimingHookFn(Stats[I].Name, Seconds);
    if (PostPassHookFn)
      PostPassHookFn(Stats[I].Name, F);
    ++Stats[I].Invocations;
    if (PassChanged)
      ++Stats[I].ChangedInvocations;
    Changed |= PassChanged;
    if (VerifyEach) {
      VerifyResult R = verifyFunction(F);
      if (!R.ok())
        reportFatalError("pass '" + Passes[I]->name() +
                         "' broke function @" + F.getName() + ":\n" +
                         R.message());
    }
  }
  return Changed;
}

bool PassManager::run(Function &F) {
  bool Changed = false;
  for (unsigned Iter = 0; Iter != MaxIterations; ++Iter) {
    if (!runOnce(F))
      break;
    Changed = true;
  }
  return Changed;
}

bool PassManager::run(Module &M) {
  bool Changed = false;
  for (const auto &F : M.functions())
    if (!F->isDeclaration())
      Changed |= run(*F);
  return Changed;
}
