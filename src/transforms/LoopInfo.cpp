//===- LoopInfo.cpp - natural loop analysis --------------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transforms/LoopInfo.h"

#include "ir/Function.h"
#include "ir/OpSemantics.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

using namespace proteus;
using namespace pir;

BasicBlock *Loop::getSingleLatch() const {
  BasicBlock *Latch = nullptr;
  for (BasicBlock *P : Header->predecessors()) {
    if (!contains(P))
      continue;
    if (Latch)
      return nullptr;
    Latch = P;
  }
  return Latch;
}

BasicBlock *Loop::getPreheader() const {
  BasicBlock *Pre = nullptr;
  for (BasicBlock *P : Header->predecessors()) {
    if (contains(P))
      continue;
    if (Pre)
      return nullptr;
    Pre = P;
  }
  if (!Pre)
    return nullptr;
  std::vector<BasicBlock *> Succs = Pre->successors();
  if (Succs.size() != 1 || Succs[0] != Header)
    return nullptr;
  return Pre;
}

BasicBlock *Loop::getDedicatedExit() const {
  auto *Br = dyn_cast_if_present<BranchInst>(Header->getTerminator());
  if (!Br || !Br->isConditional())
    return nullptr;
  BasicBlock *Exit = nullptr;
  for (size_t I = 0; I != 2; ++I) {
    BasicBlock *S = Br->getSuccessor(I);
    if (contains(S))
      continue;
    if (Exit)
      return nullptr; // both sides leave the loop
    Exit = S;
  }
  if (!Exit)
    return nullptr;
  // The exit must be reached only through this loop's header.
  std::vector<BasicBlock *> Preds = Exit->predecessors();
  if (Preds.size() != 1 || Preds[0] != Header)
    return nullptr;
  // No other in-loop block may branch out of the loop.
  for (BasicBlock *BB : Blocks) {
    if (BB == Header)
      continue;
    for (BasicBlock *S : BB->successors())
      if (!contains(S))
        return nullptr;
  }
  return Exit;
}

std::vector<std::pair<BasicBlock *, BasicBlock *>> Loop::exitEdges() const {
  std::vector<std::pair<BasicBlock *, BasicBlock *>> Out;
  for (BasicBlock *BB : Blocks)
    for (BasicBlock *S : BB->successors())
      if (!contains(S))
        Out.push_back({BB, S});
  return Out;
}

LoopInfo::LoopInfo(Function &F, const DominatorTree &DT) {
  // Find back edges T -> H where H dominates T; group by header.
  std::unordered_map<BasicBlock *, std::vector<BasicBlock *>> BackEdges;
  for (BasicBlock *BB : DT.getRPO())
    for (BasicBlock *S : BB->successors())
      if (DT.isReachable(S) && DT.dominates(S, BB))
        BackEdges[S].push_back(BB);

  // Build each loop's block set by walking predecessors from the latches
  // until the header.
  for (BasicBlock *BB : DT.getRPO()) {
    auto It = BackEdges.find(BB);
    if (It == BackEdges.end())
      continue;
    auto L = std::make_unique<Loop>();
    L->Header = BB;
    L->Blocks.insert(BB);
    std::vector<BasicBlock *> Work(It->second.begin(), It->second.end());
    while (!Work.empty()) {
      BasicBlock *Cur = Work.back();
      Work.pop_back();
      if (!L->Blocks.insert(Cur).second)
        continue;
      for (BasicBlock *P : Cur->predecessors())
        if (DT.isReachable(P) && Cur != BB)
          Work.push_back(P);
    }
    AllLoops.push_back(std::move(L));
  }

  // Nesting: loop A is inside loop B if B contains A's header and A != B.
  // With headers in RPO order, outer loops come first.
  for (auto &Inner : AllLoops) {
    Loop *Best = nullptr;
    for (auto &Outer : AllLoops) {
      if (Outer.get() == Inner.get())
        continue;
      if (!Outer->contains(Inner->Header))
        continue;
      if (!Best || Best->contains(Outer->Header))
        Best = Outer.get();
    }
    Inner->Parent = Best;
    if (Best)
      Best->SubLoops.push_back(Inner.get());
  }

  for (auto &L : AllLoops)
    for (BasicBlock *BB : L->Blocks) {
      Loop *&Slot = InnermostMap[BB];
      if (!Slot || Slot->Blocks.size() > L->Blocks.size())
        Slot = L.get();
    }
}

Loop *LoopInfo::getLoopFor(BasicBlock *BB) const {
  auto It = InnermostMap.find(BB);
  return It == InnermostMap.end() ? nullptr : It->second;
}

std::vector<Loop *> LoopInfo::loopsInnermostFirst() const {
  std::vector<Loop *> Out;
  for (const auto &L : AllLoops)
    Out.push_back(L.get());
  std::stable_sort(Out.begin(), Out.end(), [](Loop *A, Loop *B) {
    return A->depth() > B->depth();
  });
  return Out;
}

std::optional<TripCount> proteus::computeConstantTripCount(Loop &L,
                                                           uint64_t MaxTrip) {
  BasicBlock *Preheader = L.getPreheader();
  BasicBlock *Latch = L.getSingleLatch();
  BasicBlock *Exit = L.getDedicatedExit();
  if (!Preheader || !Latch || !Exit)
    return std::nullopt;
  auto *HeaderBr = cast<BranchInst>(L.Header->getTerminator());
  bool ExitOnFalse = HeaderBr->getSuccessor(1) == Exit;

  // Collect the header phis whose evolution we can simulate: preheader
  // incoming must be a constant.
  std::vector<PhiInst *> Phis = L.Header->phis();
  std::unordered_map<Value *, uint64_t> Env;
  std::vector<std::pair<PhiInst *, Value *>> Evolving;
  for (PhiInst *Phi : Phis) {
    Value *Init = Phi->getIncomingValueForBlock(Preheader);
    Value *Next = Phi->getIncomingValueForBlock(Latch);
    if (!Init || !Next)
      return std::nullopt;
    auto *C = dyn_cast<ConstantInt>(Init);
    if (!C)
      continue; // non-evolving phi (e.g. FP accumulator); fine unless the
                // condition depends on it.
    Env[Phi] = C->getZExtValue();
    Evolving.push_back({Phi, Next});
  }

  // Evaluates \p V given the current environment; pure integer chains only.
  // Depth-limited to keep pathological inputs cheap.
  std::function<std::optional<uint64_t>(Value *, unsigned)> Eval =
      [&](Value *V, unsigned Depth) -> std::optional<uint64_t> {
    if (auto *C = dyn_cast<ConstantInt>(V))
      return C->getZExtValue();
    auto It = Env.find(V);
    if (It != Env.end())
      return It->second;
    if (Depth > 16)
      return std::nullopt;
    auto *I = dyn_cast<Instruction>(V);
    if (!I || !L.contains(I->getParent()))
      return std::nullopt;
    if (auto *Bin = dyn_cast<BinaryInst>(I)) {
      if (!Bin->getType()->isInteger())
        return std::nullopt;
      auto A = Eval(Bin->getLHS(), Depth + 1);
      auto B = Eval(Bin->getRHS(), Depth + 1);
      if (!A || !B)
        return std::nullopt;
      return pir::sem::evalBinary(I->getKind(), Bin->getType(), *A, *B);
    }
    if (auto *Cmp = dyn_cast<ICmpInst>(I)) {
      auto A = Eval(Cmp->getLHS(), Depth + 1);
      auto B = Eval(Cmp->getRHS(), Depth + 1);
      if (!A || !B)
        return std::nullopt;
      return pir::sem::evalICmp(Cmp->getPredicate(),
                                Cmp->getLHS()->getType(), *A, *B)
                 ? 1
                 : 0;
    }
    if (auto *Cast = dyn_cast<CastInst>(I)) {
      if (!Cast->getType()->isInteger() ||
          !Cast->getSource()->getType()->isInteger())
        return std::nullopt;
      auto A = Eval(Cast->getSource(), Depth + 1);
      if (!A)
        return std::nullopt;
      return pir::sem::evalCast(I->getKind(), Cast->getSource()->getType(),
                                Cast->getType(), *A);
    }
    if (auto *Sel = dyn_cast<SelectInst>(I)) {
      auto C = Eval(Sel->getCondition(), Depth + 1);
      if (!C)
        return std::nullopt;
      return Eval(*C & 1 ? Sel->getTrueValue() : Sel->getFalseValue(),
                  Depth + 1);
    }
    return std::nullopt;
  };

  Value *Cond = HeaderBr->getCondition();
  for (uint64_t Iter = 0; Iter <= MaxTrip; ++Iter) {
    auto CondVal = Eval(Cond, 0);
    if (!CondVal)
      return std::nullopt;
    bool TakesExit = ExitOnFalse ? (*CondVal & 1) == 0 : (*CondVal & 1) == 1;
    if (TakesExit)
      return TripCount{Iter};
    // Step all evolving phis in parallel.
    std::vector<std::pair<PhiInst *, uint64_t>> NextVals;
    for (auto &[Phi, Next] : Evolving) {
      auto NV = Eval(Next, 0);
      if (!NV)
        return std::nullopt;
      NextVals.push_back({Phi, *NV});
    }
    for (auto &[Phi, V] : NextVals)
      Env[Phi] = V;
  }
  return std::nullopt; // exceeds MaxTrip
}
