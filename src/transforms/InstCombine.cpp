//===- InstCombine.cpp - peephole simplification ----------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transforms/InstCombine.h"

#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/OpSemantics.h"

using namespace proteus;
using namespace pir;

namespace {

ConstantInt *asConstInt(Value *V) { return dyn_cast<ConstantInt>(V); }
ConstantFP *asConstFP(Value *V) { return dyn_cast<ConstantFP>(V); }

uint64_t constBits(Value *V) {
  if (auto *CI = asConstInt(V))
    return CI->getZExtValue();
  if (auto *CF = asConstFP(V))
    return CF->getType()->isF32()
               ? sem::boxF32(static_cast<float>(CF->getValue()))
               : sem::boxF64(CF->getValue());
  if (auto *CP = dyn_cast<ConstantPtr>(V))
    return CP->getAddress();
  assert(false && "not a constant");
  return 0;
}

Value *makeConstant(Context &Ctx, Type *Ty, uint64_t Bits) {
  if (Ty->isInteger())
    return Ctx.getConstantInt(Ty, Bits);
  if (Ty->isF32())
    return Ctx.getConstantFP(Ty, static_cast<double>(sem::unboxF32(Bits)));
  if (Ty->isF64())
    return Ctx.getConstantFP(Ty, sem::unboxF64(Bits));
  return Ctx.getConstantPtr(Bits);
}

bool isConstantOperand(Value *V) {
  return isa<ConstantInt>(V) || isa<ConstantFP>(V) || isa<ConstantPtr>(V);
}

/// True if \p V is the power of two 2^K; sets \p K.
bool isPowerOfTwo(ConstantInt *C, unsigned &K) {
  uint64_t V = C->getZExtValue();
  if (V == 0 || (V & (V - 1)) != 0)
    return false;
  K = 0;
  while ((V >>= 1) != 0)
    ++K;
  return true;
}

} // namespace

Value *proteus::constantFoldInstruction(Instruction &I, Context &Ctx) {
  if (I.getType()->isVoid() || I.mayHaveSideEffects())
    return nullptr;
  switch (I.getKind()) {
  case ValueKind::ICmp: {
    auto &C = cast<ICmpInst>(I);
    if (!isConstantOperand(C.getLHS()) || !isConstantOperand(C.getRHS()))
      return nullptr;
    bool R = sem::evalICmp(C.getPredicate(), C.getLHS()->getType(),
                           constBits(C.getLHS()), constBits(C.getRHS()));
    return Ctx.getConstantInt(Ctx.getI1Ty(), R ? 1 : 0);
  }
  case ValueKind::FCmp: {
    auto &C = cast<FCmpInst>(I);
    if (!isConstantOperand(C.getLHS()) || !isConstantOperand(C.getRHS()))
      return nullptr;
    bool R = sem::evalFCmp(C.getPredicate(), C.getLHS()->getType(),
                           constBits(C.getLHS()), constBits(C.getRHS()));
    return Ctx.getConstantInt(Ctx.getI1Ty(), R ? 1 : 0);
  }
  case ValueKind::Select: {
    auto &S = cast<SelectInst>(I);
    auto *C = asConstInt(S.getCondition());
    if (!C)
      return nullptr;
    return C->isZero() ? S.getFalseValue() : S.getTrueValue();
  }
  case ValueKind::PtrAdd: {
    auto &P = cast<PtrAddInst>(I);
    if (!isConstantOperand(P.getBase()) || !isConstantOperand(P.getIndex()))
      return nullptr;
    int64_t Idx = sem::signExtend(P.getIndex()->getType(),
                                  constBits(P.getIndex()));
    return Ctx.getConstantPtr(constBits(P.getBase()) +
                              static_cast<uint64_t>(Idx * P.getElemSize()));
  }
  default:
    break;
  }
  if (auto *B = dyn_cast<BinaryInst>(&I)) {
    if (!isConstantOperand(B->getLHS()) || !isConstantOperand(B->getRHS()))
      return nullptr;
    uint64_t R = sem::evalBinary(I.getKind(), B->getType(),
                                 constBits(B->getLHS()),
                                 constBits(B->getRHS()));
    return makeConstant(Ctx, B->getType(), R);
  }
  if (auto *U = dyn_cast<UnaryInst>(&I)) {
    if (!isConstantOperand(U->getOperandValue()))
      return nullptr;
    uint64_t R = sem::evalUnary(I.getKind(), U->getType(),
                                constBits(U->getOperandValue()));
    return makeConstant(Ctx, U->getType(), R);
  }
  if (auto *C = dyn_cast<CastInst>(&I)) {
    if (!isConstantOperand(C->getSource()))
      return nullptr;
    uint64_t R = sem::evalCast(I.getKind(), C->getSource()->getType(),
                               C->getType(), constBits(C->getSource()));
    return makeConstant(Ctx, C->getType(), R);
  }
  return nullptr;
}

Value *proteus::simplifyInstruction(Instruction &I, Context &Ctx) {
  auto *B = dyn_cast<BinaryInst>(&I);
  if (!B) {
    if (auto *Sel = dyn_cast<SelectInst>(&I)) {
      if (Sel->getTrueValue() == Sel->getFalseValue())
        return Sel->getTrueValue();
      return nullptr;
    }
    if (auto *Cmp = dyn_cast<ICmpInst>(&I)) {
      if (Cmp->getLHS() != Cmp->getRHS())
        return nullptr;
      switch (Cmp->getPredicate()) {
      case ICmpPred::EQ:
      case ICmpPred::SLE:
      case ICmpPred::SGE:
      case ICmpPred::ULE:
      case ICmpPred::UGE:
        return Ctx.getTrue();
      default:
        return Ctx.getFalse();
      }
    }
    return nullptr;
  }

  Value *L = B->getLHS();
  Value *R = B->getRHS();
  ConstantInt *RC = asConstInt(R);
  ConstantInt *LC = asConstInt(L);
  ConstantFP *RF = asConstFP(R);

  switch (I.getKind()) {
  case ValueKind::Add:
    if (RC && RC->isZero())
      return L;
    if (LC && LC->isZero())
      return R;
    return nullptr;
  case ValueKind::Sub:
    if (RC && RC->isZero())
      return L;
    if (L == R)
      return Ctx.getConstantInt(B->getType(), 0);
    return nullptr;
  case ValueKind::Mul:
    if (RC && RC->isOne())
      return L;
    if (LC && LC->isOne())
      return R;
    if ((RC && RC->isZero()) || (LC && LC->isZero()))
      return Ctx.getConstantInt(B->getType(), 0);
    return nullptr;
  case ValueKind::SDiv:
  case ValueKind::UDiv:
    if (RC && RC->isOne())
      return L;
    return nullptr;
  case ValueKind::SRem:
  case ValueKind::URem:
    if (RC && RC->isOne())
      return Ctx.getConstantInt(B->getType(), 0);
    return nullptr;
  case ValueKind::And:
    if (L == R)
      return L;
    if ((RC && RC->isZero()) || (LC && LC->isZero()))
      return Ctx.getConstantInt(B->getType(), 0);
    return nullptr;
  case ValueKind::Or:
    if (L == R)
      return L;
    if (RC && RC->isZero())
      return L;
    if (LC && LC->isZero())
      return R;
    return nullptr;
  case ValueKind::Xor:
    if (L == R)
      return Ctx.getConstantInt(B->getType(), 0);
    if (RC && RC->isZero())
      return L;
    if (LC && LC->isZero())
      return R;
    return nullptr;
  case ValueKind::Shl:
  case ValueKind::LShr:
  case ValueKind::AShr:
    if (RC && RC->isZero())
      return L;
    return nullptr;
  case ValueKind::FMul:
    // x * 1.0 == x for all finite/NaN inputs under our semantics.
    if (RF && RF->getValue() == 1.0)
      return L;
    if (auto *LF = asConstFP(L); LF && LF->getValue() == 1.0)
      return R;
    return nullptr;
  case ValueKind::FDiv:
    if (RF && RF->getValue() == 1.0)
      return L;
    return nullptr;
  case ValueKind::FMin:
  case ValueKind::FMax:
  case ValueKind::SMin:
  case ValueKind::SMax:
    if (L == R)
      return L;
    return nullptr;
  default:
    return nullptr;
  }
}

bool InstCombinePass::run(Function &F) {
  Context &Ctx = F.getParent()->getContext();
  IRBuilder Builder(Ctx);
  bool Changed = false;
  bool LocalChanged = true;
  // Iterate to a local fixpoint: folds feed further folds.
  while (LocalChanged) {
    LocalChanged = false;
    for (BasicBlock *BB : F.blockList()) {
      for (auto It = BB->begin(); It != BB->end();) {
        Instruction &I = *It;
        ++It;
        // 1) Full constant fold.
        if (Value *C = constantFoldInstruction(I, Ctx)) {
          I.replaceAllUsesWith(C);
          I.eraseFromParent();
          LocalChanged = true;
          continue;
        }
        // 2) Algebraic simplification to an existing value.
        if (Value *S = simplifyInstruction(I, Ctx)) {
          I.replaceAllUsesWith(S);
          I.eraseFromParent();
          LocalChanged = true;
          continue;
        }
        // 3) In-place strength reduction; creates new instructions.
        auto *B = dyn_cast<BinaryInst>(&I);
        if (!B)
          continue;
        // Canonicalize: constants on the RHS of commutative operations, so
        // the identity/strength-reduction matches below fire.
        if (B->isCommutative() && isConstantOperand(B->getLHS()) &&
            !isConstantOperand(B->getRHS())) {
          Value *OldL = B->getLHS();
          Value *OldR = B->getRHS();
          B->setOperand(0, OldR);
          B->setOperand(1, OldL);
          LocalChanged = true;
        }
        Value *L = B->getLHS();
        auto *RC = asConstInt(B->getRHS());
        unsigned K = 0;
        Builder.setInsertPoint(&I);
        Value *Repl = nullptr;
        switch (I.getKind()) {
        case ValueKind::Mul:
          if (RC && isPowerOfTwo(RC, K) && K > 0)
            Repl = Builder.createShl(L, Ctx.getConstantInt(B->getType(), K));
          break;
        case ValueKind::UDiv:
          if (RC && isPowerOfTwo(RC, K) && K > 0)
            Repl = Builder.createLShr(L, Ctx.getConstantInt(B->getType(), K));
          break;
        case ValueKind::URem:
          if (RC && isPowerOfTwo(RC, K))
            Repl = Builder.createAnd(
                L, Ctx.getConstantInt(B->getType(), RC->getZExtValue() - 1));
          break;
        case ValueKind::Pow: {
          // pow(x, small non-negative integer) -> repeated multiplication.
          auto *RF = asConstFP(B->getRHS());
          if (!RF)
            break;
          double E = RF->getValue();
          if (E != static_cast<double>(static_cast<int>(E)) || E < 0 ||
              E > 4)
            break;
          int N = static_cast<int>(E);
          if (N == 0) {
            Repl = B->getType()->isF32() ? Builder.getFloat(1.0f)
                                         : Builder.getDouble(1.0);
          } else {
            Value *Acc = L;
            for (int J = 1; J < N; ++J)
              Acc = Builder.createFMul(Acc, L);
            Repl = Acc;
          }
          break;
        }
        default:
          break;
        }
        if (Repl) {
          I.replaceAllUsesWith(Repl);
          I.eraseFromParent();
          LocalChanged = true;
        }
      }
    }
    Changed |= LocalChanged;
  }
  return Changed;
}
