//===- DCE.cpp - dead code elimination ---------------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transforms/DCE.h"

#include "ir/Function.h"

#include <unordered_set>

using namespace proteus;
using namespace pir;

namespace {

bool isTriviallyDead(Instruction &I) {
  if (I.hasUses())
    return false;
  if (I.getType()->isVoid())
    return false; // stores/branches/barriers handled by side-effect check
  return !I.mayHaveSideEffects();
}

} // namespace

bool DCEPass::run(Function &F) {
  bool Changed = false;
  // The membership set guarantees each instruction is enqueued (and thus
  // erased) at most once, so the worklist never holds a dangling pointer.
  std::vector<Instruction *> Worklist;
  std::unordered_set<Instruction *> InList;
  auto enqueue = [&](Instruction *I) {
    if (InList.insert(I).second)
      Worklist.push_back(I);
  };
  for (BasicBlock &BB : F)
    for (Instruction &I : BB)
      if (isTriviallyDead(I))
        enqueue(&I);

  while (!Worklist.empty()) {
    Instruction *I = Worklist.back();
    Worklist.pop_back();
    InList.erase(I);
    if (!isTriviallyDead(*I))
      continue;
    // Operands may become dead once this instruction goes away.
    std::vector<Value *> Ops(I->operands());
    I->eraseFromParent();
    Changed = true;
    for (Value *Op : Ops) {
      auto *OpInst = dyn_cast<Instruction>(Op);
      if (OpInst && OpInst->getParent() && isTriviallyDead(*OpInst))
        enqueue(OpInst);
    }
  }
  return Changed;
}
