//===- Inliner.cpp - device function inlining -----------------------------------===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transforms/Inliner.h"

#include "ir/Cloning.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "support/Error.h"

using namespace proteus;
using namespace pir;

namespace {

/// Inlines one call site. Returns false if the callee has no body.
bool inlineCall(CallInst *Call) {
  Function *Callee = Call->getCallee();
  if (Callee->isDeclaration())
    return false;
  Function *Caller = Call->getFunction();
  Module &M = *Caller->getParent();
  Context &Ctx = M.getContext();
  BasicBlock *CallBB = Call->getParent();

  // Split the call block: everything after the call moves to a new block.
  BasicBlock *Cont = Caller->createBlock(CallBB->getName() + ".cont",
                                         Ctx.getVoidTy());
  Caller->moveBlockAfter(Cont, CallBB);
  {
    std::vector<Instruction *> Tail;
    bool Seen = false;
    for (Instruction &I : *CallBB) {
      if (Seen)
        Tail.push_back(&I);
      if (&I == Call)
        Seen = true;
    }
    for (Instruction *I : Tail)
      Cont->append(CallBB->remove(I));
    // The original terminator now lives in Cont: successors' phis must name
    // Cont as the incoming block instead of CallBB.
    for (BasicBlock *S : Cont->successors())
      for (PhiInst *Phi : S->phis())
        for (size_t K = 0; K != Phi->getNumIncoming(); ++K)
          if (Phi->getIncomingBlock(K) == CallBB)
            Phi->setIncomingBlock(K, Cont);
  }

  // Map callee arguments to call operands; clone callee blocks.
  ValueMap VM;
  for (size_t I = 0; I != Callee->getNumArgs(); ++I)
    VM[Callee->getArg(I)] = Call->getArg(I);
  std::vector<BasicBlock *> CalleeBlocks;
  for (BasicBlock &BB : *Callee) {
    BasicBlock *Clone = Caller->createBlock(
        Callee->getName() + "." + BB.getName(), Ctx.getVoidTy());
    VM[&BB] = Clone;
    CalleeBlocks.push_back(&BB);
  }

  struct RetSite {
    BasicBlock *Block;
    pir::Value *Val; // null for void
  };
  std::vector<RetSite> Rets;
  struct PhiPatch {
    PhiInst *Clone;
    PhiInst *Orig;
  };
  std::vector<PhiPatch> Phis;

  for (BasicBlock *BB : CalleeBlocks) {
    auto *DstBB = cast<BasicBlock>(VM[BB]);
    for (Instruction &I : *BB) {
      if (auto *Ret = dyn_cast<RetInst>(&I)) {
        Value *RV = nullptr;
        if (Ret->hasReturnValue()) {
          Value *Orig = Ret->getReturnValue();
          auto It = VM.find(Orig);
          RV = It == VM.end() ? Orig : It->second;
        }
        DstBB->append(std::make_unique<BranchInst>(Cont, Ctx.getVoidTy()));
        Rets.push_back(RetSite{DstBB, RV});
        continue;
      }
      std::unique_ptr<Instruction> C = cloneInstruction(I, VM, Ctx);
      C->setName(I.getName());
      Instruction *Raw = DstBB->append(std::move(C));
      VM[&I] = Raw;
      if (auto *P = dyn_cast<PhiInst>(Raw))
        Phis.push_back(PhiPatch{P, cast<PhiInst>(&I)});
    }
  }
  for (const PhiPatch &P : Phis)
    for (size_t K = 0; K != P.Clone->getNumIncoming(); ++K) {
      Value *Orig = P.Orig->getIncomingValue(K);
      auto It = VM.find(Orig);
      if (It != VM.end())
        P.Clone->setIncomingValue(K, It->second);
    }

  // Route the caller into the inlined entry.
  auto *EntryClone = cast<BasicBlock>(VM[&Callee->getEntryBlock()]);
  CallBB->append(std::make_unique<BranchInst>(EntryClone, Ctx.getVoidTy()));

  // Materialize the return value.
  if (!Call->getType()->isVoid()) {
    Value *Result = nullptr;
    if (Rets.size() == 1) {
      Result = Rets[0].Val;
    } else {
      auto Phi = std::make_unique<PhiInst>(Call->getType());
      Phi->setName(Callee->getName() + ".ret");
      for (const RetSite &RS : Rets)
        Phi->addIncoming(RS.Val, RS.Block);
      PhiInst *Raw = Phi.get();
      if (Cont->empty())
        Cont->append(std::move(Phi));
      else
        Cont->insertBefore(&Cont->front(), std::move(Phi));
      Result = Raw;
    }
    assert(Result && "non-void callee with no return value");
    Call->replaceAllUsesWith(Result);
  }
  Call->eraseFromParent();
  return true;
}

} // namespace

bool InlinerPass::run(Function &F) {
  bool Changed = false;
  // Budget guards against (unsupported) recursion blowing up the function.
  unsigned Budget = 10000;
  for (;;) {
    CallInst *Site = nullptr;
    for (BasicBlock &BB : F) {
      for (Instruction &I : BB) {
        if (auto *C = dyn_cast<CallInst>(&I)) {
          Site = C;
          break;
        }
      }
      if (Site)
        break;
    }
    if (!Site)
      return Changed;
    if (Site->getCallee()->isDeclaration())
      reportFatalError("cannot inline declaration @" +
                       Site->getCallee()->getName() +
                       " (GPU codegen requires full definitions)");
    if (Budget-- == 0)
      reportFatalError("inliner budget exhausted in @" + F.getName() +
                       " (recursive device code is unsupported)");
    inlineCall(Site);
    Changed = true;
  }
}
