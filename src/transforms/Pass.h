//===- Pass.h - pass interfaces and pipeline manager ------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Function-pass interface and a sequential pipeline manager. The JIT
/// runtime builds the "aggressive O3 pipeline" from these (see
/// O3Pipeline.h); tests run single passes in isolation.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_TRANSFORMS_PASS_H
#define PROTEUS_TRANSFORMS_PASS_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace pir {
class Function;
class Module;
} // namespace pir

namespace proteus {

/// A transformation over one function. Returns true if the IR changed.
class FunctionPass {
public:
  virtual ~FunctionPass() = default;

  /// Stable pass name for pipeline descriptions and statistics.
  virtual std::string name() const = 0;

  /// Runs on \p F; returns whether anything changed.
  virtual bool run(pir::Function &F) = 0;
};

/// Per-pass invocation statistics collected by the PassManager.
struct PassStatistics {
  std::string Name;
  unsigned Invocations = 0;
  unsigned ChangedInvocations = 0;
  /// Accumulated wall time across all invocations of this pass — the
  /// per-pass O3 attribution behind Figure 5/6's optimization bar.
  double Seconds = 0;
};

/// Runs a sequence of function passes over every function with a body,
/// optionally iterating the whole sequence to a fixpoint, and optionally
/// verifying the IR after each pass (used in tests).
class PassManager {
public:
  /// \p MaxIterations bounds fixpoint iteration of the full sequence; 1
  /// means run each pass exactly once.
  explicit PassManager(unsigned MaxIterations = 1)
      : MaxIterations(MaxIterations) {}

  void addPass(std::unique_ptr<FunctionPass> P) {
    Passes.push_back(std::move(P));
  }

  /// Aborts with the verifier message if a pass breaks the IR (test mode).
  void setVerifyEach(bool V) { VerifyEach = V; }

  /// Observer invoked after every pass invocation with its name and wall
  /// time. The JIT runtime uses this to feed per-pass O3 timing into its
  /// metrics registry; tracing spans ("o3.<pass>") are emitted regardless.
  using TimingHook = std::function<void(const std::string &PassName,
                                        double Seconds)>;
  void setTimingHook(TimingHook Hook) { TimingHookFn = std::move(Hook); }

  /// Observer invoked after every pass invocation with the pass name and
  /// the function it just transformed. Unlike setVerifyEach (which aborts
  /// the process — test mode), this lets the JIT run verifyFunction after
  /// each pass recoverably and attribute any breakage to the offending
  /// pass by name (PROTEUS_VERIFY_EACH=1).
  using PostPassHook = std::function<void(const std::string &PassName,
                                          pir::Function &F)>;
  void setPostPassHook(PostPassHook Hook) { PostPassHookFn = std::move(Hook); }

  /// Runs the pipeline over all functions of \p M that have bodies.
  /// Returns true if anything changed.
  bool run(pir::Module &M);

  /// Runs the pipeline over a single function.
  bool run(pir::Function &F);

  const std::vector<PassStatistics> &statistics() const { return Stats; }

private:
  bool runOnce(pir::Function &F);

  std::vector<std::unique_ptr<FunctionPass>> Passes;
  std::vector<PassStatistics> Stats;
  /// Interned "o3.<pass>" span names, built lazily alongside Stats.
  std::vector<const char *> SpanNames;
  TimingHook TimingHookFn;
  PostPassHook PostPassHookFn;
  unsigned MaxIterations;
  bool VerifyEach = false;
};

} // namespace proteus

#endif // PROTEUS_TRANSFORMS_PASS_H
