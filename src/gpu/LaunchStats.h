//===- LaunchStats.h - per-launch hardware counters -------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulator's equivalent of rocprof/nvprof counters, collected per
/// kernel launch. Counter names map onto the ones the paper reports:
/// VALUInsts/SALUInsts (AMD vector/scalar ALU split via uniformity),
/// inst_per_warp, spill loads/stores (VFetch/SFetch spill traffic), L2 cache
/// hit ratio, IPC, VALUBusy and a stall estimate.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_GPU_LAUNCHSTATS_H
#define PROTEUS_GPU_LAUNCHSTATS_H

#include <cstdint>
#include <string>

namespace proteus {
namespace gpu {

/// Counters and derived metrics for one kernel launch.
struct LaunchStats {
  std::string Kernel;
  uint64_t Blocks = 0;
  uint64_t ThreadsPerBlock = 0;

  // Dynamic instruction counts (all threads).
  uint64_t TotalInstrs = 0;
  uint64_t VALUInsts = 0;  // divergent ALU work
  uint64_t SALUInsts = 0;  // block-uniform ALU work (scalar unit on AMD)
  uint64_t MemLoads = 0;   // global loads
  uint64_t MemStores = 0;  // global stores
  uint64_t SpillLoads = 0; // scratch reloads inserted by the allocator
  uint64_t SpillStores = 0;
  uint64_t Atomics = 0;
  uint64_t Branches = 0;
  uint64_t Barriers = 0;
  uint64_t TranscendentalInsts = 0; // sqrt/exp/log/sin/cos/pow
  uint64_t DivInsts = 0;            // integer/fp division and remainder

  // L2 model.
  uint64_t L2Hits = 0;
  uint64_t L2Misses = 0;

  // Static compilation facts.
  uint32_t RegsUsed = 0;
  uint32_t SpillSlots = 0;
  uint32_t LaunchBoundsThreads = 0;

  // Performance-model outputs.
  double Occupancy = 0.0;   // resident waves / max waves per CU
  double DurationSec = 0.0; // simulated kernel duration
  double IPC = 0.0;         // instructions per cycle per CU
  double VALUBusyPct = 0.0; // % of issue cycles doing vector ALU work
  double StallPct = 0.0;    // % cycles stalled on memory/spill dependencies

  double l2HitRatio() const {
    uint64_t Total = L2Hits + L2Misses;
    return Total ? static_cast<double>(L2Hits) / static_cast<double>(Total)
                 : 0.0;
  }

  uint64_t totalThreads() const { return Blocks * ThreadsPerBlock; }

  double instPerThread() const {
    uint64_t T = totalThreads();
    return T ? static_cast<double>(TotalInstrs) / static_cast<double>(T) : 0;
  }

  /// Accumulates counters of another launch (same kernel) for aggregated
  /// profiling reports.
  void accumulate(const LaunchStats &O);
};

} // namespace gpu
} // namespace proteus

#endif // PROTEUS_GPU_LAUNCHSTATS_H
