//===- DeviceManager.h - pool of simulated devices --------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A pool of N simulated GPUs, the multi-device half of the execution
/// engine. Devices may mix architectures (heterogeneous nodes: MI250X-like
/// and V100-like side by side), each owns its own memory, streams, and
/// timelines, and the pool assigns ordinals used for trace lanes and for
/// the JIT runtime's ascending-index lock order.
///
/// Configuration comes from the environment (validated, warning on invalid
/// values — never silently substituting a different configuration):
///
///   * PROTEUS_NUM_DEVICES=<1..64>     — devices in the pool (default 1)
///   * PROTEUS_DEFAULT_STREAMS=<1..256> — streams pre-created per device,
///     counting the default stream (default 1)
///   * PROTEUS_DEVICE_ARCHS=<arch>("," <arch>)* — strict comma-separated
///     list of amdgcn-sim / nvptx-sim names cycled across devices
///     (default: all amdgcn-sim). Empty segments (leading, trailing, or
///     doubled commas) and unknown names reject the whole value with a
///     counted "config.errors" warning.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_GPU_DEVICEMANAGER_H
#define PROTEUS_GPU_DEVICEMANAGER_H

#include "gpu/Device.h"

#include <memory>
#include <string>
#include <vector>

namespace proteus {
namespace gpu {

/// Owns N simulated devices and assigns their ordinals.
class DeviceManager {
public:
  struct Config {
    unsigned NumDevices = 1;
    /// Streams pre-created per device, including the default stream.
    unsigned StreamsPerDevice = 1;
    /// Architectures cycled across devices (device i gets
    /// Archs[i % Archs.size()]); empty means all amdgcn-sim.
    std::vector<GpuArch> Archs;
    uint64_t MemoryBytesPerDevice = 1ull << 28;
  };

  /// Reads PROTEUS_NUM_DEVICES / PROTEUS_DEFAULT_STREAMS /
  /// PROTEUS_DEVICE_ARCHS. Invalid values keep the default and emit a
  /// warning (into \p Warnings when given, else stderr) — the same
  /// fail-loud policy as JitConfig::fromEnvironment.
  static Config configFromEnvironment(std::vector<std::string> *Warnings =
                                          nullptr);

  explicit DeviceManager(const Config &C);

  /// Convenience: pool configured from the environment.
  DeviceManager() : DeviceManager(configFromEnvironment()) {}

  unsigned numDevices() const {
    return static_cast<unsigned>(Devices.size());
  }

  Device &device(unsigned I) { return *Devices[I]; }
  const Device &device(unsigned I) const { return *Devices[I]; }

  /// Sum of per-device makespans — the pool's aggregate busy time. With
  /// identical work fanned out across devices this stays ~constant while
  /// the pool makespan (max) shrinks, which is what the multi-stream bench
  /// measures.
  double totalSimulatedSeconds() const;

  /// Pool makespan: completion time of all work on all devices.
  double makespanSeconds() const;

private:
  std::vector<std::unique_ptr<Device>> Devices;
};

} // namespace gpu
} // namespace proteus

#endif // PROTEUS_GPU_DEVICEMANAGER_H
