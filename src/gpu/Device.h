//===- Device.h - simulated GPU device --------------------------*- C++ -*-===//
//
// Part of the Proteus reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated GPU device: global memory with a bump-with-free-list
/// allocator, a symbol table for device global variables, loaded code
/// modules, an L2 cache model, and the simulated clock that accumulates
/// kernel and transfer time. The HIP/CUDA-like entry points in Runtime.h
/// operate on this object.
///
//===----------------------------------------------------------------------===//

#ifndef PROTEUS_GPU_DEVICE_H
#define PROTEUS_GPU_DEVICE_H

#include "codegen/MachineIR.h"
#include "codegen/Target.h"
#include "gpu/LaunchStats.h"

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

namespace proteus {
namespace gpu {

using DevicePtr = uint64_t;

/// Set-associative L2 cache model shared by all accesses of a launch.
class L2Cache {
public:
  L2Cache(uint64_t SizeBytes, unsigned LineBytes, unsigned Ways);

  /// Simulates one access; returns true on hit.
  bool access(uint64_t Address);

  void reset();

private:
  unsigned LineBytes;
  unsigned Ways;
  size_t NumSets;
  std::vector<uint64_t> Tags;     // NumSets x Ways, 0 = empty
  std::vector<uint32_t> LastUsed; // LRU stamps
  uint32_t Clock = 0;
};

/// A kernel loaded onto the device, ready to launch.
struct LoadedKernel {
  mcode::MachineFunction MF;
  GpuArch Arch;
};

/// One simulated GPU.
class Device {
public:
  explicit Device(const TargetInfo &Target, uint64_t MemoryBytes = 1ull << 28);

  const TargetInfo &target() const { return Target; }

  // -- Memory --------------------------------------------------------------

  /// Allocates \p Bytes of device memory; returns 0 on exhaustion.
  DevicePtr allocate(uint64_t Bytes);

  /// Frees a prior allocation (no-op for unknown pointers).
  void free(DevicePtr P);

  std::vector<uint8_t> &memory() { return Memory; }

  bool validRange(DevicePtr P, uint64_t Bytes) const {
    return P + Bytes <= Memory.size() && P + Bytes >= P;
  }

  // -- Globals --------------------------------------------------------------

  /// Registers a device global symbol at a fresh allocation, copying the
  /// initializer (zero-fill when empty). Idempotent per symbol.
  DevicePtr registerGlobal(const std::string &Symbol, uint64_t Bytes,
                           const std::vector<uint8_t> &Init);

  /// Device address of \p Symbol, or 0 when unknown (mirrors
  /// cuda/hipGetSymbolAddress).
  DevicePtr getSymbolAddress(const std::string &Symbol) const;

  // -- Modules / kernels -----------------------------------------------------

  /// Loads object bytes, patching global-variable relocations against the
  /// symbol table. Returns null and sets \p Error on failure.
  LoadedKernel *loadKernel(const std::vector<uint8_t> &Object,
                           std::string *Error = nullptr);

  // -- Simulated time ---------------------------------------------------------

  /// Total simulated device seconds (kernels + transfers).
  double simulatedSeconds() const { return SimSeconds; }
  void addSimulatedSeconds(double S) { SimSeconds += S; }
  void resetSimulatedTime() { SimSeconds = 0.0; }

  /// Accumulated kernel-only simulated time.
  double kernelSeconds() const { return KernelSeconds; }
  void addKernelSeconds(double S) { KernelSeconds += S; }

  /// Restores both clocks to a prior reading (used by the auto-tuner to
  /// exclude trial launches from program accounting).
  void restoreClock(double Sim, double Kernel) {
    SimSeconds = Sim;
    KernelSeconds = Kernel;
  }

  L2Cache &l2() { return L2; }

  /// Counters of the most recent launch (set by the Executor).
  LaunchStats LastLaunch;

  /// Per-kernel aggregated profile (rocprof/nvprof-sim).
  std::map<std::string, LaunchStats> Profile;

private:
  const TargetInfo &Target;
  std::vector<uint8_t> Memory;
  uint64_t Brk = 64; // address 0 reserved as null
  std::unordered_map<uint64_t, uint64_t> Allocations; // ptr -> size
  std::vector<std::pair<uint64_t, uint64_t>> FreeList; // (ptr, size)
  std::unordered_map<std::string, DevicePtr> Symbols;
  std::vector<std::unique_ptr<LoadedKernel>> Kernels;
  L2Cache L2;
  double SimSeconds = 0.0;
  double KernelSeconds = 0.0;
};

} // namespace gpu
} // namespace proteus

#endif // PROTEUS_GPU_DEVICE_H
